// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sec. 6) on the synthetic stand-in datasets.
//
// Usage:
//
//	experiments [-fig6] [-fig7] [-table3] [-fig8] [-sweep] [-parallel] [-pli]
//	            [-validate] [-incremental] [-all] [-scale f] [-full] [-seed n]
//
// By default every experiment runs at a reduced scale that finishes in a few
// minutes; -full selects the paper-scale parameters (expect long runtimes,
// exactly as the paper reports for the Java originals).
package main

import (
	"flag"
	"fmt"
	"os"

	"holistic/internal/experiments"
)

func main() {
	var (
		fig6    = flag.Bool("fig6", false, "row scalability on uniprot (Figure 6)")
		fig7    = flag.Bool("fig7", false, "column scalability on ionosphere (Figure 7)")
		table3  = flag.Bool("table3", false, "UCI dataset comparison (Table 3)")
		fig8    = flag.Bool("fig8", false, "MUDS phase breakdown on ncvoter (Figure 8)")
		sweep   = flag.Bool("sweep", false, "dataset-property ablation (Section 6.5)")
		par     = flag.Bool("parallel", false, "worker-pool scaling benchmark (writes BENCH_parallel.json)")
		parJSON = flag.String("parallel-json", "BENCH_parallel.json", "output path of the -parallel measurements (empty = no file)")
		pliB    = flag.Bool("pli", false, "PLI intersection micro-benchmark (writes BENCH_pli.json)")
		pliJSON = flag.String("pli-json", "BENCH_pli.json", "output path of the -pli measurements (empty = no file)")
		valB    = flag.Bool("validate", false, "validation fast-path benchmark (writes BENCH_validate.json)")
		valJSON = flag.String("validate-json", "BENCH_validate.json", "output path of the -validate measurements (empty = no file)")
		valRows = flag.Int("validate-rows", 100000, "row count of the -validate generators")
		incB    = flag.Bool("incremental", false, "incremental batch-append benchmark (writes BENCH_incremental.json)")
		incJSON = flag.String("incremental-json", "BENCH_incremental.json", "output path of the -incremental measurements (empty = no file)")
		incRows = flag.Int("incremental-rows", 100000, "row count of the -incremental generators")
		all     = flag.Bool("all", false, "run every experiment")
		full    = flag.Bool("full", false, "paper-scale parameters (slow)")
		seed    = flag.Int64("seed", 1, "random-walk seed")
	)
	flag.Parse()
	if !(*fig6 || *fig7 || *table3 || *fig8 || *sweep || *par || *pliB || *valB || *incB || *all) {
		flag.Usage()
		os.Exit(2)
	}
	w := os.Stdout

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *all || *fig6 {
		rows := []int{10000, 20000, 30000, 40000, 50000}
		if *full {
			rows = []int{50000, 100000, 150000, 200000, 250000}
		}
		_, err := experiments.Fig6(w, rows, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *fig7 {
		cols := []int{10, 13, 16}
		if *full {
			cols = []int{10, 15, 20, 21, 22, 23}
		}
		_, err := experiments.Fig7(w, cols, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *table3 {
		// letter and hepatitis run for many minutes on the slow algorithms
		// (as in the paper: 636s and 450s for their slowest columns), so
		// they join the table only with -full.
		names := []string{"iris", "balance", "chess", "abalone", "nursery", "b-cancer", "bridges", "echocard", "adult"}
		if *full {
			names = nil
		}
		_, err := experiments.Table3(w, names, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *fig8 {
		rows, cols := 2000, 16
		if *full {
			rows, cols = 10000, 20
		}
		_, err := experiments.Fig8(w, rows, cols, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *sweep {
		_, err := experiments.PropertySweep(w, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *par {
		_, err := experiments.ParallelBench(w, *parJSON, nil, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *pliB {
		_, err := experiments.PLIBench(w, *pliJSON)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *valB {
		_, err := experiments.ValidateBench(w, *valJSON, *valRows, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *incB {
		_, err := experiments.IncrementalBench(w, *incJSON, *incRows, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
}
