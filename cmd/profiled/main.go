// Command profiled is the holistic profiling service: a long-running HTTP
// daemon that accepts profiling jobs, executes them on a bounded worker pool
// driving the engine's strategy registry, caches results by dataset content,
// and streams per-job progress events.
//
// Usage:
//
//	profiled [-addr host:port] [-workers N] [-queue N] [-job-timeout d]
//	         [-max-job-timeout d] [-shutdown-timeout d] [-data dir]
//	         [-state-dir dir] [-cache N] [-max-body bytes]
//	         [-max-cache-bytes N] [-retries N] [-retry-backoff d]
//	         [-queue-target d] [-breaker-threshold N] [-breaker-cooldown d]
//	         [-mem-soft bytes] [-mem-hard bytes] [-http-read-timeout d]
//	         [-quiet]
//
// API:
//
//	POST   /v1/jobs             submit a job (inline CSV or data-dir path)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status and result
//	GET    /v1/jobs/{id}/events live progress stream (JSON lines)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text metrics
//
// SIGINT/SIGTERM starts a graceful shutdown: admission flips to 503, queued
// jobs are canceled, and in-flight jobs get -shutdown-timeout to finish
// before their contexts are cut.
//
// The daemon defends itself under overload: admission learns per-algorithm
// service times and rejects (429, honest Retry-After) jobs predicted to miss
// their deadline, queue waits stuck above -queue-target shed the oldest
// queued job, repeated failures of one (dataset, algorithm) pair open a
// circuit breaker that fast-fails with 422 until -breaker-cooldown passes,
// and heap growth past -mem-soft / -mem-hard degrades new jobs or refuses
// large ones with 503. Retried submissions carrying an Idempotency-Key
// header (or idempotency_key field) dedup onto the original job.
//
// With -state-dir, the daemon is crash-safe: admitted jobs and dataset
// sessions are journaled to a checksummed, fsync'd WAL and dataset profiler
// state is checkpointed atomically after every completed job. On startup the
// directory is replayed — dataset sessions come back warm with their last
// completed profile, interrupted dataset jobs are reported as "lost" (the
// session is poisoned, its last good report stays readable), and interrupted
// plain jobs re-run. A torn WAL tail (the expected residue of a crash) is
// truncated and counted; mid-file corruption refuses to replay.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"holistic/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8646", "listen address (host:port; port 0 picks a free port)")
		workers         = flag.Int("workers", 2, "number of jobs executed concurrently")
		queueDepth      = flag.Int("queue", 16, "admission queue depth; submissions beyond it get 429")
		jobTimeout      = flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline (0 = none)")
		maxJobTimeout   = flag.Duration("max-job-timeout", 0, "cap on requested per-job deadlines (0 = no cap)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "drain deadline on SIGINT/SIGTERM before in-flight jobs are canceled")
		dataDir         = flag.String("data", "", "directory for path-based dataset submissions (empty = inline CSV only)")
		stateDir        = flag.String("state-dir", "", "directory for crash-safe state (WAL + checkpoints); replayed on startup (empty = in-memory only)")
		cacheEntries    = flag.Int("cache", 256, "content-addressed result cache size (reports)")
		maxBody         = flag.Int64("max-body", 32<<20, "maximum request body size in bytes")
		maxCacheBytes   = flag.Int64("max-cache-bytes", 0, "per-job PLI cache byte budget (0 = engine default, -1 = unbudgeted); over budget the cache sheds and recomputes")
		retries         = flag.Int("retries", 2, "re-runs of a job failing on a transient error (0 = none)")
		retryBackoff    = flag.Duration("retry-backoff", 50*time.Millisecond, "sleep before the first retry, doubled per attempt")
		queueTarget     = flag.Duration("queue-target", 2*time.Second, "CoDel queue-wait target; sustained waits above it shed the oldest queued job")
		breakerThresh   = flag.Int("breaker-threshold", 3, "consecutive failures of one (dataset, algorithm) pair before its circuit breaker opens")
		breakerCooldown = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit breaker fast-fails (422) before a trial probe is allowed")
		memSoft         = flag.Int64("mem-soft", 0, "soft heap watermark in bytes; above it new jobs run degraded (0 = off)")
		memHard         = flag.Int64("mem-hard", 0, "hard heap watermark in bytes; above it large submissions get 503 (0 = off)")
		httpReadTimeout = flag.Duration("http-read-timeout", 30*time.Second, "HTTP read timeout (full request); header read is capped at 10s")
		quiet           = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: profiled [flags]")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "profiled: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	if *jobTimeout == 0 {
		*jobTimeout = -1 // Config: negative disables the default deadline
	}

	if *retries <= 0 {
		*retries = -1 // Config: negative disables retries
	}
	srv, recovery, err := server.Open(server.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		DefaultTimeout:   *jobTimeout,
		MaxTimeout:       *maxJobTimeout,
		DataDir:          *dataDir,
		StateDir:         *stateDir,
		CacheEntries:     *cacheEntries,
		MaxBodyBytes:     *maxBody,
		MaxCacheBytes:    *maxCacheBytes,
		RetryAttempts:    *retries,
		RetryBackoff:     *retryBackoff,
		QueueTarget:      *queueTarget,
		BreakerThreshold: *breakerThresh,
		BreakerCooldown:  *breakerCooldown,
		MemSoftBytes:     *memSoft,
		MemHardBytes:     *memHard,
		Logf:             logf,
	})
	if err != nil {
		logger.Printf("open: %v", err)
		os.Exit(1)
	}
	if *stateDir != "" {
		how := "clean shutdown"
		if !recovery.CleanShutdown {
			how = "crash or kill"
		}
		logger.Printf("recovery: state-dir=%s records=%d (%s) torn-tail-bytes=%d sessions: %d recovered, %d failed; jobs: %d restored, %d replayed, %d lost",
			*stateDir, recovery.WALRecords, how, recovery.TornTailBytes,
			recovery.RecoveredSessions, recovery.FailedSessions,
			recovery.RestoredJobs, recovery.ReplayedJobs, recovery.LostJobs)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		os.Exit(1)
	}
	// The resolved address goes to stdout so scripts using -addr :0 can
	// discover the port.
	fmt.Printf("profiled: listening on %s\n", ln.Addr())

	// Slow-client protection: a peer that trickles its headers or body can
	// no longer pin a connection open indefinitely. WriteTimeout stays unset
	// on purpose — /v1/jobs/{id}/events streams for as long as a job runs,
	// and a write deadline would sever every long-lived event stream.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *httpReadTimeout,
		IdleTimeout:       120 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Printf("received %v, draining (deadline %v)", sig, *shutdownTimeout)
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		os.Exit(1)
	}

	// Drain the job queue first while HTTP stays up: new submissions get
	// 503, but clients can still poll their jobs to completion. The HTTP
	// listener closes afterwards.
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)

	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("drain deadline hit, in-flight jobs canceled")
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
