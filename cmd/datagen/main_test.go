package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// gen runs the command in-process and returns its CSV output.
func gen(t *testing.T, args ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("datagen %v: %v", args, err)
	}
	return buf.Bytes()
}

// TestSeededDeterminism checks the reproducibility contract: the same dataset,
// flags and seed produce byte-identical CSV on every invocation, and changing
// only the seed changes the data.
func TestSeededDeterminism(t *testing.T) {
	for _, args := range [][]string{
		{"-rows", "200", "-seed", "12345", "uniprot"},
		{"-rows", "200", "uniprot"}, // canonical seed is deterministic too
		{"-rows", "100", "-cols", "8", "-seed", "6", "ncvoter"},
		{"-seed", "99", "iris"},
	} {
		a, b := gen(t, args...), gen(t, args...)
		if !bytes.Equal(a, b) {
			t.Errorf("datagen %v is not deterministic: outputs differ", args)
		}
	}
	if bytes.Equal(gen(t, "-rows", "200", "-seed", "1", "uniprot"),
		gen(t, "-rows", "200", "-seed", "2", "uniprot")) {
		t.Error("different seeds produced identical uniprot output")
	}
}

// TestGoldenIris pins the exact bytes of one seeded run, so that accidental
// changes to the generator pipeline (spec, RNG consumption order, CSV
// encoding) cannot slip through as silent output drift. Regenerate with:
//
//	go run ./cmd/datagen -seed 12345 -o cmd/datagen/testdata/iris_seed12345.csv iris
func TestGoldenIris(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "iris_seed12345.csv"))
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	got := gen(t, "-seed", "12345", "iris")
	if !bytes.Equal(got, want) {
		t.Fatalf("seeded iris output drifted from the golden file (%d vs %d bytes)", len(got), len(want))
	}
}
