// Command datagen emits the synthetic evaluation datasets as CSV so they can
// be inspected or profiled with external tools.
//
// Usage:
//
//	datagen -list
//	datagen [-rows N] [-cols N] [-o out.csv] <dataset>
//
// where <dataset> is uniprot, ionosphere, ncvoter, or a UCI name (iris,
// balance, chess, abalone, nursery, b-cancer, bridges, echocard, adult,
// letter, hepatitis).
package main

import (
	"flag"
	"fmt"
	"os"

	"holistic/internal/dataset"
	"holistic/internal/relation"
)

func main() {
	var (
		rows = flag.Int("rows", 0, "row count (uniprot/ncvoter/ionosphere; 0 = default)")
		cols = flag.Int("cols", 0, "column count (ionosphere/ncvoter; 0 = default)")
		out  = flag.String("o", "", "output file (default stdout)")
		list = flag.Bool("list", false, "list available datasets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("uniprot    (rows configurable; 10 columns)")
		fmt.Println("ionosphere (cols/rows configurable; default 34 × 351)")
		fmt.Println("ncvoter    (rows/cols configurable; default 10000 × 20)")
		for _, i := range dataset.UCITable() {
			fmt.Printf("%-10s (%d columns × %d rows, Table 3)\n", i.Name, i.Cols, i.Rows)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: datagen [flags] <dataset>   (datagen -list shows the choices)")
		os.Exit(2)
	}

	rel, err := generate(flag.Arg(0), *rows, *cols)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rel.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func generate(name string, rows, cols int) (*relation.Relation, error) {
	switch name {
	case "uniprot":
		if rows <= 0 {
			rows = 50000
		}
		return dataset.Uniprot(rows), nil
	case "ionosphere":
		if cols <= 0 {
			cols = 34
		}
		if rows <= 0 {
			rows = 351
		}
		return dataset.Ionosphere(cols, rows), nil
	case "ncvoter":
		if rows <= 0 {
			rows = 10000
		}
		if cols <= 0 {
			cols = 20
		}
		return dataset.NCVoter(rows, cols), nil
	default:
		return dataset.UCI(name)
	}
}
