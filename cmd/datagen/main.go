// Command datagen emits the synthetic evaluation datasets as CSV so they can
// be inspected or profiled with external tools.
//
// Usage:
//
//	datagen -list
//	datagen [-rows N] [-cols N] [-seed N] [-o out.csv] <dataset>
//
// where <dataset> is uniprot, ionosphere, ncvoter, or a UCI name (iris,
// balance, chess, abalone, nursery, b-cancer, bridges, echocard, adult,
// letter, hepatitis).
//
// Output is deterministic: the same dataset, flags and seed always produce
// byte-identical CSV (0 keeps each dataset's canonical seed, so plain runs
// are reproducible too).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"holistic/internal/dataset"
	"holistic/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// run executes the whole command against args, writing CSV to stdout (or the
// -o file). A fresh FlagSet keeps it callable more than once in one process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		rows = fs.Int("rows", 0, "row count (uniprot/ncvoter/ionosphere; 0 = default)")
		cols = fs.Int("cols", 0, "column count (ionosphere/ncvoter; 0 = default)")
		seed = fs.Int64("seed", 0, "generator seed (0 = the dataset's canonical seed; same seed and flags give byte-identical output)")
		out  = fs.String("o", "", "output file (default stdout)")
		list = fs.Bool("list", false, "list available datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "uniprot    (rows configurable; 10 columns)")
		fmt.Fprintln(stdout, "ionosphere (cols/rows configurable; default 34 × 351)")
		fmt.Fprintln(stdout, "ncvoter    (rows/cols configurable; default 10000 × 20)")
		for _, i := range dataset.UCITable() {
			fmt.Fprintf(stdout, "%-10s (%d columns × %d rows, Table 3)\n", i.Name, i.Cols, i.Rows)
		}
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: datagen [flags] <dataset>   (datagen -list shows the choices)")
	}

	rel, err := generate(fs.Arg(0), *rows, *cols, *seed)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rel.WriteCSV(w)
}

func generate(name string, rows, cols int, seed int64) (*relation.Relation, error) {
	switch name {
	case "uniprot":
		if rows <= 0 {
			rows = 50000
		}
		return dataset.UniprotSeeded(rows, seed), nil
	case "ionosphere":
		if cols <= 0 {
			cols = 34
		}
		if rows <= 0 {
			rows = 351
		}
		return dataset.IonosphereSeeded(cols, rows, seed), nil
	case "ncvoter":
		if rows <= 0 {
			rows = 10000
		}
		if cols <= 0 {
			cols = 20
		}
		return dataset.NCVoterSeeded(rows, cols, seed), nil
	default:
		return dataset.UCISeeded(name, seed)
	}
}
