// Command profile runs holistic data profiling on a CSV file and prints the
// discovered metadata: unary INDs, minimal UCCs, minimal FDs, and single-
// column statistics.
//
// Usage:
//
//	profile [-algorithm name] [-format text|json] [-timeout d] [-sep ,]
//	        [-no-header] [-max-rows N] [-stats] [-timings] [-seed N]
//	        [-workers N] [-max-cache-bytes N] [-nary K] [-approx eps] file.csv
//
// The strategy names accepted by -algorithm come from the engine registry;
// run with -h for the current list. -format json emits the same core.Report
// model the profiled server serves, so CLI and API output are identical for
// the same run.
//
// Exit status: 0 on success, 1 on any profiling or output error, 2 on usage
// errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"holistic/internal/core"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/stats"
)

// usageError distinguishes misuse (exit 2) from runtime failures (exit 1).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		var ue usageError
		if errors.As(err, &ue) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run executes the whole command; every failure surfaces as a returned error
// so main can map it to a non-zero exit status — profiling errors must never
// exit 0.
func run(args []string, out io.Writer) error {
	var (
		algorithm = flag.String("algorithm", core.StrategyMuds, "profiling strategy: "+strings.Join(core.Strategies(), "|"))
		format    = flag.String("format", "text", "output format: text|json (json emits the server's result model)")
		timeout   = flag.Duration("timeout", 0, "abort profiling after this duration (0 = no limit)")
		sep       = flag.String("sep", ",", "CSV field separator (single character)")
		noHeader  = flag.Bool("no-header", false, "input has no header row")
		maxRows   = flag.Int("max-rows", 0, "read at most N data rows (0 = all)")
		withStats = flag.Bool("stats", false, "also print single-column statistics")
		timings   = flag.Bool("timings", false, "print per-phase timings")
		seed      = flag.Int64("seed", 0, "random-walk seed (results are seed-independent)")
		workers   = flag.Int("workers", 0, "worker pool size for the parallel phases (0 = all CPUs, 1 = sequential; results are identical for every value)")
		cacheMax  = flag.Int64("max-cache-bytes", 0, "PLI cache byte budget (0 = default, -1 = unbudgeted); over budget the cache sheds and recomputes, results are identical for every value")
		sampleChk = flag.Bool("sample-check", false, "arm the sampled refutation prefilter on validation checks (results are identical either way)")
		naryArity = flag.Int("nary", 0, "also discover n-ary INDs up to this arity (0 = off)")
		approxEps = flag.Float64("approx", 0, "also discover approximate FDs with g3 error ≤ eps (0 = off)")
		asJSON    = flag.Bool("json", false, "deprecated alias for -format json")
		sqlNulls  = flag.Bool("distinct-nulls", false, "SQL NULL semantics: empty fields compare unequal to each other")
		appendCSV = flag.String("append", "", "CSV file of rows to append incrementally after profiling the input (revalidation instead of re-discovery)")
		snapPath  = flag.String("snapshot", "", "profile snapshot file: resumed when it exists (with -append: skips the initial full profile), written/updated after the run")
	)
	flag.CommandLine.Parse(args)
	if flag.NArg() != 1 {
		return usageError{msg: "exactly one input file is required"}
	}
	if len(*sep) != 1 {
		return usageError{msg: "-sep must be a single character"}
	}
	if *asJSON {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		return usageError{msg: fmt.Sprintf("unknown -format %q (want text or json)", *format)}
	}
	if *naryArity < 0 {
		return usageError{msg: "-nary must be >= 0"}
	}
	if *approxEps < 0 || *approxEps >= 1 {
		return usageError{msg: "-approx must be in [0, 1)"}
	}
	// Reject unknown strategies before any input is read: a typo in
	// -algorithm should not cost a multi-gigabyte CSV parse.
	if _, ok := core.Lookup(*algorithm); !ok {
		return usageError{msg: fmt.Sprintf("unknown -algorithm %q (want one of %s)",
			*algorithm, strings.Join(core.Strategies(), "|"))}
	}

	// MemoSource keeps the parsed relation around for reporting, so the
	// input is read exactly once.
	src := &core.MemoSource{Src: core.CSVSource{
		Path: flag.Arg(0),
		Options: relation.CSVOptions{
			Comma:     rune((*sep)[0]),
			HasHeader: !*noHeader,
			MaxRows:   *maxRows,
			Relation:  relation.Options{DistinctNulls: *sqlNulls, Workers: *workers},
		},
	}}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := core.Options{Seed: *seed, Workers: *workers, MaxCacheBytes: *cacheMax, SampleCheck: *sampleChk}
	if *appendCSV != "" || *snapPath != "" {
		return runIncremental(ctx, src, *algorithm, opts, incrementalOptions{
			appendCSV: *appendCSV,
			snapPath:  *snapPath,
			sep:       rune((*sep)[0]),
			noHeader:  *noHeader,
			format:    *format,
		}, out, textOptions{
			algorithm: *algorithm,
			nary:      *naryArity,
			approxEps: *approxEps,
			withStats: *withStats,
			timings:   *timings,
		})
	}
	res, err := core.RunContext(ctx, *algorithm, src, opts, nil)
	// Anytime semantics: a deadline hit still prints the dependencies
	// confirmed before the stop — marked partial — and exits non-zero.
	timedOut := errors.Is(err, context.DeadlineExceeded) && res != nil
	if err != nil && !timedOut {
		return err
	}
	rel := src.Relation()

	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(core.NewReport(rel, res, *withStats)); err != nil {
			return err
		}
	} else {
		if err := printText(out, rel, res, textOptions{
			algorithm: *algorithm,
			nary:      *naryArity,
			approxEps: *approxEps,
			withStats: *withStats,
			timings:   *timings,
		}); err != nil {
			return err
		}
	}
	if timedOut {
		return fmt.Errorf("timed out after %v (partial results above: every listed dependency is confirmed, more may exist)", *timeout)
	}
	return nil
}

type textOptions struct {
	algorithm string
	nary      int
	approxEps float64
	withStats bool
	timings   bool
}

// printText renders the human-readable report. Write errors (a closed pipe,
// a full disk) surface as a non-zero exit.
func printText(out io.Writer, rel *relation.Relation, res *core.Result, o textOptions) error {
	names := rel.ColumnNames()
	colName := func(c int) string { return names[c] }
	var werr error
	printf := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(out, format, args...)
		}
	}

	printf("# %s — %d columns × %d rows (%d duplicate rows removed)\n",
		rel.Name(), rel.NumColumns(), rel.NumRows(), rel.DuplicatesRemoved())
	printf("# algorithm=%s total=%v\n", o.algorithm, res.Total().Round(time.Microsecond))
	if res.Partial {
		printf("# PARTIAL: run interrupted; every dependency below is confirmed, more may exist\n")
	}
	printf("\n")

	if len(res.INDs) > 0 || o.algorithm != core.StrategyTane {
		printf("Unary inclusion dependencies (%d):\n", len(res.INDs))
		for _, d := range res.INDs {
			printf("  %s ⊆ %s\n", colName(d.Dependent), colName(d.Referenced))
		}
		printf("\n")
	}
	if len(res.UCCs) > 0 || o.algorithm == core.StrategyMuds || o.algorithm == core.StrategyHolisticFun || o.algorithm == core.StrategyBaseline {
		printf("Minimal unique column combinations (%d):\n", len(res.UCCs))
		for _, u := range res.UCCs {
			printf("  {%s}\n", joinCols(u.Columns(), names))
		}
		printf("\n")
	}
	printf("Minimal functional dependencies (%d):\n", len(res.FDs))
	for _, f := range res.FDs {
		printf("  [%s] → %s\n", joinCols(f.LHS.Columns(), names), colName(f.RHS))
	}

	if o.nary > 1 {
		nary := ind.Nary(rel, ind.Options{IgnoreNulls: true}, o.nary)
		printf("\nN-ary inclusion dependencies up to arity %d (%d):\n", o.nary, len(nary))
		for _, d := range nary {
			if len(d.Dependent) < 2 {
				continue // unary ones are listed above
			}
			printf("  [%s] ⊆ [%s]\n", joinCols(d.Dependent, names), joinCols(d.Referenced, names))
		}
	}

	if o.approxEps > 0 {
		approx := fd.ApproximateFDs(pli.NewProvider(rel, 0), o.approxEps, 3)
		printf("\nApproximate FDs with g3 ≤ %.3f (lhs ≤ 3 columns):\n", o.approxEps)
		for _, f := range approx {
			if f.Error == 0 {
				continue // exact FDs are listed above
			}
			printf("  [%s] → %s  (g3=%.3f)\n", joinCols(f.LHS.Columns(), names), colName(f.RHS), f.Error)
		}
	}

	if o.withStats {
		printf("\nColumn statistics:\n")
		printf("  %-20s %-8s %8s %8s %8s %10s\n", "column", "type", "distinct", "nulls", "unique%", "top-freq")
		for _, c := range stats.Profile(rel) {
			printf("  %-20s %-8s %8d %8d %7.1f%% %10d\n",
				c.Name, c.Type, c.Distinct, c.Nulls, 100*c.Uniqueness, c.Frequency)
		}
	}

	if o.timings {
		printf("\nPhase timings:\n")
		for _, p := range res.Phases {
			printf("  %-24s %v\n", p.Name, p.Duration.Round(time.Microsecond))
		}
		printf("  %-24s %d\n", "validity checks", res.Checks)
	}
	return werr
}

func joinCols(cols []int, names []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = names[c]
	}
	return strings.Join(parts, ", ")
}
