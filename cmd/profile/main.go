// Command profile runs holistic data profiling on a CSV file and prints the
// discovered metadata: unary INDs, minimal UCCs, minimal FDs, and single-
// column statistics.
//
// Usage:
//
//	profile [-algorithm name] [-timeout d] [-sep ,] [-no-header]
//	        [-max-rows N] [-stats] [-timings] [-seed N] [-workers N]
//	        [-nary K] [-approx eps] file.csv
//
// The strategy names accepted by -algorithm come from the engine registry;
// run with -h for the current list.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"holistic/internal/core"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/stats"
)

func main() {
	var (
		algorithm = flag.String("algorithm", core.StrategyMuds, "profiling strategy: "+strings.Join(core.Strategies(), "|"))
		timeout   = flag.Duration("timeout", 0, "abort profiling after this duration (0 = no limit)")
		sep       = flag.String("sep", ",", "CSV field separator (single character)")
		noHeader  = flag.Bool("no-header", false, "input has no header row")
		maxRows   = flag.Int("max-rows", 0, "read at most N data rows (0 = all)")
		withStats = flag.Bool("stats", false, "also print single-column statistics")
		timings   = flag.Bool("timings", false, "print per-phase timings")
		seed      = flag.Int64("seed", 0, "random-walk seed (results are seed-independent)")
		workers   = flag.Int("workers", 0, "worker pool size for the parallel phases (0 = all CPUs, 1 = sequential; results are identical for every value)")
		naryArity = flag.Int("nary", 0, "also discover n-ary INDs up to this arity (0 = off)")
		approxEps = flag.Float64("approx", 0, "also discover approximate FDs with g3 error ≤ eps (0 = off)")
		asJSON    = flag.Bool("json", false, "emit the result as JSON instead of text")
		sqlNulls  = flag.Bool("distinct-nulls", false, "SQL NULL semantics: empty fields compare unequal to each other")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: profile [flags] file.csv")
		flag.Usage()
		os.Exit(2)
	}
	if len(*sep) != 1 {
		fmt.Fprintln(os.Stderr, "profile: -sep must be a single character")
		os.Exit(2)
	}
	// Reject unknown strategies before any input is read: a typo in
	// -algorithm should not cost a multi-gigabyte CSV parse.
	if _, ok := core.Lookup(*algorithm); !ok {
		fmt.Fprintf(os.Stderr, "profile: unknown -algorithm %q (want one of %s)\n",
			*algorithm, strings.Join(core.Strategies(), "|"))
		os.Exit(2)
	}

	src := core.CSVSource{
		Path: flag.Arg(0),
		Options: relation.CSVOptions{
			Comma:     rune((*sep)[0]),
			HasHeader: !*noHeader,
			MaxRows:   *maxRows,
			Relation:  relation.Options{DistinctNulls: *sqlNulls, Workers: *workers},
		},
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := core.RunContext(ctx, *algorithm, src, core.Options{Seed: *seed, Workers: *workers}, nil)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "profile: timed out after %v (partial results discarded)\n", *timeout)
		} else {
			fmt.Fprintln(os.Stderr, "profile:", err)
		}
		os.Exit(1)
	}

	rel, err := src.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(core.NewReport(rel, res, *withStats)); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
		return
	}

	names := rel.ColumnNames()
	colName := func(c int) string { return names[c] }

	fmt.Printf("# %s — %d columns × %d rows (%d duplicate rows removed)\n",
		rel.Name(), rel.NumColumns(), rel.NumRows(), rel.DuplicatesRemoved())
	fmt.Printf("# algorithm=%s total=%v\n\n", *algorithm, res.Total().Round(1000))

	if len(res.INDs) > 0 || *algorithm != core.StrategyTane {
		fmt.Printf("Unary inclusion dependencies (%d):\n", len(res.INDs))
		for _, d := range res.INDs {
			fmt.Printf("  %s ⊆ %s\n", colName(d.Dependent), colName(d.Referenced))
		}
		fmt.Println()
	}
	if len(res.UCCs) > 0 || *algorithm == core.StrategyMuds || *algorithm == core.StrategyHolisticFun || *algorithm == core.StrategyBaseline {
		fmt.Printf("Minimal unique column combinations (%d):\n", len(res.UCCs))
		for _, u := range res.UCCs {
			fmt.Printf("  {%s}\n", joinCols(u.Columns(), names))
		}
		fmt.Println()
	}
	fmt.Printf("Minimal functional dependencies (%d):\n", len(res.FDs))
	for _, f := range res.FDs {
		fmt.Printf("  [%s] → %s\n", joinCols(f.LHS.Columns(), names), colName(f.RHS))
	}

	if *naryArity > 1 {
		nary := ind.Nary(rel, ind.Options{IgnoreNulls: true}, *naryArity)
		fmt.Printf("\nN-ary inclusion dependencies up to arity %d (%d):\n", *naryArity, len(nary))
		for _, d := range nary {
			if len(d.Dependent) < 2 {
				continue // unary ones are listed above
			}
			fmt.Printf("  [%s] ⊆ [%s]\n", joinCols(d.Dependent, names), joinCols(d.Referenced, names))
		}
	}

	if *approxEps > 0 {
		approx := fd.ApproximateFDs(pli.NewProvider(rel, 0), *approxEps, 3)
		fmt.Printf("\nApproximate FDs with g3 ≤ %.3f (lhs ≤ 3 columns):\n", *approxEps)
		for _, f := range approx {
			if f.Error == 0 {
				continue // exact FDs are listed above
			}
			fmt.Printf("  [%s] → %s  (g3=%.3f)\n", joinCols(f.LHS.Columns(), names), colName(f.RHS), f.Error)
		}
	}

	if *withStats {
		fmt.Println("\nColumn statistics:")
		fmt.Printf("  %-20s %-8s %8s %8s %8s %10s\n", "column", "type", "distinct", "nulls", "unique%", "top-freq")
		for _, c := range stats.Profile(rel) {
			fmt.Printf("  %-20s %-8s %8d %8d %7.1f%% %10d\n",
				c.Name, c.Type, c.Distinct, c.Nulls, 100*c.Uniqueness, c.Frequency)
		}
	}

	if *timings {
		fmt.Println("\nPhase timings:")
		for _, p := range res.Phases {
			fmt.Printf("  %-24s %v\n", p.Name, p.Duration.Round(1000))
		}
		fmt.Printf("  %-24s %d\n", "validity checks", res.Checks)
	}
}

func joinCols(cols []int, names []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = names[c]
	}
	return strings.Join(parts, ", ")
}
