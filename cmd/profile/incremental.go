package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"holistic/internal/core"
	"holistic/internal/incremental"
	"holistic/internal/relation"
)

// incrementalOptions carries the CLI surface of the -append/-snapshot flow.
type incrementalOptions struct {
	appendCSV string // batch CSV to fold in after (or instead of) the initial profile
	snapPath  string // snapshot file to resume from / write back
	sep       rune
	noHeader  bool
	format    string
}

// runIncremental implements the incremental CLI paths:
//
//   - -snapshot only: full profile of the input, snapshot written.
//   - -append only: full profile of the input, then the batch folded in
//     incrementally (one process, no persistence).
//   - -snapshot (existing) + -append: the expensive discovery run is skipped
//     entirely — the input is loaded, the snapshot's metadata revalidated
//     against the appended batch, and the updated snapshot written back.
func runIncremental(ctx context.Context, src *core.MemoSource, algorithm string, opts core.Options, inc incrementalOptions, out io.Writer, text textOptions) error {
	rel, err := src.Load()
	if err != nil {
		return err
	}

	var p *incremental.Profiler
	if inc.snapPath != "" {
		if _, statErr := os.Stat(inc.snapPath); statErr == nil {
			snap, err := incremental.ReadSnapshotFile(inc.snapPath)
			if err != nil {
				return err
			}
			if snap.Algorithm != algorithm {
				return fmt.Errorf("snapshot %s was produced by -algorithm %s, run requested %s", inc.snapPath, snap.Algorithm, algorithm)
			}
			if p, err = incremental.Resume(rel, snap, opts); err != nil {
				return err
			}
		} else if !os.IsNotExist(statErr) {
			return statErr
		}
	}
	if p == nil {
		if p, _, err = incremental.NewProfiler(ctx, rel, algorithm, opts, nil); err != nil {
			return err
		}
	}

	res := p.Result()
	if inc.appendCSV != "" {
		batchHeader, batch, err := readBatch(inc.appendCSV, inc.sep, inc.noHeader)
		if err != nil {
			return err
		}
		if err := matchesSchema(rel, batchHeader, inc.noHeader); err != nil {
			return err
		}
		if res, err = p.AppendBatch(ctx, batch, nil); err != nil {
			return err
		}
	}

	if inc.snapPath != "" {
		// WriteFile is atomic (temp file + rename): a failure mid-encode
		// cleans up after itself and leaves any previous snapshot intact, so
		// the path in this error always names a consistent file or none.
		if err := p.Snapshot().WriteFile(inc.snapPath); err != nil {
			return fmt.Errorf("write snapshot %s: %w", inc.snapPath, err)
		}
	}

	if inc.format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(core.NewReport(rel, res, text.withStats))
	}
	return printText(out, rel, res, text)
}

// readBatch reads the rows of a batch CSV with the run's separator and header
// settings.
func readBatch(path string, sep rune, noHeader bool) ([]string, [][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	header, rows, err := relation.ReadCSVRows(path, f, relation.CSVOptions{
		Comma:     sep,
		HasHeader: !noHeader,
	})
	return header, rows, err
}

// matchesSchema rejects a batch whose header names a different schema than
// the profiled relation. Headerless batches only need the right arity (the
// row-width check happens in Append).
func matchesSchema(rel *relation.Relation, batchHeader []string, noHeader bool) error {
	if noHeader {
		return nil
	}
	names := rel.ColumnNames()
	if len(batchHeader) != len(names) {
		return fmt.Errorf("batch has %d columns, relation has %d", len(batchHeader), len(names))
	}
	for i, name := range batchHeader {
		if name != names[i] {
			return fmt.Errorf("batch column %d is %q, relation has %q", i, name, names[i])
		}
	}
	return nil
}
