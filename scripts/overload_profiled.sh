#!/bin/sh
# overload_profiled.sh — overload-resilience harness for the profiled daemon:
# flood it far past saturation and assert it degrades instead of dying.
#
#   phase 1 — flood: ~5x the daemon's capacity in concurrent waves of unique
#     submissions. Every request must get a prompt, definitive answer
#     (bounded p99 admission latency), every rejection a computed Retry-After
#     in [1, 60], every accepted job a distinct ID that reaches a terminal
#     state — zero lost, zero duplicated — and /healthz must be ok right
#     after the flood drains. Ten concurrent submissions of one idempotency
#     key must collapse onto a single job, journaled exactly once.
#
#   phase 2 — circuit breaker: with -breaker-threshold 1, one deadline
#     blowout on a hostile dataset opens its (dataset, algorithm) breaker;
#     the resubmission fast-fails with 422 carrying the prior error, and
#     after -breaker-cooldown a trial probe with a sane deadline closes it
#     again (healthz back to ok within one cooldown).
#
#   phase 3 — memory watermark: the daemon restarted with
#     HOLISTIC_FAULTS="mem.watermark:error" behaves as if the heap sat above
#     the hard watermark: large submissions get 503 + Retry-After, small ones
#     run degraded, the level gauge reads 2 and /healthz reports degraded.
#
# Requires curl and jq. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "overload_profiled: $tool not found, skipping" >&2
		exit 0
	fi
done

workdir=$(mktemp -d)
server_pid=""
trap 'kill -9 "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "== build =="
go build -o "$workdir/profiled" ./cmd/profiled

statedir="$workdir/state"

start_daemon() {
	: > "$workdir/out.log"
	: > "$workdir/err.log"
	"$workdir/profiled" -addr 127.0.0.1:0 -workers 2 -queue 8 \
		-state-dir "$statedir" -queue-target 250ms \
		-breaker-threshold 1 -breaker-cooldown 2s \
		> "$workdir/out.log" 2> "$workdir/err.log" &
	server_pid=$!
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n 's/^profiled: listening on //p' "$workdir/out.log" | head -n1)
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "overload_profiled: server never reported its address" >&2
		cat "$workdir/err.log" >&2
		exit 1
	fi
	base="http://$addr"
}

kill_daemon() {
	kill -9 "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
	server_pid=""
}

# retry_after_ok HDRFILE — asserts a Retry-After header exists and sits in
# the documented [1, 60] clamp.
retry_after_ok() {
	ra=$(tr -d '\r' < "$1" | sed -n 's/^[Rr]etry-[Aa]fter: //p' | head -n1)
	if [ -z "$ra" ]; then
		echo "overload_profiled: rejection without Retry-After ($1)" >&2
		exit 1
	fi
	if [ "$ra" -lt 1 ] || [ "$ra" -gt 60 ]; then
		echo "overload_profiled: Retry-After $ra outside [1, 60]" >&2
		exit 1
	fi
}

# wait_job ID — polls the job until terminal, echoes the state.
wait_job() {
	for _ in $(seq 1 300); do
		jstate=$(curl -fsS "$base/v1/jobs/$1" | jq -r '.state')
		case "$jstate" in done|partial|failed|canceled|lost) echo "$jstate"; return ;; esac
		sleep 0.1
	done
	echo "overload_profiled: job $1 never settled" >&2
	exit 1
}

# gen_csv SEED ROWS FILE — a unique dataset per submission (unique bytes: no
# result-cache short-circuits, every acceptance is real work). Eight random
# columns keep the lattice walk busy for long enough that a concurrent wave
# actually piles up behind the two workers.
gen_csv() {
	awk -v seed="$1" -v n="$2" 'BEGIN {
		srand(seed)
		print "a,b,c,d,e,f,g,h"
		for (r = 0; r < n; r++)
			printf "%d,%d,%d,%d,%d,%d,%d,s%d\n", r, int(rand()*800), int(rand()*300), int(rand()*90), int(rand()*30), int(rand()*12), int(rand()*5), seed
	}' > "$3"
}

start_daemon
rdir="$workdir/flood"
mkdir -p "$rdir"

total=160
wave=20
echo "== phase 1: flood ($total submissions, waves of $wave, capacity 2+8) =="
i=0
while [ "$i" -lt "$total" ]; do
	w=0
	wave_pids=""
	while [ "$w" -lt "$wave" ] && [ "$i" -lt "$total" ]; do
		i=$((i + 1))
		w=$((w + 1))
		(
			gen_csv "$i" 1500 "$rdir/csv.$i"
			jq -Rs --arg k "flood-$i" '{csv: ., idempotency_key: $k}' < "$rdir/csv.$i" > "$rdir/req.$i"
			curl -sS -o "$rdir/body.$i" -D "$rdir/hdr.$i" -w '%{http_code} %{time_total}\n' \
				-X POST -H 'Content-Type: application/json' \
				--data-binary @"$rdir/req.$i" "$base/v1/jobs" > "$rdir/meta.$i"
		) &
		wave_pids="$wave_pids $!"
	done
	# A bare `wait` would also block on the daemon; wait on this wave only.
	for pid in $wave_pids; do
		wait "$pid"
	done
done

accepted=0
rejected=0
: > "$rdir/ids"
: > "$rdir/latencies"
i=0
while [ "$i" -lt "$total" ]; do
	i=$((i + 1))
	read -r code latency < "$rdir/meta.$i"
	printf '%s\n' "$latency" >> "$rdir/latencies"
	case "$code" in
	202)
		accepted=$((accepted + 1))
		jq -r '.id' < "$rdir/body.$i" >> "$rdir/ids"
		;;
	429|503)
		rejected=$((rejected + 1))
		retry_after_ok "$rdir/hdr.$i"
		;;
	*)
		echo "overload_profiled: submission $i got unexpected status $code" >&2
		cat "$rdir/body.$i" >&2
		exit 1
		;;
	esac
done

if [ $((accepted + rejected)) -ne "$total" ]; then
	echo "overload_profiled: accepted $accepted + rejected $rejected != $total" >&2
	exit 1
fi
if [ "$rejected" -eq 0 ]; then
	echo "overload_profiled: no rejections despite 5x saturation" >&2
	exit 1
fi
if [ "$accepted" -eq 0 ]; then
	echo "overload_profiled: flood starved every submission" >&2
	exit 1
fi

# Bounded admission latency: p99 under 2s even while saturated.
p99=$(sort -g "$rdir/latencies" | awk -v n="$total" 'NR == int(n * 99 / 100) { print; exit }')
if [ "$(awk "BEGIN { print ($p99 > 2.0) ? 1 : 0 }")" -eq 1 ]; then
	echo "overload_profiled: p99 admission latency ${p99}s, want <= 2s" >&2
	exit 1
fi

# Zero duplicated: every accepted ID is distinct. Zero lost: each reaches a
# terminal state.
distinct=$(sort -u "$rdir/ids" | wc -l)
if [ "$distinct" -ne "$accepted" ]; then
	echo "overload_profiled: $accepted accepted jobs but only $distinct distinct IDs" >&2
	exit 1
fi
while read -r jid; do
	wait_job "$jid" > /dev/null
done < "$rdir/ids"
submitted=$(curl -fsS "$base/metrics" | awk '/^profiled_jobs_submitted_total / { print $2 }')
if [ "$submitted" -ne "$accepted" ]; then
	echo "overload_profiled: jobs_submitted_total $submitted != accepted $accepted" >&2
	exit 1
fi
status=$(curl -fsS "$base/healthz" | jq -r '.status')
if [ "$status" != "ok" ]; then
	echo "overload_profiled: healthz '$status' after the flood drained, want ok" >&2
	exit 1
fi
echo "phase 1 passed: $accepted accepted, $rejected rejected (Retry-After honest), p99 ${p99}s, zero lost/duplicated"

echo "== phase 1b: concurrent idempotent retries =="
gen_csv 9001 120 "$rdir/dup.csv"
jq -Rs '{csv: ., idempotency_key: "dup-key-1"}' < "$rdir/dup.csv" > "$rdir/dup.json"
i=0
dup_pids=""
while [ "$i" -lt 10 ]; do
	i=$((i + 1))
	curl -sS -X POST -H 'Content-Type: application/json' \
		--data-binary @"$rdir/dup.json" "$base/v1/jobs" | jq -r '.id' > "$rdir/dup.$i" &
	dup_pids="$dup_pids $!"
done
for pid in $dup_pids; do
	wait "$pid"
done
dup_ids=$(cat "$rdir"/dup.1 "$rdir"/dup.2 "$rdir"/dup.3 "$rdir"/dup.4 "$rdir"/dup.5 \
	"$rdir"/dup.6 "$rdir"/dup.7 "$rdir"/dup.8 "$rdir"/dup.9 "$rdir"/dup.10 | sort -u)
if [ "$(printf '%s\n' "$dup_ids" | wc -l)" -ne 1 ] || [ -z "$dup_ids" ]; then
	echo "overload_profiled: 10 concurrent same-key submissions yielded IDs: $dup_ids" >&2
	exit 1
fi
wait_job "$dup_ids" > /dev/null
# Journaled exactly once: the key appears in one admission record, so dedup
# holds across a crash too.
wal_hits=$(grep -a -c '"idempotency_key":"dup-key-1"' "$statedir/profiled.wal")
if [ "$wal_hits" -ne 1 ]; then
	echo "overload_profiled: idempotency key journaled $wal_hits times, want exactly 1" >&2
	exit 1
fi
echo "phase 1b passed: one job ($dup_ids), journaled once"

echo "== phase 2: circuit breaker on a deadline-blowing dataset =="
# A genuinely hostile dataset: 14 low-cardinality columns and no cheap keys,
# so the lattice walk runs for seconds. The admission estimator — trained on
# the flood's ordinary datasets — predicts it fits the deadline and admits
# it; the run then blows the deadline. Exactly the case breakers exist for.
awk 'BEGIN {
	srand(42)
	h = "c0"; for (c = 1; c < 14; c++) h = h ",c" c; print h
	for (r = 0; r < 12000; r++) {
		row = int(rand()*5); for (c = 1; c < 14; c++) row = row "," int(rand()*5)
		print row
	}
}' > "$rdir/hostile.csv"
jq -Rs '{csv: ., timeout_seconds: 0.75}' < "$rdir/hostile.csv" > "$rdir/hostile.json"
hid=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$rdir/hostile.json" "$base/v1/jobs" | jq -r '.id')
hstate=$(wait_job "$hid")
case "$hstate" in
partial|failed) ;;
*)
	echo "overload_profiled: 0.75s-deadline job on the hostile dataset ended '$hstate'" >&2
	exit 1
	;;
esac

# Threshold 1: that single blowout opened the breaker. The retry — even with
# a generous deadline — fast-fails with 422 and the prior error.
jq -Rs '{csv: ., timeout_seconds: 30}' < "$rdir/hostile.csv" > "$rdir/hostile2.json"
code=$(curl -sS -o "$rdir/bk.body" -D "$rdir/bk.hdr" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' \
	--data-binary @"$rdir/hostile2.json" "$base/v1/jobs")
if [ "$code" -ne 422 ]; then
	echo "overload_profiled: open-breaker resubmission got $code, want 422" >&2
	cat "$rdir/bk.body" >&2
	exit 1
fi
retry_after_ok "$rdir/bk.hdr"
jq -e '.error | test("circuit breaker")' < "$rdir/bk.body" > /dev/null
status=$(curl -fsS "$base/healthz" | jq -r '.status')
if [ "$status" != "degraded" ]; then
	echo "overload_profiled: healthz '$status' with an open breaker, want degraded" >&2
	exit 1
fi

# One cooldown later the trial probe runs with a sane deadline, succeeds,
# and closes the breaker.
sleep 2.2
tid=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$rdir/hostile2.json" "$base/v1/jobs" | jq -r '.id')
tstate=$(wait_job "$tid")
if [ "$tstate" != "done" ]; then
	echo "overload_profiled: breaker trial job ended '$tstate', want done" >&2
	exit 1
fi
status=$(curl -fsS "$base/healthz" | jq -r '.status')
if [ "$status" != "ok" ]; then
	echo "overload_profiled: healthz '$status' after the breaker closed, want ok" >&2
	exit 1
fi
curl -fsS "$base/metrics" > "$rdir/metrics.breaker"
grep -q '^profiled_breaker_trips_total 1$' "$rdir/metrics.breaker"
echo "phase 2 passed: tripped on one blowout, 422 fast-fail, closed by the trial probe"

echo "== phase 3: hard memory watermark (fault-injected) =="
kill_daemon
HOLISTIC_FAULTS="mem.watermark:error" start_daemon

# Large submission (the hostile CSV is ~330 KiB, past the 256 KiB large-job
# threshold): refused with 503 + Retry-After.
jq -Rs '{csv: .}' < "$rdir/hostile.csv" > "$rdir/big.json"
code=$(curl -sS -o "$rdir/mem.body" -D "$rdir/mem.hdr" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' \
	--data-binary @"$rdir/big.json" "$base/v1/jobs")
if [ "$code" -ne 503 ]; then
	echo "overload_profiled: large submission under memory pressure got $code, want 503" >&2
	cat "$rdir/mem.body" >&2
	exit 1
fi
retry_after_ok "$rdir/mem.hdr"
jq -e '.error | test("memory pressure")' < "$rdir/mem.body" > /dev/null

# Small submissions still run — degraded.
small=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d '{"csv": "a,b\n1,2\n3,4\n"}' "$base/v1/jobs")
sid=$(printf '%s' "$small" | jq -r '.id')
if [ "$(printf '%s' "$small" | jq -r '.degraded')" != "true" ]; then
	echo "overload_profiled: small job under pressure not flagged degraded" >&2
	exit 1
fi
sstate=$(wait_job "$sid")
if [ "$sstate" != "done" ]; then
	echo "overload_profiled: degraded small job ended '$sstate', want done" >&2
	exit 1
fi
curl -fsS "$base/metrics" > "$rdir/metrics.mem"
grep -q '^profiled_mem_watermark_level 2$' "$rdir/metrics.mem"
status=$(curl -fsS "$base/healthz" | jq -r '.status')
if [ "$status" != "degraded" ]; then
	echo "overload_profiled: healthz '$status' above the hard watermark, want degraded" >&2
	exit 1
fi
echo "phase 3 passed: large refused with honest Retry-After, small served degraded, pressure visible"

kill_daemon
echo "overload_profiled: all checks passed"
