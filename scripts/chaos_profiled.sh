#!/bin/sh
# chaos_profiled.sh — fault-injection run against a live profiled daemon:
# arm injection points via HOLISTIC_FAULTS, then prove the service contains
# panics (failed jobs, captured stacks, no cache poisoning), reports itself
# degraded after repeated panics and recovers on the next clean job, retries
# transient faults to success, maps admission faults to 503 + Retry-After,
# and still drains cleanly on SIGTERM.
#
# Requires curl and jq. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "chaos_profiled: $tool not found, skipping" >&2
		exit 0
	fi
done

workdir=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "== build =="
go build -o "$workdir/profiled" ./cmd/profiled

cat > "$workdir/data.csv" <<'EOF'
id,zip,city
1,10115,Berlin
2,10115,Berlin
3,14467,Potsdam
4,69117,Heidelberg
EOF
jq -Rs '{csv: ., dataset: "chaos"}' < "$workdir/data.csv" > "$workdir/req.json"

# start_daemon FAULT_SPEC [extra flags...] — boots profiled with the spec
# armed and sets $base to its address.
start_daemon() {
	spec=$1
	shift
	: > "$workdir/out.log"
	: > "$workdir/err.log"
	HOLISTIC_FAULTS="$spec" "$workdir/profiled" -addr 127.0.0.1:0 -workers 1 "$@" \
		> "$workdir/out.log" 2> "$workdir/err.log" &
	server_pid=$!
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n 's/^profiled: listening on //p' "$workdir/out.log" | head -n1)
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "chaos_profiled: server never reported its address" >&2
		cat "$workdir/err.log" >&2
		exit 1
	fi
	base="http://$addr"
}

stop_daemon() {
	kill -TERM "$server_pid"
	for _ in $(seq 1 100); do
		kill -0 "$server_pid" 2>/dev/null || break
		sleep 0.1
	done
	if kill -0 "$server_pid" 2>/dev/null; then
		echo "chaos_profiled: server did not exit after SIGTERM" >&2
		exit 1
	fi
	grep -q 'drained cleanly' "$workdir/err.log"
	server_pid=""
}

# submit_and_wait — submits req.json and echoes "<id> <terminal-state>".
submit_and_wait() {
	id=$(curl -fsS -X POST -H 'Content-Type: application/json' \
		--data-binary @"$workdir/req.json" "$base/v1/jobs" | jq -r '.id')
	state=""
	for _ in $(seq 1 100); do
		state=$(curl -fsS "$base/v1/jobs/$id" | jq -r '.state')
		case "$state" in done|partial|failed|canceled) break ;; esac
		sleep 0.1
	done
	echo "$id $state"
}

echo "== phase 1: panic containment, watchdog, recovery =="
# Three jobs' worth of injected panics (each panic kills one run); the
# default watchdog threshold is three consecutive panics. The circuit
# breaker threshold is raised above the panic count: this phase tests the
# watchdog and cache hygiene, and three failures of one (dataset,
# algorithm) pair would otherwise open the default breaker and 422 the
# recovery submission (that path has its own harness in
# overload_profiled.sh).
start_daemon "pli.intersect:panic:3" -retries 0 -breaker-threshold 4

for i in 1 2 3; do
	set -- $(submit_and_wait)
	if [ "$2" != "failed" ]; then
		echo "chaos_profiled: panicking job $i ended as '$2', want failed" >&2
		exit 1
	fi
	curl -fsS "$base/v1/jobs/$1" | jq -e '.error | test("panic")' > /dev/null
done
echo "three jobs failed on contained panics"

curl -fsS "$base/healthz" | jq -e '.status == "degraded"' > /dev/null
curl -fsS "$base/metrics" | grep -q '^profiled_degraded 1$'
echo "watchdog reports degraded after repeated panics"

# The fault budget is spent; the same dataset must now profile cleanly —
# proving failed runs never poisoned the result cache — and the watchdog
# must clear.
set -- $(submit_and_wait)
if [ "$2" != "done" ]; then
	echo "chaos_profiled: post-fault job ended as '$2', want done" >&2
	exit 1
fi
curl -fsS "$base/v1/jobs/$1" | jq -e '.result.fds | length > 0' > /dev/null
curl -fsS "$base/healthz" | jq -e '.status == "ok"' > /dev/null
curl -fsS "$base/metrics" | grep -q '^profiled_panics_total 3$'
echo "clean job succeeded; health recovered"

stop_daemon

echo "== phase 2: transient retry and admission shedding =="
# The first submit is shed with a structured 503; the one job that gets in
# hits two transient reader faults and must be retried to success.
start_daemon "server.enqueue:error:1,reader.io:transient:2" -retries 2 -retry-backoff 10ms

code=$(curl -sS -o "$workdir/resp.json" -w '%{http_code}' \
	-D "$workdir/headers.txt" -X POST -H 'Content-Type: application/json' \
	--data-binary @"$workdir/req.json" "$base/v1/jobs")
if [ "$code" != "503" ]; then
	echo "chaos_profiled: enqueue fault returned $code, want 503" >&2
	exit 1
fi
grep -qi '^Retry-After:' "$workdir/headers.txt"
echo "admission fault shed with 503 + Retry-After"

set -- $(submit_and_wait)
if [ "$2" != "done" ]; then
	echo "chaos_profiled: retried job ended as '$2', want done" >&2
	curl -fsS "$base/v1/jobs/$1" >&2 || true
	exit 1
fi
curl -fsS "$base/v1/jobs/$1/events" | jq -s -e 'map(select(.type == "retry")) | length == 2' > /dev/null
curl -fsS "$base/metrics" | grep -q '^profiled_job_retries_total 2$'
echo "transient faults retried to success (2 retry events)"

stop_daemon

echo "chaos_profiled: all checks passed"
