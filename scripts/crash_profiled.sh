#!/bin/sh
# crash_profiled.sh — kill -9 recovery harness for the profiled daemon: run
# it with -state-dir, SIGKILL it at randomized points while batches are in
# flight, restart, and assert the recovered state is equivalent to an
# uninterrupted run. Each cycle the restarted daemon must:
#
#   - serve every dataset it ever acknowledged, with the profile report
#     byte-equivalent to profiling the applied rows from scratch (the `profile`
#     CLI on a tracked copy of the data is the uninterrupted reference);
#   - answer for every job ID it ever handed out — done, failed, or "lost",
#     never a 404 or a hang;
#   - poison (not silently replay) a session whose in-flight batch was lost.
#
# Two final phases corrupt the state on disk directly: a torn WAL tail must
# be truncated and metered, and a flipped byte in a checkpoint must fail the
# session with the corruption counted — never replayed as if valid.
#
# Requires curl and jq. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "crash_profiled: $tool not found, skipping" >&2
		exit 0
	fi
done

workdir=$(mktemp -d)
server_pid=""
trap 'kill -9 "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "== build =="
go build -o "$workdir/profiled" ./cmd/profiled
go build -o "$workdir/profile" ./cmd/profile

statedir="$workdir/state"
cur="$workdir/cur.csv"
cat > "$cur" <<'EOF'
id,zip,city
1,10115,Berlin
2,10115,Berlin
3,14467,Potsdam
4,69117,Heidelberg
EOF

start_daemon() {
	: > "$workdir/out.log"
	: > "$workdir/err.log"
	"$workdir/profiled" -addr 127.0.0.1:0 -workers 1 -state-dir "$statedir" \
		> "$workdir/out.log" 2> "$workdir/err.log" &
	server_pid=$!
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n 's/^profiled: listening on //p' "$workdir/out.log" | head -n1)
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "crash_profiled: server never reported its address" >&2
		cat "$workdir/err.log" >&2
		exit 1
	fi
	base="http://$addr"
}

kill_daemon() {
	kill -9 "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
	server_pid=""
}

# wait_settled ID — polls the dataset until no job is in flight (ready or
# failed) and echoes "<state> <version>".
wait_settled() {
	for _ in $(seq 1 100); do
		st=$(curl -fsS "$base/v1/datasets/$1" | jq -r '"\(.state) \(.version)"')
		case "$st" in ready*|failed*) echo "$st"; return ;; esac
		sleep 0.1
	done
	echo "crash_profiled: dataset $1 never settled" >&2
	exit 1
}

# assert_equivalent ID — the daemon's profile for ID must match the profile
# CLI run from scratch on the tracked CSV (rows and all three dependency
# classes, order-insensitively).
assert_equivalent() {
	curl -fsS "$base/v1/datasets/$1/profile" | jq -S \
		'.report | {rows, inds: (.inds // [] | map(tostring) | sort), uccs: (.uccs // [] | map(tostring) | sort), fds: (.fds // [] | map(tostring) | sort)}' \
		> "$workdir/got.json"
	"$workdir/profile" -format json "$cur" | jq -S \
		'{rows, inds: (.inds // [] | map(tostring) | sort), uccs: (.uccs // [] | map(tostring) | sort), fds: (.fds // [] | map(tostring) | sort)}' \
		> "$workdir/want.json"
	if ! diff -u "$workdir/want.json" "$workdir/got.json"; then
		echo "crash_profiled: recovered profile differs from the uninterrupted reference" >&2
		exit 1
	fi
}

# assert_no_dangling ID — every job the dataset lists must answer with a
# terminal state after the restart.
assert_no_dangling() {
	for jid in $(curl -fsS "$base/v1/datasets/$1" | jq -r '.job_ids[]'); do
		jstate=$(curl -fsS "$base/v1/jobs/$jid" | jq -r '.state')
		case "$jstate" in
		done|partial|failed|canceled|lost) ;;
		*)
			echo "crash_profiled: job $jid answers '$jstate' after restart, want a terminal state" >&2
			exit 1
			;;
		esac
	done
}

create_dataset() {
	jq -Rs '{csv: .}' < "$cur" > "$workdir/create.json"
	dsid=$(curl -fsS -X POST -H 'Content-Type: application/json' \
		--data-binary @"$workdir/create.json" "$base/v1/datasets" | jq -r '.id')
	set -- $(wait_settled "$dsid")
	if [ "$1" != "ready" ]; then
		echo "crash_profiled: dataset $dsid failed its initial profile" >&2
		exit 1
	fi
}

echo "== phase 1: $((5)) kill -9 cycles mid-batch =="
start_daemon
create_dataset
cycles=5
applied=0
poisoned=0
i=0
while [ "$i" -lt "$cycles" ]; do
	i=$((i + 1))
	ver_before=$(curl -fsS "$base/v1/datasets/$dsid" | jq -r '.version')
	batch="$((100 + i)),10115,Berlin
$((200 + i)),$((70000 + i)),Town$i"
	printf '%s\n' "$batch" | jq -Rs '{csv: .}' > "$workdir/batch.json"
	curl -fsS -X POST -H 'Content-Type: application/json' \
		--data-binary @"$workdir/batch.json" "$base/v1/datasets/$dsid/batches" > /dev/null

	# Kill at a randomized point while the batch is (maybe still) in flight.
	r=$(od -An -N1 -tu1 /dev/urandom | tr -d ' ')
	sleep "$(awk "BEGIN{printf \"%.3f\", $r / 1250}")" # 0 – 0.204s
	kill_daemon

	start_daemon
	grep -q 'recovery: state-dir=' "$workdir/err.log" || {
		echo "crash_profiled: restarted daemon logged no recovery line" >&2
		exit 1
	}
	set -- $(wait_settled "$dsid")
	state=$1 ver=$2
	if [ "$state" = "ready" ]; then
		if [ "$ver" -le "$ver_before" ]; then
			echo "crash_profiled: cycle $i: ready but version $ver did not advance past $ver_before" >&2
			exit 1
		fi
		# The batch survived the crash: fold it into the reference CSV.
		printf '%s\n' "$batch" >> "$cur"
		applied=$((applied + 1))
	else
		# The in-flight batch was lost: the session must be poisoned, its
		# last good report (the pre-batch state) still served.
		poisoned=$((poisoned + 1))
	fi
	assert_equivalent "$dsid"
	assert_no_dangling "$dsid"
	echo "cycle $i: $state v$ver (reference: $(($(wc -l < "$cur") - 1)) rows) — equivalent"

	if [ "$state" = "failed" ]; then
		# A poisoned session stays poisoned; continue the cycles on a fresh
		# dataset built from the reference rows.
		create_dataset
	fi
done
echo "phase 1 passed: $applied applied, $poisoned lost-and-poisoned, all equivalent"

echo "== phase 2: torn WAL tail =="
kill_daemon
printf 'torn-garbage' >> "$statedir/profiled.wal"
start_daemon
set -- $(wait_settled "$dsid")
if [ "$1" != "ready" ]; then
	echo "crash_profiled: torn tail broke an intact session (state $1)" >&2
	exit 1
fi
curl -fsS "$base/metrics" | grep -q '^profiled_corrupt_tail_truncations_total 1$'
grep -q 'truncated .* torn WAL tail' "$workdir/err.log"
assert_equivalent "$dsid"
echo "torn tail truncated, logged, and metered; state intact"

echo "== phase 3: corrupt checkpoint =="
kill_daemon
# Flip one byte in the middle of the dataset's checkpoint payload.
size=$(wc -c < "$statedir/$dsid.ckpt")
printf '\377' | dd of="$statedir/$dsid.ckpt" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null
start_daemon
set -- $(wait_settled "$dsid")
if [ "$1" != "failed" ]; then
	echo "crash_profiled: corrupt checkpoint replayed as '$1', want failed" >&2
	exit 1
fi
curl -fsS "$base/v1/datasets/$dsid" | jq -e '.error | test("corrupt")' > /dev/null
curl -fsS "$base/metrics" | grep -q '^profiled_corrupt_checkpoints_total 1$'
grep -q 'recovery: dataset .*corrupt' "$workdir/err.log"
echo "corrupt checkpoint detected, session failed, corruption metered"

kill_daemon
echo "crash_profiled: all checks passed"
