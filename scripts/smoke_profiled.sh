#!/bin/sh
# smoke_profiled.sh — end-to-end smoke test of the profiled service: start
# the daemon, submit a small job over HTTP, poll to completion, and assert
# the result matches what cmd/profile emits for the same dataset. A second
# submission must be served from the content-addressed result cache.
#
# Requires curl and jq. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "smoke_profiled: $tool not found, skipping" >&2
		exit 0
	fi
done

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "== build =="
go build -o "$workdir/profiled" ./cmd/profiled
go build -o "$workdir/profile" ./cmd/profile

cat > "$workdir/data.csv" <<'EOF'
id,zip,city
1,10115,Berlin
2,10115,Berlin
3,14467,Potsdam
4,69117,Heidelberg
EOF

echo "== start profiled =="
"$workdir/profiled" -addr 127.0.0.1:0 -workers 1 > "$workdir/out.log" 2> "$workdir/err.log" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/^profiled: listening on //p' "$workdir/out.log" | head -n1)
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "smoke_profiled: server never reported its address" >&2
	cat "$workdir/err.log" >&2
	exit 1
fi
base="http://$addr"
echo "server at $base"

curl -fsS "$base/healthz" | jq -e '.status == "ok"' > /dev/null

echo "== submit job =="
jq -Rs '{csv: ., dataset: "smoke"}' < "$workdir/data.csv" > "$workdir/req.json"
job_id=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$workdir/req.json" "$base/v1/jobs" | jq -r '.id')
echo "job $job_id"

state=""
for _ in $(seq 1 100); do
	state=$(curl -fsS "$base/v1/jobs/$job_id" | jq -r '.state')
	case "$state" in done|failed|canceled) break ;; esac
	sleep 0.1
done
if [ "$state" != "done" ]; then
	echo "smoke_profiled: job ended as '$state'" >&2
	curl -fsS "$base/v1/jobs/$job_id" >&2 || true
	exit 1
fi

echo "== compare with cmd/profile =="
# Timings, checks and cache counters vary run to run; the discovered
# metadata must be identical.
curl -fsS "$base/v1/jobs/$job_id" \
	| jq -S '.result | {algorithm, columns, rows, inds, uccs, fds}' > "$workdir/api.json"
"$workdir/profile" -format json "$workdir/data.csv" \
	| jq -S '{algorithm, columns, rows, inds, uccs, fds}' > "$workdir/cli.json"
# The dataset name differs (path vs "smoke"), so it is excluded above.
if ! diff -u "$workdir/cli.json" "$workdir/api.json"; then
	echo "smoke_profiled: API result differs from CLI result" >&2
	exit 1
fi

echo "== resubmit: expect result-cache hit =="
hit=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$workdir/req.json" "$base/v1/jobs" | jq -r '.cache_hit and .state == "done"')
if [ "$hit" != "true" ]; then
	echo "smoke_profiled: second submission was not served from the cache" >&2
	exit 1
fi
curl -fsS "$base/metrics" | grep -q '^profiled_result_cache_hits_total 1$'

echo "== event stream =="
curl -fsS "$base/v1/jobs/$job_id/events" | tail -n1 | jq -e '.type == "state" and .state == "done"' > /dev/null

echo "== graceful shutdown =="
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
	kill -0 "$server_pid" 2>/dev/null || break
	sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
	echo "smoke_profiled: server did not exit after SIGTERM" >&2
	exit 1
fi
grep -q 'drained cleanly' "$workdir/err.log"

echo "smoke_profiled: all checks passed"
