// Genomics: the paper's introductory use case. Genome annotation exports
// arrive without schema documentation; before such a table can be linked to
// other datasets, its keys, references and dependencies must be discovered.
//
// This example generates a GFF-style feature table (genes, transcripts and
// exons with parent references), profiles it holistically, and interprets
// the metadata: the UCC identifies the record key, the IND parent_id ⊆
// feature_id certifies that parent references are resolvable (a foreign key
// within the table), and the FDs expose the denormalised per-gene columns.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"holistic"
)

func main() {
	rel, err := holistic.NewRelation("features", featureColumns, generateFeatures(600))
	if err != nil {
		log.Fatal(err)
	}

	res := holistic.ProfileRelation(rel, holistic.Options{
		// Feature rows without a parent leave the column empty; NULLs must
		// not break the containment check for the reference candidate.
		IND: holistic.INDOptions{IgnoreNulls: true},
	})
	names := rel.ColumnNames()

	fmt.Printf("Profiled %d features × %d columns.\n\n", rel.NumRows(), rel.NumColumns())

	fmt.Println("Key candidates (minimal UCCs):")
	for _, u := range res.UCCs {
		fmt.Printf("  %v\n", cols(u, names))
	}

	fmt.Println("\nJoin/reference candidates (unary INDs):")
	for _, d := range res.INDs {
		fmt.Printf("  %s ⊆ %s", names[d.Dependent], names[d.Referenced])
		if names[d.Dependent] == "parent_id" && names[d.Referenced] == "feature_id" {
			fmt.Print("   <- resolvable parent reference (intra-table foreign key)")
		}
		fmt.Println()
	}

	fmt.Println("\nDenormalisation witnesses (FDs with single-column left-hand side):")
	for _, f := range res.FDs {
		if f.LHS.Len() == 1 {
			fmt.Printf("  %v -> %s\n", cols(f.LHS, names), names[f.RHS])
		}
	}
	fmt.Printf("\n(%d minimal FDs in total)\n", len(res.FDs))
}

var featureColumns = []string{
	"feature_id", "parent_id", "type", "chromosome", "strand", "gene_id", "gene_name", "biotype",
}

// generateFeatures builds a deterministic annotation table: genes own
// transcripts, transcripts own exons; chromosome/strand/name/biotype are
// functions of the gene.
func generateFeatures(n int) [][]string {
	rng := rand.New(rand.NewSource(7))
	var rows [][]string
	geneCount := n / 6
	for g := 0; g < geneCount; g++ {
		geneID := fmt.Sprintf("GENE%04d", g)
		chrom := fmt.Sprintf("chr%d", 1+g%22)
		strand := "+"
		if g%3 == 0 {
			strand = "-"
		}
		name := fmt.Sprintf("SYMB%04d", g)
		biotype := []string{"protein_coding", "lncRNA", "pseudogene"}[g%3]
		gene := []string{geneID, "", "gene", chrom, strand, geneID, name, biotype}
		rows = append(rows, gene)
		for t := 0; t < 1+rng.Intn(2); t++ {
			trID := fmt.Sprintf("%s.t%d", geneID, t)
			rows = append(rows, []string{trID, geneID, "transcript", chrom, strand, geneID, name, biotype})
			for e := 0; e < 1+rng.Intn(3); e++ {
				exID := fmt.Sprintf("%s.e%d", trID, e)
				rows = append(rows, []string{exID, trID, "exon", chrom, strand, geneID, name, biotype})
			}
		}
		if len(rows) >= n {
			break
		}
	}
	return rows
}

func cols(s holistic.ColumnSet, names []string) []string {
	cc := s.Columns()
	out := make([]string, len(cc))
	for i, c := range cc {
		out[i] = names[c]
	}
	return out
}
