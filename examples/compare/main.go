// Compare: run all four profiling strategies of the paper's evaluation on
// one synthetic dataset and contrast their runtimes and (identical) outputs
// — a miniature of the Table 3 experiment using only the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"holistic"
	"holistic/internal/dataset"
)

func main() {
	rel := dataset.NCVoter(2000, 14)
	src := holistic.RelationSource{Rel: rel}
	fmt.Printf("dataset: %s (%d columns × %d rows)\n\n", rel.Name(), rel.NumColumns(), rel.NumRows())
	fmt.Printf("%-10s %10s %8s %8s %8s\n", "strategy", "time", "INDs", "UCCs", "FDs")

	var fdCounts []int
	for _, strategy := range holistic.Strategies() {
		start := time.Now()
		res, err := holistic.ProfileWith(strategy, src, holistic.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10v %8d %8d %8d\n",
			strategy, time.Since(start).Round(time.Millisecond), len(res.INDs), len(res.UCCs), len(res.FDs))
		fdCounts = append(fdCounts, len(res.FDs))
	}

	for _, n := range fdCounts[1:] {
		if n != fdCounts[0] {
			log.Fatal("BUG: strategies disagree on the number of minimal FDs")
		}
	}
	fmt.Println("\nAll strategies agree on the discovered minimal FDs.")
	fmt.Println("(TANE discovers FDs only; the holistic runs add UCCs and INDs for free.)")
}
