// Quickstart: profile a small in-memory table and print all three kinds of
// discovered metadata.
package main

import (
	"fmt"
	"log"

	"holistic"
)

func main() {
	// A tiny order table: order_id is the key, customer data repeats per
	// customer (customer_id determines name and city), and every value of
	// ship_city also appears in city.
	rel, err := holistic.NewRelation("orders",
		[]string{"order_id", "customer_id", "customer_name", "city", "ship_city"},
		[][]string{
			{"1", "c1", "Ada", "Berlin", "Berlin"},
			{"2", "c1", "Ada", "Berlin", "Potsdam"},
			{"3", "c2", "Grace", "Potsdam", "Berlin"},
			{"4", "c3", "Edsger", "Berlin", "Potsdam"},
			{"5", "c2", "Grace", "Potsdam", "Potsdam"},
		})
	if err != nil {
		log.Fatal(err)
	}

	res := holistic.ProfileRelation(rel, holistic.Options{})

	names := rel.ColumnNames()
	fmt.Println("Minimal unique column combinations (key candidates):")
	for _, u := range res.UCCs {
		fmt.Printf("  %v\n", columnNames(u, names))
	}

	fmt.Println("\nMinimal functional dependencies:")
	for _, f := range res.FDs {
		fmt.Printf("  %v -> %s\n", columnNames(f.LHS, names), names[f.RHS])
	}

	fmt.Println("\nUnary inclusion dependencies:")
	for _, d := range res.INDs {
		fmt.Printf("  %s ⊆ %s\n", names[d.Dependent], names[d.Referenced])
	}

	fmt.Println("\nPhase timings:")
	for _, p := range res.Phases {
		fmt.Printf("  %-24s %v\n", p.Name, p.Duration)
	}
}

func columnNames(s holistic.ColumnSet, names []string) []string {
	cols := s.Columns()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = names[c]
	}
	return out
}
