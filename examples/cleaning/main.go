// Cleaning: use approximate functional dependencies to find dirty rows —
// the data-cleansing use case from the paper's introduction. An FD that
// holds on 99% of a table is usually a business rule with violations, and
// the violating rows are concrete cleaning candidates.
package main

import (
	"fmt"
	"log"

	"holistic"
)

func main() {
	rel, err := holistic.NewRelation("contacts", contactColumns, dirtyContacts())
	if err != nil {
		log.Fatal(err)
	}

	// Exact FDs first: rules that hold without exception.
	exact := holistic.ProfileRelation(rel, holistic.Options{})
	exactSet := map[string]bool{}
	for _, f := range exact.FDs {
		exactSet[f.String()] = true
	}

	// Approximate FDs with up to 5% violations and small left-hand sides.
	approx := holistic.ApproximateFDs(rel, 0.05, 2)

	names := rel.ColumnNames()
	fmt.Println("Soft rules (hold with ≤5% violations but not exactly):")
	for _, af := range approx {
		key := (holistic.FD{LHS: af.LHS, RHS: af.RHS}).String()
		if exactSet[key] || af.Error == 0 {
			continue // exact rules are not cleaning candidates
		}
		fmt.Printf("  %v -> %s  (%.1f%% of rows violate)\n",
			cols(af.LHS, names), names[af.RHS], 100*af.Error)
		reportViolations(rel, af)
	}
}

// reportViolations prints the rows deviating from the per-group majority.
func reportViolations(rel *holistic.Relation, af holistic.ApproxFD) {
	type group struct {
		counts map[string]int
		rows   map[string][]int
	}
	groups := map[string]*group{}
	lhsCols := af.LHS.Columns()
	for row := 0; row < rel.NumRows(); row++ {
		key := ""
		for _, c := range lhsCols {
			key += rel.Value(row, c) + "|"
		}
		g := groups[key]
		if g == nil {
			g = &group{counts: map[string]int{}, rows: map[string][]int{}}
			groups[key] = g
		}
		v := rel.Value(row, af.RHS)
		g.counts[v]++
		g.rows[v] = append(g.rows[v], row)
	}
	for _, g := range groups {
		majority, best := "", 0
		for v, n := range g.counts {
			if n > best {
				majority, best = v, n
			}
		}
		for v, rows := range g.rows {
			if v == majority {
				continue
			}
			for _, row := range rows {
				fmt.Printf("      row %d: %v (majority value here: %q)\n",
					row, rel.Row(row), majority)
			}
		}
	}
}

var contactColumns = []string{"id", "zip", "city", "country"}

func dirtyContacts() [][]string {
	rows := [][]string{}
	add := func(n int, zip, city, country string) {
		for i := 0; i < n; i++ {
			rows = append(rows, []string{fmt.Sprintf("c%03d", len(rows)), zip, city, country})
		}
	}
	add(30, "14482", "Potsdam", "DE")
	add(25, "10115", "Berlin", "DE")
	add(25, "75001", "Paris", "FR")
	// Dirty entries: one typo city for an existing zip, one wrong country.
	rows = append(rows, []string{"c900", "14482", "Posdam", "DE"})
	rows = append(rows, []string{"c901", "10115", "Berlin", "FR"})
	return rows
}

func cols(s holistic.ColumnSet, names []string) []string {
	cc := s.Columns()
	out := make([]string, len(cc))
	for i, c := range cc {
		out[i] = names[c]
	}
	return out
}
