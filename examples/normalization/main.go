// Normalization: use the jointly discovered UCCs and FDs to analyse a
// denormalised table and propose a decomposition — the schema-design use
// case (database reverse engineering) motivating holistic profiling.
//
// The example profiles a flat invoice table, picks a primary key from the
// minimal UCCs, classifies every FD as a key dependency or a violation of
// 2NF/3NF, and prints the suggested decomposed relations.
package main

import (
	"fmt"
	"log"

	"holistic"
)

func main() {
	rel, err := holistic.NewRelation("invoice_lines", invoiceColumns, invoiceRows())
	if err != nil {
		log.Fatal(err)
	}
	res := holistic.ProfileRelation(rel, holistic.Options{})
	names := rel.ColumnNames()

	if len(res.UCCs) == 0 {
		log.Fatal("no key found — table has duplicate semantics")
	}
	// Pick the smallest UCC as primary key (ties: first in sorted order).
	key := res.UCCs[0]
	fmt.Printf("Primary key: %v\n\n", cols(key, names))

	fmt.Println("Functional dependencies and their normal-form diagnosis:")
	type split struct {
		determinant holistic.ColumnSet
		attrs       holistic.ColumnSet
	}
	groups := map[holistic.ColumnSet]holistic.ColumnSet{}
	for _, f := range res.FDs {
		if f.LHS.IsEmpty() {
			fmt.Printf("  constant column: %s\n", names[f.RHS])
			continue
		}
		switch {
		case f.LHS == key:
			fmt.Printf("  key FD        : %v -> %s\n", cols(f.LHS, names), names[f.RHS])
		case f.LHS.IsProperSubsetOf(key):
			fmt.Printf("  2NF violation : %v -> %s (partial key dependency)\n", cols(f.LHS, names), names[f.RHS])
			groups[f.LHS] = groups[f.LHS].With(f.RHS)
		default:
			fmt.Printf("  3NF violation : %v -> %s (transitive dependency)\n", cols(f.LHS, names), names[f.RHS])
			groups[f.LHS] = groups[f.LHS].With(f.RHS)
		}
	}

	fmt.Println("\nSuggested decomposition:")
	var determinants []holistic.ColumnSet
	for det := range groups {
		determinants = append(determinants, det)
	}
	// Deterministic output order.
	for _, f := range res.FDs {
		for i, det := range determinants {
			if det == f.LHS {
				fmt.Printf("  table_%d(%v*, %v)\n", i+1, cols(det, names), cols(groups[det], names))
				determinants = append(determinants[:i], determinants[i+1:]...)
				break
			}
		}
	}
	remaining := rel.AllColumns()
	for _, rhs := range groups {
		remaining = remaining.Diff(rhs)
	}
	fmt.Printf("  core(%v)\n", cols(remaining, names))
}

var invoiceColumns = []string{
	"invoice_id", "line_no", "product_id", "product_name", "unit_price",
	"customer_id", "customer_name", "quantity",
}

func invoiceRows() [][]string {
	products := [][2]string{{"p1", "Widget"}, {"p2", "Gadget"}, {"p3", "Gizmo"}}
	prices := map[string]string{"p1": "9.99", "p2": "19.99", "p3": "4.49"}
	customers := [][2]string{{"c1", "Ada"}, {"c2", "Grace"}, {"c3", "Edsger"}}
	var rows [][]string
	line := 0
	for inv := 1; inv <= 40; inv++ {
		cust := customers[inv%3]
		for l := 1; l <= 1+inv%3; l++ {
			line++
			prod := products[(inv+l)%3]
			rows = append(rows, []string{
				fmt.Sprintf("i%03d", inv),
				fmt.Sprint(l),
				prod[0], prod[1], prices[prod[0]],
				cust[0], cust[1],
				fmt.Sprint(1 + (inv*l)%5),
			})
		}
	}
	return rows
}

func cols(s holistic.ColumnSet, names []string) []string {
	cc := s.Columns()
	out := make([]string, len(cc))
	for i, c := range cc {
		out[i] = names[c]
	}
	return out
}
