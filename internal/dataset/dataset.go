// Package dataset generates the synthetic evaluation datasets.
//
// The paper evaluates on uniprot, ionosphere, ncvoter and eleven UCI
// datasets, none of which can be redistributed here. Section 6.5 of the
// paper identifies the dataset properties that drive the relative algorithm
// performance: the lattice height of the minimal UCCs and FDs, the size of
// R\Z, and the amount of shadowing. The generators in this package recreate
// those properties per dataset — column counts, row counts, per-column
// cardinalities and the planted dependency structure — deterministically
// from a seed, so the benchmark harness regenerates the paper's tables and
// figures shape-faithfully without the original data.
package dataset

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"holistic/internal/relation"
)

// Kind describes how a column's values are produced.
type Kind int

const (
	// Random draws values uniformly from a domain of Card values.
	Random Kind = iota
	// ID produces a unique value per row (a key column).
	ID
	// Derived computes the value as a deterministic function of the parent
	// columns' values, folded into DerivedCard buckets. Parents → column is
	// then a planted (not necessarily minimal) FD.
	Derived
	// MixedRadix enumerates the cartesian product of the radix Card: row i
	// gets digit (i / stride) % Card. With matching row counts this fully
	// crosses the attribute space, eliminating FDs among the crossed
	// columns (the census-style UCI datasets balance, nursery, chess).
	MixedRadix
	// Zipf draws values with a skewed (harmonic) distribution over Card
	// values, mimicking real-world categorical columns.
	Zipf
)

// ColumnSpec describes one generated column.
type ColumnSpec struct {
	Name    string
	Kind    Kind
	Card    int   // domain size for Random/Zipf/MixedRadix
	Parents []int // column indexes for Derived
	Salt    int64 // differentiates Derived functions with equal parents
	Stride  int   // MixedRadix digit stride
}

// Spec describes a whole synthetic dataset.
type Spec struct {
	Name    string
	Rows    int
	Seed    int64
	Columns []ColumnSpec
}

// Generate materialises the spec into a relation. Duplicate rows are removed
// by the relation constructor, so the resulting row count may be slightly
// below Spec.Rows for low-cardinality specs.
func Generate(spec Spec) *relation.Relation {
	rng := rand.New(rand.NewSource(spec.Seed))
	names := make([]string, len(spec.Columns))
	for i, c := range spec.Columns {
		names[i] = c.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("c%d", i)
		}
	}
	rows := make([][]string, spec.Rows)
	row := make([]string, len(spec.Columns))
	for i := 0; i < spec.Rows; i++ {
		for c, cs := range spec.Columns {
			row[c] = value(cs, rng, i, row)
		}
		rows[i] = append([]string(nil), row...)
	}
	rel, err := relation.New(spec.Name, names, rows)
	if err != nil {
		// Specs are constructed by this package; a failure is a bug here,
		// not an input error.
		panic(fmt.Sprintf("dataset %q: %v", spec.Name, err))
	}
	return rel
}

func value(cs ColumnSpec, rng *rand.Rand, rowIdx int, row []string) string {
	switch cs.Kind {
	case ID:
		return fmt.Sprintf("id%07d", rowIdx)
	case Random:
		return fmt.Sprintf("v%d", rng.Intn(max(cs.Card, 1)))
	case Zipf:
		return fmt.Sprintf("z%d", zipfDraw(rng, max(cs.Card, 1)))
	case MixedRadix:
		stride := max(cs.Stride, 1)
		return fmt.Sprintf("m%d", (rowIdx/stride)%max(cs.Card, 1))
	case Derived:
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|", cs.Salt)
		for _, p := range cs.Parents {
			h.Write([]byte(row[p]))
			h.Write([]byte{0})
		}
		// FNV alone distributes poorly modulo small domains (its prime is
		// ≡ 1 mod 3, so the multiplicative steps vanish there); finalize
		// with a murmur3-style avalanche before bucketing.
		return fmt.Sprintf("d%d", mix64(h.Sum64())%uint64(max(cs.Card, 1)))
	default:
		panic(fmt.Sprintf("dataset: unknown column kind %d", cs.Kind))
	}
}

// mix64 is the murmur3/splitmix finalizer: a bijective avalanche over 64
// bits so that near-identical hash inputs land in independent buckets.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// zipfDraw samples 0..card-1 with probability ∝ 1/(k+1).
func zipfDraw(rng *rand.Rand, card int) int {
	// Cheap inverse-CDF over the harmonic weights; card is small in all
	// specs, so the linear scan is fine.
	var total float64
	for k := 0; k < card; k++ {
		total += 1 / float64(k+1)
	}
	x := rng.Float64() * total
	for k := 0; k < card; k++ {
		x -= 1 / float64(k+1)
		if x <= 0 {
			return k
		}
	}
	return card - 1
}
