package dataset

import (
	"fmt"
	"sort"

	"holistic/internal/relation"
)

// This file defines the named dataset generators used by the benchmark
// harness, one per dataset of the paper's evaluation (Sec. 6). The comments
// give the shape targets each generator aims for; EXPERIMENTS.md records the
// paper-reported vs. measured dependency counts.

// Uniprot mimics the 10-column slice of the Universal Protein Resource used
// for the row-scalability experiment (Fig. 6): a unique accession column,
// a block of low-cardinality biological attributes, and derived annotation
// columns that plant FDs with overlapping left-hand sides — the structure
// that makes the shadowed-FD phase expensive and scales linearly with rows.
func Uniprot(rows int) *relation.Relation { return UniprotSeeded(rows, 0) }

// UniprotSeeded is Uniprot with a generator-seed override; 0 keeps the
// canonical seed, so default outputs stay byte-stable. The same convention
// holds for every *Seeded generator below: the seed shuffles the drawn
// values, not the dependency structure the column specs encode.
func UniprotSeeded(rows int, seed int64) *relation.Relation {
	return Generate(Spec{
		Name: "uniprot",
		Rows: rows,
		Seed: seedOr(seed, 42),
		Columns: []ColumnSpec{
			{Name: "entry_name", Kind: Random, Card: max(rows/3, 8)},
			{Name: "organism", Kind: Zipf, Card: 60},
			{Name: "tax_id", Kind: Derived, Parents: []int{1}, Card: 60, Salt: 1},
			{Name: "gene", Kind: Random, Card: max(rows/20, 8)},
			{Name: "gene_syn", Kind: Derived, Parents: []int{3}, Card: max(rows/25, 6), Salt: 7},
			{Name: "length", Kind: Derived, Parents: []int{3, 1}, Card: 120, Salt: 2},
			{Name: "family", Kind: Derived, Parents: []int{1, 5}, Card: 40, Salt: 3},
			{Name: "keyword", Kind: Derived, Parents: []int{5, 6}, Card: 60, Salt: 6},
			{Name: "evidence", Kind: Derived, Parents: []int{6, 7}, Card: 14, Salt: 4},
			{Name: "reviewed", Kind: Derived, Parents: []int{2, 8}, Card: 6, Salt: 5},
		},
	})
}

// Ionosphere mimics the radar dataset of the column-scalability experiment
// (Fig. 7): 351 rows and up to 34 quantized signal columns. Real radar
// returns are highly correlated, which puts the minimal UCCs and FDs on
// high lattice levels without exploding their number; we model this with a
// crossed core of eight low-radix pulse columns (whose full combination is
// the only core key, pigeonhole-provably minimal at level 8) plus derived
// signal columns computed from 3–5 core pulses each. Level-wise algorithms
// must climb through the wide middle of the lattice; MUDS' UCC-first,
// depth-first strategy reaches the deep dependencies directly — the Fig. 7
// regime (paper Sec. 6.5, criteria 1–3).
func Ionosphere(cols, rows int) *relation.Relation { return IonosphereSeeded(cols, rows, 0) }

// IonosphereSeeded is Ionosphere with a generator-seed override (0 = canonical).
func IonosphereSeeded(cols, rows int, seed int64) *relation.Relation {
	spec := Spec{Name: "ionosphere", Rows: rows, Seed: seedOr(seed, 7)}
	radices := []int{3, 2, 2, 2, 2, 2, 2, 2} // product 384 ≥ 351 rows
	core := len(radices)
	if cols < core {
		core = cols
	}
	stride := 1
	for i := core - 1; i >= 0; i-- {
		spec.Columns = append(spec.Columns, ColumnSpec{
			Name:   fmt.Sprintf("pulse%02d", i),
			Kind:   MixedRadix,
			Card:   radices[i],
			Stride: stride,
		})
		stride *= radices[i]
	}
	// Reverse so the highest-stride digit is column 0 (cosmetic only).
	for i, j := 0, core-1; i < j; i, j = i+1, j-1 {
		spec.Columns[i], spec.Columns[j] = spec.Columns[j], spec.Columns[i]
	}
	for c := core; c < cols; c++ {
		k := 3 + c%3 // 3..5 parent pulses
		parents := make([]int, k)
		for i := 0; i < k; i++ {
			parents[i] = (c*5 + i*3) % core
		}
		spec.Columns = append(spec.Columns, ColumnSpec{
			Name:    fmt.Sprintf("sig%02d", c),
			Kind:    Derived,
			Parents: dedupInts(parents),
			Card:    2 + c%2, // low cardinality keeps mixed keys deep and few
			Salt:    int64(40 + c),
		})
	}
	return Generate(spec)
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// NCVoter mimics the North Carolina voter registration slice of the phase
// experiment (Fig. 8, 10k rows × 20 columns): paired code/description
// columns (mutual FDs), address hierarchies (zip → city → state) and
// moderate-cardinality person fields. The many overlapping small FDs make
// the shadowed-FD phases dominate, as in the paper.
func NCVoter(rows, cols int) *relation.Relation { return NCVoterSeeded(rows, cols, 0) }

// NCVoterSeeded is NCVoter with a generator-seed override (0 = canonical).
func NCVoterSeeded(rows, cols int, seed int64) *relation.Relation {
	all := []ColumnSpec{
		{Name: "county_id", Kind: Zipf, Card: 100},
		{Name: "county_desc", Kind: Derived, Parents: []int{0}, Card: 100, Salt: 10},
		{Name: "voter_reg_num", Kind: Random, Card: max(rows/2, 10)},
		{Name: "status_cd", Kind: Zipf, Card: 4},
		{Name: "status_desc", Kind: Derived, Parents: []int{3}, Card: 4, Salt: 11},
		{Name: "reason_cd", Kind: Zipf, Card: 12},
		{Name: "reason_desc", Kind: Derived, Parents: []int{5}, Card: 12, Salt: 12},
		{Name: "last_name", Kind: Random, Card: 150},
		{Name: "first_name", Kind: Zipf, Card: 90},
		{Name: "midl_name", Kind: Zipf, Card: 40},
		{Name: "house_num", Kind: Random, Card: 120},
		{Name: "street_name", Kind: Random, Card: 80},
		{Name: "street_type", Kind: Zipf, Card: 20},
		{Name: "res_city", Kind: Derived, Parents: []int{15}, Card: 90, Salt: 13},
		{Name: "state_cd", Kind: Derived, Parents: []int{15}, Card: 3, Salt: 14},
		{Name: "zip_code", Kind: Zipf, Card: 250},
		{Name: "area_cd", Kind: Derived, Parents: []int{13}, Card: 25, Salt: 15},
		{Name: "party_cd", Kind: Zipf, Card: 5},
		{Name: "race_cd", Kind: Zipf, Card: 7},
		{Name: "sex_cd", Kind: Zipf, Card: 3},
	}
	if cols > len(all) {
		cols = len(all)
	}
	// Derived parents must stay inside the slice; zip-derived columns appear
	// after zip in the 20-column layout, but res_city (13) and state_cd (14)
	// reference zip_code (15). Reorder for prefixes: move zip before them.
	order := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 15, 13, 14, 16, 17, 18, 19}
	cols2 := make([]ColumnSpec, 0, cols)
	index := map[int]int{}
	for i, oi := range order[:cols] {
		index[oi] = i
		cols2 = append(cols2, all[oi])
	}
	// Remap parent indexes into the new order; drop derived columns whose
	// parents fell outside the slice by degrading them to Random.
	for i := range cols2 {
		if cols2[i].Kind != Derived {
			continue
		}
		ok := true
		parents := make([]int, len(cols2[i].Parents))
		for j, p := range cols2[i].Parents {
			np, found := index[p]
			if !found || np >= i {
				ok = false
				break
			}
			parents[j] = np
		}
		if ok {
			cols2[i].Parents = parents
		} else {
			cols2[i].Kind = Random
			if cols2[i].Card == 0 {
				cols2[i].Card = 50
			}
		}
	}
	return Generate(Spec{Name: "ncvoter", Rows: rows, Seed: seedOr(seed, 3), Columns: cols2})
}

// seedOr resolves a seed override: 0 selects the dataset's canonical seed.
func seedOr(seed, canonical int64) int64 {
	if seed != 0 {
		return seed
	}
	return canonical
}

// UCIInfo describes one UCI dataset row of Table 3: its shape and the FD
// count the paper reports for it.
type UCIInfo struct {
	Name     string
	Cols     int
	Rows     int
	PaperFDs int // "FDs" column of Table 3
}

// UCITable lists the eleven UCI datasets of Table 3 in paper order.
func UCITable() []UCIInfo {
	return []UCIInfo{
		{"iris", 5, 150, 4},
		{"balance", 5, 625, 1},
		{"chess", 7, 28056, 1},
		{"abalone", 9, 4177, 137},
		{"nursery", 9, 12960, 1},
		{"b-cancer", 11, 699, 46},
		{"bridges", 13, 108, 142},
		{"echocard", 13, 132, 538},
		{"adult", 14, 48842, 78},
		{"letter", 17, 20000, 61},
		{"hepatitis", 20, 155, 8250},
	}
}

// UCI generates the named UCI-like dataset. Unknown names return an error.
func UCI(name string) (*relation.Relation, error) { return UCISeeded(name, 0) }

// UCISeeded is UCI with a generator-seed override (0 = canonical).
func UCISeeded(name string, seed int64) (*relation.Relation, error) {
	switch name {
	case "iris":
		// 150 rows, 4 quantized measurements + class; very few FDs.
		return Generate(Spec{Name: name, Rows: 150, Seed: seedOr(seed, 101), Columns: []ColumnSpec{
			{Name: "sepal_l", Kind: Random, Card: 35},
			{Name: "sepal_w", Kind: Random, Card: 23},
			{Name: "petal_l", Kind: Random, Card: 43},
			{Name: "petal_w", Kind: Random, Card: 22},
			{Name: "class", Kind: MixedRadix, Card: 3, Stride: 50},
		}}), nil
	case "balance":
		// 625 = 5^4 fully crossed attributes + derived class: exactly one FD.
		return Generate(Spec{Name: name, Rows: 625, Seed: seedOr(seed, 102), Columns: []ColumnSpec{
			{Name: "left_w", Kind: MixedRadix, Card: 5, Stride: 125},
			{Name: "left_d", Kind: MixedRadix, Card: 5, Stride: 25},
			{Name: "right_w", Kind: MixedRadix, Card: 5, Stride: 5},
			{Name: "right_d", Kind: MixedRadix, Card: 5, Stride: 1},
			{Name: "class", Kind: Derived, Parents: []int{0, 1, 2, 3}, Card: 3, Salt: 20},
		}}), nil
	case "chess":
		// 28056 fully crossed end-game positions + derived outcome. The
		// radix product (8·4·8·8·8·4 = 32768) exceeds the row count, so all
		// rows stay distinct.
		return Generate(Spec{Name: name, Rows: 28056, Seed: seedOr(seed, 103), Columns: []ColumnSpec{
			{Name: "wk_file", Kind: MixedRadix, Card: 8, Stride: 4096},
			{Name: "wk_rank", Kind: MixedRadix, Card: 4, Stride: 1024},
			{Name: "wr_file", Kind: MixedRadix, Card: 8, Stride: 128},
			{Name: "wr_rank", Kind: MixedRadix, Card: 8, Stride: 16},
			{Name: "bk_file", Kind: MixedRadix, Card: 8, Stride: 2},
			{Name: "bk_rank", Kind: MixedRadix, Card: 2, Stride: 1},
			{Name: "outcome", Kind: Derived, Parents: []int{0, 1, 2, 3, 4, 5}, Card: 18, Salt: 21},
		}}), nil
	case "abalone":
		// 4177 rows, physical measurements with high cardinality: many FDs
		// between near-unique measurement pairs.
		return Generate(Spec{Name: name, Rows: 4177, Seed: seedOr(seed, 104), Columns: []ColumnSpec{
			{Name: "sex", Kind: Zipf, Card: 3},
			{Name: "length", Kind: Random, Card: 134},
			{Name: "diameter", Kind: Random, Card: 111},
			{Name: "height", Kind: Random, Card: 51},
			{Name: "whole_w", Kind: Random, Card: 2429},
			{Name: "shucked_w", Kind: Random, Card: 1515},
			{Name: "viscera_w", Kind: Random, Card: 880},
			{Name: "shell_w", Kind: Random, Card: 926},
			{Name: "rings", Kind: Random, Card: 28},
		}}), nil
	case "nursery":
		// 12960 = 3*5*4*4*3*2*3*3 fully crossed + derived class.
		return Generate(Spec{Name: name, Rows: 12960, Seed: seedOr(seed, 105), Columns: []ColumnSpec{
			{Name: "parents", Kind: MixedRadix, Card: 3, Stride: 4320},
			{Name: "has_nurs", Kind: MixedRadix, Card: 5, Stride: 864},
			{Name: "form", Kind: MixedRadix, Card: 4, Stride: 216},
			{Name: "children", Kind: MixedRadix, Card: 4, Stride: 54},
			{Name: "housing", Kind: MixedRadix, Card: 3, Stride: 18},
			{Name: "finance", Kind: MixedRadix, Card: 2, Stride: 9},
			{Name: "social", Kind: MixedRadix, Card: 3, Stride: 3},
			{Name: "health", Kind: MixedRadix, Card: 3, Stride: 1},
			{Name: "class", Kind: Derived, Parents: []int{0, 1, 2, 3, 4, 5, 6, 7}, Card: 5, Salt: 22},
		}}), nil
	case "b-cancer":
		// 699 rows, id column + 9 cytology grades (1..10) + class.
		return Generate(Spec{Name: name, Rows: 699, Seed: seedOr(seed, 106), Columns: []ColumnSpec{
			{Name: "id", Kind: Random, Card: 645},
			{Name: "thickness", Kind: Zipf, Card: 10},
			{Name: "size_unif", Kind: Zipf, Card: 10},
			{Name: "shape_unif", Kind: Zipf, Card: 10},
			{Name: "adhesion", Kind: Zipf, Card: 10},
			{Name: "epith_size", Kind: Zipf, Card: 10},
			{Name: "bare_nuclei", Kind: Zipf, Card: 11},
			{Name: "chromatin", Kind: Zipf, Card: 10},
			{Name: "nucleoli", Kind: Zipf, Card: 10},
			{Name: "mitoses", Kind: Zipf, Card: 9},
			{Name: "class", Kind: Derived, Parents: []int{2, 3}, Card: 2, Salt: 23},
		}}), nil
	case "bridges":
		// 108 rows, id + 12 low-cardinality properties: dense FD structure.
		return Generate(Spec{Name: name, Rows: 108, Seed: seedOr(seed, 107), Columns: []ColumnSpec{
			{Name: "id", Kind: ID},
			{Name: "river", Kind: Zipf, Card: 4},
			{Name: "location", Kind: Random, Card: 52},
			{Name: "erected", Kind: Random, Card: 12},
			{Name: "purpose", Kind: Zipf, Card: 4},
			{Name: "length", Kind: Random, Card: 30},
			{Name: "lanes", Kind: Zipf, Card: 4},
			{Name: "clear_g", Kind: Zipf, Card: 2},
			{Name: "t_or_d", Kind: Zipf, Card: 2},
			{Name: "material", Kind: Zipf, Card: 3},
			{Name: "span", Kind: Zipf, Card: 3},
			{Name: "rel_l", Kind: Zipf, Card: 3},
			{Name: "type", Kind: Zipf, Card: 7},
		}}), nil
	case "echocard":
		// 132 rows, numeric clinical measurements with high cardinality on
		// few rows: hundreds of FDs with mid-size left-hand sides.
		return Generate(Spec{Name: name, Rows: 132, Seed: seedOr(seed, 108), Columns: []ColumnSpec{
			{Name: "survival", Kind: Random, Card: 40},
			{Name: "alive", Kind: Zipf, Card: 2},
			{Name: "age", Kind: Random, Card: 40},
			{Name: "pericardial", Kind: Zipf, Card: 2},
			{Name: "fractional", Kind: Random, Card: 70},
			{Name: "epss", Kind: Random, Card: 60},
			{Name: "lvdd", Kind: Random, Card: 55},
			{Name: "wall_score", Kind: Random, Card: 30},
			{Name: "wall_index", Kind: Random, Card: 35},
			{Name: "mult", Kind: Random, Card: 25},
			{Name: "name", Kind: Zipf, Card: 2},
			{Name: "group", Kind: Zipf, Card: 3},
			{Name: "alive_at_1", Kind: Zipf, Card: 3},
		}}), nil
	case "adult":
		// 48842 census rows; the near-unique fnlwgt column gives FDs with
		// larger left-hand sides, the regime where MUDS excels (Table 3).
		return Generate(Spec{Name: name, Rows: 48842, Seed: seedOr(seed, 109), Columns: []ColumnSpec{
			{Name: "age", Kind: Random, Card: 74},
			{Name: "workclass", Kind: Zipf, Card: 9},
			{Name: "fnlwgt", Kind: Random, Card: 28523},
			{Name: "education", Kind: Zipf, Card: 16},
			{Name: "education_num", Kind: Derived, Parents: []int{3}, Card: 16, Salt: 24},
			{Name: "marital", Kind: Zipf, Card: 7},
			{Name: "occupation", Kind: Zipf, Card: 15},
			{Name: "relationship", Kind: Zipf, Card: 6},
			{Name: "race", Kind: Zipf, Card: 5},
			{Name: "sex", Kind: Zipf, Card: 2},
			{Name: "capital_gain", Kind: Zipf, Card: 119},
			{Name: "capital_loss", Kind: Zipf, Card: 92},
			{Name: "hours", Kind: Random, Card: 96},
			{Name: "income", Kind: Derived, Parents: []int{4, 5}, Card: 2, Salt: 25},
		}}), nil
	case "letter":
		// 20000 rows, 16 image features + letter class. Real letter-image
		// features are strongly correlated: its 61 minimal FDs have large
		// left-hand sides and its keys sit deep in the lattice (this is the
		// dataset where the paper reports MUDS' factor-48 win). Modelled as
		// a crossed core of six position/count features — their full
		// combination is the only core key (radix product 50000 ≥ 20000
		// rows; every 5-subset has product ≤ 12500 < rows, so it is
		// non-unique by pigeonhole) — plus derived moment features computed
		// from 4–6 core features each.
		spec := Spec{Name: name, Rows: 20000, Seed: seedOr(seed, 110), Columns: []ColumnSpec{
			{Name: "xbox", Kind: MixedRadix, Card: 5, Stride: 10000},
			{Name: "ybox", Kind: MixedRadix, Card: 5, Stride: 2000},
			{Name: "width", Kind: MixedRadix, Card: 5, Stride: 400},
			{Name: "height", Kind: MixedRadix, Card: 5, Stride: 80},
			{Name: "onpix", Kind: MixedRadix, Card: 4, Stride: 20},
			{Name: "xbar", Kind: MixedRadix, Card: 4, Stride: 5},
			// A 17th of the radix space stays unused (stride 5 leaves the
			// low digit free), so consecutive rows are never duplicates.
			{Name: "pad", Kind: MixedRadix, Card: 5, Stride: 1},
		}}
		for c := 7; c < 16; c++ {
			k := 5 + c%2 // 5..6 parent features
			parents := make([]int, k)
			for i := 0; i < k; i++ {
				parents[i] = (c*3 + i*2) % 7
			}
			spec.Columns = append(spec.Columns, ColumnSpec{
				Name:    fmt.Sprintf("moment%02d", c),
				Kind:    Derived,
				Parents: dedupInts(parents),
				Card:    2, // binary moments: large left-hand sides, few keys
				Salt:    int64(70 + c),
			})
		}
		spec.Columns = append(spec.Columns, ColumnSpec{
			Name: "letter", Kind: Derived,
			Parents: []int{0, 1, 2, 3, 4, 5}, Card: 26, Salt: 69,
		})
		return Generate(spec), nil
	case "hepatitis":
		// 155 rows, 20 mostly binary clinical attributes: the combinatorial
		// FD explosion (thousands of FDs) where shadowing hurts MUDS and
		// TANE wins (Table 3).
		spec := Spec{Name: name, Rows: 155, Seed: seedOr(seed, 111), Columns: []ColumnSpec{
			{Name: "class", Kind: Zipf, Card: 2},
			{Name: "age", Kind: Random, Card: 50},
		}}
		for c := 0; c < 12; c++ {
			spec.Columns = append(spec.Columns, ColumnSpec{
				Name: fmt.Sprintf("sym%02d", c),
				Kind: Zipf,
				Card: 2,
			})
		}
		for _, nc := range []struct {
			name string
			card int
		}{{"bilirubin", 27}, {"alk_phos", 84}, {"sgot", 84}, {"albumin", 30}, {"protime", 45}, {"histology", 2}} {
			spec.Columns = append(spec.Columns, ColumnSpec{Name: nc.name, Kind: Random, Card: nc.card})
		}
		return Generate(spec), nil
	default:
		names := make([]string, 0, len(UCITable()))
		for _, i := range UCITable() {
			names = append(names, i.Name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("dataset: unknown UCI dataset %q (want one of %v)", name, names)
	}
}
