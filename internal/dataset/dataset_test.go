package dataset

import (
	"reflect"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/pli"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", Rows: 100, Seed: 5, Columns: []ColumnSpec{
		{Name: "a", Kind: Random, Card: 5},
		{Name: "b", Kind: Derived, Parents: []int{0}, Card: 3, Salt: 1},
		{Name: "c", Kind: ID},
	}}
	r1 := Generate(spec)
	r2 := Generate(spec)
	if !reflect.DeepEqual(r1.Rows(), r2.Rows()) {
		t.Error("generation must be deterministic")
	}
}

func TestColumnKinds(t *testing.T) {
	rel := Generate(Spec{Name: "k", Rows: 60, Seed: 9, Columns: []ColumnSpec{
		{Name: "id", Kind: ID},
		{Name: "rnd", Kind: Random, Card: 4},
		{Name: "zipf", Kind: Zipf, Card: 4},
		{Name: "mr", Kind: MixedRadix, Card: 3, Stride: 20},
		{Name: "drv", Kind: Derived, Parents: []int{1}, Card: 2, Salt: 7},
	}})
	if rel.NumRows() != 60 {
		t.Fatalf("rows = %d (ID column should prevent duplicates)", rel.NumRows())
	}
	if rel.Cardinality(0) != 60 {
		t.Error("ID column must be unique")
	}
	if rel.Cardinality(1) > 4 || rel.Cardinality(2) > 4 {
		t.Error("Random/Zipf cardinality exceeded")
	}
	if rel.Cardinality(3) != 3 {
		t.Errorf("MixedRadix cardinality = %d, want 3", rel.Cardinality(3))
	}
	// Derived column: rnd → drv must hold.
	p := pli.NewProvider(rel, 0)
	if !p.CheckFD(bitset.New(1), 4) {
		t.Error("planted FD rnd → drv does not hold")
	}
}

func TestZipfSkew(t *testing.T) {
	rel := Generate(Spec{Name: "z", Rows: 4000, Seed: 1, Columns: []ColumnSpec{
		{Name: "id", Kind: ID},
		{Name: "z", Kind: Zipf, Card: 10},
	}})
	counts := map[string]int{}
	for i := 0; i < rel.NumRows(); i++ {
		counts[rel.Value(i, 1)]++
	}
	if counts["z0"] <= counts["z9"] {
		t.Errorf("zipf head %d should outweigh tail %d", counts["z0"], counts["z9"])
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown kind")
		}
	}()
	Generate(Spec{Name: "bad", Rows: 1, Columns: []ColumnSpec{{Kind: Kind(99)}}})
}

func TestUniprotShape(t *testing.T) {
	rel := Uniprot(2000)
	if rel.NumColumns() != 10 {
		t.Fatalf("columns = %d, want 10", rel.NumColumns())
	}
	// entry_name is only near-unique, so a few duplicate rows may fold away.
	if rel.NumRows() < 1900 {
		t.Errorf("rows = %d, want ≈2000", rel.NumRows())
	}
	// Planted FDs hold: organism → tax_id, {tax_id, evidence} → reviewed.
	p := pli.NewProvider(rel, 0)
	if !p.CheckFD(bitset.New(1), 2) {
		t.Error("organism → tax_id missing")
	}
	if !p.CheckFD(bitset.New(2, 8), 9) {
		t.Error("tax_id,evidence → reviewed missing")
	}
}

func TestIonosphereShape(t *testing.T) {
	rel := Ionosphere(23, 351)
	if rel.NumColumns() != 23 {
		t.Fatalf("columns = %d", rel.NumColumns())
	}
	if rel.NumRows() < 300 {
		t.Errorf("rows = %d, want ~351", rel.NumRows())
	}
	for c := 0; c < rel.NumColumns(); c++ {
		if rel.Cardinality(c) < 2 || rel.Cardinality(c) > 14 {
			t.Errorf("column %d cardinality %d out of expected range", c, rel.Cardinality(c))
		}
	}
}

func TestNCVoterShape(t *testing.T) {
	rel := NCVoter(3000, 20)
	if rel.NumColumns() != 20 {
		t.Fatalf("columns = %d, want 20", rel.NumColumns())
	}
	p := pli.NewProvider(rel, 0)
	// Planted pairs: county_id → county_desc, status_cd → status_desc.
	ci, cd := rel.ColumnIndex("county_id"), rel.ColumnIndex("county_desc")
	if ci < 0 || cd < 0 || !p.CheckFD(bitset.New(ci), cd) {
		t.Error("county_id → county_desc missing")
	}
	zc, rc := rel.ColumnIndex("zip_code"), rel.ColumnIndex("res_city")
	if zc < 0 || rc < 0 || !p.CheckFD(bitset.New(zc), rc) {
		t.Error("zip_code → res_city missing")
	}
	// A narrower slice still works and keeps valid parents.
	small := NCVoter(500, 8)
	if small.NumColumns() != 8 {
		t.Errorf("slice columns = %d, want 8", small.NumColumns())
	}
}

func TestBalanceExactlyOneFD(t *testing.T) {
	rel, err := UCI("balance")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 625 {
		t.Fatalf("rows = %d, want 625 (full crossing)", rel.NumRows())
	}
	p := pli.NewProvider(rel, 0)
	fds := fd.Tane(p, false).FDs
	if len(fds) != 1 {
		t.Fatalf("balance FDs = %v, want exactly 1", fds)
	}
	if fds[0].LHS != bitset.New(0, 1, 2, 3) || fds[0].RHS != 4 {
		t.Errorf("balance FD = %v, want ABCD → class", fds[0])
	}
}

func TestIrisFewFDs(t *testing.T) {
	rel, err := UCI("iris")
	if err != nil {
		t.Fatal(err)
	}
	p := pli.NewProvider(rel, 0)
	n := len(fd.Tane(p, false).FDs)
	if n == 0 || n > 40 {
		t.Errorf("iris FD count = %d, want a small positive number", n)
	}
}

func TestUCITableCoverage(t *testing.T) {
	for _, info := range UCITable() {
		rel, err := UCI(info.Name)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if rel.NumColumns() != info.Cols {
			t.Errorf("%s: columns = %d, want %d", info.Name, rel.NumColumns(), info.Cols)
		}
		// Row counts may shrink slightly through duplicate removal but must
		// stay in the right ballpark.
		if rel.NumRows() < info.Rows*8/10 {
			t.Errorf("%s: rows = %d, want ≈%d", info.Name, rel.NumRows(), info.Rows)
		}
	}
}

func TestUCIUnknown(t *testing.T) {
	if _, err := UCI("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}
