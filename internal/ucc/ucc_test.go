package ucc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/relation"
)

func provider(t *testing.T, names []string, rows [][]string) *pli.Provider {
	t.Helper()
	r, err := relation.New("t", names, rows)
	if err != nil {
		t.Fatal(err)
	}
	return pli.NewProvider(r, 0)
}

func TestSimpleKey(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"2", "x"},
		{"3", "y"},
	})
	want := []bitset.Set{bitset.New(0)} // A is the only minimal UCC
	for name, got := range map[string][]bitset.Set{
		"brute":   BruteForce(p),
		"apriori": Apriori(p).Minimal,
		"ducc":    Ducc(p, 1).Minimal,
	} {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestCompositeKey(t *testing.T) {
	// Neither A nor B unique, AB unique.
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"1", "y"},
		{"2", "x"},
		{"2", "y"},
	})
	want := []bitset.Set{bitset.New(0, 1)}
	if got := Ducc(p, 42).Minimal; !reflect.DeepEqual(got, want) {
		t.Errorf("ducc = %v, want %v", got, want)
	}
	// Maximal non-UCCs are the single columns.
	wantNon := []bitset.Set{bitset.New(0), bitset.New(1)}
	if got := Ducc(p, 42).MaximalNonUnique; !reflect.DeepEqual(got, wantNon) {
		t.Errorf("maximal non-UCCs = %v, want %v", got, wantNon)
	}
}

func TestFullRelationAlwaysUniqueAfterDedup(t *testing.T) {
	// Because duplicate rows are removed at load time, the set of all
	// columns is always a UCC, so at least one minimal UCC always exists
	// (paper Sec. 3 requires duplicate-free inputs).
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"1", "x"}, // duplicate, removed
		{"1", "y"},
	})
	got := Ducc(p, 3).Minimal
	if len(got) == 0 {
		t.Fatal("expected at least one minimal UCC after dedup")
	}
}

func TestSingleColumnRelation(t *testing.T) {
	p := provider(t, []string{"A"}, [][]string{{"1"}, {"2"}})
	want := []bitset.Set{bitset.New(0)}
	if got := Ducc(p, 0).Minimal; !reflect.DeepEqual(got, want) {
		t.Errorf("ducc = %v, want %v", got, want)
	}
}

func TestSingleRowRelation(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{{"1", "x"}})
	// Every single column is unique on a one-row relation.
	want := []bitset.Set{bitset.New(0), bitset.New(1)}
	for name, got := range map[string][]bitset.Set{
		"brute":   BruteForce(p),
		"apriori": Apriori(p).Minimal,
		"ducc":    Ducc(p, 9).Minimal,
	} {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestHoleScenario builds a relation whose minimal UCCs sit at mixed lattice
// levels, the situation where DUCC's up/down pruning can leave unvisited
// holes that the hitting-set phase must fill.
func TestHoleScenario(t *testing.T) {
	rows := [][]string{
		{"1", "a", "x", "p"},
		{"2", "a", "x", "q"},
		{"3", "b", "y", "p"},
		{"3", "b", "z", "q"},
		{"4", "c", "z", "p"},
		{"4", "d", "z", "p2"},
	}
	p := provider(t, []string{"A", "B", "C", "D"}, rows)
	want := BruteForce(p)
	for seed := int64(0); seed < 20; seed++ {
		if got := Ducc(p, seed).Minimal; !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: ducc = %v, want %v", seed, got, want)
		}
	}
}

func TestMaximalNonUniqueAreValid(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	p := randomProvider(rnd, 6, 40, 3)
	res := Ducc(p, 11)
	for _, m := range res.MaximalNonUnique {
		if p.IsUnique(m) {
			t.Errorf("certified non-UCC %v is unique", m)
		}
		// Maximality: every direct superset is unique.
		for _, sup := range m.DirectSupersets(p.Relation().NumColumns()) {
			if !p.IsUnique(sup) {
				t.Errorf("non-UCC %v is not maximal: %v is non-unique", m, sup)
			}
		}
	}
}

func TestChecksCounted(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"1", "y"},
		{"2", "x"},
		{"2", "y"},
	})
	res := Ducc(p, 0)
	if res.Checks == 0 {
		t.Error("expected at least one uniqueness check")
	}
	if ap := Apriori(p); ap.Checks != 3 { // A, B, AB
		t.Errorf("apriori checks = %d, want 3", ap.Checks)
	}
}

func randomProvider(rnd *rand.Rand, maxCols, maxRows, maxCard int) *pli.Provider {
	cols := 2 + rnd.Intn(maxCols-1)
	rows := 2 + rnd.Intn(maxRows-1)
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(1 + rnd.Intn(maxCard)))
		}
		data[i] = row
	}
	return pli.NewProvider(relation.MustNew("rand", names, data), 0)
}

// Property: DUCC and the apriori baseline agree with the brute-force oracle
// on random relations, for arbitrary seeds.
func TestQuickAlgorithmsAgree(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 6, 30, 4))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(p *pli.Provider, seed int64) bool {
		want := BruteForce(p)
		if !reflect.DeepEqual(Apriori(p).Minimal, want) {
			return false
		}
		return reflect.DeepEqual(Ducc(p, seed).Minimal, want)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every reported minimal UCC is unique and all its direct subsets
// are non-unique (true minimality, checked directly on the data).
func TestQuickMinimality(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 5, 25, 3))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(p *pli.Provider, seed int64) bool {
		for _, u := range Ducc(p, seed).Minimal {
			if !bruteUnique(p, u) {
				return false
			}
			for _, sub := range u.DirectSubsets() {
				if !sub.IsEmpty() && bruteUnique(p, sub) {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
