package ucc

import (
	"context"
	"errors"
	"testing"
	"time"

	"holistic/internal/dataset"
	"holistic/internal/pli"
)

// TestDuccContextDeadline cancels the DUCC walk on a wide synthetic relation
// (minutes of lattice to traverse uncancelled) and requires a prompt return
// with the context error.
func TestDuccContextDeadline(t *testing.T) {
	rel := dataset.NCVoter(2000, 18)
	p := pli.NewProvider(rel, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DuccContext(ctx, p, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled DUCC took %v, want prompt return", elapsed)
	}
}

func TestDuccContextBackgroundMatchesPlain(t *testing.T) {
	rel := dataset.NCVoter(200, 8)
	plain := Ducc(pli.NewProvider(rel, 0), 4)
	ctxed, err := DuccContext(context.Background(), pli.NewProvider(rel, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Minimal) != len(ctxed.Minimal) || plain.Checks != ctxed.Checks {
		t.Fatal("background-context DUCC differs from plain DUCC")
	}
}
