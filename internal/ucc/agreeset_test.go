package ucc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/pli"
)

func TestAgreeSetSimple(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"2", "x"},
		{"3", "y"},
	})
	res := AgreeSet(p)
	want := []bitset.Set{bitset.New(0)}
	if !reflect.DeepEqual(res.Minimal, want) {
		t.Errorf("Minimal = %v, want %v", res.Minimal, want)
	}
	// Rows 1 and 2 agree exactly on B: the only maximal non-unique set.
	if !reflect.DeepEqual(res.MaximalNonUnique, []bitset.Set{bitset.New(1)}) {
		t.Errorf("MaximalNonUnique = %v", res.MaximalNonUnique)
	}
}

func TestAgreeSetAllUniqueColumns(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"2", "y"},
	})
	res := AgreeSet(p)
	want := []bitset.Set{bitset.New(0), bitset.New(1)}
	if !reflect.DeepEqual(res.Minimal, want) {
		t.Errorf("Minimal = %v, want %v", res.Minimal, want)
	}
	if res.Checks != 0 {
		t.Errorf("Checks = %d, want 0 (no agreeing pairs)", res.Checks)
	}
}

func TestAgreeSetSingleRow(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{{"1", "x"}})
	res := AgreeSet(p)
	want := []bitset.Set{bitset.New(0), bitset.New(1)}
	if !reflect.DeepEqual(res.Minimal, want) {
		t.Errorf("Minimal = %v, want %v", res.Minimal, want)
	}
}

// Property: the row-based algorithm agrees with the column-based oracle and
// with DUCC, and its maximal non-unique certificates are genuine and
// maximal.
func TestQuickAgreeSetMatchesOracle(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 6, 25, 4))
		},
	}
	if err := quick.Check(func(p *pli.Provider) bool {
		res := AgreeSet(p)
		if !reflect.DeepEqual(res.Minimal, BruteForce(p)) {
			return false
		}
		for _, m := range res.MaximalNonUnique {
			if bruteUnique(p, m) {
				return false
			}
			for _, sup := range m.DirectSupersets(p.Relation().NumColumns()) {
				if !bruteUnique(p, sup) {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
