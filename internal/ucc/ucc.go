// Package ucc implements unique column combination discovery: the DUCC
// random-walk algorithm (paper Sec. 2.2), an apriori level-wise baseline in
// the spirit of Giannella/Wyss and HCA, and a brute-force oracle for tests.
//
// All discovery runs on a shared pli.Provider, so PLIs computed during UCC
// discovery remain available to the FD phases of the holistic algorithms.
package ucc

import (
	"fmt"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/settrie"
)

// Result holds the outcome of a UCC discovery run.
type Result struct {
	// Minimal contains the minimal unique column combinations, sorted.
	Minimal []bitset.Set
	// MaximalNonUnique contains the maximal non-unique column combinations
	// certified during discovery (DUCC only; empty for the baselines).
	MaximalNonUnique []bitset.Set
	// Checks counts the uniqueness validations performed on actual PLIs,
	// i.e. the work not saved by pruning.
	Checks int
}

// BruteForce enumerates the lattice level-wise and checks every candidate
// that is not a superset of a found UCC by grouping rows on their value
// tuples. It is the test oracle: independent of the PLI machinery.
func BruteForce(p *pli.Provider) []bitset.Set {
	rel := p.Relation()
	n := rel.NumColumns()
	var minimal settrie.MinimalFamily
	base := bitset.Full(n)
	for k := 1; k <= n; k++ {
		base.SubsetsOfSize(k, func(s bitset.Set) bool {
			if minimal.CoversSubsetOf(s) {
				return true // superset of a UCC cannot be minimal
			}
			if bruteUnique(p, s) {
				minimal.Add(s)
			}
			return true
		})
	}
	out := minimal.All()
	bitset.Sort(out)
	return out
}

func bruteUnique(p *pli.Provider, s bitset.Set) bool {
	rel := p.Relation()
	cols := s.Columns()
	seen := make(map[string]bool, rel.NumRows())
	for row := 0; row < rel.NumRows(); row++ {
		key := ""
		for _, c := range cols {
			key += fmt.Sprintf("%d|", rel.Column(c)[row])
		}
		if seen[key] {
			return false
		}
		seen[key] = true
	}
	return true
}

// Apriori discovers minimal UCCs level-wise: level-k candidates are generated
// from the non-unique sets of level k-1 (so every direct subset of a unique
// candidate is non-unique, making it minimal by construction).
func Apriori(p *pli.Provider) Result {
	rel := p.Relation()
	n := rel.NumColumns()
	var res Result
	var level []bitset.Set // non-unique sets of the current level
	for c := 0; c < n; c++ {
		s := bitset.Single(c)
		res.Checks++
		if p.IsUnique(s) {
			res.Minimal = append(res.Minimal, s)
		} else {
			level = append(level, s)
		}
	}
	for len(level) > 0 {
		var next []bitset.Set
		for _, cand := range bitset.AprioriGen(level) {
			res.Checks++
			if p.IsUnique(cand) {
				res.Minimal = append(res.Minimal, cand)
			} else {
				next = append(next, cand)
			}
		}
		level = next
	}
	bitset.Sort(res.Minimal)
	return res
}
