package ucc

import (
	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/settrie"
	"holistic/internal/walker"
)

// AgreeSet discovers all minimal UCCs with the row-based strategy of
// Gordian (paper Sec. 7): first determine the *maximal non-unique* column
// combinations, then derive the minimal UCCs from them by complementation.
//
// A column set is non-unique iff two rows agree on it, so the maximal
// non-unique sets are exactly the maximal "agree sets" over row pairs.
// Candidate pairs are enumerated from the single-column PLI clusters (a
// pair that agrees nowhere has an empty agree set and contributes
// nothing); the minimal UCCs are then the minimal hitting sets of the
// complements of the maximal agree sets — the same duality DUCC's hole
// detection uses, but computed here entirely from the row data, without a
// single lattice-node uniqueness check.
//
// The pair enumeration is quadratic in the largest cluster, which is the
// known weakness of row-based discovery on low-cardinality data ("costly
// if the number of maximal non-UCCs is large", Sec. 7); it shines on
// near-unique data where clusters are tiny.
func AgreeSet(p *pli.Provider) Result {
	rel := p.Relation()
	n := rel.NumColumns()
	var res Result
	if n == 0 {
		return res
	}

	cols := make([][]int32, n)
	for c := 0; c < n; c++ {
		cols[c] = rel.Column(c)
	}

	// Enumerate candidate pairs once per co-cluster occurrence; dedup by
	// (smaller row, larger row).
	var maximal settrie.MaximalFamily
	type pair struct{ a, b int32 }
	seen := make(map[pair]bool)
	for c := 0; c < n; c++ {
		p.SingleColumn(c).ForEachCluster(func(cluster []int32) {
			for i := 0; i < len(cluster); i++ {
				for j := i + 1; j < len(cluster); j++ {
					pr := pair{cluster[i], cluster[j]}
					if pr.a > pr.b {
						pr.a, pr.b = pr.b, pr.a
					}
					if seen[pr] {
						continue
					}
					seen[pr] = true
					res.Checks++
					maximal.Add(agreeSet(cols, pr.a, pr.b))
				}
			}
		})
	}

	all := rel.AllColumns()
	res.MaximalNonUnique = maximal.All()
	bitset.Sort(res.MaximalNonUnique)

	if maximal.Len() == 0 {
		// No two rows agree anywhere: every single column is unique.
		all.ForEach(func(c int) {
			res.Minimal = append(res.Minimal, bitset.Single(c))
		})
		return res
	}

	complements := make([]bitset.Set, 0, maximal.Len())
	for _, m := range res.MaximalNonUnique {
		complements = append(complements, all.Diff(m))
	}
	for _, u := range walker.MinimalHittingSets(complements, all) {
		if !u.IsEmpty() {
			res.Minimal = append(res.Minimal, u)
		}
	}
	bitset.Sort(res.Minimal)
	return res
}

// agreeSet returns the columns on which rows a and b agree.
func agreeSet(cols [][]int32, a, b int32) bitset.Set {
	var s bitset.Set
	for c, col := range cols {
		if col[a] == col[b] {
			s = s.With(c)
		}
	}
	return s
}
