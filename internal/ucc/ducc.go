package ucc

import (
	"holistic/internal/pli"
	"holistic/internal/walker"
)

// Ducc discovers all minimal UCCs with the DUCC strategy (paper Sec. 2.2):
// a randomized walk over the lattice that descends from uniques and ascends
// from non-uniques, pruning supersets of UCCs and subsets of non-UCCs via
// set-tries, followed by hole detection that compares the found minimal UCCs
// with the minimal hitting sets of the complements of the found maximal
// non-UCCs.
//
// Uniqueness of a column combination is a monotone lattice predicate, so the
// traversal is delegated to the generic walker shared with MUDS' R\Z phase.
// The seed fixes the randomized traversal order; results are independent of
// it (verified by property tests), only the visit order varies.
func Ducc(p *pli.Provider, seed int64) Result {
	base := p.Relation().AllColumns()
	res := walker.Run(base, p.IsUnique, walker.Options{Seed: seed})
	return Result{
		Minimal:          res.MinimalTrue,
		MaximalNonUnique: res.MaximalFalse,
		Checks:           res.Checks,
	}
}
