package ucc

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/walker"
)

// Ducc discovers all minimal UCCs with the DUCC strategy (paper Sec. 2.2):
// a randomized walk over the lattice that descends from uniques and ascends
// from non-uniques, pruning supersets of UCCs and subsets of non-UCCs via
// set-tries, followed by hole detection that compares the found minimal UCCs
// with the minimal hitting sets of the complements of the found maximal
// non-UCCs.
//
// Uniqueness of a column combination is a monotone lattice predicate, so the
// traversal is delegated to the generic walker shared with MUDS' R\Z phase.
// The seed fixes the randomized traversal order; results are independent of
// it (verified by property tests), only the visit order varies.
func Ducc(p *pli.Provider, seed int64) Result {
	res, _ := DuccContext(context.Background(), p, seed)
	return res
}

// DuccContext runs DUCC under a context: the random walk polls ctx between
// uniqueness checks and stops promptly when ctx is cancelled or its deadline
// passes, returning the partial result together with ctx.Err(). On a non-nil
// error the result is progress information, not a complete (or even minimal)
// UCC cover.
func DuccContext(ctx context.Context, p *pli.Provider, seed int64) (Result, error) {
	return DuccSeeded(ctx, p, seed, nil, nil)
}

// DuccSeeded is DuccContext with pre-certified lattice knowledge: knownTrue
// sets are trusted unique, knownFalse sets trusted non-unique, and neither is
// re-evaluated. It is the repair entry point of incremental profiling — after
// an appended batch, the still-valid prior UCCs enter as knownTrue and the
// violated ones (plus the prior maximal non-uniques, still false by
// monotonicity) as knownFalse, so the walk only explores the invalidated
// lattice region above the violations.
func DuccSeeded(ctx context.Context, p *pli.Provider, seed int64, knownTrue, knownFalse []bitset.Set) (Result, error) {
	base := p.Relation().AllColumns()
	res, err := walker.RunContext(ctx, base, p.IsUnique, walker.Options{
		Seed:       seed,
		KnownTrue:  knownTrue,
		KnownFalse: knownFalse,
	})
	return Result{
		Minimal:          res.MinimalTrue,
		MaximalNonUnique: res.MaximalFalse,
		Checks:           res.Checks,
	}, err
}
