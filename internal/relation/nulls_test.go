package relation

import (
	"testing"
)

func TestDistinctNullsEncoding(t *testing.T) {
	rows := [][]string{
		{"", "x"},
		{"", "y"},
		{"a", "x"},
	}
	r, err := NewWithOptions("t", []string{"A", "B"}, rows, Options{DistinctNulls: true})
	if err != nil {
		t.Fatal(err)
	}
	// The two NULLs in A must have distinct codes.
	col := r.Column(0)
	if col[0] == col[1] {
		t.Error("distinct NULLs must not share a dictionary code")
	}
	// Both decode to the empty string.
	if r.Value(0, 0) != NullValue || r.Value(1, 0) != NullValue {
		t.Error("NULL codes must decode to the empty string")
	}
	// Cardinality counts each NULL separately (3 values in A: two NULLs + a).
	if r.Cardinality(0) != 3 {
		t.Errorf("Cardinality = %d, want 3", r.Cardinality(0))
	}
	if r.NullCode(0) < 0 {
		t.Error("NullCode should point at the first NULL")
	}
}

func TestDistinctNullsAffectDuplicateRemoval(t *testing.T) {
	rows := [][]string{
		{"", "x"},
		{"", "x"},
	}
	equalNulls := MustNew("t", []string{"A", "B"}, rows)
	if equalNulls.NumRows() != 1 {
		t.Errorf("NULL = NULL: rows = %d, want 1 (duplicate removed)", equalNulls.NumRows())
	}
	distinct, err := NewWithOptions("t", []string{"A", "B"}, rows, Options{DistinctNulls: true})
	if err != nil {
		t.Fatal(err)
	}
	if distinct.NumRows() != 2 {
		t.Errorf("NULL ≠ NULL: rows = %d, want 2 (rows differ on A)", distinct.NumRows())
	}
}

func TestDistinctNullsSurviveProjection(t *testing.T) {
	rows := [][]string{
		{"", "x", "1"},
		{"", "x", "2"},
	}
	r, err := NewWithOptions("t", []string{"A", "B", "C"}, rows, Options{DistinctNulls: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Project([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Under SQL semantics the projected rows (NULL, x) and (NULL, x) stay
	// distinct; with default semantics they would collapse.
	if p.NumRows() != 2 {
		t.Errorf("projected rows = %d, want 2 under DistinctNulls", p.NumRows())
	}
	h := r.Head(1)
	if h.NumRows() != 1 {
		t.Errorf("head rows = %d", h.NumRows())
	}
}
