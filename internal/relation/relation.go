// Package relation provides the shared input substrate for all profiling
// algorithms: a column-oriented, dictionary-encoded relation with duplicate
// rows removed.
//
// Reading the data once and sharing the encoded columns across SPIDER, DUCC
// and the FD algorithms is the "shared I/O" optimisation of the holistic
// approach (paper Sec. 3): the dictionaries double as SPIDER's duplicate-free
// value lists and the encoded columns feed PLI construction.
package relation

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"holistic/internal/bitset"
	"holistic/internal/parallel"
)

// NullValue is the string that represents SQL NULL in the input. Empty CSV
// fields are mapped to it. For UCC and FD discovery NULL compares equal to
// itself (the convention of TANE, FUN and DUCC); SPIDER may be configured to
// ignore NULLs for IND containment.
const NullValue = ""

// Relation is an immutable, dictionary-encoded relation instance.
//
// Values are stored column-wise as int32 dictionary codes; the dictionary of
// each column maps codes back to the original strings. Duplicate rows are
// removed at construction time, as required by the holistic pruning rules
// (paper Sec. 3: a relation with duplicate rows has no UCC at all).
type Relation struct {
	name    string
	colName []string
	cols    [][]int32  // cols[c][r] = dictionary code of row r in column c
	dicts   [][]string // dicts[c][code] = original value
	nullID  []int32    // dictionary code of NullValue per column, -1 if absent
	opts    Options

	dupRemoved int // number of duplicate rows dropped during construction

	sortOnce   sync.Once  // guards the one-shot parallel sortedVals build
	sortedVals [][]string // sorted distinct values per column (see sortOnce)

	// Append state, built lazily on the first Append or Lookup call: the
	// per-column value→code maps discarded after construction and the
	// encoded-row duplicate filter. Both are maintained incrementally by
	// Append afterwards. Guarded by the Append exclusivity contract, not by
	// locks.
	lookup []map[string]int32
	rowSet map[string]struct{}
}

// AppendDelta describes the effect of one Append call: the row count before
// the append, the number of non-duplicate rows actually added, and the
// per-column dictionary sizes before the append. A column c grew new distinct
// values iff Cardinality(c) > OldCard[c]; its new codes are exactly
// [OldCard[c], Cardinality(c)).
type AppendDelta struct {
	OldRows  int
	Appended int
	OldCard  []int
}

// Options configures relation construction.
type Options struct {
	// DistinctNulls makes every NULL compare unequal to every other NULL
	// (SQL semantics): each empty field receives a fresh dictionary code, so
	// the dependency algorithms treat NULL-bearing rows as pairwise
	// distinct. The default (NULL = NULL) matches the convention of TANE,
	// FUN and DUCC that the paper's evaluation uses.
	DistinctNulls bool
	// Workers bounds the goroutines used for per-column dictionary encoding
	// and sorted-value-list construction (<= 0 selects GOMAXPROCS). The
	// encoded relation is identical for every worker count: each column is
	// one indexed task, and duplicate-row removal stays sequential.
	Workers int
}

// New builds a Relation from row-major string data. columnNames supplies the
// schema; every row must have exactly len(columnNames) fields. Duplicate rows
// are removed (first occurrence kept).
func New(name string, columnNames []string, rows [][]string) (*Relation, error) {
	return NewWithOptions(name, columnNames, rows, Options{})
}

// NewWithOptions builds a Relation with explicit NULL semantics.
//
// Construction is parallel across columns: dictionary encoding of each column
// is an independent indexed task (codes are assigned in row order per column,
// so the dictionaries are identical to a sequential build), duplicate-row
// detection runs sequentially on the encoded rows, and the surviving rows are
// compacted per column in parallel again. Options.Workers bounds the pool.
func NewWithOptions(name string, columnNames []string, rows [][]string, opts Options) (*Relation, error) {
	n := len(columnNames)
	if n == 0 {
		return nil, fmt.Errorf("relation %q: no columns", name)
	}
	if n > bitset.MaxColumns {
		return nil, fmt.Errorf("relation %q: %d columns exceeds the supported maximum of %d", name, n, bitset.MaxColumns)
	}
	r := &Relation{
		name:    name,
		colName: append([]string(nil), columnNames...),
		cols:    make([][]int32, n),
		dicts:   make([][]string, n),
		nullID:  make([]int32, n),
		opts:    opts,
	}
	for c := range r.nullID {
		r.nullID[c] = -1
	}
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("relation %q: row %d has %d fields, want %d", name, i, len(row), n)
		}
	}

	// Dictionary-encode every column concurrently. Duplicate rows are still
	// present here; they assign no extra codes (their values were seen
	// before), except under DistinctNulls where every NULL is fresh by
	// design — exactly as in a sequential row-major pass.
	workers := parallel.Workers(opts.Workers)
	encoded := make([][]int32, n)
	parallel.For(context.Background(), workers, n, func(c int) {
		codes := make(map[string]int32)
		col := make([]int32, len(rows))
		for i, row := range rows {
			v := row[c]
			if opts.DistinctNulls && v == NullValue {
				// SQL semantics: every NULL is its own value. The fresh
				// code never enters the lookup map, so no later NULL can
				// reuse it; all these codes decode to the empty string.
				code := int32(len(r.dicts[c]))
				r.dicts[c] = append(r.dicts[c], v)
				if r.nullID[c] < 0 {
					r.nullID[c] = code
				}
				col[i] = code
				continue
			}
			code, ok := codes[v]
			if !ok {
				code = int32(len(r.dicts[c]))
				codes[v] = code
				r.dicts[c] = append(r.dicts[c], v)
				if v == NullValue {
					r.nullID[c] = code
				}
			}
			col[i] = code
		}
		encoded[c] = col
	})

	// Sequential duplicate-row removal on the encoded rows (first occurrence
	// kept; order-dependent, so not parallelized).
	seen := make(map[string]struct{}, len(rows))
	keep := make([]bool, len(rows))
	kept := 0
	rowKey := make([]byte, 4*n)
	for i := range rows {
		for c := 0; c < n; c++ {
			binary.LittleEndian.PutUint32(rowKey[4*c:], uint32(encoded[c][i]))
		}
		key := string(rowKey)
		if _, dup := seen[key]; dup {
			r.dupRemoved++
			continue
		}
		seen[key] = struct{}{}
		keep[i] = true
		kept++
	}

	if r.dupRemoved == 0 {
		r.cols = encoded
		return r, nil
	}
	// Compact the surviving rows per column, in parallel again.
	parallel.For(context.Background(), workers, n, func(c int) {
		col := make([]int32, 0, kept)
		for i, k := range keep {
			if k {
				col = append(col, encoded[c][i])
			}
		}
		r.cols[c] = col
	})
	return r, nil
}

// MustNew is New for statically known-good inputs (tests and examples).
func MustNew(name string, columnNames []string, rows [][]string) *Relation {
	r, err := New(name, columnNames, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// DistinctNulls reports whether the relation was built with SQL-style
// NULL ≠ NULL semantics (Options.DistinctNulls). Incremental consumers need
// it to pick NULL-compatible maintenance paths.
func (r *Relation) DistinctNulls() bool { return r.opts.DistinctNulls }

// HasNulls reports whether any column contains at least one NULL value.
func (r *Relation) HasNulls() bool {
	for _, id := range r.nullID {
		if id >= 0 {
			return true
		}
	}
	return false
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// NumColumns returns the number of columns.
func (r *Relation) NumColumns() int { return len(r.cols) }

// NumRows returns the number of rows after duplicate removal.
func (r *Relation) NumRows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return len(r.cols[0])
}

// DuplicatesRemoved returns how many duplicate input rows were dropped.
func (r *Relation) DuplicatesRemoved() int { return r.dupRemoved }

// ColumnNames returns the schema (not a copy; callers must not modify it).
func (r *Relation) ColumnNames() []string { return r.colName }

// ColumnName returns the name of column c.
func (r *Relation) ColumnName(c int) string { return r.colName[c] }

// ColumnIndex returns the index of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	for i, n := range r.colName {
		if n == name {
			return i
		}
	}
	return -1
}

// AllColumns returns the set {0..NumColumns-1}.
func (r *Relation) AllColumns() bitset.Set { return bitset.Full(r.NumColumns()) }

// Column returns the dictionary codes of column c (not a copy).
func (r *Relation) Column(c int) []int32 { return r.cols[c] }

// Cardinality returns the number of distinct values in column c.
func (r *Relation) Cardinality(c int) int { return len(r.dicts[c]) }

// MaxCardinality returns the largest per-column cardinality, i.e. the widest
// dictionary. PLI construction sizes its grouping arenas with it: a scratch
// arena covering [0, MaxCardinality) fits the code range of every column, so
// the flat column→PLI build allocates its arena once per worker instead of
// regrowing per column.
func (r *Relation) MaxCardinality() int {
	max := 0
	for c := range r.cols {
		if card := r.Cardinality(c); card > max {
			max = card
		}
	}
	return max
}

// NullCode returns the dictionary code of NULL in column c, or -1 if the
// column has no NULLs.
func (r *Relation) NullCode(c int) int32 { return r.nullID[c] }

// Value returns the original string value at (row, col).
func (r *Relation) Value(row, col int) string {
	return r.dicts[col][r.cols[col][row]]
}

// DistinctValues returns the distinct values of column c in dictionary
// (first-occurrence) order. The slice is shared; callers must not modify it.
func (r *Relation) DistinctValues(c int) []string { return r.dicts[c] }

// SortedDistinctValues returns the distinct values of column c in ascending
// string order. This is SPIDER's duplicate-free sorted value list (paper
// Sec. 2.1). The first call builds the lists of every column — each column
// sorted by its own worker (SPIDER's "sorting phase", Options.Workers wide)
// — and caches them; the build is guarded by a sync.Once, so concurrent
// callers are safe and later calls are lookups.
func (r *Relation) SortedDistinctValues(c int) []string {
	r.EnsureSortedValues()
	return r.sortedVals[c]
}

// EnsureSortedValues builds the sorted duplicate-free value lists of all
// columns in parallel (idempotent; safe for concurrent use). SPIDER calls it
// up front so its sorting phase is parallel instead of lazily per column.
func (r *Relation) EnsureSortedValues() {
	r.sortOnce.Do(func() {
		sorted := make([][]string, len(r.cols))
		parallel.For(context.Background(), parallel.Workers(r.opts.Workers), len(r.cols), func(c int) {
			vals := append([]string(nil), r.dicts[c]...)
			sort.Strings(vals)
			sorted[c] = vals
		})
		r.sortedVals = sorted
	})
}

// Row materialises row i as strings (a fresh slice).
func (r *Relation) Row(i int) []string {
	row := make([]string, len(r.cols))
	for c := range r.cols {
		row[c] = r.dicts[c][r.cols[c][i]]
	}
	return row
}

// Project returns a new relation containing only the given columns, in the
// given order. Duplicate rows arising from the projection are removed, which
// mirrors how the paper slices datasets for the scalability experiments.
func (r *Relation) Project(cols []int) (*Relation, error) {
	names := make([]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= r.NumColumns() {
			return nil, fmt.Errorf("relation %q: project column %d out of range", r.name, c)
		}
		names[i] = r.colName[c]
	}
	rows := make([][]string, r.NumRows())
	for i := range rows {
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = r.dicts[c][r.cols[c][i]]
		}
		rows[i] = row
	}
	return NewWithOptions(r.name, names, rows, r.opts)
}

// Prefix returns the relation restricted to its first cols columns (after
// duplicate removal), as used by the column-scalability experiment.
func (r *Relation) Prefix(cols int) (*Relation, error) {
	idx := make([]int, cols)
	for i := range idx {
		idx[i] = i
	}
	return r.Project(idx)
}

// Head returns the relation restricted to its first rows rows, re-encoded so
// that dictionaries and cardinalities reflect only the retained rows.
// Non-positive row counts clamp to an empty relation.
func (r *Relation) Head(rows int) *Relation {
	if rows >= r.NumRows() {
		return r
	}
	if rows < 0 {
		rows = 0
	}
	data := make([][]string, rows)
	for i := range data {
		data[i] = r.Row(i)
	}
	out, err := NewWithOptions(r.name, r.colName, data, r.opts)
	if err != nil {
		// Unreachable: the source relation already validated the schema.
		panic(err)
	}
	return out
}

// Rows materialises the whole relation row-major (for writers and tests).
func (r *Relation) Rows() [][]string {
	rows := make([][]string, r.NumRows())
	for i := range rows {
		rows[i] = r.Row(i)
	}
	return rows
}

// ensureAppendState rebuilds the per-column value→code maps and the
// encoded-row duplicate filter that construction discards. It runs once (the
// first Append or Lookup pays O(rows × cols)); Append maintains both
// incrementally afterwards. Callers hold the Append exclusivity contract.
func (r *Relation) ensureAppendState() {
	if r.lookup != nil {
		return
	}
	n := r.NumColumns()
	lookup := make([]map[string]int32, n)
	for c := range lookup {
		m := make(map[string]int32, len(r.dicts[c]))
		for code, v := range r.dicts[c] {
			if r.opts.DistinctNulls && v == NullValue {
				// Fresh-per-occurrence NULL codes never enter the map, so no
				// appended NULL can reuse them (mirrors construction).
				continue
			}
			m[v] = int32(code)
		}
		lookup[c] = m
	}
	rowSet := make(map[string]struct{}, r.NumRows())
	rowKey := make([]byte, 4*n)
	for i, rows := 0, r.NumRows(); i < rows; i++ {
		for c := 0; c < n; c++ {
			binary.LittleEndian.PutUint32(rowKey[4*c:], uint32(r.cols[c][i]))
		}
		rowSet[string(rowKey)] = struct{}{}
	}
	r.lookup = lookup
	r.rowSet = rowSet
}

// Lookup returns the dictionary code of value v in column c, if present.
// Under DistinctNulls the NULL value is never found here; use NullCode.
// Lookup shares the Append exclusivity contract: it must not race with
// Append (it may lazily build the append state).
func (r *Relation) Lookup(c int, v string) (int32, bool) {
	r.ensureAppendState()
	code, ok := r.lookup[c][v]
	return code, ok
}

// Append extends the relation with the given rows in place: per-column
// dictionaries grow for unseen values, code vectors are extended, and rows
// that duplicate an existing or earlier-appended row are dropped — the
// resulting relation is identical to one constructed from the concatenated
// row data. If the sorted distinct-value lists have already been built, the
// lists of grown columns are merged in place (ungrowing columns keep their
// lists untouched), so SPIDER-style consumers stay consistent.
//
// Append is an exclusive operation: it must not run concurrently with any
// other method of the relation or of structures derived from it (PLIs,
// providers). The returned delta describes the append for downstream
// incremental maintenance.
func (r *Relation) Append(rows [][]string) (AppendDelta, error) {
	n := r.NumColumns()
	for i, row := range rows {
		if len(row) != n {
			return AppendDelta{}, fmt.Errorf("relation %q: appended row %d has %d fields, want %d", r.name, i, len(row), n)
		}
	}
	r.ensureAppendState()
	delta := AppendDelta{OldRows: r.NumRows(), OldCard: make([]int, n)}
	for c := 0; c < n; c++ {
		delta.OldCard[c] = len(r.dicts[c])
	}
	codes := make([]int32, n)
	rowKey := make([]byte, 4*n)
	for _, row := range rows {
		// Encode first, dedup second: a duplicate row assigns no new codes
		// (all its values were seen before), so encoding it mutates nothing.
		// Under DistinctNulls every NULL gets a fresh code, which makes any
		// NULL-bearing row non-duplicate by construction — exactly the
		// semantics of a from-scratch build on the concatenated data.
		for c := 0; c < n; c++ {
			v := row[c]
			if r.opts.DistinctNulls && v == NullValue {
				code := int32(len(r.dicts[c]))
				r.dicts[c] = append(r.dicts[c], v)
				if r.nullID[c] < 0 {
					r.nullID[c] = code
				}
				codes[c] = code
				continue
			}
			code, ok := r.lookup[c][v]
			if !ok {
				code = int32(len(r.dicts[c]))
				r.lookup[c][v] = code
				r.dicts[c] = append(r.dicts[c], v)
				if v == NullValue {
					r.nullID[c] = code
				}
			}
			codes[c] = code
		}
		for c := 0; c < n; c++ {
			binary.LittleEndian.PutUint32(rowKey[4*c:], uint32(codes[c]))
		}
		key := string(rowKey)
		if _, dup := r.rowSet[key]; dup {
			r.dupRemoved++
			continue
		}
		r.rowSet[key] = struct{}{}
		for c := 0; c < n; c++ {
			r.cols[c] = append(r.cols[c], codes[c])
		}
		delta.Appended++
	}
	if r.sortedVals != nil {
		for c := 0; c < n; c++ {
			if len(r.dicts[c]) > delta.OldCard[c] {
				r.sortedVals[c] = mergeSorted(r.sortedVals[c], r.dicts[c][delta.OldCard[c]:])
			}
		}
	}
	return delta, nil
}

// mergeSorted merges the unsorted tail of newly appended distinct values into
// an already sorted list, returning a fresh sorted slice.
func mergeSorted(sorted, added []string) []string {
	tail := append([]string(nil), added...)
	sort.Strings(tail)
	out := make([]string, 0, len(sorted)+len(tail))
	i, j := 0, 0
	for i < len(sorted) && j < len(tail) {
		if sorted[i] <= tail[j] {
			out = append(out, sorted[i])
			i++
		} else {
			out = append(out, tail[j])
			j++
		}
	}
	out = append(out, sorted[i:]...)
	out = append(out, tail[j:]...)
	return out
}
