package relation

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func rel(t *testing.T, rows [][]string) *Relation {
	t.Helper()
	names := make([]string, len(rows[0]))
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	r, err := New("t", names, rows)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBasicAccessors(t *testing.T) {
	r := rel(t, [][]string{
		{"w", "z", "x"},
		{"w", "x", "x"},
		{"x", "z", "w"},
		{"y", "z", "z"},
	})
	if r.NumColumns() != 3 || r.NumRows() != 4 {
		t.Fatalf("shape = %dx%d, want 4x3", r.NumRows(), r.NumColumns())
	}
	if r.Value(0, 0) != "w" || r.Value(3, 2) != "z" {
		t.Error("Value mismatch")
	}
	if got := r.Row(1); !reflect.DeepEqual(got, []string{"w", "x", "x"}) {
		t.Errorf("Row(1) = %v", got)
	}
	if r.Cardinality(0) != 3 || r.Cardinality(1) != 2 || r.Cardinality(2) != 3 {
		t.Error("Cardinality mismatch")
	}
	if r.ColumnIndex("B") != 1 || r.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex mismatch")
	}
	if r.ColumnName(2) != "C" {
		t.Error("ColumnName mismatch")
	}
	if r.AllColumns().Len() != 3 {
		t.Error("AllColumns mismatch")
	}
}

func TestDictionaryEncoding(t *testing.T) {
	r := rel(t, [][]string{{"a", "1"}, {"b", "1"}, {"a", "2"}, {"c", "1"}})
	col := r.Column(0)
	if !reflect.DeepEqual(col, []int32{0, 1, 0, 2}) {
		t.Errorf("codes = %v", col)
	}
	if got := r.DistinctValues(0); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("DistinctValues = %v", got)
	}
}

func TestDuplicateRowRemoval(t *testing.T) {
	r := rel(t, [][]string{
		{"a", "1"},
		{"a", "1"},
		{"b", "1"},
		{"a", "1"},
	})
	if r.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", r.NumRows())
	}
	if r.DuplicatesRemoved() != 2 {
		t.Errorf("DuplicatesRemoved = %d, want 2", r.DuplicatesRemoved())
	}
}

func TestNullHandling(t *testing.T) {
	r := rel(t, [][]string{{"", "x"}, {"a", "y"}})
	if r.NullCode(0) != 0 {
		t.Errorf("NullCode(0) = %d, want 0", r.NullCode(0))
	}
	if r.NullCode(1) != -1 {
		t.Errorf("NullCode(1) = %d, want -1", r.NullCode(1))
	}
}

func TestSortedDistinctValues(t *testing.T) {
	r := rel(t, [][]string{{"w"}, {"w"}, {"x"}, {"y"}, {"z"}, {"z"}})
	want := []string{"w", "x", "y", "z"}
	if got := r.SortedDistinctValues(0); !reflect.DeepEqual(got, want) {
		t.Errorf("SortedDistinctValues = %v, want %v", got, want)
	}
	// Second call hits the cache and must agree.
	if got := r.SortedDistinctValues(0); !reflect.DeepEqual(got, want) {
		t.Errorf("cached SortedDistinctValues = %v, want %v", got, want)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New("t", nil, nil); err == nil {
		t.Error("expected error for zero columns")
	}
	if _, err := New("t", []string{"A"}, [][]string{{"a", "b"}}); err == nil {
		t.Error("expected error for ragged row")
	}
	wide := make([]string, 300)
	for i := range wide {
		wide[i] = string(rune('a' + i%26))
	}
	if _, err := New("t", wide, nil); err == nil {
		t.Error("expected error for too many columns")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid input")
		}
	}()
	MustNew("t", nil, nil)
}

func TestProject(t *testing.T) {
	r := rel(t, [][]string{
		{"a", "1", "x"},
		{"a", "2", "x"},
		{"b", "1", "x"},
	})
	p, err := r.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.ColumnNames(), []string{"C", "A"}) {
		t.Errorf("projected names = %v", p.ColumnNames())
	}
	// Projection drops column B, making rows 0 and 1 duplicates.
	if p.NumRows() != 2 {
		t.Errorf("projected rows = %d, want 2", p.NumRows())
	}
	if _, err := r.Project([]int{5}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestPrefixAndHead(t *testing.T) {
	r := rel(t, [][]string{
		{"a", "1"},
		{"b", "1"},
		{"c", "2"},
	})
	p, err := r.Prefix(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumColumns() != 1 || p.NumRows() != 3 {
		t.Errorf("prefix shape = %dx%d", p.NumRows(), p.NumColumns())
	}
	h := r.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("head rows = %d", h.NumRows())
	}
	// Head must re-encode: column B of the first two rows has one distinct value.
	if h.Cardinality(1) != 1 {
		t.Errorf("head cardinality = %d, want 1", h.Cardinality(1))
	}
	if got := r.Head(99); got != r {
		t.Error("Head beyond length should return the receiver")
	}
}

func TestRowsRoundTrip(t *testing.T) {
	rows := [][]string{{"a", "1"}, {"b", "2"}}
	r := rel(t, rows)
	if got := r.Rows(); !reflect.DeepEqual(got, rows) {
		t.Errorf("Rows = %v", got)
	}
}

func TestReadCSV(t *testing.T) {
	in := "A,B\n1,x\n2,y\n2,y\n"
	r, err := ReadCSV("mem", strings.NewReader(in), CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.ColumnNames(), []string{"A", "B"}) {
		t.Errorf("names = %v", r.ColumnNames())
	}
	if r.NumRows() != 2 { // duplicate removed
		t.Errorf("rows = %d, want 2", r.NumRows())
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	r, err := ReadCSV("mem", strings.NewReader("1,x\n2,y\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.ColumnNames(), []string{"col0", "col1"}) {
		t.Errorf("names = %v", r.ColumnNames())
	}
}

func TestReadCSVMaxRowsAndSeparator(t *testing.T) {
	r, err := ReadCSV("mem", strings.NewReader("a;b\nc;d\ne;f\n"), CSVOptions{Comma: ';', MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", r.NumRows())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("mem", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ReadCSV("mem", strings.NewReader("A,B\n1\n"), CSVOptions{HasHeader: true}); err == nil {
		t.Error("expected error for ragged row")
	}
	if _, err := ReadCSV("mem", strings.NewReader(""), CSVOptions{HasHeader: true}); err == nil {
		t.Error("expected error for missing header")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	r := rel(t, [][]string{{"a", "1"}, {"b", "2"}})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("mem", &buf, CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Rows(), r.Rows()) {
		t.Errorf("round trip mismatch: %v vs %v", back.Rows(), r.Rows())
	}
}

// Property: after construction no two rows are identical, and every value
// round-trips through the dictionary encoding.
func TestQuickNoDuplicateRows(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			rows := make([][]string, 1+rnd.Intn(40))
			cols := 1 + rnd.Intn(5)
			for i := range rows {
				row := make([]string, cols)
				for c := range row {
					row[c] = string(rune('a' + rnd.Intn(3)))
				}
				rows[i] = row
			}
			vals[0] = reflect.ValueOf(rows)
		},
	}
	if err := quick.Check(func(rows [][]string) bool {
		names := make([]string, len(rows[0]))
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		r, err := New("q", names, rows)
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		for i := 0; i < r.NumRows(); i++ {
			key := strings.Join(r.Row(i), "\x00")
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return r.NumRows()+r.DuplicatesRemoved() == len(rows)
	}, cfg); err != nil {
		t.Error(err)
	}
}
