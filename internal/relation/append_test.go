package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// equalRelations asserts that two relations agree on schema, dictionaries,
// code vectors, NULL codes, and sorted value lists.
func equalRelations(t *testing.T, got, want *Relation) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: got %d want %d", got.NumRows(), want.NumRows())
	}
	if got.NumColumns() != want.NumColumns() {
		t.Fatalf("cols: got %d want %d", got.NumColumns(), want.NumColumns())
	}
	for c := 0; c < want.NumColumns(); c++ {
		if !reflect.DeepEqual(got.DistinctValues(c), want.DistinctValues(c)) {
			t.Fatalf("column %d dicts differ:\ngot  %v\nwant %v", c, got.DistinctValues(c), want.DistinctValues(c))
		}
		if !reflect.DeepEqual(got.Column(c), want.Column(c)) {
			t.Fatalf("column %d codes differ:\ngot  %v\nwant %v", c, got.Column(c), want.Column(c))
		}
		if got.NullCode(c) != want.NullCode(c) {
			t.Fatalf("column %d null code: got %d want %d", c, got.NullCode(c), want.NullCode(c))
		}
		if !reflect.DeepEqual(got.SortedDistinctValues(c), want.SortedDistinctValues(c)) {
			t.Fatalf("column %d sorted values differ:\ngot  %v\nwant %v", c, got.SortedDistinctValues(c), want.SortedDistinctValues(c))
		}
	}
	if got.DuplicatesRemoved() != want.DuplicatesRemoved() {
		t.Fatalf("dupRemoved: got %d want %d", got.DuplicatesRemoved(), want.DuplicatesRemoved())
	}
}

func randomRows(rng *rand.Rand, rows, cols int, nullRate float64) [][]string {
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			if rng.Float64() < nullRate {
				row[c] = ""
			} else {
				row[c] = fmt.Sprintf("v%d", rng.Intn(3+c*2))
			}
		}
		data[i] = row
	}
	return data
}

// TestAppendEquivalence is the relation-layer differential spine: appending
// batches in place must yield a relation identical to a from-scratch build on
// the concatenated rows, for both NULL semantics and regardless of whether
// the sorted value lists were built before or after the append.
func TestAppendEquivalence(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	for _, distinctNulls := range []bool{false, true} {
		for _, sortEarly := range []bool{false, true} {
			t.Run(fmt.Sprintf("distinctNulls=%v/sortEarly=%v", distinctNulls, sortEarly), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				opts := Options{DistinctNulls: distinctNulls}
				base := randomRows(rng, 40, len(names), 0.15)
				inc, err := NewWithOptions("t", names, base, opts)
				if err != nil {
					t.Fatal(err)
				}
				all := append([][]string(nil), base...)
				for batch := 0; batch < 4; batch++ {
					if sortEarly {
						inc.EnsureSortedValues()
					}
					rows := randomRows(rng, 5+batch*3, len(names), 0.15)
					// Force some exact duplicates of existing rows.
					rows = append(rows, all[rng.Intn(len(all))], rows[0])
					delta, err := inc.Append(rows)
					if err != nil {
						t.Fatal(err)
					}
					all = append(all, rows...)
					scratch, err := NewWithOptions("t", names, all, opts)
					if err != nil {
						t.Fatal(err)
					}
					equalRelations(t, inc, scratch)
					if delta.OldRows+delta.Appended != inc.NumRows() {
						t.Fatalf("delta rows: old %d + appended %d != %d", delta.OldRows, delta.Appended, inc.NumRows())
					}
					for c := range names {
						if delta.OldCard[c] > inc.Cardinality(c) {
							t.Fatalf("column %d OldCard %d exceeds cardinality %d", c, delta.OldCard[c], inc.Cardinality(c))
						}
					}
				}
			})
		}
	}
}

func TestAppendRejectsRaggedRows(t *testing.T) {
	r := MustNew("t", []string{"a", "b"}, [][]string{{"1", "2"}})
	if _, err := r.Append([][]string{{"1", "2", "3"}}); err == nil {
		t.Fatal("want error for ragged appended row")
	}
	if r.NumRows() != 1 {
		t.Fatalf("failed append mutated the relation: %d rows", r.NumRows())
	}
}

func TestLookup(t *testing.T) {
	r := MustNew("t", []string{"a"}, [][]string{{"x"}, {"y"}})
	if code, ok := r.Lookup(0, "y"); !ok || r.DistinctValues(0)[code] != "y" {
		t.Fatalf("Lookup(y) = %d, %v", code, ok)
	}
	if _, ok := r.Lookup(0, "z"); ok {
		t.Fatal("Lookup(z) should miss")
	}
	if _, err := r.Append([][]string{{"z"}}); err != nil {
		t.Fatal(err)
	}
	if code, ok := r.Lookup(0, "z"); !ok || code != 2 {
		t.Fatalf("Lookup(z) after append = %d, %v", code, ok)
	}
}

// TestHeadClampsNonPositive is the regression test for the Head panic on
// rows <= 0: both must clamp to an empty relation with the schema intact.
func TestHeadClampsNonPositive(t *testing.T) {
	r := MustNew("t", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	for _, rows := range []int{0, -1, -100} {
		h := r.Head(rows)
		if h.NumRows() != 0 {
			t.Fatalf("Head(%d): got %d rows, want 0", rows, h.NumRows())
		}
		if h.NumColumns() != 2 {
			t.Fatalf("Head(%d): got %d columns, want 2", rows, h.NumColumns())
		}
	}
}
