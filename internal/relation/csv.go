package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field separator; 0 means ','.
	Comma rune
	// HasHeader indicates the first record holds column names. Without a
	// header, columns are named "col0", "col1", ...
	HasHeader bool
	// MaxRows, if positive, stops reading after that many data rows.
	MaxRows int
	// Relation carries the NULL-semantics options through to construction.
	Relation Options
}

// ReadCSV parses a CSV stream into a Relation.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Relation, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1 // validate ourselves for a better error message

	var header []string
	if opts.HasHeader {
		rec, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("read csv %q header: %w", name, err)
		}
		header = append(header, rec...)
	}

	var rows [][]string
	for {
		if opts.MaxRows > 0 && len(rows) >= opts.MaxRows {
			break
		}
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv %q: %w", name, err)
		}
		if header == nil {
			header = make([]string, len(rec))
			for i := range header {
				header[i] = fmt.Sprintf("col%d", i)
			}
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("read csv %q: row %d has %d fields, want %d", name, len(rows)+1, len(rec), len(header))
		}
		rows = append(rows, append([]string(nil), rec...))
	}
	if header == nil {
		return nil, fmt.Errorf("read csv %q: empty input", name)
	}
	return NewWithOptions(name, header, rows, opts.Relation)
}

// ReadCSVFile reads a CSV file from disk.
func ReadCSVFile(path string, opts CSVOptions) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(path, f, opts)
}

// WriteCSV writes the relation (with a header row) to w.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.colName); err != nil {
		return err
	}
	row := make([]string, r.NumColumns())
	for i := 0; i < r.NumRows(); i++ {
		for c := range row {
			row[c] = r.Value(i, c)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
