package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"holistic/internal/faults"
)

// DefaultMaxFieldBytes bounds a single CSV field when CSVOptions.MaxFieldBytes
// is zero. A field beyond this is almost certainly a malformed quote or a
// binary blob, and rejecting it early keeps one pathological cell from
// ballooning the dictionary encoding.
const DefaultMaxFieldBytes = 1 << 20

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field separator; 0 means ','.
	Comma rune
	// HasHeader indicates the first record holds column names. Without a
	// header, columns are named "col0", "col1", ...
	HasHeader bool
	// MaxRows, if positive, stops reading after that many data rows.
	MaxRows int
	// MaxFieldBytes bounds a single field's size (0 selects
	// DefaultMaxFieldBytes; negative disables the bound).
	MaxFieldBytes int
	// Relation carries the NULL-semantics options through to construction.
	Relation Options
}

// maxFieldBytes resolves MaxFieldBytes to the effective per-field bound
// (0 = unbounded).
func (o CSVOptions) maxFieldBytes() int {
	switch {
	case o.MaxFieldBytes < 0:
		return 0
	case o.MaxFieldBytes == 0:
		return DefaultMaxFieldBytes
	default:
		return o.MaxFieldBytes
	}
}

// validateRecord rejects fields that cannot be legitimate relational values:
// NUL bytes (a NUL in CSV input means binary garbage, and downstream
// consumers use NUL-separated row keys) and fields beyond the size bound.
// where names the record in errors ("header" or "row N", 1-based).
func validateRecord(name, where string, rec []string, maxField int) error {
	for i, field := range rec {
		if strings.IndexByte(field, 0) >= 0 {
			return fmt.Errorf("read csv %q: %s column %d contains a NUL byte", name, where, i+1)
		}
		if maxField > 0 && len(field) > maxField {
			return fmt.Errorf("read csv %q: %s column %d field is %d bytes (limit %d)", name, where, i+1, len(field), maxField)
		}
	}
	return nil
}

// ReadCSV parses a CSV stream into a Relation. Beyond CSV well-formedness it
// enforces relational hygiene with precise positions: rectangular rows, no
// NUL bytes, bounded field sizes.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Relation, error) {
	header, rows, err := ReadCSVRows(name, r, opts)
	if err != nil {
		return nil, err
	}
	return NewWithOptions(name, header, rows, opts.Relation)
}

// ReadCSVRows parses a CSV stream into its header and raw rows, applying the
// same hygiene checks as ReadCSV but skipping relation construction — the
// form consumed by incremental batch appends, which extend an existing
// relation instead of building a new one.
func ReadCSVRows(name string, r io.Reader, opts CSVOptions) ([]string, [][]string, error) {
	if err := faults.Inject(faults.ReaderIO); err != nil {
		return nil, nil, fmt.Errorf("read csv %q: %w", name, err)
	}
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1 // validate ourselves for a better error message
	maxField := opts.maxFieldBytes()

	var header []string
	if opts.HasHeader {
		rec, err := cr.Read()
		if err != nil {
			return nil, nil, fmt.Errorf("read csv %q header: %w", name, err)
		}
		if err := validateRecord(name, "header", rec, maxField); err != nil {
			return nil, nil, err
		}
		header = append(header, rec...)
	}

	var rows [][]string
	for {
		if opts.MaxRows > 0 && len(rows) >= opts.MaxRows {
			break
		}
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("read csv %q: %w", name, err)
		}
		if err := validateRecord(name, fmt.Sprintf("row %d", len(rows)+1), rec, maxField); err != nil {
			return nil, nil, err
		}
		if header == nil {
			header = make([]string, len(rec))
			for i := range header {
				header[i] = fmt.Sprintf("col%d", i)
			}
		}
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("read csv %q: row %d has %d fields, want %d", name, len(rows)+1, len(rec), len(header))
		}
		rows = append(rows, append([]string(nil), rec...))
	}
	if header == nil {
		return nil, nil, fmt.Errorf("read csv %q: empty input", name)
	}
	return header, rows, nil
}

// ReadCSVFile reads a CSV file from disk.
func ReadCSVFile(path string, opts CSVOptions) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(path, f, opts)
}

// WriteCSV writes the relation (with a header row) to w.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.colName); err != nil {
		return err
	}
	row := make([]string, r.NumColumns())
	for i := 0; i < r.NumRows(); i++ {
		for c := range row {
			row[c] = r.Value(i, c)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
