package relation

import (
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV → relation pipeline with arbitrary inputs:
// it must either return an error or produce a structurally consistent
// relation (rectangular, duplicate-free, dictionary codes in range).
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1;2\n", false)
	f.Add("", true)
	f.Add("a,b\n\"x,y\",z\n", true)
	f.Add("a\n\n", true)
	// Malformed corpora: NUL bytes, ragged rows, unterminated quotes, bare
	// quotes mid-field, oversized fields, NUL in the header.
	f.Add("a,b\n1,\x002\n", true)
	f.Add("a\x00b,c\n1,2\n", true)
	f.Add("a,b\n1\n1,2,3\n", true)
	f.Add("a,b\n\"unterminated,2\n", true)
	f.Add("a,b\n1,x\"y\n", true)
	f.Add("a,b\n"+strings.Repeat("x", 300)+",2\n", true)
	f.Add("\xff\xfe,b\n1,2\n", true)
	f.Fuzz(func(t *testing.T, input string, header bool) {
		rel, err := ReadCSV("fuzz", strings.NewReader(input), CSVOptions{HasHeader: header, MaxRows: 64, MaxFieldBytes: 256})
		if err != nil {
			return
		}
		for i := 0; i < rel.NumRows(); i++ {
			for _, v := range rel.Row(i) {
				if strings.IndexByte(v, 0) >= 0 {
					t.Fatalf("NUL byte survived into the relation: %q", v)
				}
				if len(v) > 256 {
					t.Fatalf("oversized field survived into the relation: %d bytes", len(v))
				}
			}
		}
		n := rel.NumColumns()
		if n == 0 {
			t.Fatal("relation with zero columns returned without error")
		}
		seen := map[string]bool{}
		for i := 0; i < rel.NumRows(); i++ {
			row := rel.Row(i)
			if len(row) != n {
				t.Fatalf("row %d has %d fields, want %d", i, len(row), n)
			}
			key := strings.Join(row, "\x00")
			if seen[key] {
				t.Fatalf("duplicate row survived: %q", key)
			}
			seen[key] = true
		}
		for c := 0; c < n; c++ {
			card := rel.Cardinality(c)
			for _, code := range rel.Column(c) {
				if code < 0 || int(code) >= card {
					t.Fatalf("column %d code %d out of dictionary range %d", c, code, card)
				}
			}
		}
	})
}
