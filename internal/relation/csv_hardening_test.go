package relation

import (
	"strings"
	"testing"
)

// TestReadCSVRejectsNUL verifies NUL bytes are rejected with the precise
// row/column position, in data rows and in the header.
func TestReadCSVRejectsNUL(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"data row", "a,b\n1,2\n3,\x004\n", "row 2 column 2 contains a NUL byte"},
		{"first row", "a,b\n\x001,2\n", "row 1 column 1 contains a NUL byte"},
		{"header", "a,\x00b\n1,2\n", "header column 2 contains a NUL byte"},
		{"quoted field", "a,b\n\"x\x00y\",2\n", "row 1 column 1 contains a NUL byte"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV("t", strings.NewReader(tc.input), CSVOptions{HasHeader: true})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestReadCSVFieldSizeLimit verifies the per-field byte bound: default on,
// configurable, disabled with a negative value, position-precise errors.
func TestReadCSVFieldSizeLimit(t *testing.T) {
	big := strings.Repeat("x", 100)

	_, err := ReadCSV("t", strings.NewReader("a,b\n1,"+big+"\n"), CSVOptions{HasHeader: true, MaxFieldBytes: 64})
	want := "row 1 column 2 field is 100 bytes (limit 64)"
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want containing %q", err, want)
	}

	_, err = ReadCSV("t", strings.NewReader(big+",b\n1,2\n"), CSVOptions{HasHeader: true, MaxFieldBytes: 64})
	if err == nil || !strings.Contains(err.Error(), "header column 1") {
		t.Fatalf("header err = %v, want header column 1 size error", err)
	}

	// Negative disables the bound entirely.
	rel, err := ReadCSV("t", strings.NewReader("a,b\n1,"+big+"\n"), CSVOptions{HasHeader: true, MaxFieldBytes: -1})
	if err != nil {
		t.Fatalf("unbounded read failed: %v", err)
	}
	if rel.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", rel.NumRows())
	}

	// The default bound admits ordinary fields.
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1,"+big+"\n"), CSVOptions{HasHeader: true}); err != nil {
		t.Fatalf("default bound rejected a %d-byte field: %v", len(big), err)
	}
}

// TestReadCSVRaggedRowPosition pins the pre-existing ragged-row error to its
// precise row number alongside the new checks.
func TestReadCSVRaggedRowPosition(t *testing.T) {
	_, err := ReadCSV("t", strings.NewReader("a,b\n1,2\n3\n"), CSVOptions{HasHeader: true})
	want := "row 2 has 1 fields, want 2"
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want containing %q", err, want)
	}
}
