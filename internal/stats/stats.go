// Package stats computes single-column statistics over the shared relation
// substrate. Basic statistics are the entry point of every profiling session
// (paper Sec. 1 frames data profiling as structure *and* statistics); this
// package piggybacks on the dictionary encoding built for the dependency
// algorithms, so gathering statistics adds no extra input pass — the same
// cost-sharing idea that motivates the holistic algorithms.
package stats

import (
	"math"
	"strconv"
	"unicode/utf8"

	"holistic/internal/relation"
)

// Type is the inferred value type of a column.
type Type int

const (
	// TypeEmpty marks columns with no non-NULL values.
	TypeEmpty Type = iota
	// TypeInteger marks columns whose non-NULL values all parse as int64.
	TypeInteger
	// TypeFloat marks columns whose non-NULL values all parse as float64
	// (and at least one is not an integer).
	TypeFloat
	// TypeString marks everything else.
	TypeString
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeEmpty:
		return "empty"
	case TypeInteger:
		return "integer"
	case TypeFloat:
		return "float"
	default:
		return "string"
	}
}

// Column holds the statistics of one column. The JSON tags make statistics
// embeddable in the profiling report (core.Report).
type Column struct {
	Name     string `json:"name"`
	Type     Type   `json:"-"`
	TypeName string `json:"type"`
	Rows     int    `json:"rows"`
	Nulls    int    `json:"nulls"`
	Distinct int    `json:"distinct"`
	// Uniqueness is Distinct / non-null Rows (0 for all-NULL columns).
	Uniqueness float64 `json:"uniqueness"`
	// MinString/MaxString are the lexicographic extremes of the non-NULL
	// values (empty for all-NULL columns).
	MinString string `json:"min_string"`
	MaxString string `json:"max_string"`
	// MinNumeric/MaxNumeric/MeanNumeric are populated for numeric columns.
	MinNumeric  float64 `json:"min_numeric"`
	MaxNumeric  float64 `json:"max_numeric"`
	MeanNumeric float64 `json:"mean_numeric"`
	// MinLength/MaxLength/AvgLength describe value lengths in runes.
	MinLength int     `json:"min_length"`
	MaxLength int     `json:"max_length"`
	AvgLength float64 `json:"avg_length"`
	// MostFrequent is a value with maximal frequency; Frequency its count.
	MostFrequent string `json:"most_frequent"`
	Frequency    int    `json:"frequency"`
}

// Profile computes statistics for every column of the relation.
func Profile(rel *relation.Relation) []Column {
	out := make([]Column, rel.NumColumns())
	for c := range out {
		out[c] = ProfileColumn(rel, c)
	}
	return out
}

// ProfileColumn computes the statistics of a single column.
func ProfileColumn(rel *relation.Relation, c int) Column {
	col := Column{
		Name: rel.ColumnName(c),
		Rows: rel.NumRows(),
	}

	// Count value frequencies over the dictionary codes (one pass).
	codes := rel.Column(c)
	freq := make([]int, rel.Cardinality(c))
	for _, code := range codes {
		freq[code]++
	}

	values := rel.DistinctValues(c)
	nonNull := 0
	isInt, isFloat := true, true
	var sum float64
	var numCount int
	lengthSum := 0
	col.MinLength = math.MaxInt
	for code, v := range values {
		n := freq[code]
		if n == 0 {
			continue // value only occurred in removed duplicate rows
		}
		if v == relation.NullValue {
			col.Nulls += n
			continue
		}
		nonNull += n
		col.Distinct++
		if col.MinString == "" && col.MaxString == "" && col.Distinct == 1 {
			col.MinString, col.MaxString = v, v
		} else {
			if v < col.MinString {
				col.MinString = v
			}
			if v > col.MaxString {
				col.MaxString = v
			}
		}
		if n > col.Frequency {
			col.Frequency = n
			col.MostFrequent = v
		}
		l := utf8.RuneCountInString(v)
		lengthSum += l * n
		if l < col.MinLength {
			col.MinLength = l
		}
		if l > col.MaxLength {
			col.MaxLength = l
		}
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			if _, ierr := strconv.ParseInt(v, 10, 64); ierr != nil {
				isInt = false
			}
			if numCount == 0 {
				col.MinNumeric, col.MaxNumeric = f, f
			} else {
				if f < col.MinNumeric {
					col.MinNumeric = f
				}
				if f > col.MaxNumeric {
					col.MaxNumeric = f
				}
			}
			sum += f * float64(n)
			numCount += n
		} else {
			isInt, isFloat = false, false
		}
	}

	switch {
	case nonNull == 0:
		col.Type = TypeEmpty
		col.MinLength = 0
	case isInt:
		col.Type = TypeInteger
	case isFloat:
		col.Type = TypeFloat
	default:
		col.Type = TypeString
	}
	if nonNull > 0 {
		col.Uniqueness = float64(col.Distinct) / float64(nonNull)
		col.AvgLength = float64(lengthSum) / float64(nonNull)
	}
	if numCount > 0 && (col.Type == TypeInteger || col.Type == TypeFloat) {
		col.MeanNumeric = sum / float64(numCount)
	} else {
		col.MinNumeric, col.MaxNumeric, col.MeanNumeric = 0, 0, 0
	}
	col.TypeName = col.Type.String()
	return col
}
