package stats

import (
	"math"
	"testing"

	"holistic/internal/relation"
)

func rel(t *testing.T, names []string, rows [][]string) *relation.Relation {
	t.Helper()
	r, err := relation.New("t", names, rows)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIntegerColumn(t *testing.T) {
	r := rel(t, []string{"n", "pad"}, [][]string{
		{"3", "a"}, {"1", "b"}, {"2", "c"}, {"2", "d"},
	})
	c := ProfileColumn(r, 0)
	if c.Type != TypeInteger {
		t.Errorf("Type = %v, want integer", c.Type)
	}
	if c.Distinct != 3 || c.Nulls != 0 {
		t.Errorf("Distinct=%d Nulls=%d", c.Distinct, c.Nulls)
	}
	if c.MinNumeric != 1 || c.MaxNumeric != 3 {
		t.Errorf("numeric range = [%v,%v]", c.MinNumeric, c.MaxNumeric)
	}
	if math.Abs(c.MeanNumeric-2) > 1e-9 {
		t.Errorf("Mean = %v, want 2", c.MeanNumeric)
	}
	if c.MostFrequent != "2" || c.Frequency != 2 {
		t.Errorf("MostFrequent = %q x%d", c.MostFrequent, c.Frequency)
	}
	if c.Uniqueness != 0.75 {
		t.Errorf("Uniqueness = %v", c.Uniqueness)
	}
}

func TestFloatAndStringTypes(t *testing.T) {
	r := rel(t, []string{"f", "s"}, [][]string{
		{"1.5", "x"}, {"2", "yy"}, {"0.25", "zzz"},
	})
	f := ProfileColumn(r, 0)
	if f.Type != TypeFloat {
		t.Errorf("f.Type = %v, want float", f.Type)
	}
	s := ProfileColumn(r, 1)
	if s.Type != TypeString {
		t.Errorf("s.Type = %v, want string", s.Type)
	}
	if s.MinLength != 1 || s.MaxLength != 3 || math.Abs(s.AvgLength-2) > 1e-9 {
		t.Errorf("lengths = %d..%d avg %v", s.MinLength, s.MaxLength, s.AvgLength)
	}
	if s.MinString != "x" || s.MaxString != "zzz" {
		t.Errorf("string range = %q..%q", s.MinString, s.MaxString)
	}
}

func TestNullHandling(t *testing.T) {
	r := rel(t, []string{"a", "b"}, [][]string{
		{"", "1"}, {"x", "2"}, {"", "3"},
	})
	c := ProfileColumn(r, 0)
	if c.Nulls != 2 || c.Distinct != 1 {
		t.Errorf("Nulls=%d Distinct=%d", c.Nulls, c.Distinct)
	}
	if c.Uniqueness != 1 {
		t.Errorf("Uniqueness = %v (1 distinct / 1 non-null)", c.Uniqueness)
	}
}

func TestAllNullColumn(t *testing.T) {
	r := rel(t, []string{"a", "b"}, [][]string{
		{"", "1"}, {"", "2"},
	})
	c := ProfileColumn(r, 0)
	if c.Type != TypeEmpty {
		t.Errorf("Type = %v, want empty", c.Type)
	}
	if c.MinLength != 0 || c.Uniqueness != 0 {
		t.Errorf("MinLength=%d Uniqueness=%v", c.MinLength, c.Uniqueness)
	}
	if c.Type.String() != "empty" {
		t.Errorf("String = %q", c.Type.String())
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{TypeEmpty: "empty", TypeInteger: "integer", TypeFloat: "float", TypeString: "string"}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}

func TestProfileAllColumns(t *testing.T) {
	r := rel(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", ""},
		{"2", "y", ""},
	})
	cols := Profile(r)
	if len(cols) != 3 {
		t.Fatalf("got %d columns", len(cols))
	}
	if cols[0].Name != "a" || cols[0].Type != TypeInteger {
		t.Errorf("col a = %+v", cols[0])
	}
	if cols[2].Type != TypeEmpty {
		t.Errorf("col c = %+v", cols[2])
	}
}

func TestNegativeAndLargeNumbers(t *testing.T) {
	r := rel(t, []string{"n", "pad"}, [][]string{
		{"-5", "a"}, {"10", "b"}, {"-5", "c"},
	})
	c := ProfileColumn(r, 0)
	if c.Type != TypeInteger || c.MinNumeric != -5 || c.MaxNumeric != 10 {
		t.Errorf("col = %+v", c)
	}
}
