package experiments

import (
	"bytes"
	"strings"
	"testing"

	"holistic/internal/core"
)

func TestFig6SmallScale(t *testing.T) {
	var buf bytes.Buffer
	ms, err := Fig6(&buf, []int{500, 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 { // 2 row counts × 3 strategies
		t.Fatalf("got %d measurements", len(ms))
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("missing header")
	}
	// All strategies agree on the FD count per row step.
	for i := 0; i < len(ms); i += 3 {
		if ms[i].FDs != ms[i+1].FDs || ms[i].FDs != ms[i+2].FDs {
			t.Errorf("FD disagreement at step %d: %+v", i/3, ms[i:i+3])
		}
	}
}

func TestFig7SmallScale(t *testing.T) {
	var buf bytes.Buffer
	ms, err := Fig7(&buf, []int{9, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("got %d measurements", len(ms))
	}
	// Dependency counts must grow (or at least not shrink) with columns.
	if ms[3].FDs < ms[0].FDs {
		t.Errorf("FD count shrank with more columns: %d -> %d", ms[0].FDs, ms[3].FDs)
	}
}

func TestTable3Subset(t *testing.T) {
	var buf bytes.Buffer
	ms, err := Table3(&buf, []string{"iris", "balance"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 { // 2 datasets × 4 strategies
		t.Fatalf("got %d measurements", len(ms))
	}
	for i := 0; i < len(ms); i += 4 {
		for j := 1; j < 4; j++ {
			if ms[i].FDs != ms[i+j].FDs {
				t.Errorf("strategy FD disagreement on %s", ms[i].Dataset)
			}
		}
	}
	if !strings.Contains(buf.String(), "balance") {
		t.Error("missing dataset row")
	}
}

func TestFig8SmallScale(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig8(&buf, 400, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) == 0 {
		t.Error("no FDs found")
	}
	// The Figure 8 phases must all be present in the output.
	for _, name := range []string{core.PhaseSpider, core.PhaseDucc, core.PhaseMinimizeFDs,
		core.PhaseCalculateRZ, core.PhaseGenerateShadowed, core.PhaseMinimizeShadowed,
		core.PhaseCompletionSweep} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("phase %s missing from output", name)
		}
	}
}

func TestPropertySweep(t *testing.T) {
	var buf bytes.Buffer
	ms, err := PropertySweep(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 12 { // 4 configurations × 3 strategies
		t.Fatalf("got %d measurements", len(ms))
	}
	for i := 0; i < len(ms); i += 3 {
		if ms[i].FDs != ms[i+1].FDs || ms[i].FDs != ms[i+2].FDs {
			t.Errorf("strategies disagree on %s", ms[i].Dataset)
		}
	}
}
