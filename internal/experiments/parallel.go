package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"holistic/internal/core"
	"holistic/internal/dataset"
	"holistic/internal/pli"
	"holistic/internal/relation"
)

// ParallelMeasurement is one (dataset, algorithm, workers) timing of the
// parallel-scaling benchmark, serialised into BENCH_parallel.json.
type ParallelMeasurement struct {
	Dataset       string  `json:"dataset"`
	Algorithm     string  `json:"algorithm"`
	Workers       int     `json:"workers"`
	WallSeconds   float64 `json:"wall_seconds"`
	Speedup       float64 `json:"speedup_vs_workers_1"`
	Checks        int     `json:"checks"`
	FDs           int     `json:"fds"`
	UCCs          int     `json:"uccs"`
	INDs          int     `json:"inds"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	Intersections int64   `json:"pli_intersections"`
}

// parallelReport is the top-level BENCH_parallel.json document.
type parallelReport struct {
	GOMAXPROCS   int                   `json:"gomaxprocs"`
	Measurements []ParallelMeasurement `json:"measurements"`
}

// parallelObserver captures the check totals and cache statistics of one run.
type parallelObserver struct {
	core.NopObserver
	checks int
	stats  pli.CacheStats
}

func (o *parallelObserver) Checks(delta int)            { o.checks += delta }
func (o *parallelObserver) CacheStats(s pli.CacheStats) { o.stats = s }

// ParallelBench measures the wall-time scaling of the parallel phases: every
// (dataset, algorithm) pair runs once per worker count, the discovered
// IND/UCC/FD sets are required to be identical across all worker counts (the
// engine's determinism contract), and the measurements are written to
// jsonPath as machine-readable JSON (empty path = no file). workerCounts nil
// selects 1, 2, 4, ..., GOMAXPROCS.
func ParallelBench(w io.Writer, jsonPath string, workerCounts []int, seed int64) ([]ParallelMeasurement, error) {
	if workerCounts == nil {
		for n := 1; n < runtime.GOMAXPROCS(0); n *= 2 {
			workerCounts = append(workerCounts, n)
		}
		workerCounts = append(workerCounts, runtime.GOMAXPROCS(0))
	}

	type bench struct {
		rel        *relation.Relation
		algorithms []string
	}
	benches := []bench{
		{dataset.NCVoter(2000, 16), []string{core.StrategyMuds, core.StrategyHolisticFun}},
		{dataset.Uniprot(20000), []string{core.StrategyMuds}},
	}

	fmt.Fprintln(w, "Parallel scaling — worker-pool speedup on the shared-PLI strategies")
	fmt.Fprintf(w, "%-10s %-6s %8s %10s %8s %10s %12s %12s\n",
		"dataset", "algo", "workers", "wall", "speedup", "checks", "cache-hits", "intersects")

	var out []ParallelMeasurement
	for _, bm := range benches {
		for _, algo := range bm.algorithms {
			var baseline *core.Result
			var baseSeconds float64
			for _, workers := range workerCounts {
				obs := &parallelObserver{}
				src := core.RelationSource{Rel: bm.rel}
				start := time.Now()
				res, err := core.RunContext(context.Background(), algo, src, core.Options{Seed: seed, Workers: workers}, obs)
				wall := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("%s/%s workers=%d: %w", bm.rel.Name(), algo, workers, err)
				}
				if baseline == nil {
					baseline = res
					baseSeconds = wall.Seconds()
				} else if !reflect.DeepEqual(res.FDs, baseline.FDs) ||
					!reflect.DeepEqual(res.UCCs, baseline.UCCs) ||
					!reflect.DeepEqual(res.INDs, baseline.INDs) {
					return nil, fmt.Errorf("%s/%s workers=%d: results differ from workers=%d",
						bm.rel.Name(), algo, workers, workerCounts[0])
				}
				m := ParallelMeasurement{
					Dataset:       bm.rel.Name(),
					Algorithm:     algo,
					Workers:       workers,
					WallSeconds:   wall.Seconds(),
					Speedup:       baseSeconds / wall.Seconds(),
					Checks:        obs.checks,
					FDs:           len(res.FDs),
					UCCs:          len(res.UCCs),
					INDs:          len(res.INDs),
					CacheHits:     obs.stats.Hits,
					CacheMisses:   obs.stats.Misses,
					Intersections: obs.stats.Intersections,
				}
				out = append(out, m)
				fmt.Fprintf(w, "%-10s %-6s %8d %9.2fs %7.2fx %10d %12d %12d\n",
					m.Dataset, m.Algorithm, m.Workers, m.WallSeconds, m.Speedup,
					m.Checks, m.CacheHits, m.Intersections)
			}
		}
	}

	if jsonPath != "" {
		doc := parallelReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Measurements: out}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return out, nil
}
