package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"holistic/internal/pli"
	"holistic/internal/relation"
)

// PLIMeasurement is one (operation, rows) data point of the PLI
// intersection micro-benchmark, serialised into BENCH_pli.json. The
// pre-refactor baseline columns hold the numbers of the map-grouping
// [][]int32 implementation measured at the commit that introduced the flat
// layout, so the file documents the before/after of the representation
// change next to the current numbers.
type PLIMeasurement struct {
	Op          string  `json:"op"`
	Rows        int     `json:"rows"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	BaselineNsPerOp     float64 `json:"pre_refactor_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"pre_refactor_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup_vs_pre_refactor,omitempty"`
}

// pliReport is the top-level BENCH_pli.json document.
type pliReport struct {
	Note         string           `json:"note"`
	Measurements []PLIMeasurement `json:"measurements"`
}

// pliBaseline holds the pre-refactor reference numbers (ns/op, allocs/op)
// per (op, rows), measured with the per-cluster-allocation PLI and per-call
// map grouping on the benchmark machine immediately before the flat-layout
// refactor landed.
var pliBaseline = map[string]map[int][2]float64{
	"Intersect":       {10000: {1252475, 9761}, 100000: {7363150, 46015}},
	"IntersectColumn": {10000: {1160115, 9759}, 100000: {6098959, 46013}},
}

// pliBenchRelation mirrors the relation shape of the in-package PLI
// benchmarks: three columns, cardinality 100, fixed seed.
func pliBenchRelation(rows int) *relation.Relation {
	rnd := rand.New(rand.NewSource(1))
	names := []string{"c0", "c1", "c2"}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, len(names))
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(100))
		}
		data[i] = row
	}
	return relation.MustNew("plibench", names, data)
}

// PLIBench runs the PLI intersection micro-benchmarks (Intersect and
// IntersectColumn at 10k and 100k rows), prints a table, and writes the
// measurements to jsonPath as machine-readable JSON (empty path = no file).
// It is the `cmd/experiments -pli` entry point that regenerates
// BENCH_pli.json.
func PLIBench(w io.Writer, jsonPath string) ([]PLIMeasurement, error) {
	fmt.Fprintln(w, "PLI micro-benchmarks — flat-layout intersection (steady state, cached attribute vector)")
	fmt.Fprintf(w, "%-16s %8s %12s %12s %10s %9s\n", "op", "rows", "ns/op", "B/op", "allocs/op", "speedup")

	var out []PLIMeasurement
	for _, rows := range []int{10000, 100000} {
		rel := pliBenchRelation(rows)
		a := pli.FromColumn(rel.Column(0), rel.Cardinality(0))
		c := pli.FromColumn(rel.Column(1), rel.Cardinality(1))
		col, card := rel.Column(1), rel.Cardinality(1)

		runs := []struct {
			op string
			fn func(b *testing.B)
		}{
			{"Intersect", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if a.Intersect(c).NumRows() != rel.NumRows() {
						b.Fatal("bad result")
					}
				}
			}},
			{"IntersectColumn", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if a.IntersectColumn(col, card).NumRows() != rel.NumRows() {
						b.Fatal("bad result")
					}
				}
			}},
		}
		for _, run := range runs {
			r := testing.Benchmark(run.fn)
			m := PLIMeasurement{
				Op:          run.op,
				Rows:        rows,
				NsPerOp:     float64(r.NsPerOp()),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if base, ok := pliBaseline[run.op][rows]; ok && m.NsPerOp > 0 {
				m.BaselineNsPerOp = base[0]
				m.BaselineAllocsPerOp = int64(base[1])
				m.Speedup = base[0] / m.NsPerOp
			}
			out = append(out, m)
			fmt.Fprintf(w, "%-16s %8d %12.0f %12d %10d %8.1fx\n",
				m.Op, m.Rows, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.Speedup)
		}
	}

	if jsonPath != "" {
		doc := pliReport{
			Note: "flat-layout PLI vs the pre-refactor map-grouping implementation " +
				"(pre_refactor_* measured at the commit replacing it; same machine, same workload)",
			Measurements: out,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return out, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return out, fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return out, nil
}
