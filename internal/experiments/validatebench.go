package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/dataset"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/walker"
)

// ValidateMeasurement is one (operation, dataset) data point of the
// validation fast-path benchmark, serialised into BENCH_validate.json. Each
// row pits the non-materializing check path (early-exit fold kernels behind
// Provider.IsUnique / CheckFD / CheckFDs) against the materializing
// reference (Provider.Get + IsUnique / DistinctCount comparison) on the
// same workload, and carries the fast path's cache-admission counters so
// the file documents not just the speedup but why: checks answered without
// building a PLI versus intersections actually admitted.
type ValidateMeasurement struct {
	Op      string `json:"op"`
	Dataset string `json:"dataset"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`

	FastNsPerOp     float64 `json:"fast_ns_per_op"`
	FastBytesPerOp  int64   `json:"fast_bytes_per_op"`
	FastAllocsPerOp int64   `json:"fast_allocs_per_op"`

	MatNsPerOp     float64 `json:"materialize_ns_per_op,omitempty"`
	MatBytesPerOp  int64   `json:"materialize_bytes_per_op,omitempty"`
	MatAllocsPerOp int64   `json:"materialize_allocs_per_op,omitempty"`

	Speedup float64 `json:"speedup,omitempty"`

	// Cache-admission counters of one fast run of the workload on a fresh
	// provider. HitRate = FastChecks / (FastChecks + Materializations).
	FastChecks         int64   `json:"fast_checks,omitempty"`
	Materializations   int64   `json:"materializations,omitempty"`
	HitRate            float64 `json:"fast_check_hit_rate,omitempty"`
	SampledRefutations int64   `json:"sampled_refutations,omitempty"`
}

// validateReport is the top-level BENCH_validate.json document.
type validateReport struct {
	Note         string                `json:"note"`
	Measurements []ValidateMeasurement `json:"measurements"`
}

// abaloneShaped generates the abalone-shaped relation at the requested row
// count: the UCI abalone column layout (one low-cardinality categorical,
// seven near-continuous measurements, a small label) with the measurement
// cardinalities scaled proportionally so the per-column distinctness ratio
// of the 4177-row original is preserved at benchmark scale.
func abaloneShaped(rows int) *relation.Relation {
	scale := float64(rows) / 4177
	sc := func(card int) int {
		if scale <= 1 {
			return card
		}
		return int(float64(card) * scale)
	}
	return dataset.Generate(dataset.Spec{
		Name: fmt.Sprintf("abalone-%d", rows),
		Rows: rows,
		Seed: 104,
		Columns: []dataset.ColumnSpec{
			{Name: "sex", Kind: dataset.Zipf, Card: 3},
			{Name: "length", Kind: dataset.Random, Card: sc(134)},
			{Name: "diameter", Kind: dataset.Random, Card: sc(111)},
			{Name: "height", Kind: dataset.Random, Card: sc(51)},
			{Name: "whole_w", Kind: dataset.Random, Card: sc(2429)},
			{Name: "shucked_w", Kind: dataset.Random, Card: sc(1515)},
			{Name: "viscera_w", Kind: dataset.Random, Card: sc(880)},
			{Name: "shell_w", Kind: dataset.Random, Card: sc(926)},
			{Name: "rings", Kind: dataset.Random, Card: 28},
		},
	})
}

// duccWalk runs the DUCC-style random walk over the full column lattice
// with the given uniqueness predicate and returns the number of minimal
// unique column combinations found.
func duccWalk(rel *relation.Relation, seed int64, pred walker.Predicate) int {
	cols := make([]int, rel.NumColumns())
	for i := range cols {
		cols[i] = i
	}
	res := walker.Run(bitset.New(cols...), pred, walker.Options{Seed: seed})
	return len(res.MinimalTrue)
}

// taneCols caps the TANE verdict sweep's column count: 45 LHS pairs with up
// to 8 RHS candidates each is a realistic per-level batch.
const taneCols = 10

// taneSweepFast answers every level-2 FD candidate (pair LHS, every RHS)
// through the batched non-materializing path and returns the valid count.
func taneSweepFast(p *pli.Provider, cols int) int {
	colSet := make([]int, cols)
	for i := range colSet {
		colSet[i] = i
	}
	rhs := bitset.New(colSet...)
	found := 0
	for i := 0; i < cols; i++ {
		for j := i + 1; j < cols; j++ {
			found += p.CheckFDs(bitset.New(i, j), rhs).Len()
		}
	}
	return found
}

// taneSweepMat answers the same candidates the way the pre-fast-path TANE
// did: materialize π_lhs and π_lhs∪{a} and compare cluster counts (Lemma 1
// via |π_X| = |π_X∪{A}|).
func taneSweepMat(p *pli.Provider, cols int) int {
	found := 0
	for i := 0; i < cols; i++ {
		for j := i + 1; j < cols; j++ {
			lhs := bitset.New(i, j)
			lp := p.Get(lhs)
			for a := 0; a < cols; a++ {
				if lhs.Has(a) {
					found++ // trivial FD, counted valid by CheckFDs too
					continue
				}
				if lp.NumClusters() == p.Get(lhs.With(a)).NumClusters() {
					found++
				}
			}
		}
	}
	return found
}

// engineProvider builds a provider the way a sequential engine run does
// (core.Options.newProvider): a map cache under the production byte budget.
// Benchmarking against an unbudgeted cache would hide exactly the flooding
// behaviour the admission control exists to prevent.
func engineProvider(rel *relation.Relation) *pli.Provider {
	return pli.NewProviderWithCache(rel, pli.NewMapCacheBudget(0, pli.DefaultCacheBytes))
}

// ValidateBench benchmarks the validation fast path against the
// materializing reference on validation-dominated workloads — the DUCC
// uniqueness walk and a TANE per-level verdict sweep — over abalone- and
// ncvoter-shaped generators at the requested row count, plus the raw check
// kernel against the IntersectColumn chain it replaces. It prints a table
// and writes the measurements to jsonPath (empty path = no file). It is the
// `cmd/experiments -validate` entry point that regenerates
// BENCH_validate.json.
//
// Every timed iteration runs on a fresh provider, so the numbers include
// the first-visit planning and admission cost rather than a warmed cache.
func ValidateBench(w io.Writer, jsonPath string, rows int, seed int64) ([]ValidateMeasurement, error) {
	fmt.Fprintf(w, "Validation fast path — non-materializing checks vs Get-based validation (%d-row generators, fresh provider per run)\n", rows)
	fmt.Fprintf(w, "%-18s %-14s %12s %10s %12s %10s %8s %8s\n",
		"op", "dataset", "fast ns/op", "allocs", "mat ns/op", "allocs", "speedup", "hitrate")

	rels := []*relation.Relation{
		abaloneShaped(rows),
		dataset.NCVoter(rows, 12),
	}

	var out []ValidateMeasurement
	for _, rel := range rels {
		rel := rel
		cols := rel.NumColumns()
		if cols > taneCols {
			cols = taneCols
		}

		// Agreement guard: the fast and materializing paths must produce
		// identical verdicts before their timings mean anything.
		fastP := engineProvider(rel)
		matP := engineProvider(rel)
		wantUCCs := duccWalk(rel, seed, fastP.IsUnique)
		if got := duccWalk(rel, seed, func(s bitset.Set) bool { return matP.Get(s).IsUnique() }); got != wantUCCs {
			return out, fmt.Errorf("%s: fast walk found %d minimal UCCs, materializing walk %d", rel.Name(), wantUCCs, got)
		}
		wantFDs := taneSweepFast(engineProvider(rel), cols)
		if got := taneSweepMat(engineProvider(rel), cols); got != wantFDs {
			return out, fmt.Errorf("%s: fast sweep found %d valid FDs, materializing sweep %d", rel.Name(), wantFDs, got)
		}

		type variantPair struct {
			op       string
			fast     func(b *testing.B)
			mat      func(b *testing.B)
			fastOnce func() pli.CacheStats
		}
		pairs := []variantPair{
			{
				op: "ducc_walk",
				fast: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p := engineProvider(rel)
						if duccWalk(rel, seed, p.IsUnique) != wantUCCs {
							b.Fatal("bad result")
						}
					}
				},
				mat: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p := engineProvider(rel)
						pred := func(s bitset.Set) bool { return p.Get(s).IsUnique() }
						if duccWalk(rel, seed, pred) != wantUCCs {
							b.Fatal("bad result")
						}
					}
				},
				fastOnce: func() pli.CacheStats {
					p := engineProvider(rel)
					duccWalk(rel, seed, p.IsUnique)
					return p.CacheStats()
				},
			},
			{
				op: "ducc_walk_sampled",
				fast: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p := engineProvider(rel).WithSampleCheck(true)
						if duccWalk(rel, seed, p.IsUnique) != wantUCCs {
							b.Fatal("bad result")
						}
					}
				},
				mat: nil, // compared against the ducc_walk materializing row
				fastOnce: func() pli.CacheStats {
					p := engineProvider(rel).WithSampleCheck(true)
					duccWalk(rel, seed, p.IsUnique)
					return p.CacheStats()
				},
			},
			{
				// The holistic engine's actual validation workload (paper
				// Sec. 3): ONE provider is handed from the UCC phase to the
				// FD phase, so the walk's admissions become the sweep's
				// ancestors. This is the validation-dominated run the fast
				// path is built for.
				op: "holistic_phases",
				fast: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p := engineProvider(rel)
						if duccWalk(rel, seed, p.IsUnique) != wantUCCs {
							b.Fatal("bad result")
						}
						if taneSweepFast(p, cols) != wantFDs {
							b.Fatal("bad result")
						}
					}
				},
				mat: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p := engineProvider(rel)
						pred := func(s bitset.Set) bool { return p.Get(s).IsUnique() }
						if duccWalk(rel, seed, pred) != wantUCCs {
							b.Fatal("bad result")
						}
						if taneSweepMat(p, cols) != wantFDs {
							b.Fatal("bad result")
						}
					}
				},
				fastOnce: func() pli.CacheStats {
					p := engineProvider(rel)
					duccWalk(rel, seed, p.IsUnique)
					taneSweepFast(p, cols)
					return p.CacheStats()
				},
			},
			{
				op: "tane_verdicts",
				fast: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if taneSweepFast(engineProvider(rel), cols) != wantFDs {
							b.Fatal("bad result")
						}
					}
				},
				mat: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if taneSweepMat(engineProvider(rel), cols) != wantFDs {
							b.Fatal("bad result")
						}
					}
				},
				fastOnce: func() pli.CacheStats {
					p := engineProvider(rel)
					taneSweepFast(p, cols)
					return p.CacheStats()
				},
			},
		}

		// The raw kernel against the chain it replaces: refute/confirm one
		// FD under a two-column fold with no output PLI. Steady state on a
		// caller-owned scratch must be zero allocs/op.
		base := pli.FromColumn(rel.Column(0), rel.Cardinality(0))
		keys := [][]int32{rel.Column(1), rel.Column(2)}
		cards := []int{rel.Cardinality(1), rel.Cardinality(2)}
		rhs := rel.Column(3)
		sc := pli.NewScratch()
		pairs = append(pairs, variantPair{
			op: "check_refines_kernel",
			fast: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					base.CheckRefines(rhs, keys, cards, sc)
				}
			},
			mat: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					base.IntersectColumn(keys[0], cards[0]).
						IntersectColumn(keys[1], cards[1]).Refines(rhs)
				}
			},
		})

		var walkMat *ValidateMeasurement
		for _, pair := range pairs {
			fr := testing.Benchmark(pair.fast)
			m := ValidateMeasurement{
				Op:              pair.op,
				Dataset:         rel.Name(),
				Rows:            rel.NumRows(),
				Cols:            rel.NumColumns(),
				FastNsPerOp:     float64(fr.NsPerOp()),
				FastBytesPerOp:  fr.AllocedBytesPerOp(),
				FastAllocsPerOp: fr.AllocsPerOp(),
			}
			if pair.mat != nil {
				mr := testing.Benchmark(pair.mat)
				m.MatNsPerOp = float64(mr.NsPerOp())
				m.MatBytesPerOp = mr.AllocedBytesPerOp()
				m.MatAllocsPerOp = mr.AllocsPerOp()
			} else if walkMat != nil {
				m.MatNsPerOp = walkMat.MatNsPerOp
				m.MatBytesPerOp = walkMat.MatBytesPerOp
				m.MatAllocsPerOp = walkMat.MatAllocsPerOp
			}
			if m.MatNsPerOp > 0 && m.FastNsPerOp > 0 {
				m.Speedup = m.MatNsPerOp / m.FastNsPerOp
			}
			if pair.fastOnce != nil {
				st := pair.fastOnce()
				m.FastChecks = st.FastChecks
				m.Materializations = st.Materializations
				m.SampledRefutations = st.SampledRefutations
				if total := st.FastChecks + st.Materializations; total > 0 {
					m.HitRate = float64(st.FastChecks) / float64(total)
				}
			}
			if pair.op == "ducc_walk" {
				walkMat = &m
			}
			out = append(out, m)
			fmt.Fprintf(w, "%-18s %-14s %12.0f %10d %12.0f %10d %7.1fx %8.2f\n",
				m.Op, m.Dataset, m.FastNsPerOp, m.FastAllocsPerOp,
				m.MatNsPerOp, m.MatAllocsPerOp, m.Speedup, m.HitRate)
		}
	}

	if jsonPath != "" {
		doc := validateReport{
			Note: "validation fast path (early-exit check kernels, cache-admission control) vs the " +
				"materializing Get-based validation on the same workloads; fresh provider per timed " +
				"run, so numbers include first-visit planning and admission. ducc_walk_sampled reuses " +
				"the ducc_walk materializing baseline. holistic_phases is the engine-faithful " +
				"validation-dominated run: one provider carried from the DUCC random walk into the " +
				"TANE per-level FD sweep, so walk-time admissions serve as sweep-time ancestors. " +
				"hit rate = fast_checks / (fast_checks + materializations).",
			Measurements: out,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return out, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return out, fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return out, nil
}
