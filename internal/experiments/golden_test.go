package experiments

import (
	"testing"

	"holistic/internal/core"
	"holistic/internal/dataset"
	"holistic/internal/relation"
)

// The golden tests pin the dependency counts of the deterministic synthetic
// datasets. They protect the generators and the discovery pipeline against
// silent regressions: a change to either shows up as a count drift here
// before it distorts EXPERIMENTS.md.

func counts(t *testing.T, rel *relation.Relation) (inds, uccs, fds int) {
	t.Helper()
	res := core.Muds(rel, core.Options{Seed: 1})
	return len(res.INDs), len(res.UCCs), len(res.FDs)
}

func TestGoldenUniprot(t *testing.T) {
	inds, uccs, fds := counts(t, dataset.Uniprot(5000))
	if uccs == 0 || fds == 0 {
		t.Fatalf("unexpectedly empty: inds=%d uccs=%d fds=%d", inds, uccs, fds)
	}
	// The uniprot slice carries a moderate FD web (tens, not thousands) and
	// a small number of composite keys.
	if fds < 20 || fds > 400 {
		t.Errorf("uniprot FDs = %d, expected a moderate count", fds)
	}
	if uccs > 60 {
		t.Errorf("uniprot UCCs = %d, expected few keys", uccs)
	}
}

func TestGoldenIonosphere(t *testing.T) {
	_, uccs, fds := counts(t, dataset.Ionosphere(14, 351))
	// The crossed core admits exactly one pure-core key; derived signals
	// add a bounded number of mixed keys and large-lhs FDs.
	if uccs < 1 || uccs > 120 {
		t.Errorf("ionosphere UCCs = %d, expected a small key set", uccs)
	}
	if fds < 5 || fds > 800 {
		t.Errorf("ionosphere FDs = %d, expected a bounded count", fds)
	}
}

func TestGoldenBalanceChessNursery(t *testing.T) {
	for _, name := range []string{"balance", "chess", "nursery"} {
		rel, err := dataset.UCI(name)
		if err != nil {
			t.Fatal(err)
		}
		_, _, fds := counts(t, rel)
		if fds != 1 {
			t.Errorf("%s FDs = %d, want exactly 1 (fully crossed attributes)", name, fds)
		}
	}
}

func TestGoldenLetter(t *testing.T) {
	rel, err := dataset.UCI("letter")
	if err != nil {
		t.Fatal(err)
	}
	_, uccs, fds := counts(t, rel)
	// letter's shape target: few FDs with large left-hand sides, keys deep.
	if fds < 5 || fds > 100 {
		t.Errorf("letter FDs = %d, want a small count (paper: 61)", fds)
	}
	if uccs < 1 || uccs > 30 {
		t.Errorf("letter UCCs = %d, want very few deep keys", uccs)
	}
	res := core.Muds(rel, core.Options{Seed: 1})
	maxLHS := 0
	for _, f := range res.FDs {
		if f.LHS.Len() > maxLHS {
			maxLHS = f.LHS.Len()
		}
	}
	if maxLHS < 5 {
		t.Errorf("letter max lhs = %d, want large left-hand sides", maxLHS)
	}
}

func TestGoldenINDsNonTrivial(t *testing.T) {
	// The ionosphere generator's low-cardinality columns contain each other
	// value-wise, so the IND discovery has real work to do.
	rel := dataset.Ionosphere(12, 351)
	inds, _, _ := counts(t, rel)
	if inds == 0 {
		t.Error("expected some unary INDs on low-cardinality data")
	}
}
