// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6) on the synthetic stand-in datasets. Each experiment
// prints rows in the layout of the corresponding paper artifact and returns
// the measurements so tests and the benchmark harness can assert on shapes
// (who wins, by what factor) rather than absolute numbers.
package experiments

import (
	"fmt"
	"io"
	"time"

	"holistic/internal/core"
	"holistic/internal/dataset"
	"holistic/internal/relation"
)

// Measurement is one (dataset, strategy) timing.
type Measurement struct {
	Dataset  string
	Strategy string
	Duration time.Duration
	FDs      int
	UCCs     int
	INDs     int
}

func run(strategy string, rel *relation.Relation, seed int64) (Measurement, error) {
	src := core.RelationSource{Rel: rel}
	start := time.Now()
	res, err := core.Run(strategy, src, core.Options{Seed: seed})
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Dataset:  rel.Name(),
		Strategy: strategy,
		Duration: time.Since(start),
		FDs:      len(res.FDs),
		UCCs:     len(res.UCCs),
		INDs:     len(res.INDs),
	}, nil
}

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Fig6 reproduces Figure 6: row scalability on the uniprot-like dataset with
// 10 columns. rowSteps lists the row counts (the paper uses 50k..250k).
func Fig6(w io.Writer, rowSteps []int, seed int64) ([]Measurement, error) {
	fmt.Fprintln(w, "Figure 6 — scalability with the number of rows (uniprot, 10 columns)")
	fmt.Fprintf(w, "%10s %12s %12s %12s\n", "rows", "baseline", "HFUN", "MUDS")
	var out []Measurement
	for _, rows := range rowSteps {
		rel := dataset.Uniprot(rows)
		fmt.Fprintf(w, "%10d", rows)
		for _, strat := range []string{core.StrategyBaseline, core.StrategyHolisticFun, core.StrategyMuds} {
			m, err := run(strat, rel, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			fmt.Fprintf(w, " %12s", seconds(m.Duration))
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

// Fig7 reproduces Figure 7: column scalability on the ionosphere-like
// dataset (351 rows), printing execution times and discovered dependency
// counts per column count.
func Fig7(w io.Writer, colSteps []int, seed int64) ([]Measurement, error) {
	fmt.Fprintln(w, "Figure 7 — scalability with the number of columns (ionosphere, 351 rows)")
	fmt.Fprintf(w, "%8s %12s %12s %12s %8s %8s %8s\n", "columns", "MUDS", "HFUN", "baseline", "#INDs", "#FDs", "#UCCs")
	var out []Measurement
	for _, cols := range colSteps {
		rel := dataset.Ionosphere(cols, 351)
		var ms []Measurement
		for _, strat := range []string{core.StrategyMuds, core.StrategyHolisticFun, core.StrategyBaseline} {
			m, err := run(strat, rel, seed)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		out = append(out, ms...)
		fmt.Fprintf(w, "%8d %12s %12s %12s %8d %8d %8d\n",
			cols, seconds(ms[0].Duration), seconds(ms[1].Duration), seconds(ms[2].Duration),
			ms[0].INDs, ms[0].FDs, ms[0].UCCs)
	}
	return out, nil
}

// Table3 reproduces Table 3: runtime comparison of baseline, Holistic FUN,
// MUDS and TANE on the eleven UCI-like datasets. names selects a subset
// (nil = all).
func Table3(w io.Writer, names []string, seed int64) ([]Measurement, error) {
	fmt.Fprintln(w, "Table 3 — runtime comparison on the UCI-like datasets")
	fmt.Fprintf(w, "%-10s %5s %7s %6s(paper) %6s %10s %10s %10s %10s\n",
		"dataset", "cols", "rows", "FDs", "FDs", "baseline", "HFUN", "MUDS", "TANE")
	selected := dataset.UCITable()
	if names != nil {
		var filtered []dataset.UCIInfo
		for _, info := range selected {
			for _, n := range names {
				if info.Name == n {
					filtered = append(filtered, info)
				}
			}
		}
		selected = filtered
	}
	var out []Measurement
	for _, info := range selected {
		rel, err := dataset.UCI(info.Name)
		if err != nil {
			return nil, err
		}
		var ms []Measurement
		for _, strat := range []string{core.StrategyBaseline, core.StrategyHolisticFun, core.StrategyMuds, core.StrategyTane} {
			m, err := run(strat, rel, seed)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		out = append(out, ms...)
		fmt.Fprintf(w, "%-10s %5d %7d %6d %12d %10s %10s %10s %10s\n",
			info.Name, rel.NumColumns(), rel.NumRows(), info.PaperFDs, ms[2].FDs,
			seconds(ms[0].Duration), seconds(ms[1].Duration), seconds(ms[2].Duration), seconds(ms[3].Duration))
	}
	return out, nil
}

// Fig8 reproduces Figure 8: the per-phase runtime of MUDS on the
// ncvoter-like dataset (paper: 10,000 rows × 20 columns).
func Fig8(w io.Writer, rows, cols int, seed int64) (*core.Result, error) {
	rel := dataset.NCVoter(rows, cols)
	res := core.Muds(rel, core.Options{Seed: seed})
	fmt.Fprintf(w, "Figure 8 — runtime of MUDS' phases (ncvoter, %d rows × %d columns)\n", rel.NumRows(), rel.NumColumns())
	for _, p := range res.Phases {
		fmt.Fprintf(w, "  %-26s %10.3fs\n", p.Name, p.Duration.Seconds())
	}
	fmt.Fprintf(w, "  %-26s %10.3fs  (FDs=%d UCCs=%d INDs=%d)\n",
		"total", res.Total().Seconds(), len(res.FDs), len(res.UCCs), len(res.INDs))
	return res, nil
}

// SweepPoint is one configuration of the Sec. 6.5 property sweep.
type SweepPoint struct {
	Label string
	Rel   *relation.Relation
}

// PropertySweep builds datasets that toggle the three dataset properties of
// Sec. 6.5 (UCC lattice height, distance between UCCs and FDs, size of R\Z)
// and compares MUDS against Holistic FUN on each — the ablation behind the
// paper's "favorable dataset properties" discussion.
func PropertySweep(w io.Writer, seed int64) ([]Measurement, error) {
	points := []SweepPoint{
		{"low-level keys (card≈rows)", sweepRelation(1)},
		{"mid-level keys (card≈30)", sweepRelation(2)},
		{"high-level keys (card≈6)", sweepRelation(3)},
		{"large R\\Z (derived block)", sweepRelation(4)},
	}
	fmt.Fprintln(w, "Section 6.5 — dataset-property sweep (MUDS vs Holistic FUN vs FDs-first)")
	fmt.Fprintf(w, "%-30s %10s %10s %10s %8s %8s\n", "configuration", "MUDS", "HFUN", "FDs-first", "#FDs", "#UCCs")
	var out []Measurement
	for _, pt := range points {
		muds, err := run(core.StrategyMuds, pt.Rel, seed)
		if err != nil {
			return nil, err
		}
		hfun, err := run(core.StrategyHolisticFun, pt.Rel, seed)
		if err != nil {
			return nil, err
		}
		// The FDs-first alternative of Sec. 3.1: its extra cost over HFUN is
		// exactly the Lemma-2 UCC inference the paper rejects it for.
		fdfirst, err := run(core.StrategyFDFirst, pt.Rel, seed)
		if err != nil {
			return nil, err
		}
		muds.Dataset, hfun.Dataset, fdfirst.Dataset = pt.Label, pt.Label, pt.Label
		out = append(out, muds, hfun, fdfirst)
		fmt.Fprintf(w, "%-30s %10s %10s %10s %8d %8d\n",
			pt.Label, seconds(muds.Duration), seconds(hfun.Duration), seconds(fdfirst.Duration), muds.FDs, muds.UCCs)
	}
	return out, nil
}

// sweepRelation builds the parameterised relations of the property sweep.
func sweepRelation(variant int) *relation.Relation {
	const rows = 1000
	spec := dataset.Spec{Name: fmt.Sprintf("sweep%d", variant), Rows: rows, Seed: int64(variant)}
	switch variant {
	case 1: // keys on lattice level 1: a near-unique column
		spec.Columns = append(spec.Columns, dataset.ColumnSpec{Name: "k", Kind: dataset.ID})
		for c := 0; c < 9; c++ {
			spec.Columns = append(spec.Columns, dataset.ColumnSpec{Name: fmt.Sprintf("r%d", c), Kind: dataset.Random, Card: 8})
		}
	case 2: // keys around level 2-3
		for c := 0; c < 10; c++ {
			spec.Columns = append(spec.Columns, dataset.ColumnSpec{Name: fmt.Sprintf("r%d", c), Kind: dataset.Random, Card: 30})
		}
	case 3: // keys on high lattice levels
		for c := 0; c < 10; c++ {
			spec.Columns = append(spec.Columns, dataset.ColumnSpec{Name: fmt.Sprintf("r%d", c), Kind: dataset.Random, Card: 6})
		}
	case 4: // large R\Z: half the columns are derived (never in a key)
		for c := 0; c < 5; c++ {
			spec.Columns = append(spec.Columns, dataset.ColumnSpec{Name: fmt.Sprintf("r%d", c), Kind: dataset.Random, Card: 30})
		}
		for c := 0; c < 5; c++ {
			spec.Columns = append(spec.Columns, dataset.ColumnSpec{
				Name: fmt.Sprintf("d%d", c), Kind: dataset.Derived,
				Parents: []int{c % 5, (c + 1) % 5}, Card: 20, Salt: int64(60 + c),
			})
		}
	}
	return dataset.Generate(spec)
}
