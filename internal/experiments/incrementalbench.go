package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"holistic/internal/core"
	"holistic/internal/dataset"
	"holistic/internal/incremental"
	"holistic/internal/relation"
)

// IncrementalMeasurement is one dataset row of the incremental-profiling
// benchmark, serialised into BENCH_incremental.json. It pits one warm
// AppendBatch (delta-maintained relation, patched PLIs, revalidation-first
// discovery) against a from-scratch profile of the concatenated rows — the
// work the incremental layer avoids — with the check counts documenting why
// the delta path wins: revalidating the prior minimal metadata needs far
// fewer lattice probes than rediscovering it.
type IncrementalMeasurement struct {
	Dataset   string  `json:"dataset"`
	BaseRows  int     `json:"base_rows"`
	Cols      int     `json:"cols"`
	BatchRows int     `json:"batch_rows"`
	BatchPct  float64 `json:"batch_pct"`
	Batches   int     `json:"batches"`

	// InitialNs is the one-off warm-up cost: the initial full profile that
	// creates the incremental session (paid once, not per batch).
	InitialNs float64 `json:"initial_profile_ns"`
	// AppendNsPerBatch is the warm per-batch append cost (min over runs,
	// mean over the batches of a run).
	AppendNsPerBatch float64 `json:"append_ns_per_batch"`
	// ScratchNs is a full from-scratch profile of base+batches (min over
	// runs) — the cost of not having the incremental layer.
	ScratchNs float64 `json:"scratch_ns"`
	Speedup   float64 `json:"speedup"`

	AppendChecks  int `json:"append_checks"`
	ScratchChecks int `json:"scratch_checks"`
}

// incrementalReport is the top-level BENCH_incremental.json document.
type incrementalReport struct {
	Note         string                   `json:"note"`
	Measurements []IncrementalMeasurement `json:"measurements"`
}

// extractRows materialises a relation back into row-major string data.
func extractRows(rel *relation.Relation) [][]string {
	out := make([][]string, rel.NumRows())
	for i := range out {
		row := make([]string, rel.NumColumns())
		for c := range row {
			row[c] = rel.Value(i, c)
		}
		out[i] = row
	}
	return out
}

// incrementalRuns is how often each timed path repeats; the minimum is
// reported, as in the standard benchmark framework.
const incrementalRuns = 3

// IncrementalBench benchmarks the incremental profiling layer against
// from-scratch recomputation: a ≥100k-row base is profiled once, then small
// appended batches (0.5% of the base each) are folded in with AppendBatch,
// and each warm append is compared against a full MUDS profile of the
// concatenated rows. It prints a table and writes the measurements to
// jsonPath (empty path = no file). It is the `cmd/experiments -incremental`
// entry point that regenerates BENCH_incremental.json.
func IncrementalBench(w io.Writer, jsonPath string, rows int, seed int64) ([]IncrementalMeasurement, error) {
	fmt.Fprintf(w, "Incremental profiling — warm batch append vs from-scratch profile (%d-row bases, %d runs, min reported)\n", rows, incrementalRuns)
	fmt.Fprintf(w, "%-14s %10s %8s %9s %14s %14s %8s %10s %10s\n",
		"dataset", "base", "batch", "batches", "append ns", "scratch ns", "speedup", "apd checks", "scr checks")

	ctx := context.Background()
	opts := core.Options{Seed: seed}
	const nBatches = 2

	var out []IncrementalMeasurement
	for _, full := range []*relation.Relation{
		dataset.Uniprot(rows),
		dataset.NCVoter(rows, 12),
	} {
		all := extractRows(full)
		names := full.ColumnNames()
		batchSize := len(all) / 200 // 0.5% of the profiled data per batch
		if batchSize < 1 {
			batchSize = 1
		}
		base := len(all) - nBatches*batchSize
		batches := make([][][]string, nBatches)
		for i := range batches {
			batches[i] = all[base+i*batchSize : base+(i+1)*batchSize]
		}

		// Reference result and from-scratch timing on the concatenated rows.
		// One warm-up run first, so lazily built relation-level state (sorted
		// value lists for SPIDER) is paid on both paths alike.
		want, err := core.RunRelationContext(ctx, core.StrategyMuds, full, opts, nil)
		if err != nil {
			return out, err
		}
		scratchNs := 0.0
		for r := 0; r < incrementalRuns; r++ {
			start := time.Now()
			res, err := core.RunRelationContext(ctx, core.StrategyMuds, full, opts, nil)
			if err != nil {
				return out, err
			}
			if ns := float64(time.Since(start)); r == 0 || ns < scratchNs {
				scratchNs = ns
			}
			if res.Checks != want.Checks {
				want = res // checks are seed-stable; keep the latest for the report
			}
		}

		// Incremental path: fresh base relation and warm profiler per run
		// (untimed), then every batch append timed.
		m := IncrementalMeasurement{
			Dataset:   full.Name(),
			BaseRows:  base,
			Cols:      full.NumColumns(),
			BatchRows: batchSize,
			BatchPct:  100 * float64(batchSize) / float64(base),
			Batches:   nBatches,
			ScratchNs: scratchNs,
		}
		for r := 0; r < incrementalRuns; r++ {
			baseRel, err := relation.New(full.Name(), names, all[:base])
			if err != nil {
				return out, err
			}
			initStart := time.Now()
			p, _, err := incremental.NewProfiler(ctx, baseRel, core.StrategyMuds, opts, nil)
			if err != nil {
				return out, err
			}
			initialNs := float64(time.Since(initStart))
			appendNs, appendChecks := 0.0, 0
			var res *core.Result
			for _, batch := range batches {
				start := time.Now()
				if res, err = p.AppendBatch(ctx, batch, nil); err != nil {
					return out, err
				}
				appendNs += float64(time.Since(start))
				appendChecks += res.Checks
			}
			// Agreement guard: the warm result must equal the from-scratch
			// profile of the concatenated rows before the timings mean
			// anything.
			if !reflect.DeepEqual(res.INDs, want.INDs) || !reflect.DeepEqual(res.UCCs, want.UCCs) || !reflect.DeepEqual(res.FDs, want.FDs) {
				return out, fmt.Errorf("%s: incremental result diverged from the from-scratch profile", full.Name())
			}
			perBatch := appendNs / nBatches
			if r == 0 || perBatch < m.AppendNsPerBatch {
				m.AppendNsPerBatch = perBatch
				m.AppendChecks = appendChecks / nBatches
			}
			if r == 0 || initialNs < m.InitialNs {
				m.InitialNs = initialNs
			}
		}
		m.ScratchChecks = want.Checks
		if m.AppendNsPerBatch > 0 {
			m.Speedup = m.ScratchNs / m.AppendNsPerBatch
		}
		out = append(out, m)
		fmt.Fprintf(w, "%-14s %10d %8d %9d %14.0f %14.0f %7.1fx %10d %10d\n",
			m.Dataset, m.BaseRows, m.BatchRows, m.Batches,
			m.AppendNsPerBatch, m.ScratchNs, m.Speedup, m.AppendChecks, m.ScratchChecks)
	}

	if jsonPath != "" {
		doc := incrementalReport{
			Note: "incremental profiling (delta-maintained relation/PLIs, missing-matrix IND deltas, " +
				"revalidation-first UCC/FD discovery) vs a from-scratch MUDS profile of the same " +
				"concatenated rows. append_ns_per_batch is one warm AppendBatch of a 0.5%-of-base " +
				"batch (min over runs, mean over batches); scratch_ns is the full re-profile the " +
				"incremental layer replaces; initial_profile_ns is the one-off session warm-up. " +
				"Every run is guarded by an exact result-equality check against the from-scratch " +
				"profile. Check counts show the mechanism: revalidating prior minimal metadata " +
				"probes the lattice far less than rediscovering it.",
			Measurements: out,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return out, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return out, fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return out, nil
}
