package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"holistic/internal/faults"
)

func openForTest(t *testing.T, path string) (*WAL, *Replay) {
	t.Helper()
	w, replay, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	t.Cleanup(func() { w.Close() })
	return w, replay
}

func appendAll(t *testing.T, w *WAL, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := w.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, replay := openForTest(t, path)
	if len(replay.Records) != 0 || replay.Truncated() {
		t.Fatalf("fresh log replayed %d records, truncated=%v", len(replay.Records), replay.Truncated())
	}
	appendAll(t, w, "alpha", "beta", `{"type":"end","job":"j-1"}`)
	if got := w.Records(); got != 3 {
		t.Fatalf("Records() = %d, want 3", got)
	}
	w.Close()

	// Reopen: all records replay in order, and appending continues.
	w2, replay2 := openForTest(t, path)
	want := []string{"alpha", "beta", `{"type":"end","job":"j-1"}`}
	if len(replay2.Records) != len(want) {
		t.Fatalf("reopen replayed %d records, want %d", len(replay2.Records), len(want))
	}
	for i, p := range replay2.Records {
		if string(p) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, p, want[i])
		}
	}
	if replay2.Truncated() {
		t.Fatalf("clean log reported a torn tail")
	}
	appendAll(t, w2, "gamma")
	w2.Close()
	_, replay3 := openForTest(t, path)
	if len(replay3.Records) != 4 || string(replay3.Records[3]) != "gamma" {
		t.Fatalf("after reopen+append, replay = %d records (last %q)", len(replay3.Records), replay3.Records[len(replay3.Records)-1])
	}
}

// TestWALTornTailSweep truncates a three-record log at every byte offset
// inside the last record and asserts recovery keeps exactly the records
// before the tear, drops the tail, and leaves an appendable log.
func TestWALTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	w, _ := openForTest(t, ref)
	appendAll(t, w, "first-record", "second-record", "third-record")
	w.Close()
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets: frame = 8-byte header + payload.
	rec3Start := 2*frameHeaderBytes + len("first-record") + len("second-record")
	for cut := rec3Start; cut < len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, replay := openForTest(t, path)
		if len(replay.Records) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(replay.Records))
		}
		if cut > rec3Start && !replay.Truncated() {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		// The log must be usable after truncation.
		appendAll(t, w, "post-tear")
		w.Close()
		_, replay2 := openForTest(t, path)
		if len(replay2.Records) != 3 || string(replay2.Records[2]) != "post-tear" {
			t.Fatalf("cut at %d: post-tear replay has %d records", cut, len(replay2.Records))
		}
	}
}

// TestWALTornTailGarbage models a crash that extended the file with garbage
// past the last record (metadata landed, data didn't): the garbage tail is
// dropped, the real records survive.
func TestWALTornTailGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.wal")
	w, _ := openForTest(t, path)
	appendAll(t, w, "kept")
	w.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// An implausible length prefix (0xffffffff...) that runs past EOF.
	if _, err := f.Write(bytes.Repeat([]byte{0xff}, 13)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, replay := openForTest(t, path)
	if len(replay.Records) != 1 || string(replay.Records[0]) != "kept" {
		t.Fatalf("replay = %v", replay.Records)
	}
	if replay.TruncatedBytes != 13 {
		t.Fatalf("TruncatedBytes = %d, want 13", replay.TruncatedBytes)
	}
}

// TestWALMidFileCorruption flips a payload byte of the first record: with
// complete frames after it, Open must refuse with ErrCorrupt instead of
// silently truncating two good records away.
func TestWALMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	w, _ := openForTest(t, path)
	appendAll(t, w, "first-record", "second-record")
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderBytes] ^= 0xff // first payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenWAL(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenWAL on mid-file corruption: err = %v, want ErrCorrupt", err)
	}
	// Same flip on the LAST record is a torn tail, not corruption.
	data[frameHeaderBytes] ^= 0xff // restore record 1
	data[2*frameHeaderBytes+len("first-record")+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, replay := openForTest(t, path)
	if len(replay.Records) != 1 || !replay.Truncated() {
		t.Fatalf("tail corruption: %d records, truncated=%v", len(replay.Records), replay.Truncated())
	}
	w2.Close()
}

func TestWALAppendFaultLeavesNoPartialFrame(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "fault.wal")
	w, _ := openForTest(t, path)
	appendAll(t, w, "before")
	faults.Enable(faults.WALAppend, faults.ModeError, 1)
	if err := w.Append([]byte("dropped")); err == nil || !faults.IsInjected(err) {
		t.Fatalf("Append under wal.append fault: err = %v, want injected", err)
	}
	appendAll(t, w, "after")
	w.Close()
	_, replay := openForTest(t, path)
	got := make([]string, len(replay.Records))
	for i, p := range replay.Records {
		got[i] = string(p)
	}
	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("replay after injected append failure = %v", got)
	}
	if replay.Truncated() {
		t.Fatalf("injected append failure left a torn tail")
	}
}

func TestWALFsyncFaultReportsError(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "fsync.wal")
	w, _ := openForTest(t, path)
	faults.Enable(faults.WALFsync, faults.ModeTransient, 1)
	err := w.Append([]byte("unsynced"))
	if err == nil || !faults.IsTransient(err) {
		t.Fatalf("Append under wal.fsync fault: err = %v, want transient", err)
	}
	if !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("fsync fault error %q does not name fsync", err)
	}
}

func TestWALConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.wal")
	w, _ := openForTest(t, path)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	w.Close()
	_, replay := openForTest(t, path)
	if len(replay.Records) != 160 {
		t.Fatalf("replayed %d records, want 160", len(replay.Records))
	}
}

func TestWALAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	w, _ := openForTest(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("late")); err == nil {
		t.Fatalf("Append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
