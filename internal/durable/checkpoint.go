package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Checkpoint file layout: an 8-byte magic, a little-endian uint32 CRC32C of
// the payload, then the payload. The magic rejects foreign files before the
// checksum does; the checksum rejects bit rot and torn writes that slipped
// past the atomic rename (e.g. a corrupted sector).
const checkpointMagic = "HDPCKPT1"

// WriteCheckpoint atomically replaces the checkpoint at path with payload:
// temp file in the same directory, fsync, rename (the checkpoint.rename
// fault point fires between the two). Readers see the old checkpoint or the
// new one, never a mixture, and a failed write leaves no temp file behind.
func WriteCheckpoint(path string, payload []byte) error {
	return AtomicWriteFile(path, func(f *os.File) error {
		var header [len(checkpointMagic) + 4]byte
		copy(header[:], checkpointMagic)
		binary.LittleEndian.PutUint32(header[len(checkpointMagic):], crc32.Checksum(payload, castagnoli))
		if _, err := f.Write(header[:]); err != nil {
			return err
		}
		_, err := f.Write(payload)
		return err
	})
}

// ReadCheckpoint reads and verifies the checkpoint at path, returning its
// payload. A missing file surfaces as an os.IsNotExist error; a damaged one
// as an error wrapping ErrCorrupt.
func ReadCheckpoint(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	headerLen := len(checkpointMagic) + 4
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: checkpoint %s is %d bytes, shorter than its header", ErrCorrupt, path, len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: checkpoint %s has no magic header", ErrCorrupt, path)
	}
	want := binary.LittleEndian.Uint32(data[len(checkpointMagic):headerLen])
	payload := data[headerLen:]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: checkpoint %s failed its checksum", ErrCorrupt, path)
	}
	return payload, nil
}
