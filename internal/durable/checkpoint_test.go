package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holistic/internal/faults"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.ckpt")
	payload := []byte(`{"version":3,"snapshot":{}}`)
	if err := WriteCheckpoint(path, payload); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// Overwrite is atomic and replaces the content.
	if err := WriteCheckpoint(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadCheckpoint(path); string(got) != "v2" {
		t.Fatalf("after overwrite payload = %q", got)
	}
	leftovers(t, filepath.Dir(path))
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.ckpt")
	if err := WriteCheckpoint(path, []byte(`{"version":1}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"flipped payload byte": func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[len(d)-2] ^= 0xff
			return d
		},
		"truncated":  func(d []byte) []byte { return d[:len(d)-3] },
		"no magic":   func(d []byte) []byte { return append([]byte("XXXXXXXX"), d[8:]...) },
		"empty file": func(d []byte) []byte { return nil },
	} {
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestCheckpointMissingIsNotExist(t *testing.T) {
	_, err := ReadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !os.IsNotExist(err) {
		t.Fatalf("err = %v, want IsNotExist", err)
	}
}

// TestCheckpointRenameFault proves the atomicity contract under an injected
// rename failure: the previous checkpoint is untouched and no temp file
// leaks.
func TestCheckpointRenameFault(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.ckpt")
	if err := WriteCheckpoint(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.CheckpointRename, faults.ModeError, 1)
	err := WriteCheckpoint(path, []byte("new"))
	if err == nil || !faults.IsInjected(err) {
		t.Fatalf("WriteCheckpoint under rename fault: err = %v, want injected", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("after failed rename: payload %q err %v, want old intact", got, err)
	}
	leftovers(t, dir)
}

// leftovers fails the test if the directory holds any *.tmp-* residue.
func leftovers(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
