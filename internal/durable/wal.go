// Package durable is the crash-safety substrate of the profiling service: a
// write-ahead log of length-prefixed, CRC32C-checksummed, fsync'd records,
// plus atomic checkpoint files written with the temp-file+fsync+rename
// pattern. Together they let the server journal every state transition cheap
// enough to fsync per record and compact accumulated state into checkpoints
// that are either the old file or the new one, never a torn mixture.
//
// The WAL's recovery contract distinguishes the two ways a log can be bad:
//
//   - A torn tail — the last record is incomplete or fails its checksum and
//     nothing follows it — is the expected residue of a crash mid-append.
//     Open truncates the log at the first bad record and reports how many
//     bytes it dropped; everything before the tear replays normally.
//   - Mid-file corruption — a record fails its checksum but complete frames
//     follow it — cannot come from a torn write. Open refuses to replay past
//     it and returns ErrCorrupt: silently skipping records would resurrect a
//     state the log never held.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"holistic/internal/faults"
)

// Record frame layout: a fixed 8-byte header — payload length then CRC32C
// (Castagnoli) of the payload, both little-endian uint32 — followed by the
// payload bytes.
const frameHeaderBytes = 8

// MaxRecordBytes bounds a single WAL record's payload. A length prefix above
// it can only be garbage (a torn or corrupted header), never a real record.
const MaxRecordBytes = 64 << 20

// castagnoli is the CRC32C table shared by WAL records, checkpoints and
// snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports mid-file corruption: a record failed its checksum with
// complete frames after it, which a torn write cannot produce.
var ErrCorrupt = errors.New("durable: corrupt record before end of log")

// Replay is what OpenWAL found in an existing log.
type Replay struct {
	// Records holds the payloads of every valid record, in append order.
	Records [][]byte
	// TruncatedBytes is the size of the torn tail dropped from the log
	// (0 when the log ended cleanly).
	TruncatedBytes int64
}

// Truncated reports whether a torn tail was dropped during open.
func (r *Replay) Truncated() bool { return r.TruncatedBytes > 0 }

// WAL is an append-only write-ahead log. Append is safe for concurrent use;
// a WAL assumes it is the only writer of its file.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	closed  bool
	records int64
}

// OpenWAL opens (creating if necessary) the log at path, replays its
// records, truncates a torn tail, and positions the log for appending.
// Mid-file corruption fails the open with an error wrapping ErrCorrupt.
func OpenWAL(path string) (*WAL, *Replay, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}

	replay := &Replay{}
	off := 0
	for {
		payload, next, err := nextRecord(data, off)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if next < 0 { // torn tail (or clean EOF when off == len(data))
			break
		}
		replay.Records = append(replay.Records, payload)
		off = next
	}
	if off < len(data) {
		replay.TruncatedBytes = int64(len(data) - off)
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, records: int64(len(replay.Records))}
	return w, replay, nil
}

// nextRecord decodes the record starting at off. It returns the payload and
// the offset of the following record, next == -1 for a clean EOF or a torn
// tail (the caller truncates at off), and an error for mid-file corruption.
func nextRecord(data []byte, off int) (payload []byte, next int, err error) {
	rem := len(data) - off
	if rem < frameHeaderBytes {
		return nil, -1, nil // clean EOF (rem == 0) or torn header
	}
	length := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if length > MaxRecordBytes {
		// A garbage length field. If the claimed frame runs past EOF this is
		// indistinguishable from a torn header; otherwise the file holds
		// bytes no sane writer produced.
		if int64(length) > int64(rem-frameHeaderBytes) {
			return nil, -1, nil
		}
		return nil, 0, fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorrupt, length, off)
	}
	end := off + frameHeaderBytes + int(length)
	if end > len(data) {
		return nil, -1, nil // torn payload
	}
	payload = data[off+frameHeaderBytes : end]
	if crc32.Checksum(payload, castagnoli) != crc {
		if end == len(data) {
			// The frame is the last thing in the file: a crash can extend a
			// file with garbage or zero blocks before the payload write
			// lands, so a tail checksum failure is a torn write.
			return nil, -1, nil
		}
		return nil, 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
	}
	return append([]byte(nil), payload...), end, nil
}

// Append frames payload, writes it in a single call, and fsyncs. An error
// means the record must be treated as not accepted: either nothing was
// written (write failure, injected wal.append fault) or its durability is
// unknown (fsync failure) — in both cases the safe reading is "not durable".
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderBytes:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: append to closed wal %s", w.path)
	}
	if err := faults.Inject(faults.WALAppend); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if err := faults.Inject(faults.WALFsync); err != nil {
		return fmt.Errorf("wal fsync: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal fsync: %w", err)
	}
	w.records++
	return nil
}

// Records returns how many records the log holds (replayed plus appended).
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Close closes the log file. Appends after Close fail; Close is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed entry survives
// a crash. Best-effort on filesystems that reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// AtomicWriteFile writes a file via a temp file in the same directory,
// fsyncs it, and renames it over path, so readers only ever observe the old
// content or the complete new content. The write callback receives the open
// temp file; on any failure the temp file is removed.
func AtomicWriteFile(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := faults.Inject(faults.CheckpointRename); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("rename %s: %w", path, err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	syncDir(dir)
	return nil
}
