package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"holistic/internal/dataset"
	"holistic/internal/pli"
)

// eventObserver records every engine event for cross-checking against the
// Result the recorder assembles from the same stream.
type eventObserver struct {
	NopObserver
	started []string
	ended   []string
	checks  int
	stats   []pli.CacheStats
}

func (o *eventObserver) PhaseStart(name string)                { o.started = append(o.started, name) }
func (o *eventObserver) PhaseEnd(name string, _ time.Duration) { o.ended = append(o.ended, name) }
func (o *eventObserver) Checks(delta int)                      { o.checks += delta }
func (o *eventObserver) CacheStats(s pli.CacheStats)           { o.stats = append(o.stats, s) }

func TestRegistryListsAllStrategies(t *testing.T) {
	want := []string{StrategyMuds, StrategyHolisticFun, StrategyBaseline, StrategyTane, StrategyFDFirst}
	if got := Strategies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Strategies() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestUnknownStrategyErrorNamesChoices(t *testing.T) {
	_, err := Run("typo", RelationSource{Rel: mustRel(t, []string{"A"}, [][]string{{"1"}})}, Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, name := range Strategies() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention strategy %q", err, name)
		}
	}
}

// TestObserverCountersAgree runs every strategy with an observer and checks
// that the event stream is consistent with the Result built from it: starts
// and ends pair up, the check deltas sum to Result.Checks, and each strategy
// that touches PLIs reports at least one cache snapshot with real traffic.
func TestObserverCountersAgree(t *testing.T) {
	rel := dataset.NCVoter(300, 8)
	src := RelationSource{Rel: rel}
	for _, strategy := range Strategies() {
		obs := &eventObserver{}
		res, err := RunContext(context.Background(), strategy, src, Options{Seed: 7}, obs)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if !reflect.DeepEqual(obs.started, obs.ended) {
			t.Errorf("%s: phase starts %v != ends %v", strategy, obs.started, obs.ended)
		}
		if obs.checks != res.Checks {
			t.Errorf("%s: observer checks %d != Result.Checks %d", strategy, obs.checks, res.Checks)
		}
		if len(obs.stats) == 0 {
			t.Errorf("%s: no cache snapshot reported", strategy)
		}
		for _, s := range obs.stats {
			// PLI traffic is either chained intersections (materializing
			// path) or fast checks (validation fast path) — a snapshot with
			// neither means the plumbing lost the counters.
			if s.Hits+s.Misses == 0 || s.Intersections+s.FastChecks == 0 {
				t.Errorf("%s: implausible cache snapshot %+v", strategy, s)
			}
		}
		// The recorder merges repeated phases; every merged entry must have
		// appeared in the event stream, starting with the load phase.
		seen := map[string]bool{}
		for _, name := range obs.ended {
			seen[name] = true
		}
		for _, p := range res.Phases {
			if !seen[p.Name] {
				t.Errorf("%s: result phase %q missing from event stream", strategy, p.Name)
			}
		}
		if len(res.Phases) == 0 || res.Phases[0].Name != PhaseLoad {
			t.Errorf("%s: first phase = %v, want %q", strategy, res.Phases, PhaseLoad)
		}
	}
}

// TestBackgroundContextMatchesPlainRun verifies that the context plumbing is
// free when unused: a background-context engine run returns exactly the
// results of the plain wrappers.
func TestBackgroundContextMatchesPlainRun(t *testing.T) {
	rel := dataset.NCVoter(300, 8)
	src := RelationSource{Rel: rel}
	for _, strategy := range Strategies() {
		plain, err := Run(strategy, src, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := RunContext(context.Background(), strategy, src, Options{Seed: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.FDs, ctxed.FDs) || !reflect.DeepEqual(plain.UCCs, ctxed.UCCs) ||
			!reflect.DeepEqual(plain.INDs, ctxed.INDs) || plain.Checks != ctxed.Checks {
			t.Errorf("%s: background-context run differs from plain run", strategy)
		}
	}
	plain := Muds(rel, Options{Seed: 3})
	ctxed, err := MudsContext(context.Background(), rel, Options{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.FDs, ctxed.FDs) || !reflect.DeepEqual(plain.UCCs, ctxed.UCCs) {
		t.Error("MudsContext(background) differs from Muds")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rel := mustRel(t, []string{"A", "B"}, [][]string{{"1", "2"}, {"3", "4"}})
	for _, strategy := range Strategies() {
		_, err := RunContext(ctx, strategy, RelationSource{Rel: rel}, Options{}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", strategy, err)
		}
	}
}

// TestRunContextDeadline cancels MUDS mid-run on a relation that takes ~10s
// uncancelled and requires the partial result within well under 2s of the
// deadline, carrying whatever phase timings had accumulated.
func TestRunContextDeadline(t *testing.T) {
	rel := dataset.NCVoter(2000, 18)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunRelationContext(ctx, StrategyMuds, rel, Options{Seed: 1}, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", elapsed)
	}
	if res == nil || len(res.Phases) == 0 {
		t.Fatal("cancelled run must return partial phase timings")
	}
}

// TestMudsContextDeadlineInFDPhases gives MUDS enough time to finish SPIDER
// and DUCC so the deadline lands in the FD phases, exercising the
// cancellation polls of the connector minimisation, the R\Z walks, the
// shadowed fixpoint and the completion sweep.
func TestMudsContextDeadlineInFDPhases(t *testing.T) {
	rel := dataset.NCVoter(2000, 18)
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := MudsContext(ctx, rel, Options{Seed: 1}, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", elapsed)
	}
	if res == nil {
		t.Fatal("cancelled run must return the partial result")
	}
}
