package core

import (
	"time"

	"holistic/internal/pli"
)

// Event types emitted by EventObserver, one per Observer callback.
const (
	EventPhaseStart  = "phase_start"
	EventPhaseEnd    = "phase_end"
	EventChecks      = "checks"
	EventCacheStats  = "cache_stats"
	EventParallelism = "parallelism"
)

// Event is the serializable form of one Observer callback. Type selects
// which of the remaining fields carry the payload, so a stream of Events
// marshals to compact JSON lines suitable for live progress transports (the
// profiling server streams them per job).
type Event struct {
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Phase names the phase of a phase_start/phase_end/parallelism event.
	Phase string `json:"phase,omitempty"`
	// Seconds is the phase wall time of a phase_end event.
	Seconds float64 `json:"seconds,omitempty"`
	// Checks is the validity-check delta of a checks event.
	Checks int `json:"checks,omitempty"`
	// Workers is the pool width of a parallelism event.
	Workers int `json:"workers,omitempty"`
	// Cache is the provider snapshot of a cache_stats event.
	Cache *pli.CacheStats `json:"cache,omitempty"`
}

// EventObserver adapts the Observer callback surface into a stream of
// serializable Events: every callback is converted to one Event and handed
// to Sink on the profiling goroutine. Sink must be non-nil and cheap; if it
// needs to fan out to slow consumers it should buffer, not block.
type EventObserver struct {
	Sink func(Event)
}

// PhaseStart implements Observer.
func (o EventObserver) PhaseStart(name string) {
	o.Sink(Event{Type: EventPhaseStart, Phase: name})
}

// PhaseEnd implements Observer.
func (o EventObserver) PhaseEnd(name string, d time.Duration) {
	o.Sink(Event{Type: EventPhaseEnd, Phase: name, Seconds: d.Seconds()})
}

// Checks implements Observer.
func (o EventObserver) Checks(delta int) {
	o.Sink(Event{Type: EventChecks, Checks: delta})
}

// CacheStats implements Observer.
func (o EventObserver) CacheStats(stats pli.CacheStats) {
	o.Sink(Event{Type: EventCacheStats, Cache: &stats})
}

// Parallelism implements Observer.
func (o EventObserver) Parallelism(phase string, workers int) {
	o.Sink(Event{Type: EventParallelism, Phase: phase, Workers: workers})
}
