package core

import (
	"reflect"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/pli"
	"holistic/internal/relation"
)

func testFD(t *testing.T) *mudsFD {
	t.Helper()
	rel := relation.MustNew("t", []string{"A", "B", "C", "D"}, [][]string{
		{"1", "x", "p", "q"},
		{"2", "x", "p", "r"},
		{"3", "y", "q", "q"},
	})
	p := pli.NewProvider(rel, 0)
	return newMudsFD(p, rel.AllColumns(), []bitset.Set{bitset.New(0)}, fd.NewStore(), 1)
}

func TestEmitDeduplicates(t *testing.T) {
	m := testFD(t)
	m.emit(bitset.FromLetters("B"), 2)
	m.emit(bitset.FromLetters("B"), 2) // duplicate ignored
	if m.store.Count() != 1 {
		t.Errorf("Count = %d, want 1", m.store.Count())
	}
	// A late smaller lhs replaces the stored superset.
	m.emit(bitset.FromLetters("BC"), 3)
	m.emit(bitset.FromLetters("C"), 3)
	if m.store.RHS(bitset.FromLetters("BC")).Has(3) {
		t.Error("superseded FD should be removed from the store")
	}
	if !m.store.RHS(bitset.FromLetters("C")).Has(3) {
		t.Error("replacement FD missing")
	}
	// A superset arriving after the subset is ignored entirely.
	m.emit(bitset.FromLetters("CD"), 1)
	countBefore := m.store.Count()
	m.emit(bitset.FromLetters("BCD"), 1)
	if m.store.Count() != countBefore {
		t.Error("non-minimal late emission should be ignored")
	}
}

func TestKnownValidAndInvalid(t *testing.T) {
	m := testFD(t)
	m.emit(bitset.FromLetters("B"), 2)
	if !m.knownValid(bitset.FromLetters("AB"), 2) {
		t.Error("AB ⊇ B should be known valid for rhs C")
	}
	if m.knownValid(bitset.FromLetters("A"), 2) {
		t.Error("A is not known valid")
	}
	// Record a failure and verify downward pruning (Lemma 4).
	m.falseFamily(3).Add(bitset.FromLetters("BC"))
	if !m.knownInvalid(bitset.FromLetters("B"), 3) {
		t.Error("B ⊆ BC should be known invalid for rhs D")
	}
	if m.knownInvalid(bitset.FromLetters("AB"), 3) {
		t.Error("AB ⊄ BC must not be known invalid")
	}
}

func TestResolveFDRecordsFailures(t *testing.T) {
	m := testFD(t)
	// B → C holds on the fixture; B → A does not.
	if !m.resolveFD(bitset.FromLetters("B"), 2) {
		t.Error("B → C should hold")
	}
	if m.resolveFD(bitset.FromLetters("B"), 0) {
		t.Error("B → A should not hold")
	}
	if !m.knownInvalid(bitset.FromLetters("B"), 0) {
		t.Error("failure should be recorded as a certificate")
	}
	checksBefore := m.checks
	if m.resolveFD(bitset.FromLetters("B"), 0) {
		t.Error("cached failure changed value")
	}
	if m.checks != checksBefore {
		t.Error("cached failure should not re-touch PLIs")
	}
	// Trivial FDs resolve without work.
	if !m.resolveFD(bitset.FromLetters("AB"), 0) {
		t.Error("trivial FD must hold")
	}
}

func TestCheckFDsMixedShortcuts(t *testing.T) {
	m := testFD(t)
	m.emit(bitset.FromLetters("B"), 2)            // known valid: B → C
	m.falseFamily(0).Add(bitset.FromLetters("B")) // known invalid: B → A
	got := m.checkFDs(bitset.FromLetters("B"), bitset.FromLetters("ABCD"))
	// B → B trivial, B → C known, B → D must be checked (fails on row 1 vs 2).
	want := bitset.FromLetters("BC")
	if got != want {
		t.Errorf("checkFDs = %v, want %v", got, want)
	}
}

func TestCanonicalLHS(t *testing.T) {
	m := testFD(t)
	m.emit(bitset.FromLetters("B"), 2) // B → C known
	// BC canonicalises to B (C is determined by the rest).
	if got := m.canonicalLHS(bitset.FromLetters("BC")); got != bitset.FromLetters("B") {
		t.Errorf("canonicalLHS(BC) = %v, want B", got)
	}
	// Nothing to remove without applicable FDs.
	if got := m.canonicalLHS(bitset.FromLetters("AD")); got != bitset.FromLetters("AD") {
		t.Errorf("canonicalLHS(AD) = %v, want AD", got)
	}
}

func TestRemoveUCCsBranchLimit(t *testing.T) {
	// Many overlapping UCCs inside the lhs: the enumeration must stay
	// bounded and every returned set must be UCC-free.
	store := fd.NewStore()
	var uccs []bitset.Set
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			uccs = append(uccs, bitset.New(a, b))
		}
	}
	m := newMudsFD(nil, bitset.Full(12), uccs, store, 0)
	out := m.removeUCCsCached(bitset.Full(10))
	for _, r := range out {
		if m.uccs.CoversSubsetOf(r) {
			t.Errorf("reduced lhs %v still contains a UCC", r)
		}
	}
	// Cached second call returns the same result.
	if !reflect.DeepEqual(m.removeUCCsCached(bitset.Full(10)), out) {
		t.Error("cache mismatch")
	}
}
