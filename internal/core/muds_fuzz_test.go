package core

import (
	"fmt"
	"reflect"
	"testing"

	"holistic/internal/fd"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

// FuzzMudsMatchesOracles drives MUDS with fuzzer-chosen relation contents
// and checks full agreement with the brute-force FD and UCC oracles. The
// fuzzer encodes a relation as a byte string: the first byte picks the
// column count (2..5), the rest fill the cells of up to 24 rows from a
// 4-value domain.
func FuzzMudsMatchesOracles(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 1, 1, 0, 2, 2, 2}, int64(1))
	f.Add([]byte{2, 0, 0, 1, 1, 0, 1}, int64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) < 3 {
			return
		}
		cols := 2 + int(data[0])%4
		cells := data[1:]
		rows := len(cells) / cols
		if rows < 1 {
			return
		}
		if rows > 24 {
			rows = 24
		}
		names := make([]string, cols)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		table := make([][]string, rows)
		for i := 0; i < rows; i++ {
			row := make([]string, cols)
			for c := 0; c < cols; c++ {
				row[c] = fmt.Sprint(cells[i*cols+c] % 4)
			}
			table[i] = row
		}
		rel, err := relation.New("fuzz", names, table)
		if err != nil {
			t.Fatal(err)
		}
		res := Muds(rel, Options{Seed: seed})
		p := pli.NewProvider(rel, 0)
		if want := fd.BruteForce(p); !reflect.DeepEqual(res.FDs, want) {
			t.Fatalf("FDs mismatch:\n got %v\nwant %v\nrows %v", res.FDs, want, table)
		}
		if want := ucc.BruteForce(p); !reflect.DeepEqual(res.UCCs, want) {
			t.Fatalf("UCCs mismatch:\n got %v\nwant %v\nrows %v", res.UCCs, want, table)
		}
	})
}
