package core

import (
	"fmt"

	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

// Source supplies the input relation of a profiling run. Load is called once
// per algorithm that needs the data, so the sequential baseline — which runs
// three independent algorithms — pays the input cost three times, exactly
// the I/O duplication the holistic algorithms eliminate (paper Sec. 3).
type Source interface {
	// Name identifies the dataset.
	Name() string
	// Load parses/encodes the input and returns a fresh relation.
	Load() (*relation.Relation, error)
}

// RelationSource wraps an already-loaded relation; Load re-encodes it from
// its rows to simulate an input pass, so baseline-vs-holistic comparisons on
// in-memory data still reflect shared-I/O savings.
type RelationSource struct {
	Rel *relation.Relation
}

// Name implements Source.
func (s RelationSource) Name() string { return s.Rel.Name() }

// Load implements Source by re-encoding the relation.
func (s RelationSource) Load() (*relation.Relation, error) {
	return relation.New(s.Rel.Name(), s.Rel.ColumnNames(), s.Rel.Rows())
}

// CSVSource loads a relation from a CSV file on every call.
type CSVSource struct {
	Path    string
	Options relation.CSVOptions
}

// Name implements Source.
func (s CSVSource) Name() string { return s.Path }

// Load implements Source.
func (s CSVSource) Load() (*relation.Relation, error) {
	return relation.ReadCSVFile(s.Path, s.Options)
}

// Strategy names accepted by Run.
const (
	StrategyMuds        = "muds"
	StrategyHolisticFun = "hfun"
	StrategyBaseline    = "baseline"
	StrategyTane        = "tane"
	StrategyFDFirst     = "fdfirst"
)

// Strategies lists the supported strategy names.
func Strategies() []string {
	return []string{StrategyMuds, StrategyHolisticFun, StrategyBaseline, StrategyTane, StrategyFDFirst}
}

// Run executes the named profiling strategy on src.
func Run(strategy string, src Source, opts Options) (*Result, error) {
	switch strategy {
	case StrategyMuds:
		return RunMuds(src, opts)
	case StrategyHolisticFun:
		return RunHolisticFun(src, opts)
	case StrategyBaseline:
		return RunBaseline(src, opts)
	case StrategyTane:
		return RunTane(src, opts)
	case StrategyFDFirst:
		return RunFDFirst(src, opts)
	default:
		return nil, fmt.Errorf("core: unknown strategy %q (want one of %v)", strategy, Strategies())
	}
}

// RunMuds loads the input once and runs the holistic MUDS algorithm.
func RunMuds(src Source, opts Options) (*Result, error) {
	timer := newPhaseTimer()
	var rel *relation.Relation
	var err error
	timer.time(PhaseLoad, func() {
		rel, err = src.Load()
	})
	if err != nil {
		return nil, err
	}
	inner := Muds(rel, opts)
	inner.Phases = append(timer.phases, inner.Phases...)
	return inner, nil
}

// RunHolisticFun loads the input once and runs Holistic FUN (paper
// Sec. 3.2): SPIDER while reading, then FUN extended to also return the
// minimal UCCs it traverses.
func RunHolisticFun(src Source, opts Options) (*Result, error) {
	res := &Result{}
	timer := newPhaseTimer()
	var rel *relation.Relation
	var err error
	timer.time(PhaseLoad, func() {
		rel, err = src.Load()
	})
	if err != nil {
		return nil, err
	}
	var p *pli.Provider
	timer.time(PhaseSpider, func() {
		res.INDs = ind.Spider(rel, opts.IND)
		p = pli.NewProvider(rel, opts.CacheEntries)
	})
	timer.time(PhaseFDDiscovery, func() {
		r := fd.Fun(p)
		res.FDs = r.FDs
		res.UCCs = r.MinimalUCCs
		res.Checks += r.Checks
	})
	res.Phases = timer.phases
	return res, nil
}

// RunBaseline executes the sequential baseline of the paper's evaluation:
// SPIDER, DUCC and FUN run one after another as independent algorithms,
// each reading the input and building its own data structures.
func RunBaseline(src Source, opts Options) (*Result, error) {
	res := &Result{}
	timer := newPhaseTimer()

	load := func() (*relation.Relation, error) {
		var rel *relation.Relation
		var err error
		timer.time(PhaseLoad, func() {
			rel, err = src.Load()
		})
		return rel, err
	}

	// SPIDER with its own input pass.
	rel, err := load()
	if err != nil {
		return nil, err
	}
	timer.time(PhaseSpider, func() {
		res.INDs = ind.Spider(rel, opts.IND)
	})

	// DUCC with its own input pass and its own PLIs.
	rel, err = load()
	if err != nil {
		return nil, err
	}
	timer.time(PhaseUCCDiscovery, func() {
		p := pli.NewProvider(rel, opts.CacheEntries)
		r := ucc.Ducc(p, opts.Seed)
		res.UCCs = r.Minimal
		res.Checks += r.Checks
	})

	// FUN with its own input pass and its own PLIs (FD output only; the
	// baseline's UCCs come from DUCC).
	rel, err = load()
	if err != nil {
		return nil, err
	}
	timer.time(PhaseFDDiscovery, func() {
		p := pli.NewProvider(rel, opts.CacheEntries)
		r := fd.Fun(p)
		res.FDs = r.FDs
		res.Checks += r.Checks
	})

	res.Phases = timer.phases
	return res, nil
}

// RunFDFirst implements the "FDs first" holistic approach of paper
// Sec. 3.1: SPIDER while reading, FUN for the minimal FDs, and the minimal
// UCCs *inferred* from the FDs via Lemma 2 (closure-based key derivation)
// instead of being discovered on the data. The paper rejects this approach
// for the inference overhead; having it runnable makes that overhead
// measurable (the "uccInference" phase).
func RunFDFirst(src Source, opts Options) (*Result, error) {
	res := &Result{}
	timer := newPhaseTimer()
	var rel *relation.Relation
	var err error
	timer.time(PhaseLoad, func() {
		rel, err = src.Load()
	})
	if err != nil {
		return nil, err
	}
	var store *fd.Store
	timer.time(PhaseSpider, func() {
		res.INDs = ind.Spider(rel, opts.IND)
	})
	timer.time(PhaseFDDiscovery, func() {
		p := pli.NewProvider(rel, opts.CacheEntries)
		r := fd.Fun(p)
		res.FDs = r.FDs
		res.Checks += r.Checks
		store = fd.NewStore()
		for _, f := range r.FDs {
			store.Add(f.LHS, f.RHS)
		}
	})
	timer.time(PhaseUCCInference, func() {
		res.UCCs = store.DeriveUCCs(rel.AllColumns(), opts.Seed)
	})
	res.Phases = timer.phases
	return res, nil
}

// RunTane runs the non-holistic TANE FD algorithm (Table 3's fourth
// column). It discovers FDs only.
func RunTane(src Source, opts Options) (*Result, error) {
	res := &Result{}
	timer := newPhaseTimer()
	var rel *relation.Relation
	var err error
	timer.time(PhaseLoad, func() {
		rel, err = src.Load()
	})
	if err != nil {
		return nil, err
	}
	timer.time(PhaseFDDiscovery, func() {
		p := pli.NewProvider(rel, opts.CacheEntries)
		r := fd.Tane(p, false)
		res.FDs = r.FDs
		res.Checks += r.Checks
	})
	res.Phases = timer.phases
	return res, nil
}
