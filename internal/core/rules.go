package core

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/parallel"
	"holistic/internal/pli"
	"holistic/internal/settrie"
)

// mudsFD is the state of MUDS' FD discovery part (paper Sec. 5): the shared
// PLI provider handed over from DUCC, the minimal UCCs organised in a prefix
// tree for connector look-ups and subset pruning (Sec. 5.4), and the FD
// result store with per-rhs minimal-lhs families.
type mudsFD struct {
	// ctx governs cancellation: every task-queue loop of the FD phases polls
	// it (via aborted) and drains early when it is done, so a deadline stops
	// the run at the granularity of one minimisation task.
	ctx     context.Context
	p       *pli.Provider
	working bitset.Set // non-constant columns
	uccs    *settrie.MinimalFamily
	z       bitset.Set // union of all minimal UCCs (Sec. 4)
	store   *fd.Store
	perRHS  map[int]*settrie.MinimalFamily
	// falseRHS collects, per right-hand side, the left-hand sides proven
	// NOT to determine it (maximal certificates). Every failed data check
	// in any phase lands here and prunes later checks: by Lemma 4 a subset
	// of a failed left-hand side fails too. The completion sweep seeds its
	// walks from these families, so boundary work is never repeated.
	falseRHS map[int]*settrie.MaximalFamily
	checks   int
	seed     int64

	// shadowSeen dedups generated shadow candidates and shadowProcessed
	// dedups minimisation work across the fixpoint rounds of the shadowed
	// phase (lhs → rhs attributes already handled).
	shadowSeen      map[bitset.Set]bitset.Set
	shadowProcessed map[bitset.Set]bitset.Set
	removeUCCCache  map[bitset.Set][]bitset.Set

	// workers bounds the worker pool of the per-RHS walk phases
	// (calculateRZ, completionSweep); <= 0 selects GOMAXPROCS. The task
	// queues of the other phases stay sequential regardless.
	workers int
}

func newMudsFD(p *pli.Provider, working bitset.Set, minimalUCCs []bitset.Set, store *fd.Store, seed int64) *mudsFD {
	m := &mudsFD{
		ctx:             context.Background(),
		p:               p,
		working:         working,
		uccs:            &settrie.MinimalFamily{},
		store:           store,
		perRHS:          make(map[int]*settrie.MinimalFamily),
		falseRHS:        make(map[int]*settrie.MaximalFamily),
		seed:            seed,
		shadowSeen:      make(map[bitset.Set]bitset.Set),
		shadowProcessed: make(map[bitset.Set]bitset.Set),
		removeUCCCache:  make(map[bitset.Set][]bitset.Set),
	}
	for _, u := range minimalUCCs {
		m.uccs.Add(u)
		m.z = m.z.Union(u)
	}
	return m
}

// aborted reports whether the run's context is done; the FD-phase loops poll
// it between tasks and drain early when it is.
func (m *mudsFD) aborted() bool { return m.ctx.Err() != nil }

// workerCount resolves the effective pool width for the walk phases.
func (m *mudsFD) workerCount() int { return parallel.Workers(m.workers) }

// run adapts a phase method to timePhase's signature: the phase runs to its
// internal cancellation checks, and the context error (if any) is what the
// engine reports.
func (m *mudsFD) run(phase func()) func() error {
	return func() error {
		phase()
		return m.ctx.Err()
	}
}

// lhsFamily returns the minimal-lhs family for right-hand side a.
func (m *mudsFD) lhsFamily(a int) *settrie.MinimalFamily {
	f, ok := m.perRHS[a]
	if !ok {
		f = &settrie.MinimalFamily{}
		m.perRHS[a] = f
	}
	return f
}

// emit records the verified-minimal FD lhs → a, deduplicating against
// earlier emissions. A defensive guard removes any stored superset left
// behind if a smaller left-hand side arrives late.
func (m *mudsFD) emit(lhs bitset.Set, a int) {
	fam := m.lhsFamily(a)
	if fam.CoversSubsetOf(lhs) {
		return // already stored, or a smaller lhs is known
	}
	for _, sup := range fam.SupersetsOf(lhs) {
		m.store.Remove(sup, a)
	}
	fam.Add(lhs)
	m.store.Add(lhs, a)
}

// knownValid reports whether lhs → a follows from already-emitted FDs.
func (m *mudsFD) knownValid(lhs bitset.Set, a int) bool {
	f, ok := m.perRHS[a]
	return ok && f.CoversSubsetOf(lhs)
}

// falseFamily returns the certified-non-FD family for right-hand side a.
func (m *mudsFD) falseFamily(a int) *settrie.MaximalFamily {
	f, ok := m.falseRHS[a]
	if !ok {
		f = &settrie.MaximalFamily{}
		m.falseRHS[a] = f
	}
	return f
}

// knownInvalid reports whether lhs → a is refuted by a recorded failure:
// lhs ⊆ X with X ↛ a implies lhs ↛ a (Lemma 4).
func (m *mudsFD) knownInvalid(lhs bitset.Set, a int) bool {
	f, ok := m.falseRHS[a]
	return ok && f.CoversSupersetOf(lhs)
}

// resolveFD decides lhs → a, consulting certificates before touching PLIs.
func (m *mudsFD) resolveFD(lhs bitset.Set, a int) bool {
	if lhs.Has(a) {
		return true
	}
	if m.knownValid(lhs, a) {
		return true
	}
	if m.knownInvalid(lhs, a) {
		return false
	}
	m.checks++
	// Non-materializing fast path: the provider folds lhs's missing columns
	// over the cheapest cached ancestor instead of building lhs's PLI.
	if m.p.CheckFD(lhs, a) {
		return true
	}
	m.falseFamily(a).Add(lhs)
	return false
}

// checkFDs validates lhs → a for every a ∈ rhs in one pass over lhs's PLI
// (skipping attributes already implied by emitted FDs) and returns the valid
// subset.
func (m *mudsFD) checkFDs(lhs bitset.Set, rhs bitset.Set) bitset.Set {
	valid := bitset.Set{}
	todo := bitset.Set{}
	for a := rhs.First(); a >= 0; a = rhs.NextAfter(a) {
		switch {
		case lhs.Has(a):
			valid = valid.With(a)
		case m.knownValid(lhs, a):
			valid = valid.With(a)
		case m.knownInvalid(lhs, a):
			// refuted by a recorded failure; skip the data check
		default:
			todo = todo.With(a)
		}
	}
	if !todo.IsEmpty() {
		m.checks += todo.Len()
		checked := m.p.CheckFDs(lhs, todo)
		valid = valid.Union(checked)
		failed := todo.Diff(checked)
		for a := failed.First(); a >= 0; a = failed.NextAfter(a) {
			m.falseFamily(a).Add(lhs)
		}
	}
	return valid
}

// connectorLookup implements the look-up of paper Sec. 5.1 (Table 2): the
// union of all minimal UCCs that are supersets of the connector, minus the
// connector itself. The resulting columns are the right-hand-side candidates
// reachable from left-hand sides that connect to the given connector.
func (m *mudsFD) connectorLookup(connector bitset.Set) bitset.Set {
	var union bitset.Set
	for _, u := range m.uccs.SupersetsOf(connector) {
		union = union.Union(u)
	}
	return union.Diff(connector)
}

// impossibleColumns implements pruning rule 1 of paper Sec. 4: an FD cannot
// exist if it is fully contained in a minimal UCC. For a left-hand side lhs
// the impossible right-hand sides are the columns a with lhs ∪ {a} inside
// some minimal UCC, i.e. the union of the minimal UCCs containing lhs.
func (m *mudsFD) impossibleColumns(lhs bitset.Set) bitset.Set {
	var union bitset.Set
	for _, u := range m.uccs.SupersetsOf(lhs) {
		union = union.Union(u)
	}
	return union.Diff(lhs)
}

// rzColumns returns R \ Z: the working columns in no minimal UCC. By pruning
// rule 2 of Sec. 4, no subset of R \ Z can determine a column of Z.
func (m *mudsFD) rzColumns() bitset.Set {
	return m.working.Diff(m.z)
}
