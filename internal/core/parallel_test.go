package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"holistic/internal/dataset"
	"holistic/internal/relation"
)

// TestWorkerCountEquivalence is the engine's determinism contract: every
// strategy discovers byte-identical IND/UCC/FD sets — and performs the same
// number of validity checks — no matter how many workers the parallel phases
// fan out over. Run under -race this also exercises the sharded cache and
// the indexed-slot result plumbing for data races.
func TestWorkerCountEquivalence(t *testing.T) {
	rels := []*relation.Relation{
		dataset.NCVoter(500, 10),
		dataset.Ionosphere(8, 351),
		dataset.Uniprot(2000),
	}
	for _, rel := range rels {
		src := RelationSource{Rel: rel}
		for _, strategy := range Strategies() {
			sequential, err := RunContext(context.Background(), strategy, src, Options{Seed: 11, Workers: 1}, nil)
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", rel.Name(), strategy, err)
			}
			for _, workers := range []int{2, 8} {
				parallel, err := RunContext(context.Background(), strategy, src, Options{Seed: 11, Workers: workers}, nil)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", rel.Name(), strategy, workers, err)
				}
				if !reflect.DeepEqual(parallel.FDs, sequential.FDs) {
					t.Errorf("%s/%s workers=%d: FDs differ from workers=1 (%d vs %d)",
						rel.Name(), strategy, workers, len(parallel.FDs), len(sequential.FDs))
				}
				if !reflect.DeepEqual(parallel.UCCs, sequential.UCCs) {
					t.Errorf("%s/%s workers=%d: UCCs differ from workers=1 (%d vs %d)",
						rel.Name(), strategy, workers, len(parallel.UCCs), len(sequential.UCCs))
				}
				if !reflect.DeepEqual(parallel.INDs, sequential.INDs) {
					t.Errorf("%s/%s workers=%d: INDs differ from workers=1 (%d vs %d)",
						rel.Name(), strategy, workers, len(parallel.INDs), len(sequential.INDs))
				}
				if parallel.Checks != sequential.Checks {
					t.Errorf("%s/%s workers=%d: %d checks, want %d (scheduling leaked into the check plan)",
						rel.Name(), strategy, workers, parallel.Checks, sequential.Checks)
				}
			}
		}
	}
}

// TestParallelRelationEncodingEquivalence checks the input layer's half of
// the contract: parallel per-column dictionary encoding and deduplication
// produce a relation identical to the sequential build.
func TestParallelRelationEncodingEquivalence(t *testing.T) {
	base := dataset.NCVoter(300, 8)
	names := base.ColumnNames()
	rows := make([][]string, base.NumRows())
	for r := range rows {
		row := make([]string, base.NumColumns())
		for c := range row {
			row[c] = base.Value(r, c)
		}
		rows[r] = row
	}
	rows = append(rows, rows[0], rows[1]) // force the dedup path

	seq, err := relation.NewWithOptions("eq", names, rows, relation.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := relation.NewWithOptions("eq", names, rows, relation.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumRows() != par.NumRows() || seq.DuplicatesRemoved() != par.DuplicatesRemoved() {
		t.Fatalf("row counts differ: sequential %d (-%d), parallel %d (-%d)",
			seq.NumRows(), seq.DuplicatesRemoved(), par.NumRows(), par.DuplicatesRemoved())
	}
	for c := 0; c < seq.NumColumns(); c++ {
		for r := 0; r < seq.NumRows(); r++ {
			if seq.Value(r, c) != par.Value(r, c) {
				t.Fatalf("value (%d,%d) differs: %q vs %q", r, c, seq.Value(r, c), par.Value(r, c))
			}
		}
		if !reflect.DeepEqual(seq.SortedDistinctValues(c), par.SortedDistinctValues(c)) {
			t.Fatalf("sorted distinct values of column %d differ", c)
		}
	}
}

// TestParallelMudsCancellation proves the worker pools do not outlive the
// context: a deadline mid-run must surface promptly even when the per-RHS
// walks and PLI builds are fanned out over many workers.
func TestParallelMudsCancellation(t *testing.T) {
	rel := dataset.NCVoter(2000, 18)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := MudsContext(ctx, rel, Options{Seed: 1, Workers: 8}, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("cancelled parallel run took %v, want prompt return", elapsed)
	}
	if res == nil {
		t.Fatal("cancelled run must return the partial result")
	}
}
