package core

import (
	"holistic/internal/bitset"
	"holistic/internal/walker"
)

// This file implements the second FD phase of MUDS (paper Secs. 4.2 and
// 5.2): FDs whose right-hand side lies in R \ Z, the columns outside every
// minimal UCC. For each such right-hand side A one sub-lattice over R \ {A}
// is traversed with the DUCC-style random walk; "X determines A" is a
// monotone predicate, so downward pruning of non-FDs (Lemma 4) and upward
// pruning of supersets of found left-hand sides both apply, and unvisited
// holes are filled by the hitting-set duality — all provided by the shared
// lattice walker.

// calculateRZ discovers all minimal FDs with right-hand side in R \ Z.
func (m *mudsFD) calculateRZ() {
	rz := m.rzColumns()
	for a := rz.First(); a >= 0; a = rz.NextAfter(a) {
		if m.aborted() {
			return
		}
		m.walkRHS(a, nil, nil)
	}
}

// walkRHS runs the sub-lattice walk for one right-hand side and emits the
// minimal left-hand sides found. knownTrue/knownFalse seed the walk with
// certificates (used by the completion sweep; nil for the plain R\Z phase).
func (m *mudsFD) walkRHS(a int, knownTrue, knownFalse []bitset.Set) {
	base := m.working.Without(a)
	col := m.p.Relation().Column(a)
	pred := func(s bitset.Set) bool {
		// Known-FD pruning (paper Sec. 5.2): drop attributes of s that are
		// determined by the rest of s before touching PLIs — the canonical
		// set has the same closure, and its PLI is more likely cached.
		return m.p.Get(m.canonicalLHS(s)).Refines(col)
	}
	res, err := walker.RunContext(m.ctx, base, pred, walker.Options{
		Seed:       m.seed + int64(a)*7919,
		KnownTrue:  knownTrue,
		KnownFalse: knownFalse,
	})
	m.checks += res.Checks
	if err != nil {
		// A cancelled walk may report non-minimal left-hand sides; discard
		// them rather than emit unverified FDs into the partial result.
		return
	}
	for _, lhs := range res.MinimalTrue {
		m.emit(lhs, a)
	}
}

// canonicalLHS removes attributes from s that are functionally determined by
// the remaining attributes according to already-emitted FDs ("the
// combination of a left hand side with its right hand side can never be the
// left hand side of an already known minimal FD", Sec. 5.2). The closure is
// unchanged, so predicate values are preserved.
func (m *mudsFD) canonicalLHS(s bitset.Set) bitset.Set {
	for {
		reduced := false
		for b := s.First(); b >= 0; b = s.NextAfter(b) {
			rest := s.Without(b)
			if f, ok := m.perRHS[b]; ok && f.CoversSubsetOf(rest) {
				s = rest
				reduced = true
				break
			}
		}
		if !reduced {
			return s
		}
	}
}
