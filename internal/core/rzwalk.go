package core

import (
	"holistic/internal/bitset"
	"holistic/internal/parallel"
	"holistic/internal/walker"
)

// This file implements the second FD phase of MUDS (paper Secs. 4.2 and
// 5.2): FDs whose right-hand side lies in R \ Z, the columns outside every
// minimal UCC. For each such right-hand side A one sub-lattice over R \ {A}
// is traversed with the DUCC-style random walk; "X determines A" is a
// monotone predicate, so downward pruning of non-FDs (Lemma 4) and upward
// pruning of supersets of found left-hand sides both apply, and unvisited
// holes are filled by the hitting-set duality — all provided by the shared
// lattice walker.
//
// The walks of different right-hand sides are independent: each one reads
// the shared PLI provider (concurrency-safe when the engine runs with
// workers > 1), the trusted certificate families built before the fan-out,
// and the per-RHS FD families — which are only *read* during a walk (via
// canonicalLHS) and only *written* by the ordered emission pass after the
// pool drains. Each walk therefore runs as one worker-pool task writing its
// outcome into an indexed slot; the emissions are applied in right-hand-side
// order, so the discovered FD set is identical for every worker count. The
// walk results themselves are scheduling-independent anyway: canonicalLHS
// preserves closures, so predicate values — and with them the seed-driven
// walk — do not depend on which FDs other walks have already found.

// calculateRZ discovers all minimal FDs with right-hand side in R \ Z.
func (m *mudsFD) calculateRZ() {
	rz := m.rzColumns().Columns()
	walks := make([]walkOutcome, len(rz))
	parallel.For(m.ctx, m.workerCount(), len(rz), func(i int) {
		walks[i] = m.walkRHS(rz[i], nil, nil)
	})
	for i, a := range rz {
		m.applyWalk(a, walks[i])
	}
}

// walkOutcome is the result of one per-RHS sub-lattice walk, produced by a
// worker-pool task and applied to the shared state in RHS order afterwards.
type walkOutcome struct {
	minimal []bitset.Set // verified-minimal left-hand sides (nil on error)
	checks  int
	err     error
}

// walkRHS runs the sub-lattice walk for one right-hand side and returns the
// minimal left-hand sides found. knownTrue/knownFalse seed the walk with
// certificates (used by the completion sweep; nil for the plain R\Z phase).
// It only reads shared state, so walks of distinct right-hand sides may run
// concurrently.
func (m *mudsFD) walkRHS(a int, knownTrue, knownFalse []bitset.Set) walkOutcome {
	base := m.working.Without(a)
	pred := func(s bitset.Set) bool {
		// Known-FD pruning (paper Sec. 5.2): drop attributes of s that are
		// determined by the rest of s before touching PLIs — the canonical
		// set has the same closure and a cheaper fold plan. CheckFD answers
		// on the validation fast path without materialising the lhs PLI.
		return m.p.CheckFD(m.canonicalLHS(s), a)
	}
	res, err := walker.RunContext(m.ctx, base, pred, walker.Options{
		Seed:       m.seed + int64(a)*7919,
		KnownTrue:  knownTrue,
		KnownFalse: knownFalse,
	})
	out := walkOutcome{checks: res.Checks, err: err}
	if err == nil {
		out.minimal = res.MinimalTrue
	}
	return out
}

// applyWalk merges one walk's outcome into the shared state. A cancelled
// walk may report non-minimal left-hand sides; they are discarded rather
// than emitted as unverified FDs into the partial result.
func (m *mudsFD) applyWalk(a int, out walkOutcome) {
	m.checks += out.checks
	for _, lhs := range out.minimal {
		m.emit(lhs, a)
	}
}

// canonicalLHS removes attributes from s that are functionally determined by
// the remaining attributes according to already-emitted FDs ("the
// combination of a left hand side with its right hand side can never be the
// left hand side of an already known minimal FD", Sec. 5.2). The closure is
// unchanged, so predicate values are preserved. It reads the per-RHS
// families without mutating them, which keeps concurrent walks race-free.
func (m *mudsFD) canonicalLHS(s bitset.Set) bitset.Set {
	for {
		reduced := false
		for b := s.First(); b >= 0; b = s.NextAfter(b) {
			rest := s.Without(b)
			if f, ok := m.perRHS[b]; ok && f.CoversSubsetOf(rest) {
				s = rest
				reduced = true
				break
			}
		}
		if !reduced {
			return s
		}
	}
}
