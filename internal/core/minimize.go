package core

import (
	"holistic/internal/bitset"
)

// This file implements the first FD phase of MUDS (paper Sec. 5.1,
// Algorithm 1): deducing FDs from the minimal UCCs and minimising their
// left-hand sides top-down, guided by connector look-ups.
//
// One extension over the paper's pseudocode: before a right-hand side is
// emitted at a node, its minimality is verified against every direct subset
// (consulting known FDs first, then the data). When a subset turns out to
// determine the attribute even though the connector look-up did not propose
// it, a continuation task is queued instead of emitting — this "healing"
// step makes the phase provably complete for every minimal FD whose
// left-hand side lies inside a minimal UCC, without changing the phase's
// search strategy.

// uccTask is a minimisation task of Algorithm 1.
type uccTask struct {
	lhs  bitset.Set
	rhs  bitset.Set
	mUcc bitset.Set
}

// minimizeFDs discovers all minimal FDs whose left-hand side is a subset of
// a minimal UCC and whose right-hand side belongs to Z.
func (m *mudsFD) minimizeFDs() {
	type key struct{ lhs, mUcc bitset.Set }
	processed := make(map[key]bitset.Set)

	var queue []uccTask
	push := func(t uccTask) {
		if t.rhs.IsEmpty() {
			return
		}
		queue = append(queue, t)
	}

	for _, u := range m.uccs.All() {
		push(uccTask{lhs: u, rhs: m.z.Diff(u), mUcc: u})
	}

	for len(queue) > 0 {
		if m.aborted() {
			return
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		k := key{t.lhs, t.mUcc}
		newRhs := t.rhs.Diff(processed[k])
		if newRhs.IsEmpty() {
			continue
		}
		processed[k] = processed[k].Union(newRhs)

		currentRhs := newRhs
		subsets := directNonEmptySubsets(t.lhs)
		// proposed[i] records which attributes the connector look-up offered
		// for subsets[i]; attributes offered but not validated are known
		// invalid there, which the emission verification exploits.
		proposed := make([]bitset.Set, len(subsets))

		for i, s := range subsets {
			connector := t.mUcc.Diff(s)
			potential := m.connectorLookup(connector)
			potential = potential.Diff(s)
			potential = potential.Diff(m.impossibleColumns(s))
			potential = potential.Intersect(newRhs)
			proposed[i] = potential
			if potential.IsEmpty() {
				continue
			}
			valid := m.checkFDs(s, potential)
			currentRhs = currentRhs.Diff(valid)
			push(uccTask{lhs: s, rhs: valid, mUcc: t.mUcc})
		}

		// Emission with minimality verification (healing).
		for a := currentRhs.First(); a >= 0; a = currentRhs.NextAfter(a) {
			minimal := true
			for i, s := range subsets {
				if proposed[i].Has(a) {
					continue // checked above and found invalid at s
				}
				if m.resolveFD(s, a) {
					// The look-up missed a valid subset; continue minimising
					// there instead of emitting a non-minimal FD.
					push(uccTask{lhs: s, rhs: bitset.Single(a), mUcc: t.mUcc})
					minimal = false
					break
				}
			}
			if minimal {
				m.emit(t.lhs, a)
			}
		}
	}
}

// directNonEmptySubsets returns the direct subsets of s, excluding the empty
// set (FDs with empty left-hand sides are the constant columns, extracted
// before the lattice phases).
func directNonEmptySubsets(s bitset.Set) []bitset.Set {
	if s.Len() <= 1 {
		return nil
	}
	return s.DirectSubsets()
}
