package core

import (
	"context"

	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

// Strategy names accepted by Run. The names double as registry keys; the
// implementations are registered below in the same order, which Strategies()
// preserves for help texts.
const (
	StrategyMuds        = "muds"
	StrategyHolisticFun = "hfun"
	StrategyBaseline    = "baseline"
	StrategyTane        = "tane"
	StrategyFDFirst     = "fdfirst"
)

func init() {
	Register(strategyFunc{StrategyMuds, mudsProfile})
	Register(strategyFunc{StrategyHolisticFun, hfunProfile})
	Register(strategyFunc{StrategyBaseline, baselineProfile})
	Register(strategyFunc{StrategyTane, taneProfile})
	Register(strategyFunc{StrategyFDFirst, fdFirstProfile})
}

// hfunProfile runs Holistic FUN (paper Sec. 3.2): SPIDER while reading, then
// FUN extended to also return the minimal UCCs it traverses.
func hfunProfile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	res := &Result{}
	workers := opts.workerCount()
	var p *pli.Provider
	err := timePhase(ctx, obs, PhaseSpider, func() error {
		obs.Parallelism(PhaseSpider, workers)
		inds, err := ind.SpiderContext(ctx, rel, opts.IND)
		if err != nil {
			return err
		}
		res.INDs = inds
		p = opts.NewProvider(rel)
		return nil
	})
	if err != nil {
		return res, err
	}
	err = timePhase(ctx, obs, PhaseFDDiscovery, func() error {
		obs.Parallelism(PhaseFDDiscovery, workers)
		r, err := fd.FunContext(ctx, p, workers)
		res.FDs = r.FDs
		res.UCCs = r.MinimalUCCs
		obs.Checks(r.Checks)
		return err
	})
	obs.CacheStats(p.CacheStats())
	return res, err
}

// baselineProfile executes the sequential baseline of the paper's
// evaluation: SPIDER, DUCC and FUN run one after another as independent
// algorithms, each building its own data structures. The engine harness
// already paid the first input pass; the DUCC and FUN passes re-encode the
// relation (RelationSource semantics) as additional timed "load" phases, so
// the baseline still pays the per-algorithm input cost the holistic
// strategies share.
func baselineProfile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	res := &Result{}
	workers := opts.workerCount()

	reload := func() (*relation.Relation, error) {
		var fresh *relation.Relation
		err := timePhase(ctx, obs, PhaseLoad, func() error {
			var err error
			fresh, err = RelationSource{Rel: rel}.Load()
			return err
		})
		return fresh, err
	}

	// SPIDER on the harness-loaded relation.
	err := timePhase(ctx, obs, PhaseSpider, func() error {
		obs.Parallelism(PhaseSpider, workers)
		inds, err := ind.SpiderContext(ctx, rel, opts.IND)
		res.INDs = inds
		return err
	})
	if err != nil {
		return res, err
	}

	// DUCC with its own input pass and its own PLIs.
	duccRel, err := reload()
	if err != nil {
		return res, err
	}
	err = timePhase(ctx, obs, PhaseUCCDiscovery, func() error {
		obs.Parallelism(PhaseUCCDiscovery, 1)
		p := pli.NewProviderWithCache(duccRel, pli.NewMapCacheBudget(opts.CacheEntries, opts.cacheBudget()))
		defer func() { obs.CacheStats(p.CacheStats()) }()
		r, err := ucc.DuccContext(ctx, p, opts.Seed)
		res.UCCs = r.Minimal
		obs.Checks(r.Checks)
		return err
	})
	if err != nil {
		return res, err
	}

	// FUN with its own input pass and its own PLIs (FD output only; the
	// baseline's UCCs come from DUCC).
	funRel, err := reload()
	if err != nil {
		return res, err
	}
	err = timePhase(ctx, obs, PhaseFDDiscovery, func() error {
		obs.Parallelism(PhaseFDDiscovery, workers)
		p := opts.NewProvider(funRel)
		defer func() { obs.CacheStats(p.CacheStats()) }()
		r, err := fd.FunContext(ctx, p, workers)
		res.FDs = r.FDs
		obs.Checks(r.Checks)
		return err
	})
	return res, err
}

// fdFirstProfile implements the "FDs first" holistic approach of paper
// Sec. 3.1: SPIDER while reading, FUN for the minimal FDs, and the minimal
// UCCs *inferred* from the FDs via Lemma 2 (closure-based key derivation)
// instead of being discovered on the data. The paper rejects this approach
// for the inference overhead; having it runnable makes that overhead
// measurable (the "uccInference" phase).
func fdFirstProfile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	res := &Result{}
	workers := opts.workerCount()
	err := timePhase(ctx, obs, PhaseSpider, func() error {
		obs.Parallelism(PhaseSpider, workers)
		inds, err := ind.SpiderContext(ctx, rel, opts.IND)
		res.INDs = inds
		return err
	})
	if err != nil {
		return res, err
	}
	var store *fd.Store
	err = timePhase(ctx, obs, PhaseFDDiscovery, func() error {
		obs.Parallelism(PhaseFDDiscovery, workers)
		p := opts.NewProvider(rel)
		defer func() { obs.CacheStats(p.CacheStats()) }()
		r, err := fd.FunContext(ctx, p, workers)
		res.FDs = r.FDs
		obs.Checks(r.Checks)
		if err != nil {
			return err
		}
		store = fd.NewStore()
		for _, f := range r.FDs {
			store.Add(f.LHS, f.RHS)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	err = timePhase(ctx, obs, PhaseUCCInference, func() error {
		obs.Parallelism(PhaseUCCInference, 1)
		uccs, err := store.DeriveUCCsContext(ctx, rel.AllColumns(), opts.Seed)
		res.UCCs = uccs
		return err
	})
	return res, err
}

// taneProfile runs the non-holistic TANE FD algorithm (Table 3's fourth
// column). It discovers FDs only.
func taneProfile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	res := &Result{}
	workers := opts.workerCount()
	err := timePhase(ctx, obs, PhaseFDDiscovery, func() error {
		obs.Parallelism(PhaseFDDiscovery, workers)
		p := opts.NewProvider(rel)
		defer func() { obs.CacheStats(p.CacheStats()) }()
		r, err := fd.TaneContext(ctx, p, false, workers)
		res.FDs = r.FDs
		obs.Checks(r.Checks)
		return err
	})
	return res, err
}
