package core

import (
	"holistic/internal/bitset"
	"holistic/internal/parallel"
)

// completionSweep closes the completeness gap left by the shadowed-FD phase.
//
// Algorithm 2 of the paper derives shadowed left-hand-side candidates only
// from unions of already-discovered FDs; minimal FDs whose left-hand side
// mixes columns of several minimal UCCs can stay invisible even when the
// generation runs to a fixpoint (our property tests construct such
// relations). To guarantee the complete minimal cover, MUDS finishes with
// one certificate-seeded sub-lattice walk per right-hand side in Z — the
// same machinery as the R\Z phase, but primed with everything the earlier
// phases proved:
//
//   - true certificates: every minimal left-hand side already found for the
//     right-hand side (upward pruning);
//   - false certificates from pruning rule 1: for every minimal UCC V
//     containing the right-hand side a, no subset of V\{a} determines a
//     (an FD inside a minimal UCC would contradict its minimality);
//   - false certificates from pruning rule 2: no subset of R\Z determines
//     a column of Z.
//
// When the earlier phases already found everything (the common case), the
// walk only certifies the boundary below the known left-hand sides.
//
// The per-RHS walks are independent — a walk for right-hand side a emits
// only a's FDs, which no other walk's certificates or predicate depend on —
// so they fan out across the worker pool. Certificate seeds are collected
// sequentially first (the family look-ups lazily create entries), each walk
// writes its outcome into an indexed slot, and the emissions are applied in
// RHS order, keeping the result identical for every worker count.
func (m *mudsFD) completionSweep() {
	rz := m.rzColumns()
	zCols := m.z.Columns()
	trueSeeds := make([][]bitset.Set, len(zCols))
	falseSeeds := make([][]bitset.Set, len(zCols))
	for i, a := range zCols {
		if m.aborted() {
			return
		}
		knownTrue := m.lhsFamily(a).All()

		var knownFalse []bitset.Set
		if !rz.IsEmpty() {
			knownFalse = append(knownFalse, rz) // rule 2
		}
		for _, v := range m.uccs.SupersetsOf(bitset.Single(a)) {
			if sub := v.Without(a); !sub.IsEmpty() {
				knownFalse = append(knownFalse, sub) // rule 1
			}
		}
		// Minimality of the emitted FDs was verified against the data, so
		// every direct subset of a known left-hand side is a certified
		// non-FD — free false certificates that let the walk confirm the
		// boundary without re-touching PLIs.
		for _, lhs := range knownTrue {
			for _, sub := range lhs.DirectSubsets() {
				if !sub.IsEmpty() {
					knownFalse = append(knownFalse, sub)
				}
			}
		}
		// Recycle every failure certificate the earlier phases recorded.
		knownFalse = append(knownFalse, m.falseFamily(a).All()...)

		trueSeeds[i] = knownTrue
		falseSeeds[i] = knownFalse
	}

	walks := make([]walkOutcome, len(zCols))
	parallel.For(m.ctx, m.workerCount(), len(zCols), func(i int) {
		walks[i] = m.walkRHS(zCols[i], trueSeeds[i], falseSeeds[i])
	})
	for i, a := range zCols {
		m.applyWalk(a, walks[i])
	}
}
