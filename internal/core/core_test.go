package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

func mustRel(t *testing.T, names []string, rows [][]string) *relation.Relation {
	t.Helper()
	r, err := relation.New("t", names, rows)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randomRelation(rnd *rand.Rand, maxCols, maxRows, maxCard int) *relation.Relation {
	cols := 2 + rnd.Intn(maxCols-1)
	rows := 2 + rnd.Intn(maxRows-1)
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(1 + rnd.Intn(maxCard)))
		}
		data[i] = row
	}
	return relation.MustNew("rand", names, data)
}

// TestConnectorLookupPaperExample reproduces Table 2 of the paper: minimal
// UCCs AFG, BDFG, DEF, CEFG; the connector FG matches AFG, BDFG, CEFG and
// the union of the matched columns minus the connector is ABCDE.
func TestConnectorLookupPaperExample(t *testing.T) {
	store := fd.NewStore()
	uccs := []bitset.Set{
		bitset.FromLetters("AFG"),
		bitset.FromLetters("BDFG"),
		bitset.FromLetters("DEF"),
		bitset.FromLetters("CEFG"),
	}
	m := newMudsFD(nil, bitset.Full(7), uccs, store, 0)
	got := m.connectorLookup(bitset.FromLetters("FG"))
	if want := bitset.FromLetters("ABCDE"); got != want {
		t.Errorf("connectorLookup(FG) = %v, want %v", got, want)
	}
	// A connector matching nothing yields no candidates.
	if got := m.connectorLookup(bitset.FromLetters("AB")); !got.IsEmpty() {
		t.Errorf("connectorLookup(AB) = %v, want ∅", got)
	}
}

// TestImpossibleColumnsRule1 checks pruning rule 1 of Sec. 4: no FD can lie
// fully inside a minimal UCC.
func TestImpossibleColumnsRule1(t *testing.T) {
	store := fd.NewStore()
	uccs := []bitset.Set{bitset.FromLetters("ABC"), bitset.FromLetters("CD")}
	m := newMudsFD(nil, bitset.Full(5), uccs, store, 0)
	// lhs AB lies inside ABC: C is an impossible rhs.
	if got := m.impossibleColumns(bitset.FromLetters("AB")); got != bitset.FromLetters("C") {
		t.Errorf("impossibleColumns(AB) = %v, want C", got)
	}
	// lhs E lies in no UCC: nothing is impossible by rule 1.
	if got := m.impossibleColumns(bitset.FromLetters("E")); !got.IsEmpty() {
		t.Errorf("impossibleColumns(E) = %v, want ∅", got)
	}
}

func TestRZColumns(t *testing.T) {
	store := fd.NewStore()
	uccs := []bitset.Set{bitset.FromLetters("AB")}
	m := newMudsFD(nil, bitset.Full(4), uccs, store, 0)
	if got := m.rzColumns(); got != bitset.FromLetters("CD") {
		t.Errorf("rzColumns = %v, want CD", got)
	}
}

// TestRemoveUCCs exercises Algorithm 3: stripping minimal UCCs out of a
// candidate left-hand side.
func TestRemoveUCCs(t *testing.T) {
	store := fd.NewStore()
	uccs := []bitset.Set{bitset.FromLetters("AB"), bitset.FromLetters("BC")}
	m := newMudsFD(nil, bitset.Full(5), uccs, store, 0)

	// No contained UCC: unchanged.
	if got := m.removeUCCs(bitset.FromLetters("ADE")); !reflect.DeepEqual(got, []bitset.Set{bitset.FromLetters("ADE")}) {
		t.Errorf("removeUCCs(ADE) = %v", got)
	}
	// ABC contains AB and BC; dropping B breaks both, dropping A and C
	// breaks them separately. Maximal reduced sets: AC (drop B) and ...
	// dropping A requires also dropping B or C for BC: {C}, {B}? B alone
	// leaves BC ⊆? No: removing A and C leaves B: contains neither AB nor
	// BC. Maximal results are AC and B.
	got := m.removeUCCs(bitset.FromLetters("ABC"))
	want := []bitset.Set{bitset.FromLetters("B"), bitset.FromLetters("AC")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("removeUCCs(ABC) = %v, want %v", got, want)
	}
	for _, r := range got {
		if m.uccs.CoversSubsetOf(r) {
			t.Errorf("reduced lhs %v still contains a UCC", r)
		}
	}
}

// TestShadowedPaperExample builds a relation realising the shadowed-FD
// example of Sec. 4.3: minimal FD AC → B whose left-hand side spans the
// minimal UCCs and is invisible to the connector look-up. MUDS must find it.
func TestShadowedPaperExample(t *testing.T) {
	// Construct data with minimal UCCs BCD, CDE, AD and the FD AC → B among
	// others. We approximate the example with a small concrete instance and
	// verify against the oracle rather than pinning the exact FD list.
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		rel := randomRelation(rnd, 6, 18, 3)
		verifyMudsMatchesOracles(t, rel, int64(i))
	}
}

func verifyMudsMatchesOracles(t *testing.T, rel *relation.Relation, seed int64) {
	t.Helper()
	res := Muds(rel, Options{Seed: seed})
	p := pli.NewProvider(rel, 0)
	wantFDs := fd.BruteForce(p)
	wantUCCs := ucc.BruteForce(p)
	if !reflect.DeepEqual(res.FDs, wantFDs) {
		t.Fatalf("MUDS FDs mismatch on %v (seed %d):\n got %v\nwant %v\nrows: %v",
			rel.Name(), seed, res.FDs, wantFDs, rel.Rows())
	}
	if !reflect.DeepEqual(res.UCCs, wantUCCs) {
		t.Fatalf("MUDS UCCs mismatch (seed %d): got %v want %v\nrows: %v",
			seed, res.UCCs, wantUCCs, rel.Rows())
	}
}

// TestMudsSmoke runs MUDS on a small hand-made dataset and checks all three
// result kinds.
func TestMudsSmoke(t *testing.T) {
	rel := mustRel(t,
		[]string{"id", "zip", "city", "tag"},
		[][]string{
			{"1", "14482", "Potsdam", "x"},
			{"2", "14482", "Potsdam", "y"},
			{"3", "10115", "Berlin", "x"},
			{"4", "10117", "Berlin", "y"},
			{"5", "10117", "Berlin", "x"},
		})
	res := Muds(rel, Options{Seed: 1})
	// id is the only minimal UCC... id and nothing else? zip+tag: (14482,x),
	// (14482,y),(10115,x),(10117,y),(10117,x) — unique! So UCCs: {id}, {zip,tag}.
	wantUCCs := []bitset.Set{bitset.New(0), bitset.New(1, 3)}
	if !reflect.DeepEqual(res.UCCs, wantUCCs) {
		t.Errorf("UCCs = %v, want %v", res.UCCs, wantUCCs)
	}
	// zip → city must be found.
	found := false
	for _, f := range res.FDs {
		if f.LHS == bitset.New(1) && f.RHS == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("zip → city missing from %v", res.FDs)
	}
	// Phases are present and named like Figure 8.
	if res.PhaseDuration(PhaseSpider) < 0 || len(res.Phases) < 4 {
		t.Errorf("unexpected phases: %+v", res.Phases)
	}
	verifyMudsMatchesOracles(t, rel, 1)
}

func TestMudsDegenerate(t *testing.T) {
	// Single-row relation: all columns constant; every column a minimal UCC.
	rel := mustRel(t, []string{"A", "B"}, [][]string{{"x", "y"}})
	res := Muds(rel, Options{})
	wantFDs := []fd.FD{{LHS: bitset.Set{}, RHS: 0}, {LHS: bitset.Set{}, RHS: 1}}
	if !reflect.DeepEqual(res.FDs, wantFDs) {
		t.Errorf("FDs = %v, want %v", res.FDs, wantFDs)
	}
	wantUCCs := []bitset.Set{bitset.New(0), bitset.New(1)}
	if !reflect.DeepEqual(res.UCCs, wantUCCs) {
		t.Errorf("UCCs = %v, want %v", res.UCCs, wantUCCs)
	}
}

func TestMudsConstantColumns(t *testing.T) {
	rel := mustRel(t, []string{"A", "B", "C"}, [][]string{
		{"k", "1", "x"},
		{"k", "2", "x"},
		{"k", "3", "y"},
	})
	verifyMudsMatchesOracles(t, rel, 0)
}

// Property: MUDS agrees with the brute-force FD and UCC oracles and with
// SPIDER for INDs on random relations, for arbitrary seeds.
func TestQuickMudsMatchesOracles(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRelation(rnd, 6, 30, 4))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(rel *relation.Relation, seed int64) bool {
		res := Muds(rel, Options{Seed: seed})
		p := pli.NewProvider(rel, 0)
		return reflect.DeepEqual(res.FDs, fd.BruteForce(p)) &&
			reflect.DeepEqual(res.UCCs, ucc.BruteForce(p))
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestCrossCheckSeedSweep hammers MUDS against the oracles across many fixed
// seeds and relation shapes, including shapes likely to produce shadowed FDs
// (more columns, low cardinality).
func TestCrossCheckSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 400; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		rel := randomRelation(rnd, 7, 24, 3)
		verifyMudsMatchesOracles(t, rel, seed)
	}
}

// TestStrategiesAgree verifies that all four strategies produce identical
// FDs (and identical UCCs where the strategy reports them).
func TestStrategiesAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 25; i++ {
		rel := randomRelation(rnd, 6, 25, 4)
		src := RelationSource{Rel: rel}
		muds, err := Run(StrategyMuds, src, Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		hfun, err := Run(StrategyHolisticFun, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(StrategyBaseline, src, Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tane, err := Run(StrategyTane, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fdfirst, err := Run(StrategyFDFirst, src, Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(muds.FDs, hfun.FDs) || !reflect.DeepEqual(muds.FDs, base.FDs) ||
			!reflect.DeepEqual(muds.FDs, tane.FDs) || !reflect.DeepEqual(muds.FDs, fdfirst.FDs) {
			t.Fatalf("FD mismatch across strategies on run %d\nmuds: %v\nhfun: %v\nbase: %v\ntane: %v\nfdfirst: %v",
				i, muds.FDs, hfun.FDs, base.FDs, tane.FDs, fdfirst.FDs)
		}
		if !reflect.DeepEqual(muds.UCCs, hfun.UCCs) || !reflect.DeepEqual(muds.UCCs, base.UCCs) ||
			!reflect.DeepEqual(muds.UCCs, fdfirst.UCCs) {
			t.Fatalf("UCC mismatch across strategies on run %d\nmuds: %v\nfdfirst: %v",
				i, muds.UCCs, fdfirst.UCCs)
		}
		if !reflect.DeepEqual(muds.INDs, hfun.INDs) || !reflect.DeepEqual(muds.INDs, base.INDs) {
			t.Fatalf("IND mismatch across strategies on run %d", i)
		}
		if fdfirst.PhaseDuration(PhaseUCCInference) < 0 {
			t.Fatal("fdfirst must report the inference phase")
		}
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	_, err := Run("nope", RelationSource{Rel: mustRel(t, []string{"A"}, [][]string{{"1"}})}, Options{})
	if err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Phases: []Phase{{Name: "a", Duration: 2}, {Name: "b", Duration: 3}, {Name: "a", Duration: 5}}}
	if r.Total() != 10 {
		t.Errorf("Total = %v", r.Total())
	}
	if r.PhaseDuration("a") != 7 {
		t.Errorf("PhaseDuration(a) = %v", r.PhaseDuration("a"))
	}
	if r.PhaseDuration("zzz") != 0 {
		t.Errorf("PhaseDuration(zzz) = %v", r.PhaseDuration("zzz"))
	}
}
