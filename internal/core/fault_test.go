package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"holistic/internal/dataset"
	"holistic/internal/faults"
	"holistic/internal/relation"
)

// registerPanicStrategy installs a strategy that always panics, for proving
// the engine's isolation without faking faults in real algorithms. It is
// removed again on cleanup so tests that enumerate the registry (exact
// registry contents, worker-count equivalence over Strategies()) never see
// it, regardless of test ordering.
func registerPanicStrategy(t *testing.T) {
	t.Helper()
	Register(strategyFunc{"panictest", func(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
		obs.PhaseStart("boom")
		panic("panictest exploded")
	}})
	t.Cleanup(func() { unregisterStrategy("panictest") })
}

// unregisterStrategy removes a test-registered strategy from the global
// registry (test support only; production registration is permanent).
func unregisterStrategy(name string) {
	delete(registry.byName, name)
	for i, n := range registry.order {
		if n == name {
			registry.order = append(registry.order[:i], registry.order[i+1:]...)
			break
		}
	}
}

// TestPanickingStrategyIsolated is the engine's panic-isolation contract: a
// panicking strategy surfaces as a *PanicError with the captured stack and a
// partial result carrying the completeness markers — never as an unwound
// caller goroutine.
func TestPanickingStrategyIsolated(t *testing.T) {
	registerPanicStrategy(t)
	rel := dataset.NCVoter(50, 4)
	res, err := RunContext(context.Background(), "panictest", RelationSource{Rel: rel}, Options{}, nil)

	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Strategy != "panictest" || !strings.Contains(pe.Error(), "panictest exploded") {
		t.Fatalf("PanicError = %v, want strategy and panic value named", pe)
	}
	if !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("PanicError.Stack does not look like a stack trace:\n%s", pe.Stack)
	}
	if res == nil || !res.Partial {
		t.Fatal("panicked run must return a partial result")
	}
	if res.Completeness == nil || res.Completeness.InterruptedPhase != "boom" {
		t.Fatalf("completeness = %+v, want interrupted phase \"boom\"", res.Completeness)
	}
}

// TestWorkerPanicCrossesPoolBoundary injects a panic into a PLI intersection
// running inside the worker pool: it must come back as a *PanicError that
// unwraps to the injected fault, with the worker's own stack preserved.
func TestWorkerPanicCrossesPoolBoundary(t *testing.T) {
	faults.Enable(faults.PLIIntersect, faults.ModePanic, 1)
	t.Cleanup(faults.Reset)

	rel := dataset.NCVoter(200, 6)
	res, err := RunContext(context.Background(), StrategyMuds, RelationSource{Rel: rel}, Options{Workers: 4}, nil)

	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if !faults.IsInjected(err) {
		t.Fatalf("injected fault not classifiable through the panic chain: %v", err)
	}
	if !strings.Contains(pe.Stack, "holistic/internal/pli") {
		t.Fatalf("stack lost the panicking frame:\n%s", pe.Stack)
	}
	if res == nil || !res.Partial {
		t.Fatal("panicked run must return a partial result")
	}
}

// TestCacheBudgetEquivalence is the memory governor's acceptance criterion:
// shrinking the PLI byte budget to a tiny fraction of a run's working set
// forces shedding and recomputation but yields byte-identical IND/UCC/FD
// sets for every strategy.
func TestCacheBudgetEquivalence(t *testing.T) {
	rel := dataset.NCVoter(500, 10)
	src := RelationSource{Rel: rel}
	for _, strategy := range Strategies() {
		reference, err := RunContext(context.Background(), strategy, src, Options{Seed: 3, MaxCacheBytes: -1}, nil)
		if err != nil {
			t.Fatalf("%s unbudgeted: %v", strategy, err)
		}
		// A budget of a few KiB is far below this workload's PLI footprint,
		// so the cache must shed constantly.
		budgeted, err := RunContext(context.Background(), strategy, src, Options{Seed: 3, MaxCacheBytes: 4 << 10}, nil)
		if err != nil {
			t.Fatalf("%s budgeted: %v", strategy, err)
		}
		if !reflect.DeepEqual(budgeted.INDs, reference.INDs) ||
			!reflect.DeepEqual(budgeted.UCCs, reference.UCCs) ||
			!reflect.DeepEqual(budgeted.FDs, reference.FDs) {
			t.Errorf("%s: budgeted results differ from unbudgeted", strategy)
		}
		var bytes int64
		for _, c := range budgeted.Cache {
			if c.Bytes > bytes {
				bytes = c.Bytes
			}
		}
		if bytes > 4<<10 {
			t.Errorf("%s: final cache holds %d bytes, budget is %d", strategy, bytes, 4<<10)
		}
	}
}

// TestCacheFaultDegradation proves the cache fault points degrade rather than
// fail: with every get a forced miss and every put dropped, runs succeed with
// identical results (recomputation replaces reuse).
func TestCacheFaultDegradation(t *testing.T) {
	rel := dataset.NCVoter(300, 8)
	src := RelationSource{Rel: rel}
	clean, err := RunContext(context.Background(), StrategyMuds, src, Options{Seed: 5}, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	faults.Enable(faults.CacheGet, faults.ModeError, 0)
	faults.Enable(faults.CachePut, faults.ModeError, 0)
	t.Cleanup(faults.Reset)
	degraded, err := RunContext(context.Background(), StrategyMuds, src, Options{Seed: 5}, nil)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if !reflect.DeepEqual(degraded.INDs, clean.INDs) ||
		!reflect.DeepEqual(degraded.UCCs, clean.UCCs) ||
		!reflect.DeepEqual(degraded.FDs, clean.FDs) {
		t.Error("cache-degraded results differ from clean run")
	}
	if faults.Fired(faults.CacheGet) == 0 {
		t.Error("cache.get fault never fired; degradation not exercised")
	}
}

// TestTinyBudgetStillUsesProvider guards against the governor silently
// disabling caching altogether: even under a 1-byte budget the single-column
// PLIs (outside the cache) keep the provider functional.
func TestTinyBudgetStillUsesProvider(t *testing.T) {
	rel := dataset.NCVoter(100, 5)
	res, err := RunContext(context.Background(), StrategyMuds, RelationSource{Rel: rel}, Options{MaxCacheBytes: 1}, nil)
	if err != nil {
		t.Fatalf("1-byte budget run: %v", err)
	}
	if len(res.FDs) == 0 && len(res.UCCs) == 0 {
		t.Fatal("1-byte budget run found nothing; provider broken under extreme budget")
	}
	for _, c := range res.Cache {
		if c.Entries != 0 {
			t.Fatalf("1-byte budget retained %d cached PLIs", c.Entries)
		}
	}
}

// TestPartialReportRoundTrip checks Partial/Completeness survive the
// Result → Report conversion.
func TestPartialReportRoundTrip(t *testing.T) {
	rel := dataset.NCVoter(50, 4)
	res := &Result{Partial: true, Completeness: &Completeness{CompletedPhases: []string{"SPIDER"}, InterruptedPhase: "DUCC"}}
	rep := NewReport(rel, res, false)
	if !rep.Partial {
		t.Fatal("report lost the partial flag")
	}
	if rep.Completeness == nil || rep.Completeness.InterruptedPhase != "DUCC" || len(rep.Completeness.CompletedPhases) != 1 {
		t.Fatalf("report completeness = %+v", rep.Completeness)
	}
}
