package core

import (
	"holistic/internal/relation"
)

// Source supplies the input relation of a profiling run. Load is called once
// per algorithm that needs the data, so the sequential baseline — which runs
// three independent algorithms — pays the input cost three times, exactly
// the I/O duplication the holistic algorithms eliminate (paper Sec. 3).
type Source interface {
	// Name identifies the dataset.
	Name() string
	// Load parses/encodes the input and returns a fresh relation.
	Load() (*relation.Relation, error)
}

// RelationSource wraps an already-loaded relation; Load re-encodes it from
// its rows to simulate an input pass, so baseline-vs-holistic comparisons on
// in-memory data still reflect shared-I/O savings.
type RelationSource struct {
	Rel *relation.Relation
}

// Name implements Source.
func (s RelationSource) Name() string { return s.Rel.Name() }

// Load implements Source by re-encoding the relation.
func (s RelationSource) Load() (*relation.Relation, error) {
	return relation.New(s.Rel.Name(), s.Rel.ColumnNames(), s.Rel.Rows())
}

// MemoSource caches the first Load of an inner Source so that callers who
// need the relation again after a run (result reporting, statistics) do not
// pay a second parse/encode pass. It deliberately breaks the "fresh relation
// per Load" contract the sequential baseline relies on — the engine hands
// strategies the already-loaded relation and the baseline re-encodes via
// RelationSource internally, so memoisation is safe at the engine boundary.
// Not safe for concurrent use.
type MemoSource struct {
	Src    Source
	rel    *relation.Relation
	err    error
	loaded bool
}

// Name implements Source.
func (m *MemoSource) Name() string { return m.Src.Name() }

// Load implements Source, delegating once and replaying the outcome.
func (m *MemoSource) Load() (*relation.Relation, error) {
	if !m.loaded {
		m.rel, m.err = m.Src.Load()
		m.loaded = true
	}
	return m.rel, m.err
}

// Relation returns the memoised relation (nil before the first successful
// Load).
func (m *MemoSource) Relation() *relation.Relation { return m.rel }

// CSVSource loads a relation from a CSV file on every call.
type CSVSource struct {
	Path    string
	Options relation.CSVOptions
}

// Name implements Source.
func (s CSVSource) Name() string { return s.Path }

// Load implements Source.
func (s CSVSource) Load() (*relation.Relation, error) {
	return relation.ReadCSVFile(s.Path, s.Options)
}
