package core

import (
	"holistic/internal/relation"
)

// Source supplies the input relation of a profiling run. Load is called once
// per algorithm that needs the data, so the sequential baseline — which runs
// three independent algorithms — pays the input cost three times, exactly
// the I/O duplication the holistic algorithms eliminate (paper Sec. 3).
type Source interface {
	// Name identifies the dataset.
	Name() string
	// Load parses/encodes the input and returns a fresh relation.
	Load() (*relation.Relation, error)
}

// RelationSource wraps an already-loaded relation; Load re-encodes it from
// its rows to simulate an input pass, so baseline-vs-holistic comparisons on
// in-memory data still reflect shared-I/O savings.
type RelationSource struct {
	Rel *relation.Relation
}

// Name implements Source.
func (s RelationSource) Name() string { return s.Rel.Name() }

// Load implements Source by re-encoding the relation.
func (s RelationSource) Load() (*relation.Relation, error) {
	return relation.New(s.Rel.Name(), s.Rel.ColumnNames(), s.Rel.Rows())
}

// MemoSource caches the first Load of an inner Source so that callers who
// need the relation again after a run (result reporting, statistics) do not
// pay a second parse/encode pass. It deliberately breaks the "fresh relation
// per Load" contract the sequential baseline relies on — the engine hands
// strategies the already-loaded relation and the baseline re-encodes via
// RelationSource internally, so memoisation is safe at the engine boundary.
// Not safe for concurrent use.
type MemoSource struct {
	Src Source
	rel *relation.Relation
}

// Name implements Source.
func (m *MemoSource) Name() string { return m.Src.Name() }

// Load implements Source, delegating once and replaying the outcome. Only a
// successful load is memoised: a failed one (e.g. a transient I/O error) is
// re-attempted on the next call, so retry loops above the engine get a fresh
// chance instead of replaying the cached failure.
func (m *MemoSource) Load() (*relation.Relation, error) {
	if m.rel != nil {
		return m.rel, nil
	}
	rel, err := m.Src.Load()
	if err != nil {
		return nil, err
	}
	m.rel = rel
	return m.rel, nil
}

// Relation returns the memoised relation (nil before the first successful
// Load).
func (m *MemoSource) Relation() *relation.Relation { return m.rel }

// CSVSource loads a relation from a CSV file on every call.
type CSVSource struct {
	Path    string
	Options relation.CSVOptions
}

// Name implements Source.
func (s CSVSource) Name() string { return s.Path }

// Load implements Source.
func (s CSVSource) Load() (*relation.Relation, error) {
	return relation.ReadCSVFile(s.Path, s.Options)
}
