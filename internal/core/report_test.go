package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	rel := mustRel(t, []string{"id", "code", "desc"}, [][]string{
		{"1", "a", "alpha"},
		{"2", "a", "alpha"},
		{"3", "b", "beta"},
	})
	res := Muds(rel, Options{Seed: 1})
	rep := NewReport(rel, res, true)

	if rep.Rows != 3 || len(rep.Columns) != 3 {
		t.Fatalf("shape: %+v", rep)
	}
	if len(rep.UCCs) == 0 || rep.UCCs[0][0] != "id" {
		t.Errorf("UCCs = %v", rep.UCCs)
	}
	foundCodeDesc := false
	for _, f := range rep.FDs {
		if len(f.LHS) == 1 && f.LHS[0] == "code" && f.RHS == "desc" {
			foundCodeDesc = true
		}
	}
	if !foundCodeDesc {
		t.Errorf("code → desc missing from %v", rep.FDs)
	}
	if len(rep.Stats) != 3 {
		t.Errorf("stats = %v", rep.Stats)
	}
	if rep.TotalSeconds <= 0 {
		t.Error("total must be positive")
	}

	// JSON round trip.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dataset != rep.Dataset || len(back.FDs) != len(rep.FDs) {
		t.Error("round trip mismatch")
	}
	if !strings.Contains(string(data), `"uccs"`) {
		t.Error("expected uccs key in JSON")
	}
}

func TestReportWithoutStats(t *testing.T) {
	rel := mustRel(t, []string{"a"}, [][]string{{"1"}, {"2"}})
	rep := NewReport(rel, Muds(rel, Options{}), false)
	if rep.Stats != nil {
		t.Error("stats should be omitted")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"stats"`) {
		t.Error("stats key should be omitted from JSON")
	}
	// Empty dependency lists serialise as [] rather than null.
	if strings.Contains(string(data), `"inds":null`) {
		t.Error("inds should serialise as []")
	}
}
