package core

import (
	"holistic/internal/bitset"
	"holistic/internal/settrie"
)

// This file implements the third FD phase of MUDS (paper Secs. 4.3 and 5.3):
// shadowed FDs. Left-hand sides that mix columns of several minimal UCCs (or
// of R \ Z) are never proposed by the connector look-up; they are recovered
// by extending the left-hand sides of already-discovered FDs with the
// attributes their sub-connectors determine (Algorithm 2), stripping
// UCC-contained parts (Algorithm 3), and minimising the resulting candidates
// top-down (Algorithm 4).
//
// The paper runs one generation pass; we iterate generation + minimisation
// until no new FD appears, because freshly minimised FDs can expose further
// shadowed left-hand sides. The fixpoint is a strict superset of the single
// pass and is required for completeness (verified against a brute-force
// oracle by the property tests).

// shadowTask is one (left-hand side, right-hand sides) minimisation task.
type shadowTask struct {
	lhs bitset.Set
	rhs bitset.Set
}

// generateShadowedTasks implements Algorithm 2: derive candidate shadowed
// left-hand sides from every known FD and validate them immediately ("each
// task immediately checks if the FD holds", Sec. 6.4). Only tasks with at
// least one validated right-hand side survive.
func (m *mudsFD) generateShadowedTasks() []shadowTask {
	merged := make(map[bitset.Set]bitset.Set) // candidate lhs → rhs attrs to minimise

	// Algorithm 2 iterates over all subsets of every left-hand side and looks
	// up FDs[connector]; only connectors that are themselves stored left-hand
	// sides contribute shadowed attributes, so the subset enumeration is
	// served by a prefix tree over the stored left-hand sides (Sec. 5.4) —
	// same semantics, without enumerating 2^|lhs| empty look-ups.
	var lhsTrie settrie.Trie
	for _, lhs := range m.store.LHSs() {
		lhsTrie.Add(lhs)
	}

	// Distinct extended left-hand sides with the union of their target
	// right-hand sides: many (FD, connector) pairs produce the same newLhs,
	// so the expensive UCC-stripping runs once per distinct set.
	targets := make(map[bitset.Set]bitset.Set)
	m.store.ForEach(func(flhs, frhs bitset.Set) bool {
		if m.aborted() {
			return false
		}
		if flhs.IsEmpty() {
			return true // constant columns shadow nothing
		}
		for _, connector := range lhsTrie.SubsetsOf(flhs) {
			shadowedRhs := m.store.RHS(connector)
			// Constant columns never belong to a minimal left-hand side.
			newLhs := flhs.Union(shadowedRhs).Intersect(m.working)
			if newLhs == flhs {
				continue // nothing shadowed; flhs is already minimised
			}
			targets[newLhs] = targets[newLhs].Union(frhs)
		}
		return true
	})
	newLhss := make([]bitset.Set, 0, len(targets))
	for lhs := range targets {
		newLhss = append(newLhss, lhs)
	}
	bitset.Sort(newLhss)
	for _, newLhs := range newLhss {
		if m.aborted() {
			return nil
		}
		frhs := targets[newLhs]
		for _, reduced := range m.removeUCCsCached(newLhs) {
			for a := frhs.First(); a >= 0; a = frhs.NextAfter(a) {
				lhs := reduced.Without(a)
				if lhs.IsEmpty() {
					continue
				}
				merged[lhs] = merged[lhs].With(a)
			}
		}
	}

	var tasks []shadowTask
	lhss := make([]bitset.Set, 0, len(merged))
	for lhs := range merged {
		lhss = append(lhss, lhs)
	}
	bitset.Sort(lhss)
	for _, lhs := range lhss {
		if m.aborted() {
			return tasks
		}
		rhs := merged[lhs].Diff(lhs).Diff(m.shadowSeen[lhs])
		if rhs.IsEmpty() {
			continue // candidate already generated in an earlier round
		}
		m.shadowSeen[lhs] = m.shadowSeen[lhs].Union(rhs)
		valid := m.checkFDs(lhs, rhs)
		if !valid.IsEmpty() {
			tasks = append(tasks, shadowTask{lhs: lhs, rhs: valid})
		}
	}
	return tasks
}

// removeUCCBranchLimit bounds the branch-and-strip enumeration of
// Algorithm 3. Left-hand sides of shadow candidates can contain hundreds of
// minimal UCCs on key-dense datasets, making the exact enumeration
// exponential; the shadowed phase only *seeds* the completion sweep, so a
// bounded (deterministic) enumeration sacrifices no correctness.
const removeUCCBranchLimit = 2048

// removeUCCsCached memoises removeUCCs per left-hand side; the minimal UCCs
// never change during the FD part, so cached results stay valid across the
// fixpoint rounds.
func (m *mudsFD) removeUCCsCached(lhs bitset.Set) []bitset.Set {
	if cached, ok := m.removeUCCCache[lhs]; ok {
		return cached
	}
	out := m.removeUCCs(lhs)
	m.removeUCCCache[lhs] = out
	return out
}

// removeUCCs implements Algorithm 3: split a left-hand side into the maximal
// reduced left-hand sides that contain no complete minimal UCC (a left-hand
// side containing a UCC can never yield a minimal FD). For every contained
// UCC one of its columns must be dropped; the branching enumerates the
// alternatives, bounded by removeUCCBranchLimit expansions.
func (m *mudsFD) removeUCCs(lhs bitset.Set) []bitset.Set {
	contained := m.uccs.SubsetsOf(lhs)
	if len(contained) == 0 {
		return []bitset.Set{lhs}
	}
	var acc settrie.MaximalFamily
	type task struct {
		pos     int
		removed bitset.Set
	}
	queue := []task{{}}
	budget := removeUCCBranchLimit
	for len(queue) > 0 && budget > 0 {
		budget--
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if t.pos >= len(contained) {
			acc.Add(lhs.Diff(t.removed))
			continue
		}
		u := contained[t.pos]
		if t.removed.Intersects(u) {
			// This UCC is already broken by an earlier removal.
			queue = append(queue, task{pos: t.pos + 1, removed: t.removed})
			continue
		}
		for c := u.First(); c >= 0; c = u.NextAfter(c) {
			queue = append(queue, task{pos: t.pos + 1, removed: t.removed.With(c)})
		}
	}
	out := acc.All()
	bitset.Sort(out)
	return out
}

// minimizeShadowed implements Algorithm 4: top-down minimisation of the
// validated shadow tasks. Every direct subset is checked for every pending
// right-hand side, so the emitted FDs are verified minimal by construction.
func (m *mudsFD) minimizeShadowed(tasks []shadowTask) {
	queue := tasks
	for len(queue) > 0 {
		if m.aborted() {
			return
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		newRhs := t.rhs.Diff(m.shadowProcessed[t.lhs])
		if newRhs.IsEmpty() {
			continue
		}
		m.shadowProcessed[t.lhs] = m.shadowProcessed[t.lhs].Union(newRhs)

		currentRhs := newRhs
		for _, s := range directNonEmptySubsets(t.lhs) {
			valid := m.checkFDs(s, newRhs)
			currentRhs = currentRhs.Diff(valid)
			if !valid.IsEmpty() {
				queue = append(queue, shadowTask{lhs: s, rhs: valid})
			}
		}
		for a := currentRhs.First(); a >= 0; a = currentRhs.NextAfter(a) {
			m.emit(t.lhs, a)
		}
	}
}
