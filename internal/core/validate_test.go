package core

import (
	"context"
	"reflect"
	"testing"

	"holistic/internal/dataset"
	"holistic/internal/relation"
)

// TestFastPathConfigEquivalence is the validation fast path's determinism
// contract at engine level: every strategy discovers identical IND/UCC/FD
// sets no matter how the checks are answered — sampled prefilter on or off,
// one worker or many, default cache or a starved one that forces constant
// re-planning and eviction of the fast path's promoted ancestors. Run under
// -race this also exercises concurrent fast checks against the sharded
// cache. (Check counts are NOT compared across cache configurations: how
// often the engine asks is part of the plan; what it discovers must not be.)
func TestFastPathConfigEquivalence(t *testing.T) {
	rels := []*relation.Relation{
		dataset.NCVoter(600, 10),
		dataset.Uniprot(1500),
	}
	type config struct {
		name string
		opts Options
	}
	configs := []config{
		{"sampled", Options{Seed: 11, Workers: 1, SampleCheck: true}},
		{"parallel", Options{Seed: 11, Workers: 4}},
		{"parallel-sampled", Options{Seed: 11, Workers: 4, SampleCheck: true}},
		{"starved-cache", Options{Seed: 11, Workers: 1, CacheEntries: 8, MaxCacheBytes: 1 << 16}},
	}
	for _, rel := range rels {
		src := RelationSource{Rel: rel}
		for _, strategy := range Strategies() {
			baseline, err := RunContext(context.Background(), strategy, src, Options{Seed: 11, Workers: 1}, nil)
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", rel.Name(), strategy, err)
			}
			for _, cfg := range configs {
				got, err := RunContext(context.Background(), strategy, src, cfg.opts, nil)
				if err != nil {
					t.Fatalf("%s/%s %s: %v", rel.Name(), strategy, cfg.name, err)
				}
				if !reflect.DeepEqual(got.FDs, baseline.FDs) {
					t.Errorf("%s/%s %s: FDs differ from baseline (%d vs %d)",
						rel.Name(), strategy, cfg.name, len(got.FDs), len(baseline.FDs))
				}
				if !reflect.DeepEqual(got.UCCs, baseline.UCCs) {
					t.Errorf("%s/%s %s: UCCs differ from baseline (%d vs %d)",
						rel.Name(), strategy, cfg.name, len(got.UCCs), len(baseline.UCCs))
				}
				if !reflect.DeepEqual(got.INDs, baseline.INDs) {
					t.Errorf("%s/%s %s: INDs differ from baseline (%d vs %d)",
						rel.Name(), strategy, cfg.name, len(got.INDs), len(baseline.INDs))
				}
			}
		}
	}
}

// TestFastPathCountersSurface proves the new CacheStats counters flow
// through the engine's Report plumbing: a MUDS run is validation-dominated,
// so it must report fast checks, and its cache must stay far below what the
// old materialize-every-check policy would have admitted.
func TestFastPathCountersSurface(t *testing.T) {
	rel := dataset.NCVoter(800, 12)
	res, err := MudsContext(context.Background(), rel, Options{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cache) == 0 {
		t.Fatal("no cache stats in the report")
	}
	st := res.Cache[0]
	if st.FastChecks == 0 {
		t.Error("MUDS run reports zero FastChecks — the fast path is not wired in")
	}
	if st.Materializations > st.FastChecks {
		t.Errorf("materializations (%d) exceed fast checks (%d): admission control is not limiting promotions",
			st.Materializations, st.FastChecks)
	}
}
