// Package core implements the paper's primary contribution: the holistic
// profiling algorithm MUDS (paper Secs. 4 and 5), which jointly discovers
// unary INDs, minimal UCCs and minimal FDs with inter-task pruning, plus the
// comparison strategies of the evaluation (sequential baseline, Holistic
// FUN, TANE) behind a uniform runner interface.
package core

import (
	"time"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
)

// Phase is one timed stage of a profiling run. The phase names of a MUDS run
// match Figure 8 of the paper.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Result is the holistic profiling output: all three metadata types plus
// per-phase timings.
type Result struct {
	// INDs are the unary inclusion dependencies, sorted.
	INDs []ind.IND
	// UCCs are the minimal unique column combinations, sorted.
	UCCs []bitset.Set
	// FDs are the minimal functional dependencies, sorted. Constant columns
	// appear as ∅ → A.
	FDs []fd.FD
	// Phases holds the timed stages in execution order.
	Phases []Phase
	// Checks counts data-touching validity checks (uniqueness tests,
	// partition refinements) across all phases.
	Checks int
	// Algorithm is the registry name of the strategy that produced the
	// result ("muds", "tane", ...). The engine fills it from the registry.
	Algorithm string
	// Cache holds one PLI-cache snapshot per provider the run retired, in
	// reporting order (the sequential baseline reports several). The engine
	// assembles it from the Observer's CacheStats events.
	Cache []pli.CacheStats
	// Partial marks an anytime result: the run stopped early (deadline,
	// cancellation, panic, strategy error) and the dependency lists hold
	// only what was confirmed up to that point. Every dependency present is
	// still valid — the pruning-based algorithms only emit verified minimal
	// dependencies — but the lists may be incomplete. The engine sets it.
	Partial bool
	// Completeness describes how far a partial run got; nil on complete
	// runs.
	Completeness *Completeness
}

// Completeness is the per-task progress marker of a partial result: which
// phases ran to completion and which one the run was interrupted in. The
// phase names identify the task coverage — a MUDS run interrupted in
// "calculateRZ" has complete INDs and UCCs but only partially swept FDs; one
// interrupted in "DUCC" has complete INDs and a partial UCC walk.
type Completeness struct {
	// CompletedPhases lists the phases that ran to completion, in order.
	CompletedPhases []string `json:"completed_phases"`
	// InterruptedPhase names the phase the run stopped inside, if any.
	InterruptedPhase string `json:"interrupted_phase,omitempty"`
}

// Total returns the summed duration of all phases.
func (r *Result) Total() time.Duration {
	var t time.Duration
	for _, p := range r.Phases {
		t += p.Duration
	}
	return t
}

// PhaseDuration returns the duration of the named phase (0 if absent).
// Repeated phases (fixpoint rounds) are summed.
func (r *Result) PhaseDuration(name string) time.Duration {
	var t time.Duration
	for _, p := range r.Phases {
		if p.Name == name {
			t += p.Duration
		}
	}
	return t
}

// Canonical MUDS phase names (Figure 8 of the paper).
const (
	PhaseSpider           = "SPIDER"
	PhaseDucc             = "DUCC"
	PhaseMinimizeFDs      = "minimizeFDs"
	PhaseCalculateRZ      = "calculateRZ"
	PhaseGenerateShadowed = "generateShadowedTasks"
	PhaseMinimizeShadowed = "minimizeShadowedTasks"
	PhaseCompletionSweep  = "completionSweep"
	PhaseLoad             = "load"
	PhaseFDDiscovery      = "fdDiscovery"  // FUN/TANE runs (non-MUDS)
	PhaseUCCDiscovery     = "uccDiscovery" // DUCC in the sequential baseline
	PhaseUCCInference     = "uccInference" // Lemma-2 key derivation (fdfirst)
)

// Phase names of an incremental (batch-append) run. They partition the work
// the same way Figure 8 partitions a full run: fold the batch into the data
// structures, re-check the prior metadata, then repair only what broke.
const (
	PhaseAppend     = "append"     // relation extension + PLI patch + provider refresh
	PhaseRevalidate = "revalidate" // re-check prior UCCs/FDs on the extended relation
	PhaseUCCRepair  = "uccRepair"  // seeded DUCC restart over the invalidated region
	PhaseFDRepair   = "fdRepair"   // per-RHS seeded lattice repair
	PhaseINDDelta   = "indDelta"   // missing-matrix delta (or full SPIDER fallback)
)
