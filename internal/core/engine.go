package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"holistic/internal/parallel"
	"holistic/internal/pli"
	"holistic/internal/relation"
)

// Strategy is one pluggable profiling algorithm. Implementations receive an
// already-loaded relation and report progress (phase boundaries, check
// counts, cache statistics) through the Observer; the engine harness owns
// loading, phase-duration bookkeeping and check totals, so Profile fills
// only the dependency lists of its Result.
//
// Profile must poll ctx inside its long traversals and return ctx.Err()
// promptly when the context is cancelled, together with whatever partial
// result exists at that point.
type Strategy interface {
	// Name is the registry key (e.g. "muds").
	Name() string
	// Profile runs the strategy on rel.
	Profile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error)
}

// strategyFunc adapts a plain function to the Strategy interface.
type strategyFunc struct {
	name string
	fn   func(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error)
}

func (s strategyFunc) Name() string { return s.name }

func (s strategyFunc) Profile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	return s.fn(ctx, rel, opts, obs)
}

// The registry maps strategy names to implementations. Registration order is
// preserved: Strategies() lists names in the order they were registered, so
// the default strategy (MUDS, registered first) leads the help texts derived
// from it.
var registry = struct {
	order  []string
	byName map[string]Strategy
}{byName: make(map[string]Strategy)}

// Register adds a strategy to the registry. It panics on a duplicate name —
// registration happens from init functions, where a collision is a
// programming error.
func Register(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("core: Register with empty strategy name")
	}
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("core: duplicate strategy %q", name))
	}
	registry.byName[name] = s
	registry.order = append(registry.order, name)
}

// Lookup returns the registered strategy with the given name.
func Lookup(name string) (Strategy, bool) {
	s, ok := registry.byName[name]
	return s, ok
}

// Strategies lists the registered strategy names in registration order. CLI
// help texts and validation derive from this list, so it cannot drift from
// what Run accepts.
func Strategies() []string {
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// unknownStrategyError builds the error for a name missing from the registry.
func unknownStrategyError(name string) error {
	return fmt.Errorf("core: unknown strategy %q (want one of %v)", name, Strategies())
}

// recorder is the engine-installed Observer: it assembles Result.Phases and
// Result.Checks from the phase/check events while forwarding every event to
// the user's observer. Durations of repeated phases (fixpoint rounds, the
// baseline's extra input passes) are merged into one entry at the phase's
// first position, matching the paper's Figure 8 layout.
type recorder struct {
	user   Observer
	phases []Phase
	index  map[string]int
	checks int
	cache  []pli.CacheStats
	// current is the phase that has started but not yet ended; a run that
	// stops early reports it as the interrupted phase of its Completeness.
	current string
}

func newRecorder(user Observer) *recorder {
	if user == nil {
		user = NopObserver{}
	}
	return &recorder{user: user, index: make(map[string]int)}
}

func (r *recorder) PhaseStart(name string) {
	r.current = name
	r.user.PhaseStart(name)
}

func (r *recorder) PhaseEnd(name string, d time.Duration) {
	if r.current == name {
		r.current = ""
	}
	if i, ok := r.index[name]; ok {
		r.phases[i].Duration += d
	} else {
		r.index[name] = len(r.phases)
		r.phases = append(r.phases, Phase{Name: name, Duration: d})
	}
	r.user.PhaseEnd(name, d)
}

func (r *recorder) Checks(delta int) {
	r.checks += delta
	r.user.Checks(delta)
}

func (r *recorder) CacheStats(stats pli.CacheStats) {
	r.cache = append(r.cache, stats)
	r.user.CacheStats(stats)
}

func (r *recorder) Parallelism(phase string, workers int) { r.user.Parallelism(phase, workers) }

// finish writes the accumulated phases, checks and cache snapshots into res.
func (r *recorder) finish(res *Result) {
	res.Phases = r.phases
	res.Checks = r.checks
	res.Cache = r.cache
}

// completeness snapshots how far the run got: the phases that completed and
// the one it stopped inside, if any.
func (r *recorder) completeness() *Completeness {
	c := &Completeness{InterruptedPhase: r.current}
	for _, p := range r.phases {
		c.CompletedPhases = append(c.CompletedPhases, p.Name)
	}
	return c
}

// timePhase runs fn as the named phase, reporting its boundaries and wall
// time to obs. It refuses to start a phase on a dead context, so a cancelled
// run stops at the next phase boundary even if fn never polls ctx.
func timePhase(ctx context.Context, obs Observer, name string, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	obs.PhaseStart(name)
	start := time.Now()
	err := fn()
	obs.PhaseEnd(name, time.Since(start))
	return err
}

// Run executes the named profiling strategy on src without a deadline.
func Run(strategy string, src Source, opts Options) (*Result, error) {
	return RunContext(context.Background(), strategy, src, opts, nil)
}

// RunContext is the engine's entry point: it resolves the strategy in the
// registry (failing fast, before any input is read), loads the input once as
// the timed "load" phase, and runs the strategy with a recorder that
// assembles Result.Phases and Result.Checks from the observer events.
//
// obs may be nil. When ctx is cancelled or its deadline passes, the run
// stops promptly and returns the partial result — dependency lists found so
// far plus the phase timings — together with ctx.Err(). The returned
// Result's Partial flag and Completeness record how far the run got.
//
// Panics anywhere inside the run (the loader, the strategy, a parallel
// worker task) are recovered and converted into a *PanicError with the
// captured stack; the engine never lets a profiling panic escape to the
// caller's goroutine.
func RunContext(ctx context.Context, strategy string, src Source, opts Options, obs Observer) (*Result, error) {
	s, ok := Lookup(strategy)
	if !ok {
		return nil, unknownStrategyError(strategy)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rec := newRecorder(obs)
	var rel *relation.Relation
	err := timePhase(ctx, rec, PhaseLoad, func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = recoveredError(s.Name(), r)
			}
		}()
		rel, err = src.Load()
		return err
	})
	if err != nil {
		return nil, err
	}
	return profileWith(ctx, s, rel, opts, rec)
}

// RunRelationContext runs the named strategy on an already-loaded relation
// (no "load" phase is reported). obs may be nil; cancellation behaves as in
// RunContext.
func RunRelationContext(ctx context.Context, strategy string, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	s, ok := Lookup(strategy)
	if !ok {
		return nil, unknownStrategyError(strategy)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return profileWith(ctx, s, rel, opts, newRecorder(obs))
}

// profileWith runs s under the recorder (with panic isolation) and finalises
// the result, marking it partial when the run did not complete cleanly.
func profileWith(ctx context.Context, s Strategy, rel *relation.Relation, opts Options, rec *recorder) (*Result, error) {
	res, err := safeProfile(ctx, s, rel, opts, rec)
	if res == nil {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			var pe *PanicError
			if !errors.As(err, &pe) {
				// Plain strategy errors without a result keep the historical
				// nil-result contract; cancellation and panics return an
				// (empty) anytime result so callers can still read the phase
				// timings accumulated before the stop.
				return nil, err
			}
		}
		res = &Result{}
	}
	res.Algorithm = s.Name()
	rec.finish(res)
	if err != nil {
		res.Partial = true
		res.Completeness = rec.completeness()
	}
	return res, err
}

// safeProfile runs the strategy with panic isolation: a panic anywhere below
// (the strategy body, a parallel worker task re-raised as *parallel.TaskPanic,
// an injected fault) is recovered into a *PanicError instead of unwinding
// into the engine's caller.
func safeProfile(ctx context.Context, s Strategy, rel *relation.Relation, opts Options, rec *recorder) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, recoveredError(s.Name(), r)
		}
	}()
	return s.Profile(ctx, rel, opts, rec)
}

// recoveredError converts a recovered panic value into a *PanicError,
// preserving a worker task's original stack when the panic crossed a
// parallel.For boundary.
func recoveredError(strategy string, r any) error {
	if tp, ok := r.(*parallel.TaskPanic); ok {
		return &PanicError{Strategy: strategy, Value: tp, Stack: string(tp.Stack)}
	}
	return &PanicError{Strategy: strategy, Value: r, Stack: string(debug.Stack())}
}
