package core

import (
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/stats"
)

// Report is the serialisation-friendly form of a profiling result: column
// references are resolved to names, sets to name lists, durations to
// seconds. It marshals cleanly with encoding/json and is the single result
// model shared by the CLI (-format json) and the profiling server's job
// API, so both emit identical JSON for the same run.
type Report struct {
	Dataset           string           `json:"dataset"`
	Algorithm         string           `json:"algorithm,omitempty"`
	Columns           []string         `json:"columns"`
	Rows              int              `json:"rows"`
	DuplicatesRemoved int              `json:"duplicates_removed"`
	INDs              []INDReport      `json:"inds"`
	UCCs              [][]string       `json:"uccs"`
	FDs               []FDReport       `json:"fds"`
	Phases            []PhaseReport    `json:"phases"`
	TotalSeconds      float64          `json:"total_seconds"`
	Checks            int              `json:"checks"`
	Cache             []pli.CacheStats `json:"cache,omitempty"`
	Stats             []stats.Column   `json:"stats,omitempty"`
	// Partial marks an anytime result: the run stopped early and the
	// dependency lists hold only the minimal dependencies confirmed before
	// the stop. Completeness says how far the run got.
	Partial      bool          `json:"partial,omitempty"`
	Completeness *Completeness `json:"completeness,omitempty"`
}

// INDReport is one unary inclusion dependency with resolved names.
type INDReport struct {
	Dependent  string `json:"dependent"`
	Referenced string `json:"referenced"`
}

// FDReport is one minimal FD with resolved names.
type FDReport struct {
	LHS []string `json:"lhs"`
	RHS string   `json:"rhs"`
}

// PhaseReport is one timed phase.
type PhaseReport struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// NewReport resolves a Result against its relation. withStats additionally
// embeds single-column statistics.
func NewReport(rel *relation.Relation, res *Result, withStats bool) *Report {
	names := rel.ColumnNames()
	r := &Report{
		Dataset:           rel.Name(),
		Algorithm:         res.Algorithm,
		Columns:           append([]string(nil), names...),
		Rows:              rel.NumRows(),
		DuplicatesRemoved: rel.DuplicatesRemoved(),
		TotalSeconds:      res.Total().Seconds(),
		Checks:            res.Checks,
		Cache:             append([]pli.CacheStats(nil), res.Cache...),
		INDs:              []INDReport{},
		UCCs:              [][]string{},
		FDs:               []FDReport{},
	}
	for _, d := range res.INDs {
		r.INDs = append(r.INDs, INDReport{Dependent: names[d.Dependent], Referenced: names[d.Referenced]})
	}
	for _, u := range res.UCCs {
		r.UCCs = append(r.UCCs, columnNames(u.Columns(), names))
	}
	for _, f := range res.FDs {
		r.FDs = append(r.FDs, FDReport{LHS: columnNames(f.LHS.Columns(), names), RHS: names[f.RHS]})
	}
	for _, p := range res.Phases {
		r.Phases = append(r.Phases, PhaseReport{Name: p.Name, Seconds: p.Duration.Seconds()})
	}
	r.Partial = res.Partial
	if res.Completeness != nil {
		c := *res.Completeness
		r.Completeness = &c
	}
	if withStats {
		r.Stats = stats.Profile(rel)
	}
	return r
}

func columnNames(cols []int, names []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = names[c]
	}
	return out
}
