package core

import (
	"math/rand"
	"testing"
)

// TestBigSweep is an extended randomized cross-check of MUDS against the
// brute-force oracles, covering wider/lower-cardinality shapes that provoke
// shadowed FDs and multi-UCC left-hand sides.
func TestBigSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("big sweep skipped in -short mode")
	}
	shapes := []struct{ cols, rows, card int }{
		{8, 30, 3},
		{6, 60, 2},
		{9, 15, 2},
		{5, 80, 5},
	}
	for si, shape := range shapes {
		for seed := int64(0); seed < 500; seed++ {
			rnd := rand.New(rand.NewSource(seed + int64(si)*1_000_000))
			rel := randomRelation(rnd, shape.cols, shape.rows, shape.card)
			verifyMudsMatchesOracles(t, rel, seed)
		}
	}
}
