package core

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/parallel"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

// Options configures a MUDS run (and the other strategies where relevant).
type Options struct {
	// Seed fixes the randomized traversal orders of DUCC and the R\Z walk.
	// Results are independent of the seed.
	Seed int64
	// IND configures the SPIDER sub-algorithm.
	IND ind.Options
	// CacheEntries bounds the shared PLI cache (0 = default).
	CacheEntries int
	// MaxCacheBytes budgets the approximate heap held by the shared PLI
	// cache (0 = default of pli.DefaultCacheBytes; < 0 disables the byte
	// budget). When the budget is hit the cache sheds intersections and the
	// strategies recompute them on demand — the memory governor trades time
	// for bounded memory, and the discovered IND/UCC/FD sets are identical
	// for every budget.
	MaxCacheBytes int64
	// Workers bounds the worker pool of the parallel phases: single-column
	// PLI construction, FUN/TANE per-level candidate validation, and the
	// per-right-hand-side R\Z and completion-sweep walks of MUDS. <= 0
	// selects runtime.GOMAXPROCS(0). The discovered IND/UCC/FD sets are
	// identical for every value; only wall time (and cache statistics)
	// varies. With Workers > 1 the strategies back the shared PLI provider
	// with a ShardedCache so it is safe to share across the pool.
	Workers int
	// SampleCheck arms the sampled refutation prefilter of the PLI
	// provider's validation fast path: boolean questions (uniqueness, FD
	// refinement) first run against a deterministic stride sample of the
	// rows and fall through to the exact check only when the sample finds no
	// counterexample. A sampled counterexample is exact evidence, so the
	// discovered IND/UCC/FD sets are identical with and without sampling;
	// only the work per check changes. Relations below the effective sample
	// threshold (see pli.Provider.WithSampleCheck) run unsampled regardless.
	SampleCheck bool
}

// workerCount resolves Workers to an effective pool width.
func (o Options) workerCount() int { return parallel.Workers(o.Workers) }

// cacheBudget resolves MaxCacheBytes to the effective byte budget handed to
// the cache constructors: 0 = default, < 0 = unbudgeted.
func (o Options) cacheBudget() int64 {
	switch {
	case o.MaxCacheBytes < 0:
		return 0 // explicit opt-out: no byte budget
	case o.MaxCacheBytes == 0:
		return pli.DefaultCacheBytes
	default:
		return o.MaxCacheBytes
	}
}

// NewProvider builds the PLI provider for one strategy run: sharded and
// concurrency-safe when the run fans out, the cheaper single-goroutine
// MapCache when it stays sequential. Both are byte-budgeted (the memory
// governor) per cacheBudget. It is exported for the incremental layer, which
// must construct providers with exactly the engine's cache and sampling
// configuration so that patched and from-scratch runs are comparable.
func (o Options) NewProvider(rel *relation.Relation) *pli.Provider {
	var p *pli.Provider
	if w := o.workerCount(); w > 1 {
		p = pli.NewProviderWithCache(rel, pli.NewShardedCacheBudget(w, o.CacheEntries, o.cacheBudget()))
	} else {
		p = pli.NewProviderWithCache(rel, pli.NewMapCacheBudget(o.CacheEntries, o.cacheBudget()))
	}
	return p.WithSampleCheck(o.SampleCheck)
}

// Muds runs the full holistic MUDS algorithm (paper Sec. 5) on a loaded
// relation: SPIDER while reading (shared I/O), DUCC on the shared PLIs, and
// the three-phase UCC-first FD discovery with inter-task pruning.
func Muds(rel *relation.Relation, opts Options) *Result {
	res, _ := MudsContext(context.Background(), rel, opts, nil)
	return res
}

// MudsContext runs MUDS under a context with an optional observer (nil for
// none). The lattice traversals poll ctx and stop promptly when it is
// cancelled or its deadline passes, returning the partial result — the
// dependencies and phase timings accumulated so far — together with
// ctx.Err(). It runs through the engine's protected path, so panics are
// isolated exactly as in RunContext.
func MudsContext(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s, _ := Lookup(StrategyMuds)
	return profileWith(ctx, s, rel, opts, newRecorder(obs))
}

// mudsProfile is the registered MUDS strategy implementation. Phase timings
// and check totals flow through the observer (the engine's recorder
// assembles them into the Result).
func mudsProfile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	res := &Result{}
	workers := opts.workerCount()

	var p *pli.Provider
	err := timePhase(ctx, obs, PhaseSpider, func() error {
		// SPIDER consumes the sorted duplicate-free value lists; the PLIs
		// are built in the same pass over the input (paper Sec. 5: "Since
		// this algorithm already requires to read and sort all records,
		// Muds also builds the PLIs in this step"). The sort and the
		// single-column PLI construction fan out per column; the merge
		// itself is sequential.
		obs.Parallelism(PhaseSpider, workers)
		inds, err := ind.SpiderContext(ctx, rel, opts.IND)
		if err != nil {
			return err
		}
		res.INDs = inds
		p = opts.NewProvider(rel)
		return nil
	})
	if err != nil {
		return res, err
	}
	defer func() { obs.CacheStats(p.CacheStats()) }()

	var uccRes ucc.Result
	err = timePhase(ctx, obs, PhaseDucc, func() error {
		// The DUCC random walk is sequential by construction: every step
		// extends the certificate tries the next step prunes with.
		obs.Parallelism(PhaseDucc, 1)
		var err error
		uccRes, err = ucc.DuccContext(ctx, p, opts.Seed)
		obs.Checks(uccRes.Checks)
		return err
	})
	res.UCCs = uccRes.Minimal
	if err != nil {
		return res, err
	}

	store := fd.NewStore()
	constants := fd.ConstantColumns(p)
	constants.ForEach(func(a int) { store.Add(bitset.Set{}, a) })

	if rel.NumRows() > 1 {
		working := rel.AllColumns().Diff(constants)
		m := newMudsFD(p, working, res.UCCs, store, opts.Seed)
		m.ctx = ctx
		m.workers = workers
		err = mudsFDPhases(ctx, m, store, obs)
		obs.Checks(m.checks)
	}

	res.FDs = store.All()
	return res, err
}

// mudsFDPhases runs the three FD phases of MUDS (paper Sec. 5) plus the
// completion sweep, stopping at the first phase that reports cancellation.
func mudsFDPhases(ctx context.Context, m *mudsFD, store *fd.Store, obs Observer) error {
	// minimizeFDs and the shadowed-FD fixpoint work off shared task queues
	// whose tasks prune each other (processed/shadowSeen dedup maps, emitted
	// FDs feeding connector look-ups), so they stay sequential; the per-RHS
	// walks of calculateRZ and the completion sweep are independent and fan
	// out across the worker pool.
	err := timePhase(ctx, obs, PhaseMinimizeFDs, m.run(func() {
		obs.Parallelism(PhaseMinimizeFDs, 1)
		m.minimizeFDs()
	}))
	if err != nil {
		return err
	}
	err = timePhase(ctx, obs, PhaseCalculateRZ, m.run(func() {
		obs.Parallelism(PhaseCalculateRZ, m.workerCount())
		m.calculateRZ()
	}))
	if err != nil {
		return err
	}

	// Shadowed-FD fixpoint: generate + minimise until no new FD appears
	// (see shadowed.go for why a single pass is not enough).
	for {
		var tasks []shadowTask
		err := timePhase(ctx, obs, PhaseGenerateShadowed, func() error {
			obs.Parallelism(PhaseGenerateShadowed, 1)
			tasks = m.generateShadowedTasks()
			return m.ctx.Err()
		})
		if err != nil {
			return err
		}
		before := store.Count()
		err = timePhase(ctx, obs, PhaseMinimizeShadowed, m.run(func() {
			obs.Parallelism(PhaseMinimizeShadowed, 1)
			m.minimizeShadowed(tasks)
		}))
		if err != nil {
			return err
		}
		if store.Count() == before {
			break
		}
	}

	// Guarantee the complete minimal cover (see sweep.go).
	return timePhase(ctx, obs, PhaseCompletionSweep, m.run(func() {
		obs.Parallelism(PhaseCompletionSweep, m.workerCount())
		m.completionSweep()
	}))
}
