package core

import (
	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

// Options configures a MUDS run (and the other strategies where relevant).
type Options struct {
	// Seed fixes the randomized traversal orders of DUCC and the R\Z walk.
	// Results are independent of the seed.
	Seed int64
	// IND configures the SPIDER sub-algorithm.
	IND ind.Options
	// CacheEntries bounds the shared PLI cache (0 = default).
	CacheEntries int
}

// Muds runs the full holistic MUDS algorithm (paper Sec. 5) on a loaded
// relation: SPIDER while reading (shared I/O), DUCC on the shared PLIs, and
// the three-phase UCC-first FD discovery with inter-task pruning.
func Muds(rel *relation.Relation, opts Options) *Result {
	res := &Result{}
	timer := newPhaseTimer()

	var p *pli.Provider
	timer.time(PhaseSpider, func() {
		// SPIDER consumes the sorted duplicate-free value lists; the PLIs
		// are built in the same pass over the input (paper Sec. 5: "Since
		// this algorithm already requires to read and sort all records,
		// Muds also builds the PLIs in this step").
		res.INDs = ind.Spider(rel, opts.IND)
		p = pli.NewProvider(rel, opts.CacheEntries)
	})

	var uccRes ucc.Result
	timer.time(PhaseDucc, func() {
		uccRes = ucc.Ducc(p, opts.Seed)
	})
	res.UCCs = uccRes.Minimal
	res.Checks += uccRes.Checks

	store := fd.NewStore()
	constants := fd.ConstantColumns(p)
	constants.ForEach(func(a int) { store.Add(bitset.Set{}, a) })

	if rel.NumRows() > 1 {
		working := rel.AllColumns().Diff(constants)
		m := newMudsFD(p, working, res.UCCs, store, opts.Seed)

		timer.time(PhaseMinimizeFDs, m.minimizeFDs)
		timer.time(PhaseCalculateRZ, m.calculateRZ)

		// Shadowed-FD fixpoint: generate + minimise until no new FD appears
		// (see shadowed.go for why a single pass is not enough).
		for {
			var tasks []shadowTask
			timer.time(PhaseGenerateShadowed, func() {
				tasks = m.generateShadowedTasks()
			})
			before := store.Count()
			timer.time(PhaseMinimizeShadowed, func() {
				m.minimizeShadowed(tasks)
			})
			if store.Count() == before {
				break
			}
		}

		// Guarantee the complete minimal cover (see sweep.go).
		timer.time(PhaseCompletionSweep, m.completionSweep)

		res.Checks += m.checks
	}

	res.FDs = store.All()
	res.Phases = timer.phases
	return res
}
