package core

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

// Options configures a MUDS run (and the other strategies where relevant).
type Options struct {
	// Seed fixes the randomized traversal orders of DUCC and the R\Z walk.
	// Results are independent of the seed.
	Seed int64
	// IND configures the SPIDER sub-algorithm.
	IND ind.Options
	// CacheEntries bounds the shared PLI cache (0 = default).
	CacheEntries int
}

// Muds runs the full holistic MUDS algorithm (paper Sec. 5) on a loaded
// relation: SPIDER while reading (shared I/O), DUCC on the shared PLIs, and
// the three-phase UCC-first FD discovery with inter-task pruning.
func Muds(rel *relation.Relation, opts Options) *Result {
	res, _ := MudsContext(context.Background(), rel, opts, nil)
	return res
}

// MudsContext runs MUDS under a context with an optional observer (nil for
// none). The lattice traversals poll ctx and stop promptly when it is
// cancelled or its deadline passes, returning the partial result — the
// dependencies and phase timings accumulated so far — together with
// ctx.Err().
func MudsContext(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rec := newRecorder(obs)
	res, err := mudsProfile(ctx, rel, opts, rec)
	rec.finish(res)
	return res, err
}

// mudsProfile is the registered MUDS strategy implementation. Phase timings
// and check totals flow through the observer (the engine's recorder
// assembles them into the Result).
func mudsProfile(ctx context.Context, rel *relation.Relation, opts Options, obs Observer) (*Result, error) {
	res := &Result{}

	var p *pli.Provider
	err := timePhase(ctx, obs, PhaseSpider, func() error {
		// SPIDER consumes the sorted duplicate-free value lists; the PLIs
		// are built in the same pass over the input (paper Sec. 5: "Since
		// this algorithm already requires to read and sort all records,
		// Muds also builds the PLIs in this step").
		inds, err := ind.SpiderContext(ctx, rel, opts.IND)
		if err != nil {
			return err
		}
		res.INDs = inds
		p = pli.NewProvider(rel, opts.CacheEntries)
		return nil
	})
	if err != nil {
		return res, err
	}
	defer func() { obs.CacheStats(p.CacheStats()) }()

	var uccRes ucc.Result
	err = timePhase(ctx, obs, PhaseDucc, func() error {
		var err error
		uccRes, err = ucc.DuccContext(ctx, p, opts.Seed)
		obs.Checks(uccRes.Checks)
		return err
	})
	res.UCCs = uccRes.Minimal
	if err != nil {
		return res, err
	}

	store := fd.NewStore()
	constants := fd.ConstantColumns(p)
	constants.ForEach(func(a int) { store.Add(bitset.Set{}, a) })

	if rel.NumRows() > 1 {
		working := rel.AllColumns().Diff(constants)
		m := newMudsFD(p, working, res.UCCs, store, opts.Seed)
		m.ctx = ctx
		err = mudsFDPhases(ctx, m, store, obs)
		obs.Checks(m.checks)
	}

	res.FDs = store.All()
	return res, err
}

// mudsFDPhases runs the three FD phases of MUDS (paper Sec. 5) plus the
// completion sweep, stopping at the first phase that reports cancellation.
func mudsFDPhases(ctx context.Context, m *mudsFD, store *fd.Store, obs Observer) error {
	if err := timePhase(ctx, obs, PhaseMinimizeFDs, m.run(m.minimizeFDs)); err != nil {
		return err
	}
	if err := timePhase(ctx, obs, PhaseCalculateRZ, m.run(m.calculateRZ)); err != nil {
		return err
	}

	// Shadowed-FD fixpoint: generate + minimise until no new FD appears
	// (see shadowed.go for why a single pass is not enough).
	for {
		var tasks []shadowTask
		err := timePhase(ctx, obs, PhaseGenerateShadowed, func() error {
			tasks = m.generateShadowedTasks()
			return m.ctx.Err()
		})
		if err != nil {
			return err
		}
		before := store.Count()
		err = timePhase(ctx, obs, PhaseMinimizeShadowed, m.run(func() {
			m.minimizeShadowed(tasks)
		}))
		if err != nil {
			return err
		}
		if store.Count() == before {
			break
		}
	}

	// Guarantee the complete minimal cover (see sweep.go).
	return timePhase(ctx, obs, PhaseCompletionSweep, m.run(m.completionSweep))
}
