package core

import (
	"time"

	"holistic/internal/pli"
)

// Observer receives progress events from a profiling run: phase boundaries,
// validity-check counts, and PLI cache statistics. It replaces the engine's
// former internal phase timer as the single instrumentation surface — the
// per-phase durations in Result.Phases are assembled from the same events.
//
// Implementations must be cheap: PhaseStart/PhaseEnd fire once per phase (a
// handful of times per run), Checks fires once per sub-algorithm with the
// accumulated delta, and CacheStats fires once per PLI provider a strategy
// retires, with that provider's cumulative counters. Observers are invoked
// from the profiling goroutine; they need not be safe for concurrent use.
//
// Embed NopObserver to implement only the events of interest.
type Observer interface {
	// PhaseStart fires when the named phase begins. Fixpoint phases (the
	// shadowed-FD rounds of MUDS) start and end once per round.
	PhaseStart(name string)
	// PhaseEnd fires when the named phase ends, with its wall time.
	PhaseEnd(name string, d time.Duration)
	// Checks reports delta data-touching validity checks (uniqueness tests,
	// partition refinements). The deltas sum to Result.Checks.
	Checks(delta int)
	// CacheStats reports the final cache counters of one PLI provider used
	// by the run. Strategies that build several providers (the sequential
	// baseline) report one snapshot per provider.
	CacheStats(stats pli.CacheStats)
	// Parallelism reports the worker count a phase runs with, once per
	// phase, right after the phase starts. Inherently sequential phases
	// (the DUCC random walk, the shadowed-FD fixpoint) report 1, so the
	// event stream documents exactly which parts of a run fan out.
	Parallelism(phase string, workers int)
}

// NopObserver is an Observer that ignores every event. Embed it to implement
// only a subset of the interface.
type NopObserver struct{}

// PhaseStart implements Observer.
func (NopObserver) PhaseStart(string) {}

// PhaseEnd implements Observer.
func (NopObserver) PhaseEnd(string, time.Duration) {}

// Checks implements Observer.
func (NopObserver) Checks(int) {}

// CacheStats implements Observer.
func (NopObserver) CacheStats(pli.CacheStats) {}

// Parallelism implements Observer.
func (NopObserver) Parallelism(string, int) {}
