package core

import (
	"fmt"
)

// PanicError is the engine's conversion of a recovered panic into an
// ordinary error: a strategy (or anything it calls — a worker-pool task, a
// PLI intersection, the input loader) panicked, the engine recovered it, and
// the run surfaces as failed instead of taking the process down. The
// captured stack rides along so the failure is diagnosable from a job's
// event log without a core dump.
type PanicError struct {
	// Strategy is the registry name of the run that panicked ("" when the
	// panic hit before strategy resolution, e.g. in the load phase).
	Strategy string
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery. When the panic crossed
	// a parallel worker boundary the worker's own stack is preserved (see
	// parallel.TaskPanic).
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	if e.Strategy != "" {
		return fmt.Sprintf("strategy %q panicked: %v", e.Strategy, e.Value)
	}
	return fmt.Sprintf("profiling panicked: %v", e.Value)
}

// Unwrap exposes the panic value when it is an error, so classification
// (errors.Is/As, transient markers, injected faults) keeps working through
// the recovery boundary.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
