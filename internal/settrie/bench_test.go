package settrie

import (
	"math/rand"
	"testing"

	"holistic/internal/bitset"
)

func benchSets(n, cols int, seed int64) []bitset.Set {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]bitset.Set, n)
	for i := range out {
		var s bitset.Set
		for c := 0; c < cols; c++ {
			if rnd.Intn(4) == 0 {
				s = s.With(c)
			}
		}
		if s.IsEmpty() {
			s = s.With(rnd.Intn(cols))
		}
		out[i] = s
	}
	return out
}

// BenchmarkSubsetLookup measures the Sec. 5.4 prefix-tree subset query that
// the shadowed-FD phase performs for every candidate left-hand side.
func BenchmarkSubsetLookup(b *testing.B) {
	var tr Trie
	for _, s := range benchSets(2000, 20, 1) {
		tr.Add(s)
	}
	queries := benchSets(64, 20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ContainsSubsetOf(queries[i%len(queries)])
	}
}

// BenchmarkSupersetLookup measures the connector look-up (Sec. 5.1).
func BenchmarkSupersetLookup(b *testing.B) {
	var tr Trie
	for _, s := range benchSets(2000, 20, 1) {
		tr.Add(s)
	}
	queries := benchSets(64, 20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SupersetsOf(queries[i%len(queries)])
	}
}

// BenchmarkMinimalFamilyAdd measures antichain maintenance, the store
// operation behind every certificate insertion.
func BenchmarkMinimalFamilyAdd(b *testing.B) {
	sets := benchSets(4096, 24, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var f MinimalFamily
		for _, s := range sets {
			f.Add(s)
		}
	}
}
