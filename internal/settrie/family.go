package settrie

import "holistic/internal/bitset"

// MinimalFamily maintains an antichain of ⊆-minimal sets: inserting a set
// that has a stored subset is a no-op, and inserting a new set removes its
// stored supersets. It backs the minimal-UCC store of DUCC/MUDS and the
// per-right-hand-side minimal FD left-hand-side stores.
type MinimalFamily struct {
	trie Trie
}

// Add inserts s if no stored set is a subset of s; it removes stored proper
// supersets of s. It reports whether s entered the family.
func (f *MinimalFamily) Add(s bitset.Set) bool {
	if f.trie.ContainsSubsetOf(s) {
		return false
	}
	for _, sup := range f.trie.SupersetsOf(s) {
		f.trie.Remove(sup)
	}
	f.trie.Add(s)
	return true
}

// Len returns the number of minimal sets stored.
func (f *MinimalFamily) Len() int { return f.trie.Len() }

// Contains reports whether exactly s is stored.
func (f *MinimalFamily) Contains(s bitset.Set) bool { return f.trie.Contains(s) }

// CoversSubsetOf reports whether a stored set is a subset of x. For a
// minimal-UCC family this asks "is x (a superset of) a UCC?"; for a minimal
// FD-lhs family it asks "is x a known (non-minimal) lhs?".
func (f *MinimalFamily) CoversSubsetOf(x bitset.Set) bool {
	return f.trie.ContainsSubsetOf(x)
}

// SubsetsOf returns all stored sets contained in x.
func (f *MinimalFamily) SubsetsOf(x bitset.Set) []bitset.Set {
	return f.trie.SubsetsOf(x)
}

// SupersetsOf returns all stored sets containing x (connector look-up).
func (f *MinimalFamily) SupersetsOf(x bitset.Set) []bitset.Set {
	return f.trie.SupersetsOf(x)
}

// ContainsSupersetOf reports whether a stored set contains x.
func (f *MinimalFamily) ContainsSupersetOf(x bitset.Set) bool {
	return f.trie.ContainsSupersetOf(x)
}

// All returns the stored sets in deterministic order.
func (f *MinimalFamily) All() []bitset.Set { return f.trie.All() }

// ForEach visits the stored sets; fn returning false stops early.
func (f *MinimalFamily) ForEach(fn func(bitset.Set) bool) { f.trie.ForEach(fn) }

// Union returns the union of all stored sets (the set Z of paper Sec. 4 when
// the family holds the minimal UCCs).
func (f *MinimalFamily) Union() bitset.Set {
	var u bitset.Set
	f.trie.ForEach(func(s bitset.Set) bool {
		u = u.Union(s)
		return true
	})
	return u
}

// MaximalFamily maintains an antichain of ⊆-maximal sets: inserting a set
// that has a stored superset is a no-op, and inserting a new set removes its
// stored subsets. It backs the maximal non-UCC and maximal non-FD-lhs stores
// used for downward pruning (Lemma 4).
type MaximalFamily struct {
	trie Trie
}

// Add inserts s if no stored set is a superset of s; it removes stored
// proper subsets of s. It reports whether s entered the family.
func (f *MaximalFamily) Add(s bitset.Set) bool {
	if f.trie.ContainsSupersetOf(s) {
		return false
	}
	for _, sub := range f.trie.SubsetsOf(s) {
		f.trie.Remove(sub)
	}
	f.trie.Add(s)
	return true
}

// Len returns the number of maximal sets stored.
func (f *MaximalFamily) Len() int { return f.trie.Len() }

// Contains reports whether exactly s is stored.
func (f *MaximalFamily) Contains(s bitset.Set) bool { return f.trie.Contains(s) }

// CoversSupersetOf reports whether a stored set contains x. For a maximal
// non-UCC family this asks "is x (a subset of) a known non-UCC?".
func (f *MaximalFamily) CoversSupersetOf(x bitset.Set) bool {
	return f.trie.ContainsSupersetOf(x)
}

// All returns the stored sets in deterministic order.
func (f *MaximalFamily) All() []bitset.Set { return f.trie.All() }

// ForEach visits the stored sets; fn returning false stops early.
func (f *MaximalFamily) ForEach(fn func(bitset.Set) bool) { f.trie.ForEach(fn) }
