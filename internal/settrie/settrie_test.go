package settrie

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
)

func sets(letters ...string) []bitset.Set {
	out := make([]bitset.Set, len(letters))
	for i, l := range letters {
		out[i] = bitset.FromLetters(l)
	}
	return out
}

func TestAddContainsRemove(t *testing.T) {
	var tr Trie
	a := bitset.FromLetters("ACD")
	if !tr.Add(a) || tr.Add(a) {
		t.Error("Add should report first-insert only")
	}
	if !tr.Contains(a) || tr.Len() != 1 {
		t.Error("Contains/Len mismatch after Add")
	}
	if tr.Contains(bitset.FromLetters("AC")) || tr.Contains(bitset.FromLetters("ACDE")) {
		t.Error("prefix/extension must not be contained")
	}
	if !tr.Remove(a) || tr.Remove(a) {
		t.Error("Remove should report first-delete only")
	}
	if tr.Len() != 0 || tr.Contains(a) {
		t.Error("trie should be empty after Remove")
	}
}

func TestEmptySetElement(t *testing.T) {
	var tr Trie
	empty := bitset.Set{}
	if !tr.Add(empty) || !tr.Contains(empty) {
		t.Error("empty set should be storable")
	}
	if !tr.ContainsSubsetOf(bitset.FromLetters("AB")) {
		t.Error("empty set is a subset of everything")
	}
	if !tr.ContainsSupersetOf(empty) {
		t.Error("empty set is a superset of the empty set")
	}
	if !tr.Remove(empty) || tr.Len() != 0 {
		t.Error("empty set removal failed")
	}
}

// TestPrefixTreeFigure5 reproduces Figure 5 of the paper: the prefix tree of
// the UCCs (1,3,8), (1,5), (1,10), (1,12), (7), (15,18), (1,11,17).
func TestPrefixTreeFigure5(t *testing.T) {
	var tr Trie
	uccs := []bitset.Set{
		bitset.New(1, 3, 8),
		bitset.New(1, 5),
		bitset.New(1, 10),
		bitset.New(1, 12),
		bitset.New(7),
		bitset.New(15, 18),
		bitset.New(1, 11, 17),
	}
	for _, u := range uccs {
		tr.Add(u)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	// Level-1 structure: root has child entries 1, 7, 15 (paper figure).
	rootCols := tr.root.cols
	if !reflect.DeepEqual(rootCols, []int{1, 7, 15}) {
		t.Errorf("root entries = %v, want [1 7 15]", rootCols)
	}
	// Subset look-up as in Sec. 5.4: subsets of X = {1,5,8,18}.
	got := tr.SubsetsOf(bitset.New(1, 5, 8, 18))
	want := []bitset.Set{bitset.New(1, 5)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SubsetsOf = %v, want %v", got, want)
	}
	// {7} is found inside any set containing column 7.
	if !tr.ContainsSubsetOf(bitset.New(0, 7, 20)) {
		t.Error("subset {7} not found")
	}
	if tr.ContainsSubsetOf(bitset.New(3, 8)) {
		t.Error("no stored set is a subset of {3,8}")
	}
}

func TestSubsetQueries(t *testing.T) {
	var tr Trie
	for _, s := range sets("AB", "BC", "D") {
		tr.Add(s)
	}
	if !tr.ContainsSubsetOf(bitset.FromLetters("ABC")) {
		t.Error("AB ⊆ ABC expected")
	}
	if tr.ContainsSubsetOf(bitset.FromLetters("AC")) {
		t.Error("nothing is a subset of AC")
	}
	got := tr.SubsetsOf(bitset.FromLetters("ABCD"))
	if len(got) != 3 {
		t.Errorf("SubsetsOf(ABCD) = %v", got)
	}
}

func TestSupersetQueries(t *testing.T) {
	var tr Trie
	// The connector look-up example of Table 2: minimal UCCs AFG, BDFG, DEF,
	// CEFG; supersets of the connector FG are AFG, BDFG, CEFG.
	for _, s := range sets("AFG", "BDFG", "DEF", "CEFG") {
		tr.Add(s)
	}
	got := tr.SupersetsOf(bitset.FromLetters("FG"))
	want := sets("AFG", "BDFG", "CEFG")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SupersetsOf(FG) = %v, want %v", got, want)
	}
	if !tr.ContainsSupersetOf(bitset.FromLetters("FG")) {
		t.Error("ContainsSupersetOf(FG) expected")
	}
	if tr.ContainsSupersetOf(bitset.FromLetters("AB")) {
		t.Error("no superset of AB stored")
	}
	// Union of matched minus connector = ABCDE (Table 2's result).
	var union bitset.Set
	for _, s := range got {
		union = union.Union(s)
	}
	if diff := union.Diff(bitset.FromLetters("FG")); diff != bitset.FromLetters("ABCDE") {
		t.Errorf("connector union = %v, want ABCDE", diff)
	}
}

func TestAllAndForEach(t *testing.T) {
	var tr Trie
	in := sets("B", "AC", "A")
	for _, s := range in {
		tr.Add(s)
	}
	all := tr.All()
	if len(all) != 3 {
		t.Fatalf("All = %v", all)
	}
	// Deterministic sorted-path order: A, AC, B.
	want := sets("A", "AC", "B")
	if !reflect.DeepEqual(all, want) {
		t.Errorf("All = %v, want %v", all, want)
	}
	count := 0
	tr.ForEach(func(bitset.Set) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach early stop visited %d, want 2", count)
	}
}

func TestRemovePrunesNodes(t *testing.T) {
	var tr Trie
	tr.Add(bitset.FromLetters("ABC"))
	tr.Add(bitset.FromLetters("AB"))
	tr.Remove(bitset.FromLetters("ABC"))
	if tr.ContainsSupersetOf(bitset.FromLetters("ABC")) {
		t.Error("dangling node kept after removal")
	}
	if !tr.Contains(bitset.FromLetters("AB")) {
		t.Error("sibling entry lost")
	}
}

func TestMinimalFamily(t *testing.T) {
	var f MinimalFamily
	if !f.Add(bitset.FromLetters("ABC")) {
		t.Error("first add should succeed")
	}
	if f.Add(bitset.FromLetters("ABCD")) {
		t.Error("superset of stored set must be rejected")
	}
	if !f.Add(bitset.FromLetters("AB")) {
		t.Error("subset should replace superset")
	}
	if f.Contains(bitset.FromLetters("ABC")) {
		t.Error("superset should have been removed")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
	f.Add(bitset.FromLetters("CD"))
	if got := f.Union(); got != bitset.FromLetters("ABCD") {
		t.Errorf("Union = %v", got)
	}
	if !f.CoversSubsetOf(bitset.FromLetters("ABE")) {
		t.Error("AB ⊆ ABE expected")
	}
	if f.CoversSubsetOf(bitset.FromLetters("AD")) {
		t.Error("no stored subset of AD")
	}
	if got := f.SupersetsOf(bitset.FromLetters("C")); len(got) != 1 || got[0] != bitset.FromLetters("CD") {
		t.Errorf("SupersetsOf(C) = %v", got)
	}
	if !f.ContainsSupersetOf(bitset.FromLetters("D")) {
		t.Error("CD ⊇ D expected")
	}
	var visited int
	f.ForEach(func(bitset.Set) bool {
		visited++
		return true
	})
	if visited != 2 {
		t.Errorf("ForEach visited %d, want 2", visited)
	}
	if got := f.SubsetsOf(bitset.FromLetters("ABCD")); len(got) != 2 {
		t.Errorf("SubsetsOf(ABCD) = %v", got)
	}
}

func TestMaximalFamily(t *testing.T) {
	var f MaximalFamily
	if !f.Add(bitset.FromLetters("AB")) {
		t.Error("first add should succeed")
	}
	if f.Add(bitset.FromLetters("A")) {
		t.Error("subset of stored set must be rejected")
	}
	if !f.Add(bitset.FromLetters("ABC")) {
		t.Error("superset should replace subset")
	}
	if f.Contains(bitset.FromLetters("AB")) {
		t.Error("subset should have been removed")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
	if !f.CoversSupersetOf(bitset.FromLetters("BC")) {
		t.Error("BC ⊆ ABC expected")
	}
	if f.CoversSupersetOf(bitset.FromLetters("D")) {
		t.Error("no superset of D stored")
	}
}

func randomFamily(rnd *rand.Rand, n, count int) []bitset.Set {
	out := make([]bitset.Set, count)
	for i := range out {
		var s bitset.Set
		for c := 0; c < n; c++ {
			if rnd.Intn(3) == 0 {
				s = s.With(c)
			}
		}
		out[i] = s
	}
	return out
}

// Property: trie queries agree with naive scans over the stored sets.
func TestQuickTrieMatchesNaive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomFamily(rnd, 8, 1+rnd.Intn(15)))
			vals[1] = reflect.ValueOf(randomFamily(rnd, 8, 5))
		},
	}
	if err := quick.Check(func(stored, queries []bitset.Set) bool {
		var tr Trie
		dedup := map[bitset.Set]bool{}
		for _, s := range stored {
			tr.Add(s)
			dedup[s] = true
		}
		if tr.Len() != len(dedup) {
			return false
		}
		for _, q := range queries {
			wantSub, wantSup := false, false
			var subs, sups []bitset.Set
			for s := range dedup {
				if s.IsSubsetOf(q) {
					wantSub = true
					subs = append(subs, s)
				}
				if q.IsSubsetOf(s) {
					wantSup = true
					sups = append(sups, s)
				}
			}
			if tr.ContainsSubsetOf(q) != wantSub || tr.ContainsSupersetOf(q) != wantSup {
				return false
			}
			gotSubs, gotSups := tr.SubsetsOf(q), tr.SupersetsOf(q)
			bitset.Sort(subs)
			bitset.Sort(sups)
			sortedCopy := func(in []bitset.Set) []bitset.Set {
				c := append([]bitset.Set(nil), in...)
				bitset.Sort(c)
				return c
			}
			if !reflect.DeepEqual(sortedCopy(gotSubs), subs) || !reflect.DeepEqual(sortedCopy(gotSups), sups) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MinimalFamily is always an antichain equal to the minimal
// elements of the inserted sets; MaximalFamily dually.
func TestQuickFamiliesAreAntichains(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomFamily(rnd, 7, 1+rnd.Intn(20)))
		},
	}
	if err := quick.Check(func(in []bitset.Set) bool {
		var minF MinimalFamily
		var maxF MaximalFamily
		for _, s := range in {
			minF.Add(s)
			maxF.Add(s)
		}
		wantMin := naiveMinimal(in)
		wantMax := naiveMaximal(in)
		gotMin := minF.All()
		gotMax := maxF.All()
		bitset.Sort(gotMin)
		bitset.Sort(gotMax)
		bitset.Sort(wantMin)
		bitset.Sort(wantMax)
		return reflect.DeepEqual(gotMin, wantMin) && reflect.DeepEqual(gotMax, wantMax)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func naiveMinimal(in []bitset.Set) []bitset.Set {
	var out []bitset.Set
	for _, s := range in {
		minimal := true
		for _, o := range in {
			if o.IsProperSubsetOf(s) {
				minimal = false
				break
			}
		}
		if minimal && !containsSet(out, s) {
			out = append(out, s)
		}
	}
	return out
}

func naiveMaximal(in []bitset.Set) []bitset.Set {
	var out []bitset.Set
	for _, s := range in {
		maximal := true
		for _, o := range in {
			if s.IsProperSubsetOf(o) {
				maximal = false
				break
			}
		}
		if maximal && !containsSet(out, s) {
			out = append(out, s)
		}
	}
	return out
}

func containsSet(in []bitset.Set, s bitset.Set) bool {
	for _, o := range in {
		if o == s {
			return true
		}
	}
	return false
}
