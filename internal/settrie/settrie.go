// Package settrie implements a prefix tree over column combinations (paper
// Sec. 5.4, Fig. 5). Column sets are stored as their sorted column sequences;
// the trie answers subset and superset queries without scanning all stored
// sets, which MUDS needs for connector look-ups (supersets of a connector)
// and shadowed-FD pruning (minimal UCCs inside a left-hand side).
//
// On top of the plain trie, MinimalFamily and MaximalFamily maintain
// antichains of minimal respectively maximal sets, the stores used for
// minimal UCCs / FD left-hand sides and for maximal non-UCCs / non-FDs.
package settrie

import (
	"sort"

	"holistic/internal/bitset"
)

// node keeps its children as parallel slices sorted by column, so traversals
// iterate in deterministic order without per-visit sorting and lookups are a
// binary search. The discovery algorithms hammer these operations (every
// pruning decision is a trie query), which is why no map is used here.
type node struct {
	cols     []int
	children []*node
	terminal bool
}

func (n *node) childIndex(col int) int {
	// Nodes are narrow in practice; a linear scan beats binary search until
	// the fan-out gets large.
	if len(n.cols) <= 16 {
		for i, c := range n.cols {
			if c >= col {
				return i
			}
		}
		return len(n.cols)
	}
	return sort.SearchInts(n.cols, col)
}

func (n *node) child(col int) *node {
	i := n.childIndex(col)
	if i < len(n.cols) && n.cols[i] == col {
		return n.children[i]
	}
	return nil
}

func (n *node) ensureChild(col int) *node {
	i := n.childIndex(col)
	if i < len(n.cols) && n.cols[i] == col {
		return n.children[i]
	}
	c := &node{}
	n.cols = append(n.cols, 0)
	copy(n.cols[i+1:], n.cols[i:])
	n.cols[i] = col
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

func (n *node) removeChild(col int) {
	i := n.childIndex(col)
	if i >= len(n.cols) || n.cols[i] != col {
		return
	}
	n.cols = append(n.cols[:i], n.cols[i+1:]...)
	n.children = append(n.children[:i], n.children[i+1:]...)
}

func (n *node) empty() bool {
	return !n.terminal && len(n.cols) == 0
}

// Trie is a set of column combinations supporting subset/superset queries.
// The zero value is an empty trie ready for use.
type Trie struct {
	root node
	size int
}

// Len returns the number of stored sets.
func (t *Trie) Len() int { return t.size }

// Add inserts s and reports whether it was not already present. The empty
// set is a valid element (stored at the root).
func (t *Trie) Add(s bitset.Set) bool {
	n := &t.root
	s.ForEach(func(c int) {
		n = n.ensureChild(c)
	})
	if n.terminal {
		return false
	}
	n.terminal = true
	t.size++
	return true
}

// Contains reports whether exactly s is stored.
func (t *Trie) Contains(s bitset.Set) bool {
	n := &t.root
	for c := s.First(); c >= 0; c = s.NextAfter(c) {
		if n = n.child(c); n == nil {
			return false
		}
	}
	return n.terminal
}

// Remove deletes s and reports whether it was present.
func (t *Trie) Remove(s bitset.Set) bool {
	if !t.remove(&t.root, s.Columns()) {
		return false
	}
	t.size--
	return true
}

func (t *Trie) remove(n *node, cols []int) bool {
	if len(cols) == 0 {
		if !n.terminal {
			return false
		}
		n.terminal = false
		return true
	}
	child := n.child(cols[0])
	if child == nil || !t.remove(child, cols[1:]) {
		return false
	}
	if child.empty() {
		n.removeChild(cols[0])
	}
	return true
}

// ContainsSubsetOf reports whether some stored set is a subset of x
// (including x itself and the empty set).
func (t *Trie) ContainsSubsetOf(x bitset.Set) bool {
	return containsSubsetOf(&t.root, x.Columns())
}

func containsSubsetOf(n *node, cols []int) bool {
	if n.terminal {
		return true
	}
	if len(n.cols) == 0 {
		return false
	}
	for i, c := range cols {
		if child := n.child(c); child != nil {
			if containsSubsetOf(child, cols[i+1:]) {
				return true
			}
		}
	}
	return false
}

// SubsetsOf returns all stored sets that are subsets of x, in deterministic
// (sorted-path) order.
func (t *Trie) SubsetsOf(x bitset.Set) []bitset.Set {
	var out []bitset.Set
	subsetsOf(&t.root, x.Columns(), bitset.Set{}, &out)
	return out
}

func subsetsOf(n *node, cols []int, path bitset.Set, out *[]bitset.Set) {
	if n.terminal {
		*out = append(*out, path)
	}
	if len(n.cols) == 0 {
		return
	}
	// Walk the query columns and the child columns in tandem; both are
	// sorted, so each child is visited at most once.
	ci := 0
	for i, c := range cols {
		for ci < len(n.cols) && n.cols[ci] < c {
			ci++
		}
		if ci == len(n.cols) {
			return
		}
		if n.cols[ci] == c {
			subsetsOf(n.children[ci], cols[i+1:], path.With(c), out)
		}
	}
}

// ContainsSupersetOf reports whether some stored set is a superset of x
// (including x itself).
func (t *Trie) ContainsSupersetOf(x bitset.Set) bool {
	return containsSupersetOf(&t.root, x.Columns())
}

func containsSupersetOf(n *node, cols []int) bool {
	if len(cols) == 0 {
		return hasAnyTerminal(n)
	}
	next := cols[0]
	for i, c := range n.cols {
		switch {
		case c < next:
			if containsSupersetOf(n.children[i], cols) {
				return true
			}
		case c == next:
			return containsSupersetOf(n.children[i], cols[1:])
		default:
			return false // children are sorted; none can reach next
		}
	}
	return false
}

func hasAnyTerminal(n *node) bool {
	if n.terminal {
		return true
	}
	for _, child := range n.children {
		if hasAnyTerminal(child) {
			return true
		}
	}
	return false
}

// SupersetsOf returns all stored sets that are supersets of x, in
// deterministic order. This is the connector look-up primitive of MUDS
// (paper Sec. 5.1, Table 2).
func (t *Trie) SupersetsOf(x bitset.Set) []bitset.Set {
	var out []bitset.Set
	supersetsOf(&t.root, x.Columns(), bitset.Set{}, &out)
	return out
}

func supersetsOf(n *node, cols []int, path bitset.Set, out *[]bitset.Set) {
	if len(cols) == 0 {
		collect(n, path, out)
		return
	}
	next := cols[0]
	for i, c := range n.cols {
		switch {
		case c < next:
			supersetsOf(n.children[i], cols, path.With(c), out)
		case c == next:
			supersetsOf(n.children[i], cols[1:], path.With(c), out)
			return // sorted children: later ones skip next entirely
		default:
			return
		}
	}
}

func collect(n *node, path bitset.Set, out *[]bitset.Set) {
	if n.terminal {
		*out = append(*out, path)
	}
	for i, c := range n.cols {
		collect(n.children[i], path.With(c), out)
	}
}

// All returns every stored set in deterministic order.
func (t *Trie) All() []bitset.Set {
	var out []bitset.Set
	collect(&t.root, bitset.Set{}, &out)
	return out
}

// ForEach visits every stored set in deterministic order; fn returning false
// stops the traversal.
func (t *Trie) ForEach(fn func(s bitset.Set) bool) {
	forEach(&t.root, bitset.Set{}, fn)
}

func forEach(n *node, path bitset.Set, fn func(bitset.Set) bool) bool {
	if n.terminal && !fn(path) {
		return false
	}
	for i, c := range n.cols {
		if !forEach(n.children[i], path.With(c), fn) {
			return false
		}
	}
	return true
}
