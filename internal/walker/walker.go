// Package walker implements the randomized lattice traversal shared by DUCC
// (paper Sec. 2.2) and by MUDS' R\Z sub-lattice phase (paper Sec. 4.2/5.2).
//
// Both problems are instances of learning a monotone predicate over the
// subset lattice of a base column set: uniqueness of a column combination
// (DUCC) and "X functionally determines a fixed attribute A" (MUDS; the
// downward pruning of Lemma 4 is exactly the monotonicity of that
// predicate). The walker finds the minimal true sets and the maximal false
// sets by walking up from false nodes and down from true nodes, pruning with
// set-tries, and filling unvisited "holes" by comparing the found minimal
// true sets against the minimal hitting sets of the complements of the found
// maximal false sets.
package walker

import (
	"context"
	"math/rand"

	"holistic/internal/bitset"
	"holistic/internal/settrie"
)

// Predicate decides a monotone property of column sets within the base
// lattice: pred(s) true implies pred(t) for every t ⊇ s.
type Predicate func(s bitset.Set) bool

// Result of a lattice walk.
type Result struct {
	// MinimalTrue are the minimal sets satisfying the predicate, sorted.
	MinimalTrue []bitset.Set
	// MaximalFalse are the maximal sets falsifying the predicate, sorted.
	// Together the two families decide the whole lattice.
	MaximalFalse []bitset.Set
	// Checks counts the predicate evaluations (the validity checks that
	// pruning could not avoid).
	Checks int
}

// Options configures a walk.
type Options struct {
	// Seed fixes the randomized traversal order. Results are independent of
	// the seed; only the number of checks varies.
	Seed int64
	// KnownTrue seeds the walk with sets already certified true (e.g. FD
	// left-hand sides inferred by earlier MUDS phases). They are trusted
	// without re-evaluation. Ideally they are already minimal; a
	// non-minimal seed is repaired during hole filling at the cost of
	// extra predicate evaluations.
	KnownTrue []bitset.Set
	// KnownFalse seeds the walk with sets already certified false (e.g. the
	// R\Z rule of paper Sec. 4: no subset of R\Z determines a column of Z).
	// They are trusted without re-evaluation.
	KnownFalse []bitset.Set
}

// Run learns the monotone predicate over the subsets of base. It cannot be
// cancelled; long traversals should use RunContext.
func Run(base bitset.Set, pred Predicate, opts Options) Result {
	res, _ := RunContext(context.Background(), base, pred, opts)
	return res
}

// RunContext learns the monotone predicate over the subsets of base,
// checking ctx between predicate evaluations. When ctx is cancelled or its
// deadline passes, the walk stops promptly and returns the partial Result
// together with ctx.Err(). A partial result may miss certificates and may
// contain non-minimal (resp. non-maximal) sets — on a non-nil error the
// families are progress information, not answers.
func RunContext(ctx context.Context, base bitset.Set, pred Predicate, opts Options) (Result, error) {
	w := &state{
		ctx:  ctx,
		base: base,
		pred: pred,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	for _, s := range opts.KnownFalse {
		w.falses.Add(s.Intersect(base))
	}
	for _, s := range opts.KnownTrue {
		if !s.IsSubsetOf(base) || s.IsEmpty() {
			continue
		}
		w.trues.Add(s)
	}
	w.run()

	res := Result{Checks: w.checks}
	res.MinimalTrue = w.trues.All()
	bitset.Sort(res.MinimalTrue)
	res.MaximalFalse = w.falses.All()
	bitset.Sort(res.MaximalFalse)
	return res, w.err
}

type state struct {
	ctx    context.Context
	base   bitset.Set
	pred   Predicate
	rng    *rand.Rand
	trues  settrie.MinimalFamily
	falses settrie.MaximalFamily
	checks int
	err    error
}

// cancelled reports whether the walk should stop, latching ctx's error. The
// ctx poll costs a mutex acquisition, which every caller amortises over at
// least one predicate evaluation (a PLI operation in the profiling walks).
func (w *state) cancelled() bool {
	if w.err != nil {
		return true
	}
	if err := w.ctx.Err(); err != nil {
		w.err = err
		return true
	}
	return false
}

func (w *state) run() {
	if w.base.IsEmpty() {
		return
	}
	// Phase 1: classify single columns; true singles are minimal, false
	// singles seed the walk.
	var falseSingles []int
	w.base.ForEach(func(c int) {
		if w.cancelled() {
			return
		}
		s := bitset.Single(c)
		if _, known := w.classified(s); known {
			// Pre-seeded certificate already decides this column.
			if !w.falses.CoversSupersetOf(s) {
				return
			}
			falseSingles = append(falseSingles, c)
			return
		}
		if w.check(s) {
			w.trues.Add(s)
		} else {
			w.falses.Add(s)
			falseSingles = append(falseSingles, c)
		}
	})

	// Phase 2: random walk from 2-column seeds over the false columns.
	var seeds []bitset.Set
	for i := 0; i < len(falseSingles); i++ {
		for j := i + 1; j < len(falseSingles); j++ {
			seeds = append(seeds, bitset.New(falseSingles[i], falseSingles[j]))
		}
	}
	w.rng.Shuffle(len(seeds), func(i, j int) { seeds[i], seeds[j] = seeds[j], seeds[i] })
	for _, s := range seeds {
		if w.cancelled() {
			return
		}
		w.walk(s)
	}

	// Phase 3: fill holes until the minimal hitting sets of the complements
	// of the maximal false sets coincide with the found minimal true sets.
	for !w.cancelled() && w.fillHoles() {
	}
}

func (w *state) classified(s bitset.Set) (value, known bool) {
	if w.trues.CoversSubsetOf(s) {
		return true, true
	}
	if w.falses.CoversSupersetOf(s) {
		return false, true
	}
	return false, false
}

func (w *state) check(s bitset.Set) bool {
	w.checks++
	return w.pred(s)
}

// resolve returns the predicate value of s, via the stores when possible.
func (w *state) resolve(s bitset.Set) bool {
	if v, known := w.classified(s); known {
		return v
	}
	return w.check(s)
}

// walk classifies s and records the minimal-true or maximal-false endpoint
// reached from it. It reports whether a new certificate entered the stores.
func (w *state) walk(s bitset.Set) bool {
	if w.cancelled() {
		return false
	}
	if _, known := w.classified(s); known {
		return false
	}
	if w.check(s) {
		return w.trues.Add(w.minimize(s))
	}
	return w.falses.Add(w.maximize(s))
}

// minimize walks down from the true set s until no direct subset is true.
func (w *state) minimize(s bitset.Set) bitset.Set {
	for !w.cancelled() {
		cols := s.Columns()
		w.rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		descended := false
		for _, c := range cols {
			sub := s.Without(c)
			if sub.IsEmpty() {
				continue
			}
			if w.resolve(sub) {
				s = sub
				descended = true
				break
			}
			w.falses.Add(sub)
		}
		if !descended {
			return s
		}
	}
	return s // cancelled mid-descent: partial, reported via the walk's error
}

// maximize walks up from the false set s until every direct superset within
// base is true.
func (w *state) maximize(s bitset.Set) bitset.Set {
	for !w.cancelled() {
		missing := w.base.Diff(s).Columns()
		w.rng.Shuffle(len(missing), func(i, j int) { missing[i], missing[j] = missing[j], missing[i] })
		ascended := false
		for _, c := range missing {
			sup := s.With(c)
			if !w.resolve(sup) {
				s = sup
				ascended = true
				break
			}
		}
		if !ascended {
			return s
		}
	}
	return s // cancelled mid-ascent: partial, reported via the walk's error
}

func (w *state) fillHoles() bool {
	complements := make([]bitset.Set, 0, w.falses.Len())
	w.falses.ForEach(func(m bitset.Set) bool {
		complements = append(complements, w.base.Diff(m))
		return true
	})
	candidates := MinimalHittingSets(complements, w.base)
	progress := false
	for _, cand := range candidates {
		// The empty hitting set arises only when there is no false
		// certificate at all; minimal true sets are non-empty by definition
		// here (the empty set's value is the caller's concern).
		if cand.IsEmpty() || w.trues.Contains(cand) {
			continue
		}
		if w.walk(cand) {
			progress = true
		}
	}
	// Dually, a found minimal-true set that is not a minimal hitting set
	// signals a missing maximal-false certificate below it.
	var hits settrie.MinimalFamily
	for _, h := range candidates {
		hits.Add(h)
	}
	for _, u := range w.trues.All() {
		if hits.Contains(u) {
			continue
		}
		for _, sub := range u.DirectSubsets() {
			if sub.IsEmpty() {
				continue
			}
			if w.walk(sub) {
				progress = true
			}
		}
	}
	return progress
}

// MinimalHittingSets enumerates the minimal subsets of base that intersect
// every set of families. Branch-and-prune on the smallest un-hit family set,
// carrying the still-un-hit families down each branch so no full rescans
// happen; global minimality is enforced by a MinimalFamily filter.
func MinimalHittingSets(families []bitset.Set, base bitset.Set) []bitset.Set {
	// Only ⊆-minimal family sets constrain the hitting sets: hitting a set
	// hits all its supersets. This also catches empty members (nothing can
	// hit them, so there is no hitting set at all).
	var minimal settrie.MinimalFamily
	for _, f := range families {
		if f.IsEmpty() {
			return nil
		}
		minimal.Add(f.Intersect(base))
	}
	constraints := minimal.All()
	for _, f := range constraints {
		if f.IsEmpty() {
			return nil // a family member had no columns inside base
		}
	}
	// Branch on small sets first: fewer alternatives near the root.
	bitset.Sort(constraints)

	var acc settrie.MinimalFamily
	// scratch[d] holds the filtered constraint list at recursion depth d;
	// reusing the buffers keeps the enumeration allocation-free.
	var scratch [][]bitset.Set
	var recurse func(depth int, partial bitset.Set, remaining []bitset.Set)
	recurse = func(depth int, partial bitset.Set, remaining []bitset.Set) {
		if acc.CoversSubsetOf(partial) {
			return
		}
		if len(remaining) == 0 {
			acc.Add(partial)
			return
		}
		for depth >= len(scratch) {
			scratch = append(scratch, nil)
		}
		first := remaining[0]
		first.ForEach(func(c int) {
			rest := scratch[depth][:0]
			for _, f := range remaining[1:] {
				if !f.Has(c) {
					rest = append(rest, f)
				}
			}
			scratch[depth] = rest
			recurse(depth+1, partial.With(c), rest)
		})
	}
	recurse(0, bitset.Set{}, constraints)
	out := acc.All()
	bitset.Sort(out)
	return out
}
