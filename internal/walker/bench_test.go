package walker

import (
	"math/rand"
	"testing"

	"holistic/internal/bitset"
)

// BenchmarkWalk measures the randomized lattice learning of a monotone
// predicate with a mid-lattice boundary, the workload of DUCC and MUDS'
// sub-lattice phases.
func BenchmarkWalk(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	var gens []bitset.Set
	for i := 0; i < 12; i++ {
		var g bitset.Set
		for c := 0; c < 14; c++ {
			if rnd.Intn(4) == 0 {
				g = g.With(c)
			}
		}
		if g.IsEmpty() {
			g = g.With(rnd.Intn(14))
		}
		gens = append(gens, g)
	}
	pred := func(s bitset.Set) bool {
		for _, g := range gens {
			if g.IsSubsetOf(s) {
				return true
			}
		}
		return false
	}
	base := bitset.Full(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(base, pred, Options{Seed: int64(i)})
		if len(res.MinimalTrue) == 0 {
			b.Fatal("no minimal true sets")
		}
	}
}

// BenchmarkMinimalHittingSets measures the duality computation behind hole
// detection.
func BenchmarkMinimalHittingSets(b *testing.B) {
	rnd := rand.New(rand.NewSource(2))
	var fams []bitset.Set
	for i := 0; i < 200; i++ {
		var f bitset.Set
		for c := 0; c < 16; c++ {
			if rnd.Intn(3) == 0 {
				f = f.With(c)
			}
		}
		if f.IsEmpty() {
			f = f.With(rnd.Intn(16))
		}
		fams = append(fams, f)
	}
	base := bitset.Full(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(MinimalHittingSets(fams, base)) == 0 {
			b.Fatal("no hitting sets")
		}
	}
}
