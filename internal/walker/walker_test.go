package walker

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
)

// naive computes the minimal true and maximal false sets of a monotone
// predicate by full enumeration.
func naive(base bitset.Set, pred Predicate) ([]bitset.Set, []bitset.Set) {
	var all []bitset.Set
	n := base.Len()
	for k := 1; k <= n; k++ {
		base.SubsetsOfSize(k, func(s bitset.Set) bool {
			all = append(all, s)
			return true
		})
	}
	var minTrue, maxFalse []bitset.Set
	for _, s := range all {
		v := pred(s)
		if v {
			minimal := true
			for _, sub := range s.DirectSubsets() {
				if !sub.IsEmpty() && pred(sub) {
					minimal = false
					break
				}
			}
			if minimal {
				minTrue = append(minTrue, s)
			}
		} else {
			maximal := true
			for _, sup := range s.DirectSupersets(bitset.MaxColumns) {
				if sup.IsSubsetOf(base) && !pred(sup) {
					maximal = false
					break
				}
			}
			if maximal {
				maxFalse = append(maxFalse, s)
			}
		}
	}
	bitset.Sort(minTrue)
	bitset.Sort(maxFalse)
	return minTrue, maxFalse
}

// monotonePred builds a random monotone predicate from generator sets:
// s is true iff it contains one of the generators.
func monotonePred(gens []bitset.Set) Predicate {
	return func(s bitset.Set) bool {
		for _, g := range gens {
			if g.IsSubsetOf(s) {
				return true
			}
		}
		return false
	}
}

func TestSimplePredicate(t *testing.T) {
	base := bitset.FromLetters("ABCD")
	gens := []bitset.Set{bitset.FromLetters("AB"), bitset.FromLetters("C")}
	res := Run(base, monotonePred(gens), Options{Seed: 1})
	wantTrue := []bitset.Set{bitset.FromLetters("C"), bitset.FromLetters("AB")}
	if !reflect.DeepEqual(res.MinimalTrue, wantTrue) {
		t.Errorf("MinimalTrue = %v, want %v", res.MinimalTrue, wantTrue)
	}
	// Maximal false: ABD minus... sets avoiding C and not containing AB:
	// {A,B,D} without both A and B: AD, BD are false, ABD contains AB → true.
	wantFalse := []bitset.Set{bitset.FromLetters("AD"), bitset.FromLetters("BD")}
	if !reflect.DeepEqual(res.MaximalFalse, wantFalse) {
		t.Errorf("MaximalFalse = %v, want %v", res.MaximalFalse, wantFalse)
	}
}

func TestAllTrue(t *testing.T) {
	base := bitset.FromLetters("ABC")
	res := Run(base, func(bitset.Set) bool { return true }, Options{Seed: 0})
	want := []bitset.Set{bitset.FromLetters("A"), bitset.FromLetters("B"), bitset.FromLetters("C")}
	if !reflect.DeepEqual(res.MinimalTrue, want) {
		t.Errorf("MinimalTrue = %v, want %v", res.MinimalTrue, want)
	}
	if len(res.MaximalFalse) != 0 {
		t.Errorf("MaximalFalse = %v, want none", res.MaximalFalse)
	}
}

func TestAllFalse(t *testing.T) {
	base := bitset.FromLetters("ABC")
	res := Run(base, func(bitset.Set) bool { return false }, Options{Seed: 0})
	if len(res.MinimalTrue) != 0 {
		t.Errorf("MinimalTrue = %v, want none", res.MinimalTrue)
	}
	if !reflect.DeepEqual(res.MaximalFalse, []bitset.Set{base}) {
		t.Errorf("MaximalFalse = %v, want [%v]", res.MaximalFalse, base)
	}
}

func TestEmptyBase(t *testing.T) {
	res := Run(bitset.Set{}, func(bitset.Set) bool { return true }, Options{})
	if len(res.MinimalTrue) != 0 || len(res.MaximalFalse) != 0 || res.Checks != 0 {
		t.Errorf("empty base should produce empty result, got %+v", res)
	}
}

func TestKnownCertificatesReduceChecks(t *testing.T) {
	base := bitset.FromLetters("ABCDE")
	gens := []bitset.Set{bitset.FromLetters("AB"), bitset.FromLetters("CD")}
	pred := monotonePred(gens)

	plain := Run(base, pred, Options{Seed: 7})
	seeded := Run(base, pred, Options{
		Seed:      7,
		KnownTrue: []bitset.Set{bitset.FromLetters("ABE")},
		// DE is genuinely false (contains neither AB nor CD).
		KnownFalse: []bitset.Set{bitset.FromLetters("DE")},
	})
	if !reflect.DeepEqual(plain.MinimalTrue, seeded.MinimalTrue) {
		t.Errorf("seeded MinimalTrue = %v, want %v", seeded.MinimalTrue, plain.MinimalTrue)
	}
	if !reflect.DeepEqual(plain.MaximalFalse, seeded.MaximalFalse) {
		t.Errorf("seeded MaximalFalse = %v, want %v", seeded.MaximalFalse, plain.MaximalFalse)
	}
}

func TestNonFullBase(t *testing.T) {
	// Base restricted to BCD within a wider column space: results must stay
	// inside the base.
	base := bitset.FromLetters("BCD")
	gens := []bitset.Set{bitset.FromLetters("BD")}
	res := Run(base, monotonePred(gens), Options{Seed: 3})
	if !reflect.DeepEqual(res.MinimalTrue, gens) {
		t.Errorf("MinimalTrue = %v, want %v", res.MinimalTrue, gens)
	}
	for _, m := range res.MaximalFalse {
		if !m.IsSubsetOf(base) {
			t.Errorf("MaximalFalse %v escapes base %v", m, base)
		}
	}
}

func TestMinimalHittingSets(t *testing.T) {
	// Families {A,B}, {B,C}: minimal hitting sets are {B}, {A,C}.
	fams := []bitset.Set{bitset.FromLetters("AB"), bitset.FromLetters("BC")}
	got := MinimalHittingSets(fams, bitset.Full(3))
	want := []bitset.Set{bitset.FromLetters("B"), bitset.FromLetters("AC")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hitting sets = %v, want %v", got, want)
	}
	// An empty family set can never be hit.
	if got := MinimalHittingSets([]bitset.Set{{}}, bitset.Full(3)); got != nil {
		t.Errorf("hitting sets with empty member = %v, want nil", got)
	}
	// No constraints: the empty set is the unique minimal hitting set.
	if got := MinimalHittingSets(nil, bitset.Full(3)); len(got) != 1 || !got[0].IsEmpty() {
		t.Errorf("hitting sets of empty family = %v", got)
	}
}

// Property: the walk agrees with full enumeration for random monotone
// predicates, random bases and random seeds.
func TestQuickWalkerMatchesNaive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 250,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			n := 2 + rnd.Intn(6)
			var base bitset.Set
			for c := 0; c < n; c++ {
				base = base.With(c + rnd.Intn(2)) // occasionally sparse bases
			}
			var gens []bitset.Set
			for i := 0; i < rnd.Intn(5); i++ {
				var g bitset.Set
				base.ForEach(func(c int) {
					if rnd.Intn(3) == 0 {
						g = g.With(c)
					}
				})
				if !g.IsEmpty() {
					gens = append(gens, g)
				}
			}
			vals[0] = reflect.ValueOf(base)
			vals[1] = reflect.ValueOf(gens)
			vals[2] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(base bitset.Set, gens []bitset.Set, seed int64) bool {
		pred := monotonePred(gens)
		res := Run(base, pred, Options{Seed: seed})
		wantTrue, wantFalse := naive(base, pred)
		return reflect.DeepEqual(res.MinimalTrue, wantTrue) &&
			reflect.DeepEqual(res.MaximalFalse, wantFalse)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: seeding with valid certificates never changes the result.
func TestQuickSeedingPreservesResult(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			var gens []bitset.Set
			for i := 0; i < 1+rnd.Intn(4); i++ {
				var g bitset.Set
				for c := 0; c < 5; c++ {
					if rnd.Intn(3) == 0 {
						g = g.With(c)
					}
				}
				if !g.IsEmpty() {
					gens = append(gens, g)
				}
			}
			vals[0] = reflect.ValueOf(gens)
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(gens []bitset.Set, seed int64) bool {
		base := bitset.Full(5)
		pred := monotonePred(gens)
		plain := Run(base, pred, Options{Seed: seed})
		// Seed with every true generator and every maximal false set.
		seeded := Run(base, pred, Options{
			Seed:       seed,
			KnownTrue:  gens,
			KnownFalse: plain.MaximalFalse,
		})
		return reflect.DeepEqual(plain.MinimalTrue, seeded.MinimalTrue) &&
			reflect.DeepEqual(plain.MaximalFalse, seeded.MaximalFalse)
	}, cfg); err != nil {
		t.Error(err)
	}
}
