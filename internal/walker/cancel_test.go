package walker

import (
	"context"
	"errors"
	"testing"
	"time"

	"holistic/internal/bitset"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	pred := func(s bitset.Set) bool { calls++; return s.Len() >= 2 }
	_, err := RunContext(ctx, bitset.Full(8), pred, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 8 {
		t.Fatalf("pre-cancelled walk evaluated the predicate %d times", calls)
	}
}

// TestRunContextDeadline aborts a combinatorially hopeless walk (every
// 15-subset of 30 columns is a minimal true set) and requires a prompt
// return with the error.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	pred := func(s bitset.Set) bool { return s.Len() >= 15 }
	start := time.Now()
	res, err := RunContext(ctx, bitset.Full(30), pred, Options{Seed: 5})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled walk took %v, want prompt return", elapsed)
	}
	// The partial result is progress information, not an answer: it must not
	// claim completeness, but whatever it reports must still satisfy the
	// predicate contract.
	for _, s := range res.MinimalTrue {
		if !pred(s) {
			t.Fatalf("reported minimal true set %v fails the predicate", s)
		}
	}
}

func TestRunEqualsRunContextBackground(t *testing.T) {
	pred := func(s bitset.Set) bool { return bitset.New(0, 1).IsSubsetOf(s) || s.Has(2) }
	plain := Run(bitset.Full(6), pred, Options{Seed: 9})
	ctxed, err := RunContext(context.Background(), bitset.Full(6), pred, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.MinimalTrue) != len(ctxed.MinimalTrue) || plain.Checks != ctxed.Checks {
		t.Fatal("background-context walk differs from plain walk")
	}
}
