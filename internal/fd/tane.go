package fd

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/pli"
)

// Tane discovers all minimal FDs with the TANE algorithm (Huhtala et al.,
// referenced as the most popular FD algorithm in paper Sec. 2.3/6.3): a
// level-wise bottom-up traversal of the attribute lattice with rhs-candidate
// sets C+ for minimality pruning, partition refinement for validity checks,
// and key pruning.
//
// When collectUCCs is set, the keys encountered during pruning are returned
// as minimal UCCs. Note that TANE's C+ pruning may cut lattice regions that
// contain further minimal UCCs, so this collection is diagnostic only; the
// holistic algorithms use DUCC or FUN for complete UCC results.
func Tane(p *pli.Provider, collectUCCs bool) Result {
	res, _ := TaneContext(context.Background(), p, collectUCCs)
	return res
}

// TaneContext runs TANE under a context: the level-wise loop polls ctx per
// lattice node and stops promptly when ctx is cancelled or its deadline
// passes, returning the partial result together with ctx.Err(). On a non-nil
// error the FD list is incomplete.
func TaneContext(ctx context.Context, p *pli.Provider, collectUCCs bool) (Result, error) {
	var res Result
	var err error
	rel := p.Relation()
	n := rel.NumColumns()
	store := NewStore()

	constants := ConstantColumns(p)
	constants.ForEach(func(a int) { store.Add(bitset.Set{}, a) })
	working := bitset.Full(n).Diff(constants)

	if !working.IsEmpty() {
		t := &taneState{
			ctx:         ctx,
			p:           p,
			working:     working,
			cplus:       make(map[bitset.Set]bitset.Set),
			store:       store,
			res:         &res,
			collectUCCs: collectUCCs,
		}
		err = t.run()
	}

	res.FDs = store.All()
	bitset.Sort(res.MinimalUCCs)
	return res, err
}

type taneState struct {
	ctx     context.Context
	p       *pli.Provider
	working bitset.Set

	// cplus holds the rhs-candidate sets C+(X) of every set processed so
	// far, plus on-demand reconstructions for sets that key pruning removed
	// before they were generated (C+(Y) = ⋂_{B∈Y} C+(Y\{B}), the TANE
	// paper's recomputation rule for pruned sets).
	cplus map[bitset.Set]bitset.Set

	store       *Store
	res         *Result
	collectUCCs bool
}

func (t *taneState) run() error {
	var level []bitset.Set
	t.working.ForEach(func(c int) { level = append(level, bitset.Single(c)) })

	for len(level) > 0 {
		// COMPUTE_DEPENDENCIES: candidate rhs sets and validity checks.
		for _, x := range level {
			// Each node costs PLI work (cardinality checks); poll ctx at the
			// same rate so a deadline interrupts wide levels promptly.
			if err := t.ctx.Err(); err != nil {
				return err
			}
			c := t.working
			for _, sub := range x.DirectSubsets() {
				c = c.Intersect(t.cplusOf(sub))
			}
			candidates := x.Intersect(c)
			for a := candidates.First(); a >= 0; a = candidates.NextAfter(a) {
				lhs := x.Without(a)
				t.res.Checks++
				if t.p.Cardinality(lhs) == t.p.Cardinality(x) {
					t.store.Add(lhs, a)
					c = c.Without(a)
					c = c.Diff(t.working.Diff(x)) // remove all B ∈ R \ X
				}
			}
			t.cplus[x] = c
		}

		// PRUNE: drop empty-C+ nodes and keys; key pruning may emit FDs.
		var remaining []bitset.Set
		for _, x := range level {
			if err := t.ctx.Err(); err != nil {
				return err
			}
			if t.cplus[x].IsEmpty() {
				continue
			}
			if t.p.IsUnique(x) {
				t.handleKey(x)
				continue
			}
			remaining = append(remaining, x)
		}

		level = bitset.AprioriGen(remaining)
	}
	return nil
}

// cplusOf returns C+(y), reconstructing it recursively when y was never
// generated because key pruning removed one of its subsets from the lattice.
func (t *taneState) cplusOf(y bitset.Set) bitset.Set {
	if y.IsEmpty() {
		return t.working // C+(∅) = R
	}
	if c, ok := t.cplus[y]; ok {
		return c
	}
	c := t.working
	for _, sub := range y.DirectSubsets() {
		c = c.Intersect(t.cplusOf(sub))
	}
	t.cplus[y] = c
	return c
}

// handleKey applies TANE's key pruning to the superkey x: x is removed from
// the level, and x → A is output for every A ∈ C+(x) \ x that is in the C+
// of every other co-atom of x ∪ {A} (which certifies minimality).
func (t *taneState) handleKey(x bitset.Set) {
	if t.collectUCCs {
		// A key that survived into the level has only non-key subsets,
		// making it a minimal UCC (within the lattice region C+ kept).
		t.res.MinimalUCCs = append(t.res.MinimalUCCs, x)
	}
	extra := t.cplus[x].Diff(x)
	for a := extra.First(); a >= 0; a = extra.NextAfter(a) {
		ok := true
		for b := x.First(); b >= 0; b = x.NextAfter(b) {
			if !t.cplusOf(x.With(a).Without(b)).Has(a) {
				ok = false
				break
			}
		}
		if ok {
			t.store.Add(x, a)
		}
	}
}
