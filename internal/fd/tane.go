package fd

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/parallel"
	"holistic/internal/pli"
)

// Tane discovers all minimal FDs with the TANE algorithm (Huhtala et al.,
// referenced as the most popular FD algorithm in paper Sec. 2.3/6.3): a
// level-wise bottom-up traversal of the attribute lattice with rhs-candidate
// sets C+ for minimality pruning, partition refinement for validity checks,
// and key pruning.
//
// When collectUCCs is set, the keys encountered during pruning are returned
// as minimal UCCs. Note that TANE's C+ pruning may cut lattice regions that
// contain further minimal UCCs, so this collection is diagnostic only; the
// holistic algorithms use DUCC or FUN for complete UCC results.
func Tane(p *pli.Provider, collectUCCs bool) Result {
	res, _ := TaneContext(context.Background(), p, collectUCCs, 1)
	return res
}

// TaneContext runs TANE under a context: the level-wise loop polls ctx per
// lattice node and stops promptly when ctx is cancelled or its deadline
// passes, returning the partial result together with ctx.Err(). On a non-nil
// error the FD list is incomplete.
//
// workers bounds the goroutines validating the lattice nodes of one level
// (<= 0 selects GOMAXPROCS). Every node's candidate computation and the
// uniqueness probe of the prune step write into indexed slots applied in
// node order, so the discovered FDs are identical for every worker count.
// With workers > 1 the provider's cache must be safe for concurrent use (see
// the pli.Provider concurrency contract).
func TaneContext(ctx context.Context, p *pli.Provider, collectUCCs bool, workers int) (Result, error) {
	var res Result
	var err error
	rel := p.Relation()
	n := rel.NumColumns()
	store := NewStore()

	constants := ConstantColumns(p)
	constants.ForEach(func(a int) { store.Add(bitset.Set{}, a) })
	working := bitset.Full(n).Diff(constants)

	if !working.IsEmpty() {
		t := &taneState{
			ctx:         ctx,
			p:           p,
			working:     working,
			workers:     workers,
			cplus:       make(map[bitset.Set]bitset.Set),
			store:       store,
			res:         &res,
			collectUCCs: collectUCCs,
		}
		err = t.run()
	}

	res.FDs = store.All()
	bitset.Sort(res.MinimalUCCs)
	return res, err
}

type taneState struct {
	ctx     context.Context
	p       *pli.Provider
	working bitset.Set
	workers int

	// cplus holds the rhs-candidate sets C+(X) of every set processed so
	// far, plus on-demand reconstructions for sets that key pruning removed
	// before they were generated (C+(Y) = ⋂_{B∈Y} C+(Y\{B}), the TANE
	// paper's recomputation rule for pruned sets).
	cplus map[bitset.Set]bitset.Set

	store       *Store
	res         *Result
	collectUCCs bool
}

func (t *taneState) run() error {
	var level []bitset.Set
	t.working.ForEach(func(c int) { level = append(level, bitset.Single(c)) })

	for len(level) > 0 {
		// Resolve C+ of every direct subset up front: cplusOf memoises
		// reconstructions of pruned sets into the shared map, which must not
		// happen inside the worker pool. After this pass the parallel phase
		// only reads the map.
		for _, x := range level {
			if err := t.ctx.Err(); err != nil {
				return err
			}
			for _, sub := range x.DirectSubsets() {
				t.cplusOf(sub)
			}
		}

		// COMPUTE_DEPENDENCIES: candidate rhs sets and validity checks, one
		// lattice node per worker-pool task. A node reads only the previous
		// level's C+ sets and the shared provider; its verdicts (the final
		// C+(x) and the FDs found at x) land in indexed slots and are applied
		// in node order below, so the run is deterministic for every worker
		// count. parallel.For polls ctx per node, preserving the sequential
		// version's cancellation granularity.
		type nodeVerdict struct {
			cplus  bitset.Set // final C+(x)
			valid  bitset.Set // attributes a with x\{a} → a valid
			checks int
		}
		verdicts := make([]nodeVerdict, len(level))
		err := parallel.For(t.ctx, t.workers, len(level), func(i int) {
			x := level[i]
			c := t.working
			for _, sub := range x.DirectSubsets() {
				c = c.Intersect(t.cplusRead(sub))
			}
			var valid bitset.Set
			checks := 0
			candidates := x.Intersect(c)
			for a := candidates.First(); a >= 0; a = candidates.NextAfter(a) {
				lhs := x.Without(a)
				checks++
				// |π_lhs| = |π_x| iff π_lhs refines column a (Lemma 1), so
				// the verdict is a CheckFD on the validation fast path —
				// neither π_lhs nor π_x is materialised for it.
				if t.p.CheckFD(lhs, a) {
					valid = valid.With(a)
					c = c.Without(a)
					c = c.Diff(t.working.Diff(x)) // remove all B ∈ R \ X
				}
			}
			verdicts[i] = nodeVerdict{cplus: c, valid: valid, checks: checks}
		})
		if err != nil {
			return err
		}
		for i, x := range level {
			v := verdicts[i]
			t.res.Checks += v.checks
			v.valid.ForEach(func(a int) { t.store.Add(x.Without(a), a) })
			t.cplus[x] = v.cplus
		}

		// PRUNE: drop empty-C+ nodes and keys; key pruning may emit FDs. The
		// uniqueness probes are PLI work and fan out across the pool; the
		// key handling itself reconstructs C+ sets (map writes) and stays
		// sequential, applied in node order.
		unique := make([]bool, len(level))
		err = parallel.For(t.ctx, t.workers, len(level), func(i int) {
			if !t.cplus[level[i]].IsEmpty() {
				unique[i] = t.p.IsUnique(level[i])
			}
		})
		if err != nil {
			return err
		}
		var remaining []bitset.Set
		for i, x := range level {
			if t.cplus[x].IsEmpty() {
				continue
			}
			if unique[i] {
				t.handleKey(x)
				continue
			}
			remaining = append(remaining, x)
		}

		level = bitset.AprioriGen(remaining)
	}
	return nil
}

// cplusRead returns C+(y) without touching the memoisation map: every
// non-empty direct subset was resolved by the sequential pre-pass, so a plain
// map read suffices and is safe inside the worker pool.
func (t *taneState) cplusRead(y bitset.Set) bitset.Set {
	if y.IsEmpty() {
		return t.working // C+(∅) = R
	}
	return t.cplus[y]
}

// cplusOf returns C+(y), reconstructing it recursively when y was never
// generated because key pruning removed one of its subsets from the lattice.
func (t *taneState) cplusOf(y bitset.Set) bitset.Set {
	if y.IsEmpty() {
		return t.working // C+(∅) = R
	}
	if c, ok := t.cplus[y]; ok {
		return c
	}
	c := t.working
	for _, sub := range y.DirectSubsets() {
		c = c.Intersect(t.cplusOf(sub))
	}
	t.cplus[y] = c
	return c
}

// handleKey applies TANE's key pruning to the superkey x: x is removed from
// the level, and x → A is output for every A ∈ C+(x) \ x that is in the C+
// of every other co-atom of x ∪ {A} (which certifies minimality).
func (t *taneState) handleKey(x bitset.Set) {
	if t.collectUCCs {
		// A key that survived into the level has only non-key subsets,
		// making it a minimal UCC (within the lattice region C+ kept).
		t.res.MinimalUCCs = append(t.res.MinimalUCCs, x)
	}
	extra := t.cplus[x].Diff(x)
	for a := extra.First(); a >= 0; a = extra.NextAfter(a) {
		ok := true
		for b := x.First(); b >= 0; b = x.NextAfter(b) {
			if !t.cplusOf(x.With(a).Without(b)).Has(a) {
				ok = false
				break
			}
		}
		if ok {
			t.store.Add(x, a)
		}
	}
}
