package fd

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/walker"
)

// RepairRHS re-discovers the minimal FDs with right-hand side rhs after an
// appended batch invalidated some prior left-hand sides. "X → rhs" is a
// monotone predicate in X, so the generic lattice walker applies; the repair
// seeds it with everything the prior result still certifies:
//
//   - knownTrue: the prior minimal LHSs that revalidated on the extended
//     relation. They are still minimal — their proper subsets were violated
//     before the append, and appended rows never repair a violated FD.
//   - knownFalse: the violated prior LHSs, plus the prior maximal non-FD
//     sets, reconstructed by hitting-set duality from the full prior minimal
//     LHS family: base \ h for each minimal hitting set h of the prior LHSs.
//     Both remain false by the same monotonicity.
//
// base must exclude rhs and the constant columns of the extended relation. It
// may properly contain the prior walk's base: columns that were constant
// before the batch and became non-constant enter the lattice here, and the
// duality certificates stay sound over the grown base — while such a column A
// was constant, X ∪ {A} → rhs held iff X → rhs, so any set whose restriction
// to the old base missed every prior LHS was false before the batch and is
// still false now. oldLHSs is the complete prior minimal LHS family ({∅} for
// a previously constant rhs, empty when no FD with this rhs held). The
// returned sets are the complete minimal LHS family for rhs over base, plus
// the predicate-evaluation count.
func RepairRHS(ctx context.Context, p *pli.Provider, base bitset.Set, rhs int, valid, violated []bitset.Set, oldLHSs []bitset.Set, seed int64) ([]bitset.Set, int, error) {
	knownFalse := append([]bitset.Set(nil), violated...)
	for _, h := range walker.MinimalHittingSets(oldLHSs, base) {
		knownFalse = append(knownFalse, base.Diff(h))
	}
	res, err := walker.RunContext(ctx, base, func(x bitset.Set) bool {
		return p.CheckFD(x, rhs)
	}, walker.Options{Seed: seed, KnownTrue: valid, KnownFalse: knownFalse})
	return res.MinimalTrue, res.Checks, err
}
