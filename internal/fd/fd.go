// Package fd implements functional dependency discovery: the TANE and FUN
// baselines (paper Secs. 2.3 and 3.2) and a brute-force oracle for tests.
// FUN doubles as the FD part of Holistic FUN: it returns the minimal UCCs
// (its keys) alongside the minimal FDs, which by Lemma 3 of the paper it
// must traverse anyway.
//
// All algorithms emit the complete set of *minimal, non-trivial* FDs,
// including constant columns as FDs with an empty left-hand side (∅ → A).
package fd

import (
	"fmt"
	"sort"

	"holistic/internal/bitset"
	"holistic/internal/pli"
)

// FD is a minimal functional dependency LHS → RHS with a single right-hand
// side attribute. A constant column A is represented as ∅ → A.
type FD struct {
	LHS bitset.Set
	RHS int
}

// String formats the FD in the paper's letter notation, e.g. "AF → B".
func (f FD) String() string {
	rhs := fmt.Sprintf("col%d", f.RHS)
	if f.RHS < 26 {
		rhs = string(rune('A' + f.RHS))
	}
	return fmt.Sprintf("%v → %s", f.LHS, rhs)
}

// Sort orders FDs by (LHS, RHS) for deterministic output and comparisons.
func Sort(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS != fds[j].LHS {
			return bitset.Less(fds[i].LHS, fds[j].LHS)
		}
		return fds[i].RHS < fds[j].RHS
	})
}

// Store collects FDs grouped by left-hand side, the map(lhs → rhs-set)
// representation used by MUDS' algorithms (paper Algorithm 1/2).
type Store struct {
	byLHS map[bitset.Set]bitset.Set
	count int
}

// NewStore returns an empty FD store.
func NewStore() *Store {
	return &Store{byLHS: make(map[bitset.Set]bitset.Set)}
}

// Add records lhs → rhs. Trivial FDs (rhs ∈ lhs) are rejected with a panic:
// no discovery algorithm may produce them.
func (s *Store) Add(lhs bitset.Set, rhs int) {
	if lhs.Has(rhs) {
		panic(fmt.Sprintf("fd: trivial FD %v → %d", lhs, rhs))
	}
	prev := s.byLHS[lhs]
	next := prev.With(rhs)
	if next != prev {
		s.byLHS[lhs] = next
		s.count++
	}
}

// AddAll records lhs → A for every A in rhs.
func (s *Store) AddAll(lhs bitset.Set, rhs bitset.Set) {
	rhs.ForEach(func(a int) { s.Add(lhs, a) })
}

// RHS returns the right-hand sides recorded for lhs (the "FDs[lhs]" look-up
// of Algorithm 2).
func (s *Store) RHS(lhs bitset.Set) bitset.Set { return s.byLHS[lhs] }

// Remove deletes lhs → rhs if present and reports whether it was stored.
func (s *Store) Remove(lhs bitset.Set, rhs int) bool {
	prev, ok := s.byLHS[lhs]
	if !ok || !prev.Has(rhs) {
		return false
	}
	next := prev.Without(rhs)
	if next.IsEmpty() {
		delete(s.byLHS, lhs)
	} else {
		s.byLHS[lhs] = next
	}
	s.count--
	return true
}

// Count returns the number of FDs (lhs, single rhs attribute) stored.
func (s *Store) Count() int { return s.count }

// LHSs returns all left-hand sides in deterministic order.
func (s *Store) LHSs() []bitset.Set {
	out := make([]bitset.Set, 0, len(s.byLHS))
	for lhs := range s.byLHS {
		out = append(out, lhs)
	}
	bitset.Sort(out)
	return out
}

// All returns the stored FDs sorted (nil when empty).
func (s *Store) All() []FD {
	if s.count == 0 {
		return nil
	}
	out := make([]FD, 0, s.count)
	for lhs, rhs := range s.byLHS {
		rhs.ForEach(func(a int) {
			out = append(out, FD{LHS: lhs, RHS: a})
		})
	}
	Sort(out)
	return out
}

// ForEach visits every (lhs, rhs-set) pair in deterministic order.
func (s *Store) ForEach(fn func(lhs, rhs bitset.Set) bool) {
	for _, lhs := range s.LHSs() {
		if !fn(lhs, s.byLHS[lhs]) {
			return
		}
	}
}

// ConstantColumns returns the set of columns with at most one distinct
// value. Such columns are exactly the FDs with empty left-hand side; every
// FD algorithm extracts them up front and excludes them from lattice work
// (X → A is never minimal for constant A and non-empty X, and a constant
// column inside a left-hand side never contributes).
func ConstantColumns(p *pli.Provider) bitset.Set {
	var s bitset.Set
	rel := p.Relation()
	for c := 0; c < rel.NumColumns(); c++ {
		if rel.Cardinality(c) <= 1 {
			s = s.With(c)
		}
	}
	return s
}

// Result is the output of an FD discovery run.
type Result struct {
	// FDs are the minimal non-trivial FDs, sorted.
	FDs []FD
	// MinimalUCCs are the minimal unique column combinations encountered as
	// keys during discovery. FUN fills this (Holistic FUN, paper Sec. 3.2);
	// TANE leaves it empty unless collection is requested.
	MinimalUCCs []bitset.Set
	// Checks counts FD validity checks (partition refinements or cardinality
	// comparisons) that required actual PLI work.
	Checks int
}
