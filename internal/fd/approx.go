package fd

import (
	"fmt"
	"sort"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/settrie"
)

// This file adds approximate ("soft") functional dependencies, the
// dependency flavour the paper's related work attributes to CORDS (Sec. 7).
// An FD X → A holds approximately with error g3(X → A) ≤ ε, where g3 is the
// minimum fraction of rows that must be removed for the FD to hold exactly
// (Huhtala et al.'s measure, computable directly from X's stripped
// partition). ε = 0 coincides with exact FDs.

// ApproxFD is a minimal approximate FD together with its g3 error.
type ApproxFD struct {
	LHS   bitset.Set
	RHS   int
	Error float64
}

// String formats the approximate FD with its error.
func (f ApproxFD) String() string {
	rhs := fmt.Sprintf("col%d", f.RHS)
	if f.RHS < 26 {
		rhs = string(rune('A' + f.RHS))
	}
	return fmt.Sprintf("%v → %s (g3=%.3f)", f.LHS, rhs, f.Error)
}

// G3 computes the g3 error of lhs → rhs: the fraction of rows outside the
// per-cluster majority classes of rhs within lhs's partition. Majority
// counting uses a dense per-code arena (the rhs dictionary bounds the code
// range) with a touched list for O(cluster) resets — the same map-free
// grouping discipline as the flat PLI intersections.
func G3(p *pli.Provider, lhs bitset.Set, rhs int) float64 {
	rel := p.Relation()
	if rel.NumRows() == 0 || lhs.Has(rhs) {
		return 0
	}
	col := rel.Column(rhs)
	violations := 0
	counts := make([]int32, rel.Cardinality(rhs))
	var touched []int32
	// The per-cluster majority sum is order-insensitive, so the clusters are
	// streamed off the provider's non-materializing fold instead of
	// materialising (and caching) every enumerated lhs partition.
	p.ForEachCluster(lhs, func(cluster []int32) bool {
		best := int32(0)
		for _, row := range cluster {
			code := col[row]
			if counts[code] == 0 {
				touched = append(touched, code)
			}
			counts[code]++
			if counts[code] > best {
				best = counts[code]
			}
		}
		violations += len(cluster) - int(best)
		for _, code := range touched {
			counts[code] = 0
		}
		touched = touched[:0]
		return true
	})
	return float64(violations) / float64(rel.NumRows())
}

// ApproximateFDs discovers all minimal approximate FDs with g3 error ≤ eps,
// level-wise per right-hand side with superset pruning (approximate FDs are
// upward closed in the left-hand side: refining a partition never increases
// g3). maxLHS bounds the left-hand-side size (0 = unbounded).
func ApproximateFDs(p *pli.Provider, eps float64, maxLHS int) []ApproxFD {
	rel := p.Relation()
	n := rel.NumColumns()
	if maxLHS <= 0 || maxLHS > n-1 {
		maxLHS = n - 1
	}
	var out []ApproxFD

	for a := 0; a < n; a++ {
		// Constant-ish columns: the empty lhs may already satisfy eps.
		if g := G3(p, bitset.Set{}, a); g <= eps {
			out = append(out, ApproxFD{LHS: bitset.Set{}, RHS: a, Error: g})
			continue
		}
		base := bitset.Full(n).Without(a)
		var found settrie.MinimalFamily
		for k := 1; k <= maxLHS; k++ {
			base.SubsetsOfSize(k, func(lhs bitset.Set) bool {
				if found.CoversSubsetOf(lhs) {
					return true // a smaller approximate lhs exists
				}
				if g := G3(p, lhs, a); g <= eps {
					found.Add(lhs)
					out = append(out, ApproxFD{LHS: lhs, RHS: a, Error: g})
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RHS != out[j].RHS {
			return out[i].RHS < out[j].RHS
		}
		return bitset.Less(out[i].LHS, out[j].LHS)
	})
	return out
}
