package fd

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/walker"
)

// This file implements FD inference: attribute-set closures over a set of
// FDs and the derivation of minimal UCCs from minimal FDs (Lemma 2 of the
// paper: on a duplicate-free relation, every attribute set that determines
// all other attributes is a key). It powers the "FDs first" holistic
// strategy the paper discusses in Sec. 3.1 — discover FDs once, then infer
// the minimal UCCs without touching the data again.

// Closure computes the attribute closure of x under the stored FDs: the
// largest set Y ⊇ x with x → Y. Standard fixpoint iteration; the Store's
// lhs → rhs-set representation makes each round a subset scan.
func (s *Store) Closure(x bitset.Set) bitset.Set {
	closure := x
	for {
		grew := false
		for lhs, rhs := range s.byLHS {
			if !rhs.IsSubsetOf(closure) && lhs.IsSubsetOf(closure) {
				closure = closure.Union(rhs)
				grew = true
			}
		}
		if !grew {
			return closure
		}
	}
}

// Implies reports whether lhs → rhs follows from the stored FDs.
func (s *Store) Implies(lhs bitset.Set, rhs int) bool {
	if lhs.Has(rhs) {
		return true
	}
	return s.Closure(lhs).Has(rhs)
}

// DeriveUCCs computes all minimal UCCs of a duplicate-free relation over
// the columns `all` from its complete set of minimal FDs (Lemma 2):
// U is a key iff closure(U) = R. "closure(U) = R" is a monotone lattice
// predicate, so the shared walker enumerates exactly the minimal keys —
// with no data access at all. This realises the "FDs first" approach of
// paper Sec. 3.1 (which the paper rejects for its extra inference cost;
// the cost is measurable with this implementation).
func (s *Store) DeriveUCCs(all bitset.Set, seed int64) []bitset.Set {
	uccs, _ := s.DeriveUCCsContext(context.Background(), all, seed)
	return uccs
}

// DeriveUCCsContext derives the minimal UCCs under a context: the key walk
// polls ctx between closure evaluations and stops promptly on cancellation,
// returning the partial key list together with ctx.Err().
func (s *Store) DeriveUCCsContext(ctx context.Context, all bitset.Set, seed int64) ([]bitset.Set, error) {
	full := all
	pred := func(u bitset.Set) bool {
		return s.Closure(u).IsSupersetOf(full)
	}
	res, err := walker.RunContext(ctx, all, pred, walker.Options{Seed: seed})
	return res.MinimalTrue, err
}
