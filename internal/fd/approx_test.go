package fd

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/pli"
)

func TestG3Exact(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"1", "x"},
		{"2", "y"},
	})
	if g := G3(p, bitset.New(0), 1); g != 0 {
		t.Errorf("g3 of exact FD = %v, want 0", g)
	}
}

func TestG3Violations(t *testing.T) {
	// A → B violated on exactly one of four rows: the A=1 cluster has B
	// values x, x2, x → one removal repairs it. A third column keeps the
	// two (1, x) rows distinct through duplicate removal.
	p := provider(t, []string{"A", "B", "C"}, [][]string{
		{"1", "x", "r1"},
		{"1", "x2", "r2"},
		{"1", "x", "r3"},
		{"2", "y", "r4"},
	})
	// Cluster of A=1 has B ∈ {x, x2, x}: majority 2, violations 1.
	want := 1.0 / 4.0
	if g := G3(p, bitset.New(0), 1); math.Abs(g-want) > 1e-9 {
		t.Errorf("g3 = %v, want %v", g, want)
	}
}

func TestG3TrivialAndEmpty(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{{"1", "x"}, {"2", "y"}})
	if g := G3(p, bitset.New(1), 1); g != 0 {
		t.Error("trivial FD must have zero error")
	}
	// ∅ → B on two distinct values: one of two rows must go.
	if g := G3(p, bitset.Set{}, 1); math.Abs(g-0.5) > 1e-9 {
		t.Errorf("g3(∅→B) = %v, want 0.5", g)
	}
}

func TestApproximateEpsZeroMatchesExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		p := randomProvider(rnd, 5, 25, 3)
		exact := BruteForce(p)
		approx := ApproximateFDs(p, 0, 0)
		var got []FD
		for _, f := range approx {
			if f.Error != 0 {
				t.Fatalf("eps=0 result with non-zero error: %v", f)
			}
			got = append(got, FD{LHS: f.LHS, RHS: f.RHS})
		}
		Sort(got)
		if !reflect.DeepEqual(got, exact) {
			t.Fatalf("eps=0 mismatch:\n got %v\nwant %v\nrows %v", got, exact, p.Relation().Rows())
		}
	}
}

func TestApproximateLooseEps(t *testing.T) {
	// With eps = 1 every singleton lhs (or ∅) qualifies for every rhs.
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"2", "y"},
		{"1", "z"},
	})
	out := ApproximateFDs(p, 1, 0)
	for _, f := range out {
		if !f.LHS.IsEmpty() {
			t.Errorf("eps=1 should already accept the empty lhs, got %v", f)
		}
	}
	if len(out) != 2 {
		t.Errorf("got %d approximate FDs, want 2 (∅→A, ∅→B)", len(out))
	}
}

func TestApproximateMaxLHS(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	p := randomProvider(rnd, 5, 20, 2)
	for _, f := range ApproximateFDs(p, 0.05, 2) {
		if f.LHS.Len() > 2 {
			t.Errorf("maxLHS violated: %v", f)
		}
	}
}

// Property: g3 never increases when the lhs grows (monotonicity that the
// level-wise pruning relies on), and reported errors are within [0, eps].
func TestQuickG3Monotone(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 5, 25, 3))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(p *pli.Provider, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := p.Relation().NumColumns()
		a := rnd.Intn(n)
		var lhs bitset.Set
		for c := 0; c < n; c++ {
			if c != a && rnd.Intn(2) == 0 {
				lhs = lhs.With(c)
			}
		}
		g1 := G3(p, lhs, a)
		// Add one more column.
		for c := 0; c < n; c++ {
			if c != a && !lhs.Has(c) {
				lhs = lhs.With(c)
				break
			}
		}
		g2 := G3(p, lhs, a)
		return g2 <= g1+1e-12
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestApproxFDString(t *testing.T) {
	f := ApproxFD{LHS: bitset.FromLetters("AB"), RHS: 2, Error: 0.125}
	if got := f.String(); got != "AB → C (g3=0.125)" {
		t.Errorf("String = %q", got)
	}
}
