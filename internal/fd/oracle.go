package fd

import (
	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/settrie"
)

// BruteForce computes all minimal FDs by explicit row grouping, independent
// of the PLI machinery. It enumerates, per right-hand side, the left-hand
// side lattice level-wise and skips supersets of found left-hand sides. It
// is the test oracle for TANE, FUN and MUDS; complexity is exponential, so
// callers keep relations small.
func BruteForce(p *pli.Provider) []FD {
	rel := p.Relation()
	n := rel.NumColumns()
	var out []FD

	constants := ConstantColumns(p)
	constants.ForEach(func(a int) {
		out = append(out, FD{LHS: bitset.Set{}, RHS: a})
	})
	working := bitset.Full(n).Diff(constants)

	working.ForEach(func(a int) {
		base := working.Without(a)
		var found settrie.MinimalFamily
		for k := 1; k <= base.Len(); k++ {
			base.SubsetsOfSize(k, func(lhs bitset.Set) bool {
				if found.CoversSubsetOf(lhs) {
					return true // a smaller lhs already determines a
				}
				if bruteHolds(p, lhs, a) {
					found.Add(lhs)
					out = append(out, FD{LHS: lhs, RHS: a})
				}
				return true
			})
		}
	})
	Sort(out)
	return out
}

// bruteHolds checks lhs → a by grouping rows on the lhs values and verifying
// the a-value is constant within every group.
func bruteHolds(p *pli.Provider, lhs bitset.Set, a int) bool {
	rel := p.Relation()
	cols := lhs.Columns()
	colA := rel.Column(a)
	groups := make(map[string]int32, rel.NumRows())
	key := make([]byte, 0, 8*len(cols))
	for row := 0; row < rel.NumRows(); row++ {
		key = key[:0]
		for _, c := range cols {
			v := rel.Column(c)[row]
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), '|')
		}
		if prev, ok := groups[string(key)]; ok {
			if prev != colA[row] {
				return false
			}
		} else {
			groups[string(key)] = colA[row]
		}
	}
	return true
}
