package fd

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
)

func provider(t *testing.T, names []string, rows [][]string) *pli.Provider {
	t.Helper()
	r, err := relation.New("t", names, rows)
	if err != nil {
		t.Fatal(err)
	}
	return pli.NewProvider(r, 0)
}

func letters(fds []FD) []string {
	out := make([]string, len(fds))
	for i, f := range fds {
		out[i] = f.String()
	}
	return out
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	lhs := bitset.FromLetters("AB")
	s.Add(lhs, 2)
	s.Add(lhs, 2) // duplicate, not double counted
	s.Add(lhs, 3)
	s.AddAll(bitset.FromLetters("C"), bitset.New(0, 1))
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	if got := s.RHS(lhs); got != bitset.New(2, 3) {
		t.Errorf("RHS = %v", got)
	}
	if got := s.RHS(bitset.FromLetters("Z")); !got.IsEmpty() {
		t.Errorf("missing lhs should have empty rhs, got %v", got)
	}
	all := s.All()
	if len(all) != 4 {
		t.Fatalf("All = %v", all)
	}
	// Sorted: C→A, C→B come before AB→C, AB→D (cardinality order).
	if all[0].String() != "C → A" || all[3].String() != "AB → D" {
		t.Errorf("ordering: %v", letters(all))
	}
	var visited int
	s.ForEach(func(lhs, rhs bitset.Set) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Errorf("ForEach early stop visited %d", visited)
	}
	if got := s.LHSs(); len(got) != 2 {
		t.Errorf("LHSs = %v", got)
	}
}

func TestStoreRejectsTrivial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for trivial FD")
		}
	}()
	NewStore().Add(bitset.FromLetters("AB"), 0)
}

func TestFDString(t *testing.T) {
	f := FD{LHS: bitset.FromLetters("AF"), RHS: 1}
	if got := f.String(); got != "AF → B" {
		t.Errorf("String = %q", got)
	}
	empty := FD{LHS: bitset.Set{}, RHS: 0}
	if got := empty.String(); got != "∅ → A" {
		t.Errorf("String = %q", got)
	}
}

// Classic textbook example: address data where zip → city and city,street
// do not determine zip.
func TestKnownFDs(t *testing.T) {
	p := provider(t,
		[]string{"zip", "city", "street"},
		[][]string{
			{"14482", "Potsdam", "A"},
			{"14482", "Potsdam", "B"},
			{"10115", "Berlin", "A"},
			{"10117", "Berlin", "B"},
			{"10117", "Berlin", "C"},
		})
	want := BruteForce(p)
	// zip → city must be among the minimal FDs (A → B in letters).
	foundZipCity := false
	for _, f := range want {
		if f.LHS == bitset.New(0) && f.RHS == 1 {
			foundZipCity = true
		}
	}
	if !foundZipCity {
		t.Fatalf("oracle missing zip → city: %v", letters(want))
	}
	if got := Tane(p, false).FDs; !reflect.DeepEqual(got, want) {
		t.Errorf("tane = %v, want %v", letters(got), letters(want))
	}
	if got := Fun(p).FDs; !reflect.DeepEqual(got, want) {
		t.Errorf("fun = %v, want %v", letters(got), letters(want))
	}
}

func TestConstantColumns(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{
		{"k", "1"},
		{"k", "2"},
	})
	if got := ConstantColumns(p); got != bitset.New(0) {
		t.Errorf("ConstantColumns = %v", got)
	}
	want := []FD{{LHS: bitset.Set{}, RHS: 0}}
	for name, got := range map[string][]FD{
		"oracle": BruteForce(p),
		"tane":   Tane(p, false).FDs,
		"fun":    Fun(p).FDs,
	} {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, letters(got), letters(want))
		}
	}
}

func TestAllConstantRelation(t *testing.T) {
	p := provider(t, []string{"A", "B"}, [][]string{{"k", "x"}})
	want := []FD{{LHS: bitset.Set{}, RHS: 0}, {LHS: bitset.Set{}, RHS: 1}}
	for name, got := range map[string][]FD{
		"oracle": BruteForce(p),
		"tane":   Tane(p, false).FDs,
		"fun":    Fun(p).FDs,
	} {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, letters(got), letters(want))
		}
	}
}

func TestNoFDs(t *testing.T) {
	// Two independent near-random columns with no dependencies in either
	// direction and no constant columns.
	p := provider(t, []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"1", "y"},
		{"2", "x"},
		{"2", "y"},
		{"3", "x"},
	})
	for name, got := range map[string][]FD{
		"oracle": BruteForce(p),
		"tane":   Tane(p, false).FDs,
		"fun":    Fun(p).FDs,
	} {
		if len(got) != 0 {
			t.Errorf("%s = %v, want none", name, letters(got))
		}
	}
}

func TestKeyFDs(t *testing.T) {
	// A is a key: A → B and A → C, both minimal; B,C carry no dependencies.
	p := provider(t, []string{"A", "B", "C"}, [][]string{
		{"1", "x", "p"},
		{"2", "x", "q"},
		{"3", "y", "p"},
		{"4", "y", "q"},
		{"5", "x", "p"},
	})
	want := BruteForce(p)
	if got := Tane(p, false).FDs; !reflect.DeepEqual(got, want) {
		t.Errorf("tane = %v, want %v", letters(got), letters(want))
	}
	fun := Fun(p)
	if !reflect.DeepEqual(fun.FDs, want) {
		t.Errorf("fun = %v, want %v", letters(fun.FDs), letters(want))
	}
	if !reflect.DeepEqual(fun.MinimalUCCs, []bitset.Set{bitset.New(0)}) {
		t.Errorf("fun UCCs = %v", fun.MinimalUCCs)
	}
}

func TestChecksCounted(t *testing.T) {
	p := provider(t, []string{"A", "B", "C"}, [][]string{
		{"1", "x", "p"},
		{"2", "x", "q"},
		{"3", "y", "p"},
	})
	if Tane(p, false).Checks == 0 {
		t.Error("tane should count validity checks")
	}
	// FUN counts PLI cardinality computations for generated candidates.
	if Fun(p).Checks == 0 {
		t.Error("fun should count cardinality computations")
	}
}

func randomProvider(rnd *rand.Rand, maxCols, maxRows, maxCard int) *pli.Provider {
	cols := 2 + rnd.Intn(maxCols-1)
	rows := 2 + rnd.Intn(maxRows-1)
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(1 + rnd.Intn(maxCard)))
		}
		data[i] = row
	}
	return pli.NewProvider(relation.MustNew("rand", names, data), 0)
}

// Property: TANE and FUN agree with the brute-force oracle.
func TestQuickAlgorithmsAgree(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 6, 30, 4))
		},
	}
	if err := quick.Check(func(p *pli.Provider) bool {
		want := BruteForce(p)
		if !reflect.DeepEqual(Tane(p, false).FDs, want) {
			return false
		}
		return reflect.DeepEqual(Fun(p).FDs, want)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property (Holistic FUN, Lemma 3): the keys collected by FUN are exactly
// the minimal UCCs found by the UCC oracle.
func TestQuickFunUCCsComplete(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 6, 30, 4))
		},
	}
	if err := quick.Check(func(p *pli.Provider) bool {
		return reflect.DeepEqual(Fun(p).MinimalUCCs, ucc.BruteForce(p))
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 2): every column combination that functionally determines
// all other attributes is a UCC — verified through discovered FDs: the union
// of attributes determined by a minimal UCC must be the full relation.
func TestQuickLemma2(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 5, 25, 3))
		},
	}
	if err := quick.Check(func(p *pli.Provider) bool {
		n := p.Relation().NumColumns()
		for _, u := range ucc.BruteForce(p) {
			// U determines every other attribute.
			rest := bitset.Full(n).Diff(u)
			if got := p.CheckFDs(u, rest); got != rest {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every FD reported by TANE/FUN is valid and minimal on the data.
func TestQuickMinimalityAndValidity(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 5, 25, 3))
		},
	}
	if err := quick.Check(func(p *pli.Provider) bool {
		for _, f := range Tane(p, false).FDs {
			if !bruteHolds(p, f.LHS, f.RHS) {
				return false
			}
			for _, sub := range f.LHS.DirectSubsets() {
				if bruteHolds(p, sub, f.RHS) {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
