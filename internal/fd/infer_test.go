package fd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/pli"
	"holistic/internal/ucc"
)

func TestClosure(t *testing.T) {
	s := NewStore()
	s.Add(bitset.FromLetters("A"), 1)  // A → B
	s.Add(bitset.FromLetters("B"), 2)  // B → C
	s.Add(bitset.FromLetters("CD"), 4) // CD → E

	if got := s.Closure(bitset.FromLetters("A")); got != bitset.FromLetters("ABC") {
		t.Errorf("closure(A) = %v, want ABC", got)
	}
	if got := s.Closure(bitset.FromLetters("AD")); got != bitset.FromLetters("ABCDE") {
		t.Errorf("closure(AD) = %v, want ABCDE", got)
	}
	if got := s.Closure(bitset.FromLetters("E")); got != bitset.FromLetters("E") {
		t.Errorf("closure(E) = %v, want E", got)
	}
}

func TestImplies(t *testing.T) {
	s := NewStore()
	s.Add(bitset.FromLetters("A"), 1)
	s.Add(bitset.FromLetters("B"), 2)
	if !s.Implies(bitset.FromLetters("A"), 2) {
		t.Error("A → C should follow transitively")
	}
	if s.Implies(bitset.FromLetters("C"), 0) {
		t.Error("C → A does not follow")
	}
	if !s.Implies(bitset.FromLetters("AC"), 2) {
		t.Error("trivial implication must hold")
	}
}

func TestDeriveUCCsTextbook(t *testing.T) {
	// R = ABCD with A → B, B → C: keys are AD (closure ABCD) and nothing
	// smaller: closure(A)=ABC, closure(D)=D.
	s := NewStore()
	s.Add(bitset.FromLetters("A"), 1)
	s.Add(bitset.FromLetters("B"), 2)
	got := s.DeriveUCCs(bitset.Full(4), 1)
	want := []bitset.Set{bitset.FromLetters("AD")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DeriveUCCs = %v, want %v", got, want)
	}
}

func TestDeriveUCCsNoFDs(t *testing.T) {
	// Without any FD the only key is the full attribute set.
	s := NewStore()
	got := s.DeriveUCCs(bitset.Full(3), 1)
	want := []bitset.Set{bitset.Full(3)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DeriveUCCs = %v, want %v", got, want)
	}
}

// Property (Lemma 2, the "FDs first" approach of Sec. 3.1): deriving UCCs
// from the complete set of minimal FDs of a duplicate-free relation yields
// exactly the minimal UCCs found on the data.
func TestQuickDeriveUCCsMatchesData(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomProvider(rnd, 6, 30, 4))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(p *pli.Provider, seed int64) bool {
		store := NewStore()
		for _, f := range BruteForce(p) {
			store.Add(f.LHS, f.RHS)
		}
		derived := store.DeriveUCCs(p.Relation().AllColumns(), seed)
		return reflect.DeepEqual(derived, ucc.BruteForce(p))
	}, cfg); err != nil {
		t.Error(err)
	}
}
