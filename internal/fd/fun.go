package fd

import (
	"context"

	"holistic/internal/bitset"
	"holistic/internal/parallel"
	"holistic/internal/pli"
	"holistic/internal/settrie"
)

// Fun discovers all minimal FDs with the FUN strategy (Novelli/Cicchetti,
// paper Sec. 2.3): a level-wise traversal restricted to free sets, with
// cardinality counts instead of stored partitions for validity checks, FUN's
// recursive cardinality inference for non-free sets (the "fast counting
// inference" that lets FUN skip PLI intersections TANE would perform), and
// key pruning.
//
// Fun always returns the minimal UCCs it traverses: by Lemma 3 of the paper
// every minimal UCC is a free set, so collecting keys costs nothing extra.
// This is exactly the Holistic FUN extension of paper Sec. 3.2.
func Fun(p *pli.Provider) Result {
	res, _ := FunContext(context.Background(), p, 1)
	return res
}

// FunContext runs FUN under a context: the level-wise loop polls ctx per
// level and per counted candidate and stops promptly when ctx is cancelled
// or its deadline passes, returning the partial result together with
// ctx.Err(). On a non-nil error the FD and UCC lists are incomplete.
//
// workers bounds the goroutines counting candidate cardinalities within one
// level (<= 0 selects GOMAXPROCS). Each candidate writes its count into its
// own indexed slot and the slots are applied in candidate order, so the
// discovered FDs and UCCs are identical for every worker count. With
// workers > 1 the provider's cache must be safe for concurrent use (see the
// pli.Provider concurrency contract).
func FunContext(ctx context.Context, p *pli.Provider, workers int) (Result, error) {
	var res Result
	var err error
	rel := p.Relation()
	n := rel.NumColumns()
	store := NewStore()

	constants := ConstantColumns(p)
	constants.ForEach(func(a int) { store.Add(bitset.Set{}, a) })
	working := bitset.Full(n).Diff(constants)

	if rel.NumRows() <= 1 {
		// Degenerate relations: every column is constant (so all FDs are
		// ∅ → A, already emitted) and every single column is trivially a
		// minimal UCC.
		for c := 0; c < n; c++ {
			res.MinimalUCCs = append(res.MinimalUCCs, bitset.Single(c))
		}
	} else if !working.IsEmpty() {
		f := &funState{
			ctx:     ctx,
			p:       p,
			working: working,
			nRows:   rel.NumRows(),
			workers: workers,
			counts:  map[bitset.Set]int{{}: 1},
			store:   store,
			res:     &res,
		}
		err = f.run()
		res.MinimalUCCs = f.keys.All()
	}

	res.FDs = store.All()
	bitset.Sort(res.MinimalUCCs)
	return res, err
}

type funState struct {
	ctx     context.Context
	p       *pli.Provider
	working bitset.Set
	nRows   int
	workers int

	// counts holds |X|_r for every computed set: all free sets and the
	// non-free "boundary" candidates classified during generation. Counts of
	// other sets are inferred (FUN's cardinality inference) and memoised.
	counts map[bitset.Set]int
	// keys holds the minimal UCCs (free sets with count == nRows).
	keys settrie.MinimalFamily

	store *Store
	res   *Result
}

func (f *funState) run() error {
	// Level 1: every non-constant single column is a free set.
	var level []bitset.Set
	f.working.ForEach(func(c int) {
		s := bitset.Single(c)
		f.counts[s] = f.p.Relation().Cardinality(c)
		level = append(level, s)
	})

	for len(level) > 0 {
		if err := f.ctx.Err(); err != nil {
			return err
		}
		// Classify keys, then generate and count the next level, and only
		// then emit this level's FDs: the validity check of x → a needs the
		// true cardinality of x ∪ {a}, which for a free x ∪ {a} exists only
		// after the next level is counted (cardinality inference is valid
		// for non-free sets exclusively).
		var expandable []bitset.Set
		for _, x := range level {
			if f.counts[x] == f.nRows {
				f.keys.Add(x) // minimal UCC (Lemma 3); supersets are non-free
				continue
			}
			expandable = append(expandable, x)
		}

		// Count the candidates of the next level across the worker pool:
		// every candidate is independent given the shared provider (f.keys
		// and the subset counts are read-only here), so each one writes its
		// cardinality into its own indexed slot. The slots are then applied
		// in candidate order, making the level's outcome — and with it the
		// whole run — independent of worker scheduling. parallel.For also
		// polls ctx per candidate, so a deadline interrupts wide levels, not
		// only level boundaries.
		cands := bitset.AprioriGen(expandable)
		counted := make([]int, len(cands))
		checked := make([]bool, len(cands))
		err := parallel.For(f.ctx, f.workers, len(cands), func(i int) {
			cand := cands[i]
			if f.keys.CoversSubsetOf(cand) {
				// Key pruning: supersets of keys have count nRows and are
				// non-free; no PLI work needed.
				counted[i] = f.nRows
				return
			}
			checked[i] = true
			counted[i] = f.p.Cardinality(cand)
		})
		if err != nil {
			return err
		}
		var next []bitset.Set
		for i, cand := range cands {
			f.counts[cand] = counted[i]
			if !checked[i] {
				continue
			}
			f.res.Checks++
			if f.isFree(cand, counted[i]) {
				next = append(next, cand)
			}
		}

		for _, x := range level {
			f.emitFDs(x)
		}
		level = next
	}
	return nil
}

// isFree reports whether x with cardinality cnt is a free set: no direct
// subset has the same cardinality (Definition 1; checking direct subsets
// suffices because counts are monotone).
func (f *funState) isFree(x bitset.Set, cnt int) bool {
	for _, sub := range x.DirectSubsets() {
		if f.counts[sub] == cnt {
			return false
		}
	}
	return true
}

// emitFDs outputs every minimal FD x → a for the free set x: x → a holds
// iff |x| = |x ∪ {a}| (Lemma 1), and it is minimal iff no direct subset of
// x also determines a.
func (f *funState) emitFDs(x bitset.Set) {
	cntX := f.counts[x]
	rhs := f.working.Diff(x)
	for a := rhs.First(); a >= 0; a = rhs.NextAfter(a) {
		if f.count(x.With(a)) != cntX {
			continue
		}
		minimal := true
		for _, sub := range x.DirectSubsets() {
			if f.count(sub.With(a)) == f.counts[sub] {
				minimal = false // sub → a already holds
				break
			}
		}
		if minimal {
			f.store.Add(x, a)
		}
	}
}

// count returns |y|_r, inferring it for sets that were never computed: a
// non-free set has the cardinality of its largest direct subset (FUN's
// cardinality inference), and supersets of keys have nRows rows. Inferred
// values are memoised.
func (f *funState) count(y bitset.Set) int {
	if c, ok := f.counts[y]; ok {
		return c
	}
	if f.keys.CoversSubsetOf(y) {
		f.counts[y] = f.nRows
		return f.nRows
	}
	max := 0
	for _, sub := range y.DirectSubsets() {
		if c := f.count(sub); c > max {
			max = c
		}
	}
	f.counts[y] = max
	return max
}
