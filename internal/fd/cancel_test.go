package fd

import (
	"context"
	"errors"
	"testing"
	"time"

	"holistic/internal/dataset"
	"holistic/internal/pli"
)

// TestTaneContextDeadline cancels TANE mid-levelwise-traversal on a wide
// synthetic relation and requires a prompt return with the context error.
func TestTaneContextDeadline(t *testing.T) {
	rel := dataset.NCVoter(1000, 18)
	p := pli.NewProvider(rel, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := TaneContext(ctx, p, false, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled TANE took %v, want prompt return", elapsed)
	}
}

// TestFunContextDeadline is the same promptness check for FUN's levelwise
// traversal.
func TestFunContextDeadline(t *testing.T) {
	rel := dataset.NCVoter(1000, 18)
	p := pli.NewProvider(rel, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := FunContext(ctx, p, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled FUN took %v, want prompt return", elapsed)
	}
}

func TestTaneContextBackgroundMatchesPlain(t *testing.T) {
	rel := dataset.NCVoter(200, 8)
	plain := Tane(pli.NewProvider(rel, 0), true)
	ctxed, err := TaneContext(context.Background(), pli.NewProvider(rel, 0), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.FDs) != len(ctxed.FDs) || len(plain.MinimalUCCs) != len(ctxed.MinimalUCCs) {
		t.Fatal("background-context TANE differs from plain TANE")
	}
}
