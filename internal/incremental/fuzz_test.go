package incremental

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"holistic/internal/core"
	"holistic/internal/relation"
)

// FuzzIncrementalEquivalence is a differential fuzzer: every input decodes
// into a random base relation plus appended batches, and the incrementally
// maintained MUDS result must equal a from-scratch run on the concatenated
// rows. The corpus seeds cover both NULL semantics and batch counts.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), false)
	f.Add(int64(2), uint8(4), uint8(3), true)
	f.Add(int64(99), uint8(2), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed int64, cols, batches uint8, distinctNulls bool) {
		nCols := 2 + int(cols%4)
		nBatches := 1 + int(batches%3)
		rng := rand.New(rand.NewSource(seed))
		relOpts := relation.Options{DistinctNulls: distinctNulls}
		base := randomFuzzRows(rng, 5+rng.Intn(30), nCols)
		all := append([][]string(nil), base...)
		names := make([]string, nCols)
		for c := range names {
			names[c] = fmt.Sprintf("c%d", c)
		}
		rel, err := relation.NewWithOptions("f", names, base, relOpts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		opts := core.Options{Seed: seed}
		p, _, err := NewProfiler(ctx, rel, core.StrategyMuds, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for bi := 0; bi < nBatches; bi++ {
			batch := randomFuzzRows(rng, 1+rng.Intn(8), nCols)
			all = append(all, batch...)
			got, err := p.AppendBatch(ctx, batch, nil)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := relation.NewWithOptions("f", names, all, relOpts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.RunRelationContext(ctx, core.StrategyMuds, scratch, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, fmt.Sprintf("seed=%d batch=%d", seed, bi), got, want, true, true)
		}
	})
}

func randomFuzzRows(rng *rand.Rand, rows, cols int) [][]string {
	out := make([][]string, rows)
	for i := range out {
		row := make([]string, cols)
		for c := range row {
			switch rng.Intn(8) {
			case 0:
				row[c] = "" // NULL
			default:
				row[c] = fmt.Sprintf("v%d", rng.Intn(2+2*c))
			}
		}
		out[i] = row
	}
	return out
}
