// Package incremental maintains a profiling result under appended row
// batches: instead of re-running discovery from scratch after every append,
// it folds the batch into the shared data structures (dictionaries, code
// vectors, PLIs), re-validates the previously discovered metadata with the
// cheap check kernels, and restarts the lattice walks only inside the region
// the batch invalidated.
//
// The repair strategy rests on how each metadata kind behaves under appends:
//
//   - UCCs/FDs are only ever *violated* by new rows, never created (a
//     non-unique combination stays non-unique, two rows violating X → A keep
//     violating it). Prior negative certificates therefore remain sound, and
//     when no prior minimal dependency is violated, the prior family is
//     provably still complete — the walk is skipped entirely.
//   - Unary INDs are not monotone (new referenced-side values can repair a
//     previously invalid IND), so they are maintained exactly via a
//     missing-value count matrix (see ind.MissingMatrix) whose per-batch
//     update cost is proportional to the batch's novelty.
package incremental

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"holistic/internal/bitset"
	"holistic/internal/core"
	"holistic/internal/durable"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/relation"
)

// SnapshotFD is the serialized form of one minimal FD.
type SnapshotFD struct {
	LHS []int `json:"lhs"`
	RHS int   `json:"rhs"`
}

// SnapshotIND is the serialized form of one unary IND.
type SnapshotIND struct {
	Dependent  int `json:"dependent"`
	Referenced int `json:"referenced"`
}

// Snapshot is the persistent state of an incremental profiling session: the
// complete metadata of the profiled prefix plus enough fingerprint to verify
// that a later session resumes against the same relation. It is the unit the
// CLI's -snapshot flag reads and writes and the profiling service keeps per
// dataset.
type Snapshot struct {
	// Version counts the applied batches: 0 right after the initial full
	// profile, +1 per appended batch.
	Version int `json:"version"`
	// Algorithm is the registry name of the strategy that produced (and whose
	// output contract the snapshot maintains — e.g. "tane" has no INDs/UCCs).
	Algorithm string `json:"algorithm"`
	// Relation fingerprint: name, schema, de-duplicated row count and NULL
	// semantics of the profiled prefix.
	Relation      string   `json:"relation"`
	Columns       []string `json:"columns"`
	Rows          int      `json:"rows"`
	DistinctNulls bool     `json:"distinct_nulls,omitempty"`
	IgnoreNulls   bool     `json:"ignore_nulls,omitempty"`
	// Metadata family presence. A strategy that does not discover a family
	// (TANE: FDs only) leaves its flag false; the maintained result then
	// omits that family too, keeping incremental and from-scratch runs
	// comparable.
	HasINDs bool `json:"has_inds"`
	HasUCCs bool `json:"has_uccs"`
	HasFDs  bool `json:"has_fds"`
	// The metadata itself.
	INDs []SnapshotIND `json:"inds,omitempty"`
	UCCs [][]int       `json:"uccs,omitempty"`
	FDs  []SnapshotFD  `json:"fds,omitempty"`
	// Missing is the IND maintenance matrix. It is nil when INDs are not
	// maintained or when the relation's NULL semantics force the SPIDER
	// fallback (DistinctNulls with NULLs present).
	Missing *ind.MissingMatrix `json:"missing,omitempty"`
	// Checksum is the CRC32C (hex) of the snapshot's compact JSON encoding
	// with this field empty. Write computes it; Resume verifies it, so a
	// half-written or bit-rotted snapshot file is rejected as corrupt
	// instead of resuming from damaged metadata. Empty means unchecked
	// (snapshots written before the field existed).
	Checksum string `json:"checksum,omitempty"`
}

// ErrCorruptSnapshot reports a snapshot whose stored checksum does not match
// its content — file damage, distinct from a fingerprint mismatch (which
// means the snapshot is intact but belongs to different data).
var ErrCorruptSnapshot = errors.New("incremental: corrupt snapshot (checksum mismatch)")

// checksum computes the snapshot's content checksum: CRC32C over the compact
// JSON encoding with the Checksum field cleared. encoding/json emits struct
// fields in declaration order and sorts map keys, so the encoding — and the
// checksum — is deterministic across processes.
func (s *Snapshot) checksum() (string, error) {
	c := *s
	c.Checksum = ""
	data, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("snapshot: encode for checksum: %w", err)
	}
	return fmt.Sprintf("%08x", crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))), nil
}

// VerifyChecksum checks the stored checksum against the content. Snapshots
// without one (pre-checksum files) pass; a mismatch returns an error
// wrapping ErrCorruptSnapshot.
func (s *Snapshot) VerifyChecksum() error {
	if s.Checksum == "" {
		return nil
	}
	want, err := s.checksum()
	if err != nil {
		return err
	}
	if s.Checksum != want {
		return fmt.Errorf("%w: stored %s, computed %s", ErrCorruptSnapshot, s.Checksum, want)
	}
	return nil
}

// Validate checks the snapshot against a loaded relation: same schema, same
// de-duplicated row count, same NULL semantics. It guards the CLI resume path
// against profiling state from a different (or since-modified) input.
func (s *Snapshot) Validate(rel *relation.Relation) error {
	if got, want := rel.ColumnNames(), s.Columns; len(got) != len(want) {
		return fmt.Errorf("snapshot: relation has %d columns, snapshot has %d", len(got), len(want))
	}
	for i, name := range rel.ColumnNames() {
		if name != s.Columns[i] {
			return fmt.Errorf("snapshot: column %d is %q, snapshot has %q", i, name, s.Columns[i])
		}
	}
	if rel.NumRows() != s.Rows {
		return fmt.Errorf("snapshot: relation has %d distinct rows, snapshot has %d", rel.NumRows(), s.Rows)
	}
	if rel.DistinctNulls() != s.DistinctNulls {
		return fmt.Errorf("snapshot: distinct-nulls semantics differ (relation %v, snapshot %v)", rel.DistinctNulls(), s.DistinctNulls)
	}
	return nil
}

// ReadSnapshot decodes a snapshot from r.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &s, nil
}

// ReadSnapshotFile decodes a snapshot from a file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Write encodes the snapshot to w as indented JSON, sealing it with its
// content checksum first.
func (s *Snapshot) Write(w io.Writer) error {
	sum, err := s.checksum()
	if err != nil {
		return err
	}
	s.Checksum = sum
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile encodes the snapshot to a file atomically: a temp file in the
// same directory, fsync, then rename, so a crash (or an encoding failure)
// mid-write can never leave a truncated snapshot behind — the previous file,
// if any, survives intact and the temp file is cleaned up on error.
func (s *Snapshot) WriteFile(path string) error {
	return durable.AtomicWriteFile(path, func(f *os.File) error {
		return s.Write(f)
	})
}

// encode/decode helpers between the engine's in-memory types and the
// serialized forms.

func encodeSets(sets []bitset.Set) [][]int {
	out := make([][]int, len(sets))
	for i, s := range sets {
		cols := s.Columns()
		if cols == nil {
			cols = []int{}
		}
		out[i] = cols
	}
	return out
}

func decodeSets(lists [][]int) []bitset.Set {
	out := make([]bitset.Set, len(lists))
	for i, cols := range lists {
		out[i] = bitset.New(cols...)
	}
	return out
}

func encodeFDs(fds []fd.FD) []SnapshotFD {
	out := make([]SnapshotFD, len(fds))
	for i, f := range fds {
		cols := f.LHS.Columns()
		if cols == nil {
			cols = []int{}
		}
		out[i] = SnapshotFD{LHS: cols, RHS: f.RHS}
	}
	return out
}

func decodeFDs(fds []SnapshotFD) []fd.FD {
	out := make([]fd.FD, len(fds))
	for i, f := range fds {
		out[i] = fd.FD{LHS: bitset.New(f.LHS...), RHS: f.RHS}
	}
	return out
}

func encodeINDs(inds []ind.IND) []SnapshotIND {
	out := make([]SnapshotIND, len(inds))
	for i, d := range inds {
		out[i] = SnapshotIND{Dependent: d.Dependent, Referenced: d.Referenced}
	}
	return out
}

func decodeINDs(inds []SnapshotIND) []ind.IND {
	out := make([]ind.IND, len(inds))
	for i, d := range inds {
		out[i] = ind.IND{Dependent: d.Dependent, Referenced: d.Referenced}
	}
	return out
}

// families reports which metadata families a strategy discovers (and the
// incremental layer therefore maintains). TANE is the only FD-only strategy;
// every other registered strategy emits all three families.
func families(algorithm string) (hasINDs, hasUCCs, hasFDs bool) {
	if algorithm == core.StrategyTane {
		return false, false, true
	}
	return true, true, true
}
