package incremental

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"holistic/internal/bitset"
	"holistic/internal/core"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/parallel"
	"holistic/internal/pli"
	"holistic/internal/relation"
	"holistic/internal/ucc"
	"holistic/internal/walker"
)

// Profiler is a warm incremental profiling session: it owns the relation, a
// PLI provider whose cache survives (patched, not flushed) across batches,
// and the complete metadata of the rows profiled so far. AppendBatch folds
// one batch of rows in and returns the updated result.
//
// A Profiler is not safe for concurrent use: AppendBatch mutates the relation
// in place (see relation.Append's exclusivity contract).
type Profiler struct {
	rel  *relation.Relation
	prov *pli.Provider
	opts core.Options

	algorithm string
	hasINDs   bool
	hasUCCs   bool
	hasFDs    bool

	version int
	inds    []ind.IND
	uccs    []bitset.Set
	fds     []fd.FD
	// missing is the IND maintenance matrix; nil when INDs are not maintained
	// or when NULL semantics force the per-batch SPIDER fallback.
	missing *ind.MissingMatrix
}

// matrixUsable reports whether the missing-value matrix models SPIDER's
// containment semantics for rel: under DistinctNulls with NULLs present,
// SPIDER's value lists carry one entry per NULL occurrence (multiset
// semantics, unless NULLs are ignored) and the set-based matrix diverges.
func matrixUsable(rel *relation.Relation, opts ind.Options) bool {
	return !rel.DistinctNulls() || opts.IgnoreNulls || !rel.HasNulls()
}

// NewProfiler runs the named strategy on rel from scratch and returns a warm
// profiler positioned after that initial run (Version 0). The initial profile
// must complete — a partial result is not a sound revalidation baseline — so
// a cancelled or failed run returns its error.
func NewProfiler(ctx context.Context, rel *relation.Relation, algorithm string, opts core.Options, obs core.Observer) (*Profiler, *core.Result, error) {
	res, err := core.RunRelationContext(ctx, algorithm, rel, opts, obs)
	if err != nil {
		return nil, res, err
	}
	p := &Profiler{
		rel:       rel,
		prov:      opts.NewProvider(rel),
		opts:      opts,
		algorithm: algorithm,
		version:   0,
		inds:      res.INDs,
		uccs:      res.UCCs,
		fds:       res.FDs,
	}
	p.hasINDs, p.hasUCCs, p.hasFDs = families(algorithm)
	if p.hasINDs && matrixUsable(rel, opts.IND) {
		p.missing = ind.BuildMissing(rel, opts.IND)
	}
	return p, res, nil
}

// Resume reconstructs a warm profiler from a relation and a snapshot of a
// prior session, without re-running discovery. The snapshot's content
// checksum is verified first (a damaged file fails with ErrCorruptSnapshot);
// then the relation must be the same profiled prefix the snapshot describes
// (Snapshot.Validate enforces the fingerprint). The snapshot's missing-value
// matrix is reused when present and rebuilt from the relation otherwise.
func Resume(rel *relation.Relation, snap *Snapshot, opts core.Options) (*Profiler, error) {
	if err := snap.VerifyChecksum(); err != nil {
		return nil, err
	}
	if _, ok := core.Lookup(snap.Algorithm); !ok {
		return nil, fmt.Errorf("incremental: snapshot algorithm %q is not registered", snap.Algorithm)
	}
	if err := snap.Validate(rel); err != nil {
		return nil, err
	}
	opts.IND.IgnoreNulls = snap.IgnoreNulls
	p := &Profiler{
		rel:       rel,
		prov:      opts.NewProvider(rel),
		opts:      opts,
		algorithm: snap.Algorithm,
		hasINDs:   snap.HasINDs,
		hasUCCs:   snap.HasUCCs,
		hasFDs:    snap.HasFDs,
		version:   snap.Version,
		inds:      decodeINDs(snap.INDs),
		uccs:      decodeSets(snap.UCCs),
		fds:       decodeFDs(snap.FDs),
	}
	if p.hasINDs && matrixUsable(rel, opts.IND) {
		if snap.Missing != nil {
			p.missing = snap.Missing
		} else {
			p.missing = ind.BuildMissing(rel, opts.IND)
		}
	}
	return p, nil
}

// Version returns the number of batches applied so far.
func (p *Profiler) Version() int { return p.version }

// Relation returns the profiled relation (base plus all applied batches).
func (p *Profiler) Relation() *relation.Relation { return p.rel }

// Algorithm returns the registry name of the maintained strategy.
func (p *Profiler) Algorithm() string { return p.algorithm }

// Result returns the current metadata as an engine result (no phase timings —
// those belong to the individual AppendBatch calls).
func (p *Profiler) Result() *core.Result {
	return &core.Result{
		INDs:      append([]ind.IND(nil), p.inds...),
		UCCs:      append([]bitset.Set(nil), p.uccs...),
		FDs:       append([]fd.FD(nil), p.fds...),
		Algorithm: p.algorithm,
	}
}

// Snapshot serializes the profiler's current state.
func (p *Profiler) Snapshot() *Snapshot {
	return &Snapshot{
		Version:       p.version,
		Algorithm:     p.algorithm,
		Relation:      p.rel.Name(),
		Columns:       append([]string(nil), p.rel.ColumnNames()...),
		Rows:          p.rel.NumRows(),
		DistinctNulls: p.rel.DistinctNulls(),
		IgnoreNulls:   p.opts.IND.IgnoreNulls,
		HasINDs:       p.hasINDs,
		HasUCCs:       p.hasUCCs,
		HasFDs:        p.hasFDs,
		INDs:          encodeINDs(p.inds),
		UCCs:          encodeSets(p.uccs),
		FDs:           encodeFDs(p.fds),
		Missing:       p.missing,
	}
}

// batchRun accumulates one AppendBatch's phases and check counts, forwarding
// the events to the caller's observer (mirroring the engine recorder).
type batchRun struct {
	obs    core.Observer
	phases []core.Phase
	checks int
}

func (b *batchRun) phase(ctx context.Context, name string, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.obs.PhaseStart(name)
	start := time.Now()
	err := fn()
	d := time.Since(start)
	b.phases = append(b.phases, core.Phase{Name: name, Duration: d})
	b.obs.PhaseEnd(name, d)
	return err
}

func (b *batchRun) addChecks(n int) {
	if n != 0 {
		b.checks += n
		b.obs.Checks(n)
	}
}

// AppendBatch folds one batch of rows into the profiled relation and returns
// the updated complete result — identical (up to order-independent content)
// to a from-scratch run of the same strategy on the concatenated rows.
//
// The work is phased like a full run: "append" extends the relation and
// patches the PLI provider in place, "indDelta" maintains the IND matrix (or
// re-runs SPIDER when NULL semantics require it), "revalidate" re-checks
// every prior UCC and FD with the check kernels, and "uccRepair"/"fdRepair"
// restart the lattice walks seeded with the surviving certificates — only
// when the revalidation actually found violations.
//
// obs may be nil. On cancellation the profiler state and the relation may be
// mid-update; the session must be discarded (the returned error reports it).
// Panics are isolated into a *core.PanicError like in the engine.
func (p *Profiler) AppendBatch(ctx context.Context, rows [][]string, obs core.Observer) (res *core.Result, err error) {
	if obs == nil {
		obs = core.NopObserver{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, toPanicError(p.algorithm, r)
		}
	}()
	b := &batchRun{obs: obs}
	res, err = p.appendBatch(ctx, rows, b)
	if res != nil {
		res.Phases = b.phases
		res.Checks = b.checks
		res.Algorithm = p.algorithm
		if err != nil {
			res.Partial = true
		}
	}
	return res, err
}

func (p *Profiler) appendBatch(ctx context.Context, rows [][]string, b *batchRun) (*core.Result, error) {
	var delta relation.AppendDelta
	err := b.phase(ctx, core.PhaseAppend, func() error {
		var err error
		delta, err = p.rel.Append(rows)
		if err != nil {
			return err
		}
		if delta.Appended > 0 {
			p.prov.Refresh(delta.OldRows)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	defer func() { b.obs.CacheStats(p.prov.CacheStats()) }()
	if delta.Appended == 0 {
		// Every batch row duplicated an existing row: the de-duplicated
		// relation, and therefore every dependency, is unchanged.
		p.version++
		return p.Result(), nil
	}

	if p.hasINDs {
		err = b.phase(ctx, core.PhaseINDDelta, func() error {
			return p.updateINDs(ctx, delta)
		})
		if err != nil {
			return p.Result(), err
		}
	}

	// Revalidate the prior UCCs and FDs on the extended relation. Appended
	// rows only ever violate dependencies, so the surviving ones are still
	// valid AND still minimal, and the violated ones seed the repair walks as
	// trusted negative certificates.
	var uccValid, uccViolated []bitset.Set
	var fdState *fdRevalidation
	err = b.phase(ctx, core.PhaseRevalidate, func() error {
		if p.hasUCCs {
			// The prior UCCs are independent probes over the shared provider
			// (safe: the engine provider uses a sharded cache), so they fan
			// out across the worker pool like the discovery walks do.
			unique := make([]bool, len(p.uccs))
			workers := parallel.Workers(p.opts.Workers)
			if err := parallel.For(ctx, workers, len(p.uccs), func(i int) {
				unique[i] = p.prov.IsUnique(p.uccs[i])
			}); err != nil {
				return err
			}
			b.addChecks(len(p.uccs))
			for i, u := range p.uccs {
				if unique[i] {
					uccValid = append(uccValid, u)
				} else {
					uccViolated = append(uccViolated, u)
				}
			}
		}
		if p.hasFDs {
			var err error
			fdState, err = p.revalidateFDs(ctx, b)
			return err
		}
		return nil
	})
	if err != nil {
		return p.Result(), err
	}

	if p.hasUCCs && len(uccViolated) > 0 {
		err = b.phase(ctx, core.PhaseUCCRepair, func() error {
			return p.repairUCCs(ctx, b, uccValid, uccViolated)
		})
		if err != nil {
			return p.Result(), err
		}
	}

	if p.hasFDs && fdState.needsRepair() {
		err = b.phase(ctx, core.PhaseFDRepair, func() error {
			return p.repairFDs(ctx, b, fdState)
		})
		if err != nil {
			return p.Result(), err
		}
	} else if p.hasFDs {
		p.fds = fdState.unchangedFDs()
	}

	p.version++
	return p.Result(), nil
}

// updateINDs maintains the unary INDs: exact matrix delta when the matrix
// models the NULL semantics, full SPIDER re-merge otherwise. A batch can
// flip the matrix into the fallback regime (the first NULL appended to a
// DistinctNulls relation); the matrix is then dropped for good — NULLs never
// leave a dictionary.
func (p *Profiler) updateINDs(ctx context.Context, delta relation.AppendDelta) error {
	if p.missing != nil && matrixUsable(p.rel, p.opts.IND) {
		p.missing.Update(p.rel, delta.OldCard)
		p.inds = p.missing.INDs()
		return nil
	}
	p.missing = nil
	inds, err := ind.SpiderContext(ctx, p.rel, p.opts.IND)
	if err != nil {
		return err
	}
	p.inds = inds
	return nil
}

// repairUCCs restarts DUCC over the invalidated lattice region: the
// revalidated prior UCCs enter as trusted positives, the violated ones and
// the prior maximal non-uniques (reconstructed from the prior minimal family
// by hitting-set duality, still non-unique by monotonicity) as trusted
// negatives, so the walk only explores supersets of the violations.
func (p *Profiler) repairUCCs(ctx context.Context, b *batchRun, valid, violated []bitset.Set) error {
	base := p.rel.AllColumns()
	knownFalse := append([]bitset.Set(nil), violated...)
	for _, h := range walker.MinimalHittingSets(p.uccs, base) {
		knownFalse = append(knownFalse, base.Diff(h))
	}
	res, err := ucc.DuccSeeded(ctx, p.prov, p.opts.Seed, valid, knownFalse)
	b.addChecks(res.Checks)
	if err != nil {
		return err
	}
	p.uccs = res.Minimal
	bitset.Sort(p.uccs)
	return nil
}

// fdRevalidation is the per-RHS outcome of re-checking the prior FDs.
type fdRevalidation struct {
	constNew bitset.Set // constant columns of the extended relation
	working  bitset.Set // AllColumns \ constNew
	oldLHSs  [][]bitset.Set
	valid    [][]bitset.Set
	violated [][]bitset.Set
}

func (f *fdRevalidation) needsRepair() bool {
	for _, v := range f.violated {
		if len(v) > 0 {
			return true
		}
	}
	return false
}

// unchangedFDs rebuilds the FD list when no prior FD was violated: since
// appends only violate FDs and none was, every prior family is provably still
// the complete minimal family — even over a base that grew by released
// constants, because while a column was constant it never distinguished rows.
func (f *fdRevalidation) unchangedFDs() []fd.FD {
	var out []fd.FD
	f.constNew.ForEach(func(a int) { out = append(out, fd.FD{RHS: a}) })
	for rhs, lhss := range f.oldLHSs {
		if f.constNew.Has(rhs) {
			continue
		}
		for _, lhs := range lhss {
			out = append(out, fd.FD{LHS: lhs, RHS: rhs})
		}
	}
	fd.Sort(out)
	return out
}

// revalidateFDs re-checks every prior minimal FD on the extended relation,
// batching FDs that share a left-hand side through the multi-RHS refinement
// kernel (one fold of the LHS partition answers all of them). Previously
// constant columns that the batch released are violations of their ∅ → A
// form by definition — no data check needed.
func (p *Profiler) revalidateFDs(ctx context.Context, b *batchRun) (*fdRevalidation, error) {
	n := p.rel.NumColumns()
	st := &fdRevalidation{
		constNew: fd.ConstantColumns(p.prov),
		oldLHSs:  make([][]bitset.Set, n),
		valid:    make([][]bitset.Set, n),
		violated: make([][]bitset.Set, n),
	}
	st.working = p.rel.AllColumns().Diff(st.constNew)
	for _, f := range p.fds {
		st.oldLHSs[f.RHS] = append(st.oldLHSs[f.RHS], f.LHS)
	}
	groups := make(map[bitset.Set]bitset.Set)
	for rhs := 0; rhs < n; rhs++ {
		if st.constNew.Has(rhs) {
			continue // still constant: ∅ → rhs survives untouched
		}
		for _, lhs := range st.oldLHSs[rhs] {
			if lhs.IsEmpty() {
				// rhs was constant and no longer is: ∅ → rhs is violated.
				st.violated[rhs] = append(st.violated[rhs], lhs)
				continue
			}
			groups[lhs] = groups[lhs].With(rhs)
		}
	}
	// Each group is one independent kernel invocation; sort the keys for a
	// deterministic certificate order and fan the folds out across the pool.
	keys := make([]bitset.Set, 0, len(groups))
	for lhs := range groups {
		keys = append(keys, lhs)
	}
	bitset.Sort(keys)
	oks := make([]bitset.Set, len(keys))
	workers := parallel.Workers(p.opts.Workers)
	if err := parallel.For(ctx, workers, len(keys), func(i int) {
		oks[i] = p.prov.CheckFDs(keys[i], groups[keys[i]])
	}); err != nil {
		return st, err
	}
	for i, lhs := range keys {
		rhsSet := groups[lhs]
		b.addChecks(rhsSet.Len())
		rhsSet.ForEach(func(rhs int) {
			if oks[i].Has(rhs) {
				st.valid[rhs] = append(st.valid[rhs], lhs)
			} else {
				st.violated[rhs] = append(st.violated[rhs], lhs)
			}
		})
	}
	return st, nil
}

// repairFDs rebuilds the FD list after violations: right-hand sides whose
// families survived intact are copied verbatim, the others re-enter the
// lattice walk seeded with their surviving certificates (fd.RepairRHS). The
// per-RHS repairs are independent and fan out across the worker pool, like
// the calculateRZ phase of MUDS.
func (p *Profiler) repairFDs(ctx context.Context, b *batchRun, st *fdRevalidation) error {
	n := p.rel.NumColumns()
	repaired := make([][]bitset.Set, n)
	checks := make([]int, n)
	errs := make([]error, n)
	var targets []int
	st.working.ForEach(func(rhs int) {
		if len(st.violated[rhs]) > 0 {
			targets = append(targets, rhs)
		}
	})
	workers := parallel.Workers(p.opts.Workers)
	if err := parallel.For(ctx, workers, len(targets), func(i int) {
		rhs := targets[i]
		base := st.working.Without(rhs)
		repaired[rhs], checks[i], errs[i] = fd.RepairRHS(
			ctx, p.prov, base, rhs, st.valid[rhs], st.violated[rhs], st.oldLHSs[rhs], p.opts.Seed)
	}); err != nil {
		return err
	}
	total := 0
	for _, c := range checks {
		total += c
	}
	b.addChecks(total)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var out []fd.FD
	st.constNew.ForEach(func(a int) { out = append(out, fd.FD{RHS: a}) })
	st.working.ForEach(func(rhs int) {
		lhss := st.oldLHSs[rhs]
		if len(st.violated[rhs]) > 0 {
			lhss = repaired[rhs]
		}
		for _, lhs := range lhss {
			out = append(out, fd.FD{LHS: lhs, RHS: rhs})
		}
	})
	fd.Sort(out)
	p.fds = out
	return nil
}

// toPanicError mirrors the engine's panic isolation: a recovered panic value
// becomes a *core.PanicError, preserving a parallel worker's original stack.
func toPanicError(algorithm string, r any) error {
	if tp, ok := r.(*parallel.TaskPanic); ok {
		return &core.PanicError{Strategy: algorithm, Value: tp, Stack: string(tp.Stack)}
	}
	return &core.PanicError{Strategy: algorithm, Value: r, Stack: string(debug.Stack())}
}
