package incremental

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holistic/internal/core"
	"holistic/internal/relation"
)

func snapshotProfiler(t *testing.T) (*Profiler, *relation.Relation) {
	t.Helper()
	rows := randomRows(rand.New(rand.NewSource(7)), 40, 3, 0, "v")
	rel := mustRelation(t, rows, 3, relation.Options{})
	p, _, err := NewProfiler(context.Background(), rel, core.StrategyMuds, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel2 := mustRelation(t, rows, 3, relation.Options{})
	return p, rel2
}

// TestSnapshotFileChecksum covers the durability contract of snapshot files:
// WriteFile seals a checksum that survives the file round trip, and Resume
// rejects a tampered file with ErrCorruptSnapshot — a distinct failure from
// the fingerprint mismatch an intact-but-foreign snapshot produces.
func TestSnapshotFileChecksum(t *testing.T) {
	p, rel := snapshotProfiler(t)
	path := filepath.Join(t.TempDir(), "session.snap")
	if err := p.Snapshot().WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	snap, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Checksum == "" {
		t.Fatal("WriteFile left Checksum empty")
	}
	if _, err := Resume(rel, snap, core.Options{}); err != nil {
		t.Fatalf("Resume on intact snapshot: %v", err)
	}

	// Tamper with the metadata but keep the stored checksum: corrupt.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"version": 0`, `"version": 7`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in snapshot JSON")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	snap2, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(rel, snap2, core.Options{}); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("Resume on tampered snapshot: err = %v, want ErrCorruptSnapshot", err)
	}

	// A fingerprint mismatch on an intact snapshot must NOT read as corrupt.
	snap3 := p.Snapshot()
	if err := snap3.Write(&strings.Builder{}); err != nil { // seals checksum
		t.Fatal(err)
	}
	other := mustRelation(t, [][]string{{"a", "b", "c"}}, 3, relation.Options{})
	_, err = Resume(other, snap3, core.Options{})
	if err == nil || errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("fingerprint mismatch: err = %v, want non-corrupt validation error", err)
	}
}

// TestSnapshotChecksumOptional keeps pre-checksum snapshot files resumable.
func TestSnapshotChecksumOptional(t *testing.T) {
	p, rel := snapshotProfiler(t)
	snap := p.Snapshot() // never sealed: Checksum empty
	if _, err := Resume(rel, snap, core.Options{}); err != nil {
		t.Fatalf("Resume without checksum: %v", err)
	}
}

// TestSnapshotWriteFileAtomic proves a failed write leaves the previous
// snapshot intact and no temp residue, and that success leaves exactly the
// snapshot file.
func TestSnapshotWriteFileAtomic(t *testing.T) {
	p, _ := snapshotProfiler(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "session.snap")
	if err := p.Snapshot().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Writing into a missing directory fails after the temp create; the
	// original file must be untouched either way.
	if err := p.Snapshot().WriteFile(filepath.Join(dir, "missing", "x.snap")); err == nil {
		t.Fatal("WriteFile into missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil || string(after) != string(before) {
		t.Fatalf("original snapshot changed after failed write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "session.snap" {
			t.Fatalf("unexpected residue %s in snapshot dir", e.Name())
		}
	}
}
