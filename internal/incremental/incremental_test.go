package incremental

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/core"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/relation"
)

// randomRows draws rows whose per-column cardinality varies enough to make
// UCC violations, FD violations and IND repairs all reachable.
func randomRows(rng *rand.Rand, rows, cols int, nullRate float64, tag string) [][]string {
	out := make([][]string, rows)
	for i := range out {
		row := make([]string, cols)
		for c := range row {
			if rng.Float64() < nullRate {
				row[c] = ""
			} else {
				row[c] = fmt.Sprintf("%s%d", tag, rng.Intn(3+2*c))
			}
		}
		out[i] = row
	}
	return out
}

func mustRelation(t *testing.T, rows [][]string, cols int, opts relation.Options) *relation.Relation {
	t.Helper()
	names := make([]string, cols)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	rel, err := relation.NewWithOptions("t", names, rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// assertSameResult compares the three metadata families order-independently,
// honouring which families the strategy emits.
func assertSameResult(t *testing.T, label string, got, want *core.Result, hasINDs, hasUCCs bool) {
	t.Helper()
	if hasINDs {
		g, w := append([]ind.IND(nil), got.INDs...), append([]ind.IND(nil), want.INDs...)
		ind.Sort(g)
		ind.Sort(w)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: INDs differ\ngot  %v\nwant %v", label, g, w)
		}
	}
	if hasUCCs {
		g, w := append([]bitset.Set(nil), got.UCCs...), append([]bitset.Set(nil), want.UCCs...)
		bitset.Sort(g)
		bitset.Sort(w)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: UCCs differ\ngot  %v\nwant %v", label, g, w)
		}
	}
	g, w := append([]fd.FD(nil), got.FDs...), append([]fd.FD(nil), want.FDs...)
	fd.Sort(g)
	fd.Sort(w)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: FDs differ\ngot  %v\nwant %v", label, g, w)
	}
}

// TestIncrementalEquivalence is the differential spine of the subsystem:
// randomized bases, 1–5 appended batches, three strategies, both NULL
// semantics — after every batch the incrementally maintained result must
// equal a from-scratch run of the same strategy on the concatenated rows.
func TestIncrementalEquivalence(t *testing.T) {
	strategies := []string{core.StrategyMuds, core.StrategyTane, core.StrategyHolisticFun}
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		for _, distinctNulls := range []bool{false, true} {
			for _, strategy := range strategies {
				label := fmt.Sprintf("trial=%d distinctNulls=%v strategy=%s", trial, distinctNulls, strategy)
				cols := 3 + rng.Intn(3)
				relOpts := relation.Options{DistinctNulls: distinctNulls}
				base := randomRows(rng, 20+rng.Intn(40), cols, 0.08, "v")
				all := append([][]string(nil), base...)
				rel := mustRelation(t, base, cols, relOpts)

				opts := core.Options{Seed: int64(trial), Workers: 1 + rng.Intn(3)}
				p, _, err := NewProfiler(ctx, rel, strategy, opts, nil)
				if err != nil {
					t.Fatalf("%s: initial profile: %v", label, err)
				}
				hasINDs, hasUCCs, _ := families(strategy)

				batches := 1 + rng.Intn(5)
				for bi := 0; bi < batches; bi++ {
					batch := randomRows(rng, 1+rng.Intn(12), cols, 0.08, fmt.Sprintf("b%d_", bi))
					// Mix in repeats of earlier rows so duplicate dropping and
					// the PLI merge path both see traffic.
					for k := 0; k < 1+rng.Intn(3); k++ {
						batch = append(batch, append([]string(nil), all[rng.Intn(len(all))]...))
					}
					all = append(all, batch...)

					got, err := p.AppendBatch(ctx, batch, nil)
					if err != nil {
						t.Fatalf("%s batch %d: %v", label, bi, err)
					}
					if got.Partial {
						t.Fatalf("%s batch %d: unexpected partial result", label, bi)
					}
					if p.Version() != bi+1 {
						t.Fatalf("%s batch %d: version %d", label, bi, p.Version())
					}

					scratch := mustRelation(t, all, cols, relOpts)
					want, err := core.RunRelationContext(ctx, strategy, scratch, opts, nil)
					if err != nil {
						t.Fatalf("%s batch %d: from-scratch: %v", label, bi, err)
					}
					assertSameResult(t, fmt.Sprintf("%s batch %d", label, bi), got, want, hasINDs, hasUCCs)
				}
			}
		}
	}
}

// TestSnapshotRoundTrip drives the CLI resume path: profile, snapshot to
// JSON, rebuild the relation from the same rows, Resume, append — the result
// must match both a warm profiler and a from-scratch run.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ctx := context.Background()
	cols := 4
	base := randomRows(rng, 40, cols, 0.05, "v")
	rel := mustRelation(t, base, cols, relation.Options{})
	opts := core.Options{Seed: 9}
	p, _, err := NewProfiler(ctx, rel, core.StrategyMuds, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.Snapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 0 || snap.Algorithm != core.StrategyMuds || !snap.HasINDs {
		t.Fatalf("snapshot header off: %+v", snap)
	}

	rel2 := mustRelation(t, base, cols, relation.Options{})
	resumed, err := Resume(rel2, snap, opts)
	if err != nil {
		t.Fatal(err)
	}

	batch := randomRows(rng, 10, cols, 0.05, "x")
	all := append(append([][]string(nil), base...), batch...)
	warm, err := p.AppendBatch(ctx, batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := resumed.AppendBatch(ctx, batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := core.RunRelationContext(ctx, core.StrategyMuds, mustRelation(t, all, cols, relation.Options{}), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "warm vs scratch", warm, scratch, true, true)
	assertSameResult(t, "resumed vs scratch", cold, scratch, true, true)
}

// TestSnapshotValidate rejects mismatched relations.
func TestSnapshotValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := randomRows(rng, 20, 3, 0, "v")
	rel := mustRelation(t, base, 3, relation.Options{})
	p, _, err := NewProfiler(context.Background(), rel, core.StrategyMuds, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()

	other := mustRelation(t, randomRows(rng, 21, 3, 0, "w"), 3, relation.Options{})
	if _, err := Resume(other, snap, core.Options{}); err == nil {
		t.Fatal("Resume accepted a relation with a different row count")
	}
	snap2 := *snap
	snap2.Columns = []string{"a", "b", "c"}
	if _, err := Resume(rel, &snap2, core.Options{}); err == nil {
		t.Fatal("Resume accepted a relation with different column names")
	}
	snap3 := *snap
	snap3.Algorithm = "nope"
	if _, err := Resume(rel, &snap3, core.Options{}); err == nil {
		t.Fatal("Resume accepted an unknown algorithm")
	}
}

// TestDuplicateOnlyBatch: a batch consisting entirely of existing rows leaves
// the de-duplicated relation — and therefore every dependency — unchanged.
func TestDuplicateOnlyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := randomRows(rng, 30, 3, 0, "v")
	rel := mustRelation(t, base, 3, relation.Options{})
	p, initial, err := NewProfiler(context.Background(), rel, core.StrategyMuds, core.Options{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]string{
		append([]string(nil), base[0]...),
		append([]string(nil), base[1]...),
	}
	res, err := p.AppendBatch(context.Background(), batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "duplicate-only", res, initial, true, true)
	if p.Version() != 1 {
		t.Fatalf("version %d, want 1", p.Version())
	}
}

// TestConstantRelease: a column that is constant in the base stops being
// constant after the batch; its ∅ → A form must be violated and the FD
// lattice re-entered over the grown base.
func TestConstantRelease(t *testing.T) {
	base := [][]string{
		{"k1", "c", "x1"},
		{"k2", "c", "x2"},
		{"k3", "c", "x1"},
	}
	rel := mustRelation(t, base, 3, relation.Options{})
	ctx := context.Background()
	p, _, err := NewProfiler(ctx, rel, core.StrategyMuds, core.Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]string{{"k4", "d", "x2"}}
	got, err := p.AppendBatch(ctx, batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]string(nil), base...), batch...)
	want, err := core.RunRelationContext(ctx, core.StrategyMuds, mustRelation(t, all, 3, relation.Options{}), core.Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "constant release", got, want, true, true)
	for _, f := range got.FDs {
		if f.LHS.IsEmpty() && f.RHS == 1 {
			t.Fatalf("column 1 still reported constant: %v", got.FDs)
		}
	}
}

// TestDistinctNullsSpiderFallback: once a NULL enters a DistinctNulls
// relation the matrix regime is unsound and the profiler must fall back to a
// full SPIDER re-merge — results still match from-scratch.
func TestDistinctNullsSpiderFallback(t *testing.T) {
	relOpts := relation.Options{DistinctNulls: true}
	base := [][]string{
		{"a1", "b1"},
		{"a2", "b2"},
		{"a1", "b3"},
	}
	rel := mustRelation(t, base, 2, relOpts)
	ctx := context.Background()
	p, _, err := NewProfiler(ctx, rel, core.StrategyMuds, core.Options{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.missing == nil {
		t.Fatal("matrix should be usable while the relation has no NULLs")
	}
	all := append([][]string(nil), base...)
	batches := [][][]string{
		{{"", "a1"}},             // first NULL: flips into the fallback regime
		{{"a3", ""}, {"", "b1"}}, // stays there
	}
	for bi, batch := range batches {
		all = append(all, batch...)
		got, err := p.AppendBatch(ctx, batch, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.missing != nil {
			t.Fatalf("batch %d: matrix must be dropped once NULLs exist", bi)
		}
		want, err := core.RunRelationContext(ctx, core.StrategyMuds, mustRelation(t, all, 2, relOpts), core.Options{Seed: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("fallback batch %d", bi), got, want, true, true)
	}
}

// TestAppendBatchRejectsRaggedRows surfaces input errors instead of mutating.
func TestAppendBatchRejectsRaggedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rel := mustRelation(t, randomRows(rng, 10, 3, 0, "v"), 3, relation.Options{})
	p, _, err := NewProfiler(context.Background(), rel, core.StrategyMuds, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppendBatch(context.Background(), [][]string{{"only", "two"}}, nil); err == nil {
		t.Fatal("ragged batch row accepted")
	}
	if p.Version() != 0 {
		t.Fatalf("failed batch bumped version to %d", p.Version())
	}
}

// TestAppendBatchPhases: a batch with violations reports the full phase
// sequence and a positive check count.
func TestAppendBatchPhases(t *testing.T) {
	base := [][]string{
		{"k1", "u1", "a"},
		{"k2", "u2", "a"},
		{"k3", "u3", "b"},
	}
	rel := mustRelation(t, base, 3, relation.Options{})
	ctx := context.Background()
	p, _, err := NewProfiler(ctx, rel, core.StrategyMuds, core.Options{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate column 1's value u1 (violating its UCC and FDs built on it).
	res, err := p.AppendBatch(ctx, [][]string{{"k4", "u1", "b"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ph := range res.Phases {
		seen[ph.Name] = true
	}
	for _, name := range []string{core.PhaseAppend, core.PhaseINDDelta, core.PhaseRevalidate} {
		if !seen[name] {
			t.Fatalf("phase %q missing from %v", name, res.Phases)
		}
	}
	if res.Checks == 0 {
		t.Fatal("no checks reported")
	}
	if res.Algorithm != core.StrategyMuds {
		t.Fatalf("algorithm %q", res.Algorithm)
	}
}
