// Package ind implements unary inclusion dependency discovery: the SPIDER
// algorithm (paper Sec. 2.1) and a De-Marchi-style inverted-index baseline.
//
// Both algorithms operate on the shared relation substrate; SPIDER consumes
// the duplicate-free sorted value lists that fall out of the dictionary
// encoding, which is exactly the I/O-sharing the holistic approach exploits
// (paper Sec. 3: "PLIs map values to positions so that Spider can retrieve
// duplicate-free value lists").
package ind

import (
	"fmt"
	"sort"
)

// IND is a unary inclusion dependency: every value of column Dependent also
// occurs in column Referenced.
type IND struct {
	Dependent  int
	Referenced int
}

// String formats the IND with letter column names (A ⊆ B style).
func (d IND) String() string {
	return fmt.Sprintf("%s ⊆ %s", columnLabel(d.Dependent), columnLabel(d.Referenced))
}

func columnLabel(c int) string {
	if c < 26 {
		return string(rune('A' + c))
	}
	return fmt.Sprintf("col%d", c)
}

// Options configures IND discovery.
type Options struct {
	// IgnoreNulls excludes NULL (empty) values from containment checks, so a
	// NULL on the dependent side does not require a NULL on the referenced
	// side.
	IgnoreNulls bool
}

// Sort orders INDs by (dependent, referenced) for deterministic output.
func Sort(inds []IND) {
	sort.Slice(inds, func(i, j int) bool {
		if inds[i].Dependent != inds[j].Dependent {
			return inds[i].Dependent < inds[j].Dependent
		}
		return inds[i].Referenced < inds[j].Referenced
	})
}

// candidateSets tracks, per column, which columns may still reference it.
type candidateSets struct {
	refs    []map[int]bool // refs[a] = columns that may still contain all of a
	pending int            // total remaining candidate pairs
}

func newCandidateSets(n int) *candidateSets {
	cs := &candidateSets{refs: make([]map[int]bool, n)}
	for a := 0; a < n; a++ {
		cs.refs[a] = make(map[int]bool, n-1)
		for b := 0; b < n; b++ {
			if a != b {
				cs.refs[a][b] = true
				cs.pending++
			}
		}
	}
	return cs
}

// restrict intersects the candidates of every attribute in group with group:
// the attributes of group exclusively contain the current value, so an
// attribute of group can only be included in other attributes of group.
func (cs *candidateSets) restrict(group []int) {
	inGroup := make(map[int]bool, len(group))
	for _, a := range group {
		inGroup[a] = true
	}
	for _, a := range group {
		for b := range cs.refs[a] {
			if !inGroup[b] {
				delete(cs.refs[a], b)
				cs.pending--
			}
		}
	}
}

func (cs *candidateSets) results() []IND {
	var out []IND
	for a, set := range cs.refs {
		for b := range set {
			out = append(out, IND{Dependent: a, Referenced: b})
		}
	}
	Sort(out)
	return out
}
