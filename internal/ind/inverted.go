package ind

import "holistic/internal/relation"

// InvertedIndex discovers all unary INDs with the De Marchi et al. approach
// (paper Sec. 7): an inverted index from each value to the set of columns
// containing it; the candidate set of every column is intersected with the
// column group of each of its values. It serves as the pre-SPIDER baseline
// in the evaluation harness.
func InvertedIndex(rel *relation.Relation, opts Options) []IND {
	n := rel.NumColumns()
	if n == 0 {
		return nil
	}
	index := make(map[string][]int)
	for c := 0; c < n; c++ {
		for _, v := range rel.DistinctValues(c) {
			if opts.IgnoreNulls && v == relation.NullValue {
				continue
			}
			index[v] = append(index[v], c)
		}
	}
	cs := newCandidateSets(n)
	for _, group := range index {
		if cs.pending == 0 {
			break
		}
		cs.restrict(group)
	}
	return cs.results()
}
