package ind

import (
	"holistic/internal/relation"
)

// MissingMatrix is the incremental counterpart of SPIDER: it maintains, for
// every ordered column pair (a, b), the number of distinct values of a that
// do not occur in b. The unary IND a ⊆ b holds iff Counts[a][b] == 0, so the
// full IND result is a matrix read-off — and unlike the dependency lattices,
// the matrix supports EXACT delta maintenance under appends, including
// re-validation of previously invalid INDs (containment is not monotone: new
// referenced-side values can repair it, new dependent-side values can break
// it).
//
// With old(x) the distinct values of column x before a batch and new(x) the
// distinct values the batch added, the new count follows from two disjoint
// unions:
//
//	|final(a) \ final(b)| = |old(a) \ old(b)| − |old(a) ∩ new(b)|
//	                      + |new(a) \ final(b)|
//
// so Update only touches the newly added distinct values of each column —
// the per-batch cost is proportional to the batch's novelty, not to the
// relation.
//
// The matrix models SET containment over each column's distinct values,
// which matches SPIDER's merge over duplicate-free sorted value lists. Under
// Options.IgnoreNulls the NULL value is excluded on both sides, again
// matching SPIDER's skipNulls. It must NOT be used for a DistinctNulls
// relation that contains NULLs: there SPIDER's value lists carry one entry
// per NULL occurrence (multiset semantics) and the incremental layer falls
// back to a full re-merge instead.
type MissingMatrix struct {
	Counts      [][]int `json:"counts"`
	IgnoreNulls bool    `json:"ignore_nulls,omitempty"`
}

// BuildMissing computes the initial matrix over every distinct value of
// every column, using the relation's retained value→code lookup for
// membership tests.
func BuildMissing(rel *relation.Relation, opts Options) *MissingMatrix {
	n := rel.NumColumns()
	m := &MissingMatrix{Counts: make([][]int, n), IgnoreNulls: opts.IgnoreNulls}
	for a := 0; a < n; a++ {
		m.Counts[a] = make([]int, n)
	}
	for a := 0; a < n; a++ {
		for _, v := range rel.DistinctValues(a) {
			if opts.IgnoreNulls && v == relation.NullValue {
				continue
			}
			for b := 0; b < n; b++ {
				if b == a {
					continue
				}
				if _, ok := rel.Lookup(b, v); !ok {
					m.Counts[a][b]++
				}
			}
		}
	}
	return m
}

// Update folds one appended batch into the matrix. rel must already contain
// the batch; oldCard gives each column's dictionary size before the append
// (relation.AppendDelta.OldCard), so the newly added distinct values of
// column c are exactly DistinctValues(c)[oldCard[c]:].
func (m *MissingMatrix) Update(rel *relation.Relation, oldCard []int) {
	n := rel.NumColumns()
	newVals := make([][]string, n)
	for c := 0; c < n; c++ {
		for _, v := range rel.DistinctValues(c)[oldCard[c]:] {
			if m.IgnoreNulls && v == relation.NullValue {
				continue
			}
			newVals[c] = append(newVals[c], v)
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			// Values of old(a) that new(b) repaired.
			for _, v := range newVals[b] {
				if code, ok := rel.Lookup(a, v); ok && int(code) < oldCard[a] {
					m.Counts[a][b]--
				}
			}
			// Values of new(a) that final(b) does not contain.
			for _, v := range newVals[a] {
				if _, ok := rel.Lookup(b, v); !ok {
					m.Counts[a][b]++
				}
			}
		}
	}
}

// INDs reads the valid unary INDs off the matrix, sorted like SPIDER's
// output.
func (m *MissingMatrix) INDs() []IND {
	var out []IND
	for a := range m.Counts {
		for b, c := range m.Counts[a] {
			if a != b && c == 0 {
				out = append(out, IND{Dependent: a, Referenced: b})
			}
		}
	}
	Sort(out)
	return out
}
