package ind

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"holistic/internal/relation"
)

func randomINDRelation(t *testing.T, rng *rand.Rand, rows, cols int, nullRate float64) *relation.Relation {
	t.Helper()
	names := make([]string, cols)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			if rng.Float64() < nullRate {
				row[c] = ""
			} else {
				// Overlapping value pools make genuine INDs likely.
				row[c] = fmt.Sprintf("v%d", rng.Intn(4+c))
			}
		}
		data[i] = row
	}
	rel, err := relation.New("t", names, data)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestMissingMatrixMatchesSpider pins the matrix build and read-off to
// SPIDER's merge on static relations.
func TestMissingMatrixMatchesSpider(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		for _, ignoreNulls := range []bool{false, true} {
			rel := randomINDRelation(t, rng, 10+rng.Intn(40), 2+rng.Intn(4), 0.1)
			opts := Options{IgnoreNulls: ignoreNulls}
			got := BuildMissing(rel, opts).INDs()
			want := Spider(rel, opts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d ignoreNulls=%v:\nmatrix %v\nspider %v", trial, ignoreNulls, got, want)
			}
		}
	}
}

// TestMissingMatrixUpdate appends batches and checks the delta-maintained
// matrix against a full SPIDER re-run after every batch — including batches
// that only repeat old values (no new distinct values → no matrix movement)
// and batches that repair previously invalid INDs.
func TestMissingMatrixUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		for _, ignoreNulls := range []bool{false, true} {
			rel := randomINDRelation(t, rng, 15+rng.Intn(30), 3, 0.1)
			opts := Options{IgnoreNulls: ignoreNulls}
			m := BuildMissing(rel, opts)
			for batch := 0; batch < 4; batch++ {
				rows := make([][]string, 2+rng.Intn(6))
				for i := range rows {
					row := make([]string, 3)
					for c := range row {
						switch rng.Intn(3) {
						case 0:
							row[c] = fmt.Sprintf("v%d", rng.Intn(4+c)) // likely old
						case 1:
							row[c] = fmt.Sprintf("b%d_%d", batch, rng.Intn(3)) // fresh
						default:
							row[c] = ""
						}
					}
					rows[i] = row
				}
				delta, err := rel.Append(rows)
				if err != nil {
					t.Fatal(err)
				}
				m.Update(rel, delta.OldCard)
				got := m.INDs()
				want := Spider(rel, opts)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d batch %d ignoreNulls=%v:\nmatrix %v\nspider %v",
						trial, batch, ignoreNulls, got, want)
				}
			}
		}
	}
}
