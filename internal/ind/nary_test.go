package ind

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"holistic/internal/relation"
)

// naryOracle checks every candidate attribute-sequence pair up to maxArity
// by explicit tuple containment.
func naryOracle(rel *relation.Relation, opts Options, maxArity int) []NaryIND {
	n := rel.NumColumns()
	if maxArity < 1 || maxArity > n {
		maxArity = n
	}
	var out []NaryIND
	var dep, ref []int
	var buildRef func(arity int)
	var buildDep func(arity int)

	usedRef := make([]bool, n)
	buildRef = func(arity int) {
		if len(ref) == arity {
			cand := NaryIND{
				Dependent:  append([]int(nil), dep...),
				Referenced: append([]int(nil), ref...),
			}
			same := true
			for i := range cand.Dependent {
				if cand.Dependent[i] != cand.Referenced[i] {
					same = false
				}
			}
			if !same && checkNary(rel, cand, opts) {
				out = append(out, cand)
			}
			return
		}
		for c := 0; c < n; c++ {
			if usedRef[c] {
				continue
			}
			usedRef[c] = true
			ref = append(ref, c)
			buildRef(arity)
			ref = ref[:len(ref)-1]
			usedRef[c] = false
		}
	}
	usedDep := make([]bool, n)
	buildDep = func(arity int) {
		if len(dep) == arity {
			buildRef(arity)
			return
		}
		start := 0
		if len(dep) > 0 {
			start = dep[len(dep)-1] + 1 // dependent side kept sorted
		}
		for c := start; c < n; c++ {
			if usedDep[c] {
				continue
			}
			usedDep[c] = true
			dep = append(dep, c)
			buildDep(arity)
			dep = dep[:len(dep)-1]
			usedDep[c] = false
		}
	}
	for arity := 1; arity <= maxArity; arity++ {
		var level []NaryIND
		before := len(out)
		buildDep(arity)
		level = out[before:]
		SortNary(level)
	}
	return out
}

func TestNaryKnownExample(t *testing.T) {
	// Columns: A ⊆ C and B ⊆ D positionally, and the pairs (A,B) ⊆ (C,D).
	rel := relation.MustNew("t", []string{"A", "B", "C", "D"}, [][]string{
		{"1", "x", "1", "x"},
		{"2", "y", "2", "y"},
		{"", "", "3", "z"},
	})
	// Row 3 uses empty strings on A,B; with IgnoreNulls they don't count.
	got := Nary(rel, Options{IgnoreNulls: true}, 2)
	found := map[string]bool{}
	for _, d := range got {
		found[d.String()] = true
	}
	for _, want := range []string{"[A] ⊆ [C]", "[B] ⊆ [D]", "[A B] ⊆ [C D]"} {
		if !found[want] {
			t.Errorf("missing %s in %v", want, got)
		}
	}
	// The cross pair (A,B) ⊆ (D,C) must not hold.
	if found["[A B] ⊆ [D C]"] {
		t.Error("unexpected [A B] ⊆ [D C]")
	}
}

func TestNaryBinaryInvalidWhenPairsMisalign(t *testing.T) {
	// A ⊆ C and B ⊆ D hold value-wise, but the pair combination does not:
	// (1,x) never appears as a (C,D) tuple.
	rel := relation.MustNew("t", []string{"A", "B", "C", "D"}, [][]string{
		{"1", "x", "1", "y"},
		{"2", "y", "2", "x"},
	})
	got := Nary(rel, Options{}, 2)
	for _, d := range got {
		if len(d.Dependent) == 2 && d.Dependent[0] == 0 && d.Dependent[1] == 1 &&
			d.Referenced[0] == 2 && d.Referenced[1] == 3 {
			t.Errorf("pair IND %v should be invalid", d)
		}
	}
}

func TestNaryArityLimit(t *testing.T) {
	rel := relation.MustNew("t", []string{"A", "B"}, [][]string{
		{"1", "1"},
		{"2", "2"},
	})
	got := Nary(rel, Options{}, 1)
	for _, d := range got {
		if len(d.Dependent) != 1 {
			t.Errorf("arity limit violated: %v", d)
		}
	}
}

func TestNaryString(t *testing.T) {
	d := NaryIND{Dependent: []int{0, 1}, Referenced: []int{2, 3}}
	if got := d.String(); got != "[A B] ⊆ [C D]" {
		t.Errorf("String = %q", got)
	}
}

// Property: the level-wise discovery agrees with the brute-force oracle on
// random relations, for the canonicalised (sorted-dependent) candidates.
func TestQuickNaryMatchesOracle(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			cols := 2 + rnd.Intn(3)
			rows := 1 + rnd.Intn(12)
			names := make([]string, cols)
			for i := range names {
				names[i] = string(rune('A' + i))
			}
			data := make([][]string, rows)
			for i := range data {
				row := make([]string, cols)
				for c := range row {
					row[c] = fmt.Sprint(rnd.Intn(3))
				}
				data[i] = row
			}
			vals[0] = reflect.ValueOf(relation.MustNew("rand", names, data))
		},
	}
	if err := quick.Check(func(rel *relation.Relation) bool {
		got := Nary(rel, Options{}, 3)
		want := naryOracle(rel, Options{}, 3)
		key := func(d NaryIND) string { return d.String() }
		gm, wm := map[string]bool{}, map[string]bool{}
		for _, d := range got {
			gm[key(d)] = true
		}
		for _, d := range want {
			wm[key(d)] = true
		}
		if len(gm) != len(wm) {
			return false
		}
		for k := range wm {
			if !gm[k] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPairKeyDistinct(t *testing.T) {
	a := NaryIND{Dependent: []int{0, 1}, Referenced: []int{2, 3}}
	b := NaryIND{Dependent: []int{0, 1}, Referenced: []int{3, 2}}
	if pairKey(a) == pairKey(b) {
		t.Error("pair keys must distinguish referenced order")
	}
	if !strings.Contains(a.String(), "⊆") {
		t.Error("formatting sanity")
	}
}
