package ind

import (
	"sort"
	"strings"

	"holistic/internal/relation"
)

// This file implements n-ary IND discovery as a MIND-style level-wise
// extension on top of SPIDER's unary results. The paper restricts the
// holistic algorithm to unary INDs ("without any loss of generality, we
// could discover n-ary INDs as well, but these would not contribute to the
// holistic discovery", Sec. 2.1); the extension is provided for library
// completeness.

// NaryIND is an inclusion dependency between attribute sequences: the
// projection on Dependent is contained in the projection on Referenced.
// Both sides have the same length; positions correspond pairwise.
type NaryIND struct {
	Dependent  []int
	Referenced []int
}

// String formats the IND as "[A B] ⊆ [C D]" with letter column names.
func (d NaryIND) String() string {
	label := func(cols []int) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = columnLabel(c)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	return label(d.Dependent) + " ⊆ " + label(d.Referenced)
}

// SortNary orders n-ary INDs lexicographically for deterministic output.
func SortNary(inds []NaryIND) {
	key := func(d NaryIND) string {
		var b strings.Builder
		for _, c := range d.Dependent {
			b.WriteByte(byte(c))
		}
		b.WriteByte(0xff)
		for _, c := range d.Referenced {
			b.WriteByte(byte(c))
		}
		return b.String()
	}
	sort.Slice(inds, func(i, j int) bool { return key(inds[i]) < key(inds[j]) })
}

// Nary discovers all n-ary INDs up to maxArity (inclusive) within the
// relation, using the apriori property that every projection of a valid
// n-ary IND onto corresponding position pairs is a valid (n-1)-ary IND.
// Level 1 comes from Spider; higher levels are generated MIND-style and
// validated by set containment over concatenated values. maxArity < 1
// means no limit (bounded by the column count). Results are grouped by
// arity in ascending order.
//
// Only INDs with pairwise-distinct attributes on each side and disjoint
// position pairs are reported, and permutations of position pairs are
// canonicalised (the dependent side is kept sorted), following the common
// convention of n-ary IND discovery.
func Nary(rel *relation.Relation, opts Options, maxArity int) []NaryIND {
	if maxArity < 1 || maxArity > rel.NumColumns() {
		maxArity = rel.NumColumns()
	}
	unary := Spider(rel, opts)
	level := make([]NaryIND, 0, len(unary)+rel.NumColumns())
	for _, d := range unary {
		level = append(level, NaryIND{Dependent: []int{d.Dependent}, Referenced: []int{d.Referenced}})
	}
	// Reflexive pairs [c] ⊆ [c] are trivially valid and never reported, but
	// they are necessary building blocks: [A,B] ⊆ [A,D] projects onto the
	// reflexive [A] ⊆ [A] when the B/D pair is dropped.
	for c := 0; c < rel.NumColumns(); c++ {
		level = append(level, NaryIND{Dependent: []int{c}, Referenced: []int{c}})
	}
	SortNary(level)

	out := make([]NaryIND, 0, len(unary))
	for _, d := range level {
		if !allReflexive(d) {
			out = append(out, d)
		}
	}

	valid := map[string]bool{}
	for _, d := range level {
		valid[pairKey(d)] = true
	}

	for arity := 2; arity <= maxArity && len(level) > 0; arity++ {
		var next []NaryIND
		seen := map[string]bool{}
		for i := 0; i < len(level); i++ {
			for j := 0; j < len(level); j++ {
				cand, ok := merge(level[i], level[j])
				if !ok {
					continue
				}
				k := pairKey(cand)
				if seen[k] {
					continue
				}
				seen[k] = true
				if !allProjectionsValid(cand, valid) {
					continue
				}
				if allReflexive(cand) || checkNary(rel, cand, opts) {
					next = append(next, cand)
					valid[k] = true
				}
			}
		}
		SortNary(next)
		for _, d := range next {
			if !allReflexive(d) {
				out = append(out, d)
			}
		}
		level = next
	}
	return out
}

// allReflexive reports whether every position pair maps a column to itself
// (the trivial IND X ⊆ X).
func allReflexive(d NaryIND) bool {
	for i := range d.Dependent {
		if d.Dependent[i] != d.Referenced[i] {
			return false
		}
	}
	return true
}

// merge combines two (n-1)-ary INDs sharing all but the last position pair
// into an n-ary candidate, keeping the dependent side strictly sorted.
func merge(a, b NaryIND) (NaryIND, bool) {
	n := len(a.Dependent)
	for i := 0; i < n-1; i++ {
		if a.Dependent[i] != b.Dependent[i] || a.Referenced[i] != b.Referenced[i] {
			return NaryIND{}, false
		}
	}
	lastA, lastB := a.Dependent[n-1], b.Dependent[n-1]
	if lastA >= lastB {
		return NaryIND{}, false // keep dependent side strictly increasing
	}
	refA, refB := a.Referenced[n-1], b.Referenced[n-1]
	if refA == refB {
		return NaryIND{}, false // referenced attributes must be distinct
	}
	cand := NaryIND{
		Dependent:  append(append([]int(nil), a.Dependent...), lastB),
		Referenced: append(append([]int(nil), a.Referenced...), refB),
	}
	// Attributes within each side must be pairwise distinct. Fully
	// reflexive candidates are kept as generation building blocks and
	// filtered from the output by the caller.
	if hasDuplicate(cand.Dependent) || hasDuplicate(cand.Referenced) {
		return NaryIND{}, false
	}
	return cand, true
}

func hasDuplicate(cols []int) bool {
	seen := map[int]bool{}
	for _, c := range cols {
		if seen[c] {
			return true
		}
		seen[c] = true
	}
	return false
}

// allProjectionsValid applies the apriori pruning: dropping any position
// pair from a valid IND must leave a valid IND.
func allProjectionsValid(cand NaryIND, valid map[string]bool) bool {
	n := len(cand.Dependent)
	dep := make([]int, 0, n-1)
	ref := make([]int, 0, n-1)
	for drop := 0; drop < n; drop++ {
		dep, ref = dep[:0], ref[:0]
		for i := 0; i < n; i++ {
			if i != drop {
				dep = append(dep, cand.Dependent[i])
				ref = append(ref, cand.Referenced[i])
			}
		}
		if !valid[pairKeyOf(dep, ref)] {
			return false
		}
	}
	return true
}

func pairKey(d NaryIND) string { return pairKeyOf(d.Dependent, d.Referenced) }

func pairKeyOf(dep, ref []int) string {
	var b strings.Builder
	for i := range dep {
		b.WriteByte(byte(dep[i]))
		b.WriteByte(byte(ref[i]))
	}
	return b.String()
}

// checkNary validates the candidate by materialised set containment of the
// value tuples.
func checkNary(rel *relation.Relation, cand NaryIND, opts Options) bool {
	referenced := make(map[string]bool, rel.NumRows())
	var b strings.Builder
	tuple := func(cols []int, row int) (string, bool) {
		b.Reset()
		for _, c := range cols {
			v := rel.Value(row, c)
			if opts.IgnoreNulls && v == relation.NullValue {
				return "", false
			}
			b.WriteString(v)
			b.WriteByte(0)
		}
		return b.String(), true
	}
	for row := 0; row < rel.NumRows(); row++ {
		if t, ok := tuple(cand.Referenced, row); ok {
			referenced[t] = true
		}
	}
	for row := 0; row < rel.NumRows(); row++ {
		t, ok := tuple(cand.Dependent, row)
		if !ok {
			continue
		}
		if !referenced[t] {
			return false
		}
	}
	return true
}
