package ind

import (
	"container/heap"
	"context"

	"holistic/internal/relation"
)

// Spider discovers all unary INDs of the relation with the SPIDER algorithm:
// a sorting phase (duplicate-free sorted value lists per column, provided by
// the relation substrate) followed by a cooperative merge phase that
// invalidates candidates by intersecting the attribute group of every value
// (paper Sec. 2.1, Table 1).
func Spider(rel *relation.Relation, opts Options) []IND {
	inds, _ := SpiderContext(context.Background(), rel, opts)
	return inds
}

// spiderPollInterval is how many merge steps pass between context polls: the
// merge step itself is a handful of heap operations, so polling every step
// would cost more than the work it guards.
const spiderPollInterval = 1024

// SpiderContext runs SPIDER under a context: the merge phase polls ctx every
// spiderPollInterval steps and returns (nil, ctx.Err()) when cancelled.
func SpiderContext(ctx context.Context, rel *relation.Relation, opts Options) ([]IND, error) {
	n := rel.NumColumns()
	if n == 0 {
		return nil, nil
	}
	cs := newCandidateSets(n)

	// SPIDER's sorting phase: build every column's sorted duplicate-free
	// value list up front, one column per worker (the relation parallelizes
	// this internally). The cooperative merge below is inherently sequential
	// — it consumes one globally minimal value at a time.
	rel.EnsureSortedValues()

	// Cursors over the sorted duplicate-free value lists.
	h := &cursorHeap{}
	for c := 0; c < n; c++ {
		cur := &cursor{col: c, values: rel.SortedDistinctValues(c)}
		if opts.IgnoreNulls {
			cur.skipNulls()
		}
		if !cur.done() {
			h.items = append(h.items, cur)
		}
	}
	heap.Init(h)

	group := make([]int, 0, n)
	for steps := 0; h.Len() > 0 && cs.pending > 0; steps++ {
		if steps%spiderPollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Pop every cursor whose current value equals the minimum: these
		// attributes exclusively contain the value.
		minVal := h.items[0].current()
		group = group[:0]
		popped := popEqual(h, minVal, &group)
		cs.restrict(group)
		// Advance the popped cursors and push back the unfinished ones.
		for _, cur := range popped {
			cur.advance()
			if opts.IgnoreNulls {
				cur.skipNulls()
			}
			if !cur.done() {
				heap.Push(h, cur)
			}
		}
	}
	// Columns whose lists were exhausted while others still hold values need
	// no further invalidation: the remaining values only shrink candidate
	// sets of columns that contain them, and exhausted columns are not in
	// those groups, so their candidate sets are final. But columns still
	// holding values cannot depend on exhausted columns; pending>0 exits the
	// loop early only when every candidate set is already empty, so no
	// correction is needed here.
	return cs.results(), nil
}

type cursor struct {
	col    int
	values []string
	pos    int
}

func (c *cursor) current() string { return c.values[c.pos] }
func (c *cursor) done() bool      { return c.pos >= len(c.values) }
func (c *cursor) advance()        { c.pos++ }

func (c *cursor) skipNulls() {
	for !c.done() && c.current() == relation.NullValue {
		c.pos++
	}
}

type cursorHeap struct {
	items []*cursor
}

func (h *cursorHeap) Len() int { return len(h.items) }
func (h *cursorHeap) Less(i, j int) bool {
	return h.items[i].current() < h.items[j].current()
}
func (h *cursorHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *cursorHeap) Push(x any)    { h.items = append(h.items, x.(*cursor)) }
func (h *cursorHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

// popEqual removes every cursor positioned at value v from the heap, records
// the column group, and returns the popped cursors.
func popEqual(h *cursorHeap, v string, group *[]int) []*cursor {
	var popped []*cursor
	for h.Len() > 0 && h.items[0].current() == v {
		cur := heap.Pop(h).(*cursor)
		*group = append(*group, cur.col)
		popped = append(popped, cur)
	}
	return popped
}
