package ind

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"holistic/internal/relation"
)

// oracle computes unary INDs by explicit value-set containment.
func oracle(rel *relation.Relation, opts Options) []IND {
	n := rel.NumColumns()
	valueSets := make([]map[string]bool, n)
	for c := 0; c < n; c++ {
		valueSets[c] = map[string]bool{}
		for _, v := range rel.DistinctValues(c) {
			if opts.IgnoreNulls && v == relation.NullValue {
				continue
			}
			valueSets[c][v] = true
		}
	}
	var out []IND
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			ok := true
			for v := range valueSets[a] {
				if !valueSets[b][v] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, IND{Dependent: a, Referenced: b})
			}
		}
	}
	Sort(out)
	return out
}

// TestSpiderPaperExample reproduces Table 1 of the paper: columns
// A = (w,w,x,y), B = (z,x,z,z), C = (x,x,w,z). SPIDER's merge over the sorted
// duplicate-free lists leaves exactly B ⊆ C.
func TestSpiderPaperExample(t *testing.T) {
	rel := relation.MustNew("t1", []string{"A", "B", "C"}, [][]string{
		{"w", "z", "x"},
		{"w", "x", "x"},
		{"x", "z", "w"},
		{"y", "z", "z"},
	})
	// Sorting phase output (Table 1.2): duplicate-free sorted lists.
	if got := rel.SortedDistinctValues(0); !reflect.DeepEqual(got, []string{"w", "x", "y"}) {
		t.Errorf("sorted list A = %v", got)
	}
	if got := rel.SortedDistinctValues(1); !reflect.DeepEqual(got, []string{"x", "z"}) {
		t.Errorf("sorted list B = %v", got)
	}
	if got := rel.SortedDistinctValues(2); !reflect.DeepEqual(got, []string{"w", "x", "z"}) {
		t.Errorf("sorted list C = %v", got)
	}
	want := []IND{{Dependent: 1, Referenced: 2}} // B ⊆ C
	if got := Spider(rel, Options{}); !reflect.DeepEqual(got, want) {
		t.Errorf("Spider = %v, want %v", got, want)
	}
	if got := InvertedIndex(rel, Options{}); !reflect.DeepEqual(got, want) {
		t.Errorf("InvertedIndex = %v, want %v", got, want)
	}
}

func TestNoINDs(t *testing.T) {
	rel := relation.MustNew("t", []string{"A", "B"}, [][]string{
		{"1", "x"},
		{"2", "y"},
	})
	if got := Spider(rel, Options{}); len(got) != 0 {
		t.Errorf("Spider = %v, want none", got)
	}
}

func TestMutualInclusion(t *testing.T) {
	rel := relation.MustNew("t", []string{"A", "B"}, [][]string{
		{"1", "2"},
		{"2", "1"},
	})
	want := []IND{{0, 1}, {1, 0}}
	if got := Spider(rel, Options{}); !reflect.DeepEqual(got, want) {
		t.Errorf("Spider = %v, want %v", got, want)
	}
}

func TestSingleColumn(t *testing.T) {
	rel := relation.MustNew("t", []string{"A"}, [][]string{{"1"}, {"2"}})
	if got := Spider(rel, Options{}); len(got) != 0 {
		t.Errorf("Spider = %v, want none", got)
	}
}

func TestIgnoreNulls(t *testing.T) {
	rel := relation.MustNew("t", []string{"A", "B"}, [][]string{
		{"", "1"},
		{"1", "2"},
		{"2", "3"},
	})
	// With NULL as a value, A ⊄ B (B has no NULL) and B ⊄ A (3 ∉ A).
	if got := Spider(rel, Options{}); len(got) != 0 {
		t.Errorf("Spider with nulls = %v, want none", got)
	}
	// Ignoring NULLs, A = {1,2} ⊆ B = {1,2,3}.
	want := []IND{{0, 1}}
	if got := Spider(rel, Options{IgnoreNulls: true}); !reflect.DeepEqual(got, want) {
		t.Errorf("Spider ignore-nulls = %v, want %v", got, want)
	}
	if got := InvertedIndex(rel, Options{IgnoreNulls: true}); !reflect.DeepEqual(got, want) {
		t.Errorf("InvertedIndex ignore-nulls = %v, want %v", got, want)
	}
}

func TestAllNullColumnIgnoreNulls(t *testing.T) {
	rel := relation.MustNew("t", []string{"A", "B"}, [][]string{
		{"", "1"},
		{"", "2"},
	})
	// Relation dedup keeps both rows (B differs). With IgnoreNulls, A has no
	// values, so A ⊆ B vacuously; B ⊄ A.
	want := []IND{{0, 1}}
	if got := Spider(rel, Options{IgnoreNulls: true}); !reflect.DeepEqual(got, want) {
		t.Errorf("Spider = %v, want %v", got, want)
	}
}

func TestINDString(t *testing.T) {
	if got := (IND{0, 2}).String(); got != "A ⊆ C" {
		t.Errorf("String = %q", got)
	}
	if got := (IND{26, 30}).String(); got != "col26 ⊆ col30" {
		t.Errorf("String = %q", got)
	}
}

func randomRelation(rnd *rand.Rand) *relation.Relation {
	cols := 2 + rnd.Intn(5)
	rows := 1 + rnd.Intn(30)
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			// Small shared value domain so containments actually occur.
			if rnd.Intn(10) == 0 {
				row[c] = "" // sprinkle NULLs
			} else {
				row[c] = fmt.Sprint(rnd.Intn(5))
			}
		}
		data[i] = row
	}
	return relation.MustNew("rand", names, data)
}

// Property: SPIDER, the inverted index and the brute-force oracle agree,
// with and without NULL handling.
func TestQuickAlgorithmsAgree(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 250,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRelation(rnd))
			vals[1] = reflect.ValueOf(rnd.Intn(2) == 0)
		},
	}
	if err := quick.Check(func(rel *relation.Relation, ignoreNulls bool) bool {
		opts := Options{IgnoreNulls: ignoreNulls}
		want := oracle(rel, opts)
		return reflect.DeepEqual(Spider(rel, opts), want) &&
			reflect.DeepEqual(InvertedIndex(rel, opts), want)
	}, cfg); err != nil {
		t.Error(err)
	}
}
