package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	Reset()
	if err := Inject(ReaderIO); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
	if Degraded(CacheGet) {
		t.Fatal("disarmed Degraded = true, want false")
	}
	Check(PLIIntersect) // must not panic
}

func TestInjectModes(t *testing.T) {
	t.Cleanup(Reset)

	Enable(ReaderIO, ModeError, 0)
	err := Inject(ReaderIO)
	if err == nil || !IsInjected(err) {
		t.Fatalf("Inject = %v, want injected error", err)
	}
	if IsTransient(err) {
		t.Fatal("error mode must not be transient")
	}

	Enable(ReaderIO, ModeTransient, 0)
	if err := Inject(ReaderIO); !IsTransient(err) {
		t.Fatalf("Inject = %v, want transient", err)
	}

	Enable(ReaderIO, ModePanic, 0)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic mode did not panic")
			}
			if _, ok := r.(*Error); !ok {
				t.Fatalf("panic value = %T, want *Error", r)
			}
		}()
		_ = Inject(ReaderIO)
	}()
}

func TestTriggerBudget(t *testing.T) {
	t.Cleanup(Reset)
	Enable(CachePut, ModeError, 2)
	if !Degraded(CachePut) || !Degraded(CachePut) {
		t.Fatal("first two triggers must fire")
	}
	if Degraded(CachePut) {
		t.Fatal("third trigger fired past the budget")
	}
	if got := Fired(CachePut); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestConfigure(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("reader.io:error, pli.intersect:panic:3"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(ReaderIO); err == nil {
		t.Fatal("reader.io not armed")
	}
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("pli.intersect trigger %d did not panic", i)
				}
			}()
			Check(PLIIntersect)
		}()
	}
	Check(PLIIntersect) // budget of 3 exhausted: must not panic

	for _, bad := range []string{"reader.io", "x:boom", "x:error:-1", "x:error:q", "a:b:c:d"} {
		if err := Configure(bad); err == nil {
			t.Errorf("Configure(%q) accepted a malformed spec", bad)
		}
	}
}

func TestIsTransientUnwraps(t *testing.T) {
	t.Cleanup(Reset)
	Enable(ReaderIO, ModeTransient, 0)
	err := fmt.Errorf("outer: %w", Inject(ReaderIO))
	if !IsTransient(err) || !IsInjected(err) {
		t.Fatalf("wrapped injected transient not classified: %v", err)
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
}

// TestConcurrentTrigger hammers one budgeted point from many goroutines; the
// budget must be consumed exactly, with no double-fires (run under -race).
func TestConcurrentTrigger(t *testing.T) {
	t.Cleanup(Reset)
	Enable(WorkerSpawn, ModeError, 100)
	var wg sync.WaitGroup
	fired := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Degraded(WorkerSpawn) {
					fired[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 100 {
		t.Fatalf("fired %d times, want exactly 100", total)
	}
}
