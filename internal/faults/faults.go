// Package faults is the fault-injection substrate of the profiler: a set of
// named injection points threaded through the hot paths (CSV reading, PLI
// intersection, cache probes, worker-pool spawning, server admission) that
// tests and operators can arm to prove the system degrades instead of dying.
//
// Injection points are disarmed by default and cost one atomic load on the
// fast path, so production binaries pay nothing for carrying them. They are
// armed programmatically (Enable, from tests) or via the HOLISTIC_FAULTS
// environment variable (for chaos runs against a live daemon):
//
//	HOLISTIC_FAULTS="reader.io:error,pli.intersect:panic:1"
//
// Each comma-separated element is point:mode[:count]. Modes:
//
//   - error: the point reports a permanent *Error
//   - transient: the point reports a *Error that callers may retry
//     (Transient() returns true; the server's bounded retry keys off it)
//   - panic: the point panics with a *Error; the engine's panic isolation
//     converts it into a failed job with a captured stack
//
// count bounds how many times the fault fires (0 or absent = every time).
//
// How a triggered fault surfaces depends on the call site:
//
//   - error-capable sites (Inject) return the *Error to their caller
//   - sites with no error channel (Check) always surface as a panic,
//     regardless of mode, and rely on the engine's recover
//   - degradable sites (Degraded) report "this dependency is unavailable"
//     and the caller continues without it (cache probes fall back to
//     recomputation, the worker pool falls back to sequential execution)
package faults

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Point names one injection site. The constants below are the sites wired
// into the codebase; Enable accepts arbitrary names so tests can add their
// own.
type Point string

// The named injection points.
const (
	// ReaderIO fires inside relation.ReadCSV, before the input is parsed.
	ReaderIO Point = "reader.io"
	// PLIIntersect fires inside pli.Provider before an intersection — both
	// the materializing kind (Get, fast-path promotions) and the
	// non-materializing validation folds of the check kernels. The provider
	// has no error channel there, so every mode surfaces as a panic.
	PLIIntersect Point = "pli.intersect"
	// CacheGet fires on multi-column PLI cache probes. error/transient modes
	// degrade the probe to a miss (the PLI is recomputed); panic panics.
	CacheGet Point = "cache.get"
	// CachePut fires on multi-column PLI cache stores. error/transient modes
	// drop the store (later probes recompute); panic panics.
	CachePut Point = "cache.put"
	// WorkerSpawn fires when parallel.For is about to fan out. error/transient
	// modes degrade the pool to sequential in-line execution; panic panics.
	WorkerSpawn Point = "worker.spawn"
	// ServerEnqueue fires in the profiling server's submit handler before a
	// job is enqueued; the server maps it to a structured 503.
	ServerEnqueue Point = "server.enqueue"
	// WALAppend fires in durable.WAL.Append before the record frame is
	// written, modeling a full disk or failed write. The record is not
	// written at all (no partial frame), so replay sees a clean log.
	WALAppend Point = "wal.append"
	// WALFsync fires in durable.WAL.Append between the frame write and the
	// fsync, modeling a sync failure: the bytes may or may not be durable,
	// so the caller must treat the append as failed even though replay may
	// later surface the record.
	WALFsync Point = "wal.fsync"
	// CheckpointRename fires in durable.WriteCheckpoint between the synced
	// temp file and the atomic rename: the previous checkpoint must survive
	// untouched and the temp file must be cleaned up.
	CheckpointRename Point = "checkpoint.rename"
	// AdmissionEstimate fires in the server's deadline-aware admission
	// estimator. Armed (error/transient), the estimator reports an unbounded
	// predicted service time, so every deadline-carrying submission is
	// rejected at admission with 429 — the deterministic way to drive the
	// predicted-deadline rejection path in tests.
	AdmissionEstimate Point = "admission.estimate"
	// BreakerTrip fires when the server's per-(dataset, algorithm) circuit
	// breaker records a failure. Armed (error/transient), the breaker opens on
	// that first failure regardless of its configured threshold.
	BreakerTrip Point = "breaker.trip"
	// MemWatermark fires in the server's memory governor. Armed, it overrides
	// the sampled heap level: transient mode simulates heap above the soft
	// watermark (new jobs run degraded), error mode simulates heap above the
	// hard watermark (large submissions are refused with 503). Panic mode is
	// not meaningful here and is treated like error.
	MemWatermark Point = "mem.watermark"
)

// Mode selects what an armed point does when it fires.
type Mode string

// The injection modes.
const (
	ModeError     Mode = "error"
	ModeTransient Mode = "transient"
	ModePanic     Mode = "panic"
)

// Error is the failure injected at an armed point. It unwraps cleanly through
// fmt.Errorf("...: %w", err) chains and through the engine's PanicError, so
// callers anywhere up the stack can classify it (IsInjected, IsTransient).
type Error struct {
	Point Point
	Mode  Mode
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("injected fault at %s (%s)", e.Point, e.Mode)
}

// Transient reports whether the fault models a retryable condition.
func (e *Error) Transient() bool { return e.Mode == ModeTransient }

// plan is the armed state of one point.
type plan struct {
	mode Mode
	// remaining is the trigger budget; negative means unlimited.
	remaining atomic.Int64
	// fired counts how many times the point actually triggered.
	fired atomic.Int64
}

var (
	// armed is the fast-path gate: zero means every Inject/Check/Degraded is
	// a single atomic load and an immediate return.
	armed atomic.Int32

	mu    sync.RWMutex
	plans = map[Point]*plan{}
)

func init() {
	if spec := os.Getenv("HOLISTIC_FAULTS"); spec != "" {
		if err := Configure(spec); err != nil {
			// A malformed spec must not take the process down — that would
			// defeat the point of a robustness harness. Report and continue
			// unarmed.
			fmt.Fprintf(os.Stderr, "faults: ignoring HOLISTIC_FAULTS: %v\n", err)
		}
	}
}

// Enable arms point with the given mode. count bounds how many times the
// fault fires; count <= 0 means every time. Re-enabling a point replaces its
// previous plan.
func Enable(point Point, mode Mode, count int) {
	p := &plan{mode: mode}
	if count <= 0 {
		p.remaining.Store(-1)
	} else {
		p.remaining.Store(int64(count))
	}
	mu.Lock()
	if _, ok := plans[point]; !ok {
		armed.Add(1)
	}
	plans[point] = p
	mu.Unlock()
}

// Disable disarms point. Disabling an unarmed point is a no-op.
func Disable(point Point) {
	mu.Lock()
	if _, ok := plans[point]; ok {
		delete(plans, point)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point. Tests call it in cleanup.
func Reset() {
	mu.Lock()
	plans = map[Point]*plan{}
	armed.Store(0)
	mu.Unlock()
}

// Configure parses a spec of comma-separated point:mode[:count] elements and
// arms the listed points. It validates the whole spec before arming anything.
func Configure(spec string) error {
	type entry struct {
		point Point
		mode  Mode
		count int
	}
	var entries []entry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return fmt.Errorf("bad fault %q (want point:mode[:count])", part)
		}
		mode := Mode(fields[1])
		switch mode {
		case ModeError, ModeTransient, ModePanic:
		default:
			return fmt.Errorf("bad fault mode %q in %q", fields[1], part)
		}
		count := 0
		if len(fields) == 3 {
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fmt.Errorf("bad fault count %q in %q", fields[2], part)
			}
			count = n
		}
		entries = append(entries, entry{point: Point(fields[0]), mode: mode, count: count})
	}
	for _, e := range entries {
		Enable(e.point, e.mode, e.count)
	}
	return nil
}

// trigger consumes one unit of point's budget and returns the fault to
// surface, or nil when the point is unarmed or exhausted.
func trigger(point Point) *Error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	p := plans[point]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	for {
		left := p.remaining.Load()
		if left == 0 {
			return nil // budget exhausted; the point stays registered but inert
		}
		if left < 0 {
			break // unlimited
		}
		if p.remaining.CompareAndSwap(left, left-1) {
			break
		}
	}
	p.fired.Add(1)
	return &Error{Point: point, Mode: p.mode}
}

// Inject fires point at an error-capable site: it returns nil when the point
// is unarmed, the injected *Error in error/transient mode, and panics with
// the *Error in panic mode.
func Inject(point Point) error {
	e := trigger(point)
	if e == nil {
		return nil
	}
	if e.Mode == ModePanic {
		panic(e)
	}
	return e
}

// Check fires point at a site with no error channel: any armed mode surfaces
// as a panic with the injected *Error, to be converted into a structured
// failure by the engine's panic isolation.
func Check(point Point) {
	if e := trigger(point); e != nil {
		panic(e)
	}
}

// Sample fires point at a site that maps the injected mode onto its own
// behavior ladder (the server's memory governor turns transient into "above
// the soft watermark" and error into "above the hard one"): it consumes one
// unit of budget and reports the armed mode without ever panicking. The
// boolean is false when the point is unarmed or exhausted.
func Sample(point Point) (Mode, bool) {
	e := trigger(point)
	if e == nil {
		return "", false
	}
	return e.Mode, true
}

// Degraded fires point at a degradable site: it reports true (dependency
// unavailable, caller should fall back) in error/transient mode, false when
// unarmed, and panics in panic mode.
func Degraded(point Point) bool {
	e := trigger(point)
	if e == nil {
		return false
	}
	if e.Mode == ModePanic {
		panic(e)
	}
	return true
}

// Fired returns how many times point has triggered since it was last armed.
func Fired(point Point) int64 {
	mu.RLock()
	p := plans[point]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// IsInjected reports whether err (or anything it wraps) is an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsTransient reports whether err (or anything it wraps) models a retryable
// condition: either an injected transient fault or any error exposing
// Transient() bool returning true.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
