package pli

import (
	"context"
	"sync/atomic"

	"holistic/internal/bitset"
	"holistic/internal/faults"
	"holistic/internal/parallel"
	"holistic/internal/relation"
)

// Provider computes and caches PLIs for arbitrary column combinations of one
// relation. It is the "shared data structure" of the holistic algorithms
// (paper Sec. 3): a single Provider is handed from the UCC phase to the FD
// phases so that intersections computed once are reused.
//
// Lookup strategy for an uncached set X: if any PLI of X minus one column is
// cached, extend it with one column intersection; otherwise fold over X's
// columns in ascending order, caching every prefix. Random-walk neighbours
// therefore cost one intersection in the common case.
//
// The multi-column store behind Get is a pluggable Cache (see cache.go);
// NewProvider uses the bounded MapCache, NewProviderWithCache slots in any
// other policy, including the mutex-guarded SyncCache and the ShardedCache.
//
// # Validation fast path
//
// Get materialises and caches; it is the right call when the PLI itself is
// needed again (ancestors on a lattice walk, agree-set construction). The
// boolean/cardinality questions of the walks — IsUnique, CheckFD, CheckFDs,
// Cardinality, ForEachCluster — instead go through the non-materializing
// check kernels of check.go: they pick the cheapest cached ancestor of the
// probed set (fewest stored rows wins — direct subsets, distance-2 subsets,
// ascending prefixes and singles are all candidates) and fold the missing
// columns over its clusters with early exit, building no PLI at all.
// Admission control keeps validate-only probes from flooding the
// byte-budgeted cache. The FD checks admit nothing: a refuted or confirmed
// FD verdict is pure scanning. IsUnique is verdict-aware: a refuted probe is
// the walk's reuse path (DUCC ascends from it), so its survivors — already
// in hand from the fused fold that derived the verdict — are admitted as a
// stepping stone, while confirmed-unique probes, whose supersets DUCC
// prunes, are never materialised. A plan stuck at fold distance >= 2 may
// additionally promote ONE intermediate (the ancestor extended by one
// column), gated by a doorkeeper that admits on the second request, so
// one-shot probe sweeps cost zero promotions. The FastChecks /
// Materializations / SampledRefutations counters in CacheStats expose the
// split.
//
// WithSampleCheck additionally arms a deterministic stride-sample refutation
// prefilter for the boolean questions; see its doc comment for the
// soundness argument.
//
// Concurrency contract: after construction (including WithSampleCheck, which
// must be called before the Provider is shared) the Provider itself is
// immutable except for the atomic counters and the cache. Get, IsUnique,
// Cardinality, CheckFD, CheckFDs and ForEachCluster are therefore safe to
// call from multiple goroutines if and only if the configured Cache is safe
// for concurrent use (SyncCache, ShardedCache). With the plain MapCache the
// Provider is single-goroutine only. Concurrent Gets of the same uncached
// combination may duplicate an intersection — both goroutines compute and
// store the same PLI — which wastes a little work but never produces a wrong
// result, because PLIs are immutable once built. The fast paths borrow
// pooled Scratch arenas per call (see scratch.go), so they hold no shared
// mutable state across goroutines.
type Provider struct {
	rel    *relation.Relation
	single []*PLI
	empty  *PLI
	cache  Cache

	// sampleMask != 0 arms the stride-sample refutation prefilter: row r is
	// sampled iff r&sampleMask == 0 (the stride is sampleMask+1, a power of
	// two). sampledSingle holds per-column PLIs over the sampled rows only,
	// keeping original row ids so full column arrays index correctly during
	// sampled folds. Both are written only by WithSampleCheck, before the
	// Provider is shared.
	sampleMask    int32
	sampledSingle []*PLI
	sampleWanted  bool // remembers WithSampleCheck(true) so Refresh re-arms

	// admit is the promotion doorkeeper: hash-indexed reference counters over
	// candidate promotion sets. A fold-distance >= 2 plan materialises its one
	// promotion only when the candidate has been wanted before, so a one-shot
	// probe sweep (DUCC walking a lattice region it never returns to) admits
	// nothing at all, while genuinely hot ancestors are admitted on their
	// second request. Hash collisions only make admission slightly more eager,
	// never wrong.
	admit [admitSlots]atomic.Uint32

	// intersections counts column intersections performed; read it via
	// IntersectionCount. Updated with sync/atomic so a Provider shared
	// across workers stays race-free. The other three are the fast-path
	// counters surfaced through CacheStats.
	intersections      atomic.Int64
	fastChecks         atomic.Int64
	materializations   atomic.Int64
	sampledRefutations atomic.Int64
}

// DefaultCacheEntries bounds the number of cached multi-column PLIs. The
// single-column PLIs are always retained.
const DefaultCacheEntries = 4096

// admitSlots sizes the promotion doorkeeper (16 KiB of counters per
// Provider). Must be a power of two.
const admitSlots = 1 << 12

// NewProvider builds a Provider for rel with the default bounded map cache.
// maxEntries <= 0 selects DefaultCacheEntries.
func NewProvider(rel *relation.Relation, maxEntries int) *Provider {
	return NewProviderWithCache(rel, NewMapCache(maxEntries))
}

// NewProviderWithCache builds a Provider that stores multi-column PLIs in the
// given cache. cache == nil selects a default-sized MapCache.
//
// The single-column PLIs are built concurrently, one indexed slot per column
// across GOMAXPROCS workers; the result is identical to the sequential build
// because each column's PLI depends only on that column's data. Each worker
// slot owns one Scratch arena sized to the relation's maximum cardinality
// (the worker-slot ownership contract of scratch.go), so the whole build
// performs one grouping-arena allocation per worker, not one per column.
func NewProviderWithCache(rel *relation.Relation, cache Cache) *Provider {
	if cache == nil {
		cache = NewMapCache(0)
	}
	p := &Provider{
		rel:    rel,
		single: make([]*PLI, rel.NumColumns()),
		empty:  FromAllRows(rel.NumRows()),
		cache:  cache,
	}
	maxCard := rel.MaxCardinality()
	scratches := make([]*Scratch, parallel.Workers(0))
	parallel.ForWorker(context.Background(), parallel.Workers(0), rel.NumColumns(), func(w, c int) {
		s := scratches[w]
		if s == nil {
			s = NewScratch()
			s.Ensure(maxCard)
			scratches[w] = s
		}
		p.single[c] = FromColumnScratch(rel.Column(c), rel.Cardinality(c), s)
	})
	return p
}

// NewConcurrentProvider builds a Provider backed by a ShardedCache, safe for
// use from up to `workers` concurrent goroutines (workers <= 0 selects
// GOMAXPROCS). maxEntries bounds the total cached multi-column PLIs
// (<= 0 selects DefaultCacheEntries).
func NewConcurrentProvider(rel *relation.Relation, maxEntries, workers int) *Provider {
	return NewProviderWithCache(rel, NewShardedCache(parallel.Workers(workers), maxEntries))
}

// Relation returns the underlying relation.
func (p *Provider) Relation() *relation.Relation { return p.rel }

// SingleColumn returns the cached PLI of one column.
func (p *Provider) SingleColumn(c int) *PLI { return p.single[c] }

// Get returns the PLI of the column combination s, computing and caching it
// if necessary.
func (p *Provider) Get(s bitset.Set) *PLI {
	switch s.Len() {
	case 0:
		return p.empty
	case 1:
		return p.single[s.First()]
	}
	if pli, ok := p.cacheGet(s); ok {
		return pli
	}
	// Fast path: extend a cached direct subset by one column.
	for c := s.First(); c >= 0; c = s.NextAfter(c) {
		sub := s.Without(c)
		if base, ok := p.lookup(sub); ok {
			pli := p.intersectColumn(base, c)
			p.cachePut(s, pli)
			return pli
		}
	}
	// Slow path: fold over ascending columns, caching prefixes.
	cols := s.Columns()
	prefix := bitset.Single(cols[0])
	pli := p.single[cols[0]]
	for _, c := range cols[1:] {
		prefix = prefix.With(c)
		if cached, ok := p.lookup(prefix); ok {
			pli = cached
			continue
		}
		pli = p.intersectColumn(pli, c)
		p.cachePut(prefix, pli)
	}
	return pli
}

// intersectColumn performs one counted column intersection. The armed
// faults.PLIIntersect point panics here (Get has no error channel); the
// engine's panic isolation converts it into a failed job. The grouping
// scratch comes from the package pool (Get is called from arbitrary
// goroutines, so no worker slot is available here; see scratch.go).
func (p *Provider) intersectColumn(base *PLI, c int) *PLI {
	faults.Check(faults.PLIIntersect)
	out := base.IntersectColumn(p.rel.Column(c), p.rel.Cardinality(c))
	p.intersections.Add(1)
	return out
}

// cacheGet probes the multi-column cache. Under an armed faults.CacheGet
// point the cache degrades to "always miss": the Provider recomputes the
// PLI, slower but correct.
func (p *Provider) cacheGet(s bitset.Set) (*PLI, bool) {
	if faults.Degraded(faults.CacheGet) {
		return nil, false
	}
	return p.cache.Get(s)
}

// cachePut stores into the multi-column cache. Under an armed
// faults.CachePut point the store is dropped: later probes recompute.
func (p *Provider) cachePut(s bitset.Set, pli *PLI) {
	if faults.Degraded(faults.CachePut) {
		return
	}
	p.cache.Put(s, pli)
}

// IntersectionCount returns the number of column intersections performed so
// far. It is safe to call concurrently with Get.
func (p *Provider) IntersectionCount() int64 { return p.intersections.Load() }

func (p *Provider) lookup(s bitset.Set) (*PLI, bool) {
	switch s.Len() {
	case 0:
		return p.empty, true
	case 1:
		return p.single[s.First()], true
	}
	return p.cacheGet(s)
}

// CachedEntries returns the number of multi-column PLIs currently cached.
func (p *Provider) CachedEntries() int { return p.cache.Len() }

// CacheStats snapshots the cache behaviour of this Provider: probe hits and
// misses, evictions, the current entry count, the intersections performed,
// and the fast-path counters (FastChecks, Materializations,
// SampledRefutations). The snapshot is what the engine reports to its
// Observer.
func (p *Provider) CacheStats() CacheStats {
	hits, misses, evictions := p.cache.Counters()
	return CacheStats{
		Hits:               hits,
		Misses:             misses,
		Evictions:          evictions,
		Entries:            p.cache.Len(),
		Bytes:              p.cache.Bytes(),
		Intersections:      p.intersections.Load(),
		FastChecks:         p.fastChecks.Load(),
		Materializations:   p.materializations.Load(),
		SampledRefutations: p.sampledRefutations.Load(),
	}
}

// sampleTargetRows is the sample size the stride selection aims for, and
// sampleMinStride the smallest stride worth prefiltering with: below it the
// sample approaches the full relation and the prefilter would roughly double
// the cost of every check it fails to refute.
const (
	sampleTargetRows = 1024
	sampleMinStride  = 8
)

// WithSampleCheck arms (or disarms) the sampled refutation prefilter and
// returns the Provider for chaining. It must be called before the Provider
// is shared across goroutines.
//
// The prefilter runs the boolean questions (IsUnique, CheckFD, CheckFDs)
// against a deterministic stride sample first — every stride-th row, stride
// a power of two chosen so the sample holds roughly sampleTargetRows rows —
// and falls through to the exact check only when the sample finds no
// counterexample. Soundness: a sampled answer is only ever trusted when it
// is NEGATIVE. Two sampled rows agreeing on every column of X are two real
// rows of the relation agreeing on X, so X is certainly not unique; two
// sampled rows agreeing on X but differing in A certainly violate X → A. A
// positive sample answer proves nothing (the counterexample may be
// unsampled) and always triggers the exact check, so discovered metadata is
// identical with and without sampling. Relations whose row count would force
// a stride below sampleMinStride leave the prefilter disarmed.
func (p *Provider) WithSampleCheck(on bool) *Provider {
	p.sampleWanted = on
	if !on {
		p.sampleMask = 0
		p.sampledSingle = nil
		return p
	}
	stride := 1
	for p.rel.NumRows()/(stride*2) >= sampleTargetRows {
		stride *= 2
	}
	if stride < sampleMinStride {
		return p
	}
	p.enableSampling(stride)
	return p
}

// enableSampling builds the per-column sampled PLIs for the given power-of-
// two stride. Split out of WithSampleCheck so tests can force sampling on
// relations too small for the production stride selection.
func (p *Provider) enableSampling(stride int) {
	p.sampleMask = int32(stride - 1)
	p.sampledSingle = make([]*PLI, p.rel.NumColumns())
	s := NewScratch()
	s.Ensure(p.rel.MaxCardinality())
	for c := range p.sampledSingle {
		p.sampledSingle[c] = fromColumnSampled(p.rel.Column(c), p.rel.Cardinality(c), stride, s)
	}
}

// fromColumnSampled builds the PLI of every stride-th row of a column,
// keeping original row ids (so full column arrays index correctly when the
// sampled PLI serves as a fold base). Singleton clusters are stripped as
// usual.
func fromColumnSampled(col []int32, cardinality, stride int, s *Scratch) *PLI {
	s.ensure(cardinality)
	counts := s.counts[:cardinality]
	for r := 0; r < len(col); r += stride {
		counts[col[r]]++
	}
	nClusters, nStored := 0, 0
	for _, c := range counts {
		if c >= 2 {
			nClusters++
			nStored += int(c)
		}
	}
	p := &PLI{nRows: len(col)}
	if nClusters > 0 {
		p.rows = make([]int32, nStored)
		p.offsets = make([]int32, nClusters+1)
		starts := s.starts[:cardinality]
		cursor := int32(0)
		ci := 1
		for code, c := range counts {
			if c >= 2 {
				starts[code] = cursor
				cursor += c
				p.offsets[ci] = cursor
				ci++
			} else {
				starts[code] = -1
			}
		}
		for r := 0; r < len(col); r += stride {
			if st := starts[col[r]]; st >= 0 {
				p.rows[st] = int32(r)
				starts[col[r]]++
			}
		}
	}
	clear(counts) // restore the all-zero Scratch invariant
	return p
}

// samplePlan picks the cheapest sampled single-column PLI of set as the
// prefilter fold base (fewest stored rows wins) and fills the scratch key
// slots with the remaining columns. A nil base means sampling is disarmed
// or set is empty.
func (p *Provider) samplePlan(set bitset.Set, sc *Scratch) (*PLI, [][]int32, []int) {
	if p.sampleMask == 0 {
		return nil, nil, nil
	}
	best := -1
	for c := set.First(); c >= 0; c = set.NextAfter(c) {
		if best < 0 || len(p.sampledSingle[c].rows) < len(p.sampledSingle[best].rows) {
			best = c
		}
	}
	if best < 0 {
		return nil, nil, nil
	}
	keys, cards := sc.keySlots(set.Len() - 1)
	i := 0
	for c := set.First(); c >= 0; c = set.NextAfter(c) {
		if c == best {
			continue
		}
		keys[i] = p.rel.Column(c)
		cards[i] = p.rel.Cardinality(c)
		i++
	}
	return p.sampledSingle[best], keys, cards
}

// plan resolves the cheapest way to answer a question about set: the cached
// PLI itself (fold empty), or the best cached ancestor plus the columns to
// fold over its clusters. Candidates are the cached direct subsets (fold
// distance 1), every cached ascending prefix, and the cheapest single
// column; among them the lowest (stored rows + 1) * fold-distance score
// wins — fewest non-singleton rows to scan, fewest fold steps.
//
// Admission control: when the winner sits at fold distance >= 2, plan
// considers exactly ONE promotion — the winner extended by its first fold
// column — and materialises it only when the doorkeeper has already seen a
// request for that candidate (admit-on-second-request, TinyLFU style). A
// validate-only probe therefore admits at most one intermediate PLI per
// check and usually none, so DUCC's random probes cannot flood the
// byte-budgeted cache with slow-path prefixes the way Get's
// cache-every-prefix policy would, and a one-shot sweep of a lattice region
// materialises nothing at all; sustained probing of a region still promotes
// its ancestor frontier until checks there are distance-1 folds.
func (p *Provider) plan(set bitset.Set, sc *Scratch) (*PLI, []int) {
	if pli, ok := p.lookup(set); ok {
		return pli, nil
	}
	// Cached direct subsets: fold distance 1, no admission needed.
	var base *PLI
	var baseSet bitset.Set
	bestCol := -1
	for c := set.First(); c >= 0; c = set.NextAfter(c) {
		sub := set.Without(c)
		if q, ok := p.lookup(sub); ok && (base == nil || len(q.rows) < len(base.rows)) {
			base, baseSet, bestCol = q, sub, c
		}
	}
	if base != nil {
		return base, append(sc.foldColSlots(1), bestCol)
	}
	// Cached distance-2 subsets (including the single columns when the set
	// has exactly three): a two-column fold is still cheap enough that no
	// admission is worth it. This scan is what makes the stepping stones of
	// the verdict-aware admission (see IsUnique) reachable — they sit at
	// arbitrary subsets, not on the ascending-prefix chains the fallback
	// below probes.
	var bestCol2 int
	for c := set.First(); c >= 0; c = set.NextAfter(c) {
		for c2 := set.NextAfter(c); c2 >= 0; c2 = set.NextAfter(c2) {
			sub := set.Without(c).Without(c2)
			if q, ok := p.lookup(sub); ok && (base == nil || len(q.rows) < len(base.rows)) {
				base, baseSet = q, sub
				bestCol, bestCol2 = c, c2
			}
		}
	}
	if base != nil {
		return base, append(sc.foldColSlots(2), bestCol, bestCol2)
	}
	// No subset within distance 2 cached (set has >= 4 columns): best
	// ascending cached prefix vs cheapest single column, scored by
	// rows-to-scan x fold-steps.
	first := set.First()
	prefix := bitset.Single(first)
	prefixPLI := p.single[first]
	prefixSet := prefix
	covered, idx := 1, 1
	for c := set.NextAfter(first); c >= 0; c = set.NextAfter(c) {
		idx++
		if idx == set.Len() {
			break // the full set itself — known uncached
		}
		prefix = prefix.With(c)
		if q, ok := p.cacheGet(prefix); ok {
			prefixPLI, prefixSet, covered = q, prefix, idx
		}
	}
	single := first
	for c := set.NextAfter(first); c >= 0; c = set.NextAfter(c) {
		if len(p.single[c].rows) < len(p.single[single].rows) {
			single = c
		}
	}
	base, baseSet = prefixPLI, prefixSet
	score := (int64(len(prefixPLI.rows)) + 1) * int64(set.Len()-covered)
	if s := (int64(len(p.single[single].rows)) + 1) * int64(set.Len()-1); s < score {
		base, baseSet = p.single[single], bitset.Single(single)
	}
	fold := sc.foldColSlots(set.Len())
	for c := set.First(); c >= 0; c = set.NextAfter(c) {
		if !baseSet.Has(c) {
			fold = append(fold, c)
		}
	}
	if len(fold) >= 2 {
		cand := baseSet.With(fold[0])
		if p.admit[cand.Hash()&(admitSlots-1)].Add(1) >= 2 {
			promoted := p.intersectColumn(base, fold[0])
			p.cachePut(cand, promoted)
			p.materializations.Add(1)
			base = promoted
			fold = fold[1:]
		}
	}
	return base, fold
}

// foldKeys fills the scratch key slots with the column data and
// cardinalities of a fold plan. It is called exactly once per executed fold
// kernel, so the armed faults.PLIIntersect point fires here too: a fold is
// the fast path's intersection traversal, and injected PLI failures must
// surface on it just as they do on materializing intersections.
func (p *Provider) foldKeys(fold []int, sc *Scratch) ([][]int32, []int) {
	faults.Check(faults.PLIIntersect)
	keys, cards := sc.keySlots(len(fold))
	for i, c := range fold {
		keys[i] = p.rel.Column(c)
		cards[i] = p.rel.Cardinality(c)
	}
	return keys, cards
}

// IsUnique reports whether s is a unique column combination, answered on
// the validation fast path: cached verdict if s itself is cached, sampled
// refutation when the plan is long (if armed), otherwise one combined
// foldPLI pass over the cheapest cached ancestor.
//
// Unlike the boolean FD checks, a uniqueness verdict cannot early-exit on
// confirmation — proving "no duplicate survives" needs the whole base — so
// the fused fold derives the verdict and the materialisation from the same
// pass: for a unique verdict nothing survives, no placement work happens
// and the result is discarded (a unique s is a dead end — DUCC prunes every
// superset, so its empty PLI would never be consulted again); for a refuted
// verdict the survivors ARE the stepping stone the walk ascends from next,
// admitted at zero extra scan cost. Verdict-aware admission is what keeps
// DUCC probes from flooding the byte-budgeted cache: only refuted probes —
// the reuse path — are admitted, roughly a third of the entries the
// materializing path would insert, while confirmations cost no admission at
// all.
func (p *Provider) IsUnique(s bitset.Set) bool {
	if s.IsEmpty() {
		return p.rel.NumRows() <= 1
	}
	p.fastChecks.Add(1)
	sc := getScratch()
	defer putScratch(sc)
	base, fold := p.plan(s, sc)
	if len(fold) == 0 {
		return base.IsUnique()
	}
	// The sampled prefilter earns its scan only when the alternative is an
	// expensive multi-column fold over a far base; at fold distance one the
	// exact fold over the (usually small) cached ancestor is already about
	// as cheap as the sample itself.
	if len(fold) >= 2 && s.Len() >= 2 {
		if sb, skeys, scards := p.samplePlan(s, sc); sb != nil && !sb.CheckUnique(skeys, scards, sc) {
			p.sampledRefutations.Add(1)
			return false
		}
	}
	keys, cards := p.foldKeys(fold, sc)
	out := base.foldPLI(keys, cards, sc)
	if out.IsUnique() {
		return true
	}
	p.cachePut(s, out)
	p.materializations.Add(1)
	return false
}

// Cardinality returns the distinct count |s|_r, computed with the
// non-materializing CheckErrorSum fold when s is uncached. Sampling is never
// consulted here: a count, unlike a refutation, cannot be extrapolated from
// a sample.
func (p *Provider) Cardinality(s bitset.Set) int {
	p.fastChecks.Add(1)
	sc := getScratch()
	defer putScratch(sc)
	base, fold := p.plan(s, sc)
	if len(fold) == 0 {
		return base.DistinctCount()
	}
	keys, cards := p.foldKeys(fold, sc)
	return base.NumRows() - base.CheckErrorSum(keys, cards, sc)
}

// CheckFD reports whether the FD lhs → rhs holds on the relation, on the
// validation fast path (sampled refutation, then an early-exit CheckRefines
// fold; lhs's PLI is never materialised).
func (p *Provider) CheckFD(lhs bitset.Set, rhs int) bool {
	if lhs.Has(rhs) {
		return true // trivial FD
	}
	p.fastChecks.Add(1)
	col := p.rel.Column(rhs)
	sc := getScratch()
	defer putScratch(sc)
	if !lhs.IsEmpty() {
		if sb, keys, cards := p.samplePlan(lhs, sc); sb != nil && !sb.CheckRefines(col, keys, cards, sc) {
			p.sampledRefutations.Add(1)
			return false
		}
	}
	base, fold := p.plan(lhs, sc)
	if len(fold) == 0 {
		return base.Refines(col)
	}
	keys, cards := p.foldKeys(fold, sc)
	return base.CheckRefines(col, keys, cards, sc)
}

// CheckFDs validates lhs → A for every A ∈ rhs in one batched fold
// (CheckRefinesMany) and returns the set of right-hand sides that hold.
// Columns of lhs itself are trivially determined and echoed back. The
// candidate column slots and verdict buffer come from the pooled Scratch,
// so TANE's per-level sweep allocates nothing per call; if sampling is
// armed, candidates refuted on the sample are excluded from the exact fold.
func (p *Provider) CheckFDs(lhs bitset.Set, rhs bitset.Set) bitset.Set {
	valid := rhs.Intersect(lhs) // trivial FDs
	todo := rhs.Diff(lhs)
	if todo.IsEmpty() {
		return valid
	}
	sc := getScratch()
	defer putScratch(sc)
	n := todo.Len()
	p.fastChecks.Add(int64(n))
	data, ok := sc.rhsSlots(n)
	i := 0
	for c := todo.First(); c >= 0; c = todo.NextAfter(c) {
		data[i] = p.rel.Column(c)
		i++
	}
	remaining := n
	if !lhs.IsEmpty() {
		if sb, keys, cards := p.samplePlan(lhs, sc); sb != nil {
			sb.CheckRefinesMany(data, keys, cards, ok, sc)
			for i := range data {
				if data[i] != nil && !ok[i] {
					data[i] = nil // sampled counterexample: certainly invalid
					p.sampledRefutations.Add(1)
					remaining--
				}
			}
		}
	}
	if remaining > 0 {
		base, fold := p.plan(lhs, sc)
		keys, cards := p.foldKeys(fold, sc)
		base.CheckRefinesMany(data, keys, cards, ok, sc)
	} else {
		for i := range ok {
			ok[i] = false
		}
	}
	i = 0
	for c := todo.First(); c >= 0; c = todo.NextAfter(c) {
		if ok[i] {
			valid = valid.With(c)
		}
		i++
	}
	return valid
}

// ForEachCluster streams the stripped clusters of s's PLI to fn without
// materialising or caching the PLI when it is uncached: the groups are
// folded from the cheapest cached ancestor in the same order as the
// materialised PLI's clusters. fn returning false stops the enumeration;
// the cluster slice is only valid during the callback. It backs
// order-insensitive aggregations such as the g3 approximate-FD error.
func (p *Provider) ForEachCluster(s bitset.Set, fn func(cluster []int32) bool) {
	p.fastChecks.Add(1)
	sc := getScratch()
	defer putScratch(sc)
	base, fold := p.plan(s, sc)
	if len(fold) == 0 {
		for i, n := 0, base.NumClusters(); i < n; i++ {
			if !fn(base.Cluster(i)) {
				return
			}
		}
		return
	}
	keys, cards := p.foldKeys(fold, sc)
	base.ForEachFoldedGroup(keys, cards, sc, fn)
}
