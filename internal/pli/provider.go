package pli

import (
	"context"
	"sync/atomic"

	"holistic/internal/bitset"
	"holistic/internal/faults"
	"holistic/internal/parallel"
	"holistic/internal/relation"
)

// Provider computes and caches PLIs for arbitrary column combinations of one
// relation. It is the "shared data structure" of the holistic algorithms
// (paper Sec. 3): a single Provider is handed from the UCC phase to the FD
// phases so that intersections computed once are reused.
//
// Lookup strategy for an uncached set X: if any PLI of X minus one column is
// cached, extend it with one column intersection; otherwise fold over X's
// columns in ascending order, caching every prefix. Random-walk neighbours
// therefore cost one intersection in the common case.
//
// The multi-column store behind Get is a pluggable Cache (see cache.go);
// NewProvider uses the bounded MapCache, NewProviderWithCache slots in any
// other policy, including the mutex-guarded SyncCache and the ShardedCache.
//
// Concurrency contract: after construction the Provider itself is immutable
// except for the intersection counter (updated atomically) and the cache.
// Get, IsUnique, Cardinality, CheckFD and CheckFDs are therefore safe to call
// from multiple goroutines if and only if the configured Cache is safe for
// concurrent use (SyncCache, ShardedCache). With the plain MapCache the
// Provider is single-goroutine only. Concurrent Gets of the same uncached
// combination may duplicate an intersection — both goroutines compute and
// store the same PLI — which wastes a little work but never produces a wrong
// result, because PLIs are immutable once built.
type Provider struct {
	rel    *relation.Relation
	single []*PLI
	empty  *PLI
	cache  Cache

	// intersections counts column intersections performed; read it via
	// IntersectionCount. Updated with sync/atomic so a Provider shared
	// across workers stays race-free.
	intersections atomic.Int64
}

// DefaultCacheEntries bounds the number of cached multi-column PLIs. The
// single-column PLIs are always retained.
const DefaultCacheEntries = 4096

// NewProvider builds a Provider for rel with the default bounded map cache.
// maxEntries <= 0 selects DefaultCacheEntries.
func NewProvider(rel *relation.Relation, maxEntries int) *Provider {
	return NewProviderWithCache(rel, NewMapCache(maxEntries))
}

// NewProviderWithCache builds a Provider that stores multi-column PLIs in the
// given cache. cache == nil selects a default-sized MapCache.
//
// The single-column PLIs are built concurrently, one indexed slot per column
// across GOMAXPROCS workers; the result is identical to the sequential build
// because each column's PLI depends only on that column's data. Each worker
// slot owns one Scratch arena sized to the relation's maximum cardinality
// (the worker-slot ownership contract of scratch.go), so the whole build
// performs one grouping-arena allocation per worker, not one per column.
func NewProviderWithCache(rel *relation.Relation, cache Cache) *Provider {
	if cache == nil {
		cache = NewMapCache(0)
	}
	p := &Provider{
		rel:    rel,
		single: make([]*PLI, rel.NumColumns()),
		empty:  FromAllRows(rel.NumRows()),
		cache:  cache,
	}
	maxCard := rel.MaxCardinality()
	scratches := make([]*Scratch, parallel.Workers(0))
	parallel.ForWorker(context.Background(), parallel.Workers(0), rel.NumColumns(), func(w, c int) {
		s := scratches[w]
		if s == nil {
			s = NewScratch()
			s.Ensure(maxCard)
			scratches[w] = s
		}
		p.single[c] = FromColumnScratch(rel.Column(c), rel.Cardinality(c), s)
	})
	return p
}

// NewConcurrentProvider builds a Provider backed by a ShardedCache, safe for
// use from up to `workers` concurrent goroutines (workers <= 0 selects
// GOMAXPROCS). maxEntries bounds the total cached multi-column PLIs
// (<= 0 selects DefaultCacheEntries).
func NewConcurrentProvider(rel *relation.Relation, maxEntries, workers int) *Provider {
	return NewProviderWithCache(rel, NewShardedCache(parallel.Workers(workers), maxEntries))
}

// Relation returns the underlying relation.
func (p *Provider) Relation() *relation.Relation { return p.rel }

// SingleColumn returns the cached PLI of one column.
func (p *Provider) SingleColumn(c int) *PLI { return p.single[c] }

// Get returns the PLI of the column combination s, computing and caching it
// if necessary.
func (p *Provider) Get(s bitset.Set) *PLI {
	switch s.Len() {
	case 0:
		return p.empty
	case 1:
		return p.single[s.First()]
	}
	if pli, ok := p.cacheGet(s); ok {
		return pli
	}
	// Fast path: extend a cached direct subset by one column.
	for c := s.First(); c >= 0; c = s.NextAfter(c) {
		sub := s.Without(c)
		if base, ok := p.lookup(sub); ok {
			pli := p.intersectColumn(base, c)
			p.cachePut(s, pli)
			return pli
		}
	}
	// Slow path: fold over ascending columns, caching prefixes.
	cols := s.Columns()
	prefix := bitset.Single(cols[0])
	pli := p.single[cols[0]]
	for _, c := range cols[1:] {
		prefix = prefix.With(c)
		if cached, ok := p.lookup(prefix); ok {
			pli = cached
			continue
		}
		pli = p.intersectColumn(pli, c)
		p.cachePut(prefix, pli)
	}
	return pli
}

// intersectColumn performs one counted column intersection. The armed
// faults.PLIIntersect point panics here (Get has no error channel); the
// engine's panic isolation converts it into a failed job. The grouping
// scratch comes from the package pool (Get is called from arbitrary
// goroutines, so no worker slot is available here; see scratch.go).
func (p *Provider) intersectColumn(base *PLI, c int) *PLI {
	faults.Check(faults.PLIIntersect)
	out := base.IntersectColumn(p.rel.Column(c), p.rel.Cardinality(c))
	p.intersections.Add(1)
	return out
}

// cacheGet probes the multi-column cache. Under an armed faults.CacheGet
// point the cache degrades to "always miss": the Provider recomputes the
// PLI, slower but correct.
func (p *Provider) cacheGet(s bitset.Set) (*PLI, bool) {
	if faults.Degraded(faults.CacheGet) {
		return nil, false
	}
	return p.cache.Get(s)
}

// cachePut stores into the multi-column cache. Under an armed
// faults.CachePut point the store is dropped: later probes recompute.
func (p *Provider) cachePut(s bitset.Set, pli *PLI) {
	if faults.Degraded(faults.CachePut) {
		return
	}
	p.cache.Put(s, pli)
}

// IntersectionCount returns the number of column intersections performed so
// far. It is safe to call concurrently with Get.
func (p *Provider) IntersectionCount() int64 { return p.intersections.Load() }

func (p *Provider) lookup(s bitset.Set) (*PLI, bool) {
	switch s.Len() {
	case 0:
		return p.empty, true
	case 1:
		return p.single[s.First()], true
	}
	return p.cacheGet(s)
}

// CachedEntries returns the number of multi-column PLIs currently cached.
func (p *Provider) CachedEntries() int { return p.cache.Len() }

// CacheStats snapshots the cache behaviour of this Provider: probe hits and
// misses, evictions, the current entry count, and the intersections
// performed. The snapshot is what the engine reports to its Observer.
func (p *Provider) CacheStats() CacheStats {
	hits, misses, evictions := p.cache.Counters()
	return CacheStats{
		Hits:          hits,
		Misses:        misses,
		Evictions:     evictions,
		Entries:       p.cache.Len(),
		Bytes:         p.cache.Bytes(),
		Intersections: p.intersections.Load(),
	}
}

// IsUnique reports whether s is a unique column combination.
func (p *Provider) IsUnique(s bitset.Set) bool {
	if s.IsEmpty() {
		return p.rel.NumRows() <= 1
	}
	return p.Get(s).IsUnique()
}

// Cardinality returns the distinct count |s|_r.
func (p *Provider) Cardinality(s bitset.Set) int {
	return p.Get(s).DistinctCount()
}

// CheckFD reports whether the FD lhs → rhs holds on the relation.
func (p *Provider) CheckFD(lhs bitset.Set, rhs int) bool {
	if lhs.Has(rhs) {
		return true // trivial FD
	}
	return p.Get(lhs).Refines(p.rel.Column(rhs))
}

// CheckFDs validates lhs → A for every A ∈ rhs in one pass over lhs's PLI
// and returns the set of right-hand sides that hold. Columns of lhs itself
// are trivially determined and echoed back.
func (p *Provider) CheckFDs(lhs bitset.Set, rhs bitset.Set) bitset.Set {
	valid := rhs.Intersect(lhs) // trivial FDs
	todo := rhs.Diff(lhs)
	if todo.IsEmpty() {
		return valid
	}
	cols := todo.Columns()
	colData := make([][]int32, len(cols))
	for i, c := range cols {
		colData[i] = p.rel.Column(c)
	}
	ok := p.Get(lhs).RefinesEach(colData)
	for i, c := range cols {
		if ok[i] {
			valid = valid.With(c)
		}
	}
	return valid
}
