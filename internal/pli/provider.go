package pli

import (
	"holistic/internal/bitset"
	"holistic/internal/relation"
)

// Provider computes and caches PLIs for arbitrary column combinations of one
// relation. It is the "shared data structure" of the holistic algorithms
// (paper Sec. 3): a single Provider is handed from the UCC phase to the FD
// phases so that intersections computed once are reused.
//
// Lookup strategy for an uncached set X: if any PLI of X minus one column is
// cached, extend it with one column intersection; otherwise fold over X's
// columns in ascending order, caching every prefix. Random-walk neighbours
// therefore cost one intersection in the common case.
type Provider struct {
	rel    *relation.Relation
	single []*PLI
	empty  *PLI
	cache  map[bitset.Set]*PLI

	maxEntries int

	// Intersections counts column intersections performed; exposed for the
	// evaluation harness and tests.
	Intersections int64
}

// DefaultCacheEntries bounds the number of cached multi-column PLIs. The
// single-column PLIs are always retained.
const DefaultCacheEntries = 4096

// NewProvider builds a Provider for rel. maxEntries <= 0 selects
// DefaultCacheEntries.
func NewProvider(rel *relation.Relation, maxEntries int) *Provider {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	p := &Provider{
		rel:        rel,
		single:     make([]*PLI, rel.NumColumns()),
		empty:      FromAllRows(rel.NumRows()),
		cache:      make(map[bitset.Set]*PLI),
		maxEntries: maxEntries,
	}
	for c := 0; c < rel.NumColumns(); c++ {
		p.single[c] = FromColumn(rel.Column(c), rel.Cardinality(c))
	}
	return p
}

// Relation returns the underlying relation.
func (p *Provider) Relation() *relation.Relation { return p.rel }

// SingleColumn returns the cached PLI of one column.
func (p *Provider) SingleColumn(c int) *PLI { return p.single[c] }

// Get returns the PLI of the column combination s, computing and caching it
// if necessary.
func (p *Provider) Get(s bitset.Set) *PLI {
	switch s.Len() {
	case 0:
		return p.empty
	case 1:
		return p.single[s.First()]
	}
	if pli, ok := p.cache[s]; ok {
		return pli
	}
	// Fast path: extend a cached direct subset by one column.
	for c := s.First(); c >= 0; c = s.NextAfter(c) {
		sub := s.Without(c)
		if base, ok := p.lookup(sub); ok {
			pli := base.IntersectColumn(p.rel.Column(c))
			p.Intersections++
			p.put(s, pli)
			return pli
		}
	}
	// Slow path: fold over ascending columns, caching prefixes.
	cols := s.Columns()
	prefix := bitset.Single(cols[0])
	pli := p.single[cols[0]]
	for _, c := range cols[1:] {
		prefix = prefix.With(c)
		if cached, ok := p.lookup(prefix); ok {
			pli = cached
			continue
		}
		pli = pli.IntersectColumn(p.rel.Column(c))
		p.Intersections++
		p.put(prefix, pli)
	}
	return pli
}

func (p *Provider) lookup(s bitset.Set) (*PLI, bool) {
	switch s.Len() {
	case 0:
		return p.empty, true
	case 1:
		return p.single[s.First()], true
	}
	pli, ok := p.cache[s]
	return pli, ok
}

func (p *Provider) put(s bitset.Set, pli *PLI) {
	if len(p.cache) >= p.maxEntries {
		// Evict roughly half the entries. Map iteration order is effectively
		// random, which serves as a cheap random-replacement policy; the
		// single-column PLIs live outside the cache and are never evicted.
		drop := len(p.cache) / 2
		for k := range p.cache {
			if drop == 0 {
				break
			}
			delete(p.cache, k)
			drop--
		}
	}
	p.cache[s] = pli
}

// CachedEntries returns the number of multi-column PLIs currently cached.
func (p *Provider) CachedEntries() int { return len(p.cache) }

// IsUnique reports whether s is a unique column combination.
func (p *Provider) IsUnique(s bitset.Set) bool {
	if s.IsEmpty() {
		return p.rel.NumRows() <= 1
	}
	return p.Get(s).IsUnique()
}

// Cardinality returns the distinct count |s|_r.
func (p *Provider) Cardinality(s bitset.Set) int {
	return p.Get(s).DistinctCount()
}

// CheckFD reports whether the FD lhs → rhs holds on the relation.
func (p *Provider) CheckFD(lhs bitset.Set, rhs int) bool {
	if lhs.Has(rhs) {
		return true // trivial FD
	}
	return p.Get(lhs).Refines(p.rel.Column(rhs))
}

// CheckFDs validates lhs → A for every A ∈ rhs in one pass over lhs's PLI
// and returns the set of right-hand sides that hold. Columns of lhs itself
// are trivially determined and echoed back.
func (p *Provider) CheckFDs(lhs bitset.Set, rhs bitset.Set) bitset.Set {
	valid := rhs.Intersect(lhs) // trivial FDs
	todo := rhs.Diff(lhs)
	if todo.IsEmpty() {
		return valid
	}
	cols := todo.Columns()
	colData := make([][]int32, len(cols))
	for i, c := range cols {
		colData[i] = p.rel.Column(c)
	}
	ok := p.Get(lhs).RefinesEach(colData)
	for i, c := range cols {
		if ok[i] {
			valid = valid.With(c)
		}
	}
	return valid
}
