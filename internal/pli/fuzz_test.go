package pli

import (
	"reflect"
	"sort"
	"testing"
)

// fuzzRelation decodes a fuzz payload into a small dictionary-encoded
// relation: byte 0 picks the column count (1..4), byte 1 the cardinality
// (1..8), and the remaining bytes fill the columns row-major. Every payload
// decodes to something valid, so the fuzzer never wastes executions.
func fuzzRelation(data []byte) (cols [][]int32, card int) {
	if len(data) < 2 {
		data = append(data, 0, 0)
	}
	nCols := 1 + int(data[0])%4
	card = 1 + int(data[1])%8
	body := data[2:]
	nRows := len(body) / nCols
	if nRows > 256 {
		nRows = 256
	}
	cols = make([][]int32, nCols)
	for c := range cols {
		col := make([]int32, nRows)
		for r := range col {
			col[r] = int32(body[r*nCols+c]) % int32(card)
		}
		cols[c] = col
	}
	return cols, card
}

// canonRef converts a reference PLI into the canonical form shared with
// canon (sorted clusters of sorted rows).
func canonRef(p *ReferencePLI) [][]int32 {
	if len(p.clusters) == 0 {
		return nil
	}
	out := make([][]int32, 0, len(p.clusters))
	for _, c := range p.clusters {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// FuzzPLIEquivalence differentially fuzzes the flat PLI against the
// reference oracle: FromColumn, Intersect (both operand orders),
// IntersectColumn, Refines, RefinesEach, ErrorSum and DistinctCount must
// agree on arbitrary relations. This is the safety net under the layout
// refactor — any grouping, probe-caching or scratch-reset bug surfaces as a
// divergence from the pre-flat implementation.
func FuzzPLIEquivalence(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1, 1, 0, 2, 2, 0, 1, 1, 0})
	f.Add([]byte{0, 0})
	f.Add([]byte{3, 1, 9, 9, 9, 9, 9, 9})       // cardinality 1: one big cluster
	f.Add([]byte{1, 7, 0, 1, 2, 3, 4, 5, 6, 0}) // near-unique column
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, card := fuzzRelation(data)

		flat := make([]*PLI, len(cols))
		ref := make([]*ReferencePLI, len(cols))
		for c := range cols {
			flat[c] = FromColumn(cols[c], card)
			ref[c] = RefFromColumn(cols[c], card)
			if !reflect.DeepEqual(canon(flat[c]), canonRef(ref[c])) {
				t.Fatalf("FromColumn(col %d) diverges: flat %v, ref %v", c, canon(flat[c]), canonRef(ref[c]))
			}
			if flat[c].ErrorSum() != ref[c].ErrorSum() || flat[c].DistinctCount() != ref[c].DistinctCount() {
				t.Fatalf("col %d: ErrorSum/DistinctCount diverge (%d/%d vs %d/%d)",
					c, flat[c].ErrorSum(), flat[c].DistinctCount(), ref[c].ErrorSum(), ref[c].DistinctCount())
			}
		}

		for a := range cols {
			for b := range cols {
				fi := flat[a].Intersect(flat[b])
				ri := ref[a].Intersect(ref[b])
				if !reflect.DeepEqual(canon(fi), canonRef(ri)) {
					t.Fatalf("Intersect(%d,%d) diverges: flat %v, ref %v", a, b, canon(fi), canonRef(ri))
				}
				fc := flat[a].IntersectColumn(cols[b], card)
				rc := ref[a].IntersectColumn(cols[b])
				if !reflect.DeepEqual(canon(fc), canonRef(rc)) {
					t.Fatalf("IntersectColumn(%d,%d) diverges: flat %v, ref %v", a, b, canon(fc), canonRef(rc))
				}
				if flat[a].Refines(cols[b]) != ref[a].Refines(cols[b]) {
					t.Fatalf("Refines(%d,%d) diverges", a, b)
				}
			}
			// RefinesEach across all columns, with one slot nil-skipped.
			cands := make([][]int32, len(cols))
			copy(cands, cols)
			cands[len(cands)-1] = nil
			if got, want := flat[a].RefinesEach(cands), ref[a].RefinesEach(cands); !reflect.DeepEqual(got, want) {
				t.Fatalf("RefinesEach(%d) diverges: flat %v, ref %v", a, got, want)
			}
		}
	})
}
