package pli

import (
	"testing"

	"holistic/internal/bitset"
)

// TestApproxBytesModel pins the byte-accounting model the memory governor
// budgets against: 96 bytes of struct overhead, four bytes per stored row id
// and per offset entry, plus — once materialised — four bytes per relation
// row for the cached attribute vector. For the flat layout this is exact up
// to the struct constant.
func TestApproxBytesModel(t *testing.T) {
	// One cluster of 10 rows: 96 + 4*(10 rows + 2 offsets).
	if got := FromAllRows(10).ApproxBytes(); got != 144 {
		t.Errorf("FromAllRows(10).ApproxBytes() = %d, want 144", got)
	}
	// Single-row relations strip to zero clusters: struct overhead only.
	if got := FromAllRows(1).ApproxBytes(); got != 96 {
		t.Errorf("FromAllRows(1).ApproxBytes() = %d, want 96", got)
	}
	// Two clusters of 3: 96 + 4*(6 rows + 3 offsets).
	p := FromColumn([]int32{0, 1, 0, 1, 0, 1}, 2)
	if got := p.ApproxBytes(); got != 132 {
		t.Errorf("two-cluster ApproxBytes() = %d, want 132", got)
	}
	// Materialising the attribute vector folds it into the accounting:
	// + 4*6 rows.
	p.ProbeVector()
	if got := p.ApproxBytes(); got != 156 {
		t.Errorf("ApproxBytes() with probe = %d, want 156", got)
	}
}

// TestCacheLedgerStableAcrossProbeMaterialization pins the snapshot-at-Put
// semantics: a PLI whose attribute vector materialises after it was cached
// must not corrupt the byte ledger when it is later replaced or shed —
// evictions subtract exactly what Put added.
func TestCacheLedgerStableAcrossProbeMaterialization(t *testing.T) {
	c := NewMapCacheBudget(64, 1<<20)
	s := bitset.New(0, 1)
	p := FromAllRows(10)
	c.Put(s, p)
	accounted := c.Bytes()
	p.ProbeVector() // grows ApproxBytes after the Put snapshot
	c.Put(s, FromAllRows(10))
	if got := c.Bytes(); got != accounted {
		t.Errorf("Bytes() after replace = %d, want %d (ledger drifted)", got, accounted)
	}
}

// TestMapCacheBudgetSheds fills a byte-budgeted cache past its budget and
// checks the invariant the governor relies on: Bytes() never exceeds the
// budget after a Put, shed entries are counted as evictions, and the most
// recent store is retained.
func TestMapCacheBudgetSheds(t *testing.T) {
	// Each FromAllRows(10) PLI costs 144 bytes; a 300-byte budget holds two.
	c := NewMapCacheBudget(64, 300)
	for i := 0; i < 5; i++ {
		s := bitset.New(i, i+1)
		c.Put(s, FromAllRows(10))
		if c.Bytes() > 300 {
			t.Fatalf("after put %d: Bytes() = %d, budget is 300", i, c.Bytes())
		}
		if _, ok := c.Get(s); !ok {
			t.Fatalf("put %d was shed immediately despite fitting the budget", i)
		}
	}
	if c.Len() > 2 {
		t.Errorf("Len = %d, want <= 2 under a two-entry byte budget", c.Len())
	}
	if _, _, evictions := c.Counters(); evictions < 3 {
		t.Errorf("evictions = %d, want >= 3 (five puts, two slots)", evictions)
	}
}

// TestMapCacheOversizePLINeverCached checks the OOM guard: a single PLI
// larger than the whole budget is refused outright instead of evicting
// everything else to make room that still would not suffice.
func TestMapCacheOversizePLINeverCached(t *testing.T) {
	c := NewMapCacheBudget(64, 200)
	small := bitset.New(0, 1)
	c.Put(small, FromAllRows(10)) // 144 bytes, fits
	c.Put(bitset.New(2, 3), FromAllRows(1000))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (oversize PLI must be refused)", c.Len())
	}
	if _, ok := c.Get(small); !ok {
		t.Fatal("refusing the oversize PLI evicted an innocent resident entry")
	}
	if _, _, evictions := c.Counters(); evictions != 1 {
		t.Errorf("evictions = %d, want 1 (the refused store)", evictions)
	}
}

// TestMapCacheBudgetReplaceAccounting replaces a key with a differently sized
// PLI and checks the byte ledger tracks the delta, not the sum.
func TestMapCacheBudgetReplaceAccounting(t *testing.T) {
	c := NewMapCacheBudget(64, 1<<20)
	s := bitset.New(0, 1)
	c.Put(s, FromAllRows(10)) // 144
	c.Put(s, FromAllRows(20)) // 184
	if got := c.Bytes(); got != 184 {
		t.Errorf("Bytes() after replace = %d, want 184", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 after replacing the same key", c.Len())
	}
}

// TestUnbudgetedMapCacheBytes checks byte accounting stays correct with no
// budget set (the governor reads Bytes() for stats even when not enforcing).
func TestUnbudgetedMapCacheBytes(t *testing.T) {
	c := NewMapCache(64)
	var want int64
	for i := 0; i < 4; i++ {
		p := FromAllRows(10 + i)
		want += p.ApproxBytes()
		c.Put(bitset.New(i, i+1), p)
	}
	if got := c.Bytes(); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
}

// TestMapCacheBudgetDefault checks the sentinel: a negative budget selects
// DefaultCacheBytes, zero disables budgeting.
func TestMapCacheBudgetDefault(t *testing.T) {
	if c := NewMapCacheBudget(0, -1); c.maxBytes != DefaultCacheBytes {
		t.Errorf("maxBytes = %d, want DefaultCacheBytes", c.maxBytes)
	}
	if c := NewMapCacheBudget(0, 0); c.maxBytes != 0 {
		t.Errorf("maxBytes = %d, want 0 (no budget)", c.maxBytes)
	}
}

// TestShardedCacheBudgetSplit checks the total byte budget is enforced across
// shards: after hammering every shard, the aggregate Bytes() stays within the
// configured total.
func TestShardedCacheBudgetSplit(t *testing.T) {
	const budget = 4 << 10
	c := NewShardedCacheBudget(4, 1<<10, budget)
	for i := 0; i < 200; i++ {
		c.Put(bitset.New(i%32, i%32+1+i/32), FromAllRows(50))
	}
	if got := c.Bytes(); got <= 0 || got > budget {
		t.Errorf("aggregate Bytes() = %d, want in (0, %d]", got, budget)
	}
	if _, _, evictions := c.Counters(); evictions == 0 {
		t.Error("no evictions despite overflowing the byte budget")
	}
}

// TestSyncCacheBytesDelegates checks the locking wrapper forwards the byte
// ledger of its inner cache.
func TestSyncCacheBytesDelegates(t *testing.T) {
	inner := NewMapCacheBudget(16, 1<<20)
	c := NewSyncCache(inner)
	c.Put(bitset.New(0, 1), FromAllRows(10))
	if got := c.Bytes(); got != inner.Bytes() || got != 144 {
		t.Errorf("SyncCache.Bytes() = %d, want 144", got)
	}
}
