package pli

// This file keeps the pre-flat PLI implementation — one heap-allocated
// []int32 per cluster, map-based grouping — as a differential-testing oracle.
// It is deliberately build-tag-free so the fuzzers and property tests can
// always reach it, but nothing outside _test files may use it: the flat PLI
// is the one representation every consumer shares.

// ReferencePLI is the reference stripped partition: the straightforward
// cluster-of-slices layout with per-call map grouping, retained verbatim from
// the pre-flat implementation. Its results define correctness for the flat
// PLI (FuzzPLIEquivalence compares the two op by op).
type ReferencePLI struct {
	clusters [][]int32
	nRows    int
}

// RefFromColumn builds the reference PLI of a single dictionary-encoded
// column.
func RefFromColumn(col []int32, cardinality int) *ReferencePLI {
	buckets := make([][]int32, cardinality)
	for row, code := range col {
		buckets[code] = append(buckets[code], int32(row))
	}
	p := &ReferencePLI{nRows: len(col)}
	for _, b := range buckets {
		if len(b) >= 2 {
			p.clusters = append(p.clusters, b)
		}
	}
	return p
}

// NumRows returns the row count of the relation the PLI belongs to.
func (p *ReferencePLI) NumRows() int { return p.nRows }

// Clusters exposes the clusters (not a copy; callers must not modify).
func (p *ReferencePLI) Clusters() [][]int32 { return p.clusters }

// IsUnique reports whether the underlying column combination is a UCC.
func (p *ReferencePLI) IsUnique() bool { return len(p.clusters) == 0 }

// ErrorSum returns sum(|cluster| - 1).
func (p *ReferencePLI) ErrorSum() int {
	e := 0
	for _, c := range p.clusters {
		e += len(c) - 1
	}
	return e
}

// DistinctCount returns the number of distinct value combinations.
func (p *ReferencePLI) DistinctCount() int { return p.nRows - p.ErrorSum() }

// Intersect returns the reference PLI of X ∪ Y via the probe-table
// algorithm with per-call probe array and map grouping.
func (p *ReferencePLI) Intersect(q *ReferencePLI) *ReferencePLI {
	probe := make([]int32, p.nRows)
	for i := range probe {
		probe[i] = -1
	}
	for ci, cluster := range p.clusters {
		for _, row := range cluster {
			probe[row] = int32(ci)
		}
	}
	out := &ReferencePLI{nRows: p.nRows}
	groups := make(map[int32][]int32)
	for _, cluster := range q.clusters {
		for _, row := range cluster {
			pc := probe[row]
			if pc < 0 {
				continue // singleton in p → singleton in the intersection
			}
			groups[pc] = append(groups[pc], row)
		}
		for pc, g := range groups {
			if len(g) >= 2 {
				out.clusters = append(out.clusters, append([]int32(nil), g...))
			}
			delete(groups, pc)
		}
	}
	return out
}

// IntersectColumn returns the reference PLI of X ∪ {A}.
func (p *ReferencePLI) IntersectColumn(col []int32) *ReferencePLI {
	out := &ReferencePLI{nRows: p.nRows}
	groups := make(map[int32][]int32)
	for _, cluster := range p.clusters {
		for _, row := range cluster {
			code := col[row]
			groups[code] = append(groups[code], row)
		}
		for code, g := range groups {
			if len(g) >= 2 {
				out.clusters = append(out.clusters, append([]int32(nil), g...))
			}
			delete(groups, code)
		}
	}
	return out
}

// Refines reports whether the FD X → A holds.
func (p *ReferencePLI) Refines(col []int32) bool {
	for _, cluster := range p.clusters {
		first := col[cluster[0]]
		for _, row := range cluster[1:] {
			if col[row] != first {
				return false
			}
		}
	}
	return true
}

// RefinesEach checks the FDs X → A for several candidate columns in a single
// pass over the clusters, mirroring PLI.RefinesEach.
func (p *ReferencePLI) RefinesEach(cols [][]int32) []bool {
	ok := make([]bool, len(cols))
	remaining := 0
	for i, c := range cols {
		if c != nil {
			ok[i] = true
			remaining++
		}
	}
	if remaining == 0 {
		return ok
	}
	for _, cluster := range p.clusters {
		for i, c := range cols {
			if c == nil || !ok[i] {
				continue
			}
			first := c[cluster[0]]
			for _, row := range cluster[1:] {
				if c[row] != first {
					ok[i] = false
					remaining--
					break
				}
			}
		}
		if remaining == 0 {
			break
		}
	}
	return ok
}
