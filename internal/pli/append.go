package pli

import (
	"context"
	"encoding/binary"

	"holistic/internal/bitset"
	"holistic/internal/parallel"
	"holistic/internal/relation"
)

// This file implements PLI delta maintenance under appended row batches. A
// relation.Append extends every column's code vector in place; the PLIs built
// over the old rows are then patched instead of rebuilt:
//
//   - single-column PLIs are rebuilt in one counting pass each (FromColumn is
//     already a counting sort over the extended column — there is no cheaper
//     incremental form that does not require per-code occupancy bookkeeping);
//   - cached multi-column PLIs take the merge path of AppendRows: the new
//     rows are grouped by their value combination, and each group pulls its
//     complete extended cluster membership out of the smallest single-column
//     cluster covering it, promoting old singletons and replacing grown
//     clusters while every untouched cluster is copied verbatim. The cost is
//     proportional to the clusters the batch actually touches, not to the
//     relation; a degenerate batch (touching huge low-cardinality clusters)
//     falls back to a from-scratch intersection chain, bounded by an explicit
//     scan budget.
//
// Provider.Refresh drives both paths and re-Puts the patched PLIs through the
// cache, so the Put-time-pinned byte ledger of the memory governor stays
// truthful.

// Appender carries the per-batch state shared by every AppendRows call: the
// extended relation's columns, the rebuilt single-column PLIs, and lazily
// built code→cluster indexes over them. It is not safe for concurrent use.
type Appender struct {
	oldRows int
	nRows   int
	cols    [][]int32
	cards   []int
	singles []*PLI
	codeIdx [][]int32 // codeIdx[c][code] = cluster index in singles[c], -1 if none
}

// NewAppender prepares delta maintenance for one appended batch. rel must
// already contain the appended rows (rows [oldRows, rel.NumRows()) are the
// batch); singles must be the single-column PLIs rebuilt over the extended
// columns.
func NewAppender(rel *relation.Relation, oldRows int, singles []*PLI) *Appender {
	n := rel.NumColumns()
	a := &Appender{
		oldRows: oldRows,
		nRows:   rel.NumRows(),
		cols:    make([][]int32, n),
		cards:   make([]int, n),
		singles: singles,
		codeIdx: make([][]int32, n),
	}
	for c := 0; c < n; c++ {
		a.cols[c] = rel.Column(c)
		a.cards[c] = rel.Cardinality(c)
	}
	return a
}

// codeClusters returns the code→cluster index of column c's rebuilt single
// PLI: the cluster of every code with two or more occurrences, -1 otherwise.
// The code of a cluster is recovered from its first member row.
func (a *Appender) codeClusters(c int) []int32 {
	if idx := a.codeIdx[c]; idx != nil {
		return idx
	}
	idx := make([]int32, a.cards[c])
	for i := range idx {
		idx[i] = -1
	}
	p, col := a.singles[c], a.cols[c]
	for ci, n := 0, p.NumClusters(); ci < n; ci++ {
		idx[col[p.Cluster(ci)[0]]] = int32(ci)
	}
	a.codeIdx[c] = idx
	return idx
}

// AppendRows returns the PLI of the column set cols over the extended
// relation, given p as that set's PLI over the first a.oldRows rows. cols
// must be the ascending column ids of p's combination.
//
// Merge path: the appended rows are grouped by their value combination on
// cols; for each group, the single-column cluster of the group's code in the
// smallest covering column necessarily contains every extended-relation row
// matching the combination (old cluster members, old singletons to promote,
// and the group itself), so one filtered scan of it yields the patched
// cluster. Old clusters whose combination gained no rows are copied
// verbatim; results therefore differ from a from-scratch build only in
// cluster order, which no consumer observes (uniqueness, refinement,
// ErrorSum and DistinctCount are all order-independent).
//
// When the total cluster scan cost would exceed a full rebuild (low-
// cardinality combos dragging in huge clusters), AppendRows abandons the
// merge and rebuilds by chaining column intersections over the extended
// columns instead.
func (p *PLI) AppendRows(a *Appender, cols []int, s *Scratch) *PLI {
	if len(cols) == 0 {
		return FromAllRows(a.nRows)
	}
	if len(cols) == 1 {
		return a.singles[cols[0]]
	}
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	newCount := a.nRows - a.oldRows
	if newCount == 0 {
		return p
	}

	// Group the appended rows by their combination on cols, preserving
	// first-occurrence order for determinism.
	k := len(cols)
	key := make([]byte, 4*k)
	comboOf := func(row int32) string {
		for i, c := range cols {
			binary.LittleEndian.PutUint32(key[4*i:], uint32(a.cols[c][row]))
		}
		return string(key)
	}
	groupIdx := make(map[string]int, newCount)
	var groupRows [][]int32
	for row := int32(a.oldRows); row < int32(a.nRows); row++ {
		ck := comboOf(row)
		gi, ok := groupIdx[ck]
		if !ok {
			gi = len(groupRows)
			groupIdx[ck] = gi
			groupRows = append(groupRows, nil)
		}
		groupRows[gi] = append(groupRows[gi], row)
	}

	// Plan each group: the smallest single-column cluster covering the combo
	// is the scan source. A missing cluster in ANY column means the combo
	// occurs at most once in the whole extended relation — a singleton.
	type plan struct {
		col     int   // column whose cluster is scanned, -1 = singleton group
		cluster int32 // cluster index in that column's single PLI
	}
	plans := make([]plan, len(groupRows))
	scanCost := 0
	for gi, rows := range groupRows {
		first := rows[0]
		best, bestLen := -1, 0
		singleton := false
		for _, c := range cols {
			ci := a.codeClusters(c)[a.cols[c][first]]
			if ci < 0 {
				singleton = true
				break
			}
			sp := a.singles[c]
			l := int(sp.offsets[ci+1] - sp.offsets[ci])
			if best < 0 || l < bestLen {
				best, bestLen = c, l
				plans[gi].cluster = ci
			}
		}
		if singleton {
			plans[gi].col = -1
			continue
		}
		plans[gi].col = best
		scanCost += bestLen
	}

	// Budget guard: the merge must beat the from-scratch intersection chain,
	// whose cost is roughly one pass over every column of the set.
	if scanCost > a.nRows*k {
		return a.rebuild(cols, s)
	}

	// Execute the scans: collect the patched/new clusters and remember which
	// combinations they cover, so the assembly below can skip the old
	// clusters they replace.
	var patchedRows []int32
	patchedOffs := []int32{0}
	for gi, rows := range groupRows {
		pl := plans[gi]
		if pl.col < 0 {
			continue
		}
		sp := a.singles[pl.col]
		cluster := sp.rows[sp.offsets[pl.cluster]:sp.offsets[pl.cluster+1]]
		first := rows[0]
		start := len(patchedRows)
		for _, row := range cluster {
			match := true
			for _, c := range cols {
				if c == pl.col {
					continue
				}
				if a.cols[c][row] != a.cols[c][first] {
					match = false
					break
				}
			}
			if match {
				patchedRows = append(patchedRows, row)
			}
		}
		if len(patchedRows)-start < 2 {
			patchedRows = patchedRows[:start] // still a singleton combination
			continue
		}
		patchedOffs = append(patchedOffs, int32(len(patchedRows)))
	}

	// Assembly: old clusters whose combination gained no appended rows are
	// copied verbatim; the rest were re-emitted (extended) above. An old
	// cluster is replaced iff its combination is one of the batch groups.
	total := len(patchedRows)
	nOld := p.NumClusters()
	replaced := 0
	for ci := 0; ci < nOld; ci++ {
		if _, hit := groupIdx[comboOf(p.rows[p.offsets[ci]])]; hit {
			replaced++
		} else {
			total += int(p.offsets[ci+1] - p.offsets[ci])
		}
	}
	out := &PLI{nRows: a.nRows}
	if total == 0 {
		return out
	}
	out.rows = make([]int32, 0, total)
	out.offsets = make([]int32, 1, nOld-replaced+len(patchedOffs))
	for ci := 0; ci < nOld; ci++ {
		clusterRows := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		if _, hit := groupIdx[comboOf(clusterRows[0])]; hit {
			continue
		}
		out.rows = append(out.rows, clusterRows...)
		out.offsets = append(out.offsets, int32(len(out.rows)))
	}
	for gi := 0; gi+1 < len(patchedOffs); gi++ {
		out.rows = append(out.rows, patchedRows[patchedOffs[gi]:patchedOffs[gi+1]]...)
		out.offsets = append(out.offsets, int32(len(out.rows)))
	}
	return out
}

// rebuild is the merge path's fallback: a from-scratch intersection chain
// over the extended columns, starting from the rebuilt single-column PLI of
// the first column.
func (a *Appender) rebuild(cols []int, s *Scratch) *PLI {
	cur := a.singles[cols[0]]
	for _, c := range cols[1:] {
		cur = cur.IntersectColumnScratch(a.cols[c], a.cards[c], s)
	}
	return cur
}

// Refresh re-synchronises the Provider with its relation after a
// relation.Append extended it in place: the single-column PLIs and the
// empty-set PLI are rebuilt over the extended columns, every cached
// multi-column PLI is patched through the AppendRows merge path and re-Put
// (so the cache's Put-time byte ledger tracks the new sizes), and the
// sampled-refutation prefilter, if armed, is re-armed against the new row
// count. oldRows is the relation's row count before the append.
//
// Refresh is an exclusive operation: like relation.Append, it must not run
// concurrently with any other method of the Provider.
func (p *Provider) Refresh(oldRows int) {
	rel := p.rel
	maxCard := rel.MaxCardinality()
	scratches := make([]*Scratch, parallel.Workers(0))
	parallel.ForWorker(context.Background(), parallel.Workers(0), rel.NumColumns(), func(w, c int) {
		s := scratches[w]
		if s == nil {
			s = NewScratch()
			s.Ensure(maxCard)
			scratches[w] = s
		}
		p.single[c] = FromColumnScratch(rel.Column(c), rel.Cardinality(c), s)
	})
	p.empty = FromAllRows(rel.NumRows())

	a := NewAppender(rel, oldRows, p.single)
	type entry struct {
		set bitset.Set
		pli *PLI
	}
	var entries []entry
	p.cache.ForEach(func(s bitset.Set, q *PLI) bool {
		entries = append(entries, entry{s, q})
		return true
	})
	s := NewScratch()
	s.Ensure(maxCard)
	for _, e := range entries {
		p.cachePut(e.set, e.pli.AppendRows(a, e.set.Columns(), s))
	}

	if p.sampleWanted {
		p.WithSampleCheck(true)
	}
}
