package pli

import (
	"sync"
	"sync/atomic"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

// TestShardedCacheCounterAggregation hammers a ShardedCache with a
// concurrent mixed hit/miss workload and checks that the aggregated
// counters balance exactly: every Get is accounted as a hit or a miss, and
// every inserted entry is either still cached or counted as evicted. Run
// with -race, this also exercises the per-shard locking.
func TestShardedCacheCounterAggregation(t *testing.T) {
	rel := mustRelation(t)
	base := NewProvider(rel, 0)
	seedPLI := base.SingleColumn(0)

	const (
		goroutines   = 8
		setsPerG     = 64
		getsPerSet   = 5
		totalEntries = goroutines * setsPerG
	)
	// A small bound forces evictions under load.
	c := NewShardedCache(4, totalEntries/4)

	var wg sync.WaitGroup
	var gets, hitsSeen, missesSeen atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < setsPerG; i++ {
				// Distinct two-column sets per goroutine: every Put inserts
				// a fresh key, never overwrites.
				key := bitset.New(g, goroutines+i)
				for k := 0; k < getsPerSet; k++ {
					if _, ok := c.Get(key); ok {
						hitsSeen.Add(1)
					} else {
						missesSeen.Add(1)
					}
					gets.Add(1)
				}
				c.Put(key, seedPLI)
			}
		}(g)
	}
	wg.Wait()

	hits, misses, evictions := c.Counters()
	if hits+misses != gets.Load() {
		t.Fatalf("hits+misses = %d+%d = %d, want %d (every probe counted exactly once)",
			hits, misses, hits+misses, gets.Load())
	}
	if hits != hitsSeen.Load() || misses != missesSeen.Load() {
		t.Fatalf("aggregated counters (hits=%d misses=%d) disagree with observed outcomes (hits=%d misses=%d)",
			hits, misses, hitsSeen.Load(), missesSeen.Load())
	}
	// Each key is Put exactly once, so inserts = totalEntries and every
	// insert is either resident or evicted.
	if got := c.Len() + int(evictions); got != totalEntries {
		t.Fatalf("Len()+evictions = %d+%d = %d, want %d inserts", c.Len(), evictions, got, totalEntries)
	}
	if evictions == 0 {
		t.Fatalf("expected evictions under a %d-entry bound with %d inserts", totalEntries/4, totalEntries)
	}
	// The first probe of every key must miss (keys are unique per
	// goroutine), so misses cover at least one probe per key.
	if misses < totalEntries {
		t.Fatalf("misses = %d, want >= %d (first probe of each key)", misses, totalEntries)
	}
}

// TestShardedCacheCountersConcurrentReads verifies that Counters and Len can
// be called while the cache is being mutated (the per-job stats path of the
// profiling server does exactly this).
func TestShardedCacheCountersConcurrentReads(t *testing.T) {
	rel := mustRelation(t)
	base := NewProvider(rel, 0)
	seedPLI := base.SingleColumn(0)
	c := NewShardedCache(0, 64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := bitset.New(g, 4+i%32)
				c.Get(key)
				c.Put(key, seedPLI)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		h, m, e := c.Counters()
		if h < 0 || m < 0 || e < 0 {
			t.Fatalf("negative counters: %d %d %d", h, m, e)
		}
		_ = c.Len()
	}
	close(stop)
	wg.Wait()
}

func mustRelation(t *testing.T) *relation.Relation {
	t.Helper()
	rel, err := relation.New("t", []string{"a", "b"}, [][]string{{"1", "x"}, {"2", "x"}, {"3", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}
