package pli

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/parallel"
)

// TestScratchWorkerSlotReuse exercises the worker-slot ownership contract
// under the real pool (run with -race): each slot owns one Scratch reused
// across many FromColumnScratch/IntersectColumnScratch/IntersectScratch
// calls, and every result must match the sequentially computed expectation.
// A scratch-reset bug (counts left dirty between calls) or a slot shared by
// two goroutines shows up as a wrong cluster or a race report.
func TestScratchWorkerSlotReuse(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	r := randomRelation(rnd, 6, 400, 5)
	for r.NumColumns() < 3 {
		r = randomRelation(rnd, 6, 400, 5)
	}
	n := r.NumColumns()

	type task struct{ a, b int }
	var tasks []task
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			tasks = append(tasks, task{a, b})
		}
	}
	// Repeat the task list so slots are reused many times per worker.
	for i := 0; i < 4; i++ {
		tasks = append(tasks, tasks...)
	}

	want := make([][][]int32, len(tasks))
	for i, tk := range tasks {
		pa := FromColumn(r.Column(tk.a), r.Cardinality(tk.a))
		want[i] = canon(pa.IntersectColumn(r.Column(tk.b), r.Cardinality(tk.b)))
	}

	const workers = 8
	scratches := make([]*Scratch, workers)
	got := make([][][]int32, len(tasks))
	err := parallel.ForWorker(context.Background(), workers, len(tasks), func(w, i int) {
		s := scratches[w]
		if s == nil {
			s = NewScratch()
			scratches[w] = s
		}
		tk := tasks[i]
		pa := FromColumnScratch(r.Column(tk.a), r.Cardinality(tk.a), s)
		pb := FromColumnScratch(r.Column(tk.b), r.Cardinality(tk.b), s)
		viaCol := pa.IntersectColumnScratch(r.Column(tk.b), r.Cardinality(tk.b), s)
		viaPLI := pa.IntersectScratch(pb, s)
		if !reflect.DeepEqual(canon(viaCol), canon(viaPLI)) {
			t.Errorf("task %d: IntersectColumnScratch and IntersectScratch disagree", i)
		}
		got[i] = canon(viaCol)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("task %d (%v): scratch-arena result %v, want %v", i, tasks[i], got[i], want[i])
		}
	}
}

// TestScratchPoolConcurrentProviders exercises the sync.Pool fallback (run
// with -race): many goroutines drive a shared concurrent Provider through
// uncached multi-column Gets, all of which borrow pooled scratches for their
// intersections. Results must match the sequential brute force.
func TestScratchPoolConcurrentProviders(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	r := randomRelation(rnd, 6, 300, 4)
	for r.NumColumns() < 4 {
		r = randomRelation(rnd, 6, 300, 4)
	}
	n := r.NumColumns()
	p := NewConcurrentProvider(r, 8, 8) // tiny cache forces constant recomputation

	var sets []bitset.Set
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			sets = append(sets, bitset.New(a, b))
			if c := (b + 1) % n; c != a && c != b {
				sets = append(sets, bitset.New(a, b, c))
			}
		}
	}
	want := make([][][]int32, len(sets))
	for i, s := range sets {
		want[i] = brutePLI(r, s)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3*len(sets); i++ {
				j := (g + i) % len(sets)
				if got := canon(p.Get(sets[j])); !reflect.DeepEqual(got, want[j]) {
					t.Errorf("goroutine %d: Get(%v) = %v, want %v", g, sets[j], got, want[j])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestProbeVectorConcurrentMaterialization hammers the lazy attribute-vector
// build from many goroutines (run with -race): exactly one build must win
// and all callers must observe the same backing array.
func TestProbeVectorConcurrentMaterialization(t *testing.T) {
	p := FromColumn([]int32{0, 1, 0, 2, 1, 0, 3, 3}, 4)
	first := make([]*int32, 16)
	var wg sync.WaitGroup
	for g := range first {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := p.ProbeVector()
			first[g] = &v[0]
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(first); g++ {
		if first[g] != first[0] {
			t.Fatal("goroutines observed different probe vectors")
		}
	}
}
