package pli

// This file implements the non-materializing validation fast path: check
// kernels that answer the boolean/cardinality questions of the lattice walks
// (is X unique? does X → A hold? what is |X|_r?) by folding additional
// dictionary-encoded columns over the clusters of an already-built ancestor
// PLI, without ever allocating an output PLI.
//
// The fold is cluster-at-a-time: each cluster of the base PLI is refined
// through ALL key columns before the next cluster is touched. That ordering
// is what makes the early exits cheap — CheckUnique returns on the first
// surviving group, CheckRefines on the first group that is not constant in
// the RHS column, after folding only a prefix of the clusters. Grouping uses
// the same counts/starts/touched arenas as intersectKeyed plus two ping-pong
// row buffers sized to the largest cluster (Scratch.ensureFold); in the
// steady state a check performs zero allocations.
//
// The single-fold-column shape — the common case once the provider's
// promotions have grown a cached ancestor frontier to distance one — has
// dedicated kernels (checkUnique1, checkRefines1, checkErrorSum1) that skip
// grouping entirely: one counting pass per cluster with immediate early
// exit, no scatter and no group offsets, making the check cheaper per
// element than a materializing intersection.
//
// Group enumeration order is identical to the cluster order of the PLI that
// chained IntersectColumn calls would materialise: both orders are the
// lexicographic nesting (base cluster, first-occurrence at each fold step).
// The differential fuzz suite (FuzzCheckEquivalence) pins this down.

// checkUnique1 is the single-fold-column fast case of CheckUnique, the hot
// shape once cache promotions have brought a probed region to fold distance
// one. Uniqueness under one extra column needs no grouping at all: the
// intersection has a surviving group iff two rows of one base cluster share
// a key code. One counting pass with immediate exit on the first repeat —
// no scatter, no offsets, no output — makes the check cheaper per element
// than the materializing intersection it replaces.
func (p *PLI) checkUnique1(col []int32, card int, s *Scratch) bool {
	s.ensure(card)
	counts := s.counts
	touched := s.touched
	defer func() { s.touched = touched[:0] }() // keep grown capacity
	for ci, n := 0, p.NumClusters(); ci < n; ci++ {
		cluster := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		s.work += len(cluster)
		if len(cluster) <= 3 {
			// Tiny clusters: a repeat among <= 3 codes is a direct compare.
			if col[cluster[0]] == col[cluster[1]] ||
				(len(cluster) == 3 && (col[cluster[0]] == col[cluster[2]] || col[cluster[1]] == col[cluster[2]])) {
				return false
			}
			continue
		}
		dup := false
		for _, row := range cluster {
			k := col[row]
			if counts[k] != 0 {
				dup = true
				break
			}
			counts[k] = 1
			touched = append(touched, k)
		}
		for _, k := range touched {
			counts[k] = 0 // restore the all-zero invariant
		}
		touched = touched[:0]
		if dup {
			return false
		}
	}
	return true
}

// checkRefines1 is the single-fold-column fast case of CheckRefines: the FD
// (base ∪ {key}) → rhs is violated iff two rows of one base cluster share a
// key code but differ in the rhs code. The counts arena doubles as a
// first-seen table (rhs code + 1 per key code, 0 = unseen), so one pass with
// early exit answers the check without building any groups.
func (p *PLI) checkRefines1(rhs, col []int32, card int, s *Scratch) bool {
	s.ensure(card)
	counts := s.counts
	touched := s.touched
	defer func() { s.touched = touched[:0] }() // keep grown capacity
	for ci, n := 0, p.NumClusters(); ci < n; ci++ {
		cluster := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		s.work += len(cluster)
		if len(cluster) <= 3 {
			// Tiny clusters: check each same-key pair's rhs agreement directly.
			for i := 0; i < len(cluster); i++ {
				for j := i + 1; j < len(cluster); j++ {
					if col[cluster[i]] == col[cluster[j]] && rhs[cluster[i]] != rhs[cluster[j]] {
						return false
					}
				}
			}
			continue
		}
		violated := false
		for _, row := range cluster {
			k := col[row]
			v := rhs[row] + 1
			switch c := counts[k]; {
			case c == 0:
				counts[k] = v
				touched = append(touched, k)
			case c != v:
				violated = true
			}
			if violated {
				break
			}
		}
		for _, k := range touched {
			counts[k] = 0 // restore the all-zero invariant
		}
		touched = touched[:0]
		if violated {
			return false
		}
	}
	return true
}

// checkErrorSum1 is the single-fold-column fast case of CheckErrorSum: each
// base cluster contributes len(cluster) - distinct(key codes), which equals
// the sum of (group size - 1) over its surviving groups. One counting pass
// per cluster, no grouping.
func (p *PLI) checkErrorSum1(col []int32, card int, s *Scratch) int {
	s.ensure(card)
	counts := s.counts
	touched := s.touched
	defer func() { s.touched = touched[:0] }() // keep grown capacity
	es := 0
	for ci, n := 0, p.NumClusters(); ci < n; ci++ {
		cluster := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		s.work += len(cluster)
		if len(cluster) == 2 {
			if col[cluster[0]] == col[cluster[1]] {
				es++
			}
			continue
		}
		if len(cluster) == 3 {
			// 0, 1, or 3 equal pairs (transitivity excludes 2) map to
			// len - distinct of 0, 1, or 2 respectively.
			e := 0
			for i := 0; i < 3; i++ {
				for j := i + 1; j < 3; j++ {
					if col[cluster[i]] == col[cluster[j]] {
						e++
					}
				}
			}
			if e == 3 {
				e = 2
			}
			es += e
			continue
		}
		distinct := 0
		for _, row := range cluster {
			k := col[row]
			if counts[k] == 0 {
				distinct++
				touched = append(touched, k)
			}
			counts[k]++
		}
		for _, k := range touched {
			counts[k] = 0 // restore the all-zero invariant
		}
		touched = touched[:0]
		es += len(cluster) - distinct
	}
	return es
}

// fold enumerates the stripped groups of p ∩ keys[0] ∩ … ∩ keys[k-1],
// invoking each once per surviving group (size >= 2, row ids of the
// relation). each returning false aborts the enumeration; fold reports
// whether the enumeration ran to completion. cards[i] bounds the code range
// of keys[i]. The group slices are views into scratch memory (or, with no
// keys, into p's backing array) and are valid only during the callback.
func (p *PLI) fold(keys [][]int32, cards []int, s *Scratch, each func(group []int32) bool) bool {
	n := p.NumClusters()
	if n == 0 {
		return true
	}
	if len(keys) == 0 {
		for ci := 0; ci < n; ci++ {
			if !each(p.Cluster(ci)) {
				return false
			}
		}
		return true
	}
	maxCard := 0
	for _, c := range cards {
		if c > maxCard {
			maxCard = c
		}
	}
	s.ensure(maxCard)
	maxCluster := 0
	for ci := 0; ci < n; ci++ {
		if l := int(p.offsets[ci+1] - p.offsets[ci]); l > maxCluster {
			maxCluster = l
		}
	}
	s.ensureFold(maxCluster)
	counts, starts := s.counts, s.starts
	touched := s.touched
	defer func() { s.touched = touched[:0] }() // keep grown capacity

	for ci := 0; ci < n; ci++ {
		// Generation 0 is the whole cluster as a single group.
		srcRows := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		s.work += len(srcRows)
		if len(srcRows) <= 3 {
			// Tiny clusters — the common case when the base PLI sits near
			// the uniqueness boundary — are resolved by direct tuple
			// comparisons. At most one group of >= 2 rows can survive from
			// three rows, so emission order is trivially the generational
			// order.
			group := tinyFoldGroup(srcRows, keys, s)
			if group != nil && !each(group) {
				return false
			}
			continue
		}
		g0 := [2]int32{0, int32(len(srcRows))}
		srcOffs := g0[:]
		alive := true
		for t, col := range keys {
			w := t & 1
			dstRows := s.foldRows[w]
			dstOffs := append(s.foldOffs[w][:0], 0)
			cursor := int32(0)
			for gi := 0; gi+1 < len(srcOffs); gi++ {
				group := srcRows[srcOffs[gi]:srcOffs[gi+1]]
				touched = touched[:0]
				for _, row := range group {
					k := col[row]
					if counts[k] == 0 {
						touched = append(touched, k)
					}
					counts[k]++
				}
				for _, k := range touched {
					if counts[k] >= 2 {
						starts[k] = cursor
						cursor += counts[k]
						dstOffs = append(dstOffs, cursor)
					} else {
						starts[k] = -1 // stripped singleton
					}
				}
				for _, row := range group {
					if st := starts[col[row]]; st >= 0 {
						dstRows[st] = row
						starts[col[row]]++
					}
				}
				for _, k := range touched {
					counts[k] = 0 // restore the all-zero invariant
				}
			}
			s.foldOffs[w] = dstOffs[:0]
			if cursor == 0 {
				alive = false
				break
			}
			srcRows = dstRows[:cursor]
			srcOffs = dstOffs
		}
		if !alive {
			continue
		}
		for gi := 0; gi+1 < len(srcOffs); gi++ {
			if !each(srcRows[srcOffs[gi]:srcOffs[gi+1]]) {
				return false
			}
		}
	}
	return true
}

// rowsEqual reports whether rows a and b agree on every key column.
func rowsEqual(keys [][]int32, a, b int32) bool {
	for _, col := range keys {
		if col[a] != col[b] {
			return false
		}
	}
	return true
}

// tinyFoldGroup resolves a cluster of two or three rows by direct tuple
// comparisons, returning the single surviving group (or nil when the fold
// strips the cluster to singletons). Non-adjacent pairs are staged in the
// Scratch fold buffer, which the caller has already sized.
func tinyFoldGroup(rows []int32, keys [][]int32, s *Scratch) []int32 {
	if len(rows) == 2 {
		if rowsEqual(keys, rows[0], rows[1]) {
			return rows
		}
		return nil
	}
	switch {
	case rowsEqual(keys, rows[0], rows[1]):
		if rowsEqual(keys, rows[0], rows[2]) {
			return rows
		}
		return rows[:2]
	case rowsEqual(keys, rows[1], rows[2]):
		return rows[1:]
	case rowsEqual(keys, rows[0], rows[2]):
		pair := s.foldRows[0][:2]
		pair[0], pair[1] = rows[0], rows[2]
		return pair
	}
	return nil
}

// CheckUnique reports whether p ∩ keys[0] ∩ … is a unique column
// combination — i.e. whether any group of at least two rows agrees on the
// base combination and every key column. It exits on the first surviving
// group without materialising the intersection. s may be nil (a pooled
// Scratch is borrowed); otherwise the Scratch ownership contract applies.
func (p *PLI) CheckUnique(keys [][]int32, cards []int, s *Scratch) bool {
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	if len(keys) == 1 {
		return p.checkUnique1(keys[0], cards[0], s)
	}
	return p.fold(keys, cards, s, func([]int32) bool { return false })
}

// CheckRefines reports whether the FD (base ∪ keys) → rhs holds: every
// surviving group of the fold must be value-constant in the rhs column
// (Lemma 1). It exits on the first violating group without materialising
// the intersection. s may be nil.
func (p *PLI) CheckRefines(rhs []int32, keys [][]int32, cards []int, s *Scratch) bool {
	if len(keys) == 0 {
		return p.Refines(rhs)
	}
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	if len(keys) == 1 {
		return p.checkRefines1(rhs, keys[0], cards[0], s)
	}
	return p.fold(keys, cards, s, func(group []int32) bool {
		first := rhs[group[0]]
		for _, row := range group[1:] {
			if rhs[row] != first {
				return false
			}
		}
		return true
	})
}

// CheckRefinesMany is the batched flavour of CheckRefines for TANE's
// per-level RHS sweep: one fold of the keys answers (base ∪ keys) → rhs[i]
// for every candidate at once. rhs[i] may be nil to skip candidate i; ok[i]
// is set to whether the refinement holds (false for nil slots). Candidates
// are kept on a compact active list, so once a candidate fails it costs
// nothing on later groups, and the fold aborts as soon as every candidate
// has failed. s may be nil.
func (p *PLI) CheckRefinesMany(rhs [][]int32, keys [][]int32, cards []int, ok []bool, s *Scratch) {
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	active := s.activeSlots(len(rhs))
	for i, c := range rhs {
		ok[i] = c != nil
		if c != nil {
			active = append(active, int32(i))
		}
	}
	if len(active) == 0 {
		return
	}
	p.fold(keys, cards, s, func(group []int32) bool {
		for j := 0; j < len(active); {
			i := active[j]
			c := rhs[i]
			first := c[group[0]]
			violated := false
			for _, row := range group[1:] {
				if c[row] != first {
					violated = true
					break
				}
			}
			if violated {
				ok[i] = false
				active[j] = active[len(active)-1]
				active = active[:len(active)-1]
			} else {
				j++
			}
		}
		return len(active) > 0
	})
}

// CheckErrorSum returns sum(|group| - 1) over the groups of p ∩ keys[0] ∩ …,
// i.e. the ErrorSum the materialised intersection would have. DistinctCount
// follows as NumRows - CheckErrorSum. There is no early exit — every group
// contributes — but the fold still allocates nothing. s may be nil.
func (p *PLI) CheckErrorSum(keys [][]int32, cards []int, s *Scratch) int {
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	if len(keys) == 1 {
		return p.checkErrorSum1(keys[0], cards[0], s)
	}
	es := 0
	p.fold(keys, cards, s, func(group []int32) bool {
		es += len(group) - 1
		return true
	})
	return es
}

// foldPLI materialises the intersection p ∩ keys[0] ∩ … as a PLI in ONE
// combined cluster-at-a-time pass — no intermediate PLIs, one output
// allocation — instead of the len(keys) chained IntersectColumn calls the
// materializing path would make. Group order matches the chained
// materialisation exactly (see the fold contract), so the result is
// indistinguishable from Get's. It backs the provider's adaptive admission:
// when a refuted check proves a set worth caching, the stepping stone is
// built at roughly the cost of a single intersection regardless of fold
// depth.
func (p *PLI) foldPLI(keys [][]int32, cards []int, s *Scratch) *PLI {
	if len(keys) == 1 {
		return p.fold1PLI(keys[0], cards[0], s)
	}
	out := &PLI{nRows: p.nRows}
	// Near-boundary folds keep few survivors, so start small and let append
	// growth track the actual output instead of reserving the whole base.
	capHint := len(p.rows)/8 + 16
	rows := make([]int32, 0, capHint)
	offsets := make([]int32, 1, capHint/2+2)
	p.fold(keys, cards, s, func(g []int32) bool {
		rows = append(rows, g...)
		offsets = append(offsets, int32(len(rows)))
		return true
	})
	if len(rows) > 0 {
		out.rows = rows
		out.offsets = offsets
	}
	return out
}

// fold1PLI is the single-fold-column materialiser behind foldPLI — the hot
// shape when a distance-one refutation admits its stepping stone. It places
// surviving rows straight into the output arrays (count, reserve, scatter
// per cluster), skipping the generational ping-pong buffers and the extra
// group copy the generic fold would pay. Group order is the generational
// order: clusters outermost, key codes by first occurrence within a cluster.
func (p *PLI) fold1PLI(col []int32, card int, s *Scratch) *PLI {
	out := &PLI{nRows: p.nRows}
	s.ensure(card)
	counts, starts := s.counts, s.starts
	touched := s.touched
	defer func() { s.touched = touched[:0] }() // keep grown capacity
	capHint := len(p.rows)/8 + 16
	rows := make([]int32, 0, capHint)
	offsets := make([]int32, 1, capHint/2+2)
	for ci, n := 0, p.NumClusters(); ci < n; ci++ {
		cluster := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		s.work += len(cluster)
		touched = touched[:0]
		for _, row := range cluster {
			k := col[row]
			if counts[k] == 0 {
				touched = append(touched, k)
			}
			counts[k]++
		}
		cursor := int32(len(rows))
		for _, k := range touched {
			if counts[k] >= 2 {
				starts[k] = cursor
				cursor += counts[k]
				offsets = append(offsets, cursor)
			} else {
				starts[k] = -1 // stripped singleton
			}
		}
		if int(cursor) > len(rows) {
			rows = append(rows, make([]int32, int(cursor)-len(rows))...)
			for _, row := range cluster {
				if st := starts[col[row]]; st >= 0 {
					rows[st] = row
					starts[col[row]]++
				}
			}
		}
		for _, k := range touched {
			counts[k] = 0 // restore the all-zero invariant
		}
	}
	if len(rows) > 0 {
		out.rows = rows
		out.offsets = offsets
	}
	return out
}

// ForEachFoldedGroup enumerates the stripped groups of p ∩ keys[0] ∩ …
// without materialising a PLI, in the same order as the materialised
// intersection's clusters. The group slice is scratch memory, valid only
// during the callback; returning false stops the enumeration. It backs
// order-insensitive aggregations such as the g3 approximate-FD error.
// s may be nil.
func (p *PLI) ForEachFoldedGroup(keys [][]int32, cards []int, s *Scratch, fn func(group []int32) bool) {
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	p.fold(keys, cards, s, fn)
}
