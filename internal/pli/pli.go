// Package pli implements position list indexes (PLIs, also called stripped
// partitions), the data structure underlying UCC and FD validation in DUCC,
// TANE, FUN and MUDS (paper Sec. 2.2/2.3).
//
// A PLI of a column combination X is the list of row-id clusters such that
// all rows of a cluster agree on X; clusters of size one are stripped. An
// empty PLI therefore means X is a unique column combination, and the FD
// X → A holds iff every cluster of X's PLI is value-constant in column A
// (partition refinement, Lemma 1).
//
// # Memory layout
//
// A PLI stores its clusters in a flat layout: one backing row array holding
// every cluster member back to back, plus a cluster-offset index — cluster i
// spans rows[offsets[i]:offsets[i+1]]. Building a PLI therefore costs two
// allocations regardless of cluster count, and iterating clusters walks one
// contiguous array instead of chasing a pointer per cluster. Access goes
// through Cluster, ForEachCluster or ClusterIter; the backing arrays are
// never handed out mutably.
//
// Each PLI additionally caches a lazily materialised cluster-ID attribute
// vector (ProbeVector): probe[row] is the cluster index of row, or -1 for
// stripped singletons. Intersect probes it instead of rebuilding a probe
// table per call, so repeated intersections against the same left operand
// pay the build once. The vector is built under a sync.Once and published
// atomically, making concurrent intersections of shared cached PLIs safe.
//
// Intersections group rows with reusable Scratch arenas (see scratch.go)
// instead of per-call maps: the steady-state intersect path performs zero
// map allocations.
package pli

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PLI is a stripped partition of a relation's rows. The zero value is not
// useful; construct PLIs with FromColumn, FromAllRows, Intersect, or
// IntersectColumn. A PLI is immutable after construction except for the
// lazily cached probe vector, which is published atomically; all methods are
// safe for concurrent use.
type PLI struct {
	rows    []int32 // cluster members, cluster by cluster (one allocation)
	offsets []int32 // cluster i = rows[offsets[i]:offsets[i+1]]; nil if no clusters
	nRows   int

	probeOnce sync.Once
	probe     atomic.Pointer[[]int32]
}

// FromColumn builds the PLI of a single dictionary-encoded column.
// cardinality is the number of distinct codes (the dictionary size).
func FromColumn(col []int32, cardinality int) *PLI {
	s := getScratch()
	defer putScratch(s)
	return FromColumnScratch(col, cardinality, s)
}

// FromColumnScratch is FromColumn with a caller-owned Scratch arena (see the
// ownership contract in scratch.go). Clusters are emitted in ascending code
// order, rows within a cluster in row order.
func FromColumnScratch(col []int32, cardinality int, s *Scratch) *PLI {
	s.ensure(cardinality)
	counts := s.counts[:cardinality]
	for _, code := range col {
		counts[code]++
	}
	nClusters, nStored := 0, 0
	for _, c := range counts {
		if c >= 2 {
			nClusters++
			nStored += int(c)
		}
	}
	p := &PLI{nRows: len(col)}
	if nClusters > 0 {
		p.rows = make([]int32, nStored)
		p.offsets = make([]int32, nClusters+1)
		starts := s.starts[:cardinality]
		cursor := int32(0)
		ci := 1
		for code, c := range counts {
			if c >= 2 {
				starts[code] = cursor
				cursor += c
				p.offsets[ci] = cursor
				ci++
			} else {
				starts[code] = -1
			}
		}
		for row, code := range col {
			if st := starts[code]; st >= 0 {
				p.rows[st] = int32(row)
				starts[code]++
			}
		}
	}
	clear(counts) // restore the all-zero Scratch invariant
	return p
}

// FromAllRows builds the PLI of the empty column combination: a single
// cluster containing every row (every row agrees on zero columns).
func FromAllRows(nRows int) *PLI {
	p := &PLI{nRows: nRows}
	if nRows >= 2 {
		p.rows = make([]int32, nRows)
		for i := range p.rows {
			p.rows[i] = int32(i)
		}
		p.offsets = []int32{0, int32(nRows)}
	}
	return p
}

// FromClusters builds a PLI from explicit clusters, stripping singletons.
// It is intended for tests and for reconstructing PLIs from raw partitions.
// Row ids outside [0, nRows) are rejected with a panic — a silently accepted
// out-of-range id would corrupt every probe vector built from the PLI.
func FromClusters(nRows int, clusters [][]int32) *PLI {
	nClusters, nStored := 0, 0
	for _, c := range clusters {
		for _, row := range c {
			if row < 0 || int(row) >= nRows {
				panic(fmt.Sprintf("pli.FromClusters: row id %d outside [0, %d)", row, nRows))
			}
		}
		if len(c) >= 2 {
			nClusters++
			nStored += len(c)
		}
	}
	p := &PLI{nRows: nRows}
	if nClusters > 0 {
		p.rows = make([]int32, 0, nStored)
		p.offsets = make([]int32, 1, nClusters+1)
		for _, c := range clusters {
			if len(c) >= 2 {
				p.rows = append(p.rows, c...)
				p.offsets = append(p.offsets, int32(len(p.rows)))
			}
		}
	}
	return p
}

// NumRows returns the row count of the relation the PLI belongs to.
func (p *PLI) NumRows() int { return p.nRows }

// NumClusters returns the number of (stripped) clusters.
func (p *PLI) NumClusters() int {
	if len(p.offsets) == 0 {
		return 0
	}
	return len(p.offsets) - 1
}

// Cluster returns cluster i as a read-only view into the backing row array;
// callers must not modify it.
func (p *PLI) Cluster(i int) []int32 {
	return p.rows[p.offsets[i]:p.offsets[i+1]:p.offsets[i+1]]
}

// ForEachCluster calls fn once per cluster, in cluster order. The slice is a
// view into the backing row array and must not be modified or retained.
func (p *PLI) ForEachCluster(fn func(cluster []int32)) {
	for i, n := 0, p.NumClusters(); i < n; i++ {
		fn(p.Cluster(i))
	}
}

// ClusterIter walks a PLI's clusters without a closure; see PLI.Iter.
type ClusterIter struct {
	p *PLI
	i int
}

// Iter returns an iterator over the clusters.
func (p *PLI) Iter() ClusterIter { return ClusterIter{p: p} }

// Next returns the next cluster (a read-only view, like Cluster) and whether
// one was available.
func (it *ClusterIter) Next() ([]int32, bool) {
	if it.i >= it.p.NumClusters() {
		return nil, false
	}
	c := it.p.Cluster(it.i)
	it.i++
	return c, true
}

// IsUnique reports whether the underlying column combination is a UCC:
// a stripped partition with no clusters has only unique values.
func (p *PLI) IsUnique() bool { return len(p.offsets) == 0 }

// ErrorSum returns sum(|cluster| - 1), the number of "redundant" rows. Two
// PLIs over the same rows have equal distinct counts iff their error sums are
// equal, which is how partition refinement (Lemma 1) is tested cheaply. With
// the flat layout this is O(1): stored rows minus cluster count.
func (p *PLI) ErrorSum() int { return len(p.rows) - p.NumClusters() }

// DistinctCount returns the number of distinct value combinations, i.e. the
// cardinality |X|_r used by FUN's free-set classification.
func (p *PLI) DistinctCount() int { return p.nRows - p.ErrorSum() }

// ProbeVector returns the cluster-ID attribute vector of the PLI:
// probe[row] is the index of the cluster containing row, or -1 if row is a
// stripped singleton. The vector is materialised on first use and cached for
// the PLI's lifetime (it is what makes repeated Intersect calls against the
// same left operand skip the probe-build pass). Callers must not modify it.
func (p *PLI) ProbeVector() []int32 {
	if v := p.probe.Load(); v != nil {
		return *v
	}
	p.probeOnce.Do(func() {
		probe := make([]int32, p.nRows)
		for i := range probe {
			probe[i] = -1
		}
		for ci, n := 0, p.NumClusters(); ci < n; ci++ {
			for _, row := range p.Cluster(ci) {
				probe[row] = int32(ci)
			}
		}
		p.probe.Store(&probe)
	})
	return *p.probe.Load()
}

// probeMaterialized reports whether the attribute vector has been built (and
// is therefore part of the PLI's heap footprint).
func (p *PLI) probeMaterialized() bool { return p.probe.Load() != nil }

// Intersect returns the PLI of X ∪ Y given the PLIs of X and Y. If either
// operand is already unique the intersection is unique too and returned
// without touching probe vectors or scratch space. Otherwise the operand
// with the smaller ErrorSum is the side whose clusters are scanned — fewer
// rows to group — and its rows are probed against the larger side's cached
// cluster-ID vector.
func (p *PLI) Intersect(q *PLI) *PLI {
	s := getScratch()
	defer putScratch(s)
	return p.IntersectScratch(q, s)
}

// IntersectScratch is Intersect with a caller-owned Scratch arena (see the
// ownership contract in scratch.go).
func (p *PLI) IntersectScratch(q *PLI, s *Scratch) *PLI {
	if p.IsUnique() || q.IsUnique() {
		return &PLI{nRows: p.nRows}
	}
	small, big := p, q
	if small.ErrorSum() > big.ErrorSum() {
		small, big = big, small
	}
	return small.intersectKeyed(big.ProbeVector(), big.NumClusters(), s)
}

// IntersectColumn returns the PLI of X ∪ {A} given the PLI of X and the
// dictionary-encoded column A with the given dictionary size. This avoids
// materialising A's PLI and is the intersection flavour used on lattice
// walks. A cluster-free (unique) receiver short-circuits to the empty PLI.
func (p *PLI) IntersectColumn(col []int32, cardinality int) *PLI {
	s := getScratch()
	defer putScratch(s)
	return p.IntersectColumnScratch(col, cardinality, s)
}

// IntersectColumnScratch is IntersectColumn with a caller-owned Scratch arena
// (see the ownership contract in scratch.go).
func (p *PLI) IntersectColumnScratch(col []int32, cardinality int, s *Scratch) *PLI {
	if p.IsUnique() {
		return &PLI{nRows: p.nRows}
	}
	return p.intersectKeyed(col, cardinality, s)
}

// intersectKeyed groups the rows of p's clusters by keys[row], dropping rows
// with a negative key (singletons of the probed side) and groups of size one,
// and emits the surviving groups as a flat PLI. keyRange bounds the key
// values; s provides the map-free grouping arenas. Within a cluster, groups
// are emitted in order of first occurrence, which is deterministic.
func (p *PLI) intersectKeyed(keys []int32, keyRange int, s *Scratch) *PLI {
	s.ensure(keyRange)
	out := &PLI{nRows: p.nRows}
	// The output cannot hold more rows than the scanned clusters, nor more
	// clusters than half of that: allocate the bounds once, shrink below.
	buf := make([]int32, len(p.rows))
	offsets := make([]int32, 1, len(p.rows)/2+2)
	cursor := int32(0)
	counts, starts := s.counts, s.starts
	touched := s.touched[:0]
	for ci, n := 0, p.NumClusters(); ci < n; ci++ {
		cluster := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		touched = touched[:0]
		for _, row := range cluster {
			k := keys[row]
			if k < 0 {
				continue // singleton on the probed side → singleton in the result
			}
			if counts[k] == 0 {
				touched = append(touched, k)
			}
			counts[k]++
		}
		for _, k := range touched {
			if counts[k] >= 2 {
				starts[k] = cursor
				cursor += counts[k]
				offsets = append(offsets, cursor)
			} else {
				starts[k] = -1 // stripped from the result
			}
		}
		for _, row := range cluster {
			k := keys[row]
			if k < 0 || starts[k] < 0 {
				continue
			}
			buf[starts[k]] = row
			starts[k]++
		}
		for _, k := range touched {
			counts[k] = 0 // restore the all-zero invariant
		}
	}
	s.touched = touched[:0] // keep the grown capacity for the next call
	if cursor == 0 {
		return out
	}
	if int(cursor) <= len(buf)/2 {
		// The bound over-shot by 2x or more: copy down so the retained (and
		// possibly cached) PLI does not pin the oversized buffer.
		buf = append([]int32(nil), buf[:cursor]...)
	} else {
		buf = buf[:cursor]
	}
	out.rows = buf
	out.offsets = offsets
	return out
}

// Refines reports whether the FD X → A holds given the PLI of X and the
// dictionary-encoded column A: every cluster of X must be constant in A
// (Lemma 1: |X| = |X ∪ {A}|). It exits on the first violating cluster.
func (p *PLI) Refines(col []int32) bool {
	rows, offs := p.rows, p.offsets
	for ci := 0; ci+1 < len(offs); ci++ {
		first := col[rows[offs[ci]]]
		for _, row := range rows[offs[ci]+1 : offs[ci+1]] {
			if col[row] != first {
				return false
			}
		}
	}
	return true
}

// RefinesEach checks the FDs X → A for several candidate columns in a single
// pass over the clusters. cols[i] may be nil to skip candidate i; the result
// slice reports, per candidate, whether the refinement holds. Surviving
// candidates live on a compact active-index list, so the per-cluster cost
// tracks the number of still-undecided candidates rather than len(cols) —
// once a candidate fails it is swapped out of the list and never looked at
// again.
func (p *PLI) RefinesEach(cols [][]int32) []bool {
	ok := make([]bool, len(cols))
	s := getScratch()
	defer putScratch(s)
	active := s.activeSlots(len(cols))
	for i, c := range cols {
		if c != nil {
			ok[i] = true
			active = append(active, int32(i))
		}
	}
	rows, offs := p.rows, p.offsets
	for ci := 0; ci+1 < len(offs) && len(active) > 0; ci++ {
		cluster := rows[offs[ci]:offs[ci+1]]
		for j := 0; j < len(active); {
			i := active[j]
			c := cols[i]
			first := c[cluster[0]]
			violated := false
			for _, row := range cluster[1:] {
				if c[row] != first {
					violated = true
					break
				}
			}
			if violated {
				ok[i] = false
				active[j] = active[len(active)-1]
				active = active[:len(active)-1]
			} else {
				j++
			}
		}
	}
	return ok
}

// ApproxBytes is the single byte-accounting method of a PLI, used by both
// the cache stats surface and the memory governor: the struct itself, four
// bytes per stored row id and offset, and — once materialised — four bytes
// per row for the cached attribute vector. For the flat layout this is exact
// up to the fixed struct overhead. Budgeted caches snapshot the value at Put
// time (see MapCache), so a vector materialised after caching grows the
// process heap but not the cache ledger; the Provider's lattice-walk path
// never materialises vectors on cached PLIs, keeping the ledger truthful.
func (p *PLI) ApproxBytes() int64 {
	// PLI struct: three slice/pointer words of headers plus scalars, rounded.
	const pliStructBytes = 96
	b := pliStructBytes + 4*int64(len(p.rows)+len(p.offsets))
	if p.probeMaterialized() {
		b += 4 * int64(p.nRows)
	}
	return b
}
