// Package pli implements position list indexes (PLIs, also called stripped
// partitions), the data structure underlying UCC and FD validation in DUCC,
// TANE, FUN and MUDS (paper Sec. 2.2/2.3).
//
// A PLI of a column combination X is the list of row-id clusters such that
// all rows of a cluster agree on X; clusters of size one are stripped. An
// empty PLI therefore means X is a unique column combination, and the FD
// X → A holds iff every cluster of X's PLI is value-constant in column A
// (partition refinement, Lemma 1).
package pli

// PLI is a stripped partition of a relation's rows. The zero value is not
// useful; construct PLIs with FromColumn, FromAllRows, Intersect, or
// IntersectColumn.
type PLI struct {
	clusters [][]int32
	nRows    int
}

// FromColumn builds the PLI of a single dictionary-encoded column.
// cardinality is the number of distinct codes (the dictionary size).
func FromColumn(col []int32, cardinality int) *PLI {
	buckets := make([][]int32, cardinality)
	for row, code := range col {
		buckets[code] = append(buckets[code], int32(row))
	}
	p := &PLI{nRows: len(col)}
	for _, b := range buckets {
		if len(b) >= 2 {
			p.clusters = append(p.clusters, b)
		}
	}
	return p
}

// FromAllRows builds the PLI of the empty column combination: a single
// cluster containing every row (every row agrees on zero columns).
func FromAllRows(nRows int) *PLI {
	p := &PLI{nRows: nRows}
	if nRows >= 2 {
		all := make([]int32, nRows)
		for i := range all {
			all[i] = int32(i)
		}
		p.clusters = [][]int32{all}
	}
	return p
}

// FromClusters builds a PLI from explicit clusters, stripping singletons.
// It is intended for tests and for reconstructing PLIs from raw partitions.
func FromClusters(nRows int, clusters [][]int32) *PLI {
	p := &PLI{nRows: nRows}
	for _, c := range clusters {
		if len(c) >= 2 {
			p.clusters = append(p.clusters, append([]int32(nil), c...))
		}
	}
	return p
}

// NumRows returns the row count of the relation the PLI belongs to.
func (p *PLI) NumRows() int { return p.nRows }

// NumClusters returns the number of (stripped) clusters.
func (p *PLI) NumClusters() int { return len(p.clusters) }

// Clusters exposes the clusters (not a copy; callers must not modify).
func (p *PLI) Clusters() [][]int32 { return p.clusters }

// IsUnique reports whether the underlying column combination is a UCC:
// a stripped partition with no clusters has only unique values.
func (p *PLI) IsUnique() bool { return len(p.clusters) == 0 }

// ErrorSum returns sum(|cluster| - 1), the number of "redundant" rows. Two
// PLIs over the same rows have equal distinct counts iff their error sums are
// equal, which is how partition refinement (Lemma 1) is tested cheaply.
func (p *PLI) ErrorSum() int {
	e := 0
	for _, c := range p.clusters {
		e += len(c) - 1
	}
	return e
}

// DistinctCount returns the number of distinct value combinations, i.e. the
// cardinality |X|_r used by FUN's free-set classification.
func (p *PLI) DistinctCount() int { return p.nRows - p.ErrorSum() }

// Intersect returns the PLI of X ∪ Y given the PLIs of X and Y, using the
// standard probe-table algorithm: rows are keyed by their cluster in p and
// grouped within the clusters of q.
func (p *PLI) Intersect(q *PLI) *PLI {
	probe := make([]int32, p.nRows)
	for i := range probe {
		probe[i] = -1
	}
	for ci, cluster := range p.clusters {
		for _, row := range cluster {
			probe[row] = int32(ci)
		}
	}
	out := &PLI{nRows: p.nRows}
	groups := make(map[int32][]int32)
	for _, cluster := range q.clusters {
		for _, row := range cluster {
			pc := probe[row]
			if pc < 0 {
				continue // singleton in p → singleton in the intersection
			}
			groups[pc] = append(groups[pc], row)
		}
		for pc, g := range groups {
			if len(g) >= 2 {
				out.clusters = append(out.clusters, append([]int32(nil), g...))
			}
			delete(groups, pc)
		}
	}
	return out
}

// IntersectColumn returns the PLI of X ∪ {A} given the PLI of X and the
// dictionary-encoded column A. This avoids materialising A's PLI and is the
// intersection flavour used on lattice walks.
func (p *PLI) IntersectColumn(col []int32) *PLI {
	out := &PLI{nRows: p.nRows}
	groups := make(map[int32][]int32)
	for _, cluster := range p.clusters {
		for _, row := range cluster {
			code := col[row]
			groups[code] = append(groups[code], row)
		}
		for code, g := range groups {
			if len(g) >= 2 {
				out.clusters = append(out.clusters, append([]int32(nil), g...))
			}
			delete(groups, code)
		}
	}
	return out
}

// Refines reports whether the FD X → A holds given the PLI of X and the
// dictionary-encoded column A: every cluster of X must be constant in A
// (Lemma 1: |X| = |X ∪ {A}|). It exits on the first violating cluster.
func (p *PLI) Refines(col []int32) bool {
	for _, cluster := range p.clusters {
		first := col[cluster[0]]
		for _, row := range cluster[1:] {
			if col[row] != first {
				return false
			}
		}
	}
	return true
}

// RefinesEach checks the FDs X → A for several candidate columns in a single
// pass over the clusters. cols[i] may be nil to skip candidate i; the result
// slice reports, per candidate, whether the refinement holds. Candidates that
// fail early are not inspected again.
func (p *PLI) RefinesEach(cols [][]int32) []bool {
	ok := make([]bool, len(cols))
	remaining := 0
	for i, c := range cols {
		if c != nil {
			ok[i] = true
			remaining++
		}
	}
	if remaining == 0 {
		return ok
	}
	for _, cluster := range p.clusters {
		for i, c := range cols {
			if c == nil || !ok[i] {
				continue
			}
			first := c[cluster[0]]
			for _, row := range cluster[1:] {
				if c[row] != first {
					ok[i] = false
					remaining--
					break
				}
			}
		}
		if remaining == 0 {
			break
		}
	}
	return ok
}

// MemoryFootprint returns an approximate number of row ids stored, used by
// the cache to bound memory.
func (p *PLI) MemoryFootprint() int {
	n := 0
	for _, c := range p.clusters {
		n += len(c)
	}
	return n
}

// ApproxBytes estimates the heap bytes held by the PLI: 4 bytes per stored
// row id, a slice header per cluster, and the struct itself. The memory
// governor's byte budget accounts cached PLIs with this estimate.
func (p *PLI) ApproxBytes() int64 {
	const (
		structOverhead = 48 // PLI struct + outer slice header
		clusterHeader  = 24 // one slice header per cluster
	)
	return structOverhead + int64(len(p.clusters))*clusterHeader + 4*int64(p.MemoryFootprint())
}
