package pli

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

// canonicalClusters returns a PLI's clusters with rows sorted within each
// cluster and clusters sorted by first row — the order-independent view that
// every PLI consumer (uniqueness, refinement, error sums) observes.
func canonicalClusters(p *PLI) [][]int32 {
	var out [][]int32
	p.ForEachCluster(func(c []int32) {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		out = append(out, cc)
	})
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func appendTestRelation(t *testing.T, rng *rand.Rand, rows, cols int, card int) *relation.Relation {
	t.Helper()
	names := make([]string, cols)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(card+c))
		}
		data[i] = row
	}
	rel, err := relation.New("t", names, data)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// fromScratch builds the PLI of cols over rel by chaining intersections.
func fromScratch(rel *relation.Relation, cols []int) *PLI {
	cur := FromColumn(rel.Column(cols[0]), rel.Cardinality(cols[0]))
	for _, c := range cols[1:] {
		cur = cur.IntersectColumn(rel.Column(c), rel.Cardinality(c))
	}
	return cur
}

// TestAppendRowsMergeEquivalence drives the merge path over random relations
// and batches: for every multi-column set, the patched PLI must hold exactly
// the clusters of a from-scratch build on the extended relation.
func TestAppendRowsMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nCols := 2 + rng.Intn(3)
		rel := appendTestRelation(t, rng, 20+rng.Intn(60), nCols, 2+rng.Intn(6))
		oldRows := rel.NumRows()

		// Build old PLIs for every 2+-column subset before the append.
		var subsets [][]int
		for s := 3; s < 1<<nCols; s++ {
			var set bitset.Set
			var ids []int
			for c := 0; c < nCols; c++ {
				if s&(1<<c) != 0 {
					set = set.With(c)
					ids = append(ids, c)
				}
			}
			if set.Len() >= 2 {
				subsets = append(subsets, ids)
			}
		}
		old := make(map[string]*PLI, len(subsets))
		for _, ids := range subsets {
			old[fmt.Sprint(ids)] = fromScratch(rel, ids)
		}

		// Append a batch mixing repeats of existing combos and fresh values.
		batch := make([][]string, 3+rng.Intn(10))
		for i := range batch {
			if rng.Intn(2) == 0 && oldRows > 0 {
				batch[i] = rel.Row(rng.Intn(oldRows))
				if rng.Intn(2) == 0 {
					batch[i] = append([]string(nil), batch[i]...)
					batch[i][rng.Intn(nCols)] = fmt.Sprintf("n%d", rng.Intn(4))
				}
			} else {
				row := make([]string, nCols)
				for c := range row {
					row[c] = fmt.Sprintf("n%d", rng.Intn(4))
				}
				batch[i] = row
			}
		}
		if _, err := rel.Append(batch); err != nil {
			t.Fatal(err)
		}

		singles := make([]*PLI, nCols)
		for c := 0; c < nCols; c++ {
			singles[c] = FromColumn(rel.Column(c), rel.Cardinality(c))
		}
		a := NewAppender(rel, oldRows, singles)
		s := NewScratch()
		s.Ensure(rel.MaxCardinality())
		for _, ids := range subsets {
			got := old[fmt.Sprint(ids)].AppendRows(a, ids, s)
			want := fromScratch(rel, ids)
			if got.NumRows() != want.NumRows() {
				t.Fatalf("trial %d set %v: nRows %d want %d", trial, ids, got.NumRows(), want.NumRows())
			}
			if !reflect.DeepEqual(canonicalClusters(got), canonicalClusters(want)) {
				t.Fatalf("trial %d set %v: clusters differ\ngot  %v\nwant %v",
					trial, ids, canonicalClusters(got), canonicalClusters(want))
			}
			if got.ErrorSum() != want.ErrorSum() || got.DistinctCount() != want.DistinctCount() {
				t.Fatalf("trial %d set %v: stats differ", trial, ids)
			}
		}
	}
}

// TestAppendRowsRebuildFallback pins the fallback path to the same answer as
// the merge path.
func TestAppendRowsRebuildFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := appendTestRelation(t, rng, 50, 3, 3)
	oldRows := rel.NumRows()
	ids := []int{0, 1, 2}
	oldPLI := fromScratch(rel, ids)
	batch := make([][]string, 8)
	for i := range batch {
		batch[i] = []string{"a", "b", fmt.Sprintf("x%d", i%3)}
	}
	if _, err := rel.Append(batch); err != nil {
		t.Fatal(err)
	}
	singles := make([]*PLI, 3)
	for c := range singles {
		singles[c] = FromColumn(rel.Column(c), rel.Cardinality(c))
	}
	a := NewAppender(rel, oldRows, singles)
	s := NewScratch()
	s.Ensure(rel.MaxCardinality())
	merged := oldPLI.AppendRows(a, ids, s)
	rebuilt := a.rebuild(ids, s)
	if !reflect.DeepEqual(canonicalClusters(merged), canonicalClusters(rebuilt)) {
		t.Fatalf("merge and rebuild disagree:\nmerge   %v\nrebuild %v",
			canonicalClusters(merged), canonicalClusters(rebuilt))
	}
}

// TestProviderRefresh pins the full provider patch: after an append and a
// Refresh, every previously cached set answers exactly like a fresh provider
// over the extended relation, and the cache byte ledger matches the patched
// contents.
func TestProviderRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cacheKind := range []string{"map", "sync", "sharded"} {
		t.Run(cacheKind, func(t *testing.T) {
			rel := appendTestRelation(t, rng, 80, 4, 4)
			var cache Cache
			switch cacheKind {
			case "map":
				cache = NewMapCache(0)
			case "sync":
				cache = NewSyncCache(nil)
			default:
				cache = NewShardedCache(4, 0)
			}
			p := NewProviderWithCache(rel, cache)
			sets := []bitset.Set{
				bitset.Single(0).With(1),
				bitset.Single(1).With(2).With(3),
				bitset.Single(0).With(2),
				bitset.Single(0).With(1).With(2).With(3),
			}
			for _, s := range sets {
				p.Get(s)
			}
			oldRows := rel.NumRows()
			batch := [][]string{
				{"v0", "v1", "v2", "fresh"},
				{"v0", "v1", "v2", "fresh"},
				{"z", "z", "z", "z"},
			}
			if _, err := rel.Append(batch); err != nil {
				t.Fatal(err)
			}
			p.Refresh(oldRows)

			fresh := NewProvider(rel, 0)
			for _, s := range sets {
				if !reflect.DeepEqual(canonicalClusters(p.Get(s)), canonicalClusters(fresh.Get(s))) {
					t.Fatalf("set %v: patched provider disagrees with fresh provider", s)
				}
			}
			for c := 0; c < rel.NumColumns(); c++ {
				if !reflect.DeepEqual(canonicalClusters(p.SingleColumn(c)), canonicalClusters(fresh.SingleColumn(c))) {
					t.Fatalf("single column %d not rebuilt", c)
				}
			}
			// The byte ledger must equal a re-summation of the cached PLIs.
			var want int64
			cache.ForEach(func(_ bitset.Set, q *PLI) bool {
				want += q.ApproxBytes()
				return true
			})
			if got := cache.Bytes(); got != want {
				t.Fatalf("cache bytes ledger %d, recomputed %d", got, want)
			}
		})
	}
}
