package pli

import "sync"

// Scratch is a reusable grouping arena for PLI construction and
// intersection. It replaces the per-call map[int32][]int32 grouping of the
// pre-flat implementation: counts and starts are dense arrays indexed by
// grouping key (dictionary code or probe cluster ID), touched remembers which
// keys a cluster dirtied so resets cost O(cluster), not O(key range). In the
// steady state an intersection therefore performs zero map allocations and
// only the output PLI's own arrays are allocated.
//
// Ownership contract: a Scratch is NOT safe for concurrent use. There are
// two sanctioned ways to hold one:
//
//   - Worker-slot ownership: code fanning intersections out across
//     internal/parallel owns one Scratch per worker slot and passes it to the
//     *Scratch method flavours (FromColumnScratch, IntersectScratch,
//     IntersectColumnScratch). parallel.ForWorker guarantees a slot is never
//     run by two goroutines at once, so slot-indexed scratches need no locks.
//     The Provider's single-column build uses this path.
//   - Pool fallback: the plain FromColumn/Intersect/IntersectColumn methods
//     borrow a Scratch from a package-level sync.Pool for the duration of the
//     call. This is the path for sequential callers and for code that reaches
//     intersections through Provider.Get from arbitrary goroutines.
//
// Invariant between calls: counts is all-zero (each call resets exactly the
// entries it dirtied), so a pooled Scratch never leaks state across users.
type Scratch struct {
	counts  []int32 // per-key occurrence counts within the current cluster
	starts  []int32 // per-key write cursors into the output row array
	touched []int32 // keys dirtied by the current cluster (bounds the reset)
}

// NewScratch returns an empty Scratch; its arenas grow on demand.
func NewScratch() *Scratch { return &Scratch{} }

// ensure grows the arenas to cover keys in [0, keyRange). Newly allocated
// counts are zero, preserving the all-zero invariant.
func (s *Scratch) ensure(keyRange int) {
	if len(s.counts) < keyRange {
		s.counts = make([]int32, keyRange)
		s.starts = make([]int32, keyRange)
	}
}

// Ensure pre-sizes the arenas for keys in [0, keyRange), so a worker-slot
// Scratch sized once to the relation's maximum cardinality never regrows.
func (s *Scratch) Ensure(keyRange int) { s.ensure(keyRange) }

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }
