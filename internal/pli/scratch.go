package pli

import "sync"

// Scratch is a reusable grouping arena for PLI construction and
// intersection. It replaces the per-call map[int32][]int32 grouping of the
// pre-flat implementation: counts and starts are dense arrays indexed by
// grouping key (dictionary code or probe cluster ID), touched remembers which
// keys a cluster dirtied so resets cost O(cluster), not O(key range). In the
// steady state an intersection therefore performs zero map allocations and
// only the output PLI's own arrays are allocated.
//
// Ownership contract: a Scratch is NOT safe for concurrent use. There are
// two sanctioned ways to hold one:
//
//   - Worker-slot ownership: code fanning intersections out across
//     internal/parallel owns one Scratch per worker slot and passes it to the
//     *Scratch method flavours (FromColumnScratch, IntersectScratch,
//     IntersectColumnScratch). parallel.ForWorker guarantees a slot is never
//     run by two goroutines at once, so slot-indexed scratches need no locks.
//     The Provider's single-column build uses this path.
//   - Pool fallback: the plain FromColumn/Intersect/IntersectColumn methods
//     borrow a Scratch from a package-level sync.Pool for the duration of the
//     call. This is the path for sequential callers and for code that reaches
//     intersections through Provider.Get from arbitrary goroutines.
//
// Invariant between calls: counts is all-zero (each call resets exactly the
// entries it dirtied), so a pooled Scratch never leaks state across users.
type Scratch struct {
	counts  []int32 // per-key occurrence counts within the current cluster
	starts  []int32 // per-key write cursors into the output row array
	touched []int32 // keys dirtied by the current cluster (bounds the reset)

	// Fold buffers of the non-materializing check kernels (see check.go):
	// two ping-pong row arrays plus matching group-offset arrays, sized to
	// the largest cluster of the base PLI. The kernels refine one cluster at
	// a time, so the buffers never need to hold more than one cluster.
	foldRows [2][]int32
	foldOffs [2][]int32

	// Column-slot buffers of the Provider fast paths: key columns and
	// cardinalities of the fold plan, candidate RHS columns and their
	// verdicts for CheckFDs, the compact active list of CheckRefinesMany,
	// and the fold-plan column indexes. They live on the Scratch so the
	// validation hot loops (TANE's per-level sweep, the DUCC walk) allocate
	// nothing per check; the usual Scratch ownership contract applies.
	keyCols  [][]int32
	keyCards []int
	rhsCols  [][]int32
	okBuf    []bool
	active   []int32
	foldCols []int

	// work accumulates the base rows scanned by the check kernels since the
	// caller last reset it. The Provider's adaptive admission reads it after
	// a refuted check: a refutation that had to scan a large share of the
	// base marks a near-boundary set whose materialisation will pay for
	// itself (see Provider.IsUnique).
	work int
}

// NewScratch returns an empty Scratch; its arenas grow on demand.
func NewScratch() *Scratch { return &Scratch{} }

// ensure grows the arenas to cover keys in [0, keyRange). Newly allocated
// counts are zero, preserving the all-zero invariant.
func (s *Scratch) ensure(keyRange int) {
	if len(s.counts) < keyRange {
		s.counts = make([]int32, keyRange)
		s.starts = make([]int32, keyRange)
	}
}

// Ensure pre-sizes the arenas for keys in [0, keyRange), so a worker-slot
// Scratch sized once to the relation's maximum cardinality never regrows.
func (s *Scratch) Ensure(keyRange int) { s.ensure(keyRange) }

// ensureFold grows the ping-pong fold buffers to hold one cluster of up to
// maxCluster rows. A generation of groups over n rows has at most n/2
// surviving groups (every group has size >= 2), bounding the offset arrays.
func (s *Scratch) ensureFold(maxCluster int) {
	if len(s.foldRows[0]) >= maxCluster {
		return
	}
	for i := range s.foldRows {
		s.foldRows[i] = make([]int32, maxCluster)
		s.foldOffs[i] = make([]int32, 0, maxCluster/2+2)
	}
}

// keySlots returns n reusable (column, cardinality) slots for fold keys.
func (s *Scratch) keySlots(n int) ([][]int32, []int) {
	if cap(s.keyCols) < n {
		s.keyCols = make([][]int32, n)
		s.keyCards = make([]int, n)
	}
	return s.keyCols[:n], s.keyCards[:n]
}

// rhsSlots returns n reusable candidate-column slots plus a verdict buffer.
func (s *Scratch) rhsSlots(n int) ([][]int32, []bool) {
	if cap(s.rhsCols) < n {
		s.rhsCols = make([][]int32, n)
	}
	if cap(s.okBuf) < n {
		s.okBuf = make([]bool, n)
	}
	return s.rhsCols[:n], s.okBuf[:n]
}

// activeSlots returns an n-capacity buffer for CheckRefinesMany's compact
// active-candidate list.
func (s *Scratch) activeSlots(n int) []int32 {
	if cap(s.active) < n {
		s.active = make([]int32, n)
	}
	return s.active[:0]
}

// foldColSlots returns a zero-length buffer for fold-plan column indexes.
func (s *Scratch) foldColSlots(n int) []int {
	if cap(s.foldCols) < n {
		s.foldCols = make([]int, 0, n)
	}
	return s.foldCols[:0]
}

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }
