package pli

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

// canon converts a PLI into a canonical form (sorted clusters of sorted rows)
// for comparisons.
func canon(p *PLI) [][]int32 {
	if p.NumClusters() == 0 {
		return nil
	}
	out := make([][]int32, 0, p.NumClusters())
	p.ForEachCluster(func(c []int32) {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		out = append(out, cc)
	})
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// brutePLI computes the stripped partition of column set s by grouping rows
// on their value tuples.
func brutePLI(r *relation.Relation, s bitset.Set) [][]int32 {
	groups := map[string][]int32{}
	for row := 0; row < r.NumRows(); row++ {
		key := ""
		s.ForEach(func(c int) {
			key += fmt.Sprintf("%d|", r.Column(c)[row])
		})
		groups[key] = append(groups[key], int32(row))
	}
	var out [][]int32
	for _, g := range groups {
		if len(g) >= 2 {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func randomRelation(rnd *rand.Rand, maxCols, maxRows, maxCard int) *relation.Relation {
	cols := 1 + rnd.Intn(maxCols)
	rows := 1 + rnd.Intn(maxRows)
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(1 + rnd.Intn(maxCard)))
		}
		data[i] = row
	}
	return relation.MustNew("rand", names, data)
}

func TestFromColumn(t *testing.T) {
	col := []int32{0, 1, 0, 2, 1, 0}
	p := FromColumn(col, 3)
	want := [][]int32{{0, 2, 5}, {1, 4}}
	if got := canon(p); !reflect.DeepEqual(got, want) {
		t.Errorf("clusters = %v, want %v", got, want)
	}
	if p.NumRows() != 6 || p.NumClusters() != 2 {
		t.Error("shape mismatch")
	}
	if p.IsUnique() {
		t.Error("column is not unique")
	}
	if p.ErrorSum() != 3 || p.DistinctCount() != 3 {
		t.Errorf("ErrorSum=%d DistinctCount=%d", p.ErrorSum(), p.DistinctCount())
	}
}

func TestUniqueColumn(t *testing.T) {
	p := FromColumn([]int32{0, 1, 2, 3}, 4)
	if !p.IsUnique() || p.NumClusters() != 0 {
		t.Error("all-distinct column must yield empty stripped partition")
	}
	if p.DistinctCount() != 4 {
		t.Errorf("DistinctCount = %d", p.DistinctCount())
	}
}

func TestFromAllRows(t *testing.T) {
	p := FromAllRows(4)
	if p.NumClusters() != 1 || len(p.Cluster(0)) != 4 {
		t.Errorf("clusters = %v", canon(p))
	}
	if FromAllRows(1).NumClusters() != 0 {
		t.Error("single-row relation: empty set PLI must be stripped empty")
	}
	if FromAllRows(0).NumClusters() != 0 {
		t.Error("empty relation: no clusters")
	}
}

func TestFromClustersStripsSingletons(t *testing.T) {
	p := FromClusters(5, [][]int32{{0}, {1, 2}, {3}, {4}})
	if p.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", p.NumClusters())
	}
}

func TestIntersectExample(t *testing.T) {
	// Column A: x x y y z ; Column B: 1 1 1 2 2
	a := FromColumn([]int32{0, 0, 1, 1, 2}, 3)
	b := FromColumn([]int32{0, 0, 0, 1, 1}, 2)
	got := canon(a.Intersect(b))
	want := [][]int32{{0, 1}} // only rows 0,1 agree on both A and B
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// IntersectColumn must agree.
	got2 := canon(a.IntersectColumn([]int32{0, 0, 0, 1, 1}, 2))
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("IntersectColumn = %v, want %v", got2, want)
	}
}

func TestRefines(t *testing.T) {
	// A: x x y y ; B: 1 1 2 2 ; C: 1 2 1 2
	a := FromColumn([]int32{0, 0, 1, 1}, 2)
	if !a.Refines([]int32{0, 0, 1, 1}) {
		t.Error("A → B should hold")
	}
	if a.Refines([]int32{0, 1, 0, 1}) {
		t.Error("A → C should not hold")
	}
}

func TestRefinesEach(t *testing.T) {
	a := FromColumn([]int32{0, 0, 1, 1}, 2)
	cols := [][]int32{
		{0, 0, 1, 1}, // holds
		nil,          // skipped
		{0, 1, 0, 1}, // fails
	}
	got := a.RefinesEach(cols)
	want := []bool{true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RefinesEach = %v, want %v", got, want)
	}
	if got := a.RefinesEach([][]int32{nil}); got[0] {
		t.Error("nil-only candidates must return false")
	}
}

func TestFromClustersRejectsOutOfRangeRows(t *testing.T) {
	for _, bad := range [][][]int32{
		{{0, 6}},  // row id == nRows
		{{-1, 1}}, // negative row id
		{{0, 1}, {2, 99}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromClusters(6, %v) did not panic", bad)
				}
			}()
			FromClusters(6, bad)
		}()
	}
	// In-range ids build fine and count stored rows correctly.
	p := FromClusters(6, [][]int32{{0, 1, 2}, {3, 4}})
	if stored := p.ErrorSum() + p.NumClusters(); stored != 5 {
		t.Errorf("stored rows = %d, want 5", stored)
	}
}

func TestClusterIter(t *testing.T) {
	p := FromColumn([]int32{0, 1, 0, 2, 1, 0}, 3)
	var got [][]int32
	for it := p.Iter(); ; {
		c, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, append([]int32(nil), c...))
	}
	want := canon(p)
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("iterator clusters = %v, want %v", got, want)
	}
	if n := p.NumClusters(); n != 2 {
		t.Errorf("NumClusters = %d, want 2", n)
	}
}

func TestProbeVector(t *testing.T) {
	p := FromColumn([]int32{0, 1, 0, 2, 1, 0}, 3)
	probe := p.ProbeVector()
	want := []int32{0, 1, 0, -1, 1, 0} // cluster 0 = {0,2,5}, cluster 1 = {1,4}, row 3 singleton
	if !reflect.DeepEqual(probe, want) {
		t.Errorf("ProbeVector = %v, want %v", probe, want)
	}
	// The vector is cached: a second call returns the same backing array.
	if &probe[0] != &p.ProbeVector()[0] {
		t.Error("ProbeVector rebuilt instead of cached")
	}
}

// Property: Intersect agrees with the brute-force partition of the union and
// is commutative; IntersectColumn agrees with Intersect.
func TestQuickIntersectCorrect(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRelation(rnd, 4, 40, 6))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(r *relation.Relation, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := r.NumColumns()
		a := bitset.Single(rnd.Intn(n))
		b := bitset.Single(rnd.Intn(n))
		p := NewProvider(r, 0)
		pa, pb := p.Get(a), p.Get(b)
		inter := pa.Intersect(pb)
		if !reflect.DeepEqual(canon(inter), brutePLI(r, a.Union(b))) {
			return false
		}
		if !reflect.DeepEqual(canon(pb.Intersect(pa)), canon(inter)) {
			return false
		}
		viaCol := pa.IntersectColumn(r.Column(b.First()), r.Cardinality(b.First()))
		return reflect.DeepEqual(canon(viaCol), canon(inter))
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the provider's Get agrees with the brute-force partition for
// arbitrary column sets, however the lookups are interleaved.
func TestQuickProviderCorrect(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRelation(rnd, 5, 30, 4))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(r *relation.Relation, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := NewProvider(r, 8) // tiny cache to exercise eviction
		for i := 0; i < 20; i++ {
			var s bitset.Set
			for c := 0; c < r.NumColumns(); c++ {
				if rnd.Intn(2) == 0 {
					s = s.With(c)
				}
			}
			if !reflect.DeepEqual(canon(p.Get(s)), brutePLI(r, s)) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: refinement test agrees with the cardinality criterion of Lemma 1:
// X → A ⇔ |X| = |X ∪ {A}|.
func TestQuickLemma1(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, rnd *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRelation(rnd, 5, 30, 3))
			vals[1] = reflect.ValueOf(rnd.Int63())
		},
	}
	if err := quick.Check(func(r *relation.Relation, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := NewProvider(r, 0)
		n := r.NumColumns()
		var lhs bitset.Set
		for c := 0; c < n; c++ {
			if rnd.Intn(2) == 0 {
				lhs = lhs.With(c)
			}
		}
		rhs := rnd.Intn(n)
		if lhs.Has(rhs) {
			lhs = lhs.Without(rhs)
		}
		refines := p.Get(lhs).Refines(r.Column(rhs))
		byCard := p.Cardinality(lhs) == p.Cardinality(lhs.With(rhs))
		return refines == byCard
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestProviderBasics(t *testing.T) {
	r := relation.MustNew("t", []string{"A", "B", "C"}, [][]string{
		{"x", "1", "p"},
		{"x", "1", "q"},
		{"y", "2", "p"},
		{"y", "3", "q"},
	})
	p := NewProvider(r, 0)
	if p.Relation() != r {
		t.Error("Relation accessor mismatch")
	}
	if p.SingleColumn(0).NumClusters() != 2 {
		t.Error("column A has two clusters")
	}
	if !p.IsUnique(bitset.New(0, 2)) {
		t.Error("AC should be unique")
	}
	if p.IsUnique(bitset.New(0)) {
		t.Error("A is not unique")
	}
	if p.IsUnique(bitset.New()) {
		t.Error("empty set is not unique on a 4-row relation")
	}
	if !p.CheckFD(bitset.New(1), 0) {
		t.Error("B → A should hold")
	}
	if p.CheckFD(bitset.New(0), 1) {
		t.Error("A → B should not hold")
	}
	if !p.CheckFD(bitset.New(0, 1), 0) {
		t.Error("trivial FD must hold")
	}
	got := p.CheckFDs(bitset.New(1), bitset.New(0, 1, 2))
	if got != bitset.New(0, 1) { // B→A holds, B→B trivial, B→C fails
		t.Errorf("CheckFDs = %v", got)
	}
}

func TestProviderEmptySetCardinality(t *testing.T) {
	r := relation.MustNew("t", []string{"A"}, [][]string{{"x"}, {"y"}})
	p := NewProvider(r, 0)
	if p.Cardinality(bitset.New()) != 1 {
		t.Errorf("empty set cardinality = %d, want 1", p.Cardinality(bitset.New()))
	}
}

func TestProviderCacheEviction(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	r := randomRelation(rnd, 6, 50, 3)
	for r.NumColumns() < 6 {
		r = randomRelation(rnd, 6, 50, 3)
	}
	p := NewProvider(r, 4)
	// Touch many sets; cache must stay bounded and results stay correct.
	sets := []bitset.Set{}
	for c1 := 0; c1 < 6; c1++ {
		for c2 := c1 + 1; c2 < 6; c2++ {
			sets = append(sets, bitset.New(c1, c2))
		}
	}
	for _, s := range sets {
		p.Get(s)
	}
	if p.CachedEntries() > 4 {
		t.Errorf("cache grew to %d entries, cap 4", p.CachedEntries())
	}
	for _, s := range sets {
		if !reflect.DeepEqual(canon(p.Get(s)), brutePLI(r, s)) {
			t.Errorf("post-eviction PLI wrong for %v", s)
		}
	}
}
