package pli

import (
	"sync"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

func cacheTestRelation(t *testing.T) *relation.Relation {
	t.Helper()
	rows := [][]string{
		{"a", "1", "x", "p"},
		{"a", "2", "y", "p"},
		{"b", "1", "x", "q"},
		{"b", "2", "y", "q"},
		{"c", "3", "x", "p"},
	}
	r, err := relation.New("cache", []string{"A", "B", "C", "D"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMapCacheCounters(t *testing.T) {
	c := NewMapCache(4)
	s := bitset.New(0, 1)
	if _, ok := c.Get(s); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(s, FromAllRows(3))
	if _, ok := c.Get(s); !ok {
		t.Fatal("expected hit after Put")
	}
	hits, misses, evictions := c.Counters()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("counters = %d/%d/%d, want 1/1/0", hits, misses, evictions)
	}
}

func TestMapCacheEviction(t *testing.T) {
	c := NewMapCache(4)
	for i := 0; i < 4; i++ {
		c.Put(bitset.New(i, i+1), FromAllRows(2))
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// The fifth Put drops half the entries before inserting.
	c.Put(bitset.New(10, 11), FromAllRows(2))
	if c.Len() != 3 {
		t.Fatalf("Len after eviction = %d, want 3", c.Len())
	}
	if _, _, evictions := c.Counters(); evictions != 2 {
		t.Fatalf("evictions = %d, want 2", evictions)
	}
}

func TestMapCacheDefaultBound(t *testing.T) {
	if c := NewMapCache(0); c.maxEntries != DefaultCacheEntries {
		t.Fatalf("maxEntries = %d, want %d", c.maxEntries, DefaultCacheEntries)
	}
}

// TestProviderCacheStats checks that the snapshot agrees with the Provider's
// own counters: Entries matches CachedEntries, Intersections matches the
// atomic counter, and repeated Gets turn into hits.
func TestProviderCacheStats(t *testing.T) {
	p := NewProvider(cacheTestRelation(t), 8)
	s := bitset.New(0, 1, 2)
	p.Get(s)
	first := p.CacheStats()
	if first.Intersections != p.IntersectionCount() {
		t.Errorf("Intersections = %d, want %d", first.Intersections, p.IntersectionCount())
	}
	if first.Entries != p.CachedEntries() {
		t.Errorf("Entries = %d, want %d", first.Entries, p.CachedEntries())
	}
	if first.Hits != 0 || first.Misses == 0 {
		t.Errorf("first Get of %v must only miss, got %+v", s, first)
	}
	p.Get(s)
	second := p.CacheStats()
	if second.Hits != first.Hits+1 {
		t.Errorf("repeated Get: hits %d, want %d", second.Hits, first.Hits+1)
	}
	if second.Intersections != first.Intersections {
		t.Errorf("repeated Get recomputed: %d intersections, want %d", second.Intersections, first.Intersections)
	}
}

// TestProviderWithNilCache verifies the default-cache fallback.
func TestProviderWithNilCache(t *testing.T) {
	p := NewProviderWithCache(cacheTestRelation(t), nil)
	if !p.IsUnique(bitset.New(0, 1)) {
		t.Error("A,B must be unique")
	}
}

// TestSyncCacheConcurrent hammers a SyncCache from several goroutines; run
// under -race this proves the wrapper makes any inner Cache shareable.
func TestSyncCacheConcurrent(t *testing.T) {
	c := NewSyncCache(NewMapCache(16))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := bitset.New(i%6, i%6+1+g%3)
				if _, ok := c.Get(s); !ok {
					c.Put(s, FromAllRows(2))
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := c.Counters()
	if hits+misses != 8*200 {
		t.Fatalf("probes = %d, want %d", hits+misses, 8*200)
	}
}

func TestSyncCacheNilInner(t *testing.T) {
	c := NewSyncCache(nil)
	c.Put(bitset.New(0, 1), FromAllRows(2))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestShardedCachePowerOfTwoShards(t *testing.T) {
	for want, counts := range map[int][]int{
		1: {1}, 2: {2}, 4: {3, 4}, 8: {5, 6, 7, 8}, 16: {9, 15, 16},
	} {
		for _, n := range counts {
			if got := NewShardedCache(n, 0).NumShards(); got != want {
				t.Errorf("NewShardedCache(%d): %d shards, want %d", n, got, want)
			}
		}
	}
}

// TestShardedCacheBasics checks the Cache contract: probes route to a stable
// shard, counters aggregate, and the total bound is split across shards.
func TestShardedCacheBasics(t *testing.T) {
	c := NewShardedCache(4, 64)
	s := bitset.New(0, 1)
	if _, ok := c.Get(s); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(s, FromAllRows(3))
	if got, ok := c.Get(s); !ok || got == nil {
		t.Fatal("expected hit after Put")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	hits, misses, evictions := c.Counters()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("counters = %d/%d/%d, want 1/1/0", hits, misses, evictions)
	}
}

// TestShardedCacheConcurrent hammers a ShardedCache from several goroutines;
// run under -race this proves a Provider backed by it is shareable.
func TestShardedCacheConcurrent(t *testing.T) {
	c := NewShardedCache(8, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := bitset.New(i%6, i%6+1+g%3)
				if _, ok := c.Get(s); !ok {
					c.Put(s, FromAllRows(2))
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := c.Counters()
	if hits+misses != 8*200 {
		t.Fatalf("probes = %d, want %d", hits+misses, 8*200)
	}
}

// TestConcurrentProviderSharedGets shares one concurrent Provider across
// goroutines probing overlapping column combinations; under -race this
// exercises the Provider's documented concurrency contract end to end
// (sharded cache puts, atomic intersection counting).
func TestConcurrentProviderSharedGets(t *testing.T) {
	rel := cacheTestRelation(t)
	p := NewConcurrentProvider(rel, 0, 8)
	want := NewProvider(rel, 0)
	combos := []bitset.Set{
		bitset.New(0, 1), bitset.New(0, 2), bitset.New(1, 2),
		bitset.New(0, 1, 2), bitset.New(1, 2, 3), bitset.New(0, 1, 2, 3),
	}
	// The sequential reference provider is not shareable; resolve the
	// expected distinct counts before spawning the workers.
	wantCounts := make([]int, len(combos))
	for i, s := range combos {
		wantCounts[i] = want.Get(s).DistinctCount()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := combos[i%len(combos)]
				if got := p.Get(s).DistinctCount(); got != wantCounts[i%len(combos)] {
					t.Errorf("Get(%v).DistinctCount = %d, want %d", s, got, wantCounts[i%len(combos)])
					return
				}
			}
		}()
	}
	wg.Wait()
	if p.IntersectionCount() == 0 {
		t.Error("no intersections recorded")
	}
}
