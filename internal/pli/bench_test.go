package pli

import (
	"fmt"
	"math/rand"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

func benchRelation(rows, cols, card int) *relation.Relation {
	rnd := rand.New(rand.NewSource(1))
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(card))
		}
		data[i] = row
	}
	return relation.MustNew("bench", names, data)
}

// BenchmarkIntersect measures the probe-table PLI intersection, the
// operation the paper identifies as the primary cost of FD checks.
func BenchmarkIntersect(b *testing.B) {
	rel := benchRelation(50000, 3, 100)
	a := FromColumn(rel.Column(0), rel.Cardinality(0))
	c := FromColumn(rel.Column(1), rel.Cardinality(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Intersect(c).NumRows() != rel.NumRows() {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkIntersectColumn measures the column-variant intersection used on
// lattice walks.
func BenchmarkIntersectColumn(b *testing.B) {
	rel := benchRelation(50000, 3, 100)
	a := FromColumn(rel.Column(0), rel.Cardinality(0))
	col := rel.Column(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.IntersectColumn(col).NumRows() != rel.NumRows() {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkRefines measures the partition-refinement FD check (Lemma 1).
func BenchmarkRefines(b *testing.B) {
	rel := benchRelation(50000, 3, 100)
	a := FromColumn(rel.Column(0), rel.Cardinality(0))
	col := rel.Column(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Refines(col)
	}
}

// BenchmarkProviderGet measures cached multi-column PLI retrieval.
func BenchmarkProviderGet(b *testing.B) {
	rel := benchRelation(20000, 6, 50)
	p := NewProvider(rel, 0)
	sets := []bitset.Set{
		bitset.New(0, 1), bitset.New(1, 2, 3), bitset.New(0, 2, 4), bitset.New(3, 4, 5),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(sets[i%len(sets)])
	}
}
