package pli

import (
	"fmt"
	"math/rand"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

func benchRelation(rows, cols, card int) *relation.Relation {
	rnd := rand.New(rand.NewSource(1))
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(card))
		}
		data[i] = row
	}
	return relation.MustNew("bench", names, data)
}

// benchSizes are the row counts of the intersection micro-benchmarks; they
// match the sizes recorded in BENCH_pli.json.
var benchSizes = []int{10000, 100000}

// BenchmarkIntersect measures the probe-table PLI intersection, the
// operation the paper identifies as the primary cost of FD checks. In the
// steady state the left operand's attribute vector is cached, grouping runs
// on pooled scratch arenas, and the only allocations are the result PLI's
// own arrays — ReportAllocs makes a map-grouping regression show up as an
// allocs/op explosion.
func BenchmarkIntersect(b *testing.B) {
	for _, rows := range benchSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rel := benchRelation(rows, 3, 100)
			a := FromColumn(rel.Column(0), rel.Cardinality(0))
			c := FromColumn(rel.Column(1), rel.Cardinality(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if a.Intersect(c).NumRows() != rel.NumRows() {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkIntersectColumn measures the column-variant intersection used on
// lattice walks.
func BenchmarkIntersectColumn(b *testing.B) {
	for _, rows := range benchSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rel := benchRelation(rows, 3, 100)
			a := FromColumn(rel.Column(0), rel.Cardinality(0))
			col, card := rel.Column(1), rel.Cardinality(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if a.IntersectColumn(col, card).NumRows() != rel.NumRows() {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkFromColumn measures the flat single-column PLI build.
func BenchmarkFromColumn(b *testing.B) {
	for _, rows := range benchSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rel := benchRelation(rows, 3, 100)
			col, card := rel.Column(0), rel.Cardinality(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FromColumn(col, card)
			}
		})
	}
}

// BenchmarkRefines measures the partition-refinement FD check (Lemma 1).
func BenchmarkRefines(b *testing.B) {
	rel := benchRelation(50000, 3, 100)
	a := FromColumn(rel.Column(0), rel.Cardinality(0))
	col := rel.Column(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Refines(col)
	}
}

// BenchmarkProviderGet measures cached multi-column PLI retrieval.
func BenchmarkProviderGet(b *testing.B) {
	rel := benchRelation(20000, 6, 50)
	p := NewProvider(rel, 0)
	sets := []bitset.Set{
		bitset.New(0, 1), bitset.New(1, 2, 3), bitset.New(0, 2, 4), bitset.New(3, 4, 5),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(sets[i%len(sets)])
	}
}
