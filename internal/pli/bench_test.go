package pli

import (
	"fmt"
	"math/rand"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

func benchRelation(rows, cols, card int) *relation.Relation {
	rnd := rand.New(rand.NewSource(1))
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(card))
		}
		data[i] = row
	}
	return relation.MustNew("bench", names, data)
}

// benchSizes are the row counts of the intersection micro-benchmarks; they
// match the sizes recorded in BENCH_pli.json.
var benchSizes = []int{10000, 100000}

// BenchmarkIntersect measures the probe-table PLI intersection, the
// operation the paper identifies as the primary cost of FD checks. In the
// steady state the left operand's attribute vector is cached, grouping runs
// on pooled scratch arenas, and the only allocations are the result PLI's
// own arrays — ReportAllocs makes a map-grouping regression show up as an
// allocs/op explosion.
func BenchmarkIntersect(b *testing.B) {
	for _, rows := range benchSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rel := benchRelation(rows, 3, 100)
			a := FromColumn(rel.Column(0), rel.Cardinality(0))
			c := FromColumn(rel.Column(1), rel.Cardinality(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if a.Intersect(c).NumRows() != rel.NumRows() {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkIntersectColumn measures the column-variant intersection used on
// lattice walks.
func BenchmarkIntersectColumn(b *testing.B) {
	for _, rows := range benchSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rel := benchRelation(rows, 3, 100)
			a := FromColumn(rel.Column(0), rel.Cardinality(0))
			col, card := rel.Column(1), rel.Cardinality(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if a.IntersectColumn(col, card).NumRows() != rel.NumRows() {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkFromColumn measures the flat single-column PLI build.
func BenchmarkFromColumn(b *testing.B) {
	for _, rows := range benchSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			rel := benchRelation(rows, 3, 100)
			col, card := rel.Column(0), rel.Cardinality(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FromColumn(col, card)
			}
		})
	}
}

// BenchmarkRefines measures the partition-refinement FD check (Lemma 1).
func BenchmarkRefines(b *testing.B) {
	rel := benchRelation(50000, 3, 100)
	a := FromColumn(rel.Column(0), rel.Cardinality(0))
	col := rel.Column(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Refines(col)
	}
}

// BenchmarkCheckUnique measures the early-exit uniqueness kernel against
// the materializing alternative it replaces (IntersectColumn + IsUnique) on
// the same fold. With a caller-owned Scratch the kernel's steady state is
// zero allocs/op — ReportAllocs turns any regression into a visible number.
func BenchmarkCheckUnique(b *testing.B) {
	for _, rows := range benchSizes {
		rel := benchRelation(rows, 3, 100)
		base := FromColumn(rel.Column(0), rel.Cardinality(0))
		keys := [][]int32{rel.Column(1), rel.Column(2)}
		cards := []int{rel.Cardinality(1), rel.Cardinality(2)}
		sc := NewScratch()
		b.Run(fmt.Sprintf("kernel/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base.CheckUnique(keys, cards, sc)
			}
		})
		b.Run(fmt.Sprintf("materialize/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pli := base
				for k, col := range keys {
					pli = pli.IntersectColumn(col, cards[k])
				}
				_ = pli.IsUnique()
			}
		})
	}
}

// BenchmarkCheckRefines measures the early-exit FD kernel against the
// materializing IntersectColumn + Refines path it replaces.
func BenchmarkCheckRefines(b *testing.B) {
	for _, rows := range benchSizes {
		rel := benchRelation(rows, 4, 100)
		base := FromColumn(rel.Column(0), rel.Cardinality(0))
		keys := [][]int32{rel.Column(1)}
		cards := []int{rel.Cardinality(1)}
		rhs := rel.Column(2)
		sc := NewScratch()
		b.Run(fmt.Sprintf("kernel/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base.CheckRefines(rhs, keys, cards, sc)
			}
		})
		b.Run(fmt.Sprintf("materialize/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base.IntersectColumn(keys[0], cards[0]).Refines(rhs)
			}
		})
	}
}

// BenchmarkCheckRefinesMany measures TANE's batched per-level RHS sweep:
// one fold answering every candidate at once vs materializing the lhs PLI
// and running RefinesEach over it.
func BenchmarkCheckRefinesMany(b *testing.B) {
	rel := benchRelation(50000, 6, 100)
	base := FromColumn(rel.Column(0), rel.Cardinality(0))
	keys := [][]int32{rel.Column(1)}
	cards := []int{rel.Cardinality(1)}
	cands := [][]int32{rel.Column(2), rel.Column(3), rel.Column(4), rel.Column(5)}
	ok := make([]bool, len(cands))
	sc := NewScratch()
	b.Run("kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base.CheckRefinesMany(cands, keys, cards, ok, sc)
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base.IntersectColumn(keys[0], cards[0]).RefinesEach(cands)
		}
	})
}

// BenchmarkProviderIsUnique measures the full provider fast path (plan +
// kernel) on uncached sets, the per-probe cost of a DUCC walk step.
func BenchmarkProviderIsUnique(b *testing.B) {
	rel := benchRelation(20000, 6, 50)
	p := NewProvider(rel, 0)
	sets := []bitset.Set{
		bitset.New(0, 1), bitset.New(1, 2, 3), bitset.New(0, 2, 4), bitset.New(3, 4, 5),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.IsUnique(sets[i%len(sets)])
	}
}

// BenchmarkProviderGet measures cached multi-column PLI retrieval.
func BenchmarkProviderGet(b *testing.B) {
	rel := benchRelation(20000, 6, 50)
	p := NewProvider(rel, 0)
	sets := []bitset.Set{
		bitset.New(0, 1), bitset.New(1, 2, 3), bitset.New(0, 2, 4), bitset.New(3, 4, 5),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(sets[i%len(sets)])
	}
}
