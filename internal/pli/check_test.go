package pli

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"holistic/internal/bitset"
	"holistic/internal/relation"
)

// chainIntersect materialises base ∩ keys[0] ∩ … the reference way, one
// IntersectColumn per key. It is the oracle the check kernels must agree
// with.
func chainIntersect(base *PLI, keys [][]int32, cards []int) *PLI {
	out := base
	for i, col := range keys {
		out = out.IntersectColumn(col, cards[i])
	}
	return out
}

// checkRelation builds a small random relation for kernel tests: nCols
// columns of the given cardinality, plus helpers to slice keys out of it.
func checkRelation(t testing.TB, rows, nCols, card int, seed int64) *relation.Relation {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	names := make([]string, nCols)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	data := make([][]string, rows)
	for r := range data {
		row := make([]string, nCols)
		for c := range row {
			row[c] = fmt.Sprint(rnd.Intn(card))
		}
		data[r] = row
	}
	return relation.MustNew("check", names, data)
}

// refCheckFDs is the materializing reference for Provider.CheckFDs: RHS
// verdicts read directly off the Get-built PLI.
func refCheckFDs(ref *Provider, s bitset.Set, rhs bitset.Set) bitset.Set {
	valid := rhs.Intersect(s)
	pli := ref.Get(s)
	for a := rhs.Diff(s).First(); a >= 0; a = rhs.Diff(s).NextAfter(a) {
		if pli.Refines(ref.Relation().Column(a)) {
			valid = valid.With(a)
		}
	}
	return valid
}

func relKeys(rel *relation.Relation, cols ...int) ([][]int32, []int) {
	keys := make([][]int32, len(cols))
	cards := make([]int, len(cols))
	for i, c := range cols {
		keys[i] = rel.Column(c)
		cards[i] = rel.Cardinality(c)
	}
	return keys, cards
}

// TestCheckKernelsAgainstChain drives every kernel against the materializing
// chain on a grid of shapes, including zero keys, unique bases, and fold
// depths past the ping-pong buffer swap.
func TestCheckKernelsAgainstChain(t *testing.T) {
	shapes := []struct{ rows, nCols, card int }{
		{0, 3, 4}, {1, 3, 4}, {50, 3, 3}, {200, 4, 2},
		{200, 4, 7}, {500, 5, 5}, {300, 5, 17},
	}
	for _, sh := range shapes {
		rel := checkRelation(t, sh.rows, sh.nCols, sh.card, int64(sh.rows*31+sh.nCols))
		base := FromColumn(rel.Column(0), rel.Cardinality(0))
		for depth := 0; depth < sh.nCols; depth++ {
			foldCols := make([]int, 0, depth)
			for c := 1; c <= depth; c++ {
				foldCols = append(foldCols, c)
			}
			keys, cards := relKeys(rel, foldCols...)
			ref := chainIntersect(base, keys, cards)

			if got, want := base.CheckUnique(keys, cards, nil), ref.IsUnique(); got != want {
				t.Errorf("%+v depth %d: CheckUnique = %v, want %v", sh, depth, got, want)
			}
			if got, want := base.CheckErrorSum(keys, cards, nil), ref.ErrorSum(); got != want {
				t.Errorf("%+v depth %d: CheckErrorSum = %d, want %d", sh, depth, got, want)
			}
			for rhs := 0; rhs < sh.nCols; rhs++ {
				col := rel.Column(rhs)
				if got, want := base.CheckRefines(col, keys, cards, nil), ref.Refines(col); got != want {
					t.Errorf("%+v depth %d rhs %d: CheckRefines = %v, want %v", sh, depth, rhs, got, want)
				}
			}
			// Batched flavour, with one slot nil-skipped.
			cands := make([][]int32, sh.nCols)
			for c := range cands {
				cands[c] = rel.Column(c)
			}
			cands[sh.nCols-1] = nil
			ok := make([]bool, len(cands))
			base.CheckRefinesMany(cands, keys, cards, ok, nil)
			if want := ref.RefinesEach(cands); !reflect.DeepEqual(ok, want) {
				t.Errorf("%+v depth %d: CheckRefinesMany = %v, want %v", sh, depth, ok, want)
			}
			// Group enumeration must match the materialised clusters.
			var groups [][]int32
			base.ForEachFoldedGroup(keys, cards, nil, func(g []int32) bool {
				groups = append(groups, append([]int32(nil), g...))
				return true
			})
			var want [][]int32
			ref.ForEachCluster(func(c []int32) {
				want = append(want, append([]int32(nil), c...))
			})
			if !reflect.DeepEqual(groups, want) {
				t.Errorf("%+v depth %d: folded groups diverge (%d vs %d groups)", sh, depth, len(groups), len(want))
			}
		}
	}
}

// TestProviderFastPathsAgainstGet compares every Provider fast path with the
// materializing Get reference over all column subsets of a small relation —
// on the same provider (fast first, then Get, so promotions are in play) and
// across admission states.
func TestProviderFastPathsAgainstGet(t *testing.T) {
	rel := checkRelation(t, 300, 5, 4, 7)
	fast := NewProvider(rel, 0)
	ref := NewProvider(rel, 0)

	n := rel.NumColumns()
	var sets []bitset.Set
	for m := 1; m < 1<<n; m++ {
		var s bitset.Set
		for c := 0; c < n; c++ {
			if m&(1<<c) != 0 {
				s = s.With(c)
			}
		}
		sets = append(sets, s)
	}
	// Shuffle so plan() sees sets in DUCC-like non-ascending order.
	rnd := rand.New(rand.NewSource(3))
	rnd.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })

	for _, s := range sets {
		refPLI := ref.Get(s)
		if got, want := fast.IsUnique(s), refPLI.IsUnique(); got != want {
			t.Fatalf("IsUnique(%v) = %v, want %v", s, got, want)
		}
		if got, want := fast.Cardinality(s), refPLI.DistinctCount(); got != want {
			t.Fatalf("Cardinality(%v) = %d, want %d", s, got, want)
		}
		for a := 0; a < n; a++ {
			if got, want := fast.CheckFD(s, a), s.Has(a) || refPLI.Refines(rel.Column(a)); got != want {
				t.Fatalf("CheckFD(%v, %d) = %v, want %v", s, a, got, want)
			}
		}
		if got, want := fast.CheckFDs(s, rel.AllColumns()), refCheckFDs(ref, s, rel.AllColumns()); got != want {
			t.Fatalf("CheckFDs(%v) = %v, want %v", s, got, want)
		}
		var clusters [][]int32
		fast.ForEachCluster(s, func(c []int32) bool {
			cc := append([]int32(nil), c...)
			sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
			clusters = append(clusters, cc)
			return true
		})
		sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
		if want := canon(refPLI); !reflect.DeepEqual(clusters, want) {
			t.Fatalf("ForEachCluster(%v) diverges", s)
		}
	}

	st := fast.CacheStats()
	if st.FastChecks == 0 {
		t.Error("fast provider reports zero FastChecks")
	}
	// Admission control: the fast provider must have admitted strictly fewer
	// entries than Get's cache-every-set policy.
	if fast.CachedEntries() >= ref.CachedEntries() {
		t.Errorf("fast path admitted %d entries, reference Get %d — admission control ineffective",
			fast.CachedEntries(), ref.CachedEntries())
	}
}

// TestSampledPrefilterEquivalence forces sampling on a small relation (the
// production threshold would disable it) and proves the sampled fast paths
// agree with the unsampled reference on every subset: sampled refutations
// are sound, sampled positives always fall through to the exact check.
func TestSampledPrefilterEquivalence(t *testing.T) {
	for _, stride := range []int{2, 4, 8} {
		rel := checkRelation(t, 400, 5, 3, int64(stride))
		sampled := NewProvider(rel, 0)
		sampled.enableSampling(stride)
		ref := NewProvider(rel, 0)

		n := rel.NumColumns()
		for m := 1; m < 1<<n; m++ {
			var s bitset.Set
			for c := 0; c < n; c++ {
				if m&(1<<c) != 0 {
					s = s.With(c)
				}
			}
			refPLI := ref.Get(s)
			if got, want := sampled.IsUnique(s), refPLI.IsUnique(); got != want {
				t.Fatalf("stride %d: IsUnique(%v) = %v, want %v", stride, s, got, want)
			}
			for a := 0; a < n; a++ {
				if got, want := sampled.CheckFD(s, a), s.Has(a) || refPLI.Refines(rel.Column(a)); got != want {
					t.Fatalf("stride %d: CheckFD(%v, %d) = %v, want %v", stride, s, a, got, want)
				}
			}
			if got, want := sampled.CheckFDs(s, rel.AllColumns()), refCheckFDs(ref, s, rel.AllColumns()); got != want {
				t.Fatalf("stride %d: CheckFDs(%v) = %v, want %v", stride, s, got, want)
			}
		}
		if sampled.CacheStats().SampledRefutations == 0 {
			t.Errorf("stride %d: prefilter never refuted anything on a 3-ary relation", stride)
		}
	}
}

// TestWithSampleCheckThreshold pins the production stride selection: small
// relations stay unsampled, large ones get a power-of-two stride that keeps
// the sample near the target size.
func TestWithSampleCheckThreshold(t *testing.T) {
	small := NewProvider(checkRelation(t, 500, 2, 3, 1), 0).WithSampleCheck(true)
	if small.sampleMask != 0 {
		t.Errorf("500-row relation got sampling (mask %d), want disabled below threshold", small.sampleMask)
	}
	// High-cardinality columns keep the 100k rows distinct through the
	// relation layer's duplicate-row removal.
	bigRel := checkRelation(t, 100000, 3, 1000, 1)
	big := NewProvider(bigRel, 0).WithSampleCheck(true)
	if big.sampleMask == 0 {
		t.Fatalf("%d-row relation did not arm sampling", bigRel.NumRows())
	}
	stride := int(big.sampleMask) + 1
	if stride&(stride-1) != 0 || stride < sampleMinStride {
		t.Errorf("stride = %d, want power of two >= %d", stride, sampleMinStride)
	}
	sampleRows := bigRel.NumRows() / stride
	if sampleRows < sampleTargetRows || sampleRows >= 4*sampleTargetRows {
		t.Errorf("sample holds %d rows, want near %d", sampleRows, sampleTargetRows)
	}
	if off := big.WithSampleCheck(false); off.sampleMask != 0 || off.sampledSingle != nil {
		t.Error("WithSampleCheck(false) did not disarm the prefilter")
	}
}

// TestConcurrentFastChecks hammers the fast paths of one shared provider
// from many goroutines (run under -race by verify.sh): pooled scratches,
// atomic counters, and promotion admissions into the sharded cache must not
// race, and every goroutine must see the same verdicts.
func TestConcurrentFastChecks(t *testing.T) {
	rel := checkRelation(t, 2000, 6, 5, 11)
	p := NewConcurrentProvider(rel, 0, 8)
	ref := NewProvider(rel, 0)

	n := rel.NumColumns()
	var sets []bitset.Set
	wantUnique := make(map[bitset.Set]bool)
	wantCard := make(map[bitset.Set]int)
	wantRefines := make(map[bitset.Set][]bool)
	for m := 1; m < 1<<n; m++ {
		var s bitset.Set
		for c := 0; c < n; c++ {
			if m&(1<<c) != 0 {
				s = s.With(c)
			}
		}
		sets = append(sets, s)
		pli := ref.Get(s)
		wantUnique[s] = pli.IsUnique()
		wantCard[s] = pli.DistinctCount()
		refines := make([]bool, n)
		for a := 0; a < n; a++ {
			refines[a] = pli.Refines(rel.Column(a))
		}
		wantRefines[s] = refines
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 3; iter++ {
				for _, i := range rnd.Perm(len(sets)) {
					s := sets[i]
					if p.IsUnique(s) != wantUnique[s] {
						errs <- fmt.Sprintf("IsUnique(%v) diverged", s)
						return
					}
					if p.Cardinality(s) != wantCard[s] {
						errs <- fmt.Sprintf("Cardinality(%v) diverged", s)
						return
					}
					a := rnd.Intn(n)
					want := s.Has(a) || wantRefines[s][a]
					if p.CheckFD(s, a) != want {
						errs <- fmt.Sprintf("CheckFD(%v, %d) diverged", s, a)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// FuzzCheckEquivalence differentially fuzzes the check kernels and Provider
// fast paths against the materializing reference on arbitrary relations: the
// fold kernel (every base column, every fold depth), the batched RHS sweep,
// and the sampled prefilter at stride 2 must all agree with chained
// IntersectColumn materialization.
func FuzzCheckEquivalence(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1, 1, 0, 2, 2, 0, 1, 1, 0})
	f.Add([]byte{0, 0})
	f.Add([]byte{3, 1, 9, 9, 9, 9, 9, 9})
	f.Add([]byte{1, 7, 0, 1, 2, 3, 4, 5, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, card := fuzzRelation(data)
		cards := make([]int, len(cols))
		for i := range cards {
			cards[i] = card
		}
		for b := range cols {
			base := FromColumn(cols[b], card)
			keys := make([][]int32, 0, len(cols)-1)
			keyCards := make([]int, 0, len(cols)-1)
			for c := range cols {
				if c == b {
					continue
				}
				keys = append(keys, cols[c])
				keyCards = append(keyCards, card)
				ref := chainIntersect(base, keys, keyCards)
				if base.CheckUnique(keys, keyCards, nil) != ref.IsUnique() {
					t.Fatalf("CheckUnique(base %d, %d keys) diverges", b, len(keys))
				}
				if base.CheckErrorSum(keys, keyCards, nil) != ref.ErrorSum() {
					t.Fatalf("CheckErrorSum(base %d, %d keys) diverges", b, len(keys))
				}
				for rhs := range cols {
					if base.CheckRefines(cols[rhs], keys, keyCards, nil) != ref.Refines(cols[rhs]) {
						t.Fatalf("CheckRefines(base %d, %d keys, rhs %d) diverges", b, len(keys), rhs)
					}
				}
				ok := make([]bool, len(cols))
				base.CheckRefinesMany(cols, keys, keyCards, ok, nil)
				if want := ref.RefinesEach(cols); !reflect.DeepEqual(ok, want) {
					t.Fatalf("CheckRefinesMany(base %d, %d keys) = %v, want %v", b, len(keys), ok, want)
				}
				var groups [][]int32
				base.ForEachFoldedGroup(keys, keyCards, nil, func(g []int32) bool {
					groups = append(groups, append([]int32(nil), g...))
					return true
				})
				var want [][]int32
				ref.ForEachCluster(func(c []int32) {
					want = append(want, append([]int32(nil), c...))
				})
				if !reflect.DeepEqual(groups, want) {
					t.Fatalf("folded groups of base %d with %d keys diverge", b, len(keys))
				}
			}
		}
		if len(cols[0]) == 0 {
			return
		}
		// Provider fast paths (with forced sampling) vs Get on a fresh pair.
		rel := fuzzToRelation(t, cols, card)
		fast := NewProvider(rel, 0)
		fast.enableSampling(2)
		ref := NewProvider(rel, 0)
		n := rel.NumColumns()
		for m := 1; m < 1<<n; m++ {
			var s bitset.Set
			for c := 0; c < n; c++ {
				if m&(1<<c) != 0 {
					s = s.With(c)
				}
			}
			refPLI := ref.Get(s)
			if fast.IsUnique(s) != refPLI.IsUnique() {
				t.Fatalf("Provider.IsUnique(%v) diverges", s)
			}
			if fast.Cardinality(s) != refPLI.DistinctCount() {
				t.Fatalf("Provider.Cardinality(%v) diverges", s)
			}
			if got, want := fast.CheckFDs(s, rel.AllColumns()), refCheckFDs(ref, s, rel.AllColumns()); got != want {
				t.Fatalf("Provider.CheckFDs(%v) = %v, want %v", s, got, want)
			}
		}
	})
}

// fuzzToRelation lifts the fuzz columns into a relation so Provider paths
// (which need column names and cardinalities) can run on them.
func fuzzToRelation(t *testing.T, cols [][]int32, card int) *relation.Relation {
	t.Helper()
	names := make([]string, len(cols))
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	rows := make([][]string, len(cols[0]))
	for r := range rows {
		row := make([]string, len(cols))
		for c := range row {
			row[c] = fmt.Sprint(cols[c][r])
		}
		rows[r] = row
	}
	return relation.MustNew("fuzz", names, rows)
}
