package pli

import (
	"runtime"
	"sync"

	"holistic/internal/bitset"
)

// Cache is the pluggable storage behind a Provider's multi-column PLIs. The
// single-column PLIs and the empty-set PLI live outside the cache and are
// never evicted; a Cache only sees sets with two or more columns.
//
// Implementations count their own probe outcomes so that eviction policies
// can be compared without touching the Provider: Counters reports how many
// Get calls hit, how many missed, and how many entries eviction dropped. A
// probe is one Get call — the Provider probes subsets while assembling a PLI,
// so misses exceed the number of distinct sets requested by callers.
type Cache interface {
	// Get returns the cached PLI of s, if present.
	Get(s bitset.Set) (*PLI, bool)
	// Put stores the PLI of s, evicting other entries if needed.
	Put(s bitset.Set, pli *PLI)
	// Len returns the number of cached entries.
	Len() int
	// Bytes returns the approximate heap bytes held by the cached PLIs
	// (see PLI.ApproxBytes). It is what the memory governor budgets.
	Bytes() int64
	// Counters returns the accumulated hit/miss/eviction counts.
	Counters() (hits, misses, evictions int64)
	// ForEach visits every cached entry until fn returns false. It exists so
	// incremental maintenance can patch cached PLIs in place after a
	// relation append. fn must not call back into the cache (concurrent
	// implementations hold their locks during the walk); iteration order is
	// unspecified. Hit/miss counters are not touched.
	ForEach(fn func(s bitset.Set, pli *PLI) bool)
}

// DefaultCacheBytes is the default byte budget of a budgeted cache: enough
// for the paper's workloads, small enough that a hostile wide relation
// degrades to recomputation instead of OOM-killing the process.
const DefaultCacheBytes = 256 << 20

// CacheStats is a point-in-time snapshot of a Provider's cache behaviour,
// combining the cache's own probe counters with the Provider's intersection
// count. It is the payload of the engine's Observer cache hook and of the
// benchmark harness' cache metrics. It marshals cleanly with encoding/json,
// so per-job cache statistics can ride along in serialized profiling
// results and progress-event streams.
type CacheStats struct {
	// Hits and Misses count cache probes (see Cache.Counters).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the eviction policy (entry-count
	// pressure and byte-budget shedding both land here).
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached multi-column PLIs.
	Entries int `json:"entries"`
	// Bytes is the approximate heap held by the cached PLIs.
	Bytes int64 `json:"bytes"`
	// Intersections counts the column intersections the Provider performed —
	// the work the cache exists to avoid.
	Intersections int64 `json:"intersections"`
	// FastChecks counts validation questions (IsUnique, CheckFD, CheckFDs
	// per candidate, Cardinality) answered by the non-materializing check
	// kernels — no intersection PLI was built or cached for them.
	FastChecks int64 `json:"fast_checks"`
	// Materializations counts the PLIs the fast path chose to build and
	// admit to the cache: refuted IsUnique probes (whose survivors fall out
	// of the verdict fold and serve as stepping stones for later probes)
	// plus doorkeeper-gated intermediate promotions on deep plans. It is
	// the admission-controlled complement of FastChecks:
	// FastChecks / (FastChecks + Materializations) is the fast-check hit
	// rate of a validation-dominated run.
	Materializations int64 `json:"materializations"`
	// SampledRefutations counts questions settled negatively by the
	// deterministic stride-sample prefilter alone, before any exact check
	// ran (see Provider.WithSampleCheck).
	SampledRefutations int64 `json:"sampled_refutations,omitempty"`
}

// MapCache is the default Cache: a bounded map with a cheap random-replacement
// policy. When the entry bound is reached, roughly half the entries are
// dropped; map iteration order is effectively random, which serves as the
// replacement choice. An optional byte budget (NewMapCacheBudget) additionally
// bounds the approximate heap held by the cached PLIs: stores that would
// exceed it shed other entries first, and a PLI larger than the whole budget
// is never cached at all — the Provider then recomputes it on demand, trading
// time for bounded memory. It is not safe for concurrent use; wrap it in a
// SyncCache to share a Provider across goroutines.
type MapCache struct {
	entries    map[bitset.Set]cacheEntry
	maxEntries int
	maxBytes   int64 // 0 = no byte budget
	bytes      int64

	hits, misses, evictions int64
}

// cacheEntry pins the byte size accounted at Put time next to the PLI. A
// PLI's ApproxBytes can grow later (the probe vector materialises lazily),
// so evictions must subtract exactly what Put added — the pinned size —
// or the ledger would drift.
type cacheEntry struct {
	pli   *PLI
	bytes int64
}

// NewMapCache builds a MapCache bounded to maxEntries cached PLIs with no
// byte budget. maxEntries <= 0 selects DefaultCacheEntries.
func NewMapCache(maxEntries int) *MapCache {
	return NewMapCacheBudget(maxEntries, 0)
}

// NewMapCacheBudget builds a MapCache bounded to maxEntries cached PLIs and
// approximately maxBytes of cached PLI heap (0 = no byte budget; < 0 selects
// DefaultCacheBytes).
func NewMapCacheBudget(maxEntries int, maxBytes int64) *MapCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if maxBytes < 0 {
		maxBytes = DefaultCacheBytes
	}
	return &MapCache{
		entries:    make(map[bitset.Set]cacheEntry),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// Get implements Cache.
func (c *MapCache) Get(s bitset.Set) (*PLI, bool) {
	e, ok := c.entries[s]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e.pli, ok
}

// Put implements Cache, evicting roughly half the entries when the entry
// bound is hit and shedding entries when the byte budget is exceeded. The
// stored PLI's size is snapshotted here (see cacheEntry).
func (c *MapCache) Put(s bitset.Set, pli *PLI) {
	sz := pli.ApproxBytes()
	if old, ok := c.entries[s]; ok {
		c.bytes += sz - old.bytes
		c.entries[s] = cacheEntry{pli: pli, bytes: sz}
		c.shedOver(s)
		return
	}
	if c.maxBytes > 0 && sz > c.maxBytes {
		// This single PLI would blow the whole budget: never cache it. The
		// Provider recomputes it when needed — slower, never OOM.
		c.evictions++
		return
	}
	if len(c.entries) >= c.maxEntries {
		drop := len(c.entries) / 2
		for k, v := range c.entries {
			if drop == 0 {
				break
			}
			c.bytes -= v.bytes
			delete(c.entries, k)
			c.evictions++
			drop--
		}
	}
	c.entries[s] = cacheEntry{pli: pli, bytes: sz}
	c.bytes += sz
	c.shedOver(s)
}

// shedOver drops entries (never keep itself) until the byte budget holds
// again. Map iteration order serves as the random replacement choice, as in
// the entry-bound eviction.
func (c *MapCache) shedOver(keep bitset.Set) {
	if c.maxBytes <= 0 {
		return
	}
	for k, v := range c.entries {
		if c.bytes <= c.maxBytes {
			return
		}
		if k == keep {
			continue
		}
		c.bytes -= v.bytes
		delete(c.entries, k)
		c.evictions++
	}
}

// Len implements Cache.
func (c *MapCache) Len() int { return len(c.entries) }

// Bytes implements Cache.
func (c *MapCache) Bytes() int64 { return c.bytes }

// Counters implements Cache.
func (c *MapCache) Counters() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// ForEach implements Cache (map order, i.e. unspecified).
func (c *MapCache) ForEach(fn func(s bitset.Set, pli *PLI) bool) {
	for k, v := range c.entries {
		if !fn(k, v.pli) {
			return
		}
	}
}

// SyncCache wraps another Cache with a mutex, making it safe for concurrent
// use. It is the concurrency-safe variant that slots into a Provider via
// NewProviderWithCache without touching any caller.
type SyncCache struct {
	mu    sync.Mutex
	inner Cache
}

// NewSyncCache wraps inner in a SyncCache. inner == nil wraps a fresh
// default-sized MapCache.
func NewSyncCache(inner Cache) *SyncCache {
	if inner == nil {
		inner = NewMapCache(0)
	}
	return &SyncCache{inner: inner}
}

// Get implements Cache.
func (c *SyncCache) Get(s bitset.Set) (*PLI, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Get(s)
}

// Put implements Cache.
func (c *SyncCache) Put(s bitset.Set, pli *PLI) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.Put(s, pli)
}

// Len implements Cache.
func (c *SyncCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Len()
}

// Bytes implements Cache.
func (c *SyncCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Bytes()
}

// Counters implements Cache.
func (c *SyncCache) Counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Counters()
}

// ForEach implements Cache. The mutex is held for the whole walk, so fn must
// not call back into the cache.
func (c *SyncCache) ForEach(fn func(s bitset.Set, pli *PLI) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.ForEach(fn)
}

// ShardedCache spreads entries over a power-of-two number of independently
// locked shards, so concurrent workers probing disjoint column combinations
// rarely contend on the same mutex. Each shard is its own bounded MapCache
// with its own counters; Counters and Len aggregate across shards, which is
// how the per-shard counts surface in a Provider's CacheStats.
//
// The shard of a set is chosen by bitset.Set.Hash, so repeated probes of the
// same combination always hit the same shard and eviction pressure stays
// local to hot shards.
type ShardedCache struct {
	shards []shard
	mask   uint64
}

type shard struct {
	mu    sync.Mutex
	inner *MapCache
	// Pad shards to their own cache lines so two cores probing neighbouring
	// shards do not false-share the mutex words.
	_ [40]byte
}

// NewShardedCache builds a ShardedCache with at least shardCount shards
// (rounded up to a power of two; <= 0 selects the next power of two above
// runtime.GOMAXPROCS). maxEntries bounds the total cached PLIs across all
// shards (<= 0 selects DefaultCacheEntries); each shard is bounded to its
// equal split of the total. No byte budget is applied.
func NewShardedCache(shardCount, maxEntries int) *ShardedCache {
	return NewShardedCacheBudget(shardCount, maxEntries, 0)
}

// NewShardedCacheBudget builds a ShardedCache whose entry bound and byte
// budget are both split equally across the shards (maxBytes 0 = no byte
// budget; < 0 selects DefaultCacheBytes). Shedding pressure therefore stays
// local to hot shards, like entry eviction.
func NewShardedCacheBudget(shardCount, maxEntries int, maxBytes int64) *ShardedCache {
	if shardCount <= 0 {
		shardCount = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if maxBytes < 0 {
		maxBytes = DefaultCacheBytes
	}
	perShard := maxEntries / n
	if perShard < 1 {
		perShard = 1
	}
	perShardBytes := maxBytes / int64(n)
	if maxBytes > 0 && perShardBytes < 1 {
		perShardBytes = 1
	}
	c := &ShardedCache{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].inner = NewMapCacheBudget(perShard, perShardBytes)
	}
	return c
}

// NumShards returns the number of shards (a power of two).
func (c *ShardedCache) NumShards() int { return len(c.shards) }

func (c *ShardedCache) shardFor(s bitset.Set) *shard {
	return &c.shards[s.Hash()&c.mask]
}

// Get implements Cache.
func (c *ShardedCache) Get(s bitset.Set) (*PLI, bool) {
	sh := c.shardFor(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Get(s)
}

// Put implements Cache.
func (c *ShardedCache) Put(s bitset.Set, pli *PLI) {
	sh := c.shardFor(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.inner.Put(s, pli)
}

// Len implements Cache, summing the shard sizes.
func (c *ShardedCache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.inner.Len()
		sh.mu.Unlock()
	}
	return total
}

// Bytes implements Cache, summing the shard byte counts.
func (c *ShardedCache) Bytes() int64 {
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.inner.Bytes()
		sh.mu.Unlock()
	}
	return total
}

// ForEach implements Cache, walking the shards in order (each shard's mutex
// is held while it is walked, so fn must not call back into the cache).
func (c *ShardedCache) ForEach(fn func(s bitset.Set, pli *PLI) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		done := false
		sh.inner.ForEach(func(s bitset.Set, pli *PLI) bool {
			if !fn(s, pli) {
				done = true
				return false
			}
			return true
		})
		sh.mu.Unlock()
		if done {
			return
		}
	}
}

// Counters implements Cache, aggregating the per-shard counters.
func (c *ShardedCache) Counters() (hits, misses, evictions int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		h, m, e := sh.inner.Counters()
		sh.mu.Unlock()
		hits += h
		misses += m
		evictions += e
	}
	return hits, misses, evictions
}
