package pli

import (
	"sync"

	"holistic/internal/bitset"
)

// Cache is the pluggable storage behind a Provider's multi-column PLIs. The
// single-column PLIs and the empty-set PLI live outside the cache and are
// never evicted; a Cache only sees sets with two or more columns.
//
// Implementations count their own probe outcomes so that eviction policies
// can be compared without touching the Provider: Counters reports how many
// Get calls hit, how many missed, and how many entries eviction dropped. A
// probe is one Get call — the Provider probes subsets while assembling a PLI,
// so misses exceed the number of distinct sets requested by callers.
type Cache interface {
	// Get returns the cached PLI of s, if present.
	Get(s bitset.Set) (*PLI, bool)
	// Put stores the PLI of s, evicting other entries if needed.
	Put(s bitset.Set, pli *PLI)
	// Len returns the number of cached entries.
	Len() int
	// Counters returns the accumulated hit/miss/eviction counts.
	Counters() (hits, misses, evictions int64)
}

// CacheStats is a point-in-time snapshot of a Provider's cache behaviour,
// combining the cache's own probe counters with the Provider's intersection
// count. It is the payload of the engine's Observer cache hook and of the
// benchmark harness' cache metrics.
type CacheStats struct {
	// Hits and Misses count cache probes (see Cache.Counters).
	Hits   int64
	Misses int64
	// Evictions counts entries dropped by the eviction policy.
	Evictions int64
	// Entries is the current number of cached multi-column PLIs.
	Entries int
	// Intersections counts the column intersections the Provider performed —
	// the work the cache exists to avoid.
	Intersections int64
}

// MapCache is the default Cache: a bounded map with a cheap random-replacement
// policy. When the bound is reached, roughly half the entries are dropped;
// map iteration order is effectively random, which serves as the replacement
// choice. It is not safe for concurrent use; wrap it in a SyncCache to share
// a Provider across goroutines.
type MapCache struct {
	entries    map[bitset.Set]*PLI
	maxEntries int

	hits, misses, evictions int64
}

// NewMapCache builds a MapCache bounded to maxEntries cached PLIs.
// maxEntries <= 0 selects DefaultCacheEntries.
func NewMapCache(maxEntries int) *MapCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &MapCache{
		entries:    make(map[bitset.Set]*PLI),
		maxEntries: maxEntries,
	}
}

// Get implements Cache.
func (c *MapCache) Get(s bitset.Set) (*PLI, bool) {
	pli, ok := c.entries[s]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return pli, ok
}

// Put implements Cache, evicting roughly half the entries when full.
func (c *MapCache) Put(s bitset.Set, pli *PLI) {
	if len(c.entries) >= c.maxEntries {
		drop := len(c.entries) / 2
		for k := range c.entries {
			if drop == 0 {
				break
			}
			delete(c.entries, k)
			c.evictions++
			drop--
		}
	}
	c.entries[s] = pli
}

// Len implements Cache.
func (c *MapCache) Len() int { return len(c.entries) }

// Counters implements Cache.
func (c *MapCache) Counters() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// SyncCache wraps another Cache with a mutex, making it safe for concurrent
// use. It is the concurrency-safe variant that slots into a Provider via
// NewProviderWithCache without touching any caller.
type SyncCache struct {
	mu    sync.Mutex
	inner Cache
}

// NewSyncCache wraps inner in a SyncCache. inner == nil wraps a fresh
// default-sized MapCache.
func NewSyncCache(inner Cache) *SyncCache {
	if inner == nil {
		inner = NewMapCache(0)
	}
	return &SyncCache{inner: inner}
}

// Get implements Cache.
func (c *SyncCache) Get(s bitset.Set) (*PLI, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Get(s)
}

// Put implements Cache.
func (c *SyncCache) Put(s bitset.Set, pli *PLI) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.Put(s, pli)
}

// Len implements Cache.
func (c *SyncCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Len()
}

// Counters implements Cache.
func (c *SyncCache) Counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Counters()
}
