// Package bitset implements fixed-width column sets and the attribute-lattice
// helpers shared by all profiling algorithms.
//
// A Set is a value type (plain comparable struct) so it can be used directly
// as a map key, which the PLI caches, set-tries, and candidate queues of the
// discovery algorithms rely on. The width is fixed at 256 columns; all
// datasets of the reproduced evaluation fit well below that bound.
package bitset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxColumns is the largest column index (exclusive) a Set can hold.
const MaxColumns = 256

const words = MaxColumns / 64

// Set is a set of column indexes in [0, MaxColumns). The zero value is the
// empty set. Sets are immutable values: all operations return new sets.
type Set struct {
	w [words]uint64
}

// New returns the set containing the given columns. It panics if a column is
// out of range, because a column index beyond MaxColumns is a programming
// error, not an input error (inputs are validated at relation-load time).
func New(cols ...int) Set {
	var s Set
	for _, c := range cols {
		s = s.With(c)
	}
	return s
}

// Single returns the singleton set {col}.
func Single(col int) Set {
	return New(col)
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set {
	var s Set
	if n < 0 || n > MaxColumns {
		panic(fmt.Sprintf("bitset: column count %d out of range", n))
	}
	for i := 0; i < n/64; i++ {
		s.w[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		s.w[n/64] = (uint64(1) << r) - 1
	}
	return s
}

func check(col int) {
	if col < 0 || col >= MaxColumns {
		panic(fmt.Sprintf("bitset: column %d out of range [0,%d)", col, MaxColumns))
	}
}

// With returns s ∪ {col}.
func (s Set) With(col int) Set {
	check(col)
	s.w[col/64] |= uint64(1) << (col % 64)
	return s
}

// Without returns s \ {col}.
func (s Set) Without(col int) Set {
	check(col)
	s.w[col/64] &^= uint64(1) << (col % 64)
	return s
}

// Has reports whether col ∈ s.
func (s Set) Has(col int) bool {
	check(col)
	return s.w[col/64]&(uint64(1)<<(col%64)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	for i := range s.w {
		s.w[i] |= t.w[i]
	}
	return s
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	for i := range s.w {
		s.w[i] &= t.w[i]
	}
	return s
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	for i := range s.w {
		s.w[i] &^= t.w[i]
	}
	return s
}

// IsEmpty reports whether s has no columns.
func (s Set) IsEmpty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit hash of s (FNV-1a over the words). The sharded PLI
// cache uses it to pick a shard; it is not a cryptographic hash.
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range s.w {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (w >> shift) & 0xff
			h *= prime64
		}
	}
	return h
}

// Len returns |s|.
func (s Set) Len() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsSubsetOf reports whether s ⊆ t.
func (s Set) IsSubsetOf(t Set) bool {
	for i := range s.w {
		if s.w[i]&^t.w[i] != 0 {
			return false
		}
	}
	return true
}

// IsProperSubsetOf reports whether s ⊂ t.
func (s Set) IsProperSubsetOf(t Set) bool {
	return s != t && s.IsSubsetOf(t)
}

// IsSupersetOf reports whether s ⊇ t.
func (s Set) IsSupersetOf(t Set) bool {
	return t.IsSubsetOf(s)
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool {
	for i := range s.w {
		if s.w[i]&t.w[i] != 0 {
			return true
		}
	}
	return false
}

// First returns the smallest column in s, or -1 if s is empty.
func (s Set) First() int {
	for i, w := range s.w {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest column in s greater than col, or -1.
func (s Set) NextAfter(col int) int {
	if col < -1 {
		col = -1
	}
	start := col + 1
	if start >= MaxColumns {
		return -1
	}
	wi := start / 64
	w := s.w[wi] >> (start % 64)
	if w != 0 {
		return start + bits.TrailingZeros64(w)
	}
	for i := wi + 1; i < words; i++ {
		if s.w[i] != 0 {
			return i*64 + bits.TrailingZeros64(s.w[i])
		}
	}
	return -1
}

// Columns returns the columns of s in ascending order.
func (s Set) Columns() []int {
	cols := make([]int, 0, s.Len())
	for c := s.First(); c >= 0; c = s.NextAfter(c) {
		cols = append(cols, c)
	}
	return cols
}

// ForEach calls fn for every column of s in ascending order.
func (s Set) ForEach(fn func(col int)) {
	for c := s.First(); c >= 0; c = s.NextAfter(c) {
		fn(c)
	}
}

// DirectSubsets returns all sets s \ {c} for c ∈ s, i.e. the direct
// (one-smaller) subsets in the attribute lattice, in ascending column order.
func (s Set) DirectSubsets() []Set {
	subs := make([]Set, 0, s.Len())
	s.ForEach(func(c int) {
		subs = append(subs, s.Without(c))
	})
	return subs
}

// DirectSupersets returns all sets s ∪ {c} for columns c < n with c ∉ s,
// i.e. the direct (one-larger) supersets in the lattice over n columns.
func (s Set) DirectSupersets(n int) []Set {
	sups := make([]Set, 0, n-s.Len())
	for c := 0; c < n; c++ {
		if !s.Has(c) {
			sups = append(sups, s.With(c))
		}
	}
	return sups
}

// Complement returns {0..n-1} \ s.
func (s Set) Complement(n int) Set {
	return Full(n).Diff(s)
}

// ProperSubsets enumerates every non-empty proper subset of s and calls fn
// for each. Enumeration order is unspecified. fn returning false stops the
// enumeration early. The number of subsets is exponential in |s|; callers
// guard the size of s (the shadowed-FD phase of MUDS is the only user).
func (s Set) ProperSubsets(fn func(sub Set) bool) {
	cols := s.Columns()
	n := len(cols)
	if n == 0 {
		return
	}
	// Iterate masks 1 .. 2^n-2 (skip empty and full).
	for mask := uint64(1); mask < (uint64(1)<<n)-1; mask++ {
		var sub Set
		for i := 0; i < n; i++ {
			if mask&(uint64(1)<<i) != 0 {
				sub = sub.With(cols[i])
			}
		}
		if !fn(sub) {
			return
		}
	}
}

// SubsetsOfSize enumerates all subsets of s with exactly k columns.
func (s Set) SubsetsOfSize(k int, fn func(sub Set) bool) {
	cols := s.Columns()
	n := len(cols)
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		var sub Set
		for _, i := range idx {
			sub = sub.With(cols[i])
		}
		if !fn(sub) {
			return
		}
		// next combination
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// String formats the set as column letters for up to 26 columns (matching the
// paper's examples, e.g. "AFG") and as {i,j,...} otherwise. The empty set is
// "∅".
func (s Set) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	cols := s.Columns()
	if cols[len(cols)-1] < 26 {
		var b strings.Builder
		for _, c := range cols {
			b.WriteByte(byte('A' + c))
		}
		return b.String()
	}
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// FromLetters parses a paper-style letter combination such as "AFG" into a
// set (A=0, B=1, ...). It is the inverse of String for small sets and exists
// for tests and examples that mirror the paper's notation.
func FromLetters(letters string) Set {
	var s Set
	for _, r := range letters {
		switch {
		case r >= 'A' && r <= 'Z':
			s = s.With(int(r - 'A'))
		case r >= 'a' && r <= 'z':
			s = s.With(int(r - 'a'))
		default:
			panic(fmt.Sprintf("bitset: invalid column letter %q", r))
		}
	}
	return s
}

// Sort orders a slice of sets by cardinality first and lexicographic column
// order second. It gives deterministic output ordering across algorithms,
// which the result comparisons and golden tests rely on.
func Sort(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		return Less(sets[i], sets[j])
	})
}

// Less is the ordering used by Sort.
func Less(a, b Set) bool {
	la, lb := a.Len(), b.Len()
	if la != lb {
		return la < lb
	}
	ca, cb := a.Columns(), b.Columns()
	for i := range ca {
		if ca[i] != cb[i] {
			return ca[i] < cb[i]
		}
	}
	return false
}
