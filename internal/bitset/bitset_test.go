package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndHas(t *testing.T) {
	s := New(0, 3, 77, 200)
	for _, c := range []int{0, 3, 77, 200} {
		if !s.Has(c) {
			t.Errorf("expected column %d in set", c)
		}
	}
	for _, c := range []int{1, 2, 76, 78, 199, 201, 255} {
		if s.Has(c) {
			t.Errorf("did not expect column %d in set", c)
		}
	}
	if got := s.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
}

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Error("zero value should be empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	if s.First() != -1 {
		t.Errorf("First = %d, want -1", s.First())
	}
	if s.String() != "∅" {
		t.Errorf("String = %q, want ∅", s.String())
	}
}

func TestWithWithout(t *testing.T) {
	s := New(1, 2)
	if got := s.With(2); got != s {
		t.Error("adding existing column should be identity")
	}
	if got := s.Without(5); got != s {
		t.Error("removing absent column should be identity")
	}
	if got := s.With(5).Without(5); got != s {
		t.Error("With then Without should round-trip")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, col := range []int{-1, MaxColumns, MaxColumns + 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for column %d", col)
				}
			}()
			New(col)
		}()
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(0, 1, 2, 64, 130)
	b := New(2, 3, 64, 131)
	if got, want := a.Union(b), New(0, 1, 2, 3, 64, 130, 131); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), New(2, 64); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Diff(b), New(0, 1, 130); got != want {
		t.Errorf("Diff = %v, want %v", got, want)
	}
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(New(200)) {
		t.Error("a should not intersect {200}")
	}
}

func TestSubsetRelations(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2, 3)
	if !a.IsSubsetOf(b) || !a.IsProperSubsetOf(b) {
		t.Error("a ⊂ b expected")
	}
	if !b.IsSupersetOf(a) {
		t.Error("b ⊇ a expected")
	}
	if b.IsSubsetOf(a) {
		t.Error("b ⊆ a not expected")
	}
	if !a.IsSubsetOf(a) || a.IsProperSubsetOf(a) {
		t.Error("a ⊆ a but not a ⊂ a")
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 255, 256} {
		f := Full(n)
		if f.Len() != n {
			t.Errorf("Full(%d).Len = %d", n, f.Len())
		}
		if n > 0 && (!f.Has(0) || !f.Has(n-1)) {
			t.Errorf("Full(%d) missing boundary columns", n)
		}
		if n < MaxColumns && f.Has(n) {
			t.Errorf("Full(%d) contains %d", n, n)
		}
	}
}

func TestComplement(t *testing.T) {
	s := New(0, 2)
	if got, want := s.Complement(4), New(1, 3); got != want {
		t.Errorf("Complement = %v, want %v", got, want)
	}
}

func TestIteration(t *testing.T) {
	cols := []int{0, 5, 63, 64, 127, 255}
	s := New(cols...)
	if got := s.Columns(); !reflect.DeepEqual(got, cols) {
		t.Errorf("Columns = %v, want %v", got, cols)
	}
	var visited []int
	s.ForEach(func(c int) { visited = append(visited, c) })
	if !reflect.DeepEqual(visited, cols) {
		t.Errorf("ForEach visited %v, want %v", visited, cols)
	}
}

func TestNextAfter(t *testing.T) {
	s := New(3, 64, 200)
	cases := []struct{ after, want int }{
		{-1, 3}, {0, 3}, {3, 64}, {63, 64}, {64, 200}, {199, 200}, {200, -1}, {255, -1},
	}
	for _, c := range cases {
		if got := s.NextAfter(c.after); got != c.want {
			t.Errorf("NextAfter(%d) = %d, want %d", c.after, got, c.want)
		}
	}
}

func TestDirectSubsets(t *testing.T) {
	s := FromLetters("ABC")
	want := []Set{FromLetters("BC"), FromLetters("AC"), FromLetters("AB")}
	if got := s.DirectSubsets(); !reflect.DeepEqual(got, want) {
		t.Errorf("DirectSubsets = %v, want %v", got, want)
	}
	if got := New().DirectSubsets(); len(got) != 0 {
		t.Errorf("empty set has no direct subsets, got %v", got)
	}
}

func TestDirectSupersets(t *testing.T) {
	s := FromLetters("AC")
	want := []Set{FromLetters("ABC"), FromLetters("ACD")}
	if got := s.DirectSupersets(4); !reflect.DeepEqual(got, want) {
		t.Errorf("DirectSupersets = %v, want %v", got, want)
	}
}

func TestProperSubsets(t *testing.T) {
	s := FromLetters("ABC")
	seen := map[Set]bool{}
	s.ProperSubsets(func(sub Set) bool {
		if seen[sub] {
			t.Errorf("subset %v enumerated twice", sub)
		}
		seen[sub] = true
		if !sub.IsProperSubsetOf(s) || sub.IsEmpty() {
			t.Errorf("invalid proper subset %v", sub)
		}
		return true
	})
	if len(seen) != 6 { // 2^3 - 2
		t.Errorf("enumerated %d proper subsets, want 6", len(seen))
	}
}

func TestProperSubsetsEarlyStop(t *testing.T) {
	s := FromLetters("ABCD")
	count := 0
	s.ProperSubsets(func(Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d, want 3", count)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	s := FromLetters("ABCD")
	var got []Set
	s.SubsetsOfSize(2, func(sub Set) bool {
		got = append(got, sub)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("got %d subsets of size 2, want 6", len(got))
	}
	for _, sub := range got {
		if sub.Len() != 2 || !sub.IsSubsetOf(s) {
			t.Errorf("bad subset %v", sub)
		}
	}
	// Degenerate sizes.
	s.SubsetsOfSize(5, func(Set) bool { t.Error("no subsets of size 5"); return true })
	s.SubsetsOfSize(-1, func(Set) bool { t.Error("no subsets of size -1"); return true })
	n := 0
	s.SubsetsOfSize(0, func(sub Set) bool {
		n++
		if !sub.IsEmpty() {
			t.Error("size-0 subset must be empty")
		}
		return true
	})
	if n != 1 {
		t.Errorf("size-0 enumeration count = %d, want 1", n)
	}
}

func TestStringAndFromLetters(t *testing.T) {
	cases := []struct {
		set  Set
		want string
	}{
		{FromLetters("AFG"), "AFG"},
		{FromLetters("a"), "A"},
		{New(0, 25), "AZ"},
		{New(0, 26), "{0,26}"},
	}
	for _, c := range cases {
		if got := c.set.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if FromLetters("AFG") != New(0, 5, 6) {
		t.Error("FromLetters mismatch")
	}
}

func TestFromLettersInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid letter")
		}
	}()
	FromLetters("A1")
}

func TestSortAndLess(t *testing.T) {
	sets := []Set{FromLetters("BC"), FromLetters("A"), FromLetters("AB"), FromLetters("C")}
	Sort(sets)
	want := []Set{FromLetters("A"), FromLetters("C"), FromLetters("AB"), FromLetters("BC")}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("Sort = %v, want %v", sets, want)
	}
	if Less(FromLetters("AB"), FromLetters("AB")) {
		t.Error("Less must be irreflexive")
	}
}

// randomSet draws a set over n columns for property tests.
func randomSet(r *rand.Rand, n int) Set {
	var s Set
	for c := 0; c < n; c++ {
		if r.Intn(2) == 0 {
			s = s.With(c)
		}
	}
	return s
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomSet(r, 70))
			vals[1] = reflect.ValueOf(randomSet(r, 70))
		},
	}
	// De Morgan-ish and containment laws.
	law := func(a, b Set) bool {
		if !a.Intersect(b).IsSubsetOf(a) || !a.Intersect(b).IsSubsetOf(b) {
			return false
		}
		if !a.IsSubsetOf(a.Union(b)) || !b.IsSubsetOf(a.Union(b)) {
			return false
		}
		if a.Diff(b).Intersects(b) {
			return false
		}
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		return a.Diff(b).Union(a.Intersect(b)) == a
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickColumnsRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomSet(r, 256))
		},
	}
	if err := quick.Check(func(s Set) bool {
		return New(s.Columns()...) == s
	}, cfg); err != nil {
		t.Error(err)
	}
}
