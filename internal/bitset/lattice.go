package bitset

// This file holds attribute-lattice helpers shared by the level-wise
// algorithms (TANE, FUN, the apriori UCC baseline) and by the sub-lattice
// construction of MUDS' R\Z phase (paper Sec. 4.2, Fig. 3).

// Level enumerates all subsets of base with exactly k columns. It corresponds
// to one level of the Hasse diagram in Fig. 1 of the paper restricted to the
// columns of base.
func Level(base Set, k int) []Set {
	var out []Set
	base.SubsetsOfSize(k, func(sub Set) bool {
		out = append(out, sub)
		return true
	})
	return out
}

// LatticeSize returns the number of non-empty nodes of the lattice over n
// attributes: 2^n - 1. It panics for n > 62 (the count no longer fits an
// int64; no caller materialises lattices anywhere near that size).
func LatticeSize(n int) int64 {
	if n < 0 || n > 62 {
		panic("bitset: lattice size out of int64 range")
	}
	return (int64(1) << n) - 1
}

// FDCandidateCount returns the number of FD candidates over n attributes,
// sum_{k=1..n} C(n,k)*(n-k), the edge count of the lattice (paper Sec. 2.3).
func FDCandidateCount(n int) int64 {
	if n < 0 || n > 57 {
		panic("bitset: FD candidate count out of int64 range")
	}
	var total int64
	for k := 1; k <= n; k++ {
		total += binomial(n, k) * int64(n-k)
	}
	return total
}

// INDCandidateCount returns the number of unary IND candidates over n
// attributes: n*(n-1) (paper Sec. 2.1).
func INDCandidateCount(n int) int64 {
	return int64(n) * int64(n-1)
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i) / int64(i)
	}
	return res
}

// AprioriGen generates the candidate sets of level k+1 from the sets of
// level k in the classic apriori style: two level-k sets sharing a (k-1)
// prefix are merged, and the merged candidate is kept only if every direct
// subset is present in the previous level. prev must contain sets of a single
// uniform size. The result order is deterministic.
func AprioriGen(prev []Set) []Set {
	if len(prev) == 0 {
		return nil
	}
	k := prev[0].Len()
	present := make(map[Set]bool, len(prev))
	for _, s := range prev {
		present[s] = true
	}
	sorted := make([]Set, len(prev))
	copy(sorted, prev)
	Sort(sorted)

	var out []Set
	seen := make(map[Set]bool)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i], sorted[j]
			merged := a.Union(b)
			if merged.Len() != k+1 {
				continue
			}
			if seen[merged] {
				continue
			}
			ok := true
			for _, sub := range merged.DirectSubsets() {
				if !present[sub] {
					ok = false
					break
				}
			}
			if ok {
				seen[merged] = true
				out = append(out, merged)
			}
		}
	}
	Sort(out)
	return out
}

// SubLattice describes the lattice of left-hand-side candidates for one fixed
// right-hand-side column (paper Sec. 4.2, Fig. 3): all subsets of Base, where
// Base excludes the right-hand side.
type SubLattice struct {
	// RHS is the fixed right-hand-side column the sub-lattice belongs to.
	RHS int
	// Base is the set of columns available as left-hand-side attributes.
	Base Set
}

// SubLattices constructs one sub-lattice per column of rhsCols over the
// relation columns all (paper Fig. 3 uses rhsCols = all; MUDS restricts
// rhsCols to R\Z).
func SubLattices(all Set, rhsCols Set) []SubLattice {
	var out []SubLattice
	rhsCols.ForEach(func(c int) {
		out = append(out, SubLattice{RHS: c, Base: all.Without(c)})
	})
	return out
}
