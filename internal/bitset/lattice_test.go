package bitset

import (
	"reflect"
	"testing"
)

// TestLatticeFigure1 reproduces Figure 1 of the paper: the attribute lattice
// for five columns A..E has levels of sizes 5, 10, 10, 5, 1.
func TestLatticeFigure1(t *testing.T) {
	base := Full(5)
	wantSizes := []int{5, 10, 10, 5, 1}
	total := 0
	for k := 1; k <= 5; k++ {
		level := Level(base, k)
		if len(level) != wantSizes[k-1] {
			t.Errorf("level %d has %d nodes, want %d", k, len(level), wantSizes[k-1])
		}
		total += len(level)
		for _, s := range level {
			if s.Len() != k || !s.IsSubsetOf(base) {
				t.Errorf("level %d contains invalid node %v", k, s)
			}
		}
	}
	if int64(total) != LatticeSize(5) {
		t.Errorf("lattice has %d nodes, want %d", total, LatticeSize(5))
	}
	// Spot-check level 2 contains the pairs named in Figure 1.
	level2 := Level(base, 2)
	want := map[Set]bool{FromLetters("AB"): true, FromLetters("CE"): true, FromLetters("DE"): true}
	for _, s := range level2 {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("level 2 missing nodes: %v", want)
	}
}

// TestSubLatticesFigure3 reproduces Figure 3: the four sub-lattices for the
// right-hand-side columns A, B, C, D over R = {A,B,C,D}.
func TestSubLatticesFigure3(t *testing.T) {
	all := Full(4)
	subs := SubLattices(all, all)
	if len(subs) != 4 {
		t.Fatalf("got %d sub-lattices, want 4", len(subs))
	}
	wantBases := []Set{FromLetters("BCD"), FromLetters("ACD"), FromLetters("ABD"), FromLetters("ABC")}
	for i, sl := range subs {
		if sl.RHS != i {
			t.Errorf("sub-lattice %d has RHS %d", i, sl.RHS)
		}
		if sl.Base != wantBases[i] {
			t.Errorf("sub-lattice %d base = %v, want %v", i, sl.Base, wantBases[i])
		}
		if int64(1)<<sl.Base.Len()-1 != LatticeSize(sl.Base.Len()) {
			t.Errorf("sub-lattice %d size mismatch", i)
		}
	}
	// Figure 3's observation: CD appears in both the A and the B sub-lattice.
	cd := FromLetters("CD")
	if !cd.IsSubsetOf(subs[0].Base) || !cd.IsSubsetOf(subs[1].Base) {
		t.Error("CD should be a node of the A and B sub-lattices")
	}
}

func TestSearchSpaceCounts(t *testing.T) {
	// Paper Sec. 2: n*(n-1) IND candidates, 2^n-1 UCC candidates,
	// sum C(n,k)*(n-k) FD candidates.
	if got := INDCandidateCount(5); got != 20 {
		t.Errorf("INDCandidateCount(5) = %d, want 20", got)
	}
	if got := LatticeSize(5); got != 31 {
		t.Errorf("LatticeSize(5) = %d, want 31", got)
	}
	// For n=3: levels contribute C(3,1)*2 + C(3,2)*1 + C(3,3)*0 = 6+3 = 9.
	if got := FDCandidateCount(3); got != 9 {
		t.Errorf("FDCandidateCount(3) = %d, want 9", got)
	}
	// FD candidates equal n*2^(n-1) - n (each attribute can be rhs of any
	// lhs not containing it, minus empty lhs): check against closed form.
	for n := 1; n <= 12; n++ {
		want := int64(n)*(int64(1)<<(n-1)) - int64(n)
		if got := FDCandidateCount(n); got != want {
			t.Errorf("FDCandidateCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {0, 0, 1}, {3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestAprioriGen(t *testing.T) {
	// From level-1 singletons over 4 columns, apriori-gen yields all pairs.
	l1 := Level(Full(4), 1)
	l2 := AprioriGen(l1)
	if len(l2) != 6 {
		t.Fatalf("level 2 has %d candidates, want 6", len(l2))
	}
	// Remove AB: any triple containing both A and B must now be blocked.
	var pruned []Set
	for _, s := range l2 {
		if s != FromLetters("AB") {
			pruned = append(pruned, s)
		}
	}
	l3 := AprioriGen(pruned)
	want := []Set{FromLetters("ACD"), FromLetters("BCD")}
	if !reflect.DeepEqual(l3, want) {
		t.Errorf("level 3 = %v, want %v", l3, want)
	}
}

func TestAprioriGenEmpty(t *testing.T) {
	if got := AprioriGen(nil); got != nil {
		t.Errorf("AprioriGen(nil) = %v, want nil", got)
	}
}

func TestAprioriGenMatchesLevels(t *testing.T) {
	// With no pruning, iterating apriori-gen from singletons must regenerate
	// every lattice level exactly.
	base := Full(6)
	level := Level(base, 1)
	for k := 2; k <= 6; k++ {
		level = AprioriGen(level)
		want := Level(base, k)
		Sort(want)
		if !reflect.DeepEqual(level, want) {
			t.Fatalf("level %d mismatch: got %d sets, want %d", k, len(level), len(want))
		}
	}
}
