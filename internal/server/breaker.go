package server

import (
	"sync"
	"time"

	"holistic/internal/faults"
)

// Per-key circuit breakers: a single pathological dataset — one whose
// lattice walk blows every deadline, or one that keeps tripping a strategy
// panic — can otherwise be re-submitted in a tight loop forever, burning a
// worker slot on every round trip. The breaker keys on (dataset
// fingerprint, algorithm): after BreakerThreshold consecutive failures of
// the same pair it opens and fast-fails further submissions with 422
// carrying the prior error, half-opens after a cooldown to let exactly one
// trial probe through, and closes again on the first clean completion.

// breakerKey identifies the work a breaker guards: the exact dataset bytes
// (by SHA-256) profiled by one algorithm. A different algorithm on the same
// bytes — or one changed byte — is a different key.
type breakerKey struct {
	sha string
	alg string
}

// Breaker states. Transitions: closed → open (threshold consecutive
// failures), open → half-open (cooldown elapsed, lazily on the next probe),
// half-open → closed (trial succeeds) or → open (trial fails).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerEntry is one key's breaker. Fields are guarded by breakerSet.mu.
type breakerEntry struct {
	state    int
	failures int       // consecutive failures while closed
	until    time.Time // open: when the cooldown ends
	lastErr  string    // the failure that tripped it, echoed on fast-fails
	trial    bool      // half-open: the single probe is in flight
	lastUsed time.Time // for eviction
}

// breakerSet is the server's breaker registry. It is bounded: beyond
// maxBreakerKeys the stalest closed entry is evicted first (an open breaker
// is live protection and only falls to eviction when nothing closed is
// left).
type breakerSet struct {
	threshold int
	cooldown  time.Duration

	mu      sync.Mutex
	entries map[breakerKey]*breakerEntry
	trips   int64 // cumulative open transitions, for metrics
}

const maxBreakerKeys = 1024

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, entries: map[breakerKey]*breakerEntry{}}
}

// allow reports whether a submission for key may be admitted. A denial
// carries the error that tripped the breaker and how long the client should
// wait before retrying. An open breaker past its cooldown half-opens here
// and admits the caller as the single trial probe; concurrent submissions
// during the trial stay rejected until the probe settles.
func (b *breakerSet) allow(key breakerKey, now time.Time) (ok bool, lastErr string, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, found := b.entries[key]
	if !found {
		return true, "", 0
	}
	e.lastUsed = now
	switch e.state {
	case breakerClosed:
		return true, "", 0
	case breakerOpen:
		if now.Before(e.until) {
			return false, e.lastErr, e.until.Sub(now)
		}
		e.state = breakerHalfOpen
		e.trial = false
		fallthrough
	default: // breakerHalfOpen
		if e.trial {
			// The probe's outcome decides; until then the key stays closed
			// to everyone else.
			return false, e.lastErr, b.cooldown
		}
		e.trial = true
		return true, "", 0
	}
}

// recordSuccess notes a clean completion for key: a half-open trial (or any
// straggler that finishes cleanly) closes the breaker; a closed entry's
// failure streak resets and, with nothing left to remember, the entry is
// dropped.
func (b *breakerSet) recordSuccess(key breakerKey) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, found := b.entries[key]; found {
		delete(b.entries, key)
	}
}

// recordFailure notes a failed run (failure, contained panic, or deadline
// blowout) for key and reports whether this failure tripped the breaker
// open. The breaker.trip fault point, armed, trips on the first failure
// regardless of the threshold.
func (b *breakerSet) recordFailure(key breakerKey, errMsg string, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, found := b.entries[key]
	if !found {
		e = &breakerEntry{}
		b.entries[key] = e
		b.evictLocked(key)
	}
	e.lastUsed = now
	e.lastErr = errMsg
	if e.state == breakerHalfOpen {
		// The trial probe failed: straight back to open for another cooldown.
		e.state = breakerOpen
		e.trial = false
		e.until = now.Add(b.cooldown)
		b.trips++
		return true
	}
	e.failures++
	if e.failures >= b.threshold || faults.Degraded(faults.BreakerTrip) {
		e.state = breakerOpen
		e.until = now.Add(b.cooldown)
		b.trips++
		return true
	}
	return false
}

// recordNeutral clears a half-open trial whose probe ended without a
// verdict (canceled, shed, lost): the next submission becomes the new
// trial instead of the key staying locked forever.
func (b *breakerSet) recordNeutral(key breakerKey) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, found := b.entries[key]; found {
		e.trial = false
	}
}

// counts reports how many breakers are open and half-open right now, with
// cooldown expiry applied lazily (an open breaker past its cooldown counts
// as half-open: it no longer hard-rejects, it is waiting for a probe).
func (b *breakerSet) counts(now time.Time) (open, halfOpen int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.entries {
		switch {
		case e.state == breakerOpen && now.Before(e.until):
			open++
		case e.state == breakerOpen || e.state == breakerHalfOpen:
			halfOpen++
		}
	}
	return open, halfOpen
}

// tripsTotal is the cumulative number of open transitions.
func (b *breakerSet) tripsTotal() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// evictLocked bounds the registry after an insert of keep: the stalest
// closed entry goes first; only when every other entry is open protection
// does the stalest of those go.
func (b *breakerSet) evictLocked(keep breakerKey) {
	if len(b.entries) <= maxBreakerKeys {
		return
	}
	var victim breakerKey
	var victimAt time.Time
	victimOpen := true
	found := false
	for k, e := range b.entries {
		if k == keep {
			continue
		}
		isOpen := e.state != breakerClosed
		better := !found ||
			(victimOpen && !isOpen) ||
			(victimOpen == isOpen && e.lastUsed.Before(victimAt))
		if better {
			victim, victimAt, victimOpen, found = k, e.lastUsed, isOpen, true
		}
	}
	if found {
		delete(b.entries, victim)
	}
}
