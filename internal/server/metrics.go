package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the server's monotonic counters. Gauges (queue depth,
// running jobs) are derived live in writeMetrics rather than stored.
type metrics struct {
	jobsSubmitted     atomic.Int64
	jobsDone          atomic.Int64
	jobsPartial       atomic.Int64
	jobsFailed        atomic.Int64
	jobsCanceled      atomic.Int64
	jobRetries        atomic.Int64
	panics            atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedDraining  atomic.Int64
	jobsRunning       atomic.Int64
	datasetsCreated   atomic.Int64
	datasetBatches    atomic.Int64

	// Durability counters (all zero without Config.StateDir).
	walRecords          atomic.Int64
	walErrors           atomic.Int64
	checkpoints         atomic.Int64
	replayedJobs        atomic.Int64
	lostJobs            atomic.Int64
	recoveredSessions   atomic.Int64
	tornTailTruncations atomic.Int64
	corruptCheckpoints  atomic.Int64
}

// writeMetrics renders the Prometheus text exposition of the server's
// counters and gauges.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.metrics
	hits, misses, evictions, entries := s.cache.counters()
	writeMetric(w, "profiled_jobs_submitted_total", "counter",
		"Jobs accepted by POST /v1/jobs (including cache-served ones).", m.jobsSubmitted.Load())
	writeMetric(w, "profiled_jobs_done_total", "counter",
		"Jobs that finished successfully.", m.jobsDone.Load())
	writeMetric(w, "profiled_jobs_partial_total", "counter",
		"Jobs finished with a valid partial (anytime) result after hitting their deadline.", m.jobsPartial.Load())
	writeMetric(w, "profiled_jobs_failed_total", "counter",
		"Jobs that finished with an error (including per-job deadline hits).", m.jobsFailed.Load())
	writeMetric(w, "profiled_jobs_canceled_total", "counter",
		"Jobs canceled via DELETE or server shutdown.", m.jobsCanceled.Load())
	writeMetric(w, "profiled_job_retries_total", "counter",
		"Job re-runs triggered by transient failures.", m.jobRetries.Load())
	writeMetric(w, "profiled_panics_total", "counter",
		"Panics recovered from profiling runs (jobs failed, process survived).", m.panics.Load())
	writeMetric(w, "profiled_jobs_rejected_queue_full_total", "counter",
		"Submissions rejected with 429 because the queue was full.", m.rejectedQueueFull.Load())
	writeMetric(w, "profiled_jobs_rejected_draining_total", "counter",
		"Submissions rejected with 503 during shutdown.", m.rejectedDraining.Load())
	writeMetric(w, "profiled_datasets_created_total", "counter",
		"Incremental profiling sessions created via POST /v1/datasets.", m.datasetsCreated.Load())
	writeMetric(w, "profiled_dataset_batches_total", "counter",
		"Batch appends accepted via POST /v1/datasets/{id}/batches.", m.datasetBatches.Load())
	writeMetric(w, "profiled_wal_records_total", "counter",
		"Records fsync'd to the state WAL (admissions, terminal transitions, markers).", m.walRecords.Load())
	writeMetric(w, "profiled_wal_errors_total", "counter",
		"State WAL appends that failed (admissions rejected, terminal records dropped).", m.walErrors.Load())
	writeMetric(w, "profiled_checkpoints_written_total", "counter",
		"Dataset checkpoints written atomically after completed dataset jobs.", m.checkpoints.Load())
	writeMetric(w, "profiled_replayed_jobs_total", "counter",
		"Journaled in-flight jobs re-enqueued during startup recovery.", m.replayedJobs.Load())
	writeMetric(w, "profiled_lost_jobs_total", "counter",
		"Journaled in-flight dataset jobs finished as lost during startup recovery.", m.lostJobs.Load())
	writeMetric(w, "profiled_recovered_sessions_total", "counter",
		"Dataset sessions restored ready (warm profiler resumed) during startup recovery.", m.recoveredSessions.Load())
	writeMetric(w, "profiled_corrupt_tail_truncations_total", "counter",
		"Torn WAL tails truncated during startup recovery (expected crash residue).", m.tornTailTruncations.Load())
	writeMetric(w, "profiled_corrupt_checkpoints_total", "counter",
		"Dataset checkpoints rejected as corrupt during startup recovery.", m.corruptCheckpoints.Load())
	writeMetric(w, "profiled_result_cache_hits_total", "counter",
		"Submissions served from the content-addressed result cache.", hits)
	writeMetric(w, "profiled_result_cache_misses_total", "counter",
		"Submissions that missed the result cache.", misses)
	writeMetric(w, "profiled_result_cache_evictions_total", "counter",
		"Reports evicted from the result cache.", evictions)
	writeMetric(w, "profiled_result_cache_entries", "gauge",
		"Reports currently held in the result cache.", int64(entries))
	writeMetric(w, "profiled_jobs_running", "gauge",
		"Jobs currently executing on the worker pool.", m.jobsRunning.Load())
	writeMetric(w, "profiled_queue_depth", "gauge",
		"Jobs waiting in the admission queue.", int64(len(s.queue)))
	writeMetric(w, "profiled_jobs_retained", "gauge",
		"Job records currently retained for status queries.", int64(s.jobCount()))
	degraded := int64(0)
	if s.consecutivePanics.Load() >= int64(s.cfg.DegradedAfter) {
		degraded = 1
	}
	writeMetric(w, "profiled_degraded", "gauge",
		"1 while the panic watchdog reports the process degraded.", degraded)
}

func writeMetric(w io.Writer, name, kind, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, v)
}
