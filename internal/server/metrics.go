package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics holds the server's monotonic counters. Gauges (queue depth,
// running jobs, breaker and watermark states) are derived live in
// writeMetrics rather than stored.
type metrics struct {
	jobsSubmitted     atomic.Int64
	jobsDone          atomic.Int64
	jobsPartial       atomic.Int64
	jobsFailed        atomic.Int64
	jobsCanceled      atomic.Int64
	jobRetries        atomic.Int64
	panics            atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedDraining  atomic.Int64
	jobsRunning       atomic.Int64
	datasetsCreated   atomic.Int64
	datasetBatches    atomic.Int64

	// Overload-resilience counters: the four admission rejection reasons
	// (rejectedQueueFull doubles as the queue_full reason), CoDel sheds,
	// dequeue-time doomed-job failures, idempotent replays, breaker
	// fast-fails.
	rejectedPredicted   atomic.Int64
	rejectedBreaker     atomic.Int64
	rejectedMemPressure atomic.Int64
	jobsShed            atomic.Int64
	jobsDoomedInQueue   atomic.Int64
	idemReplays         atomic.Int64
	breakerFastFails    atomic.Int64

	// queueWait observes the sojourn of every job a worker dequeues.
	queueWait histogram

	// Durability counters (all zero without Config.StateDir).
	walRecords          atomic.Int64
	walErrors           atomic.Int64
	checkpoints         atomic.Int64
	replayedJobs        atomic.Int64
	lostJobs            atomic.Int64
	recoveredSessions   atomic.Int64
	tornTailTruncations atomic.Int64
	corruptCheckpoints  atomic.Int64
}

// queueWaitBuckets are the histogram's upper bounds in seconds (+Inf is
// implicit): fine-grained around the healthy sub-second range, coarse in
// overload territory. An array, not a slice, so its length is a constant the
// histogram's counter array can size itself from.
var queueWaitBuckets = [...]float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// histogram is a fixed-bucket Prometheus histogram over float64
// observations. Counts are per-bucket (cumulated at render time) and the
// sum is kept in microseconds so the whole structure stays lock-free.
type histogram struct {
	counts    [len(queueWaitBuckets) + 1]atomic.Int64 // last slot = +Inf
	sumMicros atomic.Int64
	total     atomic.Int64
}

func (h *histogram) observe(v float64) {
	idx := len(queueWaitBuckets)
	for i, le := range queueWaitBuckets {
		if v <= le {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sumMicros.Add(int64(v * 1e6))
	h.total.Add(1)
}

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, le := range queueWaitBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(le), cum)
	}
	cum += h.counts[len(queueWaitBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMicros.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}

func formatLE(le float64) string { return fmt.Sprintf("%g", le) }

// writeMetrics renders the Prometheus text exposition of the server's
// counters and gauges.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.metrics
	hits, misses, evictions, entries := s.cache.counters()
	writeMetric(w, "profiled_jobs_submitted_total", "counter",
		"Jobs accepted by POST /v1/jobs (including cache-served ones).", m.jobsSubmitted.Load())
	writeMetric(w, "profiled_jobs_done_total", "counter",
		"Jobs that finished successfully.", m.jobsDone.Load())
	writeMetric(w, "profiled_jobs_partial_total", "counter",
		"Jobs finished with a valid partial (anytime) result after hitting their deadline.", m.jobsPartial.Load())
	writeMetric(w, "profiled_jobs_failed_total", "counter",
		"Jobs that finished with an error (including per-job deadline hits).", m.jobsFailed.Load())
	writeMetric(w, "profiled_jobs_canceled_total", "counter",
		"Jobs canceled via DELETE, server shutdown, or overload shedding.", m.jobsCanceled.Load())
	writeMetric(w, "profiled_job_retries_total", "counter",
		"Job re-runs triggered by transient failures.", m.jobRetries.Load())
	writeMetric(w, "profiled_panics_total", "counter",
		"Panics recovered from profiling runs (jobs failed, process survived).", m.panics.Load())
	writeMetric(w, "profiled_jobs_rejected_queue_full_total", "counter",
		"Submissions rejected with 429 because the queue was full.", m.rejectedQueueFull.Load())
	writeMetric(w, "profiled_jobs_rejected_draining_total", "counter",
		"Submissions rejected with 503 during shutdown.", m.rejectedDraining.Load())

	// Admission rejections broken out by reason (queue_full mirrors the
	// dedicated counter above; the label set is the operator's one-stop
	// overload dashboard).
	fmt.Fprintf(w, "# HELP profiled_admission_rejections_total Submissions rejected at admission, by reason.\n")
	fmt.Fprintf(w, "# TYPE profiled_admission_rejections_total counter\n")
	fmt.Fprintf(w, "profiled_admission_rejections_total{reason=\"queue_full\"} %d\n", m.rejectedQueueFull.Load())
	fmt.Fprintf(w, "profiled_admission_rejections_total{reason=\"predicted_deadline\"} %d\n", m.rejectedPredicted.Load())
	fmt.Fprintf(w, "profiled_admission_rejections_total{reason=\"breaker_open\"} %d\n", m.rejectedBreaker.Load())
	fmt.Fprintf(w, "profiled_admission_rejections_total{reason=\"mem_pressure\"} %d\n", m.rejectedMemPressure.Load())

	writeMetric(w, "profiled_jobs_shed_total", "counter",
		"Queued jobs shed (canceled) by CoDel when queue sojourn stayed above target.", m.jobsShed.Load())
	writeMetric(w, "profiled_jobs_doomed_in_queue_total", "counter",
		"Jobs whose deadline elapsed while queued, failed at dequeue without running.", m.jobsDoomedInQueue.Load())
	writeMetric(w, "profiled_idempotent_replays_total", "counter",
		"Submissions deduplicated onto an existing job via an idempotency key.", m.idemReplays.Load())
	writeMetric(w, "profiled_breaker_trips_total", "counter",
		"Circuit-breaker open transitions (per dataset fingerprint + algorithm).", s.breakers.tripsTotal())
	writeMetric(w, "profiled_breaker_fast_fails_total", "counter",
		"Submissions fast-failed with 422 by an open circuit breaker.", m.breakerFastFails.Load())
	m.queueWait.write(w, "profiled_queue_wait_seconds",
		"Queue sojourn of dequeued jobs (admission to worker pickup).")

	writeMetric(w, "profiled_datasets_created_total", "counter",
		"Incremental profiling sessions created via POST /v1/datasets.", m.datasetsCreated.Load())
	writeMetric(w, "profiled_dataset_batches_total", "counter",
		"Batch appends accepted via POST /v1/datasets/{id}/batches.", m.datasetBatches.Load())
	writeMetric(w, "profiled_wal_records_total", "counter",
		"Records fsync'd to the state WAL (admissions, terminal transitions, markers).", m.walRecords.Load())
	writeMetric(w, "profiled_wal_errors_total", "counter",
		"State WAL appends that failed (admissions rejected, terminal records dropped).", m.walErrors.Load())
	writeMetric(w, "profiled_checkpoints_written_total", "counter",
		"Dataset checkpoints written atomically after completed dataset jobs.", m.checkpoints.Load())
	writeMetric(w, "profiled_replayed_jobs_total", "counter",
		"Journaled in-flight jobs re-enqueued during startup recovery.", m.replayedJobs.Load())
	writeMetric(w, "profiled_lost_jobs_total", "counter",
		"Journaled in-flight dataset jobs finished as lost during startup recovery.", m.lostJobs.Load())
	writeMetric(w, "profiled_recovered_sessions_total", "counter",
		"Dataset sessions restored ready (warm profiler resumed) during startup recovery.", m.recoveredSessions.Load())
	writeMetric(w, "profiled_corrupt_tail_truncations_total", "counter",
		"Torn WAL tails truncated during startup recovery (expected crash residue).", m.tornTailTruncations.Load())
	writeMetric(w, "profiled_corrupt_checkpoints_total", "counter",
		"Dataset checkpoints rejected as corrupt during startup recovery.", m.corruptCheckpoints.Load())
	writeMetric(w, "profiled_result_cache_hits_total", "counter",
		"Submissions served from the content-addressed result cache.", hits)
	writeMetric(w, "profiled_result_cache_misses_total", "counter",
		"Submissions that missed the result cache.", misses)
	writeMetric(w, "profiled_result_cache_evictions_total", "counter",
		"Reports evicted from the result cache.", evictions)
	writeMetric(w, "profiled_result_cache_entries", "gauge",
		"Reports currently held in the result cache.", int64(entries))
	writeMetric(w, "profiled_jobs_running", "gauge",
		"Jobs currently executing on the worker pool.", m.jobsRunning.Load())
	writeMetric(w, "profiled_queue_depth", "gauge",
		"Jobs waiting in the admission queue.", int64(len(s.queue)))
	writeMetric(w, "profiled_jobs_retained", "gauge",
		"Job records currently retained for status queries.", int64(s.jobCount()))

	open, halfOpen := s.breakers.counts(time.Now())
	writeMetric(w, "profiled_breakers_open", "gauge",
		"Circuit breakers currently open (fast-failing their key).", int64(open))
	writeMetric(w, "profiled_breakers_half_open", "gauge",
		"Circuit breakers past cooldown, waiting on (or running) a trial probe.", int64(halfOpen))
	level, heap := s.governor.last()
	writeMetric(w, "profiled_mem_watermark_level", "gauge",
		"Memory governor level: 0 healthy, 1 above soft watermark, 2 above hard.", int64(level))
	writeMetric(w, "profiled_mem_heap_bytes", "gauge",
		"Live heap bytes behind the governor's last sample (0 with watermarks unset).", heap)

	degraded := int64(0)
	if s.consecutivePanics.Load() >= int64(s.cfg.DegradedAfter) {
		degraded = 1
	}
	writeMetric(w, "profiled_degraded", "gauge",
		"1 while the panic watchdog reports the process degraded.", degraded)
}

func writeMetric(w io.Writer, name, kind, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, v)
}
