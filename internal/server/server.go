// Package server turns the holistic profiling library into a long-running
// service: an HTTP/JSON job API layered over a bounded admission queue, a
// worker pool that drives the engine's strategy registry, a
// content-addressed result cache keyed by dataset bytes, and per-job
// progress streams adapted from the engine's Observer events.
//
// The layering (queue → workers → registry → PLI cache → result cache)
// exists because dependency discovery is exponential in the worst case:
// admission control and per-job deadlines bound the damage of a hostile
// dataset, while the result cache extends the paper's share-everything idea
// across requests — byte-identical submissions never touch the lattice
// twice.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"holistic/internal/core"
	"holistic/internal/faults"
)

// Config tunes a Server. The zero value selects sensible defaults
// everywhere: 2 workers, a queue of 16, a 5-minute job deadline, inline-only
// submissions, 256 cached reports, 32 MiB request bodies.
type Config struct {
	// Workers is the number of jobs executed concurrently (<= 0 selects 2).
	// Each job may additionally fan out internally via its workers option.
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with 429 (<= 0 selects 16).
	QueueDepth int
	// DefaultTimeout is the per-job deadline applied when a request does not
	// ask for one (0 selects 5 minutes; negative disables the default).
	DefaultTimeout time.Duration
	// MaxTimeout caps requested deadlines (0 = no cap).
	MaxTimeout time.Duration
	// DataDir enables path-based submissions, resolved inside this
	// directory. Empty disables them: only inline CSV is accepted.
	DataDir string
	// CacheEntries bounds the content-addressed result cache (<= 0 selects
	// 256 reports).
	CacheEntries int
	// MaxBodyBytes bounds request bodies (<= 0 selects 32 MiB).
	MaxBodyBytes int64
	// MaxRetainedJobs bounds the terminal job records kept for status
	// queries; the oldest finished jobs are dropped first (<= 0 selects
	// 1024).
	MaxRetainedJobs int
	// MaxCacheBytes is the default PLI-cache byte budget applied to jobs
	// that do not set max_cache_bytes themselves (0 = engine default,
	// < 0 = unbudgeted).
	MaxCacheBytes int64
	// RetryAttempts bounds how often a job failing on a transient error is
	// re-run on its worker slot before it is finished as failed (0 selects
	// 2; negative disables retries).
	RetryAttempts int
	// RetryBackoff is the sleep before the first retry, doubled per attempt
	// (<= 0 selects 50ms).
	RetryBackoff time.Duration
	// DegradedAfter is the watchdog threshold: after this many consecutive
	// jobs failing on recovered panics, /healthz reports degraded until a
	// job completes cleanly again (<= 0 selects 3).
	DegradedAfter int
	// QueueTarget is the CoDel sojourn target of the adaptive admission
	// controller: when dequeue-time queue wait stays above it for a full
	// target-length interval, the oldest queued job is shed (<= 0 selects
	// 2s; set very large to effectively disable shedding).
	QueueTarget time.Duration
	// BreakerThreshold is the consecutive-failure count at which the
	// per-(dataset, algorithm) circuit breaker opens (<= 0 selects 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fast-fails with 422
	// before half-opening for a single trial probe (<= 0 selects 30s).
	BreakerCooldown time.Duration
	// MemSoftBytes is the soft heap watermark: above it, newly admitted
	// jobs run degraded — PLI cache budget clamped to DegradedCacheBytes,
	// sampled-check prefilter forced on (0 disables).
	MemSoftBytes int64
	// MemHardBytes is the hard heap watermark: above it, submissions of
	// LargeJobBytes or more are refused with 503 until pressure recedes
	// (0 disables).
	MemHardBytes int64
	// DegradedCacheBytes is the PLI cache budget forced onto jobs admitted
	// above the soft watermark (<= 0 selects 16 MiB). A job's own tighter
	// budget wins.
	DegradedCacheBytes int64
	// LargeJobBytes is the dataset size at which a submission counts as
	// large for the hard-watermark gate (<= 0 selects 256 KiB).
	LargeJobBytes int64
	// StateDir enables crash-safe state: every admitted job and dataset
	// session is journaled to a WAL in this directory, dataset profiler
	// state is checkpointed after every completed job, and Open replays the
	// directory on startup so sessions and job outcomes survive a kill -9.
	// Empty keeps the server fully in-memory.
	StateDir string
	// Logf, when non-nil, receives one line per job transition.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.DefaultTimeout < 0 {
		c.DefaultTimeout = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 2
	}
	if c.RetryAttempts < 0 {
		c.RetryAttempts = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 3
	}
	if c.QueueTarget <= 0 {
		c.QueueTarget = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.DegradedCacheBytes <= 0 {
		c.DegradedCacheBytes = 16 << 20
	}
	if c.LargeJobBytes <= 0 {
		c.LargeJobBytes = 256 << 10
	}
}

// Server is the profiling service. Create one with New, expose Handler on an
// http.Server, and stop it with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *resultCache
	metrics metrics

	// baseCtx parents every job context; cancelRuns aborts all in-flight
	// jobs (the forced half of shutdown).
	baseCtx    context.Context
	cancelRuns context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	// Overload-resilience subsystems: the adaptive admission controller
	// (service-time EWMAs + CoDel shedding), the per-key circuit breakers,
	// and the memory-watermark governor.
	admission *admission
	breakers  *breakerSet
	governor  *memGovernor

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // submission order, for retention eviction
	nextID   int64
	// idem maps idempotency keys onto their jobs for the retained lifetime
	// of the job: a retried submission with a known key replays the
	// existing job instead of enqueueing a duplicate. Rebuilt from the
	// journal on recovery.
	idem map[string]*job

	// datasets are the server's incremental profiling sessions (see
	// dataset.go). They are keyed by id and live for the server's lifetime:
	// unlike finished jobs, a dataset holds warm state that future batch
	// appends extend, so there is no retention eviction.
	datasets map[string]*dataset
	dsOrder  []string // creation order, for listing
	nextDSID int64

	// consecutivePanics drives the health watchdog: incremented when a job
	// fails on a recovered panic, reset when one completes cleanly. At
	// cfg.DegradedAfter, /healthz flips to degraded.
	consecutivePanics atomic.Int64

	// store is the durability layer behind Config.StateDir (nil without it).
	// crashed is the kill -9 test hook: set, it suppresses the drain-time
	// finalization so on-disk state looks exactly like a crash.
	store   *store
	crashed atomic.Bool

	shutdownOnce sync.Once
	finalizeOnce sync.Once
}

// New builds a Server with cfg and starts its worker pool. With
// Config.StateDir set, use Open instead: New panics on a recovery error
// (only reachable with a state directory) and discards the recovery stats.
func New(cfg Config) *Server {
	s, _, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server.New: %v", err))
	}
	return s
}

// Open builds a Server with cfg, replays Config.StateDir (when set) to
// restore dataset sessions and journaled jobs from before the last stop, and
// starts the worker pool. Jobs that were queued or running at the crash are
// re-enqueued (plain jobs) or finished as lost (dataset jobs) before any new
// submission is admitted.
func Open(cfg Config) (*Server, RecoveryStats, error) {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		cache:      newResultCache(cfg.CacheEntries),
		baseCtx:    ctx,
		cancelRuns: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
		idem:       make(map[string]*job),
		datasets:   make(map[string]*dataset),
		admission:  newAdmission(cfg.Workers, cfg.QueueTarget),
		breakers:   newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		governor:   newMemGovernor(cfg.MemSoftBytes, cfg.MemHardBytes),
	}
	s.routes()

	var stats RecoveryStats
	if cfg.StateDir != "" {
		st, replay, err := openStore(cfg.StateDir)
		if err != nil {
			cancel()
			return nil, stats, fmt.Errorf("open state dir %s: %w", cfg.StateDir, err)
		}
		s.store = st
		var requeue []*job
		stats, requeue = s.recoverState(replay)
		// Replayed jobs enter the queue before the workers start, so they run
		// ahead of anything admitted over HTTP. More in-flight jobs than the
		// (possibly reconfigured) queue holds cannot be re-admitted — those
		// are finished as lost rather than silently dropped.
		for _, j := range requeue {
			select {
			case s.queue <- j:
			default:
				s.finish(j, StateLost, "replay: admission queue full", nil)
			}
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s, stats, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleGetDataset)
	s.mux.HandleFunc("POST /v1/datasets/{id}/batches", s.handleAppendBatch)
	s.mux.HandleFunc("GET /v1/datasets/{id}/profile", s.handleGetProfile)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the HTTP handler serving the job API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Shutdown drains the server: admission switches to 503, still-queued jobs
// are canceled immediately, and in-flight jobs run on. When ctx expires
// before they finish, their contexts are canceled and Shutdown returns
// ctx.Err() after they unwind; a clean drain returns nil. Safe to call more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		var queued []*job
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.state == StateQueued {
				queued = append(queued, j)
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		for _, j := range queued {
			s.cancelIfQueued(j, "server shutting down")
		}
		// No submission can be mid-send once draining is visible (the
		// non-blocking send happens under s.mu), so closing is safe.
		close(s.queue)
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelRuns()
		<-done
		err = ctx.Err()
	}
	// Every worker has unwound: no job can journal or checkpoint behind our
	// back anymore, so the durable state can be finalized (final checkpoints,
	// clean-shutdown marker, WAL close). Exactly once across repeated calls.
	s.finalizeOnce.Do(s.finalizeStore)
	return err
}

// --- job lifecycle ---

// runJob executes one queued job on a worker goroutine. Failure containment
// happens here: strategy panics come back from the engine as *core.PanicError
// (the worker pool and the daemon survive), transient errors are retried with
// backoff on the same worker slot, and a run stopped by its deadline finishes
// as partial with the anytime result it accumulated instead of discarding it.
func (s *Server) runJob(j *job) {
	// Defense in depth: the engine already converts profiling panics into
	// errors, but a panic in the server's own post-processing (report
	// building, cache insertion) must not kill the worker goroutine either.
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			s.consecutivePanics.Add(1)
			s.finish(j, StateFailed, fmt.Sprintf("internal panic: %v", r), nil)
		}
	}()

	// Dequeue-time overload accounting: the sojourn this job spent queued
	// feeds the queue-wait histogram and the CoDel state. When sojourn has
	// stayed above target for a full interval, the oldest still-queued job
	// is shed — the queue sheds from the head under sustained overload
	// instead of serving every job late.
	sojourn := time.Since(j.submitted)
	s.metrics.queueWait.observe(sojourn.Seconds())
	if s.admission.onDequeue(sojourn) {
		if shed := s.shedOldestQueued(); shed != "" {
			s.logf("overload: shed queued job %s (queue sojourn %v above target %v)",
				shed, sojourn.Round(time.Millisecond), s.cfg.QueueTarget)
		}
	}

	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	// A job whose whole deadline elapsed in the queue is doomed: fail it
	// here with an honest message instead of starting a run that the
	// already-expired context would cut on its first cancellation check.
	if j.timeout > 0 && sojourn >= j.timeout {
		msg := fmt.Sprintf("deadline (%v) elapsed after %v in queue; run never started — resubmit with a longer timeout or retry off-peak",
			j.timeout, sojourn.Round(time.Millisecond))
		j.state = StateFailed
		j.err = msg
		j.finished = time.Now().UTC()
		j.mu.Unlock()
		s.metrics.jobsDoomedInQueue.Add(1)
		s.announce(j, StateFailed, msg)
		// Neutral for the breaker: the queue, not the dataset, ate the
		// deadline.
		if j.hasBreaker {
			s.breakers.recordNeutral(j.breakerKey)
		}
		if j.done != nil {
			j.done(StateFailed, msg)
		}
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.timeout)
	}
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.mu.Unlock()
	defer cancel()

	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: StateRunning})
	s.logf("job %s running: algorithm=%s dataset=%s", j.id, j.req.Algorithm, j.req.Dataset)

	obs := core.EventObserver{Sink: func(e core.Event) {
		j.events.append(JobEvent{Event: e})
	}}
	opts := j.req.options()
	if opts.MaxCacheBytes == 0 {
		opts.MaxCacheBytes = s.cfg.MaxCacheBytes
	}
	if j.degraded {
		// Admitted above the soft memory watermark: clamp the PLI cache
		// budget and force the sampled-check prefilter. Both trade wall time
		// for footprint without changing results (sampling only refutes, the
		// budget only evicts), so degraded-run reports are still cacheable.
		opts.SampleCheck = true
		if opts.MaxCacheBytes <= 0 || opts.MaxCacheBytes > s.cfg.DegradedCacheBytes {
			opts.MaxCacheBytes = s.cfg.DegradedCacheBytes
		}
	}

	var res *core.Result
	var report *core.Report
	var err error
	for attempt := 0; ; attempt++ {
		if j.exec != nil {
			res, report, err = j.exec(ctx, opts, obs)
		} else {
			res, err = core.RunContext(ctx, j.req.Algorithm, j.src, opts, obs)
		}
		if err == nil || j.noRetry || attempt >= s.cfg.RetryAttempts || !isTransient(err) || ctx.Err() != nil {
			break
		}
		s.metrics.jobRetries.Add(1)
		j.events.append(JobEvent{Event: core.Event{Type: EventRetry}, Attempt: attempt + 1, Error: err.Error()})
		s.logf("job %s transient failure (attempt %d/%d): %v", j.id, attempt+1, s.cfg.RetryAttempts, err)
		select {
		case <-time.After(s.cfg.RetryBackoff << attempt):
		case <-ctx.Done():
		}
	}

	// A recovered panic is surfaced in the event log with its stack and
	// feeds the health watchdog; clean completion resets the watchdog.
	var pe *core.PanicError
	if errors.As(err, &pe) {
		s.metrics.panics.Add(1)
		s.consecutivePanics.Add(1)
		j.events.append(JobEvent{Event: core.Event{Type: EventPanic}, Error: pe.Error(), Stack: pe.Stack})
	}

	switch {
	case err == nil:
		s.consecutivePanics.Store(0)
		if j.exec == nil {
			report = core.NewReport(j.src.Relation(), res, j.req.WithStats)
			s.cache.put(j.key, report)
		}
		s.finish(j, StateDone, "", report)
	case errors.Is(err, context.Canceled):
		s.finish(j, StateCanceled, "canceled", nil)
	case errors.Is(err, context.DeadlineExceeded):
		msg := fmt.Sprintf("job deadline (%v) exceeded", j.timeout)
		if report, ok := partialReport(j, res); ok {
			s.finish(j, StatePartial, msg, report)
			return
		}
		s.finish(j, StateFailed, msg, nil)
	default:
		s.finish(j, StateFailed, err.Error(), nil)
	}
}

// partialReport renders the anytime result of an interrupted run, provided it
// actually contains findings — every dependency confirmed before the stop is
// valid (minimality is only guaranteed per confirmed dependency). A run that
// was cut before producing anything stays a plain failure. Partial reports
// never enter the content-addressed result cache: the same submission must
// re-profile, not replay an incomplete answer.
func partialReport(j *job, res *core.Result) (*core.Report, bool) {
	if res == nil || !res.Partial || j.src == nil {
		return nil, false
	}
	if len(res.INDs)+len(res.UCCs)+len(res.FDs) == 0 {
		return nil, false
	}
	return core.NewReport(j.src.Relation(), res, j.req.WithStats), true
}

// isTransient reports whether err is marked retryable anywhere in its chain
// (e.g. an injected transient fault, or an I/O layer flagging a temporary
// condition).
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// finish moves j (owned by the calling worker, state running) to a terminal
// state and announces the transition. The outcome feeds the overload
// controllers: real service time trains the admission estimator, and the
// run's verdict settles this key's circuit breaker — success closes it,
// failure or a deadline blowout counts toward (or past) its threshold,
// cancellation and loss say nothing about the dataset and stay neutral.
func (s *Server) finish(j *job, state, errMsg string, report *core.Report) {
	j.mu.Lock()
	j.state = state
	j.err = errMsg
	j.result = report
	j.finished = time.Now().UTC()
	started, finished := j.started, j.finished
	j.mu.Unlock()
	if !started.IsZero() {
		switch state {
		case StateDone, StatePartial, StateFailed:
			s.admission.observeService(j.req.Algorithm, finished.Sub(started))
		}
	}
	if j.hasBreaker {
		switch state {
		case StateDone:
			s.breakers.recordSuccess(j.breakerKey)
		case StatePartial, StateFailed:
			if s.breakers.recordFailure(j.breakerKey, errMsg, finished) {
				s.logf("circuit breaker opened: sha=%s algorithm=%s after %q", j.breakerKey.sha[:12], j.breakerKey.alg, errMsg)
			}
		default:
			s.breakers.recordNeutral(j.breakerKey)
		}
	}
	s.announce(j, state, errMsg)
	if j.done != nil {
		j.done(state, errMsg)
	}
}

// announce records a terminal transition in the job's event stream and bumps
// the outcome counter. The state fields must already be set.
func (s *Server) announce(j *job, state, errMsg string) {
	j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: state, Error: errMsg})
	j.events.close()
	switch state {
	case StateDone:
		s.metrics.jobsDone.Add(1)
	case StatePartial:
		s.metrics.jobsPartial.Add(1)
	case StateFailed:
		s.metrics.jobsFailed.Add(1)
	case StateCanceled:
		s.metrics.jobsCanceled.Add(1)
	}
	s.logf("job %s %s%s", j.id, state, suffixIf(errMsg))
	// The terminal record lands after any checkpoint the job's exec wrote:
	// a journaled "done" therefore always has its durable state on disk.
	s.journalEnd(j, state, errMsg)
}

func suffixIf(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// cancelIfQueued finishes a still-queued job as canceled; the worker that
// later pulls it off the queue sees the terminal state and skips it. It is a
// no-op for running or terminal jobs. The transition happens atomically
// under the job lock, so it cannot interleave with a worker claiming the
// job (runJob moves queued → running under the same lock).
func (s *Server) cancelIfQueued(j *job, reason string) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.canceled = true
	j.state = StateCanceled
	j.err = reason
	j.finished = time.Now().UTC()
	j.mu.Unlock()
	// Neutral for the breaker: a canceled or shed job says nothing about
	// whether its dataset is pathological, and a half-open trial slot it may
	// hold must be released.
	if j.hasBreaker {
		s.breakers.recordNeutral(j.breakerKey)
	}
	s.announce(j, StateCanceled, reason)
	if j.done != nil {
		j.done(StateCanceled, reason)
	}
	return true
}

// register adds j to the job table, evicting the oldest terminal records
// beyond the retention bound.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerLocked(j)
}

// registerLocked is register with s.mu already held. It also maintains the
// idempotency-key table: the key maps onto the job for exactly the job's
// retained lifetime, so dedup and retention expire together (a replayed key
// whose job was evicted is simply a fresh submission again).
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	if j.idemKey != "" {
		s.idem[j.idemKey] = j
	}
	s.order = append(s.order, j.id)
	for len(s.order) > s.cfg.MaxRetainedJobs {
		evicted := false
		for i, id := range s.order {
			old := s.jobs[id]
			old.mu.Lock()
			dead := terminal(old.state)
			old.mu.Unlock()
			if dead {
				delete(s.jobs, id)
				if old.idemKey != "" && s.idem[old.idemKey] == old {
					delete(s.idem, old.idemKey)
				}
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // every retained job is still live; keep them all
		}
	}
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) jobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// --- HTTP handlers ---

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// decodeBody decodes a bounded JSON request body into v with unknown fields
// rejected, writing the structured 400/413 response itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.logf("request rejected (413): %v", err)
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: err.Error()})
			return false
		}
		// Unknown fields land here too (DisallowUnknownFields); logging the
		// reason makes a typoed option debuggable server-side.
		s.logf("request rejected (400): invalid request body: %v", err)
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid request body: " + err.Error()})
		return false
	}
	return true
}

// resolveTimeout turns a request's timeout_seconds into the effective job
// deadline: the server default when unset, clamped to MaxTimeout. An
// explicitly requested out-of-range deadline is a client error — the 400 is
// written here — not something to silently clamp.
func (s *Server) resolveTimeout(w http.ResponseWriter, requested float64) (time.Duration, bool) {
	timeout := s.cfg.DefaultTimeout
	if requested > 0 {
		timeout = time.Duration(requested * float64(time.Second))
		if s.cfg.MaxTimeout > 0 && timeout > s.cfg.MaxTimeout {
			s.logf("request rejected (400): timeout_seconds %g exceeds maximum %v", requested, s.cfg.MaxTimeout)
			writeJSON(w, http.StatusBadRequest, apiError{
				Error: fmt.Sprintf("timeout_seconds must be <= %g", s.cfg.MaxTimeout.Seconds()),
			})
			return 0, false
		}
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout // server default clamped, never rejected
	}
	return timeout, true
}

// enqueueJob admits j: the draining check, the idempotency-key claim, the
// admission-control checks, the journal write, the send and the registration
// happen under one critical section, so Shutdown's queued-job sweep (same
// lock) sees every job that is in the queue, no send can be mid-flight when
// Shutdown closes the channel, and exactly one of any set of concurrent
// same-key submissions wins the key. The admit record (when the server is
// durable) is fsync'd BEFORE the job becomes runnable: a crash after the
// client's 202 can therefore never forget the job, and a worker can never
// finish a job whose admission was not journaled yet. Rejections (503
// draining or journal failure, 429 predicted-deadline or full) are written
// here, all with a Retry-After computed from the controller's wait estimate.
func (s *Server) enqueueJob(w http.ResponseWriter, j *job, admit *walRecord) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
		return false
	}
	// Idempotency double-check inside the critical section: a racing
	// duplicate may have claimed the key between handleSubmit's lock-free
	// fast path and here. The first claimant wins; everyone else replays its
	// job.
	if j.idemKey != "" {
		if prev, hit := s.idem[j.idemKey]; hit {
			s.mu.Unlock()
			s.replayIdem(w, prev)
			return false
		}
	}
	// Deadline-aware admission: with service-time history for this algorithm
	// in hand, a job predicted to exhaust its entire deadline queueing plus
	// running is rejected now with an honest Retry-After instead of being
	// accepted, parked, and failed minutes later. The slack margin absorbs
	// estimate noise; a cold controller (no history) always admits and learns.
	predictedWait := s.admission.predictWait(len(s.queue))
	if est, known := s.admission.estimateService(j.req.Algorithm); known && j.timeout > 0 {
		if predictedWait+est > j.timeout.Seconds()+admissionSlack(j.timeout).Seconds() {
			s.mu.Unlock()
			s.metrics.rejectedPredicted.Add(1)
			retry := retryAfterSecs(predictedWait)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.logf("job rejected (429): predicted %.2fs wait + %.2fs service exceeds deadline %v", predictedWait, est, j.timeout)
			writeJSON(w, http.StatusTooManyRequests, apiError{
				Error: fmt.Sprintf("predicted completion (%.1fs queue wait + %.1fs service) exceeds the %v deadline; retry in %ds or raise timeout_seconds",
					predictedWait, est, j.timeout, retry),
			})
			return false
		}
	}
	// Capacity check instead of a non-blocking send: every send happens
	// under s.mu and workers only drain, so a free slot observed here cannot
	// vanish before the send below.
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.metrics.rejectedQueueFull.Add(1)
		retry := retryAfterSecs(predictedWait)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Error: fmt.Sprintf("job queue is full (%d waiting); retry in %ds", s.cfg.QueueDepth, retry),
		})
		return false
	}
	if s.store != nil && admit != nil {
		if err := s.journal(*admit); err != nil {
			s.mu.Unlock()
			s.logf("job %s rejected (503): journal admit: %v", j.id, err)
			s.setRetryAfter(w)
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "state journal unavailable: " + err.Error()})
			return false
		}
		j.journaled = true
	}
	s.queue <- j
	s.registerLocked(j)
	s.mu.Unlock()
	s.metrics.jobsSubmitted.Add(1)
	j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: StateQueued})
	return true
}

// setRetryAfter stamps a Retry-After computed from the controller's current
// queue-wait prediction (clamped to [1s, 60s]) — an honest hint, not a
// constant.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(s.admission.predictWait(len(s.queue)))))
}

// replayIdem answers a submission whose idempotency key already maps onto a
// job: the existing record — same ID, same event stream — is the response,
// 200 once it settled, 202 while it is still queued or running. The retry
// that raced a slow original gets the original's handle, never a duplicate
// execution.
func (s *Server) replayIdem(w http.ResponseWriter, prev *job) {
	s.metrics.idemReplays.Add(1)
	v := prev.view()
	code := http.StatusAccepted
	if terminal(v.State) {
		code = http.StatusOK
	}
	w.Header().Set("Idempotent-Replay", "true")
	w.Header().Set("Location", "/v1/jobs/"+prev.id)
	s.logf("job %s replayed (idempotency key dedup)", prev.id)
	writeJSON(w, code, v)
}

// shedOldestQueued cancels the oldest still-queued job — CoDel's head drop.
// Under sustained overload the stalest queued work has already burned most
// of its deadline and the freshest has the best chance of meeting its own,
// so the queue sheds from the head instead of serving everything late.
func (s *Server) shedOldestQueued() string {
	s.mu.Lock()
	var victim *job
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		queued := j.state == StateQueued
		j.mu.Unlock()
		if queued {
			victim = j
			break
		}
	}
	s.mu.Unlock()
	if victim == nil {
		return ""
	}
	if !s.cancelIfQueued(victim, "shed: queue wait stayed above target (server overloaded); retry later") {
		return ""
	}
	s.metrics.jobsShed.Add(1)
	return victim.id
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Injected admission fault: proves a failing enqueue path surfaces as a
	// structured 503 with a retry hint, not a dead daemon or a hung client.
	if err := faults.Inject(faults.ServerEnqueue); err != nil {
		s.logf("submit rejected (injected fault): %v", err)
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "admission unavailable: " + err.Error()})
		return
	}
	var req jobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// The Idempotency-Key header wins over the body field: the header is the
	// standard surface retry middlewares and proxies set without touching the
	// payload.
	if hk := r.Header.Get("Idempotency-Key"); hk != "" {
		req.IdempotencyKey = hk
	}
	key, src, size, err := req.normalize(s.cfg.DataDir)
	if err != nil {
		s.logf("submit rejected (400): %v", err)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	timeout, ok := s.resolveTimeout(w, req.TimeoutSeconds)
	if !ok {
		return
	}

	// Idempotent fast path: a key that already maps onto a retained job —
	// this submission is a retry — replays that job before any admission
	// work happens. The authoritative claim check re-runs under the
	// admission critical section (enqueueJob) for submissions that get there.
	if req.IdempotencyKey != "" {
		s.mu.Lock()
		prev, hit := s.idem[req.IdempotencyKey]
		s.mu.Unlock()
		if hit {
			s.replayIdem(w, prev)
			return
		}
	}

	j := &job{
		req:       req,
		key:       key,
		src:       src,
		idemKey:   req.IdempotencyKey,
		state:     StateQueued,
		submitted: time.Now().UTC(),
		timeout:   timeout,
		events:    newEventLog(),
	}

	// Admission happens under the server lock so the draining check, the
	// non-blocking enqueue and Shutdown's close(queue) cannot interleave.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("j-%d", s.nextID)
	s.mu.Unlock()

	// Content-addressed fast path: a byte-identical dataset profiled with
	// the same result-affecting options is served from the cache without
	// queueing.
	if report, ok := s.cache.get(key); ok {
		j.cacheHit = true
		j.state = StateDone
		j.result = report
		j.finished = j.submitted
		j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: StateDone})
		j.events.close()
		// Claim the idempotency key and register under one lock section: a
		// racing duplicate that claimed the key first wins, and this
		// submission replays its job instead of registering a second record.
		s.mu.Lock()
		if j.idemKey != "" {
			if prev, hit := s.idem[j.idemKey]; hit {
				s.mu.Unlock()
				s.replayIdem(w, prev)
				return
			}
		}
		s.registerLocked(j)
		s.mu.Unlock()
		// Best-effort journal so the job ID answers "done" after a restart
		// too (the report itself lives only in the in-memory cache); the
		// client already has the result in hand, so a journal failure does
		// not reject the request.
		if err := s.journal(walRecord{Type: recJob, Job: j.id, Req: &j.req}); err == nil {
			j.journaled = true
			s.journalEnd(j, StateDone, "")
		} else if s.store != nil {
			s.logf("journal: cache-hit job %s: %v", j.id, err)
		}
		s.metrics.jobsSubmitted.Add(1)
		s.metrics.jobsDone.Add(1)
		s.logf("job %s done (result cache hit)", j.id)
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	// Circuit breaker: a (dataset, algorithm) pair that keeps failing —
	// panics, deadline blowouts, hard errors — fast-fails here with the
	// error that tripped it, instead of burning another worker slot on work
	// the server has every reason to believe is doomed. 422: the request is
	// well-formed, the payload is the problem.
	bk := breakerKey{sha: key.DatasetSHA256, alg: key.Algorithm}
	if allowed, lastErr, retryIn := s.breakers.allow(bk, time.Now()); !allowed {
		s.metrics.rejectedBreaker.Add(1)
		s.metrics.breakerFastFails.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(retryIn.Seconds())))
		s.logf("job rejected (422): circuit breaker open for sha=%s algorithm=%s", key.DatasetSHA256[:12], key.Algorithm)
		writeJSON(w, http.StatusUnprocessableEntity, apiError{
			Error: fmt.Sprintf("circuit breaker open for this dataset and algorithm after repeated failures (last error: %s); retry after the cooldown", lastErr),
		})
		return
	}
	j.breakerKey = bk
	j.hasBreaker = true

	// Memory-watermark gate: above the hard watermark, large submissions are
	// refused outright; any pressure at all (soft or hard) makes admitted
	// jobs run degraded — shrunken PLI cache budget, sampled-check prefilter
	// on. Results stay exact either way.
	if level, heap := s.governor.state(); level != memHealthy {
		if level >= memHard && size >= s.cfg.LargeJobBytes {
			s.metrics.rejectedMemPressure.Add(1)
			s.breakers.recordNeutral(bk)
			s.setRetryAfter(w)
			s.logf("job rejected (503): heap %d bytes above hard watermark, dataset %d bytes", heap, size)
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error: fmt.Sprintf("memory pressure: heap is above the hard watermark; submissions of %d+ bytes are refused until it recedes", s.cfg.LargeJobBytes),
			})
			return
		}
		j.degraded = true
	}

	if !s.enqueueJob(w, j, &walRecord{Type: recJob, Job: j.id, Req: &j.req}) {
		// The breaker may have admitted this submission as its half-open
		// trial probe; an admission rejection is no verdict on the key, so
		// the trial slot must be released for the next submission.
		s.breakers.recordNeutral(bk)
		return
	}
	s.logf("job %s queued: algorithm=%s dataset=%s sha256=%s", j.id, req.Algorithm, req.Dataset, key.DatasetSHA256[:12])
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		v := j.view()
		v.Result = nil // summaries stay light; fetch the job for the report
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	if s.cancelIfQueued(j, "canceled") {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, j.view()) // idempotent no-op
		return
	}
	// Running: flag the cancellation and cut the job's context; the worker
	// observes context.Canceled and finishes the job as canceled.
	j.canceled = true
	cancel := j.cancel
	j.mu.Unlock()
	cancel()
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		batch, done := j.events.next(r.Context(), from)
		for _, e := range batch {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		from += len(batch)
		if done {
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	// Watchdog: repeated consecutive panic-failures mark the process
	// degraded (it keeps serving — panics are isolated per job — but an
	// operator should look). One clean job completion clears it.
	if n := s.consecutivePanics.Load(); n >= int64(s.cfg.DegradedAfter) {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"reason": fmt.Sprintf("%d consecutive jobs failed on recovered panics", n),
		})
		return
	}
	// Open breakers and hard memory pressure are degraded too: the server is
	// up, but some class of work is being refused. Both clear on their own —
	// breakers half-open after cooldown, the governor re-samples the heap.
	if open, _ := s.breakers.counts(time.Now()); open > 0 {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"reason": fmt.Sprintf("%d circuit breaker(s) open", open),
		})
		return
	}
	if level, _ := s.governor.last(); level >= memHard {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"reason": "heap above the hard memory watermark",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}
