package server

import (
	"container/list"
	"sync"

	"holistic/internal/core"
)

// resultCache is the content-addressed result store: completed profiling
// reports keyed by (dataset SHA-256, algorithm, result-affecting options).
// Repeated submissions of byte-identical datasets are served from it without
// touching the lattice. It is a bounded LRU; eviction drops the least
// recently served entry.
type resultCache struct {
	mu         sync.Mutex
	entries    map[cacheKey]*list.Element
	order      *list.List // front = most recently used
	maxEntries int

	hits, misses, evictions int64
}

type cacheEntry struct {
	key    cacheKey
	report *core.Report
}

// newResultCache builds a cache bounded to maxEntries reports (<= 0 selects
// 256).
func newResultCache(maxEntries int) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &resultCache{
		entries:    make(map[cacheKey]*list.Element),
		order:      list.New(),
		maxEntries: maxEntries,
	}
}

// get returns the cached report of key, counting the probe.
func (c *resultCache) get(key cacheKey) (*core.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).report, true
}

// put stores the report of key, evicting the LRU entry when full.
func (c *resultCache) put(key cacheKey, report *core.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).report = report
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.maxEntries {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, report: report})
}

// counters returns the accumulated probe and eviction counts plus the
// current size.
func (c *resultCache) counters() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}
