package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"holistic/internal/core"
	"holistic/internal/ind"
	"holistic/internal/relation"
)

// jobRequest is the JSON body of POST /v1/jobs. Exactly one of CSV or Path
// supplies the dataset; all other fields are optional.
type jobRequest struct {
	// CSV is the dataset inlined as CSV text.
	CSV string `json:"csv,omitempty"`
	// Path names a CSV file under the server's data directory (rejected
	// when the server runs without one).
	Path string `json:"path,omitempty"`
	// Dataset overrides the display name (defaults to the path, or
	// "inline" for inline CSV).
	Dataset string `json:"dataset,omitempty"`
	// Algorithm is a strategy name from the engine registry (default muds).
	Algorithm string `json:"algorithm,omitempty"`
	// IdempotencyKey deduplicates retried submissions: two submissions
	// carrying the same key map onto one job — same ID, same event stream —
	// so a client retrying after a 503 or a dropped connection cannot
	// double-submit work. Also settable via the Idempotency-Key header
	// (the header wins when both are present). Journaled with the
	// admission, so dedup survives a crash.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// CSV parsing options.
	HasHeader     *bool  `json:"has_header,omitempty"` // default true
	Separator     string `json:"separator,omitempty"`  // default ","
	MaxRows       int    `json:"max_rows,omitempty"`
	DistinctNulls bool   `json:"distinct_nulls,omitempty"`

	// Profiling options. Seed, Workers, CacheEntries and MaxCacheBytes do
	// not change the discovered dependencies (the engine guarantees seed-,
	// worker- and budget-independence), so they are excluded from the
	// result-cache key.
	Seed         int64 `json:"seed,omitempty"`
	Workers      int   `json:"workers,omitempty"`
	CacheEntries int   `json:"cache_entries,omitempty"`
	// MaxCacheBytes budgets the job's PLI cache (0 = server default,
	// -1 = unbudgeted); see core.Options.MaxCacheBytes.
	MaxCacheBytes  int64   `json:"max_cache_bytes,omitempty"`
	WithStats      bool    `json:"with_stats,omitempty"`
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// cacheKey identifies a profiling result in the content-addressed cache: the
// dataset bytes (by SHA-256) plus every result-affecting option. Seed,
// workers and cache sizing are deliberately absent — they affect wall time,
// not output.
type cacheKey struct {
	DatasetSHA256 string
	Algorithm     string
	HasHeader     bool
	Separator     string
	MaxRows       int
	DistinctNulls bool
	WithStats     bool
}

// requestError is a client-side validation failure (HTTP 400).
type requestError struct{ msg string }

func (e requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return requestError{msg: fmt.Sprintf(format, args...)}
}

// maxIdempotencyKeyLen bounds client-supplied idempotency keys: the keys
// are journaled with every admission, so an unbounded one is a WAL-bloat
// vector.
const maxIdempotencyKeyLen = 256

// normalize validates r, applies defaults, resolves the dataset bytes (from
// inline CSV or a file under dataDir), and returns the content-addressed
// cache key, a memoised engine source over the bytes, and the dataset size
// in bytes (the memory governor's large-submission gate keys off it).
func (r *jobRequest) normalize(dataDir string) (cacheKey, *core.MemoSource, int64, error) {
	var key cacheKey

	if r.Algorithm == "" {
		r.Algorithm = core.StrategyMuds
	}
	if _, ok := core.Lookup(r.Algorithm); !ok {
		return key, nil, 0, badRequest("unknown algorithm %q (want one of %s)",
			r.Algorithm, strings.Join(core.Strategies(), "|"))
	}
	if r.Separator == "" {
		r.Separator = ","
	}
	if len(r.Separator) != 1 {
		return key, nil, 0, badRequest("separator must be a single character")
	}
	if r.MaxRows < 0 {
		return key, nil, 0, badRequest("max_rows must be >= 0")
	}
	if r.TimeoutSeconds < 0 {
		return key, nil, 0, badRequest("timeout_seconds must be >= 0")
	}
	if r.MaxCacheBytes < -1 {
		return key, nil, 0, badRequest("max_cache_bytes must be >= -1 (-1 disables the budget)")
	}
	if len(r.IdempotencyKey) > maxIdempotencyKeyLen {
		return key, nil, 0, badRequest("idempotency_key must be at most %d bytes", maxIdempotencyKeyLen)
	}
	hasHeader := true
	if r.HasHeader != nil {
		hasHeader = *r.HasHeader
	}

	var data []byte
	switch {
	case r.CSV != "" && r.Path != "":
		return key, nil, 0, badRequest("csv and path are mutually exclusive")
	case r.CSV != "":
		data = []byte(r.CSV)
		if r.Dataset == "" {
			r.Dataset = "inline"
		}
	case r.Path != "":
		if dataDir == "" {
			return key, nil, 0, badRequest("path submissions are disabled (server has no data directory)")
		}
		resolved, err := resolveDataPath(dataDir, r.Path)
		if err != nil {
			return key, nil, 0, err
		}
		data, err = os.ReadFile(resolved)
		if err != nil {
			return key, nil, 0, badRequest("read dataset: %v", err)
		}
		if r.Dataset == "" {
			r.Dataset = r.Path
		}
	default:
		return key, nil, 0, badRequest("one of csv or path is required")
	}

	sum := sha256.Sum256(data)
	key = cacheKey{
		DatasetSHA256: hex.EncodeToString(sum[:]),
		Algorithm:     r.Algorithm,
		HasHeader:     hasHeader,
		Separator:     r.Separator,
		MaxRows:       r.MaxRows,
		DistinctNulls: r.DistinctNulls,
		WithStats:     r.WithStats,
	}
	src := &core.MemoSource{Src: bytesSource{
		name: r.Dataset,
		data: data,
		opts: relation.CSVOptions{
			Comma:     rune(r.Separator[0]),
			HasHeader: hasHeader,
			MaxRows:   r.MaxRows,
			Relation:  relation.Options{DistinctNulls: r.DistinctNulls, Workers: r.Workers},
		},
	}}
	return key, src, int64(len(data)), nil
}

// options builds the engine options of the request.
func (r *jobRequest) options() core.Options {
	return core.Options{
		Seed:          r.Seed,
		Workers:       r.Workers,
		CacheEntries:  r.CacheEntries,
		MaxCacheBytes: r.MaxCacheBytes,
		IND:           ind.Options{},
	}
}

// resolveDataPath joins rel onto dataDir and rejects escapes ("../", absolute
// paths, symlink-free lexical containment).
func resolveDataPath(dataDir, rel string) (string, error) {
	if filepath.IsAbs(rel) {
		return "", badRequest("path must be relative to the data directory")
	}
	joined := filepath.Join(dataDir, rel)
	clean := filepath.Clean(joined)
	base := filepath.Clean(dataDir)
	if clean != base && !strings.HasPrefix(clean, base+string(filepath.Separator)) {
		return "", badRequest("path escapes the data directory")
	}
	return clean, nil
}

// bytesSource adapts raw CSV bytes to the engine's Source interface; each
// Load parses the bytes afresh (MemoSource on top makes it once).
type bytesSource struct {
	name string
	data []byte
	opts relation.CSVOptions
}

func (s bytesSource) Name() string { return s.name }

func (s bytesSource) Load() (*relation.Relation, error) {
	return relation.ReadCSV(s.name, bytes.NewReader(s.data), s.opts)
}

// errIsRequest reports whether err is a client-side validation failure.
func errIsRequest(err error) bool {
	var re requestError
	return errors.As(err, &re)
}
