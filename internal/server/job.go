package server

import (
	"context"
	"sync"
	"time"

	"holistic/internal/core"
)

// Job states. A job moves queued → running → {done, partial, failed,
// canceled}; cache-served jobs jump straight from queued to done. Partial is
// the 206-style outcome: the run stopped early (deadline, cancellation) but
// the anytime result it accumulated — every dependency confirmed before the
// stop — is attached and valid.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StatePartial  = "partial"
	StateFailed   = "failed"
	StateCanceled = "canceled"
	// StateLost is the terminal state of a journaled job that was queued or
	// running when the process died and cannot be re-executed (dataset jobs
	// carry in-memory session state). Clients polling the job ID get a
	// definitive answer instead of a record the server forgot.
	StateLost = "lost"
)

// terminal reports whether state is a final job state.
func terminal(state string) bool {
	switch state {
	case StateDone, StatePartial, StateFailed, StateCanceled, StateLost:
		return true
	}
	return false
}

// job is the server-side record of one profiling request. The mutex guards
// the mutable fields; the event log has its own lock so streaming readers
// never contend with state transitions beyond the append itself.
type job struct {
	id  string
	req jobRequest
	key cacheKey
	src *core.MemoSource

	// exec, when set, replaces the default strategy run: dataset jobs
	// (initial profiles and batch appends) execute through it so they flow
	// through the same queue, worker pool, retry loop, panic containment and
	// event stream as plain jobs. It returns the engine result plus the
	// report to attach; exec jobs never enter the content-addressed result
	// cache (their output depends on accumulated dataset state, not only on
	// the request bytes).
	exec func(ctx context.Context, opts core.Options, obs core.Observer) (*core.Result, *core.Report, error)
	// noRetry disables the transient-error retry loop. Batch appends set it:
	// re-running a partially applied append would fold the same rows in
	// twice.
	noRetry bool
	// done, when set, is invoked exactly once after the job reaches a
	// terminal state (finish or a queued-state cancellation), with that
	// state and error message. Dataset jobs use it to release the per-
	// dataset busy flag and settle the dataset state.
	done func(state, errMsg string)
	// datasetID links a dataset job to its session (empty for plain jobs);
	// journaled terminal records carry it so replay can settle the session.
	datasetID string
	// journaled marks jobs whose admission was written to the state WAL;
	// only those journal their terminal transition too.
	journaled bool
	// idemKey is the submission's idempotency key (empty without one).
	// While the job is retained, the server's dedup table maps the key back
	// to it, so retried submissions replay this job instead of enqueueing a
	// duplicate.
	idemKey string
	// breakerKey identifies the (dataset fingerprint, algorithm) circuit
	// breaker this job's outcome feeds; hasBreaker gates it (dataset jobs
	// and replayed stubs stay outside the breaker).
	breakerKey breakerKey
	hasBreaker bool
	// degraded marks a job admitted above the soft memory watermark: the
	// run gets a shrunken PLI cache budget and the sampled-check prefilter
	// forced on (results stay exact — both knobs trade speed for footprint).
	degraded bool

	mu        sync.Mutex
	state     string
	err       string
	result    *core.Report
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	// timeout is the per-job deadline resolved at admission (0 = none).
	timeout time.Duration
	// cancel aborts the job: before the worker picks the job up it only
	// flips canceled (the worker skips it); while running it cancels the
	// profiling context.
	cancel   context.CancelFunc
	canceled bool // cancellation requested (DELETE or shutdown)

	events *eventLog
}

// view renders the job's externally visible state.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Algorithm:   j.req.Algorithm,
		Dataset:     j.req.Dataset,
		DatasetSHA:  j.key.DatasetSHA256,
		CacheHit:    j.cacheHit,
		Degraded:    j.degraded,
		IdemKey:     j.idemKey,
		Error:       j.err,
		SubmittedAt: j.submitted,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// JobView is the JSON shape of a job returned by the HTTP API.
type JobView struct {
	ID          string       `json:"id"`
	State       string       `json:"state"`
	Algorithm   string       `json:"algorithm"`
	Dataset     string       `json:"dataset"`
	DatasetSHA  string       `json:"dataset_sha256"`
	CacheHit    bool         `json:"cache_hit,omitempty"`
	Degraded    bool         `json:"degraded,omitempty"`
	IdemKey     string       `json:"idempotency_key,omitempty"`
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	Result      *core.Report `json:"result,omitempty"`
}

// JobEvent is one line of a job's progress stream: either a job lifecycle
// transition (type "state") or an engine progress event (core.Event types),
// stamped with a per-job sequence number and wall-clock time.
type JobEvent struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	core.Event
	// State carries the new job state of a "state" event; Error carries the
	// failure reason when that state is failed or canceled.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Attempt numbers a "retry" event: the upcoming attempt (the first run
	// is attempt 0, the first retry is attempt 1).
	Attempt int `json:"attempt,omitempty"`
	// Stack carries the captured stack trace of a "panic" event, so a
	// strategy panic is diagnosable from the job's event log alone.
	Stack string `json:"stack,omitempty"`
}

// JobEvent types emitted by the server itself (engine progress events keep
// their core.Event types).
const (
	// EventState is the JobEvent type of a job lifecycle transition.
	EventState = "state"
	// EventRetry announces a bounded retry after a transient failure.
	EventRetry = "retry"
	// EventPanic records a recovered strategy panic, stack attached.
	EventPanic = "panic"
	// EventReplay marks a job that was re-enqueued from the journal after a
	// restart: everything before it happened in a previous process.
	EventReplay = "replay"
)

// eventLog is an append-only, subscribable record of a job's events. Readers
// follow a cursor into the slice and block on the condition variable until
// new events arrive or the log closes, so every subscriber sees the full
// history (replay) followed by the live tail, with no events dropped.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []JobEvent
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append stamps and stores e, waking all waiting subscribers.
func (l *eventLog) append(e JobEvent) {
	l.mu.Lock()
	e.Seq = len(l.events)
	e.Time = time.Now().UTC()
	l.events = append(l.events, e)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close marks the log complete (the job reached a terminal state) and wakes
// subscribers so they can drain and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// next returns the events at index >= from, blocking until at least one is
// available, the log closes, or ctx is done. The boolean reports whether the
// stream is complete (log closed and fully consumed, or ctx done).
func (l *eventLog) next(ctx context.Context, from int) ([]JobEvent, bool) {
	// cond.Wait cannot watch ctx, so a helper wakes the waiters when the
	// subscriber's request context ends.
	stop := context.AfterFunc(ctx, l.cond.Broadcast)
	defer stop()

	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.events) <= from && !l.closed && ctx.Err() == nil {
		l.cond.Wait()
	}
	if ctx.Err() != nil {
		return nil, true
	}
	batch := append([]JobEvent(nil), l.events[from:]...)
	return batch, l.closed && len(l.events) == from+len(batch)
}
