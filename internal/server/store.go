package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"holistic/internal/core"
	"holistic/internal/durable"
	"holistic/internal/incremental"
)

// The state WAL journals every durable transition as one JSON record. Replay
// is map-based (admissions and terminal records are matched by job ID, not
// by position), because an end record written by a fast worker can land
// before the admitting handler's record under concurrency; only the relative
// order of a dataset's batch admissions matters, and those are serialized by
// the per-dataset busy flag.
const (
	recJob      = "job"      // plain job admitted: Job, Req
	recDataset  = "dataset"  // dataset created: Dataset, Req
	recDSJob    = "dsjob"    // dataset job admitted: Job, Dataset, Kind (+Rows for batches)
	recEnd      = "end"      // job reached a terminal state: Job, State, Error (+Dataset)
	recShutdown = "shutdown" // clean drain completed
)

// Dataset job kinds journaled in recDSJob records.
const (
	dsJobProfile = "profile"
	dsJobBatch   = "batch"
)

// walRecord is the serialized form of one journal entry. Unknown types are
// skipped on replay so older daemons tolerate newer logs.
type walRecord struct {
	Type    string      `json:"type"`
	Time    time.Time   `json:"time,omitempty"`
	Job     string      `json:"job,omitempty"`
	Dataset string      `json:"dataset,omitempty"`
	Kind    string      `json:"kind,omitempty"`
	Req     *jobRequest `json:"req,omitempty"`
	Rows    [][]string  `json:"rows,omitempty"`
	State   string      `json:"state,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// datasetCheckpoint is the payload of a per-dataset checkpoint file: the
// incremental snapshot (the exact warm-profiler state) plus the last
// completed report, written atomically after every successful dataset job.
type datasetCheckpoint struct {
	Dataset  string                `json:"dataset"`
	Version  int                   `json:"version"`
	Snapshot *incremental.Snapshot `json:"snapshot"`
	Report   *core.Report          `json:"report"`
}

// store is the server's durability layer: the state WAL plus the checkpoint
// directory. nil store (no -state-dir) disables journaling entirely.
type store struct {
	dir string
	wal *durable.WAL
}

func openStore(dir string) (*store, *durable.Replay, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	wal, replay, err := durable.OpenWAL(filepath.Join(dir, "profiled.wal"))
	if err != nil {
		return nil, nil, err
	}
	return &store{dir: dir, wal: wal}, replay, nil
}

func (st *store) append(rec walRecord) error {
	rec.Time = time.Now().UTC()
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return st.wal.Append(data)
}

func (st *store) checkpointPath(datasetID string) string {
	return filepath.Join(st.dir, datasetID+".ckpt")
}

func (st *store) writeCheckpoint(ck *datasetCheckpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return durable.WriteCheckpoint(st.checkpointPath(ck.Dataset), payload)
}

func (st *store) readCheckpoint(datasetID string) (*datasetCheckpoint, error) {
	payload, err := durable.ReadCheckpoint(st.checkpointPath(datasetID))
	if err != nil {
		return nil, err
	}
	var ck datasetCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, fmt.Errorf("%w: checkpoint %s payload: %v", durable.ErrCorrupt, datasetID, err)
	}
	return &ck, nil
}

func (st *store) close() error { return st.wal.Close() }

// --- journaling hooks (no-ops without a store) ---

// journal appends one record, counting it. The returned error means the
// record is not durable; admission call sites reject the request on it,
// terminal call sites log and carry on (the in-memory transition already
// happened, and recovery degrades safely: a missing end record reads as a
// lost job, never as a wrong result).
func (s *Server) journal(rec walRecord) error {
	if s.store == nil {
		return nil
	}
	if err := s.store.append(rec); err != nil {
		s.metrics.walErrors.Add(1)
		return err
	}
	s.metrics.walRecords.Add(1)
	return nil
}

// journalEnd records a job's terminal transition, best-effort.
func (s *Server) journalEnd(j *job, state, errMsg string) {
	if s.store == nil || !j.journaled {
		return
	}
	if err := s.journal(walRecord{Type: recEnd, Job: j.id, Dataset: j.datasetID, State: state, Error: errMsg}); err != nil {
		s.logf("journal: end record for job %s: %v", j.id, err)
	}
}

// --- recovery ---

// RecoveryStats summarizes what Open reconstructed from a state directory.
type RecoveryStats struct {
	// WALRecords is the number of valid journal records replayed.
	WALRecords int
	// TornTailBytes is the size of the torn tail truncated from the WAL
	// (0 when the log ended cleanly).
	TornTailBytes int64
	// CleanShutdown reports whether the log ends with a drain marker.
	CleanShutdown bool
	// RestoredJobs counts terminal job records restored for status queries.
	RestoredJobs int
	// ReplayedJobs counts plain jobs that were queued or running at the
	// crash and were re-enqueued to run again.
	ReplayedJobs int
	// LostJobs counts dataset jobs that were in flight at the crash and
	// were finished as "lost" (their sessions are poisoned).
	LostJobs int
	// RecoveredSessions counts dataset sessions restored warm (ready).
	RecoveredSessions int
	// FailedSessions counts dataset sessions restored poisoned — by a
	// journaled failure, an in-flight job at the crash, or a checkpoint
	// that was missing, corrupt, or mismatched.
	FailedSessions int
}

// replayedJob aggregates everything the journal says about one job ID.
type replayedJob struct {
	id       string
	req      *jobRequest
	dataset  string
	kind     string
	rows     [][]string
	admitted time.Time
	endState string
	endErr   string
	hasEnd   bool
}

// replayedDataset aggregates one dataset's journal records.
type replayedDataset struct {
	id      string
	req     *jobRequest
	created time.Time
	jobIDs  []string // admission order; batches apply in this order
}

// recoverState rebuilds the server's jobs and dataset sessions from the
// replayed journal. It runs before the worker pool starts, so it owns all
// state without locking. Replay order per job: admissions define existence,
// end records settle outcomes; a journaled job without an end record was in
// flight when the process died.
func (s *Server) recoverState(replay *durable.Replay) (RecoveryStats, []*job) {
	stats := RecoveryStats{TornTailBytes: replay.TruncatedBytes}
	if replay.Truncated() {
		s.metrics.tornTailTruncations.Add(1)
		s.logf("recovery: truncated %d bytes of torn WAL tail", replay.TruncatedBytes)
	}

	jobs := map[string]*replayedJob{}
	var jobOrder []string
	datasets := map[string]*replayedDataset{}
	var dsOrder []string
	upsertJob := func(id string) *replayedJob {
		rj, ok := jobs[id]
		if !ok {
			rj = &replayedJob{id: id}
			jobs[id] = rj
			jobOrder = append(jobOrder, id)
		}
		return rj
	}
	for _, payload := range replay.Records {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			s.logf("recovery: skipping undecodable journal record: %v", err)
			continue
		}
		stats.WALRecords++
		stats.CleanShutdown = rec.Type == recShutdown // only counts as last record
		switch rec.Type {
		case recJob:
			rj := upsertJob(rec.Job)
			rj.req = rec.Req
			rj.admitted = rec.Time
		case recDataset:
			if _, ok := datasets[rec.Dataset]; !ok {
				dsOrder = append(dsOrder, rec.Dataset)
			}
			datasets[rec.Dataset] = &replayedDataset{id: rec.Dataset, req: rec.Req, created: rec.Time}
		case recDSJob:
			rj := upsertJob(rec.Job)
			rj.dataset = rec.Dataset
			rj.kind = rec.Kind
			rj.rows = rec.Rows
			rj.admitted = rec.Time
			if d, ok := datasets[rec.Dataset]; ok {
				d.jobIDs = append(d.jobIDs, rec.Job)
			}
		case recEnd:
			rj := upsertJob(rec.Job)
			rj.hasEnd = true
			rj.endState = rec.State
			rj.endErr = rec.Error
		case recShutdown:
			// marker only
		default:
			s.logf("recovery: skipping unknown journal record type %q", rec.Type)
		}
	}

	// Restore the ID counters past everything the journal has seen.
	for id := range jobs {
		if n, ok := numericSuffix(id, "j-"); ok && n > s.nextID {
			s.nextID = n
		}
	}
	for id := range datasets {
		if n, ok := numericSuffix(id, "d-"); ok && n > s.nextDSID {
			s.nextDSID = n
		}
	}

	for _, id := range dsOrder {
		s.recoverDataset(datasets[id], jobs, &stats)
	}

	// Plain jobs: terminal records are restored for status queries; in-
	// flight ones are rebuilt and re-enqueued (their requests are self-
	// contained). Dataset jobs were settled by recoverDataset above.
	var requeue []*job
	for _, id := range jobOrder {
		rj := jobs[id]
		if rj.dataset != "" {
			continue
		}
		if rj.req == nil {
			// An end record without its admission (the admission was in the
			// torn tail): nothing to restore beyond a terminal stub.
			if rj.hasEnd {
				s.restoreTerminalJob(rj, nil, &stats)
			}
			continue
		}
		if rj.hasEnd {
			s.restoreTerminalJob(rj, rj.req, &stats)
			continue
		}
		if j := s.rebuildPlainJob(rj, &stats); j != nil {
			requeue = append(requeue, j)
		}
	}
	return stats, requeue
}

// recoverDataset restores one dataset session: ready (warm profiler resumed
// from its checkpoint plus the replayed batches) or failed (poisoned), and
// registers every journaled job of the session with a terminal state.
func (s *Server) recoverDataset(rd *replayedDataset, jobs map[string]*replayedJob, stats *RecoveryStats) {
	now := time.Now().UTC()
	created := rd.created
	if created.IsZero() {
		created = now
	}
	d := &dataset{id: rd.id, req: *rd.req, created: created, updated: now, jobIDs: rd.jobIDs}

	// Load the checkpoint first: the last completed profile generation.
	// Corruption is a metered, logged poison — never silently replayed.
	ck, ckErr := s.store.readCheckpoint(rd.id)
	if ckErr != nil && errors.Is(ckErr, durable.ErrCorrupt) {
		s.metrics.corruptCheckpoints.Add(1)
		s.logf("recovery: dataset %s: %v", rd.id, ckErr)
	}

	// Resurrection: the busy flag serializes dataset jobs, so only the LAST
	// journaled job of a session can lack a terminal record. Its work ends
	// with an fsync'd checkpoint BEFORE the terminal record is journaled —
	// so when the checkpoint's version already accounts for that job, the
	// job in fact completed and only its end record was torn away by the
	// crash. It is finished as done instead of poisoning the session.
	if n := len(rd.jobIDs); n > 0 && ck != nil {
		doneBefore := 0
		for _, jid := range rd.jobIDs[:n-1] {
			if rj := jobs[jid]; rj.hasEnd && rj.endState == StateDone {
				doneBefore++
			}
		}
		last := jobs[rd.jobIDs[n-1]]
		if !last.hasEnd && ck.Version == doneBefore+1 {
			last.hasEnd = true
			last.endState = StateDone
			s.logf("recovery: dataset %s: job %s completed before the crash (checkpoint v%d); terminal record restored", rd.id, last.id, ck.Version)
			if err := s.journal(walRecord{Type: recEnd, Job: last.id, Dataset: rd.id, State: StateDone}); err != nil {
				s.logf("journal: restored end record for %s: %v", last.id, err)
			}
		}
	}

	// Settle every journaled job of the session. In-flight jobs become
	// "lost": their outcome is unknown, which poisons the session exactly
	// like any other non-done terminal state.
	poisonErr := ""
	var applied [][][]string
	for _, jid := range rd.jobIDs {
		rj := jobs[jid]
		if !rj.hasEnd {
			rj.hasEnd = true
			rj.endState = StateLost
			rj.endErr = "server restarted while the job was queued or running"
			stats.LostJobs++
			s.metrics.lostJobs.Add(1)
			// Persist the verdict so the next restart agrees without
			// re-deriving it.
			if err := s.journal(walRecord{Type: recEnd, Job: jid, Dataset: rd.id, State: StateLost, Error: rj.endErr}); err != nil {
				s.logf("journal: lost-job record for %s: %v", jid, err)
			}
		}
		if rj.endState == StateDone && rj.kind == dsJobBatch {
			applied = append(applied, rj.rows)
		}
		if rj.endState != StateDone && poisonErr == "" {
			poisonErr = fmt.Sprintf("job %s %s", jid, rj.endState)
			if rj.endErr != "" {
				poisonErr += ": " + rj.endErr
			}
		}
		s.restoreTerminalJob(rj, &d.req, stats)
	}

	if ck != nil {
		d.report = ck.Report
		d.version = ck.Version
	}

	switch {
	case poisonErr != "":
		d.state = DatasetFailed
		d.err = poisonErr
	case ck == nil:
		d.state = DatasetFailed
		if os.IsNotExist(ckErr) {
			d.err = "no checkpoint: the initial profile never completed"
		} else {
			d.err = fmt.Sprintf("corrupt checkpoint: %v", ckErr)
		}
	default:
		if err := s.resumeSession(d, ck, applied); err != nil {
			d.state = DatasetFailed
			d.err = fmt.Sprintf("resume from checkpoint: %v", err)
			d.prof = nil
			s.logf("recovery: dataset %s: %v", rd.id, err)
		}
	}

	if d.state == DatasetFailed {
		stats.FailedSessions++
		s.logf("recovery: dataset %s restored failed: %s", d.id, d.err)
	} else {
		stats.RecoveredSessions++
		s.metrics.recoveredSessions.Add(1)
		s.logf("recovery: dataset %s restored ready at version %d (%d batches replayed)", d.id, d.version, len(applied))
	}
	s.datasets[d.id] = d
	s.dsOrder = append(s.dsOrder, d.id)
}

// resumeSession rebuilds a warm profiler: the creation request's relation is
// reloaded, every applied batch is folded back in (cheap dictionary appends,
// no discovery), and the checkpoint snapshot — which fingerprints the exact
// relation it profiled — is resumed on top. Any mismatch (changed source
// file, missing batch, wrong order) fails the fingerprint check and poisons
// the session instead of serving wrong metadata.
func (s *Server) resumeSession(d *dataset, ck *datasetCheckpoint, applied [][][]string) error {
	_, src, _, err := d.req.normalize(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("reload dataset: %w", err)
	}
	rel, err := src.Load()
	if err != nil {
		return fmt.Errorf("reload dataset: %w", err)
	}
	for i, rows := range applied {
		if _, err := rel.Append(rows); err != nil {
			return fmt.Errorf("replay batch %d: %w", i+1, err)
		}
	}
	opts := d.req.options()
	if opts.MaxCacheBytes == 0 {
		opts.MaxCacheBytes = s.cfg.MaxCacheBytes
	}
	prof, err := incremental.Resume(rel, ck.Snapshot, opts)
	if err != nil {
		return err
	}
	d.prof = prof
	d.state = DatasetReady
	d.version = ck.Version
	return nil
}

// restoreTerminalJob registers a terminal job record rebuilt from the
// journal. Results are not journaled, so restored jobs carry state and error
// only; for datasets the last report lives in the checkpoint instead.
func (s *Server) restoreTerminalJob(rj *replayedJob, req *jobRequest, stats *RecoveryStats) {
	j := &job{
		id:        rj.id,
		state:     rj.endState,
		err:       rj.endErr,
		datasetID: rj.dataset,
		journaled: true,
		submitted: rj.admitted,
		finished:  time.Now().UTC(),
		events:    newEventLog(),
	}
	if req != nil {
		j.req = *req
		// The idempotency key rides inside the journaled request, so the
		// dedup table survives the restart: a client retrying a submission it
		// made before the crash gets this record back, not a duplicate run.
		j.idemKey = req.IdempotencyKey
	}
	j.events.append(JobEvent{Event: core.Event{Type: EventReplay}})
	j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: rj.endState, Error: rj.endErr})
	j.events.close()
	s.registerLocked(j)
	stats.RestoredJobs++
}

// rebuildPlainJob reconstructs an in-flight plain job for re-execution. A
// request that no longer normalizes (e.g. its data-dir file vanished) is
// restored failed instead.
func (s *Server) rebuildPlainJob(rj *replayedJob, stats *RecoveryStats) *job {
	// The admission-time timeout resolution, minus the HTTP 400 path: the
	// original admission already validated the requested value.
	timeout := s.cfg.DefaultTimeout
	if rj.req.TimeoutSeconds > 0 {
		timeout = time.Duration(rj.req.TimeoutSeconds * float64(time.Second))
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	j := &job{
		id:        rj.id,
		req:       *rj.req,
		idemKey:   rj.req.IdempotencyKey,
		state:     StateQueued,
		journaled: true,
		submitted: rj.admitted,
		timeout:   timeout,
		events:    newEventLog(),
	}
	j.events.append(JobEvent{Event: core.Event{Type: EventReplay}})
	key, src, _, err := j.req.normalize(s.cfg.DataDir)
	if err != nil {
		j.state = StateFailed
		j.err = fmt.Sprintf("replay: %v", err)
		j.finished = time.Now().UTC()
		j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: StateFailed, Error: j.err})
		j.events.close()
		s.registerLocked(j)
		s.journalEnd(j, StateFailed, j.err)
		stats.RestoredJobs++
		return nil
	}
	j.key = key
	j.src = src
	j.events.append(JobEvent{Event: core.Event{Type: EventState}, State: StateQueued})
	s.registerLocked(j)
	stats.ReplayedJobs++
	s.metrics.replayedJobs.Add(1)
	s.logf("recovery: job %s re-enqueued (was in flight at shutdown)", j.id)
	return j
}

// finalizeStore is the drain-time half of durability: once every worker has
// unwound, ready sessions get a final checkpoint (idempotent — they are
// checkpointed after every completed job — but it heals any earlier
// checkpoint failure), a clean-shutdown marker is appended, and the WAL is
// closed.
func (s *Server) finalizeStore() {
	if s.store == nil || s.crashed.Load() {
		return
	}
	s.mu.Lock()
	ids := append([]string(nil), s.dsOrder...)
	ds := make([]*dataset, 0, len(ids))
	for _, id := range ids {
		ds = append(ds, s.datasets[id])
	}
	s.mu.Unlock()
	for _, d := range ds {
		d.mu.Lock()
		prof := d.prof
		report := d.report
		version := d.version
		ready := d.state == DatasetReady
		d.mu.Unlock()
		if !ready || prof == nil {
			continue
		}
		ck := &datasetCheckpoint{Dataset: d.id, Version: version, Snapshot: prof.Snapshot(), Report: report}
		if err := s.store.writeCheckpoint(ck); err != nil {
			s.logf("drain: final checkpoint for dataset %s: %v", d.id, err)
			continue
		}
		s.metrics.checkpoints.Add(1)
	}
	if err := s.journal(walRecord{Type: recShutdown}); err != nil {
		s.logf("drain: shutdown marker: %v", err)
	}
	if err := s.store.close(); err != nil {
		s.logf("drain: close wal: %v", err)
	}
}

// crashForTest (restart tests only) simulates a kill -9 at this instant:
// the WAL is closed, so terminal records of still-running jobs never land,
// and the drain-time finalization (final checkpoints, shutdown marker) is
// suppressed. The caller still runs Shutdown to unwind goroutines; the state
// directory is left exactly as a dead process would leave it.
func (s *Server) crashForTest() {
	if s.store == nil {
		return
	}
	s.crashed.Store(true)
	_ = s.store.close()
}

// numericSuffix parses ids like "j-17" → 17.
func numericSuffix(id, prefix string) (int64, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseInt(id[len(prefix):], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
