package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The restart suite covers the crash-safety contract end to end, in process:
// a server is built against a state directory, torn down (cleanly or as if
// kill -9'd), and reconstructed from the directory alone. The reconstructed
// server must answer for every job ID and dataset it ever acknowledged.

// openTestServer is newTestServer via Open, returning the recovery stats.
func openTestServer(t *testing.T, cfg Config) (*Server, RecoveryStats, *httptest.Server) {
	t.Helper()
	s, stats, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, stats, ts
}

// crash tears the server down as a kill -9 would: journaling stops
// mid-flight, running jobs are cut, no drain-time finalization happens.
func crash(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	s.crashForTest()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
}

// stopCleanly drains the server (final checkpoints, shutdown marker).
func stopCleanly(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRestartRestoresStateCleanShutdown proves a drained daemon comes back
// with its sessions warm and every terminal job answerable: the profile
// report is byte-identical, the session accepts further batches, and job
// statuses survive.
func TestRestartRestoresStateCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, StateDir: dir}

	s1, _, ts1 := openTestServer(t, cfg)
	_ = s1
	code, d := createDataset(t, ts1, fmt.Sprintf(`{"csv": %q, "with_stats": true}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("create: status %d", code)
	}
	pollDataset(t, ts1, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	if code, _ := postBatch(t, ts1, d.ID, "5,10115,Berlin\n6,99999,Weimar\n"); code != http.StatusAccepted {
		t.Fatalf("batch: status %d", code)
	}
	before := pollDataset(t, ts1, d.ID, func(v DatasetView) bool {
		return v.State == DatasetReady && v.Version == 2
	})
	_, profBefore := getProfile(t, ts1, d.ID)
	code, pj := submit(t, ts1, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollUntil(t, ts1, pj.ID, func(v JobView) bool { return v.State == StateDone })

	stopCleanly(t, s1, ts1)

	_, stats, ts2 := openTestServer(t, cfg)
	if !stats.CleanShutdown {
		t.Error("recovery did not see the clean-shutdown marker")
	}
	if stats.RecoveredSessions != 1 || stats.FailedSessions != 0 {
		t.Errorf("sessions recovered/failed = %d/%d, want 1/0", stats.RecoveredSessions, stats.FailedSessions)
	}

	after := getDataset(t, ts2, d.ID)
	if after.State != DatasetReady || after.Version != 2 {
		t.Fatalf("restored dataset: state=%s version=%d, want ready v2", after.State, after.Version)
	}
	if got, want := mustJSON(t, after.JobIDs), mustJSON(t, before.JobIDs); got != want {
		t.Errorf("restored job ids %s, want %s", got, want)
	}
	codeP, profAfter := getProfile(t, ts2, d.ID)
	if codeP != http.StatusOK {
		t.Fatalf("restored profile: status %d", codeP)
	}
	if mustJSON(t, profAfter.Report) != mustJSON(t, profBefore.Report) {
		t.Error("restored profile report differs from the pre-restart report")
	}
	// Every job the first server acknowledged answers with its final state.
	for _, id := range before.JobIDs {
		if v := getJob(t, ts2, id); v.State != StateDone {
			t.Errorf("restored dataset job %s: state %s, want done", id, v.State)
		}
	}
	if v := getJob(t, ts2, pj.ID); v.State != StateDone {
		t.Errorf("restored plain job %s: state %s, want done", pj.ID, v.State)
	}

	// The restored profiler is warm: another batch folds in and bumps the
	// version past the pre-restart state.
	if code, _ := postBatch(t, ts2, d.ID, "7,14467,Potsdam\n"); code != http.StatusAccepted {
		t.Fatalf("post-restart batch: status %d", code)
	}
	pollDataset(t, ts2, d.ID, func(v DatasetView) bool {
		return v.State == DatasetReady && v.Version == 3
	})
}

// TestRestartAfterCrashRecoversSessions is the same round trip through a
// simulated kill -9: no shutdown marker, no final checkpoints — recovery
// works from the per-job checkpoints and the WAL alone.
func TestRestartAfterCrashRecoversSessions(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, StateDir: dir}

	s1, _, ts1 := openTestServer(t, cfg)
	_, d := createDataset(t, ts1, fmt.Sprintf(`{"csv": %q}`, testCSV))
	pollDataset(t, ts1, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	postBatch(t, ts1, d.ID, "5,10115,Berlin\n")
	// Ready (not just version 2): the ready transition happens after the
	// batch job's terminal record is journaled, so crashing now leaves a
	// fully settled session on disk.
	pollDataset(t, ts1, d.ID, func(v DatasetView) bool {
		return v.State == DatasetReady && v.Version == 2
	})
	_, profBefore := getProfile(t, ts1, d.ID)

	crash(t, s1, ts1)

	_, stats, ts2 := openTestServer(t, cfg)
	if stats.CleanShutdown {
		t.Error("crash recovery claims a clean shutdown")
	}
	if stats.RecoveredSessions != 1 {
		t.Fatalf("RecoveredSessions = %d, want 1", stats.RecoveredSessions)
	}
	code, profAfter := getProfile(t, ts2, d.ID)
	if code != http.StatusOK {
		t.Fatalf("profile after crash: status %d", code)
	}
	if mustJSON(t, profAfter.Report) != mustJSON(t, profBefore.Report) {
		t.Error("report after crash differs from the pre-crash report")
	}
	if v := getDataset(t, ts2, d.ID); v.State != DatasetReady || v.Version != 2 {
		t.Fatalf("dataset after crash: state=%s version=%d, want ready v2", v.State, v.Version)
	}
	if got := metricValue(t, ts2, "profiled_recovered_sessions_total"); got != 1 {
		t.Errorf("profiled_recovered_sessions_total = %d, want 1", got)
	}
}

// TestRestartLostJobsAndPoisonedSession kills the daemon with a dataset
// batch still queued behind a running plain job. After restart the batch job
// must answer "lost" (not 404, not a silent re-run), the session is poisoned
// with the last good report still readable, and the interrupted plain job is
// re-executed under its original ID.
func TestRestartLostJobsAndPoisonedSession(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	dir := t.TempDir()
	cfg := Config{Workers: 1, StateDir: dir}

	s1, _, ts1 := openTestServer(t, cfg)
	_, d := createDataset(t, ts1, fmt.Sprintf(`{"csv": %q}`, testCSV))
	pollDataset(t, ts1, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	_, profBefore := getProfile(t, ts1, d.ID)

	// Hog the single worker, then queue a batch behind it.
	started, release := gate.channels()
	code, blocked := submit(t, ts1, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker: status %d", code)
	}
	<-started
	code, _ = postBatch(t, ts1, d.ID, "5,10115,Berlin\n")
	if code != http.StatusAccepted {
		t.Fatalf("batch: status %d", code)
	}
	batchJob := getDataset(t, ts1, d.ID).JobIDs[1]

	crash(t, s1, ts1)

	_, stats, ts2 := openTestServer(t, cfg)
	if stats.LostJobs != 1 {
		t.Errorf("LostJobs = %d, want 1 (the queued batch)", stats.LostJobs)
	}
	if stats.ReplayedJobs != 1 {
		t.Errorf("ReplayedJobs = %d, want 1 (the running blocktest job)", stats.ReplayedJobs)
	}
	if stats.FailedSessions != 1 || stats.RecoveredSessions != 0 {
		t.Errorf("sessions recovered/failed = %d/%d, want 0/1", stats.RecoveredSessions, stats.FailedSessions)
	}

	// The batch job the client was polling answers definitively.
	if v := getJob(t, ts2, batchJob); v.State != StateLost {
		t.Errorf("batch job %s after restart: state %s, want lost", batchJob, v.State)
	}
	// The session is poisoned, but its last completed profile stays
	// readable — with the failed state visible on the response.
	dv := getDataset(t, ts2, d.ID)
	if dv.State != DatasetFailed || !strings.Contains(dv.Error, batchJob) {
		t.Errorf("dataset after restart: state=%s err=%q, want failed mentioning %s", dv.State, dv.Error, batchJob)
	}
	code, profAfter := getProfile(t, ts2, d.ID)
	if code != http.StatusOK || profAfter.State != DatasetFailed || profAfter.Version != 1 {
		t.Fatalf("profile after restart: status %d state %s v%d, want 200 failed v1", code, profAfter.State, profAfter.Version)
	}
	if mustJSON(t, profAfter.Report) != mustJSON(t, profBefore.Report) {
		t.Error("poisoned session serves a different report than the last good one")
	}
	// A poisoned session accepts no further batches.
	if code, _ := postBatch(t, ts2, d.ID, "6,1,x\n"); code != http.StatusConflict {
		t.Errorf("batch into poisoned session: status %d, want 409", code)
	}

	// The replayed plain job is already running again under its old ID;
	// release it and watch it finish.
	<-started
	close(release)
	pollUntil(t, ts2, blocked.ID, func(v JobView) bool { return v.State == StateDone })
	if got := metricValue(t, ts2, "profiled_replayed_jobs_total"); got != 1 {
		t.Errorf("profiled_replayed_jobs_total = %d, want 1", got)
	}
	if got := metricValue(t, ts2, "profiled_lost_jobs_total"); got != 1 {
		t.Errorf("profiled_lost_jobs_total = %d, want 1", got)
	}
}

// TestRestartCorruptCheckpoint flips a byte in a dataset checkpoint and
// restarts: the session must come back failed with a metered corruption
// error — never silently replayed from bad bytes.
func TestRestartCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, StateDir: dir}

	s1, _, ts1 := openTestServer(t, cfg)
	_, d := createDataset(t, ts1, fmt.Sprintf(`{"csv": %q}`, testCSV))
	pollDataset(t, ts1, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	stopCleanly(t, s1, ts1)

	ckPath := filepath.Join(dir, d.ID+".ckpt")
	data, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(ckPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats, ts2 := openTestServer(t, cfg)
	if stats.FailedSessions != 1 || stats.RecoveredSessions != 0 {
		t.Fatalf("sessions recovered/failed = %d/%d, want 0/1", stats.RecoveredSessions, stats.FailedSessions)
	}
	dv := getDataset(t, ts2, d.ID)
	if dv.State != DatasetFailed || !strings.Contains(dv.Error, "corrupt") {
		t.Errorf("dataset with corrupt checkpoint: state=%s err=%q, want failed mentioning corruption", dv.State, dv.Error)
	}
	if got := metricValue(t, ts2, "profiled_corrupt_checkpoints_total"); got != 1 {
		t.Errorf("profiled_corrupt_checkpoints_total = %d, want 1", got)
	}
}

// TestRestartTornWALTail appends garbage to the WAL (a torn last write) and
// restarts: recovery truncates the tail, meters it, and restores everything
// before the tear.
func TestRestartTornWALTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, StateDir: dir}

	s1, _, ts1 := openTestServer(t, cfg)
	_, d := createDataset(t, ts1, fmt.Sprintf(`{"csv": %q}`, testCSV))
	pollDataset(t, ts1, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	crash(t, s1, ts1)

	walPath := filepath.Join(dir, "profiled.wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x43, 0x65, 0x87, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, stats, ts2 := openTestServer(t, cfg)
	if stats.TornTailBytes != 7 {
		t.Errorf("TornTailBytes = %d, want 7", stats.TornTailBytes)
	}
	if stats.RecoveredSessions != 1 {
		t.Fatalf("RecoveredSessions = %d, want 1", stats.RecoveredSessions)
	}
	if v := getDataset(t, ts2, d.ID); v.State != DatasetReady {
		t.Errorf("dataset after torn tail: state %s, want ready", v.State)
	}
	if got := metricValue(t, ts2, "profiled_corrupt_tail_truncations_total"); got != 1 {
		t.Errorf("profiled_corrupt_tail_truncations_total = %d, want 1", got)
	}
}
