package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"holistic/internal/core"
)

// TestDeleteRacingCompletion races DELETE against job completion: whatever
// interleaving wins, the job must settle in exactly one terminal state, the
// event log must close exactly once (the stream drains), and a completed
// job must keep its result.
func TestDeleteRacingCompletion(t *testing.T) {
	registerBlockStrategy()
	for i := 0; i < 20; i++ {
		gate.reset()
		_, ts := newTestServer(t, Config{Workers: 1})
		started, release := gate.channels()

		_, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("job never started")
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			close(release) // completion path
		}()
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
		wg.Wait()

		done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
		if done.State != StateDone && done.State != StateCanceled {
			t.Fatalf("iteration %d: state = %s, want done or canceled", i, done.State)
		}
		if done.State == StateDone && done.Result == nil {
			t.Fatalf("iteration %d: done without a result", i)
		}
		// The event stream must drain to EOF (log closed exactly once) and
		// end with exactly one terminal state event.
		terminalEvents := 0
		for _, e := range jobEvents(t, ts, v.ID) {
			if e.Type == EventState && terminal(e.State) {
				terminalEvents++
			}
		}
		if terminalEvents != 1 {
			t.Fatalf("iteration %d: %d terminal state events, want 1", i, terminalEvents)
		}
	}
}

// TestEventStreamReaderDisconnect verifies a subscriber vanishing mid-stream
// does not wedge the job or the event log: the job still completes and a
// fresh subscriber replays the full history.
func TestEventStreamReaderDisconnect(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	started, release := gate.channels()

	_, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	<-started

	// Subscribe while the job is running, read one event, then drop the
	// connection by cancelling the request context.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	dec := json.NewDecoder(resp.Body)
	var first JobEvent
	if err := dec.Decode(&first); err != nil {
		t.Fatalf("first event: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The abandoned subscriber must not block completion.
	close(release)
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("job = %s, want done", done.State)
	}

	// A fresh subscriber sees the full history from seq 0.
	events := jobEvents(t, ts, v.ID)
	if len(events) == 0 || events[0].Seq != 0 {
		t.Fatalf("replay did not start at seq 0: %+v", events)
	}
	last := events[len(events)-1]
	if last.Type != EventState || last.State != StateDone {
		t.Fatalf("replay did not end in the done transition: %+v", last)
	}
}

// TestResultCacheConcurrentEviction hammers a tiny result cache from many
// goroutines (concurrent hits, inserts and LRU evictions) to prove the
// locking holds under -race and the bound is respected throughout.
func TestResultCacheConcurrentEviction(t *testing.T) {
	c := newResultCache(2)
	keys := make([]cacheKey, 8)
	for i := range keys {
		keys[i] = cacheKey{DatasetSHA256: strconv.Itoa(i), Algorithm: "muds"}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(w+i)%len(keys)]
				if report, ok := c.get(k); ok {
					if report == nil || report.Dataset != k.DatasetSHA256 {
						t.Errorf("cache returned a report for the wrong key")
						return
					}
				} else {
					c.put(k, &core.Report{Dataset: k.DatasetSHA256})
				}
			}
		}(w)
	}
	wg.Wait()
	if _, _, _, entries := c.counters(); entries > 2 {
		t.Fatalf("cache holds %d entries, bound is 2", entries)
	}
}
