package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"holistic/internal/core"
	"holistic/internal/relation"
)

// testCSV is a small dataset with known dependencies: zip → city (FD),
// id unique (UCC), city ⊆ name is false but id has no IND partners.
const testCSV = "id,zip,city\n1,10115,Berlin\n2,10115,Berlin\n3,14467,Potsdam\n4,69117,Heidelberg\n"

// --- blocking test strategy ---

// blockGate coordinates the "block" strategy: each job run signals started
// and then waits for a release or its context.
type blockGate struct {
	mu       sync.Mutex
	started  chan struct{}
	release  chan struct{}
	inflight int
}

var gate = &blockGate{
	started: make(chan struct{}, 64),
	release: make(chan struct{}),
}

// reset arms the gate for a new test.
func (g *blockGate) reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.started = make(chan struct{}, 64)
	g.release = make(chan struct{})
}

func (g *blockGate) channels() (chan struct{}, chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started, g.release
}

var registerBlockOnce sync.Once

// registerBlockStrategy installs a strategy that parks until released or
// canceled, so tests can hold jobs in the running state deterministically.
func registerBlockStrategy() {
	registerBlockOnce.Do(func() {
		core.Register(blockStrategy{})
	})
}

type blockStrategy struct{}

func (blockStrategy) Name() string { return "blocktest" }

func (blockStrategy) Profile(ctx context.Context, rel *relation.Relation, opts core.Options, obs core.Observer) (*core.Result, error) {
	started, release := gate.channels()
	started <- struct{}{}
	select {
	case <-release:
		return &core.Result{}, nil
	case <-ctx.Done():
		return &core.Result{}, ctx.Err()
	}
}

// --- helpers ---

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("submit response %q: %v", data, err)
		}
	}
	return resp.StatusCode, v
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job %s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return v
}

// pollUntil polls the job until pred holds or the deadline passes.
func pollUntil(t *testing.T, ts *httptest.Server, id string, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if pred(v) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the expected state", id)
	return JobView{}
}

func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			var v int64
			fmt.Sscanf(line[len(name)+1:], "%d", &v)
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// --- tests ---

// TestSubmitPollResult covers the submit → poll → result round-trip for the
// paper's holistic algorithm and the TANE comparison strategy.
func TestSubmitPollResult(t *testing.T) {
	for _, alg := range []string{core.StrategyMuds, core.StrategyTane} {
		t.Run(alg, func(t *testing.T) {
			_, ts := newTestServer(t, Config{Workers: 2})
			code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": %q}`, testCSV, alg))
			if code != http.StatusAccepted {
				t.Fatalf("submit status = %d, want 202", code)
			}
			if v.State != StateQueued || v.ID == "" {
				t.Fatalf("submit view = %+v, want queued with id", v)
			}
			done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
			if done.State != StateDone {
				t.Fatalf("job state = %s (%s), want done", done.State, done.Error)
			}
			if done.Result == nil {
				t.Fatal("done job has no result")
			}
			if done.Result.Algorithm != alg {
				t.Fatalf("result algorithm = %q, want %q", done.Result.Algorithm, alg)
			}
			// zip → city must be among the FDs for every strategy.
			found := false
			for _, f := range done.Result.FDs {
				if f.RHS == "city" && len(f.LHS) == 1 && f.LHS[0] == "zip" {
					found = true
				}
			}
			if !found {
				t.Fatalf("FDs %v missing zip → city", done.Result.FDs)
			}
			if alg == core.StrategyMuds {
				if len(done.Result.UCCs) == 0 {
					t.Fatal("muds result has no UCCs")
				}
				if len(done.Result.Cache) == 0 {
					t.Fatal("muds result has no PLI cache stats")
				}
			}
			if done.DatasetSHA == "" {
				t.Fatal("job has no dataset hash")
			}
		})
	}
}

// TestResultCacheHit verifies that a byte-identical second submission is
// served from the content-addressed cache: instant done state, cache_hit
// flag, and a bumped cache-hit counter.
func TestResultCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"csv": %q}`, testCSV)

	code, first := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", code)
	}
	firstDone := pollUntil(t, ts, first.ID, func(v JobView) bool { return terminal(v.State) })
	if firstDone.State != StateDone {
		t.Fatalf("first job state = %s, want done", firstDone.State)
	}
	if hits := metricValue(t, ts, "profiled_result_cache_hits_total"); hits != 0 {
		t.Fatalf("cache hits before resubmission = %d, want 0", hits)
	}

	code, second := submit(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second submit status = %d, want 200 (served from cache)", code)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("second submit = state %s cache_hit %v, want done/true", second.State, second.CacheHit)
	}
	if second.Result == nil {
		t.Fatal("cache-served job has no result")
	}
	if hits := metricValue(t, ts, "profiled_result_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// The cached report is the first run's report, dependency for dependency.
	a, _ := json.Marshal(firstDone.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached result differs from original:\n%s\nvs\n%s", a, b)
	}

	// A different algorithm on the same bytes is a different key: no hit.
	code, third := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "tane"}`, testCSV))
	if code != http.StatusAccepted || third.CacheHit {
		t.Fatalf("different-algorithm submit = %d cache_hit %v, want 202/false", code, third.CacheHit)
	}
}

// TestCancelRunningJob verifies that DELETE on an in-flight job surfaces as
// a canceled terminal status.
func TestCancelRunningJob(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	started, _ := gate.channels()

	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}

	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateCanceled {
		t.Fatalf("job state = %s, want canceled", done.State)
	}
	if c := metricValue(t, ts, "profiled_jobs_canceled_total"); c != 1 {
		t.Fatalf("canceled counter = %d, want 1", c)
	}
}

// TestCancelQueuedJob verifies that DELETE on a job still waiting in the
// queue cancels it without it ever running.
func TestCancelQueuedJob(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started, release := gate.channels()

	// Occupy the single worker, then queue a second job behind it.
	_, blocker := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	<-started
	code, queued := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("queued submit status = %d, want 202", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200 (canceled before start)", resp.StatusCode)
	}
	if v := getJob(t, ts, queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", v.State)
	}

	close(release) // let the blocker finish
	if v := pollUntil(t, ts, blocker.ID, func(v JobView) bool { return terminal(v.State) }); v.State != StateDone {
		t.Fatalf("blocker state = %s, want done", v.State)
	}
	// The canceled job must stay canceled — the worker skipped it.
	if v := getJob(t, ts, queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job state after drain = %s, want canceled", v.State)
	}
}

// TestQueueSaturation verifies the admission limit: with the worker busy and
// the queue full, further submissions are rejected with 429.
func TestQueueSaturation(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started, release := gate.channels()
	defer close(release)

	// One running (pulled off the queue), one waiting: the queue is full.
	submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	<-started
	if code, _ := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV)); code != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202", code)
	}

	code, _ := submit(t, ts, fmt.Sprintf(`{"csv": %q, "dataset": "third"}`, testCSV))
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status = %d, want 429", code)
	}
	if c := metricValue(t, ts, "profiled_jobs_rejected_queue_full_total"); c != 1 {
		t.Fatalf("rejected counter = %d, want 1", c)
	}
}

// TestGracefulShutdownDrains verifies that Shutdown lets a running job
// finish when the drain deadline allows it, cancels queued jobs, and flips
// admission to 503.
func TestGracefulShutdownDrains(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started, release := gate.channels()

	_, running := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	<-started
	_, waiting := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Admission must reject with 503 once draining (poll briefly: the flag
	// flips inside the Shutdown goroutine).
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := submit(t, ts, fmt.Sprintf(`{"csv": %q, "dataset": "late"}`, testCSV))
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never flipped to 503")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The queued job is canceled by the drain, not run.
	if v := pollUntil(t, ts, waiting.ID, func(v JobView) bool { return terminal(v.State) }); v.State != StateCanceled {
		t.Fatalf("waiting job state = %s, want canceled", v.State)
	}

	close(release) // the in-flight job finishes inside the deadline
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown = %v, want clean drain", err)
	}
	if v := getJob(t, ts, running.ID); v.State != StateDone {
		t.Fatalf("drained job state = %s, want done", v.State)
	}

	// healthz reports draining after shutdown.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status = %d, want 503 while drained", resp.StatusCode)
	}
}

// TestShutdownDeadlineCancelsInflight verifies the forced half of shutdown:
// when the drain deadline passes, in-flight jobs are canceled via context.
func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	s, ts := newTestServer(t, Config{Workers: 1})
	started, _ := gate.channels()

	_, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown = %v, want deadline exceeded", err)
	}
	if view := getJob(t, ts, v.ID); view.State != StateCanceled {
		t.Fatalf("forced job state = %s, want canceled", view.State)
	}
}

// TestEventStream verifies the live progress stream: a subscriber sees the
// lifecycle transitions and the engine's phase events as JSON lines, ending
// when the job completes.
func TestEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e JobEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != EventState || last.State != StateDone {
		t.Fatalf("last event = %+v, want done transition", last)
	}
	sawPhase, sawCache := false, false
	for _, e := range events {
		if e.Type == core.EventPhaseEnd {
			sawPhase = true
		}
		if e.Type == core.EventCacheStats && e.Cache != nil {
			sawCache = true
		}
	}
	if !sawPhase || !sawCache {
		t.Fatalf("stream missing engine events (phase=%v cache=%v)", sawPhase, sawCache)
	}
}

// TestSubmitValidation covers the 400 paths.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"no dataset":        `{}`,
		"both csv and path": fmt.Sprintf(`{"csv": %q, "path": "x.csv"}`, testCSV),
		"unknown algorithm": fmt.Sprintf(`{"csv": %q, "algorithm": "nope"}`, testCSV),
		"bad separator":     fmt.Sprintf(`{"csv": %q, "separator": "ab"}`, testCSV),
		"path disabled":     `{"path": "x.csv"}`,
		"unknown field":     `{"csvv": "a\n1\n"}`,
		"negative timeout":  fmt.Sprintf(`{"csv": %q, "timeout_seconds": -1}`, testCSV),
	} {
		if code, _ := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestJobDeadline verifies the per-job timeout: a job exceeding its deadline
// fails with a deadline error rather than running forever.
func TestJobDeadline(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest", "timeout_seconds": 0.05}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateFailed || !strings.Contains(done.Error, "deadline") {
		t.Fatalf("job = %s (%s), want failed with deadline error", done.State, done.Error)
	}
}

// TestCLIServerReportParity locks the satellite contract: the JSON the
// server stores for a job is the same core.Report model the CLI's -format
// json emits, byte-identical up to the timing fields.
func TestCLIServerReportParity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "dataset": "parity"}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })

	rel, err := relation.ReadCSV("parity", strings.NewReader(testCSV), relation.CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunRelationContext(context.Background(), core.StrategyMuds, rel, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	local := core.NewReport(rel, res, false)

	normalize := func(r *core.Report) *core.Report {
		c := *r
		c.Phases = nil
		c.TotalSeconds = 0
		c.Cache = nil // counters vary with phase scheduling, not content
		c.Checks = 0
		return &c
	}
	a, _ := json.Marshal(normalize(done.Result))
	b, _ := json.Marshal(normalize(local))
	if !bytes.Equal(a, b) {
		t.Fatalf("server report differs from library report:\n%s\nvs\n%s", a, b)
	}
}
