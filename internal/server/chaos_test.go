package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"holistic/internal/bitset"
	"holistic/internal/core"
	"holistic/internal/faults"
	"holistic/internal/fd"
	"holistic/internal/ind"
	"holistic/internal/relation"
)

// The chaos suite arms the fault-injection points one by one and proves the
// containment contract at each: a triggered fault fails (at most) the job it
// hit, the daemon keeps serving, subsequent jobs succeed, and faults that only
// degrade a dependency (cache, worker pool) do not change discovered results.
// Faults are process-global, so these tests never run in parallel and always
// reset in cleanup.

// armFaults arms spec for the duration of the test.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faults.Configure(spec); err != nil {
		t.Fatalf("configure faults %q: %v", spec, err)
	}
	t.Cleanup(faults.Reset)
}

// jobEvents fetches the full (closed) event stream of a terminal job.
func jobEvents(t *testing.T, ts *httptest.Server, id string) []JobEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	var events []JobEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var e JobEvent
		if err := dec.Decode(&e); err != nil {
			if err != io.EOF {
				t.Fatalf("decode event: %v", err)
			}
			break
		}
		events = append(events, e)
	}
	return events
}

// healthStatus fetches /healthz and returns the reported status string.
func healthStatus(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return body["status"]
}

// TestChaosReaderIOErrorContained proves a permanent reader fault fails only
// the job that hit it: the next submission of the same dataset succeeds and
// the daemon never stops answering.
func TestChaosReaderIOErrorContained(t *testing.T) {
	armFaults(t, "reader.io:error:1")
	_, ts := newTestServer(t, Config{Workers: 1})

	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	failed := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if failed.State != StateFailed || !strings.Contains(failed.Error, "injected fault") {
		t.Fatalf("job = %s (%s), want failed on the injected fault", failed.State, failed.Error)
	}

	// Fault budget exhausted: the identical submission now completes. The
	// failed run must not have poisoned the result cache.
	code, v2 := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status = %d, want 202 (a failed job must not be cache-served)", code)
	}
	done := pollUntil(t, ts, v2.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone || done.Result == nil {
		t.Fatalf("resubmitted job = %s, want done with a result", done.State)
	}
	if got := healthStatus(t, ts); got != "ok" {
		t.Fatalf("health after contained fault = %q, want ok", got)
	}
}

// TestChaosTransientRetrySucceeds proves the bounded retry: a job hitting
// transient faults is re-run with backoff on its worker slot and eventually
// completes, with the retries visible in the event log and metrics.
func TestChaosTransientRetrySucceeds(t *testing.T) {
	armFaults(t, "reader.io:transient:2")
	_, ts := newTestServer(t, Config{Workers: 1, RetryAttempts: 2, RetryBackoff: time.Millisecond})

	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("job = %s (%s), want done after transient retries", done.State, done.Error)
	}

	retries := 0
	for _, e := range jobEvents(t, ts, v.ID) {
		if e.Type == EventRetry {
			retries++
			if !strings.Contains(e.Error, "injected fault") {
				t.Fatalf("retry event error = %q, want the injected fault", e.Error)
			}
		}
	}
	if retries != 2 {
		t.Fatalf("retry events = %d, want 2", retries)
	}
	if got := metricValue(t, ts, "profiled_job_retries_total"); got != 2 {
		t.Fatalf("profiled_job_retries_total = %d, want 2", got)
	}
}

// TestChaosRetriesExhaustedFails proves the retry bound: a fault outlasting
// the retry budget fails the job instead of looping forever.
func TestChaosRetriesExhaustedFails(t *testing.T) {
	armFaults(t, "reader.io:transient")
	_, ts := newTestServer(t, Config{Workers: 1, RetryAttempts: 1, RetryBackoff: time.Millisecond})

	_, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateFailed || !strings.Contains(done.Error, "injected fault") {
		t.Fatalf("job = %s (%s), want failed after exhausting retries", done.State, done.Error)
	}
	if got := metricValue(t, ts, "profiled_job_retries_total"); got != 1 {
		t.Fatalf("profiled_job_retries_total = %d, want 1", got)
	}
}

// TestChaosPanicIsolatedWithStack proves panic isolation end to end: a panic
// injected deep inside a PLI intersection fails the job with the captured
// stack in the event log; the worker pool, the daemon, and later jobs are
// untouched.
func TestChaosPanicIsolatedWithStack(t *testing.T) {
	armFaults(t, "pli.intersect:panic:1")
	_, ts := newTestServer(t, Config{Workers: 1})

	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	failed := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if failed.State != StateFailed || !strings.Contains(failed.Error, "panicked") {
		t.Fatalf("job = %s (%s), want failed on a recovered panic", failed.State, failed.Error)
	}

	var panics int
	for _, e := range jobEvents(t, ts, v.ID) {
		if e.Type == EventPanic {
			panics++
			if !strings.Contains(e.Stack, "holistic/internal") {
				t.Fatalf("panic event stack does not look like a stack trace:\n%s", e.Stack)
			}
		}
	}
	if panics != 1 {
		t.Fatalf("panic events = %d, want 1", panics)
	}
	if got := metricValue(t, ts, "profiled_panics_total"); got != 1 {
		t.Fatalf("profiled_panics_total = %d, want 1", got)
	}

	// The daemon survived: the same dataset profiles cleanly now.
	_, v2 := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	done := pollUntil(t, ts, v2.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("post-panic job = %s (%s), want done", done.State, done.Error)
	}
}

// TestChaosWatchdogDegradesAndRecovers drives the health watchdog: repeated
// consecutive panic-failures flip /healthz to degraded, one clean completion
// flips it back.
func TestChaosWatchdogDegradesAndRecovers(t *testing.T) {
	// BreakerThreshold is raised above the panic budget: the three failures
	// all hit one (dataset, algorithm) key, and the default threshold would
	// open its circuit breaker before the recovery submission — this test
	// wants the watchdog's verdict alone.
	armFaults(t, "pli.intersect:panic:3")
	_, ts := newTestServer(t, Config{Workers: 1, DegradedAfter: 3, BreakerThreshold: 10})

	for i := 0; i < 3; i++ {
		_, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
		done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
		if done.State != StateFailed {
			t.Fatalf("job %d = %s, want failed", i, done.State)
		}
	}
	if got := healthStatus(t, ts); got != "degraded" {
		t.Fatalf("health after 3 consecutive panics = %q, want degraded", got)
	}
	if got := metricValue(t, ts, "profiled_degraded"); got != 1 {
		t.Fatalf("profiled_degraded = %d, want 1", got)
	}

	// Budget exhausted: a clean run resets the watchdog.
	_, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("recovery job = %s (%s), want done", done.State, done.Error)
	}
	if got := healthStatus(t, ts); got != "ok" {
		t.Fatalf("health after recovery = %q, want ok", got)
	}
	if got := metricValue(t, ts, "profiled_degraded"); got != 0 {
		t.Fatalf("profiled_degraded after recovery = %d, want 0", got)
	}
}

// TestChaosCacheFaultsPreserveResults proves graceful degradation of the PLI
// cache: with every cache probe failing (gets degrade to misses, puts are
// dropped) the discovered IND/UCC/FD sets are identical to a clean run — the
// governor trades time, never correctness.
func TestChaosCacheFaultsPreserveResults(t *testing.T) {
	_, clean := newTestServer(t, Config{Workers: 1})
	_, v := submit(t, clean, fmt.Sprintf(`{"csv": %q}`, testCSV))
	want := pollUntil(t, clean, v.ID, func(v JobView) bool { return terminal(v.State) })
	if want.State != StateDone {
		t.Fatalf("clean job = %s, want done", want.State)
	}

	armFaults(t, "cache.get:error,cache.put:error")
	_, ts := newTestServer(t, Config{Workers: 1})
	_, v2 := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	got := pollUntil(t, ts, v2.ID, func(v JobView) bool { return terminal(v.State) })
	if got.State != StateDone {
		t.Fatalf("degraded job = %s (%s), want done", got.State, got.Error)
	}
	assertSameFindings(t, want, got)
}

// TestChaosWorkerSpawnDegradesToSequential proves the pool fault: with
// fan-out unavailable, a many-worker job silently runs sequentially and
// produces identical results.
func TestChaosWorkerSpawnDegradesToSequential(t *testing.T) {
	_, clean := newTestServer(t, Config{Workers: 1})
	_, v := submit(t, clean, fmt.Sprintf(`{"csv": %q, "workers": 1}`, testCSV))
	want := pollUntil(t, clean, v.ID, func(v JobView) bool { return terminal(v.State) })

	armFaults(t, "worker.spawn:error")
	_, ts := newTestServer(t, Config{Workers: 1})
	_, v2 := submit(t, ts, fmt.Sprintf(`{"csv": %q, "workers": 8}`, testCSV))
	got := pollUntil(t, ts, v2.ID, func(v JobView) bool { return terminal(v.State) })
	if got.State != StateDone {
		t.Fatalf("degraded job = %s (%s), want done", got.State, got.Error)
	}
	assertSameFindings(t, want, got)
}

// TestChaosEnqueueFault503 proves the admission fault surfaces as a
// structured 503 with a retry hint — not a hung client or a dead daemon —
// and the very next submission is admitted.
func TestChaosEnqueueFault503(t *testing.T) {
	armFaults(t, "server.enqueue:error:1")
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"csv": %q}`, testCSV)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After header")
	}

	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("post-fault submit status = %d, want 202", code)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("post-fault job = %s, want done", done.State)
	}
}

// --- anytime partial results ---

var registerPartialOnce sync.Once

// registerPartialStrategy installs a strategy that confirms a few
// dependencies immediately and then parks until its context dies — the
// shape of a real anytime run cut by its deadline.
func registerPartialStrategy() {
	registerPartialOnce.Do(func() {
		core.Register(partialStrategy{})
	})
}

type partialStrategy struct{}

func (partialStrategy) Name() string { return "partialtest" }

func (partialStrategy) Profile(ctx context.Context, rel *relation.Relation, opts core.Options, obs core.Observer) (*core.Result, error) {
	res := &core.Result{
		INDs: []ind.IND{{Dependent: 1, Referenced: 2}},
		UCCs: []bitset.Set{bitset.New(0)},
		FDs:  []fd.FD{{LHS: bitset.New(1), RHS: 2}},
	}
	obs.PhaseStart("confirm")
	obs.PhaseEnd("confirm", 0)
	<-ctx.Done()
	return res, ctx.Err()
}

// TestJobDeadlinePartialResult proves the 206-style outcome: a job with
// confirmed findings that hits its deadline finishes as "partial" with the
// anytime report attached (marked partial, completeness included) — and the
// partial report never enters the result cache.
func TestJobDeadlinePartialResult(t *testing.T) {
	registerPartialStrategy()
	_, ts := newTestServer(t, Config{Workers: 1})

	code, v := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "partialtest", "timeout_seconds": 0.05}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StatePartial {
		t.Fatalf("job = %s (%s), want partial", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Fatalf("partial job error = %q, want a deadline message", done.Error)
	}
	if done.Result == nil || !done.Result.Partial {
		t.Fatal("partial job must carry a report marked partial")
	}
	if len(done.Result.INDs) != 1 || len(done.Result.UCCs) != 1 || len(done.Result.FDs) != 1 {
		t.Fatalf("partial report findings = %d/%d/%d INDs/UCCs/FDs, want 1/1/1",
			len(done.Result.INDs), len(done.Result.UCCs), len(done.Result.FDs))
	}
	if done.Result.Completeness == nil {
		t.Fatal("partial report must include completeness markers")
	}
	if got := metricValue(t, ts, "profiled_jobs_partial_total"); got != 1 {
		t.Fatalf("profiled_jobs_partial_total = %d, want 1", got)
	}

	// The identical submission must re-profile, not replay the partial
	// report from the cache.
	_, v2 := submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "partialtest", "timeout_seconds": 0.05}`, testCSV))
	again := pollUntil(t, ts, v2.ID, func(v JobView) bool { return terminal(v.State) })
	if again.CacheHit {
		t.Fatal("partial report was served from the result cache")
	}
	if again.State != StatePartial {
		t.Fatalf("resubmitted job = %s, want partial (re-profiled)", again.State)
	}
}

// TestChaosWorkersEquivalenceUnderCacheFaults is the cross-cutting
// determinism check: even with cache faults firing, workers=1 and workers=N
// discover identical dependency sets.
func TestChaosWorkersEquivalenceUnderCacheFaults(t *testing.T) {
	armFaults(t, "cache.get:error")
	_, ts := newTestServer(t, Config{Workers: 2})

	// workers/seed are excluded from the cache key, so the second job would
	// be served from the first one's report and the equivalence would be
	// vacuous; max_rows IS part of the key, and 4 reads all of testCSV's
	// data rows anyway — distinct keys, identical effective input.
	_, seq := submit(t, ts, fmt.Sprintf(`{"csv": %q, "workers": 1}`, testCSV))
	_, par := submit(t, ts, fmt.Sprintf(`{"csv": %q, "workers": 8, "seed": 7, "max_rows": 4}`, testCSV))
	a := pollUntil(t, ts, seq.ID, func(v JobView) bool { return terminal(v.State) })
	b := pollUntil(t, ts, par.ID, func(v JobView) bool { return terminal(v.State) })
	if a.State != StateDone || b.State != StateDone {
		t.Fatalf("jobs = %s/%s, want done/done", a.State, b.State)
	}
	if b.CacheHit {
		t.Fatal("second job was cache-served; equivalence not exercised")
	}
	assertSameFindings(t, a, b)
}

// assertSameFindings compares the dependency sets of two job reports.
func assertSameFindings(t *testing.T, a, b JobView) {
	t.Helper()
	if a.Result == nil || b.Result == nil {
		t.Fatal("both jobs must carry reports")
	}
	if !reflect.DeepEqual(a.Result.INDs, b.Result.INDs) {
		t.Errorf("INDs differ: %v vs %v", a.Result.INDs, b.Result.INDs)
	}
	if !reflect.DeepEqual(a.Result.UCCs, b.Result.UCCs) {
		t.Errorf("UCCs differ: %v vs %v", a.Result.UCCs, b.Result.UCCs)
	}
	if !reflect.DeepEqual(a.Result.FDs, b.Result.FDs) {
		t.Errorf("FDs differ: %v vs %v", a.Result.FDs, b.Result.FDs)
	}
}
