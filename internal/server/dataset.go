package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"holistic/internal/core"
	"holistic/internal/incremental"
	"holistic/internal/relation"
)

// Dataset states. A dataset moves profiling → ready, then cycles
// ready → appending → ready per accepted batch. Any failed or canceled job —
// an aborted initial profile, a batch cut off mid-append — moves it to
// failed: the warm incremental state is no longer a sound revalidation
// baseline, so the dataset stops accepting batches (the last completed
// profile stays readable).
const (
	DatasetProfiling = "profiling"
	DatasetReady     = "ready"
	DatasetAppending = "appending"
	DatasetFailed    = "failed"
)

// dataset is one incremental profiling session: a warm
// incremental.Profiler plus the last completed report, extended batch by
// batch through jobs on the shared worker pool. The mutex guards every
// mutable field; profiler methods are only ever invoked from the single job
// the busy flag admits, which restores AppendBatch's exclusivity contract.
type dataset struct {
	id string

	mu      sync.Mutex
	state   string
	busy    bool // a profile or batch job is queued or running
	version int  // completed profile generation: 1 after the initial profile, +1 per batch
	err     string
	report  *core.Report
	prof    *incremental.Profiler
	req     jobRequest // creation request; batches inherit its options
	created time.Time
	updated time.Time
	jobIDs  []string // every job run for this dataset, in order
}

// view renders the dataset's externally visible state.
func (d *dataset) view() DatasetView {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := DatasetView{
		ID:        d.id,
		State:     d.state,
		Dataset:   d.req.Dataset,
		Algorithm: d.req.Algorithm,
		Version:   d.version,
		Error:     d.err,
		JobIDs:    append([]string(nil), d.jobIDs...),
		CreatedAt: d.created,
		UpdatedAt: d.updated,
	}
	if d.report != nil {
		v.Rows = d.report.Rows
		v.Columns = append([]string(nil), d.report.Columns...)
	}
	return v
}

// DatasetView is the JSON shape of a dataset returned by the HTTP API.
type DatasetView struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Dataset   string    `json:"dataset"`
	Algorithm string    `json:"algorithm"`
	Version   int       `json:"version"`
	Rows      int       `json:"rows,omitempty"`
	Columns   []string  `json:"columns,omitempty"`
	Error     string    `json:"error,omitempty"`
	JobIDs    []string  `json:"job_ids"`
	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`
}

// DatasetProfileView is the JSON shape of GET /v1/datasets/{id}/profile: the
// last completed profile generation with its version stamp.
type DatasetProfileView struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Version int          `json:"version"`
	Report  *core.Report `json:"report"`
}

// batchRequest is the JSON body of POST /v1/datasets/{id}/batches. The CSV
// carries data rows only — no header; parsing options (separator, NULL
// semantics) are inherited from the dataset's creation request.
type batchRequest struct {
	CSV            string  `json:"csv"`
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// settle releases the dataset's busy flag once its current job reaches a
// terminal state. Done means the job's exec already stored the new profiler
// state and report; anything else (failed, canceled, partial) poisons the
// session — a half-applied append or an aborted initial profile leaves no
// sound baseline to revalidate against.
func (d *dataset) settle(state, errMsg string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.busy = false
	d.updated = time.Now().UTC()
	if state == StateDone {
		d.state = DatasetReady
		d.err = ""
		return
	}
	d.state = DatasetFailed
	d.err = errMsg
	d.prof = nil
}

// abandon reverts a busy claim whose job was never admitted (queue full or
// draining), restoring the state the claim replaced.
func (d *dataset) abandon(prevState string) {
	d.mu.Lock()
	d.busy = false
	d.state = prevState
	d.mu.Unlock()
}

// newDatasetJob builds a job that runs exec on the shared worker pool and
// settles d when it terminates.
func (s *Server) newDatasetJob(d *dataset, timeout time.Duration, noRetry bool,
	exec func(ctx context.Context, opts core.Options, obs core.Observer) (*core.Result, *core.Report, error)) *job {
	j := &job{
		req:       d.req,
		state:     StateQueued,
		submitted: time.Now().UTC(),
		timeout:   timeout,
		events:    newEventLog(),
		exec:      exec,
		noRetry:   noRetry,
		done:      d.settle,
		datasetID: d.id,
	}
	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("j-%d", s.nextID)
	s.mu.Unlock()
	d.mu.Lock()
	d.jobIDs = append(d.jobIDs, j.id)
	d.mu.Unlock()
	return j
}

// handleCreateDataset implements POST /v1/datasets: it creates an
// incremental profiling session and queues its initial full profile. The
// body is the same shape as POST /v1/jobs. The response is 202 with the
// dataset view; poll GET /v1/datasets/{id} (or the initial job) until ready.
func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// normalize validates and resolves the dataset bytes; the cache key is
	// unused — an incremental session always needs the warm profiler, so it
	// never short-circuits through the result cache.
	_, src, _, err := req.normalize(s.cfg.DataDir)
	if err != nil {
		s.logf("dataset rejected (400): %v", err)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	timeout, ok := s.resolveTimeout(w, req.TimeoutSeconds)
	if !ok {
		return
	}

	d := &dataset{
		state:   DatasetProfiling,
		busy:    true,
		req:     req,
		created: time.Now().UTC(),
		updated: time.Now().UTC(),
	}
	// The id is assigned before the job is built (the job's datasetID links
	// its journaled terminal record back to the session) and the creation is
	// journaled before the dataset is published: a crash can forget an id
	// the client never saw, but never one it did.
	s.mu.Lock()
	s.nextDSID++
	d.id = fmt.Sprintf("d-%d", s.nextDSID)
	s.mu.Unlock()
	j := s.newDatasetJob(d, timeout, false, func(ctx context.Context, opts core.Options, obs core.Observer) (*core.Result, *core.Report, error) {
		return s.runInitialProfile(ctx, d, src, opts, obs)
	})
	// The initial profile reloads cleanly, so transient-error retries stay
	// enabled; j.src additionally lets a deadline hit surface the anytime
	// partial result on the job record (the dataset itself still fails — a
	// partial profile is not a revalidation baseline).
	j.src = src

	if s.store != nil {
		if err := s.journal(walRecord{Type: recDataset, Dataset: d.id, Req: &req}); err != nil {
			s.logf("dataset rejected (503): journal create: %v", err)
			s.setRetryAfter(w)
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "state journal unavailable: " + err.Error()})
			return
		}
	}

	s.mu.Lock()
	s.datasets[d.id] = d
	s.dsOrder = append(s.dsOrder, d.id)
	s.mu.Unlock()

	if !s.enqueueJob(w, j, &walRecord{Type: recDSJob, Job: j.id, Dataset: d.id, Kind: dsJobProfile}) {
		// Admission failed after the dataset was published: keep the record
		// (clients may already hold the id) but mark it failed.
		d.settle(StateFailed, "initial profile was not admitted (queue full or shutting down)")
		return
	}
	s.metrics.datasetsCreated.Add(1)
	s.logf("dataset %s created: job %s algorithm=%s dataset=%s", d.id, j.id, req.Algorithm, req.Dataset)
	w.Header().Set("Location", "/v1/datasets/"+d.id)
	writeJSON(w, http.StatusAccepted, d.view())
}

// runInitialProfile is the exec body of a dataset's first job: a full
// from-scratch profile that leaves a warm incremental profiler behind.
func (s *Server) runInitialProfile(ctx context.Context, d *dataset, src *core.MemoSource, opts core.Options, obs core.Observer) (*core.Result, *core.Report, error) {
	rel, err := src.Load()
	if err != nil {
		return nil, nil, err
	}
	prof, res, err := incremental.NewProfiler(ctx, rel, d.req.Algorithm, opts, obs)
	if err != nil {
		return res, nil, err
	}
	report := core.NewReport(rel, res, d.req.WithStats)
	d.mu.Lock()
	d.prof = prof
	d.report = report
	d.version = prof.Version() + 1
	d.mu.Unlock()
	// A dataset job only counts as done once its state is durable: a failed
	// checkpoint fails the job, which poisons the session instead of letting
	// a restart lose state a client was told exists.
	if err := s.checkpointDataset(d, prof, report); err != nil {
		return res, nil, err
	}
	return res, report, nil
}

// checkpointDataset persists a dataset's warm profiler state and latest
// report (atomic write, no-op without a state dir). Every successful dataset
// job ends with one, BEFORE its terminal record is journaled.
func (s *Server) checkpointDataset(d *dataset, prof *incremental.Profiler, report *core.Report) error {
	if s.store == nil {
		return nil
	}
	ck := &datasetCheckpoint{
		Dataset:  d.id,
		Version:  prof.Version() + 1,
		Snapshot: prof.Snapshot(),
		Report:   report,
	}
	if err := s.store.writeCheckpoint(ck); err != nil {
		return fmt.Errorf("checkpoint dataset %s: %w", d.id, err)
	}
	s.metrics.checkpoints.Add(1)
	return nil
}

// handleAppendBatch implements POST /v1/datasets/{id}/batches: it folds a
// batch of rows into the dataset's warm profiler through a job on the shared
// worker pool. Exactly one profile or batch job may be in flight per dataset;
// a concurrent submission is rejected with 409 rather than queued, because a
// queued batch would observe revalidation state the client never saw.
func (s *Server) handleAppendBatch(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookupDataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown dataset"})
		return
	}
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.CSV == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "csv is required"})
		return
	}
	timeout, ok := s.resolveTimeout(w, req.TimeoutSeconds)
	if !ok {
		return
	}

	// Parse and validate the batch rows up front: a malformed batch is the
	// client's 400, and rejecting it before the claim means it cannot poison
	// the session. Surviving AppendBatch failures (deadline, cancellation,
	// contained panics) are genuine session losses.
	sep := ','
	if d.req.Separator != "" {
		sep = rune(d.req.Separator[0])
	}
	_, rows, err := relation.ReadCSVRows("batch", strings.NewReader(req.CSV), relation.CSVOptions{
		Comma:     sep,
		HasHeader: false,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	// Claim the dataset (409 on any in-flight job) and check the batch width
	// against the profiled schema under the same lock.
	d.mu.Lock()
	if d.busy {
		state := d.state
		d.mu.Unlock()
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("dataset %s has a job in flight (state %s); retry when it finishes", d.id, state),
		})
		return
	}
	if d.state != DatasetReady || d.prof == nil {
		msg := fmt.Sprintf("dataset %s is %s and cannot accept batches", d.id, d.state)
		if d.err != "" {
			msg += ": " + d.err
		}
		d.mu.Unlock()
		writeJSON(w, http.StatusConflict, apiError{Error: msg})
		return
	}
	if want := len(d.report.Columns); len(rows) > 0 && len(rows[0]) != want {
		d.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, apiError{
			Error: fmt.Sprintf("batch rows have %d columns, dataset has %d", len(rows[0]), want),
		})
		return
	}
	prof := d.prof
	withStats := d.req.WithStats
	d.busy = true
	d.state = DatasetAppending
	d.mu.Unlock()

	// Batch jobs never retry: a transient failure mid-append may already
	// have mutated the relation, and re-running would fold rows in twice.
	j := s.newDatasetJob(d, timeout, true, func(ctx context.Context, opts core.Options, obs core.Observer) (*core.Result, *core.Report, error) {
		res, err := prof.AppendBatch(ctx, rows, obs)
		if err != nil {
			return res, nil, err
		}
		report := core.NewReport(prof.Relation(), res, withStats)
		d.mu.Lock()
		d.report = report
		d.version = prof.Version() + 1
		d.mu.Unlock()
		if err := s.checkpointDataset(d, prof, report); err != nil {
			return res, nil, err
		}
		return res, report, nil
	})

	// The admit record carries the batch rows themselves: recovery replays
	// applied batches into the reloaded relation before resuming the
	// checkpoint snapshot on top.
	if !s.enqueueJob(w, j, &walRecord{Type: recDSJob, Job: j.id, Dataset: d.id, Kind: dsJobBatch, Rows: rows}) {
		d.abandon(DatasetReady)
		return
	}
	s.metrics.datasetBatches.Add(1)
	s.logf("dataset %s batch queued: job %s rows=%d", d.id, j.id, len(rows))
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, d.view())
}

// handleGetDataset implements GET /v1/datasets/{id}.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookupDataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown dataset"})
		return
	}
	writeJSON(w, http.StatusOK, d.view())
}

// handleListDatasets implements GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.dsOrder...)
	ds := make([]*dataset, 0, len(ids))
	for _, id := range ids {
		ds = append(ds, s.datasets[id])
	}
	s.mu.Unlock()
	views := make([]DatasetView, 0, len(ds))
	for _, d := range ds {
		views = append(views, d.view())
	}
	writeJSON(w, http.StatusOK, views)
}

// handleGetProfile implements GET /v1/datasets/{id}/profile: the last
// completed profile generation. It stays readable while a batch is folding
// in (the previous version is served) and after a failure (the last good
// version is served, with the failed state visible); before the initial
// profile completes there is nothing to serve yet — 409, retry after
// polling the dataset.
func (s *Server) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookupDataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown dataset"})
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.report == nil {
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("dataset %s has no completed profile yet (state %s)", d.id, d.state),
		})
		return
	}
	writeJSON(w, http.StatusOK, DatasetProfileView{
		ID:      d.id,
		State:   d.state,
		Version: d.version,
		Report:  d.report,
	})
}

func (s *Server) lookupDataset(id string) (*dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[id]
	return d, ok
}
