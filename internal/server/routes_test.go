package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRouteUnknownJob404 checks that every job route returns a structured
// JSON 404 for an id that was never issued.
func TestRouteUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/jobs/j-999"},
		{http.MethodGet, "/v1/jobs/j-999/events"},
		{http.MethodDelete, "/v1/jobs/j-999"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: body %q is not a structured error", probe.method, probe.path, body)
		}
	}
}

// TestRouteMethodNotAllowed checks that the method-scoped mux patterns turn a
// wrong verb into 405 with the Allow header listing the supported ones.
func TestRouteMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, probe := range []struct {
		method, path string
		wantAllow    string // a verb that must appear in the Allow header
	}{
		{http.MethodPost, "/v1/jobs/j-1", "GET"},
		{http.MethodPut, "/v1/jobs", "POST"},
		{http.MethodDelete, "/v1/datasets/d-1", "GET"},
		{http.MethodPut, "/v1/datasets/d-1/batches", "POST"},
		{http.MethodPost, "/healthz", "GET"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", probe.method, probe.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, probe.wantAllow) {
			t.Errorf("%s %s: Allow %q does not offer %s", probe.method, probe.path, allow, probe.wantAllow)
		}
	}
}

// TestRouteMalformedJSON400 checks that syntactically broken and unknown-field
// bodies come back as structured 400s naming the problem, on both submission
// endpoints.
func TestRouteMalformedJSON400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, probe := range []struct {
		path, body string
	}{
		{"/v1/jobs", `{"csv": "a,b\n1,2\n"`},         // truncated
		{"/v1/jobs", `{"no_such_option": true}`},     // unknown field
		{"/v1/jobs", `"just a string"`},              // wrong JSON shape
		{"/v1/datasets", `{not json at all`},         // garbage
		{"/v1/datasets", `{"no_such_option": true}`}, // unknown field
	} {
		resp, err := http.Post(ts.URL+probe.path, "application/json", strings.NewReader(probe.body))
		if err != nil {
			t.Fatalf("POST %s: %v", probe.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", probe.path, probe.body, resp.StatusCode)
			continue
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: 400 body %q is not a structured error", probe.path, body)
		}
	}
}
