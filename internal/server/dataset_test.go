package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// --- dataset helpers ---

func createDataset(t *testing.T, ts *httptest.Server, body string) (int, DatasetView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("create dataset: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v DatasetView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("create dataset response %q: %v", data, err)
		}
	}
	return resp.StatusCode, v
}

func getDataset(t *testing.T, ts *httptest.Server, id string) DatasetView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/datasets/" + id)
	if err != nil {
		t.Fatalf("get dataset: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get dataset %s: status %d", id, resp.StatusCode)
	}
	var v DatasetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode dataset: %v", err)
	}
	return v
}

// pollDataset polls the dataset until pred holds or the deadline passes.
func pollDataset(t *testing.T, ts *httptest.Server, id string, pred func(DatasetView) bool) DatasetView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v := getDataset(t, ts, id)
		if pred(v) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dataset %s never reached the expected state", id)
	return DatasetView{}
}

func postBatch(t *testing.T, ts *httptest.Server, id, csv string) (int, string) {
	t.Helper()
	body, _ := json.Marshal(batchRequest{CSV: csv})
	resp, err := http.Post(ts.URL+"/v1/datasets/"+id+"/batches", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func getProfile(t *testing.T, ts *httptest.Server, id string) (int, DatasetProfileView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/datasets/" + id + "/profile")
	if err != nil {
		t.Fatalf("get profile: %v", err)
	}
	defer resp.Body.Close()
	var v DatasetProfileView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode profile: %v", err)
		}
	}
	return resp.StatusCode, v
}

// --- tests ---

// TestDatasetLifecycle covers the full incremental flow: create → initial
// profile → versioned batch appends, with the final profile matching a
// from-scratch job on the concatenated rows.
func TestDatasetLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, d := createDataset(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("create dataset: status %d", code)
	}
	if d.State != DatasetProfiling {
		t.Fatalf("fresh dataset state = %q, want %q", d.State, DatasetProfiling)
	}
	v := pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	if v.Version != 1 {
		t.Fatalf("after initial profile Version = %d, want 1", v.Version)
	}
	if v.Rows != 4 || len(v.Columns) != 3 {
		t.Fatalf("after initial profile rows=%d columns=%v", v.Rows, v.Columns)
	}
	code, prof := getProfile(t, ts, d.ID)
	if code != http.StatusOK || prof.Version != 1 || prof.Report == nil {
		t.Fatalf("profile v1: code=%d view=%+v", code, prof)
	}
	// The seed rows keep id unique and zip → city.
	if got := prof.Report.UCCs; len(got) == 0 {
		t.Fatalf("initial profile found no UCCs: %+v", prof.Report)
	}

	// Batch 1 repeats an id, so the {id} key must fall after revalidation.
	batch := "1,14467,Potsdam\n5,99999,Jena\n"
	if code, body := postBatch(t, ts, d.ID, batch); code != http.StatusAccepted {
		t.Fatalf("post batch: status %d body %s", code, body)
	}
	v = pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.State == DatasetReady && v.Version == 2 })
	if v.Rows != 6 {
		t.Fatalf("after batch rows = %d, want 6", v.Rows)
	}
	code, prof = getProfile(t, ts, d.ID)
	if code != http.StatusOK || prof.Version != 2 {
		t.Fatalf("profile v2: code=%d version=%d", code, prof.Version)
	}
	for _, u := range prof.Report.UCCs {
		if len(u) == 1 && u[0] == "id" {
			t.Fatalf("{id} still reported unique after a duplicate id was appended: %v", prof.Report.UCCs)
		}
	}

	// Differential check: a from-scratch job over the concatenated rows must
	// report exactly the same dependencies as the incremental session.
	code, job := submit(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV+batch))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("scratch submit: status %d", code)
	}
	job = pollUntil(t, ts, job.ID, func(v JobView) bool { return terminal(v.State) })
	if job.State != StateDone {
		t.Fatalf("scratch job state %q: %s", job.State, job.Error)
	}
	want := job.Result
	got := prof.Report
	if !reflect.DeepEqual(got.INDs, want.INDs) {
		t.Errorf("INDs diverge:\nincremental %+v\nscratch     %+v", got.INDs, want.INDs)
	}
	if !reflect.DeepEqual(got.UCCs, want.UCCs) {
		t.Errorf("UCCs diverge:\nincremental %+v\nscratch     %+v", got.UCCs, want.UCCs)
	}
	if !reflect.DeepEqual(got.FDs, want.FDs) {
		t.Errorf("FDs diverge:\nincremental %+v\nscratch     %+v", got.FDs, want.FDs)
	}

	if n := metricValue(t, ts, "profiled_datasets_created_total"); n != 1 {
		t.Errorf("datasets_created = %d, want 1", n)
	}
	if n := metricValue(t, ts, "profiled_dataset_batches_total"); n != 1 {
		t.Errorf("dataset_batches = %d, want 1", n)
	}
}

// TestDatasetBatchConflict proves the one-job-per-dataset invariant: while a
// batch job is queued or running, further batch submissions are rejected with
// 409 instead of being queued behind state the client never saw.
func TestDatasetBatchConflict(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	started, release := gate.channels()
	_, ts := newTestServer(t, Config{Workers: 1})

	code, d := createDataset(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("create dataset: status %d", code)
	}
	pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })

	// Park a plain job on the single worker so the next batch stays queued.
	code, _ = submit(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d", code)
	}
	<-started

	if code, body := postBatch(t, ts, d.ID, "5,99999,Jena\n"); code != http.StatusAccepted {
		t.Fatalf("first batch: status %d body %s", code, body)
	}
	code, body := postBatch(t, ts, d.ID, "6,99999,Jena\n")
	if code != http.StatusConflict {
		t.Fatalf("concurrent batch: status %d body %s, want 409", code, body)
	}
	if !strings.Contains(body, "in flight") {
		t.Fatalf("409 body %q does not name the in-flight job", body)
	}

	close(release)
	v := pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.State == DatasetReady && v.Version == 2 })
	if v.Rows != 5 {
		t.Fatalf("after released batch rows = %d, want 5", v.Rows)
	}
}

// TestDatasetBusyDuringInitialProfile covers the profiling window: until the
// initial profile lands there is no revalidation baseline, so batches are 409
// and the profile endpoint reports the same conflict.
func TestDatasetBusyDuringInitialProfile(t *testing.T) {
	registerBlockStrategy()
	gate.reset()
	started, release := gate.channels()
	_, ts := newTestServer(t, Config{Workers: 1})

	code, d := createDataset(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("create dataset: status %d", code)
	}
	<-started

	if code, _ := postBatch(t, ts, d.ID, "5,99999,Jena\n"); code != http.StatusConflict {
		t.Fatalf("batch during initial profile: status %d, want 409", code)
	}
	if code, _ := getProfile(t, ts, d.ID); code != http.StatusConflict {
		t.Fatalf("profile during initial profile: status %d, want 409", code)
	}
	close(release)
	pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	if code, _ := getProfile(t, ts, d.ID); code != http.StatusOK {
		t.Fatalf("profile after release: status %d, want 200", code)
	}
}

// TestDatasetValidation covers the client-error surface of the dataset
// endpoints.
func TestDatasetValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Unknown ids are 404 on every dataset route.
	for _, probe := range []func() (int, string){
		func() (int, string) {
			resp, err := http.Get(ts.URL + "/v1/datasets/d-999")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(b)
		},
		func() (int, string) {
			code, body := postBatch(t, ts, "d-999", "1,2,3\n")
			return code, body
		},
		func() (int, string) {
			code, _ := getProfile(t, ts, "d-999")
			return code, ""
		},
	} {
		if code, _ := probe(); code != http.StatusNotFound {
			t.Fatalf("unknown dataset probe: status %d, want 404", code)
		}
	}

	// Creation rejects the same bad requests as job submission.
	if code, _ := createDataset(t, ts, `{"algorithm": "muds"}`); code != http.StatusBadRequest {
		t.Fatalf("create without csv: status %d, want 400", code)
	}
	if code, _ := createDataset(t, ts, `{not json`); code != http.StatusBadRequest {
		t.Fatalf("create with malformed body: status %d, want 400", code)
	}

	// Batch validation happens before the dataset is claimed.
	code, d := createDataset(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV))
	if code != http.StatusAccepted {
		t.Fatalf("create dataset: status %d", code)
	}
	pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.State == DatasetReady })
	if code, _ := postBatch(t, ts, d.ID, ""); code != http.StatusBadRequest {
		t.Fatalf("empty batch csv: status %d, want 400", code)
	}
	if code, body := postBatch(t, ts, d.ID, "1,2\n"); code != http.StatusBadRequest {
		t.Fatalf("narrow batch: status %d body %s, want 400", code, body)
	}
	// The rejections must not have poisoned the session.
	if code, body := postBatch(t, ts, d.ID, "5,99999,Jena\n"); code != http.StatusAccepted {
		t.Fatalf("valid batch after rejections: status %d body %s", code, body)
	}
	pollDataset(t, ts, d.ID, func(v DatasetView) bool { return v.Version == 2 })
}

// TestDatasetList covers GET /v1/datasets.
func TestDatasetList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		if code, _ := createDataset(t, ts, fmt.Sprintf(`{"csv": %q, "dataset": "ds%d"}`, testCSV, i)); code != http.StatusAccepted {
			t.Fatalf("create dataset %d: status %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []DatasetView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].Dataset != "ds0" || views[1].Dataset != "ds1" {
		t.Fatalf("dataset list = %+v", views)
	}
}
