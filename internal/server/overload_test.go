package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"holistic/internal/core"
	"holistic/internal/relation"
)

// The overload suite proves the resilience layer end to end: deadline-aware
// admission rejects doomed work with an honest Retry-After, CoDel sheds the
// oldest queued job under sustained overload, idempotency keys collapse
// concurrent and post-crash retries onto one job, circuit breakers fast-fail
// repeatedly failing (dataset, algorithm) pairs, and the memory governor
// degrades or refuses work above its watermarks.

// sleepFor is the service time of the "sleeptest" strategy: long enough to
// build queues with a handful of jobs, short enough to keep the suite fast.
const sleepFor = 60 * time.Millisecond

// sleepStrategy runs for a fixed, known duration so tests can seed the
// admission controller's service-time estimate deterministically.
type sleepStrategy struct{}

func (sleepStrategy) Name() string { return "sleeptest" }

func (sleepStrategy) Profile(ctx context.Context, rel *relation.Relation, opts core.Options, obs core.Observer) (*core.Result, error) {
	select {
	case <-time.After(sleepFor):
		return &core.Result{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// failMode toggles the "failtest" strategy between failing and succeeding,
// so one test can trip a circuit breaker and then let its trial probe pass.
var failMode atomic.Bool

type failStrategy struct{}

func (failStrategy) Name() string { return "failtest" }

func (failStrategy) Profile(ctx context.Context, rel *relation.Relation, opts core.Options, obs core.Observer) (*core.Result, error) {
	if failMode.Load() {
		return nil, errors.New("failtest: induced failure")
	}
	return &core.Result{}, nil
}

var registerOverloadOnce sync.Once

func registerOverloadStrategies() {
	registerOverloadOnce.Do(func() {
		core.Register(sleepStrategy{})
		core.Register(failStrategy{})
	})
}

// submitWith posts body to /v1/jobs with extra headers and returns the
// response (status, headers) plus the decoded job view for 200/202.
func submitWith(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (*http.Response, JobView, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("decode submit response %q: %v", data, err)
		}
	}
	return resp, v, string(data)
}

// retryAfterHeader parses the Retry-After header and fails the test when it
// is missing or outside the documented [1, 60] second clamp.
func retryAfterHeader(t *testing.T, resp *http.Response) int {
	t.Helper()
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		t.Fatalf("status %d response missing Retry-After", resp.StatusCode)
	}
	secs, err := strconv.Atoi(raw)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", raw, err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %d, want within [1, 60]", secs)
	}
	return secs
}

// TestAdaptiveAdmissionRejectsDoomed seeds the service-time estimator with a
// real run, parks the only worker, queues work behind it, and then submits a
// job whose deadline the controller must predict as unreachable: the answer
// is an immediate 429 with a computed Retry-After, not a 202 followed by a
// deadline failure.
func TestAdaptiveAdmissionRejectsDoomed(t *testing.T) {
	registerOverloadStrategies()
	registerBlockStrategy()
	gate.reset()
	_, release := gate.channels()
	_, ts := newTestServer(t, Config{Workers: 1})

	// Seed: one completed sleeptest run teaches the controller its cost.
	_, seed, _ := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "sleeptest"}`, testCSV), nil)
	pollUntil(t, ts, seed.ID, func(v JobView) bool { return v.State == StateDone })

	// Park the worker and build a queue of three known-cost jobs.
	resp, _, _ := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest"}`, testCSV), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocktest submit status = %d, want 202", resp.StatusCode)
	}
	started, _ := gate.channels()
	<-started
	for i := 0; i < 3; i++ {
		resp, _, body := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "sleeptest", "max_rows": %d}`, testCSV, i+1), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler submit %d status = %d (%s), want 202", i, resp.StatusCode, body)
		}
	}

	// Predicted completion: ~3 queued * 60ms + 60ms service, far beyond a
	// 100ms deadline plus slack. Must be refused at admission.
	resp, _, body := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "sleeptest", "timeout_seconds": 0.1, "distinct_nulls": true}`, testCSV), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed submit status = %d (%s), want 429", resp.StatusCode, body)
	}
	retryAfterHeader(t, resp)
	if !strings.Contains(body, "deadline") {
		t.Fatalf("429 body %q does not explain the predicted deadline miss", body)
	}
	if got := metricValue(t, ts, `profiled_admission_rejections_total{reason="predicted_deadline"}`); got != 1 {
		t.Fatalf("predicted_deadline rejections = %d, want 1", got)
	}

	// A generous deadline sails through the same queue state (max_rows keeps
	// the cache key distinct from the seed run).
	resp, ok, _ := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "sleeptest", "timeout_seconds": 30, "max_rows": 9}`, testCSV), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("generous-deadline submit status = %d, want 202", resp.StatusCode)
	}
	close(release)
	pollUntil(t, ts, ok.ID, func(v JobView) bool { return terminal(v.State) })
}

// TestAdmissionEstimateFaultPoint drives the rejection path deterministically:
// with admission.estimate armed the estimator reports an unbounded service
// time, so any deadline-carrying submission is refused regardless of history.
func TestAdmissionEstimateFaultPoint(t *testing.T) {
	armFaults(t, "admission.estimate:error")
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, _, body := submitWith(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit status = %d (%s), want 429", resp.StatusCode, body)
	}
	retryAfterHeader(t, resp)
	if got := metricValue(t, ts, `profiled_admission_rejections_total{reason="predicted_deadline"}`); got != 1 {
		t.Fatalf("predicted_deadline rejections = %d, want 1", got)
	}
}

// TestCoDelShedding holds queue waits above a tiny target and verifies the
// controller sheds the oldest queued job instead of serving every job late:
// a canceled job with a shed reason, and the shed counter advances.
func TestCoDelShedding(t *testing.T) {
	registerOverloadStrategies()
	_, ts := newTestServer(t, Config{Workers: 1, QueueTarget: 20 * time.Millisecond})

	// Six 60ms jobs on one worker: by the third dequeue, sojourn has been
	// above the 20ms target for a full interval and the head of the queue is
	// shed.
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		resp, v, body := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "sleeptest", "max_rows": %d}`, testCSV, i+1), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d (%s), want 202", i, resp.StatusCode, body)
		}
		ids = append(ids, v.ID)
	}
	shed := 0
	for _, id := range ids {
		v := pollUntil(t, ts, id, func(v JobView) bool { return terminal(v.State) })
		if v.State == StateCanceled {
			if !strings.Contains(v.Error, "shed") {
				t.Fatalf("canceled job %s has reason %q, want a shed reason", id, v.Error)
			}
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no queued job was shed despite sustained over-target sojourn")
	}
	if got := metricValue(t, ts, "profiled_jobs_shed_total"); got != int64(shed) {
		t.Fatalf("profiled_jobs_shed_total = %d, want %d", got, shed)
	}
}

// TestIdempotentConcurrentSubmissions hammers one idempotency key from many
// goroutines: exactly one job may execute; every other submission must replay
// it — same ID, replay header, no duplicate work.
func TestIdempotentConcurrentSubmissions(t *testing.T) {
	registerOverloadStrategies()
	_, ts := newTestServer(t, Config{Workers: 2})

	const n = 16
	body := fmt.Sprintf(`{"csv": %q, "algorithm": "sleeptest"}`, testCSV)
	var wg sync.WaitGroup
	idsCh := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, v, raw := submitWith(t, ts, body, map[string]string{"Idempotency-Key": "stress-key"})
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit status = %d (%s)", resp.StatusCode, raw)
				return
			}
			idsCh <- v.ID
		}()
	}
	wg.Wait()
	close(idsCh)

	distinct := map[string]bool{}
	for id := range idsCh {
		distinct[id] = true
	}
	if len(distinct) != 1 {
		t.Fatalf("distinct job IDs = %d (%v), want exactly 1", len(distinct), distinct)
	}
	var id string
	for k := range distinct {
		id = k
	}
	done := pollUntil(t, ts, id, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("deduped job = %s (%s), want done", done.State, done.Error)
	}
	if done.IdemKey != "stress-key" {
		t.Fatalf("job idempotency key = %q, want %q", done.IdemKey, "stress-key")
	}
	if got := metricValue(t, ts, "profiled_jobs_submitted_total"); got != 1 {
		t.Fatalf("jobs submitted = %d, want 1 (duplicates must not execute)", got)
	}
	if got := metricValue(t, ts, "profiled_idempotent_replays_total"); got != n-1 {
		t.Fatalf("idempotent replays = %d, want %d", got, n-1)
	}

	// A terminal replay answers 200 with the replay marker.
	resp, v, _ := submitWith(t, ts, body, map[string]string{"Idempotency-Key": "stress-key"})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Idempotent-Replay") != "true" || v.ID != id {
		t.Fatalf("post-terminal replay: status=%d replay=%q id=%q, want 200/true/%s",
			resp.StatusCode, resp.Header.Get("Idempotent-Replay"), v.ID, id)
	}
}

// TestIdempotencyKeyTooLong rejects oversized keys: they are journaled with
// every admission, so unbounded ones would be a WAL-bloat vector.
func TestIdempotencyKeyTooLong(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _, body := submitWith(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV),
		map[string]string{"Idempotency-Key": strings.Repeat("k", maxIdempotencyKeyLen+1)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized key status = %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestRestartIdempotentDedup proves dedup survives a kill -9: keys journaled
// with their admissions are rebuilt on recovery, so a client retrying a
// pre-crash submission gets the original job back — terminal record or
// replayed in-flight job — never a duplicate execution.
func TestRestartIdempotentDedup(t *testing.T) {
	registerOverloadStrategies()
	registerBlockStrategy()
	gate.reset()
	_, release := gate.channels()
	dir := t.TempDir()
	cfg := Config{Workers: 1, StateDir: dir}

	s1, _, ts1 := openTestServer(t, cfg)
	respA, jobA, _ := submitWith(t, ts1, fmt.Sprintf(`{"csv": %q, "idempotency_key": "key-done"}`, testCSV), nil)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", respA.StatusCode)
	}
	pollUntil(t, ts1, jobA.ID, func(v JobView) bool { return v.State == StateDone })

	// A second job is mid-run when the process dies.
	respB, jobB, _ := submitWith(t, ts1, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest", "idempotency_key": "key-inflight"}`, testCSV), nil)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("in-flight submit status = %d, want 202", respB.StatusCode)
	}
	started, _ := gate.channels()
	<-started
	crash(t, s1, ts1)

	_, stats, ts2 := openTestServer(t, cfg)
	if stats.ReplayedJobs != 1 {
		t.Fatalf("replayed jobs = %d, want 1", stats.ReplayedJobs)
	}

	// Retry of the completed submission: same ID, replayed, no new job.
	resp, v, _ := submitWith(t, ts2, fmt.Sprintf(`{"csv": %q, "idempotency_key": "key-done"}`, testCSV), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Idempotent-Replay") != "true" {
		t.Fatalf("post-crash replay: status=%d replay=%q, want 200/true",
			resp.StatusCode, resp.Header.Get("Idempotent-Replay"))
	}
	if v.ID != jobA.ID || v.State != StateDone {
		t.Fatalf("post-crash replay = %s (%s), want %s done", v.ID, v.State, jobA.ID)
	}

	// Retry of the interrupted submission dedups onto the replayed job.
	resp, v, _ = submitWith(t, ts2, fmt.Sprintf(`{"csv": %q, "algorithm": "blocktest", "idempotency_key": "key-inflight"}`, testCSV), nil)
	if resp.Header.Get("Idempotent-Replay") != "true" || v.ID != jobB.ID {
		t.Fatalf("in-flight replay: replay=%q id=%q, want true/%s",
			resp.Header.Get("Idempotent-Replay"), v.ID, jobB.ID)
	}
	if got := metricValue(t, ts2, "profiled_jobs_submitted_total"); got != 0 {
		t.Fatalf("jobs submitted after restart = %d, want 0 (both retries must dedup)", got)
	}

	close(release)
	pollUntil(t, ts2, jobB.ID, func(v JobView) bool { return terminal(v.State) })
}

// TestCircuitBreaker trips a per-(dataset, algorithm) breaker with repeated
// failures, verifies the fast-fail contract (422, prior error, Retry-After),
// per-key isolation, the half-open trial after cooldown, and recovery.
func TestCircuitBreaker(t *testing.T) {
	registerOverloadStrategies()
	failMode.Store(true)
	t.Cleanup(func() { failMode.Store(false) })
	_, ts := newTestServer(t, Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: 200 * time.Millisecond})

	badBody := fmt.Sprintf(`{"csv": %q, "algorithm": "failtest"}`, testCSV)
	for i := 0; i < 2; i++ {
		resp, v, _ := submitWith(t, ts, badBody, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("failing submit %d status = %d, want 202", i, resp.StatusCode)
		}
		done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
		if done.State != StateFailed {
			t.Fatalf("failing job %d = %s, want failed", i, done.State)
		}
	}
	if got := metricValue(t, ts, "profiled_breaker_trips_total"); got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}

	// Open: the same key fast-fails with the prior error attached.
	resp, _, body := submitWith(t, ts, badBody, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("open-breaker submit status = %d (%s), want 422", resp.StatusCode, body)
	}
	retryAfterHeader(t, resp)
	if !strings.Contains(body, "induced failure") {
		t.Fatalf("422 body %q does not carry the error that tripped the breaker", body)
	}
	if got := metricValue(t, ts, "profiled_breaker_fast_fails_total"); got != 1 {
		t.Fatalf("breaker fast fails = %d, want 1", got)
	}
	if got := metricValue(t, ts, "profiled_breakers_open"); got != 1 {
		t.Fatalf("open breakers gauge = %d, want 1", got)
	}
	if got := healthStatus(t, ts); got != "degraded" {
		t.Fatalf("health with an open breaker = %q, want degraded", got)
	}

	// Per-key isolation: a different dataset (different SHA) is untouched.
	failMode.Store(false)
	resp, other, _ := submitWith(t, ts, fmt.Sprintf(`{"csv": %q, "algorithm": "failtest"}`, testCSV+"5,10115,Berlin\n"), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other-dataset submit status = %d, want 422-free admission", resp.StatusCode)
	}
	pollUntil(t, ts, other.ID, func(v JobView) bool { return v.State == StateDone })

	// Past cooldown the breaker half-opens: one trial probe runs, succeeds,
	// and closes the breaker.
	time.Sleep(250 * time.Millisecond)
	resp, trial, _ := submitWith(t, ts, badBody, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trial submit status = %d, want 202", resp.StatusCode)
	}
	done := pollUntil(t, ts, trial.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("trial job = %s (%s), want done", done.State, done.Error)
	}
	if got := metricValue(t, ts, "profiled_breakers_open"); got != 0 {
		t.Fatalf("open breakers after recovery = %d, want 0", got)
	}
	if got := healthStatus(t, ts); got != "ok" {
		t.Fatalf("health after breaker close = %q, want ok", got)
	}
}

// TestMemWatermarkSoftDegrades proves the soft watermark: armed via the
// mem.watermark fault (transient = soft), new jobs run degraded — flagged on
// the job view — and the level gauge reports 1.
func TestMemWatermarkSoftDegrades(t *testing.T) {
	armFaults(t, "mem.watermark:transient")
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, v, _ := submitWith(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone {
		t.Fatalf("degraded job = %s (%s), want done", done.State, done.Error)
	}
	if !done.Degraded {
		t.Fatal("job admitted above the soft watermark is not flagged degraded")
	}
	if got := metricValue(t, ts, "profiled_mem_watermark_level"); got != 1 {
		t.Fatalf("watermark level gauge = %d, want 1 (soft)", got)
	}
}

// TestMemWatermarkHardRefusesLarge proves the hard watermark: large
// submissions get 503 with a Retry-After, small ones still run (degraded),
// and /healthz reports the pressure.
func TestMemWatermarkHardRefusesLarge(t *testing.T) {
	armFaults(t, "mem.watermark:error")
	_, ts := newTestServer(t, Config{Workers: 1, LargeJobBytes: 64})

	// testCSV is comfortably past the 64-byte large threshold.
	resp, _, body := submitWith(t, ts, fmt.Sprintf(`{"csv": %q}`, testCSV), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("large submit status = %d (%s), want 503", resp.StatusCode, body)
	}
	retryAfterHeader(t, resp)
	if !strings.Contains(body, "memory pressure") {
		t.Fatalf("503 body %q does not explain the memory pressure", body)
	}
	if got := metricValue(t, ts, `profiled_admission_rejections_total{reason="mem_pressure"}`); got != 1 {
		t.Fatalf("mem_pressure rejections = %d, want 1", got)
	}
	if got := metricValue(t, ts, "profiled_mem_watermark_level"); got != 2 {
		t.Fatalf("watermark level gauge = %d, want 2 (hard)", got)
	}
	if got := healthStatus(t, ts); got != "degraded" {
		t.Fatalf("health above the hard watermark = %q, want degraded", got)
	}

	// A small submission is still served, degraded.
	resp, v, _ := submitWith(t, ts, `{"csv": "a,b\n1,2\n"}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small submit status = %d, want 202", resp.StatusCode)
	}
	done := pollUntil(t, ts, v.ID, func(v JobView) bool { return terminal(v.State) })
	if done.State != StateDone || !done.Degraded {
		t.Fatalf("small job = %s degraded=%v, want done and degraded", done.State, done.Degraded)
	}
}

// TestOverloadFloodBoundedAndLossless floods a small server far past
// saturation and checks the overload invariants: every submission gets a
// prompt, definitive answer (bounded admission latency), every rejection
// carries a clamped Retry-After, every accepted job reaches a terminal state
// under its original ID, and no job is duplicated or forgotten.
func TestOverloadFloodBoundedAndLossless(t *testing.T) {
	registerOverloadStrategies()
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8, QueueTarget: time.Hour})

	const n = 80
	type outcome struct {
		code    int
		id      string
		latency time.Duration
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique bytes per submission: no result-cache or idempotency
			// short-circuits, every acceptance is real queued work.
			body := fmt.Sprintf(`{"csv": "id,v\n%d,x\n", "algorithm": "sleeptest", "idempotency_key": "flood-%d"}`, i, i)
			startAt := time.Now()
			resp, v, _ := submitWith(t, ts, body, nil)
			results[i] = outcome{code: resp.StatusCode, id: v.ID, latency: time.Since(startAt)}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				retryAfterHeader(t, resp)
			}
		}(i)
	}
	wg.Wait()

	var accepted []string
	rejected := 0
	latencies := make([]time.Duration, 0, n)
	for _, r := range results {
		latencies = append(latencies, r.latency)
		switch r.code {
		case http.StatusAccepted:
			accepted = append(accepted, r.id)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("unexpected submit status %d", r.code)
		}
	}
	if len(accepted)+rejected != n {
		t.Fatalf("accepted %d + rejected %d != %d submissions", len(accepted), rejected, n)
	}
	if rejected == 0 {
		t.Fatalf("flood of %d against queue depth 8 produced no rejections", n)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if p99 := latencies[len(latencies)*99/100]; p99 > 2*time.Second {
		t.Fatalf("p99 admission latency = %v, want bounded under overload", p99)
	}

	// Zero lost, zero duplicated: every accepted ID is distinct and reaches
	// a terminal state.
	distinct := map[string]bool{}
	for _, id := range accepted {
		if distinct[id] {
			t.Fatalf("job ID %s handed out twice", id)
		}
		distinct[id] = true
		pollUntil(t, ts, id, func(v JobView) bool { return terminal(v.State) })
	}
	if got := metricValue(t, ts, "profiled_jobs_submitted_total"); got != int64(len(accepted)) {
		t.Fatalf("jobs submitted = %d, want %d (exactly the accepted set)", got, len(accepted))
	}

	// The queue-wait histogram saw every executed job.
	if got := metricValue(t, ts, "profiled_queue_wait_seconds_count"); got < int64(len(accepted))/2 {
		t.Fatalf("queue wait observations = %d, want at least half the accepted jobs", got)
	}
}
