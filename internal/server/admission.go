package server

import (
	"math"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"

	"holistic/internal/faults"
)

// This file is the server's overload-resilience brain: the adaptive
// admission controller (deadline-aware rejection plus CoDel-style shedding)
// and the memory-watermark governor. Dependency discovery is exponential in
// the worst case, so no static queue depth is simultaneously safe for a
// 100-row CSV and a hostile 100k-row one — instead the server learns what
// jobs actually cost and refuses, at admission time, work it predicts it
// cannot finish before its deadline. Refusing early is kinder than queueing
// doomed work: the client gets an honest Retry-After instead of a 202
// followed by a deadline failure minutes later.

// ewmaAlpha weights new observations in the service-time moving averages.
// 0.2 adapts within ~5 jobs to a shifted workload without letting one
// outlier dominate.
const ewmaAlpha = 0.2

// ewma is an exponentially weighted moving average. The zero value is empty:
// it reports nothing until the first observation seeds it.
type ewma struct {
	val float64
	n   int64
}

func (e *ewma) observe(v float64) {
	if e.n == 0 {
		e.val = v
	} else {
		e.val += ewmaAlpha * (v - e.val)
	}
	e.n++
}

func (e *ewma) value() (float64, bool) { return e.val, e.n > 0 }

// admission is the adaptive admission controller. It tracks an EWMA of job
// service time per algorithm (and overall), an EWMA of queue wait, and the
// CoDel shedding state. All methods are safe for concurrent use.
type admission struct {
	workers int
	// target is the CoDel sojourn target: the queue wait the controller
	// tolerates. When observed sojourn stays above it for a full interval
	// (= target), the oldest queued job is shed.
	target time.Duration

	mu      sync.Mutex
	perAlg  map[string]*ewma
	overall ewma
	wait    ewma
	// aboveSince is the CoDel state: when dequeue-time sojourn first
	// exceeded target with no sub-target dequeue since (zero = below).
	aboveSince time.Time
}

func newAdmission(workers int, target time.Duration) *admission {
	return &admission{workers: workers, target: target, perAlg: map[string]*ewma{}}
}

// observeService records one completed run's service time for alg.
func (a *admission) observeService(alg string, d time.Duration) {
	s := d.Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.perAlg[alg]
	if !ok {
		e = &ewma{}
		a.perAlg[alg] = e
	}
	e.observe(s)
	a.overall.observe(s)
}

// estimateService predicts the service time of a job running alg, in
// seconds. Per-algorithm history wins; with none, the overall average
// stands in; with no history at all the estimate is unknown and admission
// must not reject (the first job of a cold server is how the controller
// learns). The admission.estimate fault point, armed, reports an unbounded
// estimate so tests can drive the rejection path deterministically.
func (a *admission) estimateService(alg string) (float64, bool) {
	if err := faults.Inject(faults.AdmissionEstimate); err != nil {
		return math.MaxFloat64 / 4, true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.perAlg[alg]; ok {
		if v, seeded := e.value(); seeded {
			return v, true
		}
	}
	return a.overall.value()
}

// predictWait estimates how long a job admitted now would sit in the queue:
// the queued jobs ahead of it, costed at the overall service average, spread
// over the worker pool. Unknown history predicts zero wait (admit and learn).
func (a *admission) predictWait(queued int) float64 {
	if queued <= 0 {
		return 0
	}
	a.mu.Lock()
	svc, ok := a.overall.value()
	a.mu.Unlock()
	if !ok {
		return 0
	}
	return float64(queued) * svc / float64(max(a.workers, 1))
}

// admissionSlack is the margin a predicted completion must overshoot the
// deadline by before the job is rejected: estimates are noisy, and a job
// predicted to land within epsilon of its deadline deserves its chance (it
// may also return a useful partial result).
func admissionSlack(deadline time.Duration) time.Duration {
	slack := deadline / 5
	if slack < 50*time.Millisecond {
		slack = 50 * time.Millisecond
	}
	return slack
}

// onDequeue records a job's queue sojourn as a worker picks it up and
// reports whether the CoDel state says to shed: sojourn has stayed above
// target for at least one full target-length interval. A sub-target dequeue
// resets the state; a shed re-arms the interval so shedding is paced, not a
// stampede.
func (a *admission) onDequeue(sojourn time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.wait.observe(sojourn.Seconds())
	if a.target <= 0 {
		return false
	}
	now := time.Now()
	if sojourn < a.target {
		a.aboveSince = time.Time{}
		return false
	}
	if a.aboveSince.IsZero() {
		a.aboveSince = now
		return false
	}
	if now.Sub(a.aboveSince) >= a.target {
		a.aboveSince = now // re-arm: at most one shed per interval
		return true
	}
	return false
}

// waitEstimate is the smoothed queue-wait EWMA in seconds (0 until seeded).
func (a *admission) waitEstimate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, _ := a.wait.value()
	return v
}

// retryAfterSecs turns a predicted wait (seconds) into an honest
// Retry-After value, clamped to [1s, 60s] and rounded up so a client
// sleeping exactly that long finds capacity more often than not.
func retryAfterSecs(predictedWait float64) int {
	secs := int(math.Ceil(predictedWait))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// --- memory-watermark governor ---

// Memory pressure levels reported by the governor.
const (
	memHealthy = iota
	// memSoft: heap above the soft watermark. New jobs run degraded —
	// shrunken PLI cache budget, sampled-check prefilter forced on — trading
	// speed for footprint while results stay exact.
	memSoft
	// memHard: heap above the hard watermark. Large-dataset submissions are
	// refused with 503 until pressure recedes; small ones still run
	// degraded.
	memHard
)

// heapMetric is the runtime/metrics sample the governor watches: live bytes
// in heap objects, the number the PLI caches and relations actually drive.
const heapMetric = "/memory/classes/heap/objects:bytes"

// memSampleEvery rate-limits runtime/metrics reads; admission decisions
// between samples reuse the cached level.
const memSampleEvery = 100 * time.Millisecond

// memGovernor watches the Go heap against soft and hard watermarks and
// tells admission how aggressively to degrade. With both watermarks unset
// it reports healthy without ever sampling. The mem.watermark fault point
// overrides the sampled level (transient = soft, error/panic = hard) so
// chaos tests exercise the ladder without inflating a real heap.
type memGovernor struct {
	soft, hard int64

	mu        sync.Mutex
	sampledAt time.Time
	heap      int64
	level     int
}

func newMemGovernor(soft, hard int64) *memGovernor {
	return &memGovernor{soft: soft, hard: hard}
}

// state returns the current pressure level and the heap sample behind it,
// refreshing the runtime/metrics sample at most every memSampleEvery.
func (g *memGovernor) state() (int, int64) {
	if mode, armed := faults.Sample(faults.MemWatermark); armed {
		level := memHard
		if mode == faults.ModeTransient {
			level = memSoft
		}
		g.mu.Lock()
		g.level = level
		g.mu.Unlock()
		return level, g.heapBytes()
	}
	if g.soft <= 0 && g.hard <= 0 {
		return memHealthy, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if now := time.Now(); now.Sub(g.sampledAt) >= memSampleEvery {
		g.sampledAt = now
		g.heap = readHeapBytes()
		switch {
		case g.hard > 0 && g.heap >= g.hard:
			g.level = memHard
		case g.soft > 0 && g.heap >= g.soft:
			g.level = memSoft
		default:
			g.level = memHealthy
		}
	}
	return g.level, g.heap
}

// last reports the most recent sample without consuming fault budget or
// re-reading runtime/metrics — the metrics endpoint renders from it.
func (g *memGovernor) last() (int, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.level, g.heap
}

func (g *memGovernor) heapBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.heap
}

func readHeapBytes() int64 {
	sample := []runtimemetrics.Sample{{Name: heapMetric}}
	runtimemetrics.Read(sample)
	if sample[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return int64(sample[0].Value.Uint64())
}
