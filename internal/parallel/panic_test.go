package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"holistic/internal/faults"
)

// TestForTaskPanicRepanicsOnCaller is the pool's containment contract: a
// panicking task must not unwind a worker goroutine (which would kill the
// process); the pool drains and re-panics on the calling goroutine with a
// *TaskPanic preserving the task index and the worker's stack.
func TestForTaskPanicRepanicsOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to the caller")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
		if tp.Task != 7 {
			t.Fatalf("TaskPanic.Task = %d, want 7", tp.Task)
		}
		if tp.Value != "task 7 exploded" {
			t.Fatalf("TaskPanic.Value = %v", tp.Value)
		}
		if !strings.Contains(string(tp.Stack), "panic_test") {
			t.Fatalf("TaskPanic.Stack lost the panicking frame:\n%s", tp.Stack)
		}
	}()
	_ = For(context.Background(), 4, 100, func(i int) {
		if i == 7 {
			panic("task 7 exploded")
		}
	})
	t.Fatal("For returned normally past a panicking task")
}

// TestForPanicStopsDispatch verifies a panic aborts the pool promptly: tasks
// not yet claimed when the panic hits are never started.
func TestForPanicStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		_ = For(context.Background(), 2, 1<<20, func(i int) {
			if ran.Add(1) == 10 {
				panic("abort")
			}
		})
	}()
	if got := ran.Load(); got >= 1<<20 {
		t.Fatalf("panic did not stop dispatch (%d tasks ran)", got)
	}
}

// TestForPanicUnwrapsErrors checks error-valued panics stay classifiable
// through the TaskPanic wrapper (the engine uses this to recognise injected
// faults and transient markers across the pool boundary).
func TestForPanicUnwrapsErrors(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
		if !errors.Is(tp, sentinel) {
			t.Fatalf("TaskPanic does not unwrap to the panic error: %v", tp)
		}
	}()
	_ = For(context.Background(), 2, 10, func(i int) { panic(sentinel) })
}

// TestForSequentialPanicUnchanged pins the inline path's behaviour: with one
// worker a panic propagates raw, exactly like a plain loop.
func TestForSequentialPanicUnchanged(t *testing.T) {
	defer func() {
		if r := recover(); r != "raw" {
			t.Fatalf("recovered %v, want the raw panic value", r)
		}
	}()
	_ = For(context.Background(), 1, 3, func(i int) { panic("raw") })
}

// TestForWorkerSpawnDegradation arms the worker.spawn fault and checks the
// pool falls back to sequential in-line execution: every slot still runs
// exactly once, in index order.
func TestForWorkerSpawnDegradation(t *testing.T) {
	faults.Enable(faults.WorkerSpawn, faults.ModeError, 0)
	t.Cleanup(faults.Reset)

	var order []int
	err := For(context.Background(), 8, 50, func(i int) { order = append(order, i) })
	if err != nil {
		t.Fatalf("degraded For: %v", err)
	}
	if len(order) != 50 {
		t.Fatalf("ran %d tasks, want 50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("degraded pool ran out of order at %d: %v", i, order)
		}
	}
	if faults.Fired(faults.WorkerSpawn) == 0 {
		t.Fatal("worker.spawn fault never fired")
	}
}
