package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

// TestForCoversEverySlotOnce runs the pool at several widths and checks every
// index is visited exactly once — the invariant the indexed-slot pattern
// rests on.
func TestForCoversEverySlotOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 8, n + 7} {
		visits := make([]int32, n)
		err := For(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: slot %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForSequentialOrder(t *testing.T) {
	var order []int
	if err := For(context.Background(), 1, 5, func(i int) { order = append(order, i) }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline path ran out of order: %v", order)
		}
	}
}

func TestForZeroTasks(t *testing.T) {
	if err := For(context.Background(), 4, 0, func(int) { t.Fatal("called") }); err != nil {
		t.Fatal(err)
	}
}

// TestForCancellation checks that a done context stops dispatch promptly and
// surfaces the context error, both inline and pooled.
func TestForCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := For(ctx, workers, 100000, func(i int) {
			if ran.Add(1) == 3 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= 100000 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch (%d tasks ran)", workers, got)
		}
	}
}

func TestForAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := For(ctx, 4, 10, func(int) { called = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pooled path may admit a task between the error check and claim;
	// the inline path must not.
	if err := For(ctx, 1, 10, func(int) { t.Fatal("inline task ran on dead context") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("inline err = %v, want context.Canceled", err)
	}
	_ = called
}

// TestForDeadline exercises the pool under a deadline that fires mid-run.
func TestForDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := For(ctx, 4, 1<<30, func(i int) { time.Sleep(10 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestForWorkerSlotExclusivity checks the contract scratch-arena owners rely
// on: every task sees a worker id in [0, workers), all tasks run exactly
// once, and no two tasks ever run on the same slot concurrently (asserted
// with a per-slot entry counter that must never exceed one).
func TestForWorkerSlotExclusivity(t *testing.T) {
	const workers, n = 7, 500
	inSlot := make([]atomic.Int32, workers)
	ran := make([]atomic.Int32, n)
	err := ForWorker(context.Background(), workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("task %d: worker id %d outside [0, %d)", i, w, workers)
			return
		}
		if inSlot[w].Add(1) != 1 {
			t.Errorf("slot %d entered concurrently", w)
		}
		ran[i].Add(1)
		inSlot[w].Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, got)
		}
	}
}

// TestForWorkerSequentialUsesSlotZero pins the inline path: with one worker
// every task runs on slot 0, in index order.
func TestForWorkerSequentialUsesSlotZero(t *testing.T) {
	var order []int
	err := ForWorker(context.Background(), 1, 5, func(w, i int) {
		if w != 0 {
			t.Errorf("task %d: worker id %d, want 0", i, w)
		}
		order = append(order, i)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("inline order = %v, want ascending", order)
		}
	}
}
