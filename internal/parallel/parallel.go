// Package parallel provides the bounded worker pool shared by the
// parallelized hot paths of the profiler: per-column dictionary encoding and
// PLI construction, the per-candidate validations of the level-wise FD
// algorithms, and the per-right-hand-side sub-lattice walks of MUDS.
//
// The design rule for callers is "indexed slots, not shared slices": every
// task i writes its result into position i of a pre-sized result slice, and
// the caller applies the slots in index order after the pool drains. Worker
// scheduling then influences only wall time — discovered dependency sets are
// byte-identical for every worker count, which the equivalence tests assert.
//
// Fault tolerance: a panic inside a task never escapes on a worker goroutine
// (which would kill the whole process with no chance to recover). The pool
// captures the first panic together with its stack, stops handing out new
// tasks, waits for the running tasks to drain, and re-raises the panic on
// the calling goroutine as a *TaskPanic — so the engine-level recover
// converts it into a failed job instead of a dead daemon. The armed
// faults.WorkerSpawn injection point degrades the pool to sequential
// in-line execution, which is observationally identical apart from wall
// time.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"holistic/internal/faults"
)

// TaskPanic wraps a panic captured inside a pool task, preserving the
// panicking task's stack trace (re-panicking on the caller goroutine would
// otherwise lose it). If the panic value is an error, Unwrap exposes it so
// classification (errors.Is/As on injected faults, transient markers) works
// through the wrapper.
type TaskPanic struct {
	// Task is the index of the panicking task.
	Task int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (p *TaskPanic) Error() string {
	return fmt.Sprintf("panic in parallel task %d: %v", p.Task, p.Value)
}

// Unwrap exposes the panic value when it is an error.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Workers normalizes a worker-count option: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(0), fn(1), ..., fn(n-1) across at most workers goroutines and
// blocks until every started task returned. Tasks are claimed from an atomic
// counter, so the pool stays busy even when task costs are skewed.
//
// Cancellation: no new task starts once ctx is done, and For returns
// ctx.Err(); tasks already running are not interrupted (fn should poll ctx
// itself inside long loops). On a non-nil error some slots were never
// written — callers must discard the partial results.
//
// Panics: if a task panics, the pool stops claiming new tasks, drains the
// ones already running, and re-panics on the calling goroutine with a
// *TaskPanic carrying the original value and stack. Callers therefore see
// the same control flow as a panic in a plain sequential loop — and the
// engine's panic isolation can convert it into an error.
//
// With workers <= 1 (or n <= 1) the tasks run inline on the calling
// goroutine, in index order, with the same per-task cancellation check; the
// sequential and parallel paths are therefore observationally identical.
func For(ctx context.Context, workers, n int, fn func(i int)) error {
	return ForWorker(ctx, workers, n, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker slot exposed: fn(worker, i) receives the
// index of the pool goroutine running task i, with worker in [0, workers).
// A slot is never run by two goroutines at once (each pool goroutine owns
// exactly one slot for the whole call; the sequential path uses slot 0), so
// callers may own one reusable scratch arena per slot — e.g. a pli.Scratch
// for map-free PLI intersections — and index it by the worker argument
// without any locking. Which tasks land on which slot depends on scheduling;
// only the slot's exclusivity is guaranteed, so per-slot state must not
// influence task results.
func ForWorker(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	// An injected worker-spawn fault degrades the pool to sequential
	// execution: slower, never wrong (panic mode still panics, and is then
	// handled by the caller's isolation layer).
	if workers > 1 && faults.Degraded(faults.WorkerSpawn) {
		workers = 1
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		aborted atomic.Bool
		once    sync.Once
		caught  *TaskPanic
	)
	runTask := func(worker, i int) {
		defer func() {
			if r := recover(); r != nil {
				once.Do(func() {
					caught = &TaskPanic{Task: i, Value: r, Stack: debug.Stack()}
				})
				aborted.Store(true)
			}
		}()
		fn(worker, i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if aborted.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runTask(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	return ctx.Err()
}
