// Package parallel provides the bounded worker pool shared by the
// parallelized hot paths of the profiler: per-column dictionary encoding and
// PLI construction, the per-candidate validations of the level-wise FD
// algorithms, and the per-right-hand-side sub-lattice walks of MUDS.
//
// The design rule for callers is "indexed slots, not shared slices": every
// task i writes its result into position i of a pre-sized result slice, and
// the caller applies the slots in index order after the pool drains. Worker
// scheduling then influences only wall time — discovered dependency sets are
// byte-identical for every worker count, which the equivalence tests assert.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(0), fn(1), ..., fn(n-1) across at most workers goroutines and
// blocks until every started task returned. Tasks are claimed from an atomic
// counter, so the pool stays busy even when task costs are skewed.
//
// Cancellation: no new task starts once ctx is done, and For returns
// ctx.Err(); tasks already running are not interrupted (fn should poll ctx
// itself inside long loops). On a non-nil error some slots were never
// written — callers must discard the partial results.
//
// With workers <= 1 (or n <= 1) the tasks run inline on the calling
// goroutine, in index order, with the same per-task cancellation check; the
// sequential and parallel paths are therefore observationally identical.
func For(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
