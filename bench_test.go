package holistic

// One benchmark per table/figure of the paper's evaluation (Sec. 6), sized
// so the full -bench=. run finishes in minutes. cmd/experiments regenerates
// the complete series (and, with -full, the paper-scale parameters);
// EXPERIMENTS.md records the measured shapes against the paper's.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"holistic/internal/core"
	"holistic/internal/dataset"
	"holistic/internal/pli"
	"holistic/internal/relation"
)

// cacheMetrics observes the engine's cache-statistics events and accumulates
// them across iterations, so the benchmarks can report shared-PLI-cache
// effectiveness (hits/misses/intersections) alongside ns/op.
type cacheMetrics struct {
	core.NopObserver
	hits, misses, intersections int64
}

func (m *cacheMetrics) CacheStats(s pli.CacheStats) {
	m.hits += s.Hits
	m.misses += s.Misses
	m.intersections += s.Intersections
}

func (m *cacheMetrics) report(b *testing.B) {
	n := float64(b.N)
	b.ReportMetric(float64(m.hits)/n, "pli-hits/op")
	b.ReportMetric(float64(m.misses)/n, "pli-misses/op")
	b.ReportMetric(float64(m.intersections)/n, "pli-intersects/op")
}

func benchStrategies(b *testing.B, rel *relation.Relation, strategies ...string) {
	b.Helper()
	src := core.RelationSource{Rel: rel}
	for _, strategy := range strategies {
		b.Run(strategy, func(b *testing.B) {
			var metrics cacheMetrics
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), strategy, src,
					core.Options{Seed: int64(i)}, &metrics)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.FDs) == 0 {
					b.Fatal("no FDs found")
				}
			}
			metrics.report(b)
		})
	}
}

// BenchmarkFigure6RowScalability is one point of the Figure 6 series: the
// uniprot-like dataset at 10 columns. Paper shape: all three algorithms are
// linear in rows; HFUN fastest, MUDS slowest (shadowed-FD cost).
func BenchmarkFigure6RowScalability(b *testing.B) {
	rel := dataset.Uniprot(20000)
	benchStrategies(b, rel, core.StrategyBaseline, core.StrategyHolisticFun, core.StrategyMuds)
}

// BenchmarkFigure7ColumnScalability is one point of the Figure 7 series:
// the ionosphere-like dataset at 351 rows. Paper shape: exponential in
// columns; MUDS scales best, HFUN barely beats the baseline.
func BenchmarkFigure7ColumnScalability(b *testing.B) {
	rel := dataset.Ionosphere(12, 351)
	benchStrategies(b, rel, core.StrategyMuds, core.StrategyHolisticFun, core.StrategyBaseline)
}

// BenchmarkTable3 covers the quick UCI-like datasets of Table 3 across all
// four strategies (adult/letter/hepatitis and the crossed 10k-row datasets
// run via cmd/experiments -table3; they take minutes per run, as in the
// paper).
func BenchmarkTable3(b *testing.B) {
	for _, name := range []string{"iris", "balance", "abalone", "b-cancer", "bridges", "echocard"} {
		rel, err := dataset.UCI(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			benchStrategies(b, rel,
				core.StrategyBaseline, core.StrategyHolisticFun, core.StrategyMuds, core.StrategyTane)
		})
	}
}

// BenchmarkFigure8Phases measures MUDS' phase breakdown on the ncvoter-like
// dataset. Paper shape: SPIDER and DUCC negligible; the shadowed-FD phases
// dominate. Per-phase seconds are reported as benchmark metrics.
func BenchmarkFigure8Phases(b *testing.B) {
	rel := dataset.NCVoter(1000, 14)
	totals := map[string]float64{}
	var order []string
	for i := 0; i < b.N; i++ {
		res := core.Muds(rel, core.Options{Seed: int64(i)})
		if len(res.FDs) == 0 {
			b.Fatal("no FDs found")
		}
		for _, p := range res.Phases {
			if _, ok := totals[p.Name]; !ok {
				order = append(order, p.Name)
			}
			totals[p.Name] += p.Duration.Seconds()
		}
	}
	for _, name := range order {
		b.ReportMetric(totals[name]/float64(b.N), name+"-s/op")
	}
}

// BenchmarkParallelScaling measures the worker-pool speedup of the parallel
// phases: MUDS on the ncvoter-like dataset at workers=1 versus all CPUs.
// cmd/experiments -parallel runs the full series (more datasets and worker
// counts) and writes the measurements to BENCH_parallel.json.
func BenchmarkParallelScaling(b *testing.B) {
	rel := dataset.NCVoter(2000, 16)
	src := core.RelationSource{Rel: rel}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("muds/workers=%d", workers), func(b *testing.B) {
			var metrics cacheMetrics
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), core.StrategyMuds, src,
					core.Options{Seed: int64(i), Workers: workers}, &metrics)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.FDs) == 0 {
					b.Fatal("no FDs found")
				}
			}
			metrics.report(b)
		})
	}
}

// BenchmarkProfileAPI measures the public entry point end to end on a small
// mixed dataset (the shape a library user profiles interactively).
func BenchmarkProfileAPI(b *testing.B) {
	rel := dataset.NCVoter(1000, 12)
	for i := 0; i < b.N; i++ {
		res := ProfileRelation(rel, Options{Seed: int64(i)})
		if len(res.FDs) == 0 {
			b.Fatal("no FDs found")
		}
	}
}
