module holistic

go 1.22
