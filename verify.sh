#!/bin/sh
# verify.sh — the full local verification gate: formatting, vet, build, and
# the complete test suite under the race detector. Run from the repo root.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (CI runs it)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== worker-count equivalence (workers=1 vs N) =="
go test -race -count=1 -run 'TestWorkerCountEquivalence|TestParallelMudsCancellation' ./internal/core/

echo "== CSV fuzz smoke =="
go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime=10s ./internal/relation/

echo "== PLI differential fuzz smoke (flat layout vs reference) =="
go test -run='^$' -fuzz='^FuzzPLIEquivalence$' -fuzztime=10s ./internal/pli/

echo "== check-kernel differential fuzz smoke (fast path vs materializing) =="
go test -run='^$' -fuzz='^FuzzCheckEquivalence$' -fuzztime=10s ./internal/pli/

echo "== PLI bench smoke (compile + one iteration) =="
go test -run='^$' -bench 'Intersect|Check' -benchtime=1x ./internal/pli/

echo "== fast-path config equivalence (race) =="
go test -race -count=1 -run 'TestFastPathConfigEquivalence' ./internal/core/

echo "== validation bench smoke (5k rows) =="
go run ./cmd/experiments -validate -validate-rows 5000 -validate-json ''

echo "== incremental differential fuzz smoke (append path vs from-scratch) =="
go test -run='^$' -fuzz='^FuzzIncrementalEquivalence$' -fuzztime=10s ./internal/incremental/

echo "== incremental bench smoke (5k rows) =="
go run ./cmd/experiments -incremental -incremental-rows 5000 -incremental-json ''

echo "== chaos suite (fault injection, race) =="
go test -race -count=1 -run 'TestChaos|TestJobDeadlinePartialResult' ./internal/server/

echo "== WAL fault-injection and torn-write suite (race) =="
go test -race -count=1 ./internal/durable/

echo "== restart-semantics suite (race) =="
go test -race -count=1 -run 'TestRestart' ./internal/server/

echo "== overload-resilience suite (admission, breakers, watermarks, race) =="
go test -race -count=1 -run 'TestAdaptiveAdmission|TestAdmissionEstimate|TestCoDel|TestIdempoten|TestCircuitBreaker|TestMemWatermark|TestOverload' ./internal/server/

echo "== profiled service smoke test =="
./scripts/smoke_profiled.sh

echo "== profiled chaos test =="
./scripts/chaos_profiled.sh

echo "== profiled kill -9 recovery test =="
./scripts/crash_profiled.sh

echo "== profiled overload flood test =="
./scripts/overload_profiled.sh

echo "verify.sh: all checks passed"
