#!/bin/sh
# verify.sh — the full local verification gate: formatting, vet, build, and
# the complete test suite under the race detector. Run from the repo root.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== worker-count equivalence (workers=1 vs N) =="
go test -race -count=1 -run 'TestWorkerCountEquivalence|TestParallelMudsCancellation' ./internal/core/

echo "== profiled service smoke test =="
./scripts/smoke_profiled.sh

echo "verify.sh: all checks passed"
